(* Command-line driver: run any SPLASH-2 workload on a configured
   simulated cluster and report the paper's statistics, or regenerate
   the paper's tables/figures with the multicore experiment runner.

     dune exec bin/shasta_cli.exe -- run ocean -p 16 --protocol smp -c 4
     dune exec bin/shasta_cli.exe -- report fig3 --quick --jobs 4
     dune exec bin/shasta_cli.exe -- list *)

open Cmdliner

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Stats = Shasta_core.Stats
module App = Shasta_apps.App
module Registry = Shasta_apps.Registry

let run_app app_name nprocs protocol clustering vg scale seed smp_sync share_dir verbose =
  match Registry.find app_name with
  | exception Not_found ->
    Printf.eprintf "unknown application %S; try: %s\n" app_name
      (String.concat " " Registry.names);
    1
  | maker ->
    let variant =
      match protocol with
      | "base" -> Config.Base
      | "smp" -> Config.Smp
      | other ->
        Printf.eprintf "unknown protocol %S (base|smp)\n" other;
        exit 2
    in
    let clustering = if variant = Config.Base then 1 else clustering in
    let inst = maker ~vg ~scale () in
    let heap = max (1 lsl 22) inst.App.heap_bytes in
    let heap = (heap + 4095) / 4096 * 4096 in
    let cfg =
      Config.create ~variant ~nprocs ~clustering ~heap_bytes:heap ~seed
        ~smp_sync ~share_directory:share_dir ()
    in
    let h = Dsm.create cfg in
    let body, verify = inst.App.setup h in
    Printf.printf "%s: %s\n" inst.App.name inst.App.workload;
    Printf.printf "%s, %d processors, clustering %d%s\n%!"
      (match variant with Config.Base -> "Base-Shasta" | Config.Smp -> "SMP-Shasta")
      nprocs clustering
      (if vg then ", variable granularity" else "");
    let t0 = Unix.gettimeofday () in
    Dsm.run h body;
    let host = Unix.gettimeofday () -. t0 in
    let verdict = verify h in
    let stats = Dsm.aggregate_stats h in
    Printf.printf "\nresult: %s (%s)\n"
      (if verdict.App.ok then "VERIFIED" else "FAILED")
      verdict.App.detail;
    Printf.printf "parallel time: %.1f simulated ms (%.1fs host)\n"
      (1000.0 *. float_of_int (Dsm.parallel_cycles h) /. 3.0e8)
      host;
    Printf.printf "misses: %d  (mean read latency %.1f us)\n"
      (Stats.total_misses stats)
      (Stats.mean_read_latency_us stats);
    Printf.printf "messages: %d remote, %d local, %d downgrade\n"
      (Dsm.messages_remote h) (Dsm.messages_local h) (Dsm.downgrade_messages h);
    if verbose then begin
      Printf.printf "\ntime breakdown (aggregate cycles):\n";
      List.iter
        (fun c ->
          Printf.printf "  %-8s %12d\n" (Stats.category_name c) (Stats.cycles stats c))
        Stats.categories;
      Printf.printf "private upgrades: %d, false misses: %d, checks: %d\n"
        stats.Stats.private_upgrades stats.Stats.false_misses stats.Stats.checks
    end;
    if verdict.App.ok then 0 else 1

(* Regenerate paper tables/figures: prefetch the union of the selected
   targets' specs through the domain pool, then render each target
   sequentially from the warm cache. Output is byte-identical for any
   job count; only wall-clock changes. *)
let report_targets target_names quick jobs shards =
  let module Targets = Shasta_experiments.Targets in
  let scale = if quick then 0.5 else 1.0 in
  let jobs =
    match jobs with 0 -> Shasta_util.Pool.default_jobs () | j -> j
  in
  if jobs < 1 then begin
    Printf.eprintf "--jobs must be a positive integer\n";
    exit 2
  end;
  (* Override SHASTA_SHARDS for every run created below (Config.create
     reads it); -1 leaves the environment as-is. *)
  (match shards with
  | -1 -> ()
  | n when n >= 0 -> Unix.putenv "SHASTA_SHARDS" (string_of_int n)
  | _ ->
    Printf.eprintf "--shards must be >= 0 (0 = auto)\n";
    exit 2);
  let names = if target_names = [] then Targets.names else target_names in
  match
    List.partition_map
      (fun n ->
        match Targets.find n with
        | Some t -> Either.Left t
        | None -> Either.Right n)
      names
  with
  | _, (_ :: _ as unknown) ->
    Printf.eprintf "unknown target(s) %s; known: %s\n"
      (String.concat ", " unknown)
      (String.concat " " Targets.names);
    1
  | selected, [] ->
    let t0 = Unix.gettimeofday () in
    Targets.prefetch ~jobs ~scale selected;
    List.iter (fun t -> print_string (t.Targets.render ~scale)) selected;
    Printf.eprintf "[%d target(s) in %.1fs host time, %d jobs]\n%!"
      (List.length selected)
      (Unix.gettimeofday () -. t0)
      jobs;
    (* Inline-check fast-path observability, per application over every
       cached run: how many checks the fused first-level hit check
       resolved without protocol dispatch, and how many accesses were
       issued by compiled access programs. Stderr, like all progress
       output — stdout stays byte-identical across toggles. *)
    (match Shasta_experiments.Runner.fastpath_by_app () with
    | [] -> ()
    | rows ->
      Printf.eprintf "[fastpath %s: per-app fused-hit rate / prog coverage]\n"
        (if Shasta_core.Config.env_fastpath () then "on" else "off");
      List.iter
        (fun (app, (checks, fast_hits, accesses, prog_accesses)) ->
          let rate den num =
            if den = 0 then 0.0 else float_of_int num /. float_of_int den
          in
          Printf.eprintf "[  %-10s hit %.3f (%d/%d)  prog %.3f (%d/%d)]\n" app
            (rate checks fast_hits) fast_hits checks
            (rate accesses prog_accesses) prog_accesses accesses)
        rows;
      Printf.eprintf "%!");
    (* Tail-latency observability, stderr like the fast-path rows: the
       miss-latency / downgrade-RTT percentiles of traced runs
       (SHASTA_TRACE=1), and the per-op-class aggregate of any YCSB
       runs in the selected targets. *)
    (let module Runner = Shasta_experiments.Runner in
     let module Metrics = Shasta_trace.Metrics in
     let module H = Shasta_util.Histogram in
     if Runner.traced_runs () > 0 then begin
       let mx = Runner.metrics_snapshot () in
       let line label h =
         Printf.eprintf "[  %-14s n=%d p50=%d p99=%d p999=%d max=%d]\n" label
           (H.total h) (H.percentile h 0.5) (H.percentile h 0.99)
           (H.percentile h 0.999) (H.percentile h 1.0)
       in
       Printf.eprintf "[metrics over %d traced run(s), cycles:]\n"
         (Runner.traced_runs ());
       line "miss_latency" (Metrics.miss_latency mx);
       line "downgrade_rtt" (Metrics.downgrade_rtt mx);
       Printf.eprintf "%!"
     end);
    (let module Ycsb = Shasta_workload.Ycsb in
     let module H = Shasta_util.Histogram in
     match Ycsb.totals () with
     | None -> ()
     | Some (runs, classes) ->
       Printf.eprintf "[ycsb aggregate over %d run(s), latency cycles:]\n"
         runs;
       List.iter
         (fun (cls, ops, lat, msgs) ->
           Printf.eprintf
             "[  %-7s ops=%-8d p50=%-6d p99=%-6d p999=%-6d msgs/op=%.2f]\n"
             (Ycsb.class_name cls) ops (H.percentile lat 0.5)
             (H.percentile lat 0.99) (H.percentile lat 0.999)
             (float_of_int msgs /. float_of_int (max 1 ops)))
         classes;
       Printf.eprintf "%!");
    0

(* YCSB traffic generator: stream a keyed op mix (read/update/rmw/
   insert/scan) through the DSM-backed KV store and report per-op-class
   p50/p99/p999 latency and messages/op. Stdout carries only
   virtual-time quantities, so it is bit-identical across shard counts
   and host runs; host wall time goes to stderr. *)
let run_ycsb workload records ops dist theta scan_max nprocs protocol
    clustering seed no_progs shards =
  let module Sampler = Shasta_workload.Sampler in
  let module Ycsb = Shasta_workload.Ycsb in
  match Ycsb.mix_of_string workload with
  | None ->
    Printf.eprintf "unknown workload %S (a|b|c|d|e|f)\n" workload;
    2
  | Some mix -> (
    let variant =
      match protocol with
      | "base" -> Config.Base
      | "smp" -> Config.Smp
      | other ->
        Printf.eprintf "unknown protocol %S (base|smp)\n" other;
        exit 2
    in
    let clustering = if variant = Config.Base then 1 else clustering in
    match Sampler.dist_of_string dist with
    | None ->
      Printf.eprintf "unknown distribution %S (zipfian|scrambled|uniform)\n"
        dist;
      2
    | Some dist ->
      let spec =
        Ycsb.spec ~mix ~records ~ops ~dist ~theta ~scan_max ~variant ~nprocs
          ~clustering ~seed ~progs:(not no_progs) ~shards ()
      in
      let t0 = Unix.gettimeofday () in
      let r = Ycsb.run spec in
      let host = Unix.gettimeofday () -. t0 in
      print_string (Ycsb.render r);
      Printf.eprintf "[%d ops in %.1fs host, %d shard(s), %s path]\n%!" ops
        host r.Ycsb.shards_used
        (if r.Ycsb.compiled then "access-program" else "closure");
      if r.Ycsb.oracle_ok then 0 else 1)

(* Protocol analyses (lib/check): the litmus model checker over the
   built-in downgrade-race scenarios, and/or a workload run under the
   online invariant sanitizer and the happens-before race detector. *)
let run_check litmus sanitize races budget max_runs fault app_name nprocs
    protocol clustering scale seed =
  let module Sanitizer = Shasta_check.Sanitizer in
  let module Races = Shasta_check.Races in
  let module Litmus = Shasta_check.Litmus in
  let module Inspect = Shasta_core.Inspect in
  let fault =
    match fault with
    | None -> None
    | Some "skip-private-downgrade" -> Some Config.Skip_private_downgrade
    | Some "skip-flag-stamp" -> Some Config.Skip_flag_stamp
    | Some other ->
      Printf.eprintf
        "unknown fault %S (skip-private-downgrade|skip-flag-stamp)\n" other;
      exit 2
  in
  let rc = ref 0 in
  let do_litmus =
    litmus || (app_name = None && (not sanitize) && not races)
  in
  if do_litmus then begin
    let reports = Litmus.check_all ?fault ~budget ~max_runs () in
    List.iter (fun r -> Format.printf "%a@." Litmus.pp_report r) reports;
    if List.exists (fun r -> r.Litmus.failures <> []) reports then rc := 1
  end;
  (match app_name with
  | None ->
    if sanitize || races then begin
      Printf.eprintf "--sanitize/--races need a workload argument\n";
      rc := 2
    end
  | Some name -> (
    match Registry.find name with
    | exception Not_found ->
      Printf.eprintf "unknown application %S; try: %s\n" name
        (String.concat " " Registry.names);
      rc := 2
    | maker ->
      let variant =
        match protocol with
        | "base" -> Config.Base
        | "smp" -> Config.Smp
        | other ->
          Printf.eprintf "unknown protocol %S (base|smp)\n" other;
          exit 2
      in
      let clustering = if variant = Config.Base then 1 else clustering in
      let inst = maker ~vg:false ~scale () in
      let heap = max (1 lsl 22) inst.App.heap_bytes in
      let heap = (heap + 4095) / 4096 * 4096 in
      let cfg =
        Config.create ~variant ~nprocs ~clustering ~heap_bytes:heap ~seed
          ~sanitize:(if races then 2 else 1)
          ?fault ()
      in
      let h = Dsm.create cfg in
      let m = Dsm.machine h in
      let san = Sanitizer.attach m in
      let rd = if races then Some (Races.attach m) else None in
      let body, verify = inst.App.setup h in
      Printf.printf "checking %s: %s\n%!" inst.App.name inst.App.workload;
      (try
         Dsm.run h body;
         let verdict = verify h in
         if not verdict.App.ok then begin
           Printf.printf "result FAILED: %s\n" verdict.App.detail;
           rc := 1
         end;
         match Inspect.report m with
         | [] -> ()
         | vs ->
           List.iter
             (fun v -> Printf.printf "post-run: %s\n" (Inspect.describe v))
             vs;
           rc := 1
       with
      | Inspect.Violation vs ->
        List.iter
          (fun v -> Printf.printf "barrier sweep: %s\n" (Inspect.describe v))
          vs;
        rc := 1
      | Shasta_core.Protocol.Protocol_violation _ as e ->
        Printf.printf "%s\n" (Printexc.to_string e);
        rc := 1);
      Printf.printf "sanitizer: %d transitions checked, %d violation(s)\n"
        (Sanitizer.events san)
        (Sanitizer.violation_count san);
      List.iter
        (fun v -> Printf.printf "  %s\n" (Inspect.describe v))
        (Sanitizer.violations san);
      if Sanitizer.violation_count san > 0 then rc := 1;
      (match rd with
      | None -> ()
      | Some rd ->
        Printf.printf "races: %d unsynchronized conflicting pair(s)\n"
          (Races.race_count rd);
        List.iter
          (fun r -> Printf.printf "  %s\n" (Races.describe r))
          (Races.races rd);
        if Races.race_count rd > 0 then rc := 1)));
  !rc

(* Structured event tracing: run a workload with the flight recorder
   and metrics observers attached, then dump the (filtered) event
   stream, export a Chrome trace_event JSON, and summarize the metric
   distributions. Subsumes the old SHASTA_TRACE_BLOCK printf path
   (--block gives the same per-block view, structured) and the
   debug_hang driver (a cycle-limit hang dumps machine state plus the
   freshest events). *)
let run_trace app_name nprocs protocol clustering vg scale seed procs blocks
    kinds from_ upto limit capacity chrome_file stats no_dump =
  let module Recorder = Shasta_trace.Recorder in
  let module Event = Shasta_trace.Event in
  let module Metrics = Shasta_trace.Metrics in
  let module Inspect = Shasta_core.Inspect in
  match Registry.find app_name with
  | exception Not_found ->
    Printf.eprintf "unknown application %S; try: %s\n" app_name
      (String.concat " " Registry.names);
    1
  | maker ->
    let variant =
      match protocol with
      | "base" -> Config.Base
      | "smp" -> Config.Smp
      | other ->
        Printf.eprintf "unknown protocol %S (base|smp)\n" other;
        exit 2
    in
    let clustering = if variant = Config.Base then 1 else clustering in
    let blocks =
      List.map
        (fun s ->
          match int_of_string_opt s with
          | Some b -> b
          | None ->
            Printf.eprintf "--block: expected an address (decimal or 0x hex), got %S\n" s;
            exit 2)
        blocks
    in
    let inst = maker ~vg ~scale () in
    let heap = max (1 lsl 22) inst.App.heap_bytes in
    let heap = (heap + 4095) / 4096 * 4096 in
    let cfg =
      Config.create ~variant ~nprocs ~clustering ~heap_bytes:heap ~seed
        ~trace:1 ()
    in
    let h = Dsm.create cfg in
    let m = Dsm.machine h in
    let rec_ = Recorder.attach ?capacity m in
    let mx = Metrics.attach m in
    let body, verify = inst.App.setup h in
    Printf.eprintf "tracing %s: %s\n%!" inst.App.name inst.App.workload;
    let rc = ref 0 in
    (try
       Dsm.run h body;
       let verdict = verify h in
       if not verdict.App.ok then begin
         Printf.eprintf "result FAILED: %s\n" verdict.App.detail;
         rc := 1
       end
     with Shasta_sim.Engine.Cycle_limit p ->
       Printf.printf "CYCLE LIMIT hit on proc %d - machine state:\n%!" p;
       Inspect.dump Format.std_formatter m;
       Format.pp_print_flush Format.std_formatter ();
       rc := 1);
    let filter =
      { Event.procs; blocks; kinds; from_; upto }
    in
    let events = List.filter (Event.matches filter) (Recorder.events rec_) in
    let shown =
      match limit with
      | Some n when n >= 0 && List.length events > n ->
        (* Flight-recorder semantics: keep the newest [n]. *)
        let drop = List.length events - n in
        List.filteri (fun i _ -> i >= drop) events
      | _ -> events
    in
    (match chrome_file with
    | Some path ->
      Shasta_trace.Chrome.write_file path
        ~node_of:(Shasta_core.Machine.node_of m)
        events;
      Printf.eprintf "[wrote %s: %d events]\n%!" path (List.length events)
    | None -> ());
    if not no_dump then
      List.iter (fun ev -> print_endline (Event.to_string ev)) shown;
    Printf.eprintf
      "[%d events recorded, %d dropped (ring capacity %d/proc), %d matched filter]\n%!"
      (Recorder.recorded rec_) (Recorder.dropped rec_)
      (Recorder.capacity rec_) (List.length events);
    if stats then Format.printf "%a@?" Metrics.pp mx;
    !rc

let list_apps () =
  List.iter
    (fun (name, (maker : App.maker)) ->
      let inst = maker () in
      Printf.printf "%-10s %s\n" name inst.App.workload)
    Registry.all;
  0

(* --- command line --- *)

let app_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc:"Workload name (see $(b,list)).")

let nprocs_arg =
  Arg.(value & opt int 16 & info [ "p"; "procs" ] ~docv:"N" ~doc:"Number of simulated processors.")

let protocol_arg =
  Arg.(value & opt string "smp" & info [ "protocol" ] ~docv:"P" ~doc:"Protocol: base or smp.")

let clustering_arg =
  Arg.(value & opt int 4 & info [ "c"; "clustering" ] ~docv:"K" ~doc:"Processors per coherence node (smp only).")

let vg_arg =
  Arg.(value & flag & info [ "vg" ] ~doc:"Enable the variable-granularity allocation hints (Table 2).")

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc:"Problem-size scale factor.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let smp_sync_arg =
  Arg.(value & flag & info [ "smp-sync" ] ~doc:"Hierarchical SMP barriers (the paper's section-5 extension).")

let share_dir_arg =
  Arg.(value & flag & info [ "share-directory" ] ~doc:"Directory-state sharing within a node (section-5 extension).")
let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the full time breakdown.")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run a SPLASH-2 workload on the simulated cluster")
    Term.(
      const run_app $ app_arg $ nprocs_arg $ protocol_arg $ clustering_arg
      $ vg_arg $ scale_arg $ seed_arg $ smp_sync_arg $ share_dir_arg
      $ verbose_arg)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List available workloads") Term.(const list_apps $ const ())

let targets_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"TARGET"
        ~doc:"Tables/figures to regenerate (default: all). See $(b,bench/main.exe) for the list.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced problem scale (0.5).")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of OCaml domains executing simulations concurrently; 0 (the \
           default) means $(b,SHASTA_JOBS) or the machine's core count. The \
           rendered tables are identical for any value.")

let shards_arg =
  Arg.(
    value & opt int (-1)
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Number of scheduler shards (domains) inside each simulation; 0 \
           means auto (one per coherence node, capped at the core count), 1 \
           runs the sequential scheduler in place. Default: the \
           $(b,SHASTA_SHARDS) environment variable, else auto. The rendered \
           tables are identical for any value.")

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Regenerate the paper's tables/figures, executing the independent \
          simulations concurrently on a domain pool")
    Term.(
      const report_targets $ targets_arg $ quick_arg $ jobs_arg $ shards_arg)

let ycsb_workload_arg =
  Arg.(
    value & pos 0 string "a"
    & info [] ~docv:"WORKLOAD"
        ~doc:"YCSB core workload: a, b, c, d, e or f.")

let ycsb_records_arg =
  Arg.(
    value & opt int 100_000
    & info [ "records" ] ~docv:"N" ~doc:"Preloaded keys in the table.")

let ycsb_ops_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "ops" ] ~docv:"N"
        ~doc:"Total operations, split round-robin over the processors.")

let ycsb_dist_arg =
  Arg.(
    value & opt string "zipfian"
    & info [ "dist" ] ~docv:"D"
        ~doc:"Key distribution: zipfian, scrambled or uniform.")

let ycsb_theta_arg =
  Arg.(
    value & opt float 0.99
    & info [ "theta" ] ~docv:"T" ~doc:"Zipfian skew, in (0, 1).")

let ycsb_scan_max_arg =
  Arg.(
    value & opt int 16
    & info [ "scan-max" ] ~docv:"N"
        ~doc:"Scan length is uniform in [1, $(docv)] (workload e).")

let ycsb_no_progs_arg =
  Arg.(
    value & flag
    & info [ "no-progs" ]
        ~doc:
          "Use the per-access closure path instead of compiled access \
           programs (cycle-identical; for diffing).")

let ycsb_cmd =
  Cmd.v
    (Cmd.info "ycsb"
       ~doc:
         "Stream a YCSB-style keyed op mix through the DSM-backed KV store \
          and report per-op-class p50/p99/p999 latency and messages/op")
    Term.(
      const run_ycsb $ ycsb_workload_arg $ ycsb_records_arg $ ycsb_ops_arg
      $ ycsb_dist_arg $ ycsb_theta_arg $ ycsb_scan_max_arg $ nprocs_arg
      $ protocol_arg $ clustering_arg $ seed_arg $ ycsb_no_progs_arg
      $ shards_arg)

let litmus_arg =
  Arg.(
    value & flag
    & info [ "litmus" ]
        ~doc:
          "Exhaustively explore the built-in downgrade-race litmus scenarios \
           (the default when no workload is given).")

let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Run the workload with the online invariant sanitizer attached (the \
           default when a workload is given).")

let races_arg =
  Arg.(
    value & flag
    & info [ "races" ]
        ~doc:
          "Additionally run the happens-before race detector over the \
           workload's loads and stores.")

let budget_arg =
  Arg.(
    value & opt int 2
    & info [ "budget" ] ~docv:"B"
        ~doc:"Litmus: schedule deviations allowed per run.")

let max_runs_arg =
  Arg.(
    value & opt int 20_000
    & info [ "max-runs" ] ~docv:"N" ~doc:"Litmus: replay cap per scenario.")

let fault_arg =
  Arg.(
    value & opt (some string) None
    & info [ "fault" ] ~docv:"F"
        ~doc:
          "Inject a protocol fault (skip-private-downgrade|skip-flag-stamp) — \
           for exercising the checkers; every mode must then FAIL.")

let check_app_arg =
  Arg.(
    value & pos 0 (some string) None
    & info [] ~docv:"APP" ~doc:"Workload to check (see $(b,list)).")

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Protocol analyses: litmus model checking of downgrade-race \
          scenarios, online invariant sanitizing, and happens-before race \
          detection")
    Term.(
      const run_check $ litmus_arg $ sanitize_arg $ races_arg $ budget_arg
      $ max_runs_arg $ fault_arg $ check_app_arg $ nprocs_arg $ protocol_arg
      $ clustering_arg $ scale_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* crash: the crash-placement litmus sweep over both recovery modes. *)

let run_crash budget max_runs ckpt_interval pull_only ckpt_only =
  let module Litmus = Shasta_check.Litmus in
  let rc = ref 0 in
  let sweep mode =
    let reports = Litmus.check_crash_all ~mode ~budget ~max_runs () in
    List.iter (fun r -> Format.printf "%a@." Litmus.pp_crash_report r) reports;
    if List.exists (fun r -> r.Litmus.cc_failures <> []) reports then rc := 1
  in
  if not ckpt_only then sweep Litmus.Pull;
  if not pull_only then sweep (Litmus.Ckpt ckpt_interval);
  !rc

let crash_budget_arg =
  Arg.(
    value & opt int 1
    & info [ "budget" ] ~docv:"B"
        ~doc:"Schedule deviations allowed around each crash placement.")

let crash_max_runs_arg =
  Arg.(
    value & opt int 4_000
    & info [ "max-runs" ] ~docv:"N"
        ~doc:"Replay cap per scenario across all placements.")

let ckpt_interval_arg =
  Arg.(
    value & opt int 2_048
    & info [ "ckpt-interval" ] ~docv:"CYCLES"
        ~doc:"Checkpoint interval for the checkpoint+log sweep.")

let pull_only_arg =
  Arg.(
    value & flag
    & info [ "pull" ] ~doc:"Only the sharer-pull recovery sweep.")

let ckpt_only_arg =
  Arg.(
    value & flag
    & info [ "ckpt" ] ~doc:"Only the checkpoint+log recovery sweep.")

let crash_cmd =
  Cmd.v
    (Cmd.info "crash"
       ~doc:
         "Crash-fault litmus sweep: fail-stop a node at every \
          in-flight-message window of each litmus scenario and require \
          recovery (sharer-pull and checkpoint+log) to leave the survivors \
          coherent — sanitizer, post-run invariants, and outcome checks \
          clean, or the typed Recovery_violation")
    Term.(
      const run_crash $ crash_budget_arg $ crash_max_runs_arg
      $ ckpt_interval_arg $ pull_only_arg $ ckpt_only_arg)

(* ------------------------------------------------------------------ *)
(* verify: the static-analysis passes (no simulation except the
   conformance runs and the lock-graph collection). *)

let run_verify reach progs locks dead fault bound seeds =
  let module Verify = Shasta_verify in
  let module Reach = Verify.Reach in
  let fault =
    match fault with
    | None -> None
    | Some "skip-private-downgrade" -> Some Config.Skip_private_downgrade
    | Some "skip-flag-stamp" -> Some Config.Skip_flag_stamp
    | Some other ->
      Printf.eprintf
        "unknown fault %S (skip-private-downgrade|skip-flag-stamp)\n" other;
      exit 2
  in
  (* No pass selected = every pass. *)
  let all = (not reach) && (not progs) && not locks in
  let reach = reach || all and progs = progs || all and locks = locks || all in
  let rc = ref 0 in
  if reach then begin
    let explore ?fault ?(stop = false) ?(crashes = false) () =
      Reach.explore
        { Reach.default_params with Reach.bound; fault; crashes;
          stop_at_first = stop }
    in
    match fault with
    | Some f ->
      (* Inverted gate: the injected fault must be exposed — success is
         a reachable violating state with its counterexample. *)
      let r = explore ~fault:f ~stop:true () in
      Format.printf "%a@." Reach.pp_result r;
      (match r.Reach.r_violations with
      | v :: _ -> Format.printf "%a@." Reach.pp_violation v
      | [] ->
        Printf.printf "FAIL: injected fault exposed no violating state\n";
        rc := 1)
    | None ->
      (* Clean exhaustive exploration: zero violations expected. *)
      let r = explore () in
      Format.printf "%a@." Reach.pp_result r;
      List.iter
        (fun v ->
          Format.printf "%a@." Reach.pp_violation v;
          rc := 1)
        r.Reach.r_violations;
      if dead then Format.printf "%a@." Reach.pp_dead (Reach.dead_report r);
      (* Both fault injections must be exposed by the same exploration. *)
      List.iter
        (fun (name, f) ->
          let rf = explore ~fault:f ~stop:true () in
          match rf.Reach.r_violations with
          | v :: _ ->
            Printf.printf "fault %s: exposed (%s)\n" name v.Reach.v_message
          | [] ->
            Printf.printf "fault %s: NOT exposed\n" name;
            rc := 1)
        [
          ("skip-private-downgrade", Config.Skip_private_downgrade);
          ("skip-flag-stamp", Config.Skip_flag_stamp);
        ];
      (* Crash transitions: re-explore with the node-crash step enabled
         (fail-stop plus Recover.rebuild as one atomic action at every
         state); the rebuilt states must satisfy the same invariant
         sweep. *)
      let rcr = explore ~crashes:true () in
      Format.printf "crash: %a@." Reach.pp_result rcr;
      List.iter
        (fun v ->
          Format.printf "%a@." Reach.pp_violation v;
          rc := 1)
        rcr.Reach.r_violations;
      if dead then
        Format.printf "crash: %a@." Reach.pp_dead (Reach.dead_report rcr);
      (* Conformance: litmus runs may only perform model-vocabulary
         transitions. *)
      let reports = Shasta_check.Conformance.check_all ~seeds () in
      List.iter
        (fun r ->
          Format.printf "%a@." Shasta_check.Conformance.pp_report r;
          if r.Shasta_check.Conformance.mismatches <> [] then rc := 1)
        reports
  end;
  if progs then begin
    let manifest = Registry.kernel_manifest () in
    match Registry.verify_kernels () with
    | [] ->
      Printf.printf "progs: %d kernel access programs verified\n"
        (List.length manifest)
    | findings ->
      List.iter
        (fun (name, f) ->
          Printf.printf "progs: %s: %s\n" name
            (Shasta_verify.Progcheck.describe_finding f))
        findings;
      rc := 1
  end;
  if locks then begin
    let g = Shasta_verify.Lockgraph.create () in
    List.iter
      (fun ((name, maker) : string * App.maker) ->
        let inst = maker () in
        let cfg =
          Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4
            ~heap_bytes:
              ((max (1 lsl 22) inst.App.heap_bytes + 4095) / 4096 * 4096)
            ()
        in
        let h = Dsm.create cfg in
        let body, _verify = inst.App.setup h in
        Dsm.add_observer h (Shasta_verify.Lockgraph.observer g);
        Dsm.run h body;
        ignore name)
      Registry.all;
    Printf.printf "locks: %d distinct acquisition edges across %d apps\n"
      (List.length (Shasta_verify.Lockgraph.edges g))
      (List.length Registry.all);
    match Shasta_verify.Lockgraph.cycles g with
    | [] -> Printf.printf "locks: no potential deadlock cycles\n"
    | cs ->
      List.iter
        (fun c ->
          Printf.printf "locks: %s\n"
            (Shasta_verify.Lockgraph.describe_cycle c))
        cs;
      rc := 1
  end;
  !rc

let reach_arg =
  Arg.(
    value & flag
    & info [ "reach" ]
        ~doc:
          "Exhaustively explore the abstract protocol model's reachable \
           state space: the clean model must satisfy every invariant, both \
           fault injections must be exposed with a counterexample, and the \
           litmus scenarios' runs must conform to the model's label \
           vocabulary.")

let progs_verify_arg =
  Arg.(
    value & flag
    & info [ "progs" ]
        ~doc:
          "Statically verify every registered kernel access program: \
           in-bounds, aligned, well-formed, charge-consistent.")

let locks_arg =
  Arg.(
    value & flag
    & info [ "locks" ]
        ~doc:
          "Collect the lock-acquisition graph from instrumented runs of \
           every registered app and report potential deadlock cycles.")

let dead_arg =
  Arg.(
    value & flag
    & info [ "dead" ]
        ~doc:
          "With $(b,--reach): also report dead model branches and unmodeled \
           message tags (informational; does not affect the exit code).")

let bound_arg =
  Arg.(
    value & opt int 2
    & info [ "bound" ] ~docv:"N"
        ~doc:"In-flight message bound per (src, dst) pair in the model.")

let seeds_arg =
  Arg.(
    value & opt int 64
    & info [ "seeds" ] ~docv:"N"
        ~doc:"Fuzzed schedules per litmus scenario for the conformance pass.")

let verify_fault_arg =
  Arg.(
    value & opt (some string) None
    & info [ "fault" ] ~docv:"F"
        ~doc:
          "With $(b,--reach): explore with the protocol fault \
           (skip-private-downgrade|skip-flag-stamp) injected; the run \
           SUCCEEDS only if a violating state is reachable, and prints its \
           minimal counterexample.")

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Static analyses: exhaustive protocol-model checking with \
          conformance against real runs, access-program verification, and \
          lock-order deadlock analysis")
    Term.(
      const run_verify $ reach_arg $ progs_verify_arg $ locks_arg $ dead_arg
      $ verify_fault_arg $ bound_arg $ seeds_arg)

let trace_proc_arg =
  Arg.(
    value & opt_all int []
    & info [ "proc" ] ~docv:"P"
        ~doc:"Only events executed by processor $(docv) (repeatable).")

let trace_block_arg =
  Arg.(
    value & opt_all string []
    & info [ "block" ] ~docv:"ADDR"
        ~doc:
          "Only events touching the block at address $(docv) (decimal or 0x \
           hex; repeatable). The structured successor of the old \
           SHASTA_TRACE_BLOCK printf tracing.")

let trace_kind_arg =
  Arg.(
    value & opt_all string []
    & info [ "kind" ] ~docv:"K"
        ~doc:
          "Only events of class $(docv): state, private, pending, \
           pending_downgrade, send, recv, miss_start, miss_end, \
           downgrade_ack, downgrade_done, downgrade_queued, \
           downgrade_replay, lock_acquired, lock_released, barrier_arrive, \
           barrier_leave (repeatable).")

let trace_from_arg =
  Arg.(
    value & opt (some int) None
    & info [ "from" ] ~docv:"CYCLE" ~doc:"Only events at or after $(docv).")

let trace_upto_arg =
  Arg.(
    value & opt (some int) None
    & info [ "to" ] ~docv:"CYCLE" ~doc:"Only events at or before $(docv).")

let trace_limit_arg =
  Arg.(
    value & opt (some int) None
    & info [ "limit" ] ~docv:"N"
        ~doc:"Print only the newest $(docv) matching events.")

let trace_capacity_arg =
  Arg.(
    value & opt (some int) None
    & info [ "capacity" ] ~docv:"N"
        ~doc:
          "Flight-recorder ring capacity per processor (rounded up to a \
           power of two; default 65536). Oldest events are overwritten on \
           overflow.")

let trace_chrome_arg =
  Arg.(
    value & opt (some string) None
    & info [ "chrome" ] ~docv:"FILE"
        ~doc:
          "Write the matching events as Chrome trace_event JSON to $(docv) \
           (load in chrome://tracing or Perfetto).")

let trace_stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the metrics summary (miss latency, downgrade round-trip, \
           message size and per-kind counts, home occupancy).")

let trace_no_dump_arg =
  Arg.(
    value & flag
    & info [ "no-dump" ]
        ~doc:"Suppress the text event dump (useful with $(b,--chrome)).")

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a workload with the structured flight recorder attached and \
          dump/export its protocol event stream")
    Term.(
      const run_trace $ app_arg $ nprocs_arg $ protocol_arg $ clustering_arg
      $ vg_arg $ scale_arg $ seed_arg $ trace_proc_arg $ trace_block_arg
      $ trace_kind_arg $ trace_from_arg $ trace_upto_arg $ trace_limit_arg
      $ trace_capacity_arg $ trace_chrome_arg $ trace_stats_arg
      $ trace_no_dump_arg)

let () =
  let doc = "Shasta fine-grain software DSM simulator (HPCA'98 reproduction)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "shasta" ~doc)
          [ run_cmd; report_cmd; ycsb_cmd; check_cmd; crash_cmd; verify_cmd;
            trace_cmd;
            list_cmd ]))
