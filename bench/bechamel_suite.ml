(* Host-level micro-benchmarks of the simulator's protocol fast paths,
   measured with Bechamel. One Test.make per paper table/figure group:
   the operations whose per-event cost dominates the corresponding
   experiment's simulation time. *)

open Bechamel
open Bechamel.Toolkit

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config

(* A small warm machine: one node exclusive over its data. *)
let make_ctx_and_run f =
  let cfg = Config.create ~variant:Config.Smp ~nprocs:4 ~clustering:4 () in
  let h = Dsm.create cfg in
  let addr = Dsm.alloc_floats h 1024 in
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      if Dsm.pid ctx = 0 then f ctx addr;
      Dsm.barrier ctx b)

(* The staged closures run a bounded burst of simulated operations on a
   fresh machine; Bechamel measures the host cost per burst. *)
let burst = 256

let test_check_hit =
  Test.make ~name:"table1/load-check-hit"
    (Staged.stage (fun () ->
         make_ctx_and_run (fun ctx addr ->
             for i = 0 to burst - 1 do
               ignore (Dsm.load_float ctx (addr + (8 * (i land 63))))
             done)))

let test_store_hit =
  Test.make ~name:"table1/store-check-hit"
    (Staged.stage (fun () ->
         make_ctx_and_run (fun ctx addr ->
             for i = 0 to burst - 1 do
               Dsm.store_float ctx (addr + (8 * (i land 63))) 1.0
             done)))

let test_batch =
  Test.make ~name:"fig4/batched-access"
    (Staged.stage (fun () ->
         make_ctx_and_run (fun ctx addr ->
             for _ = 1 to 8 do
               Dsm.batch ctx
                 [ (addr, 512, Dsm.W) ]
                 (fun () ->
                   for i = 0 to 63 do
                     Dsm.Batch.store_float ctx (addr + (8 * i)) 2.0
                   done)
             done)))

let test_remote_miss =
  Test.make ~name:"fig6/remote-miss-roundtrip"
    (Staged.stage (fun () ->
         let cfg = Config.create ~variant:Config.Base ~nprocs:8 () in
         let h = Dsm.create cfg in
         let blocks = List.init 16 (fun _ -> Dsm.alloc h ~block_size:64 ~home:4 64) in
         let b = Dsm.alloc_barrier h in
         Dsm.run h (fun ctx ->
             if Dsm.pid ctx = 0 then
               List.iter (fun a -> ignore (Dsm.load_float ctx a)) blocks;
             Dsm.barrier ctx b)))

let test_downgrade =
  Test.make ~name:"fig8/downgrade-roundtrip"
    (Staged.stage (fun () ->
         let cfg = Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4 () in
         let h = Dsm.create cfg in
         let blocks = List.init 16 (fun _ -> Dsm.alloc h ~block_size:64 ~home:4 64) in
         let b = Dsm.alloc_barrier h in
         Dsm.run h (fun ctx ->
             let p = Dsm.pid ctx in
             if p >= 4 && p < 7 then
               List.iter (fun a -> Dsm.store_float ctx a 1.0) blocks;
             Dsm.barrier ctx b;
             if p = 0 then
               List.iter (fun a -> ignore (Dsm.load_float ctx a)) blocks;
             Dsm.barrier ctx b)))

(* Scheduler pair: the same compute-and-barrier workload under the
   always-yield scheduler (an effect switch at every scheduling point)
   and under run-ahead (switches elided below the lookahead horizon).
   Virtual-time results are identical by construction — the golden test
   asserts it — so the host-time delta is the pure cost of performed
   effect switches. *)
let sched_workload run_ahead () =
  (* Base variant: every processor pair is network-coupled, so the
     lookahead matrix is positive everywhere and elision can bite. (SMP
     siblings share a node, carry zero lookahead, and bound run-ahead —
     the reason full-figure wins are modest.) *)
  let cfg = Config.create ~variant:Config.Base ~nprocs:8 () in
  let h = Dsm.create cfg in
  let b = Dsm.alloc_barrier h in
  (* Enough scheduling points that switch cost, not machine
     construction, dominates the run. *)
  Dsm.run ~run_ahead h (fun ctx ->
      for _ = 1 to 4 do
        for _ = 1 to 8192 do
          Dsm.compute ctx 3
        done;
        Dsm.barrier ctx b
      done)

let test_always_yield =
  Test.make ~name:"scheduler/yield-per-advance"
    (Staged.stage (sched_workload false))

let test_run_ahead =
  Test.make ~name:"scheduler/run-ahead" (Staged.stage (sched_workload true))

(* Hot-loop pair: the same batched daxpy row kernel dispatched through
   per-access [Dsm.Batch] calls and interpreted as a compiled access
   program ([Dsm.Prog]). Virtual-time results are identical by
   construction (test_batch asserts it), so the host-time delta is the
   per-op closure/check dispatch the flat-int interpreter removes —
   the §3.4.1 batching idea applied to the simulator itself. *)
let daxpy_workload use_prog () =
  let cfg = Config.create ~variant:Config.Smp ~nprocs:4 ~clustering:4 () in
  let h = Dsm.create cfg in
  let n = 64 in
  let s = 2.0 in
  let dst = Dsm.alloc_floats h ~block_size:512 n in
  let src = Dsm.alloc_floats h ~block_size:512 n in
  Dsm.run h (fun ctx ->
      if Dsm.pid ctx = 0 then
        let prog = Dsm.Prog.fms_row ~len:n ~cost:6 in
        (* Enough row sweeps that per-access dispatch, not machine
           construction, dominates the run. *)
        for _ = 1 to 256 do
          Dsm.batch ctx
            [ (dst, n * 8, Dsm.W); (src, n * 8, Dsm.R) ]
            (fun () ->
              if use_prog then
                Dsm.Prog.run ctx prog ~s ~aux:Dsm.Prog.no_aux ~base0:dst
                  ~base1:src ~base2:0
              else
                for c = 0 to n - 1 do
                  let v = Dsm.Batch.load_float ctx (src + (8 * c)) in
                  let d = Dsm.Batch.load_float ctx (dst + (8 * c)) in
                  Dsm.Batch.store_float ctx (dst + (8 * c)) (d -. (s *. v));
                  Dsm.compute ctx 6
                done)
        done)

let test_hot_closures =
  Test.make ~name:"hotloop/closure-dispatch"
    (Staged.stage (daxpy_workload false))

let test_hot_prog =
  Test.make ~name:"hotloop/access-program" (Staged.stage (daxpy_workload true))

let tests =
  [
    test_check_hit;
    test_store_hit;
    test_batch;
    test_remote_miss;
    test_downgrade;
    test_always_yield;
    test_run_ahead;
    test_hot_closures;
    test_hot_prog;
  ]

let render () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  (* Each run constructs a whole simulated machine (multi-MB images), so
     samples are milliseconds and GC-stabilized; keep the sample budget
     small or the suite takes tens of minutes for no extra precision. *)
  let cfg = Benchmark.cfg ~limit:25 ~quota:(Time.second 0.25) () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "\nBechamel micro-benchmarks (host cost of simulator fast paths)\n";
  Buffer.add_string buf
    "==============================================================\n\n";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> Printf.sprintf "%.0f ns/run" t
            | Some [] | None -> "n/a"
          in
          Buffer.add_string buf (Printf.sprintf "  %-32s %s\n" name est))
        results)
    tests;
  Buffer.contents buf
