(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section on the simulated cluster, plus Bechamel
   micro-benchmarks of the simulator's protocol fast paths.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table1 fig3  # selected targets
     dune exec bench/main.exe -- --quick      # reduced problem scale
     dune exec bench/main.exe -- --json fig3  # also write BENCH_fig3.json
     dune exec bench/main.exe -- --jobs 4     # simulations on 4 domains
   Targets: table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8 micro anl
            ablation bechamel

   Before rendering a target, its full spec list (sequential speedup
   baselines included) is warmed through Runner.run_batch: cache misses
   execute concurrently on a pool of --jobs OCaml domains (default: the
   SHASTA_JOBS environment variable, else the machine's core count), and
   the render then reads everything from the cache. Each simulation is
   deterministic and self-contained, so the tables printed to stdout are
   byte-identical whatever --jobs is; progress/timing lines go to stderr
   so stdout can be diffed across modes.

   With --json, each target additionally writes BENCH_<target>.json in
   the current directory recording host wall-clock seconds, the
   simulated cycles executed for that target (cache hits from earlier
   targets contribute zero cycles), the job count, and the scheduler's
   yield counters over the target's runs (see README "Benchmark JSON
   schema"). *)

module E = Shasta_experiments
module Engine = Shasta_sim.Engine

type target = {
  name : string;
  render : scale:float -> string;
  specs : scale:float -> E.Runner.spec list;
}

let targets : target list =
  List.map
    (fun t ->
      {
        name = t.E.Targets.name;
        render = t.E.Targets.render;
        specs = t.E.Targets.specs;
      })
    E.Targets.all
  @ [
      {
        name = "bechamel";
        render = (fun ~scale:_ -> Bechamel_suite.render ());
        specs = (fun ~scale:_ -> []);
      };
    ]

(* Per-shard aggregates attributed to one target: the difference of two
   Runner.shard_totals snapshots (the later may have grown in width if
   this target's runs used more shards). *)
type shard_snap = int * float array * int array * int array

let shard_delta ((r0, w0, st0, sp0) : shard_snap)
    ((r1, w1, st1, sp1) : shard_snap) =
  let n = Array.length w1 in
  let at a i = if i < Array.length a then a.(i) else 0 in
  let atf a i = if i < Array.length a then a.(i) else 0.0 in
  ( r1 - r0,
    Array.init n (fun i -> w1.(i) -. atf w0 i),
    Array.init n (fun i -> st1.(i) - at st0 i),
    Array.init n (fun i -> sp1.(i) - at sp0 i) )

let host_cores () = Domain.recommended_domain_count ()

let write_json ~name ~wall ~cycles ~jobs ~shards ~performed ~elided
    ~cached_runs ~shard_info ~checks ~fast_hits ~crashes ~recovery_cycles =
  let file = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out file in
  (* With SHASTA_TRACE=1 the runner aggregates protocol metrics over
     every traced run; record the cumulative aggregate alongside the
     counters (order-independent, so identical for any --jobs). *)
  let metrics =
    if E.Runner.traced_runs () > 0 then
      Printf.sprintf ",\n  \"traced_runs\": %d,\n  \"metrics\": %s"
        (E.Runner.traced_runs ())
        (Shasta_trace.Metrics.to_json (E.Runner.metrics_snapshot ()))
    else ""
  in
  (* Per-op-class tail-latency aggregate over every YCSB run so far;
     only present when the ycsb target ran. Merged in pid order per run
     and run order across runs, so identical for any --jobs. *)
  let ycsb =
    match Shasta_workload.Ycsb.totals_json () with
    | Some j -> Printf.sprintf ",\n  \"ycsb\": %s" j
    | None -> ""
  in
  (* Sharded-scheduler observability: per-shard host seconds and
     occupancy (resumes / loop iterations — the rest were parked at the
     cross-shard bound), summed over this target's sharded runs. Only
     present when some run actually sharded. *)
  let sharding =
    let runs, walls, steps, spins = shard_info in
    if runs = 0 then ""
    else
      let fmt_list f a =
        String.concat ", " (Array.to_list (Array.map f a))
      in
      let occ =
        Array.init (Array.length steps) (fun i ->
            let total = steps.(i) + spins.(i) in
            if total = 0 then 1.0
            else float_of_int steps.(i) /. float_of_int total)
      in
      Printf.sprintf
        ",\n\
        \  \"sharded_runs\": %d,\n\
        \  \"shard_wall_seconds\": [%s],\n\
        \  \"shard_occupancy\": [%s]"
        runs
        (fmt_list (Printf.sprintf "%.3f") walls)
        (fmt_list (Printf.sprintf "%.3f") occ)
  in
  Printf.fprintf oc
    "{\n\
    \  \"target\": %S,\n\
    \  \"wall_seconds\": %.3f,\n\
    \  \"simulated_cycles\": %d,\n\
    \  \"simulated_seconds\": %.6f,\n\
    \  \"jobs\": %d,\n\
    \  \"shards\": %d,\n\
    \  \"host_cores\": %d,\n\
    \  \"yields_performed\": %d,\n\
    \  \"yields_elided\": %d,\n\
    \  \"fastpath\": %b,\n\
    \  \"hit_fastpath_rate\": %.6f,\n\
    \  \"crashes\": %d,\n\
    \  \"recovery_cycles\": %d,\n\
    \  \"cached_runs\": %d%s%s%s\n\
     }\n"
    name wall cycles (E.Runner.seconds cycles) jobs shards (host_cores ())
    performed elided
    (Shasta_core.Config.env_fastpath ())
    (if checks = 0 then 0.0 else float_of_int fast_hits /. float_of_int checks)
    crashes recovery_cycles cached_runs sharding metrics ycsb;
  close_out oc;
  Printf.eprintf "[wrote %s]\n%!" file

let usage () =
  Printf.eprintf
    "usage: main.exe [--quick] [--json] [--jobs N] [--shards N] \
     [TARGET...]\ntargets: %s\n"
    (String.concat " " (List.map (fun t -> t.name) targets));
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = ref false and json = ref false and jobs = ref None in
  let shards_flag = ref None in
  let wanted = ref [] in
  let set_shards raw =
    match int_of_string_opt raw with
    | Some n when n >= 0 -> shards_flag := Some n
    | _ ->
      Printf.eprintf "--shards: expected a non-negative integer (0 = auto), got %S\n"
        raw;
      exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 ->
        jobs := Some j;
        parse rest
      | _ ->
        Printf.eprintf "--jobs: expected a positive integer, got %S\n" n;
        exit 2)
    | arg :: rest when String.length arg >= 7 && String.sub arg 0 7 = "--jobs=" -> (
      match int_of_string_opt (String.sub arg 7 (String.length arg - 7)) with
      | Some j when j >= 1 ->
        jobs := Some j;
        parse rest
      | _ ->
        Printf.eprintf "--jobs: expected a positive integer, got %S\n" arg;
        exit 2)
    | "--shards" :: n :: rest ->
      set_shards n;
      parse rest
    | arg :: rest when String.length arg >= 9 && String.sub arg 0 9 = "--shards=" ->
      set_shards (String.sub arg 9 (String.length arg - 9));
      parse rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      Printf.eprintf "unknown option %S\n" arg;
      usage ()
    | name :: rest ->
      wanted := name :: !wanted;
      parse rest
  in
  parse args;
  let scale = if !quick then 0.5 else 1.0 in
  let jobs =
    match !jobs with Some j -> j | None -> Shasta_util.Pool.default_jobs ()
  in
  (* --shards overrides the environment; every run created from here on
     (Config.create reads SHASTA_SHARDS) schedules with that many
     domains. The requested value, 0 meaning auto. *)
  (match !shards_flag with
  | Some n -> Unix.putenv "SHASTA_SHARDS" (string_of_int n)
  | None -> ());
  let shards_requested =
    match !shards_flag with
    | Some n -> n
    | None -> Shasta_core.Config.env_shards ()
  in
  let shards_eff =
    if shards_requested = 0 then host_cores () else shards_requested
  in
  let wanted =
    match List.rev !wanted with
    | [] -> List.map (fun t -> t.name) targets
    | names -> names
  in
  Printf.eprintf "[bench: %d job%s, shards %s, %d host core%s]\n%!" jobs
    (if jobs = 1 then "" else "s")
    (if shards_requested = 0 then Printf.sprintf "auto(%d)" shards_eff
     else string_of_int shards_requested)
    (host_cores ())
    (if host_cores () = 1 then "" else "s");
  List.iter
    (fun name ->
      match List.find_opt (fun t -> t.name = name) targets with
      | Some target ->
        let t0 = Unix.gettimeofday () in
        let c0 = E.Runner.simulated_cycles () in
        let yp0, ye0 = Engine.yield_counts () in
        let ck0, fh0 = E.Runner.fastpath_totals () in
        let cr0, rc0 = E.Runner.crash_totals () in
        let s0 = E.Runner.shard_totals () in
        E.Runner.run_batch ~jobs (target.specs ~scale);
        let out = target.render ~scale in
        let wall = Unix.gettimeofday () -. t0 in
        print_string out;
        flush stdout;
        Printf.eprintf "[%s completed in %.1fs host time; %d cached runs]\n%!"
          name wall
          (E.Runner.cache_size ());
        let shard_info = shard_delta s0 (E.Runner.shard_totals ()) in
        let runs, _, steps, spins = shard_info in
        if runs > 0 then begin
          let occ =
            String.concat " "
              (Array.to_list
                 (Array.init (Array.length steps) (fun i ->
                      let total = steps.(i) + spins.(i) in
                      Printf.sprintf "%.2f"
                        (if total = 0 then 1.0
                         else float_of_int steps.(i) /. float_of_int total))))
          in
          Printf.eprintf "[%s: %d sharded run%s; per-shard occupancy %s]\n%!"
            name runs
            (if runs = 1 then "" else "s")
            occ;
          if host_cores () < shards_eff * jobs then
            Printf.eprintf
              "[%s: note: %d shard%s x %d job%s on %d host core%s — shards \
               time-slice the cores, so wall-clock speedup is bounded by the \
               core count, not the shard count]\n\
               %!"
              name shards_eff
              (if shards_eff = 1 then "" else "s")
              jobs
              (if jobs = 1 then "" else "s")
              (host_cores ())
              (if host_cores () = 1 then "" else "s")
        end;
        if !json then begin
          let yp1, ye1 = Engine.yield_counts () in
          let ck1, fh1 = E.Runner.fastpath_totals () in
          let cr1, rc1 = E.Runner.crash_totals () in
          write_json ~name ~wall
            ~cycles:(E.Runner.simulated_cycles () - c0)
            ~jobs ~shards:shards_eff ~performed:(yp1 - yp0)
            ~elided:(ye1 - ye0)
            ~checks:(ck1 - ck0) ~fast_hits:(fh1 - fh0)
            ~crashes:(cr1 - cr0) ~recovery_cycles:(rc1 - rc0)
            ~cached_runs:(E.Runner.cache_size ())
            ~shard_info
        end
      | None ->
        Printf.eprintf "unknown target %S; known: %s\n" name
          (String.concat " " (List.map (fun t -> t.name) targets));
        exit 2)
    wanted
