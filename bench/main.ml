(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section on the simulated cluster, plus Bechamel
   micro-benchmarks of the simulator's protocol fast paths.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table1 fig3  # selected targets
     dune exec bench/main.exe -- --quick      # reduced problem scale
     dune exec bench/main.exe -- --json fig3  # also write BENCH_fig3.json
   Targets: table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8 micro anl
            ablation bechamel

   With --json, each target additionally writes BENCH_<target>.json in
   the current directory recording host wall-clock seconds and the
   simulated cycles executed for that target (cache hits from earlier
   targets contribute zero cycles). *)

module E = Shasta_experiments

let targets : (string * (scale:float -> string)) list =
  [
    ("table1", fun ~scale -> E.Exp_checking_overhead.render ~scale ());
    ("table2", fun ~scale -> E.Exp_granularity.render ~scale ());
    ("table3", fun ~scale -> E.Exp_large_problems.render ~scale:(2.0 *. scale) ());
    ("fig3", fun ~scale -> E.Exp_speedup.render ~scale ());
    ("fig4", fun ~scale -> E.Exp_breakdown.render ~vg:false ~scale ());
    ("fig5", fun ~scale -> E.Exp_breakdown.render ~vg:true ~scale ());
    ("fig6", fun ~scale -> E.Exp_misses.render ~scale ());
    ("fig7", fun ~scale -> E.Exp_messages.render ~scale ());
    ("fig8", fun ~scale -> E.Exp_downgrade_dist.render ~scale ());
    ("micro", fun ~scale:_ -> E.Exp_microbench.render ());
    ("anl", fun ~scale -> E.Exp_anl_compare.render ~scale ());
    ("ablation", fun ~scale -> E.Exp_ablation.render ~scale ());
    ("bechamel", fun ~scale:_ -> Bechamel_suite.render ());
  ]

let write_json ~name ~wall ~cycles ~cached_runs =
  let file = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out file in
  Printf.fprintf oc
    "{\n\
    \  \"target\": %S,\n\
    \  \"wall_seconds\": %.3f,\n\
    \  \"simulated_cycles\": %d,\n\
    \  \"simulated_seconds\": %.6f,\n\
    \  \"cached_runs\": %d\n\
     }\n"
    name wall cycles (E.Runner.seconds cycles) cached_runs;
  close_out oc;
  Printf.printf "[wrote %s]\n" file

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let json = List.mem "--json" args in
  let scale = if quick then 0.5 else 1.0 in
  let wanted = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let wanted = if wanted = [] then List.map fst targets else wanted in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some render ->
        let t0 = Unix.gettimeofday () in
        let c0 = E.Runner.simulated_cycles () in
        let out = render ~scale in
        let wall = Unix.gettimeofday () -. t0 in
        print_string out;
        Printf.printf "\n[%s completed in %.1fs host time; %d cached runs]\n"
          name wall
          (E.Runner.cache_size ());
        if json then
          write_json ~name ~wall
            ~cycles:(E.Runner.simulated_cycles () - c0)
            ~cached_runs:(E.Runner.cache_size ());
        flush stdout
      | None ->
        Printf.eprintf "unknown target %S; known: %s\n" name
          (String.concat " " (List.map fst targets));
        exit 2)
    wanted
