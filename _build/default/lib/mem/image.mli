(** A node's copy of the shared heap, holding real data bytes.

    Every coherence node (an SMP in SMP-Shasta, a single processor in
    Base-Shasta) has one image; copies of a block live at the same
    address in every image. Loads and stores move real values so that
    protocol correctness is observable, including the invalid-flag
    mechanism: invalidation physically writes the flag pattern into the
    block, and flag-based load checks compare against it. *)

type t

val create : Layout.t -> t

val load64 : t -> int -> int64
val store64 : t -> int -> int64 -> unit

val load_float : t -> int -> float
val store_float : t -> int -> float -> unit

val load_int : t -> int -> int
(** 63-bit int stored as int64; convenient for index arrays. *)

val store_int : t -> int -> int -> unit

val snapshot : t -> addr:int -> len:int -> Bytes.t
(** Copy of [len] bytes starting at [addr] — the payload of a data reply
    message (data is captured at send time, as on the real network). *)

val write_bytes : t -> addr:int -> ?skip:(int * int) list -> Bytes.t -> unit
(** Install reply data at [addr], leaving the (offset, len) ranges in
    [skip] untouched — the merge of reply data around locations already
    written by non-blocking stores (§2.1). Offsets are relative to
    [addr]. *)

val invalid_flag32 : int32
(** Flag value written into each longword (4 bytes) of an invalidated
    block. *)

val invalid_flag64 : int64
(** Two adjacent flag longwords, i.e. what an 8-byte load of invalidated
    memory returns. *)

val write_invalid_flag : t -> addr:int -> len:int -> unit
(** Stamp the flag into every longword of [addr, addr+len). *)

val is_flag64 : int64 -> bool
(** The flag-based load check: does an 8-byte value equal the flag
    pattern? A [true] answer may be a false miss if the application
    actually stored the pattern. *)
