type t = { base : int array; len : int array }

let create layout =
  let n = Layout.nlines layout in
  { base = Array.init n (fun i -> i); len = Array.make n 1 }

let define t ~first_line ~nlines =
  assert (nlines > 0);
  assert (first_line >= 0 && first_line + nlines <= Array.length t.base);
  for l = first_line to first_line + nlines - 1 do
    t.base.(l) <- first_line;
    t.len.(l) <- nlines
  done

let base_line t l = t.base.(l)
let block_nlines t l = t.len.(l)

let base_addr t layout addr =
  Layout.addr_of_line layout (base_line t (Layout.line_of layout addr))

let size_bytes t layout addr =
  block_nlines t (Layout.line_of layout addr) * layout.Layout.line_size
