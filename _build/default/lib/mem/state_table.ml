type base = Invalid | Shared | Exclusive

let base_geq have need =
  match (have, need) with
  | Exclusive, _ -> true
  | Shared, (Invalid | Shared) -> true
  | Shared, Exclusive -> false
  | Invalid, Invalid -> true
  | Invalid, (Shared | Exclusive) -> false

type t = Bytes.t

let base_mask = 0b11
let pending_bit = 0b100
let downgrade_bit = 0b1000
let batch_bit = 0b10000

let create layout = Bytes.make (Layout.nlines layout) '\000'

let get t l =
  match Char.code (Bytes.get t l) land base_mask with
  | 0 -> Invalid
  | 1 -> Shared
  | _ -> Exclusive

let set t l b =
  let v = Char.code (Bytes.get t l) land lnot base_mask in
  let b = match b with Invalid -> 0 | Shared -> 1 | Exclusive -> 2 in
  Bytes.set t l (Char.chr (v lor b))

let get_bit bit t l = Char.code (Bytes.get t l) land bit <> 0

let set_bit bit t l v =
  let c = Char.code (Bytes.get t l) in
  let c = if v then c lor bit else c land lnot bit in
  Bytes.set t l (Char.chr c)

let pending = get_bit pending_bit
let set_pending = set_bit pending_bit
let pending_downgrade = get_bit downgrade_bit
let set_pending_downgrade = set_bit downgrade_bit
let batch_marker = get_bit batch_bit
let set_batch_marker = set_bit batch_bit

let pp_base ppf b =
  Format.pp_print_string ppf
    (match b with Invalid -> "I" | Shared -> "S" | Exclusive -> "E")
