(** Page → home-processor assignment.

    Each virtual page of shared data has a home processor that keeps the
    directory information for all blocks on the page. The default is
    round-robin across processors; applications using the standard
    SPLASH-2 home-placement optimization override ranges explicitly. *)

type t

val create : Layout.t -> nprocs:int -> t

val home_of_line : t -> Layout.t -> int -> int
(** Home processor of the page containing a line. Blocks never straddle
    pages (the allocator guarantees this), so a block's home is the home
    of its first line. *)

val set_home : t -> Layout.t -> addr:int -> len:int -> proc:int -> unit
(** Pin all pages overlapping [addr, addr+len) to [proc]. *)
