type t = { homes : int array }

let create layout ~nprocs =
  { homes = Array.init (Layout.npages layout) (fun p -> p mod nprocs) }

let home_of_line t layout l = t.homes.(Layout.page_of_line layout l)

let set_home t layout ~addr ~len ~proc =
  assert (len > 0);
  let page_size = layout.Layout.page_size in
  let first = addr / page_size and last = (addr + len - 1) / page_size in
  for p = first to last do
    t.homes.(p) <- proc
  done
