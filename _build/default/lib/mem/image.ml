type t = Bytes.t

let create layout = Bytes.make layout.Layout.heap_bytes '\000'

let load64 t a = Bytes.get_int64_le t a
let store64 t a v = Bytes.set_int64_le t a v
let load_float t a = Int64.float_of_bits (load64 t a)
let store_float t a v = store64 t a (Int64.bits_of_float v)
let load_int t a = Int64.to_int (load64 t a)
let store_int t a v = store64 t a (Int64.of_int v)
let snapshot t ~addr ~len = Bytes.sub t addr len

let write_bytes t ~addr ?(skip = []) data =
  let saved = List.map (fun (off, len) -> (off, Bytes.sub t (addr + off) len)) skip in
  Bytes.blit data 0 t addr (Bytes.length data);
  List.iter (fun (off, b) -> Bytes.blit b 0 t (addr + off) (Bytes.length b)) saved

let invalid_flag32 = 0xDEADBEEFl
let invalid_flag64 = 0xDEADBEEFDEADBEEFL

let write_invalid_flag t ~addr ~len =
  assert (addr mod 4 = 0 && len mod 4 = 0);
  let words = len / 4 in
  for w = 0 to words - 1 do
    Bytes.set_int32_le t (addr + (4 * w)) invalid_flag32
  done

let is_flag64 v = Int64.equal v invalid_flag64
