lib/mem/home_map.ml: Array Layout
