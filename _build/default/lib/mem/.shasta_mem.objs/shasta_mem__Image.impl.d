lib/mem/image.ml: Bytes Int64 Layout List
