lib/mem/alloc.mli: Block_map Layout
