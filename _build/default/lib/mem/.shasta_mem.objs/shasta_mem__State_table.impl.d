lib/mem/state_table.ml: Bytes Char Format Layout
