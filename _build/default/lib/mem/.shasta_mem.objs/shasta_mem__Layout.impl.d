lib/mem/layout.ml:
