lib/mem/home_map.mli: Layout
