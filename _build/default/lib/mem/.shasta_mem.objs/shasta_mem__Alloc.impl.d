lib/mem/alloc.ml: Block_map Layout
