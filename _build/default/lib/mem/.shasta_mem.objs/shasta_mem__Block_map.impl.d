lib/mem/block_map.ml: Array Layout
