lib/mem/block_map.mli: Layout
