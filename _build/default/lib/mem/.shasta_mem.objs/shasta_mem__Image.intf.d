lib/mem/image.mli: Bytes Layout
