lib/mem/state_table.mli: Format Layout
