lib/mem/layout.mli:
