(** Shared-heap allocator with variable coherence granularity.

    Mirrors Shasta's modified [malloc]: the block size is a hint given at
    allocation time. By default, objects smaller than 1024 bytes become a
    single block covering the whole object, and larger objects are split
    into line-sized (64-byte) blocks (§4.3). Allocation happens before
    the parallel phase, so the allocator is a plain bump pointer and the
    resulting block map is identical on every node. *)

type t

val create : Layout.t -> Block_map.t -> t

val alloc : t -> ?block_size:int -> int -> int
(** [alloc t size] reserves [size] bytes and returns their base address
    (line-aligned; a line is never shared by two objects).
    [block_size], when given, is rounded up to a whole number of lines
    and used as the coherence granularity for this object; the object's
    tail forms a final shorter block when [size] is not a multiple.
    Raises [Failure] when the heap is exhausted. *)

val used_bytes : t -> int
(** High-water mark of the bump pointer. *)
