type t = { layout : Layout.t; blocks : Block_map.t; mutable next : int }

let create layout blocks = { layout; blocks; next = 0 }

let round_up v align = (v + align - 1) / align * align

let alloc t ?block_size size =
  assert (size > 0);
  let line = t.layout.Layout.line_size in
  let base = t.next in
  let total = round_up size line in
  if base + total > t.layout.Layout.heap_bytes then
    failwith "Alloc.alloc: shared heap exhausted";
  t.next <- base + total;
  let obj_lines = total / line in
  let block_lines =
    match block_size with
    | Some b ->
      assert (b > 0);
      min obj_lines (round_up b line / line)
    | None -> if size < 1024 then obj_lines else 1
  in
  let first_line = Layout.line_of t.layout base in
  let off = ref 0 in
  while !off < obj_lines do
    let n = min block_lines (obj_lines - !off) in
    Block_map.define t.blocks ~first_line:(first_line + !off) ~nlines:n;
    off := !off + n
  done;
  base

let used_bytes t = t.next
