(** Line → block geometry.

    A block is one or more consecutive lines that are fetched and kept
    coherent as a unit; the block size is fixed per allocation (variable
    coherence granularity, the distinctive Shasta feature). The map is
    global — identical on every node — because allocation happens before
    the parallel phase. *)

type t

val create : Layout.t -> t
(** Initially every line is its own one-line block. *)

val define : t -> first_line:int -> nlines:int -> unit
(** Mark [nlines] consecutive lines starting at [first_line] as a single
    block. [nlines] must be positive and the range in bounds. *)

val base_line : t -> int -> int
(** First line of the block containing a line. *)

val block_nlines : t -> int -> int
(** Number of lines in the block containing a line. *)

val base_addr : t -> Layout.t -> int -> int
(** First byte address of the block containing byte address [addr]. *)

val size_bytes : t -> Layout.t -> int -> int
(** Byte size of the block containing byte address [addr]. *)
