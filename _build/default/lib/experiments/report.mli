(** Small formatting helpers shared by the experiment renderers. *)

val pct : float -> string
(** "12.3%" *)

val fx : float -> string
(** Two-decimal fixed point. *)

val f1 : float -> string
(** One-decimal fixed point. *)

val seconds : int -> string
(** Cycle count rendered as simulated seconds, e.g. "0.113s". *)

val section : string -> string -> string
(** [section title body] frames an experiment's output. *)
