let pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
let fx v = Printf.sprintf "%.2f" v
let f1 v = Printf.sprintf "%.1f" v
let seconds c = Printf.sprintf "%.3fs" (Runner.seconds c)

let section title body =
  let bar = String.make (String.length title) '=' in
  Printf.sprintf "\n%s\n%s\n\n%s\n" title bar body
