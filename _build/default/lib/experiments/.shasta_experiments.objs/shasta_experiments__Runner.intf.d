lib/experiments/runner.mli: Shasta_apps Shasta_core
