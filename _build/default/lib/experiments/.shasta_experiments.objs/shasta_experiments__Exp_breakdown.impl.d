lib/experiments/exp_breakdown.ml: List Report Runner Shasta_apps Shasta_core Shasta_util String
