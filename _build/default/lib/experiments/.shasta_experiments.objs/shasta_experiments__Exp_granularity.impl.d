lib/experiments/exp_granularity.ml: List Report Runner Shasta_apps Shasta_util
