lib/experiments/exp_large_problems.ml: List Report Runner Shasta_apps Shasta_util
