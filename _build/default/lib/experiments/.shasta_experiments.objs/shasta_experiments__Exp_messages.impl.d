lib/experiments/exp_messages.ml: List Report Runner Shasta_apps Shasta_util
