lib/experiments/exp_speedup.mli:
