lib/experiments/exp_large_problems.mli:
