lib/experiments/exp_ablation.ml: List Report Runner Shasta_core Shasta_util
