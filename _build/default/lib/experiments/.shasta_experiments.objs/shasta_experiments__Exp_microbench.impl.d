lib/experiments/exp_microbench.ml: Array List Printf Report Shasta_core Shasta_util
