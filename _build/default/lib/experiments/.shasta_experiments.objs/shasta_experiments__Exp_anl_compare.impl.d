lib/experiments/exp_anl_compare.ml: List Printf Report Runner Shasta_apps Shasta_core Shasta_util
