lib/experiments/exp_misses.ml: List Printf Report Runner Shasta_apps Shasta_core Shasta_util
