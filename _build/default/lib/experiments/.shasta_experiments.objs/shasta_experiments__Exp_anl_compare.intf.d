lib/experiments/exp_anl_compare.mli:
