lib/experiments/exp_misses.mli:
