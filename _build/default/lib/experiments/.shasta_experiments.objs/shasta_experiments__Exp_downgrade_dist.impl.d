lib/experiments/exp_downgrade_dist.ml: List Report Runner Shasta_apps Shasta_core Shasta_util
