lib/experiments/report.ml: Printf Runner String
