lib/experiments/exp_granularity.mli:
