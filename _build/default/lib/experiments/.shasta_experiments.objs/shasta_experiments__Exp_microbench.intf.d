lib/experiments/exp_microbench.mli:
