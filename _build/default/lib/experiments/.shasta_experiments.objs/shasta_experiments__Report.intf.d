lib/experiments/report.mli:
