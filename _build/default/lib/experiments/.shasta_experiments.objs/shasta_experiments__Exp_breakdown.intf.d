lib/experiments/exp_breakdown.mli:
