lib/experiments/runner.ml: Hashtbl Printf Shasta_apps Shasta_core
