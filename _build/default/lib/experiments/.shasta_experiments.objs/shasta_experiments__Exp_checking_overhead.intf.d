lib/experiments/exp_checking_overhead.mli:
