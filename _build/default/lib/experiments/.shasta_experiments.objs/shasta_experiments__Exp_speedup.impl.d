lib/experiments/exp_speedup.ml: List Report Runner Shasta_apps Shasta_util
