lib/experiments/exp_downgrade_dist.mli:
