lib/experiments/exp_messages.mli:
