lib/experiments/exp_checking_overhead.ml: List Printf Report Runner Shasta_apps Shasta_util
