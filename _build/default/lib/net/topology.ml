type t = { nprocs : int; procs_per_node : int }

let create ~nprocs ~procs_per_node =
  assert (nprocs > 0 && procs_per_node > 0);
  { nprocs; procs_per_node }

let nprocs t = t.nprocs
let procs_per_node t = t.procs_per_node
let nnodes t = (t.nprocs + t.procs_per_node - 1) / t.procs_per_node

let node_of t p =
  assert (p >= 0 && p < t.nprocs);
  p / t.procs_per_node

let same_node t p q = node_of t p = node_of t q

let procs_of_node t n =
  let lo = n * t.procs_per_node in
  let hi = min t.nprocs (lo + t.procs_per_node) - 1 in
  List.init (hi - lo + 1) (fun i -> lo + i)
