(** Interconnect timing parameters, in processor cycles.

    Defaults model the paper's prototype at 300 MHz (1 cycle = 3.33 ns):
    Memory Channel one-way latency ~4 us, ~35 MB/s effective remote
    bandwidth; intra-node shared-memory message queues with sub-microsecond latency
    and ~45 MB/s. The calibration microbenchmark (bench target [micro])
    checks that a 64-byte two-hop remote fetch lands near the paper's
    20 us and an intra-node fetch near 11 us. *)

type t = {
  local_latency : int;  (** wire cycles for an intra-node message *)
  remote_latency : int;  (** wire cycles for an inter-node message *)
  local_cycles_per_byte : float;  (** serialization cost per payload byte *)
  remote_cycles_per_byte : float;
}

val default : t

val transfer_cycles : t -> same_node:bool -> size:int -> int
(** Wire latency plus serialization time for a message of [size] payload
    bytes. *)
