type 'a msg = { arrival : int; seq : int; src : int; payload : 'a }

(* Minimal binary min-heap on (arrival, seq). *)
module Heap = struct
  type 'a t = { mutable data : 'a msg array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let less a b = a.arrival < b.arrival || (a.arrival = b.arrival && a.seq < b.seq)

  let swap h i j =
    let t = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- t

  let push h m =
    if h.size = Array.length h.data then begin
      let cap = max 16 (2 * h.size) in
      let data = Array.make cap m in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end;
    h.data.(h.size) <- m;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && less h.data.(!i) h.data.((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let peek h = if h.size = 0 then None else Some h.data.(0)

  let pop h =
    match peek h with
    | None -> None
    | Some m ->
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some m
end

type 'a t = {
  topo : Topology.t;
  link : Link.t;
  queues : 'a Heap.t array;
  last_arrival : (int * int, int) Hashtbl.t;  (* (src,dst) -> last arrival *)
  mutable seq : int;
  mutable n_local : int;
  mutable n_remote : int;
  mutable n_bytes_remote : int;
}

let create topo link =
  {
    topo;
    link;
    queues = Array.init (Topology.nprocs topo) (fun _ -> Heap.create ());
    last_arrival = Hashtbl.create 64;
    seq = 0;
    n_local = 0;
    n_remote = 0;
    n_bytes_remote = 0;
  }

let send t ~src ~dst ~now ~size payload =
  let same_node = Topology.same_node t.topo src dst in
  let transfer = Link.transfer_cycles t.link ~same_node ~size in
  let arrival = now + transfer in
  let arrival =
    match Hashtbl.find_opt t.last_arrival (src, dst) with
    | Some last when last >= arrival -> last + 1
    | _ -> arrival
  in
  Hashtbl.replace t.last_arrival (src, dst) arrival;
  if same_node then t.n_local <- t.n_local + 1
  else begin
    t.n_remote <- t.n_remote + 1;
    t.n_bytes_remote <- t.n_bytes_remote + size
  end;
  Heap.push t.queues.(dst) { arrival; seq = t.seq; src; payload };
  t.seq <- t.seq + 1

let poll t ~dst ~now =
  match Heap.peek t.queues.(dst) with
  | Some m when m.arrival <= now -> (
    match Heap.pop t.queues.(dst) with
    | Some m -> Some (m.src, m.payload)
    | None -> assert false)
  | Some _ | None -> None

let peek_arrival t ~dst =
  Option.map (fun m -> m.arrival) (Heap.peek t.queues.(dst))

let queued t ~dst = t.queues.(dst).Heap.size
let sent_local t = t.n_local
let sent_remote t = t.n_remote
let bytes_remote t = t.n_bytes_remote
