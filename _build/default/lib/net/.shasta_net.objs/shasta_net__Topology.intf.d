lib/net/topology.mli:
