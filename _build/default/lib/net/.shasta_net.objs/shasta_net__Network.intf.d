lib/net/network.mli: Link Topology
