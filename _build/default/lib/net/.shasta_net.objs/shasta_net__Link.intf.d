lib/net/link.mli:
