lib/net/link.ml: Float
