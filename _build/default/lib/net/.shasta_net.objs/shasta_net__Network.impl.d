lib/net/network.ml: Array Hashtbl Link Option Topology
