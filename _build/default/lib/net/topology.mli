(** Physical placement of processors on SMP nodes.

    The prototype cluster of the paper is four 4-processor AlphaServers;
    message latency depends on whether two processors share a physical
    node, independently of the protocol's logical clustering degree. *)

type t

val create : nprocs:int -> procs_per_node:int -> t
(** [procs_per_node] must be positive; the last node may be partially
    filled when it does not divide [nprocs]. *)

val nprocs : t -> int
val procs_per_node : t -> int

val nnodes : t -> int
(** Number of (possibly partially filled) physical nodes. *)

val node_of : t -> int -> int
(** Physical node hosting a processor. *)

val same_node : t -> int -> int -> bool

val procs_of_node : t -> int -> int list
(** Processors hosted on a node, ascending. *)
