type t = {
  local_latency : int;
  remote_latency : int;
  local_cycles_per_byte : float;
  remote_cycles_per_byte : float;
}

(* 300 MHz: 1 us = 300 cycles. Remote: 4 us wire; 35 MB/s ~ 8.2 cyc/B.
   Local: ~1 us through a coherent shared-memory queue; 45 MB/s ~ 6.4 cyc/B. *)
let default =
  {
    local_latency = 250;
    remote_latency = 1200;
    local_cycles_per_byte = 4.0;
    remote_cycles_per_byte = 8.2;
  }

let transfer_cycles t ~same_node ~size =
  let lat, per_byte =
    if same_node then (t.local_latency, t.local_cycles_per_byte)
    else (t.remote_latency, t.remote_cycles_per_byte)
  in
  lat + int_of_float (Float.round (float_of_int size *. per_byte))
