lib/sim/engine.mli:
