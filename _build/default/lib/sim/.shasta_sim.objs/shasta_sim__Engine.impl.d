lib/sim/engine.ml: Array Effect
