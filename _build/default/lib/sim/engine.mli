(** Deterministic cooperative multiprocessor.

    Each simulated processor runs as an effect-handler coroutine with its
    own virtual cycle clock. The scheduler always resumes the runnable
    processor with the smallest clock (ties broken by processor id), so a
    run is a deterministic function of the program and its seeds.

    Causality note: a processor observes a message in its input queue only
    at a scheduling point at-or-after the message's arrival timestamp, which
    models polling-based reception (messages are never handled between an
    inline state check and its corresponding load/store, the key invariant
    of the Shasta protocol). *)

type proc
(** Handle to the currently executing simulated processor. *)

exception Cycle_limit of int
(** Raised (carrying the processor id) when a processor exceeds the run's
    cycle budget — the simulator's deadlock/livelock backstop. *)

val run : nprocs:int -> ?max_cycles:int -> (proc -> unit) -> int array
(** [run ~nprocs body] spawns [nprocs] processors executing [body] and
    schedules them to completion; result is each processor's finish time
    in cycles. [max_cycles] defaults to [2_000_000_000]. *)

val pid : proc -> int
(** Identifier in \[0, nprocs). *)

val nprocs : proc -> int
(** Number of processors in this run. *)

val now : proc -> int
(** Current value of this processor's cycle clock. *)

val advance : proc -> int -> unit
(** [advance p c] charges [c] cycles and yields to the scheduler. *)

val advance_local : proc -> int -> unit
(** Charge cycles without a scheduling point — for short straight-line
    sequences where interleaving cannot matter. *)

val yield : proc -> unit
(** Scheduling point without a time charge. *)
