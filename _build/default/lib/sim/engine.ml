type _ Effect.t += Yield : unit Effect.t

type status =
  | Fresh
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

type proc = {
  p_id : int;
  p_nprocs : int;
  mutable p_now : int;
  mutable p_status : status;
  p_max_cycles : int;
}

exception Cycle_limit of int

let pid p = p.p_id
let nprocs p = p.p_nprocs
let now p = p.p_now

let advance_local p c =
  assert (c >= 0);
  p.p_now <- p.p_now + c;
  if p.p_now > p.p_max_cycles then raise (Cycle_limit p.p_id)

let yield _p = Effect.perform Yield

let advance p c =
  advance_local p c;
  Effect.perform Yield

(* Resume [p] under a deep handler that parks the continuation on Yield.
   The handler returns control to the scheduler loop after each effect. *)
let step body p =
  match p.p_status with
  | Finished | Running -> assert false
  | Suspended k ->
    p.p_status <- Running;
    Effect.Deep.continue k ()
  | Fresh ->
    p.p_status <- Running;
    Effect.Deep.match_with
      (fun () -> body p)
      ()
      {
        retc = (fun () -> p.p_status <- Finished);
        exnc = (fun e -> raise e);
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Yield ->
              Some
                (fun (k : (c, unit) Effect.Deep.continuation) ->
                  p.p_status <- Suspended k)
            | _ -> None);
      }

let pick tasks =
  let best = ref None in
  Array.iter
    (fun p ->
      match p.p_status with
      | Finished | Running -> ()
      | Fresh | Suspended _ -> (
        match !best with
        | Some b when b.p_now <= p.p_now -> ()
        | _ -> best := Some p))
    tasks;
  !best

let run ~nprocs ?(max_cycles = 2_000_000_000) body =
  assert (nprocs > 0);
  let tasks =
    Array.init nprocs (fun i ->
        {
          p_id = i;
          p_nprocs = nprocs;
          p_now = 0;
          p_status = Fresh;
          p_max_cycles = max_cycles;
        })
  in
  let rec loop () =
    match pick tasks with
    | None -> ()
    | Some p ->
      step body p;
      (* A Running status here means [step] returned without the task either
         finishing or suspending, which the handler construction rules out. *)
      assert (p.p_status <> Running);
      loop ()
  in
  loop ();
  Array.map (fun p -> p.p_now) tasks
