(** Machine introspection: state dumps and invariant checking.

    Used by the test suite after every randomized run, and available for
    debugging protocol issues together with the [SHASTA_TRACE_BLOCK]
    event trace. *)

val check_invariants : Machine.t -> string list
(** Machine-wide coherence invariants, checked over every allocated
    block; returns human-readable violations (empty = healthy):

    - at most one node holds a block [Exclusive], and then no other node
      holds it [Shared];
    - some node always holds a valid copy;
    - no processor's private entry exceeds its node's shared entry
      (outside an active batch, which temporarily suspends this);
    - an invalid block with no miss entry and no deferred flag write
      carries the invalid-flag pattern in every longword;
    - a quiescent machine has no pending/pending-downgrade bits, busy
      directory entries, queued messages, miss entries, downgrades or
      batch markers. *)

val assert_invariants : Machine.t -> unit
(** Raises [Failure] with the violation list if any invariant fails. *)

val dump : ?block:int -> Format.formatter -> Machine.t -> unit
(** Human-readable machine state: per-processor status, outstanding miss
    entries, downgrades, busy directory entries, lock/barrier state and
    network queue depths. With [block], also prints that block's state
    on every node and in every private table. *)
