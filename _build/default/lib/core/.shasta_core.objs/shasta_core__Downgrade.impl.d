lib/core/downgrade.ml: Hashtbl List Msg Shasta_mem
