lib/core/protocol.ml: Array Bytes Config Directory Downgrade Fun Hashtbl List Machine Miss_table Msg Option Printf Shasta_mem Shasta_net Shasta_sim Shasta_util Stats String Sys Timing
