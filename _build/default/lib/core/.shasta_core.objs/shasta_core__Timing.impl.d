lib/core/timing.ml:
