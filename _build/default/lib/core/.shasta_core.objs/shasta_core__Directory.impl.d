lib/core/directory.ml: Hashtbl List Msg Shasta_util
