lib/core/msg.ml: Bytes Shasta_mem
