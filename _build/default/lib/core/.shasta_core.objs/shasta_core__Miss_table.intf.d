lib/core/miss_table.mli: Msg Shasta_util
