lib/core/downgrade.mli: Msg Shasta_mem
