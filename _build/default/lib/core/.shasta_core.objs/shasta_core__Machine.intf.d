lib/core/machine.mli: Config Directory Downgrade Hashtbl Miss_table Msg Shasta_mem Shasta_net Shasta_sim Shasta_util Stats
