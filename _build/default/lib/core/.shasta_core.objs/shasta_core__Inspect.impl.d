lib/core/inspect.ml: Array Config Directory Downgrade Format Hashtbl List Machine Miss_table Msg Printf Shasta_mem Shasta_net Shasta_util Stats String
