lib/core/inspect.mli: Format Machine
