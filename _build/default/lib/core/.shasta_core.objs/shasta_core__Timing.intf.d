lib/core/timing.mli:
