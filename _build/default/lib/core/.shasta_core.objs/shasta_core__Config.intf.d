lib/core/config.mli: Shasta_net Timing
