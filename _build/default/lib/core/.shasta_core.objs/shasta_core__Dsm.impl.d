lib/core/dsm.ml: Array Config Fun Int64 List Machine Protocol Shasta_mem Shasta_net Shasta_sim Stats Timing
