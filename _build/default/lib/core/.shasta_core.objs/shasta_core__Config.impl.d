lib/core/config.ml: List Shasta_net Timing
