lib/core/dsm.mli: Config Machine Shasta_util Stats
