lib/core/msg.mli: Bytes Shasta_mem
