lib/core/miss_table.ml: Hashtbl Msg Shasta_util
