lib/core/stats.mli: Msg Shasta_util
