lib/core/stats.ml: Array List Msg Shasta_util Timing
