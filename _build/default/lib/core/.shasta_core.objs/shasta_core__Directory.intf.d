lib/core/directory.mli: Msg Shasta_util
