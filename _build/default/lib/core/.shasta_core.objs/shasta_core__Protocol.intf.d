lib/core/protocol.mli: Machine Shasta_mem Shasta_sim Stats Timing
