module Layout = Shasta_mem.Layout
module Image = Shasta_mem.Image
module State_table = Shasta_mem.State_table
module Network = Shasta_net.Network

let state_rank = function
  | State_table.Invalid -> 0
  | State_table.Shared -> 1
  | State_table.Exclusive -> 2

let iter_allocated_blocks (m : Machine.t) f =
  let used = Shasta_mem.Alloc.used_bytes m.Machine.heap in
  let pos = ref 0 in
  while !pos < used do
    f !pos;
    pos := !pos + Machine.block_size m !pos
  done

let block_in_batch (m : Machine.t) ns block =
  let layout = m.Machine.layout in
  let first = Layout.line_of layout block in
  let n = Machine.block_size m block / layout.Layout.line_size in
  let hit = ref false in
  for l = first to first + n - 1 do
    if Hashtbl.mem ns.Machine.batch_lines l then hit := true
  done;
  !hit

let check_invariants (m : Machine.t) =
  let bad = ref [] in
  let layout = m.Machine.layout in
  let quiescent = Machine.quiescent m in
  iter_allocated_blocks m (fun block ->
      let line = Layout.line_of layout block in
      let exclusive = ref 0 and valid = ref 0 in
      Array.iteri
        (fun n ns ->
          (match State_table.get ns.Machine.table line with
          | State_table.Exclusive ->
            incr exclusive;
            incr valid
          | State_table.Shared -> incr valid
          | State_table.Invalid -> ());
          if quiescent then begin
            if State_table.pending ns.Machine.table line then
              bad :=
                Printf.sprintf "block %#x: node %d pending while quiescent" block n
                :: !bad;
            if State_table.pending_downgrade ns.Machine.table line then
              bad :=
                Printf.sprintf
                  "block %#x: node %d pending-downgrade while quiescent" block n
                :: !bad
          end;
          (* Invalid and settled => flag pattern everywhere. *)
          if
            quiescent
            && State_table.get ns.Machine.table line = State_table.Invalid
            && (not (Hashtbl.mem ns.Machine.deferred_flags block))
            && not (block_in_batch m ns block)
          then begin
            let size = Machine.block_size m block in
            let words = size / 8 in
            let clean = ref true in
            for w = 0 to words - 1 do
              if not (Image.is_flag64 (Image.load64 ns.Machine.image (block + (8 * w))))
              then clean := false
            done;
            if not !clean then
              bad :=
                Printf.sprintf "block %#x: node %d invalid without flag pattern"
                  block n
                :: !bad
          end)
        m.Machine.nodes;
      if !exclusive > 1 then
        bad := Printf.sprintf "block %#x: %d exclusive nodes" block !exclusive :: !bad;
      if !exclusive = 1 && !valid > 1 then
        bad :=
          Printf.sprintf "block %#x: exclusive node coexists with sharers" block
          :: !bad;
      if !valid = 0 then
        bad := Printf.sprintf "block %#x: no valid copy anywhere" block :: !bad;
      (* Private entries never exceed the node's shared entry, except
         transiently under an active batch. *)
      Array.iteri
        (fun p priv ->
          let node = Machine.node_of m p in
          let ns = m.Machine.nodes.(node) in
          if
            (not (block_in_batch m ns block))
            && state_rank (State_table.get priv line)
               > state_rank (State_table.get ns.Machine.table line)
          then
            bad :=
              Printf.sprintf
                "block %#x: proc %d private overstates node %d shared state"
                block p node
              :: !bad)
        m.Machine.privates)
  ;
  List.rev !bad

let assert_invariants m =
  match check_invariants m with
  | [] -> ()
  | violations ->
    failwith ("Inspect.assert_invariants:\n  " ^ String.concat "\n  " violations)

let pp_base = State_table.pp_base

let dump ?block ppf (m : Machine.t) =
  let open Format in
  fprintf ppf "=== machine: %d procs, clustering %d ===@."
    m.Machine.cfg.Config.nprocs m.Machine.cfg.Config.clustering;
  Array.iteri
    (fun i (ps : Machine.proc_state) ->
      fprintf ppf "proc %2d: node %d, %s, category %s, outstanding stores %d@." i
        ps.Machine.node
        (if ps.Machine.finished then "finished" else "running")
        (Stats.category_name ps.Machine.category)
        ps.Machine.outstanding_stores)
    m.Machine.procs;
  Array.iteri
    (fun n (ns : Machine.node_state) ->
      List.iter
        (fun id ->
          match Miss_table.find_id ns.Machine.misses id with
          | Some e ->
            fprintf ppf
              "node %d miss: block %#x kind %s ready=%b acks %d/%d ranges %d@." n
              e.Miss_table.block
              (match e.Miss_table.kind with
              | Msg.Read -> "read"
              | Msg.Readex -> "readex"
              | Msg.Upgrade -> "upgrade")
              e.Miss_table.data_ready e.Miss_table.acks_received
              e.Miss_table.acks_expected
              (List.length e.Miss_table.store_ranges)
          | None -> ())
        (Miss_table.outstanding_ids ns.Machine.misses);
      if Downgrade.count ns.Machine.downgrades > 0 then
        fprintf ppf "node %d: %d downgrades in progress@." n
          (Downgrade.count ns.Machine.downgrades);
      if Hashtbl.length ns.Machine.deferred_flags > 0 then
        fprintf ppf "node %d: %d deferred flag writes@." n
          (Hashtbl.length ns.Machine.deferred_flags))
    m.Machine.nodes;
  Array.iteri
    (fun p d ->
      Directory.iter
        (fun b e ->
          if e.Directory.busy || e.Directory.queue <> [] then
            fprintf ppf "dir@%d block %#x: busy=%b owner=%d sharers=%a queue=%d@." p
              b e.Directory.busy e.Directory.owner Shasta_util.Bitset.pp
              e.Directory.sharers
              (List.length e.Directory.queue))
        d)
    m.Machine.dirs;
  Hashtbl.iter
    (fun id (ls : Machine.lock_state) ->
      if ls.Machine.held || ls.Machine.lock_queue <> [] then
        fprintf ppf "lock %d: holder %d, %d queued@." id ls.Machine.holder
          (List.length ls.Machine.lock_queue))
    m.Machine.locks;
  Hashtbl.iter
    (fun id (bs : Machine.barrier_state) ->
      fprintf ppf "barrier %d: arrived %d, generation %d@." id bs.Machine.arrived
        bs.Machine.generation)
    m.Machine.barriers;
  for p = 0 to m.Machine.cfg.Config.nprocs - 1 do
    let q = Network.queued m.Machine.net ~dst:p in
    if q > 0 then fprintf ppf "net: %d messages queued for proc %d@." q p
  done;
  match block with
  | None -> ()
  | Some b ->
    let line = Layout.line_of m.Machine.layout b in
    fprintf ppf "block %#x:@." b;
    Array.iteri
      (fun n ns ->
        fprintf ppf "  node %d: %a pend=%b pdg=%b@." n pp_base
          (State_table.get ns.Machine.table line)
          (State_table.pending ns.Machine.table line)
          (State_table.pending_downgrade ns.Machine.table line))
      m.Machine.nodes;
    Array.iteri
      (fun p priv ->
        fprintf ppf "  proc %d private: %a@." p pp_base (State_table.get priv line))
      m.Machine.privates
