(** Cycle-cost parameters of the simulated system.

    All values are 300 MHz processor cycles (1 us = 300 cycles), chosen
    to match the measurements reported in the paper: inline-check costs
    from §2.2-2.3 and §3.4.1, protocol-operation costs calibrated so the
    §4.1 microbenchmarks land near the reported latencies (20 us remote /
    11 us intra-node 64-byte fetch; +10 us for the first downgrade and
    +5 us per additional one). *)

type t = {
  (* Inline access checks. *)
  load_check_flag : int;
      (** flag-based load check when the value is not the flag (§2.3) *)
  load_check_flag_float_base : int;
      (** Base-Shasta float-load flag check: extra integer load *)
  load_check_flag_float_smp : int;
      (** SMP-Shasta float-load flag check: store to stack + integer
          load, needed to make the check atomic (§3.4.1) *)
  store_check : int;  (** state-table store check (Figure 1) *)
  batch_check_per_line_base : int;
      (** Base-Shasta batched check, per line: flag compare for load-only
          batches *)
  batch_check_per_line_smp : int;
      (** SMP-Shasta batched check, per line: always via the private
          state table (§3.4.1) *)
  batch_check_per_range : int;
      (** fixed cost per batched base register: address computation and
          the entry/exit of the batched check sequence *)
  poll : int;  (** polling for messages at a loop backedge *)
  poll_interval_ops : int;
      (** simulated accesses between implicit polls (loop backedges) *)
  (* Protocol operations. *)
  protocol_entry : int;
      (** entering the protocol: saving registers etc. (task time) *)
  miss_setup : int;  (** allocating a miss entry and sending the request *)
  handler_base : int;  (** dispatching any incoming message *)
  handler_home : int;  (** directory lookup + action at the home *)
  handler_data_apply : int;  (** installing reply data, updating state *)
  handler_downgrade : int;
      (** processing an intra-node downgrade message (includes the
          private-state-table update) *)
  downgrade_initiate : int;
      (** inspecting sibling private tables *)
  downgrade_send : int;
      (** per downgrade message sent: the sends are serialized at the
          initiating processor, which is what makes each additional
          downgrade add ~5 us to the miss latency (§4.4) *)
  remote_send : int;
      (** extra sender-side overhead for an inter-node message (Memory
          Channel doorbell/DMA setup) on top of the wire model *)
  smp_lock : int;
      (** acquiring+releasing the per-line lock around a protocol
          operation, including memory barriers — SMP-Shasta only *)
  private_upgrade : int;
      (** miss satisfied from the node's shared state table: upgrading
          the processor's private entry ("other" time) *)
  memory_barrier : int;  (** one Alpha MB instruction *)
  sync_manager : int;  (** lock/barrier manager bookkeeping per message *)
  stall_gap : int;  (** spin granularity while stalled, between polls *)
  max_outstanding_stores : int;
      (** per-processor limit on outstanding store misses; stores stall
          beyond it ("protocol limitations on the number of outstanding
          stores", §4.3) *)
}

val default : t

val cycles_per_us : float
(** 300. — cycle/microsecond conversion for reporting. *)

val us_of_cycles : int -> float
