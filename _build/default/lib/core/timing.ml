type t = {
  load_check_flag : int;
  load_check_flag_float_base : int;
  load_check_flag_float_smp : int;
  store_check : int;
  batch_check_per_line_base : int;
  batch_check_per_line_smp : int;
  batch_check_per_range : int;
  poll : int;
  poll_interval_ops : int;
  protocol_entry : int;
  miss_setup : int;
  handler_base : int;
  handler_home : int;
  handler_data_apply : int;
  handler_downgrade : int;
  downgrade_initiate : int;
  downgrade_send : int;
  remote_send : int;
  smp_lock : int;
  private_upgrade : int;
  memory_barrier : int;
  sync_manager : int;
  stall_gap : int;
  max_outstanding_stores : int;
}

let default =
  {
    load_check_flag = 2;
    load_check_flag_float_base = 3;
    load_check_flag_float_smp = 8;
    store_check = 7;
    batch_check_per_line_base = 3;
    batch_check_per_line_smp = 7;
    batch_check_per_range = 12;
    poll = 3;
    poll_interval_ops = 4;
    protocol_entry = 60;
    miss_setup = 390;
    handler_base = 300;
    handler_home = 640;
    handler_data_apply = 550;
    handler_downgrade = 600;
    downgrade_initiate = 450;
    downgrade_send = 1200;
    remote_send = 150;
    smp_lock = 450;
    private_upgrade = 330;
    memory_barrier = 10;
    sync_manager = 180;
    stall_gap = 60;
    max_outstanding_stores = 4;
  }

let cycles_per_us = 300.
let us_of_cycles c = float_of_int c /. cycles_per_us
