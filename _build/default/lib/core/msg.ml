type req_kind = Read | Readex | Upgrade

type t =
  | Req of { kind : req_kind; block : int }
  | Fwd of { kind : req_kind; block : int; requester : int; inval_acks : int }
  | Data_reply of {
      kind : req_kind;
      block : int;
      data : Bytes.t;
      from_home : bool;
      inval_acks : int;
    }
  | Upgrade_reply of { block : int; inval_acks : int }
  | Invalidate of { block : int; requester : int }
  | Inval_ack of { block : int }
  | Sharing_wb of { block : int; new_sharer : int }
  | Own_ack of { block : int }
  | Downgrade of { block : int; target : Shasta_mem.State_table.base }
  | Lock_req of { lock : int }
  | Lock_grant of { lock : int }
  | Lock_release of { lock : int }
  | Barrier_arrive of { barrier : int }
  | Barrier_release of { barrier : int; generation : int }

let header = 16

let size_bytes = function
  | Data_reply { data; _ } -> header + Bytes.length data
  | Req _ | Fwd _ | Upgrade_reply _ | Invalidate _ | Inval_ack _
  | Sharing_wb _ | Own_ack _ | Downgrade _ | Lock_req _ | Lock_grant _
  | Lock_release _ | Barrier_arrive _ | Barrier_release _ ->
    header

let describe = function
  | Req { kind = Read; _ } -> "read_req"
  | Req { kind = Readex; _ } -> "readex_req"
  | Req { kind = Upgrade; _ } -> "upgrade_req"
  | Fwd { kind = Read; _ } -> "read_fwd"
  | Fwd { kind = Readex; _ } -> "readex_fwd"
  | Fwd { kind = Upgrade; _ } -> "upgrade_fwd"
  | Data_reply _ -> "data_reply"
  | Upgrade_reply _ -> "upgrade_reply"
  | Invalidate _ -> "invalidate"
  | Inval_ack _ -> "inval_ack"
  | Sharing_wb _ -> "sharing_wb"
  | Own_ack _ -> "own_ack"
  | Downgrade _ -> "downgrade"
  | Lock_req _ -> "lock_req"
  | Lock_grant _ -> "lock_grant"
  | Lock_release _ -> "lock_release"
  | Barrier_arrive _ -> "barrier_arrive"
  | Barrier_release _ -> "barrier_release"
