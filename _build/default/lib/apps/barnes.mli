(** SPLASH-2 Barnes (simplified): Barnes-Hut hierarchical N-body.

    Each timestep builds the octree and computes cell centers of mass in
    a serial phase (the SPLASH version parallelizes the build with
    per-cell locks; the serial build preserves the read-shared
    consumption of the cell arrays, which dominates communication), then
    all processors traverse the tree to compute forces on their body
    stripe and integrate. The variable-granularity hint allocates the
    cell array in 512-byte blocks (Table 2). *)

val instance : App.maker
