let mol_bytes = 72
let fields = 9
let flop_cycles = 6
let pair_flops = 40 * flop_cycles

type mol = { px : float; py : float; pz : float }

let wrap ~box d =
  if d > box /. 2.0 then d -. box
  else if d < -.box /. 2.0 then d +. box
  else d

let pair_force ~box ~cutoff a b =
  let dx = wrap ~box (a.px -. b.px) in
  let dy = wrap ~box (a.py -. b.py) in
  let dz = wrap ~box (a.pz -. b.pz) in
  let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
  if r2 >= cutoff *. cutoff || r2 = 0.0 then None
  else
    (* Soft Lennard-Jones-like kernel; the exact force law is irrelevant
       to the sharing pattern, but it must be smooth and deterministic. *)
    let inv2 = 1.0 /. (r2 +. 0.05) in
    let inv6 = inv2 *. inv2 *. inv2 in
    let mag = inv6 *. ((2.0 *. inv6) -. 1.0) *. inv2 in
    Some (mag *. dx, mag *. dy, mag *. dz)

let integrate ~dt ~box a n =
  let wrap_pos p = if p < 0.0 then p +. box else if p >= box then p -. box else p in
  for i = 0 to n - 1 do
    let base = i * fields in
    for d = 0 to 2 do
      a.(base + 3 + d) <- a.(base + 3 + d) +. (a.(base + 6 + d) *. dt);
      a.(base + d) <- wrap_pos (a.(base + d) +. (a.(base + 3 + d) *. dt));
      a.(base + 6 + d) <- 0.0
    done
  done

let init_molecules prng ~n ~box =
  let a = Array.make (n * fields) 0.0 in
  let side = int_of_float (Float.round (Float.cbrt (float_of_int n))) in
  let side = max 1 side in
  for i = 0 to n - 1 do
    let base = i * fields in
    let gx = i mod side
    and gy = i / side mod side
    and gz = i / (side * side) mod side in
    let cell = box /. float_of_int side in
    a.(base + 0) <- (float_of_int gx +. 0.5 +. (0.2 *. (Shasta_util.Prng.float prng 1.0 -. 0.5))) *. cell;
    a.(base + 1) <- (float_of_int gy +. 0.5 +. (0.2 *. (Shasta_util.Prng.float prng 1.0 -. 0.5))) *. cell;
    a.(base + 2) <- (float_of_int gz +. 0.5 +. (0.2 *. (Shasta_util.Prng.float prng 1.0 -. 0.5))) *. cell;
    a.(base + 3) <- 0.05 *. (Shasta_util.Prng.float prng 1.0 -. 0.5);
    a.(base + 4) <- 0.05 *. (Shasta_util.Prng.float prng 1.0 -. 0.5);
    a.(base + 5) <- 0.05 *. (Shasta_util.Prng.float prng 1.0 -. 0.5)
  done;
  a
