(** SPLASH-2 LU-Contiguous: blocked dense LU with block-major layout.

    Each 16×16 element block is contiguous in memory and homed at its
    owning processor (the standard home-placement optimization). The
    variable-granularity hint makes each data block one 2048-byte
    coherence block (Table 2), eliminating all intra-block false
    sharing. *)

val instance : App.maker
