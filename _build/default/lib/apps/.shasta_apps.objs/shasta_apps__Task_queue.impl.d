lib/apps/task_queue.ml: Array Shasta_core
