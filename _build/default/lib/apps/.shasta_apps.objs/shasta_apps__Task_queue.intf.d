lib/apps/task_queue.mli: Shasta_core
