lib/apps/lu_contig.ml: App Array Lu_common Printf Shasta_core Shasta_util
