lib/apps/water_common.ml: Array Float Shasta_util
