lib/apps/lu_contig.mli: App
