lib/apps/water_nsq.ml: App Array Float Printf Shasta_core Shasta_util Water_common
