lib/apps/app.ml: Float Shasta_core
