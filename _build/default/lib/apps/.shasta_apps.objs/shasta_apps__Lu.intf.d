lib/apps/lu.mli: App
