lib/apps/ocean.mli: App
