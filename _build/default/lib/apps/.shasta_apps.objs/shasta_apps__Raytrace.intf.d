lib/apps/raytrace.mli: App
