lib/apps/water_sp.mli: App
