lib/apps/fmm.mli: App
