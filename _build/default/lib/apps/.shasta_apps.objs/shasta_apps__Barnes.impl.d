lib/apps/barnes.ml: App Array Float Printf Shasta_core Shasta_util
