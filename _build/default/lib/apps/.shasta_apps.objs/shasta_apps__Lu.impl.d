lib/apps/lu.ml: App Array Lu_common Printf Shasta_core Shasta_util
