lib/apps/fmm.ml: App Array Float List Printf Shasta_core Shasta_util
