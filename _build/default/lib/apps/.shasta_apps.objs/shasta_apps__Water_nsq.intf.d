lib/apps/water_nsq.mli: App
