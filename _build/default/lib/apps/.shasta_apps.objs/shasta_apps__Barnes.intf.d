lib/apps/barnes.mli: App
