lib/apps/volrend.ml: App Array Float Printf Shasta_core Shasta_util Task_queue
