lib/apps/water_sp.ml: App Array Float List Printf Shasta_core Shasta_util Water_common
