lib/apps/registry.ml: App Barnes Fmm List Lu Lu_contig Ocean Raytrace Volrend Water_nsq Water_sp
