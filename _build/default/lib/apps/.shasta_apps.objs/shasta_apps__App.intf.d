lib/apps/app.mli: Shasta_core
