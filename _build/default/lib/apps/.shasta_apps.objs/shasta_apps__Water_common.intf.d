lib/apps/water_common.mli: Shasta_util
