lib/apps/volrend.mli: App
