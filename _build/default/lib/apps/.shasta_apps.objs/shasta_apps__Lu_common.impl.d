lib/apps/lu_common.ml: App Array Float List Printf Shasta_core Shasta_util
