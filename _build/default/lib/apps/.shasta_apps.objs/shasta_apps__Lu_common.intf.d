lib/apps/lu_common.mli: App Shasta_core Shasta_util
