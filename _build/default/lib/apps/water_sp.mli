(** SPLASH-2 Water-Spatial (simplified): cutoff molecular dynamics with
    a 3-D cell decomposition.

    Cells (with their occupancy lists) are partitioned among processors
    and homed at their owners; each step rebuilds the owner's cell lists,
    evaluates forces against the 27 neighbouring cells, and integrates
    the molecules currently in the owner's cells. Molecules migrate
    between cells — and hence between owning processors — over time,
    which is the source of Water's migratory downgrade behaviour. *)

val instance : App.maker
