module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config

type t = {
  nprocs : int;
  cap : int;
  queues : int;  (** base address: per proc, (1 + cap) ints *)
  locks : int array;
}

let q_count t p = t.queues + (p * (1 + t.cap) * 8)
let q_item t p i = t.queues + (((p * (1 + t.cap)) + 1 + i) * 8)

let create h ~ntasks =
  let nprocs = (Dsm.config h).Config.nprocs in
  let cap = ntasks in
  let queues = Dsm.alloc h (nprocs * (1 + cap) * 8) in
  let t = { nprocs; cap; queues; locks = Array.init nprocs (fun _ -> Dsm.alloc_lock h) } in
  let counts = Array.make nprocs 0 in
  for task = 0 to ntasks - 1 do
    let p = task mod nprocs in
    Dsm.poke_int h (q_item t p counts.(p)) task;
    counts.(p) <- counts.(p) + 1
  done;
  Array.iteri (fun p c -> Dsm.poke_int h (q_count t p) c) counts;
  t

let try_pop t ctx victim =
  Dsm.lock ctx t.locks.(victim);
  let n = Dsm.load_int ctx (q_count t victim) in
  let r =
    if n > 0 then begin
      let task = Dsm.load_int ctx (q_item t victim (n - 1)) in
      Dsm.store_int ctx (q_count t victim) (n - 1);
      Some task
    end
    else None
  in
  Dsm.unlock ctx t.locks.(victim);
  r

let drain t ctx worker =
  let p = Dsm.pid ctx in
  let rec next victim tried =
    if tried >= t.nprocs then None
    else
      match try_pop t ctx victim with
      | Some task -> Some task
      | None -> next ((victim + 1) mod t.nprocs) (tried + 1)
  in
  let rec loop () =
    match next p 0 with
    | Some task ->
      worker task;
      loop ()
    | None -> ()
  in
  loop ()
