(** Catalogue of the nine SPLASH-2 workloads. *)

val all : (string * App.maker) list
(** In the paper's Table 1 order: barnes, fmm, lu, lu-contig, ocean,
    raytrace, volrend, water-nsq, water-sp. *)

val find : string -> App.maker
(** Raises [Not_found] for unknown names. *)

val names : string list

val table2 : string list
(** The six applications with a variable-granularity hint (Table 2). *)

val table3 : string list
(** The seven applications measured at larger problem sizes (Table 3). *)
