module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Prng = Shasta_util.Prng

let sphere_slots = 8 (* cx cy cz r col_r col_g col_b reflect *)
let tile = 8
let flop_cycles = 6

(* The tracer is written over an abstract scene accessor so the parallel
   run and the sequential reference share the code exactly. *)
type scene = {
  nspheres : int;
  sph : int -> int -> float;  (* sphere, field *)
  work : int -> unit;
}

let eye = (0.0, 0.0, -3.0)
let light = (5.0, 8.0, -4.0)

let norm3 (x, y, z) =
  let l = Float.sqrt ((x *. x) +. (y *. y) +. (z *. z)) in
  (x /. l, y /. l, z /. l)

let dot (ax, ay, az) (bx, by, bz) = (ax *. bx) +. (ay *. by) +. (az *. bz)
let sub (ax, ay, az) (bx, by, bz) = (ax -. bx, ay -. by, az -. bz)
let add (ax, ay, az) (bx, by, bz) = (ax +. bx, ay +. by, az +. bz)
let scale s (x, y, z) = (s *. x, s *. y, s *. z)

(* Nearest positive intersection of the ray with any sphere. *)
let intersect sc ~origin ~dir ~skip =
  let best = ref None in
  for s = 0 to sc.nspheres - 1 do
    if s <> skip then begin
      let c = (sc.sph s 0, sc.sph s 1, sc.sph s 2) in
      let r = sc.sph s 3 in
      let oc = sub origin c in
      let b = dot oc dir in
      let q = dot oc oc -. (r *. r) in
      let disc = (b *. b) -. q in
      sc.work (12 * flop_cycles);
      if disc > 0.0 then begin
        let t = -.b -. Float.sqrt disc in
        if t > 1e-6 then
          match !best with
          | Some (bt, _) when bt <= t -> ()
          | _ -> best := Some (t, s)
      end
    end
  done;
  !best

let rec trace sc ~origin ~dir ~skip ~depth =
  match intersect sc ~origin ~dir ~skip with
  | None -> 0.05 (* background *)
  | Some (t, s) ->
    let hit = add origin (scale t dir) in
    let center = (sc.sph s 0, sc.sph s 1, sc.sph s 2) in
    let n = norm3 (sub hit center) in
    let ldir = norm3 (sub light hit) in
    let shadowed =
      match intersect sc ~origin:hit ~dir:ldir ~skip:s with
      | Some _ -> true
      | None -> false
    in
    let diffuse = if shadowed then 0.0 else Float.max 0.0 (dot n ldir) in
    let albedo = sc.sph s 4 in
    sc.work (20 * flop_cycles);
    let local = (0.1 +. (0.9 *. diffuse)) *. albedo in
    let refl = sc.sph s 7 in
    if refl > 0.0 && depth > 0 then begin
      let d = sub dir (scale (2.0 *. dot dir n) n) in
      local +. (refl *. trace sc ~origin:hit ~dir:(norm3 d) ~skip:s ~depth:(depth - 1))
    end
    else local

let render_pixel sc ~w ~h x y =
  let px = ((float_of_int x +. 0.5) /. float_of_int w) -. 0.5 in
  let py = ((float_of_int y +. 0.5) /. float_of_int h) -. 0.5 in
  let dir = norm3 (sub (px, -.py, 0.0) eye) in
  trace sc ~origin:eye ~dir ~skip:(-1) ~depth:2

let instance ?(vg = false) ?(scale = 1.0) () =
  ignore vg;
  (* Raytrace is not in Table 2; no granularity hint. *)
  let w = App.scaled scale 48 and h = App.scaled scale 48 in
  let nspheres = App.scaled scale 48 in
  {
    App.name = "raytrace";
    workload = Printf.sprintf "%dx%d image, %d spheres, depth 2" w h nspheres;
    heap_bytes = ((nspheres * sphere_slots) + (w * h) + 4096) * 8 + (1 lsl 16);
    setup =
      (fun h_ ->
        let prng = Prng.create 31415 in
        let scene_data = Array.make (nspheres * sphere_slots) 0.0 in
        for s = 0 to nspheres - 1 do
          let base = s * sphere_slots in
          scene_data.(base + 0) <- (Prng.float prng 4.0) -. 2.0;
          scene_data.(base + 1) <- (Prng.float prng 4.0) -. 2.0;
          scene_data.(base + 2) <- 1.0 +. Prng.float prng 4.0;
          scene_data.(base + 3) <- 0.15 +. Prng.float prng 0.35;
          scene_data.(base + 4) <- 0.3 +. Prng.float prng 0.7;
          scene_data.(base + 5) <- Prng.float prng 1.0;
          scene_data.(base + 6) <- Prng.float prng 1.0;
          scene_data.(base + 7) <- (if Prng.bool prng then 0.3 else 0.0)
        done;
        let spheres = Dsm.alloc_floats h_ (nspheres * sphere_slots) in
        let fb = Dsm.alloc_floats h_ (w * h) in
        Array.iteri (fun i v -> Dsm.poke_float h_ (spheres + (8 * i)) v) scene_data;
        let tiles_x = (w + tile - 1) / tile and tiles_y = (h + tile - 1) / tile in
        let tq = Task_queue.create h_ ~ntasks:(tiles_x * tiles_y) in
        let bar = Dsm.alloc_barrier h_ in
        (* Sequential reference image. *)
        let ref_scene =
          {
            nspheres;
            sph = (fun s k -> scene_data.((s * sphere_slots) + k));
            work = ignore;
          }
        in
        let reference = Array.make (w * h) 0.0 in
        for y = 0 to h - 1 do
          for x = 0 to w - 1 do
            reference.((y * w) + x) <- render_pixel ref_scene ~w ~h x y
          done
        done;
        let body ctx =
          let sc =
            {
              nspheres;
              sph =
                (fun s k ->
                  Dsm.load_float ctx (spheres + (8 * ((s * sphere_slots) + k))));
              work = (fun c -> Dsm.compute ctx c);
            }
          in
          Task_queue.drain tq ctx (fun tidx ->
              let ty = tidx / tiles_x and tx = tidx mod tiles_x in
              for y = ty * tile to min h (ty * tile + tile) - 1 do
                for x = tx * tile to min w (tx * tile + tile) - 1 do
                  let v = render_pixel sc ~w ~h x y in
                  Dsm.store_float ctx (fb + (8 * ((y * w) + x))) v
                done
              done);
          Dsm.barrier ctx bar
        in
        let verify h_ =
          let worst = ref 0.0 in
          for i = 0 to (w * h) - 1 do
            let got = Dsm.peek_float h_ (fb + (8 * i)) in
            worst := Float.max !worst (Float.abs (got -. reference.(i)))
          done;
          if !worst < 1e-9 then
            App.pass ~detail:(Printf.sprintf "max pixel err %.2e" !worst)
          else App.fail ~detail:(Printf.sprintf "max pixel err %.2e" !worst)
        in
        (body, verify));
  }
