module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config

let bsz = 16

let instance ?(vg = false) ?(scale = 1.0) () =
  let nb = App.scaled scale 12 in
  let n = nb * bsz in
  {
    App.name = "lu-contig";
    workload = Printf.sprintf "%dx%d matrix, contiguous %dx%d blocks%s" n n bsz
        bsz (if vg then ", vg 2048B" else "");
    heap_bytes = (n * n * 8) + (1 lsl 16);
    setup =
      (fun h ->
        let prng = Shasta_util.Prng.create 1234 in
        let reference = Lu_common.generate prng n in
        let np = (Dsm.config h).Config.nprocs in
        let pr, pc = Lu_common.proc_grid np in
        (* Block-major allocation, each block homed at its owner. *)
        let block_bytes = bsz * bsz * 8 in
        let mat =
          Dsm.alloc_floats h
            ?block_size:(if vg then Some block_bytes else None)
            (n * n)
        in
        let block_base bi bj = mat + (block_bytes * ((bi * nb) + bj)) in
        for bi = 0 to nb - 1 do
          for bj = 0 to nb - 1 do
            Dsm.place h ~addr:(block_base bi bj) ~len:block_bytes
              ~proc:(Lu_common.owner ~pr ~pc bi bj)
          done
        done;
        let addr i j =
          block_base (i / bsz) (j / bsz)
          + (8 * (((i mod bsz) * bsz) + (j mod bsz)))
        in
        let layout = { Lu_common.addr } in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            Dsm.poke_float h (addr i j) reference.((i * n) + j)
          done
        done;
        Lu_common.reference_lu reference n;
        let bar = Dsm.alloc_barrier h in
        let body ctx =
          let p = Dsm.pid ctx in
          let mine bi bj = Lu_common.owner ~pr ~pc bi bj = p in
          for k = 0 to nb - 1 do
            if mine k k then Lu_common.factor_diag ctx layout ~bsz ~k;
            Dsm.barrier ctx bar;
            for i = k + 1 to nb - 1 do
              if mine i k then Lu_common.div_column_block ctx layout ~bsz ~k ~i
            done;
            for j = k + 1 to nb - 1 do
              if mine k j then Lu_common.div_row_block ctx layout ~bsz ~k ~j
            done;
            Dsm.barrier ctx bar;
            for i = k + 1 to nb - 1 do
              for j = k + 1 to nb - 1 do
                if mine i j then Lu_common.update_block ctx layout ~bsz ~k ~i ~j
              done
            done;
            Dsm.barrier ctx bar
          done
        in
        let verify h = Lu_common.verify_against h layout ~n reference in
        (body, verify));
  }
