(** SPLASH-2 Volrend (simplified): ray-cast volume renderer.

    A synthetic "head" volume (nested density shells) is rendered by
    parallel-projection ray casting with front-to-back compositing and
    early ray termination. The volume and the opacity/emission lookup
    maps are read-shared; the variable-granularity hint allocates the
    maps in 1024-byte blocks (Table 2). Most shared loads are integer
    voxel fetches, which is why Volrend shows the smallest SMP-Shasta
    checking-overhead increase in Table 1. Image tiles are distributed
    through task queues with stealing. *)

val instance : App.maker
