(** SPLASH-2 Ocean (simplified): red-black SOR relaxation on an
    (n+2)×(n+2) grid with fixed boundaries.

    Rows are partitioned contiguously and homed at their owners (the
    standard home-placement optimization); each sweep reads the two
    neighbouring rows, so communication is nearest-neighbour — the
    pattern that makes Ocean the biggest clustering winner in the paper.
    The full SPLASH-2 Ocean is a multigrid solver; a fixed-iteration SOR
    kernel preserves its sharing and synchronization structure. *)

val instance : App.maker
