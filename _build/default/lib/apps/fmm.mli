(** SPLASH-2 FMM (simplified): 2-D uniform fast multipole method for the
    logarithmic potential.

    A full adaptive FMM is reduced to the uniform case: a fixed box
    hierarchy, upward multipole pass (P2M, M2M), transfer pass (M2L over
    the standard interaction lists), downward pass (L2L), and evaluation
    (L2P plus P2P over the 3×3 leaf neighbourhood). Box expansions are
    partitioned per level and homed at their owners; expansion reads and
    writes are batched, so the communication pattern — read-shared
    consumption of neighbour boxes' expansions — matches the original.
    The variable-granularity hint allocates the box arrays in 256-byte
    blocks (Table 2). Verification is twofold: exact agreement with a
    sequential run of the same algorithm, and a loose accuracy check
    against the direct O(n²) sum. *)

val instance : App.maker
