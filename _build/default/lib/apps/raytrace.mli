(** SPLASH-2 Raytrace (simplified): recursive ray tracer over a shared
    sphere scene.

    The scene is read-shared after the first fetch; the dominant DSM
    cost is the flag-based check on every (unbatched) float load while
    intersecting — which is why Raytrace suffers the largest SMP-Shasta
    checking-overhead increase in Table 1 (the atomic float-load check
    of §3.4.1). Image tiles are distributed through per-processor task
    queues with stealing. *)

val instance : App.maker
