module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Prng = Shasta_util.Prng

let p_order = 12
let nterms = p_order + 1 (* complex coefficients a_0..a_p *)
let coeff_floats = 2 * nterms
let levels = 4 (* leaf level; level l has 4^l boxes *)
let leaf_cap = 24
let body_slots = 4 (* x y q pot *)
let flop_cycles = 6

let nboxes l = 1 lsl (2 * l)
let side l = 1 lsl l

(* Binomial table, large enough for C(2p, k). *)
let binom =
  let nmax = (2 * p_order) + 2 in
  let t = Array.make_matrix nmax nmax 0.0 in
  for i = 0 to nmax - 1 do
    t.(i).(0) <- 1.0;
    for j = 1 to i do
      t.(i).(j) <- t.(i - 1).(j - 1) +. (if j <= i - 1 then t.(i - 1).(j) else 0.0)
    done
  done;
  fun n k -> if k < 0 || k > n then 0.0 else t.(n).(k)

(* Complex helpers over (re, im) pairs packed in float arrays. *)
let cadd (ar, ai) (br, bi) = (ar +. br, ai +. bi)
let cmul (ar, ai) (br, bi) = ((ar *. br) -. (ai *. bi), (ar *. bi) +. (ai *. br))
let cscale s (ar, ai) = (s *. ar, s *. ai)
let cdiv a (br, bi) =
  let d = (br *. br) +. (bi *. bi) in
  cmul a (br /. d, -.bi /. d)
let clog (ar, ai) = (0.5 *. Float.log ((ar *. ar) +. (ai *. ai)), Float.atan2 ai ar)
let get c k = (c.(2 * k), c.((2 * k) + 1))
let set c k (r, i) =
  c.(2 * k) <- r;
  c.((2 * k) + 1) <- i
let acc c k v = set c k (cadd (get c k) v)

(* Abstract memory so the DSM run and the sequential reference share the
   algorithm. Vectors model batched access to whole expansions. *)
type mem = {
  loadf : int -> float;
  storef : int -> float -> unit;
  loadi : int -> int;
  storei : int -> int -> unit;
  read_vec : int -> int -> float array;
  write_vec : int -> float array -> unit;
  work : int -> unit;
}

type geometry = {
  n : int;
  bodies_off : int;
  mpole_off : int array;  (** per level *)
  local_off : int array;
  leaf_off : int;  (** leaf lists: (1 + leaf_cap) slots per leaf box *)
  total_slots : int;
}

let make_geometry n =
  let off = ref 0 in
  let take k =
    let v = !off in
    off := !off + k;
    v
  in
  let bodies_off = take (n * body_slots) in
  let mpole_off =
    Array.init (levels + 1) (fun l ->
        if l < 2 then 0 else take (nboxes l * coeff_floats))
  in
  let local_off =
    Array.init (levels + 1) (fun l ->
        if l < 2 then 0 else take (nboxes l * coeff_floats))
  in
  let leaf_off = take (nboxes levels * (1 + leaf_cap)) in
  { n; bodies_off; mpole_off; local_off; leaf_off; total_slots = !off }

let body_slot g i k = g.bodies_off + (i * body_slots) + k
let mpole_slot g l b = g.mpole_off.(l) + (b * coeff_floats)
let local_slot g l b = g.local_off.(l) + (b * coeff_floats)
let leaf_slot g b = g.leaf_off + (b * (1 + leaf_cap))

let box_center l b =
  let s = side l in
  let ix = b mod s and iy = b / s in
  let w = 1.0 /. float_of_int s in
  ((float_of_int ix +. 0.5) *. w, (float_of_int iy +. 0.5) *. w)

let box_index l x y =
  let s = side l in
  let ix = min (s - 1) (int_of_float (x *. float_of_int s)) in
  let iy = min (s - 1) (int_of_float (y *. float_of_int s)) in
  (iy * s) + ix

let neighbors l b =
  let s = side l in
  let ix = b mod s and iy = b / s in
  let acc = ref [] in
  for dy = -1 to 1 do
    for dx = -1 to 1 do
      let nx = ix + dx and ny = iy + dy in
      if nx >= 0 && nx < s && ny >= 0 && ny < s then
        acc := ((ny * s) + nx) :: !acc
    done
  done;
  List.rev !acc

let adjacent l a b =
  let s = side l in
  abs ((a mod s) - (b mod s)) <= 1 && abs ((a / s) - (b / s)) <= 1

(* Children of the parent's neighbours that are not adjacent to [b]. *)
let interaction_list l b =
  let parent = ((b / side l / 2 * (side l / 2)) + (b mod side l / 2)) in
  let kids pb =
    let ps = side (l - 1) in
    let px = pb mod ps and py = pb / ps in
    List.concat_map
      (fun dy ->
        List.map (fun dx -> (((2 * py) + dy) * side l) + (2 * px) + dx) [ 0; 1 ])
      [ 0; 1 ]
  in
  List.concat_map kids (neighbors (l - 1) parent)
  |> List.filter (fun c -> not (adjacent l c b))

(* --- Expansion operators (log kernel). --- *)

let p2m mem g b =
  let cx, cy = box_center levels b in
  let c = Array.make coeff_floats 0.0 in
  let cnt = mem.loadi (leaf_slot g b) in
  for m = 0 to cnt - 1 do
    let i = mem.loadi (leaf_slot g b + 1 + m) in
    let x = mem.loadf (body_slot g i 0)
    and y = mem.loadf (body_slot g i 1)
    and q = mem.loadf (body_slot g i 2) in
    let z = (x -. cx, y -. cy) in
    acc c 0 (q, 0.0);
    let zk = ref (1.0, 0.0) in
    for k = 1 to p_order do
      zk := cmul !zk z;
      acc c k (cscale (-.q /. float_of_int k) !zk);
      mem.work (6 * flop_cycles)
    done
  done;
  mem.write_vec (mpole_slot g levels b) c

let m2m mem g l b =
  (* Combine the four children's multipoles into box [b] at level [l]. *)
  let cx, cy = box_center l b in
  let out = Array.make coeff_floats 0.0 in
  let s = side l in
  let ix = b mod s and iy = b / s in
  for dy = 0 to 1 do
    for dx = 0 to 1 do
      let cb = ((((2 * iy) + dy) * side (l + 1)) + (2 * ix) + dx) in
      let a = mem.read_vec (mpole_slot g (l + 1) cb) coeff_floats in
      let ccx, ccy = box_center (l + 1) cb in
      let d = (ccx -. cx, ccy -. cy) in
      let a0 = get a 0 in
      acc out 0 a0;
      let dl = ref (1.0, 0.0) in
      for ll = 1 to p_order do
        dl := cmul !dl d;
        (* -a0 d^l / l *)
        acc out ll (cscale (-1.0 /. float_of_int ll) (cmul a0 !dl));
        let dpow = ref (1.0, 0.0) in
        (* sum_{k=1..l} a_k d^{l-k} C(l-1,k-1), accumulate from k=l down *)
        for k = ll downto 1 do
          (* d^{l-k}: when k = l this is 1; we build it incrementally. *)
          acc out ll (cscale (binom (ll - 1) (k - 1)) (cmul (get a k) !dpow));
          dpow := cmul !dpow d;
          mem.work (8 * flop_cycles)
        done
      done
    done
  done;
  mem.write_vec (mpole_slot g l b) out

let m2l mem g l ~src ~dst out =
  let sx, sy = box_center l src and dx_, dy_ = box_center l dst in
  let a = mem.read_vec (mpole_slot g l src) coeff_floats in
  let d = (sx -. dx_, sy -. dy_) in
  let a0 = get a 0 in
  (* c_0 = a0 log(-d) + sum_k a_k (-1)^k / d^k *)
  let c0 = ref (cmul a0 (clog (cscale (-1.0) d))) in
  let dk = ref (1.0, 0.0) in
  for k = 1 to p_order do
    dk := cmul !dk d;
    let sign = if k land 1 = 1 then -1.0 else 1.0 in
    c0 := cadd !c0 (cscale sign (cdiv (get a k) !dk));
    mem.work (8 * flop_cycles)
  done;
  acc out 0 !c0;
  let dl = ref (1.0, 0.0) in
  for ll = 1 to p_order do
    dl := cmul !dl d;
    (* -a0 / (l d^l) *)
    let t = ref (cscale (-1.0 /. float_of_int ll) (cdiv a0 !dl)) in
    let dk = ref (1.0, 0.0) in
    for k = 1 to p_order do
      dk := cmul !dk d;
      let sign = if k land 1 = 1 then -1.0 else 1.0 in
      t :=
        cadd !t
          (cscale
             (sign *. binom (ll + k - 1) (k - 1))
             (cdiv (cdiv (get a k) !dk) !dl));
      mem.work (8 * flop_cycles)
    done;
    acc out ll !t
  done

let l2l mem g l ~parent ~child out =
  (* Shift the parent's local expansion to the child's center. *)
  let px, py = box_center (l - 1) parent and cx, cy = box_center l child in
  let c = mem.read_vec (local_slot g (l - 1) parent) coeff_floats in
  let d = (cx -. px, cy -. py) in
  for ll = 0 to p_order do
    let t = ref (0.0, 0.0) in
    for k = ll to p_order do
      (* c_k C(k,l) d^{k-l} *)
      let dp = ref (1.0, 0.0) in
      for _ = 1 to k - ll do
        dp := cmul !dp d
      done;
      t := cadd !t (cscale (binom k ll) (cmul (get c k) !dp));
      mem.work (6 * flop_cycles)
    done;
    acc out ll !t
  done

let eval_local c (zx, zy) =
  let v = ref (0.0, 0.0) in
  let zp = ref (1.0, 0.0) in
  for k = 0 to p_order do
    v := cadd !v (cmul (get c k) !zp);
    zp := cmul !zp (zx, zy)
  done;
  fst !v

(* --- Driver, shared by the parallel and reference executions. --- *)

type part = { lo : int array; hi : int array; blo : int; bhi : int }
(* per-level box ranges and body range for one processor *)

let run_fmm mem g part ~sync =
  (* Phase 1: leaf lists (each proc fills its own leaf boxes). *)
  for b = part.lo.(levels) to part.hi.(levels) - 1 do
    mem.storei (leaf_slot g b) 0
  done;
  for i = 0 to g.n - 1 do
    let x = mem.loadf (body_slot g i 0) and y = mem.loadf (body_slot g i 1) in
    let b = box_index levels x y in
    mem.work (4 * flop_cycles);
    if b >= part.lo.(levels) && b < part.hi.(levels) then begin
      let cnt = mem.loadi (leaf_slot g b) in
      if cnt < leaf_cap then begin
        mem.storei (leaf_slot g b + 1 + cnt) i;
        mem.storei (leaf_slot g b) (cnt + 1)
      end
    end
  done;
  sync ();
  (* Phase 2: P2M on own leaves. *)
  for b = part.lo.(levels) to part.hi.(levels) - 1 do
    p2m mem g b
  done;
  sync ();
  (* Phase 3: M2M upward. *)
  for l = levels - 1 downto 2 do
    for b = part.lo.(l) to part.hi.(l) - 1 do
      m2m mem g l b
    done;
    sync ()
  done;
  (* Phase 4: downward M2L (+ L2L below the top transfer level). *)
  for l = 2 to levels do
    for b = part.lo.(l) to part.hi.(l) - 1 do
      let out = Array.make coeff_floats 0.0 in
      if l > 2 then begin
        let s = side l in
        let parent = ((b / s / 2 * (s / 2)) + (b mod s / 2)) in
        l2l mem g l ~parent ~child:b out
      end;
      List.iter (fun src -> m2l mem g l ~src ~dst:b out) (interaction_list l b);
      mem.write_vec (local_slot g l b) out
    done;
    sync ()
  done;
  (* Phase 5: evaluation on own leaves (L2P + P2P over neighbours). *)
  for b = part.lo.(levels) to part.hi.(levels) - 1 do
    let cx, cy = box_center levels b in
    let c = mem.read_vec (local_slot g levels b) coeff_floats in
    let cnt = mem.loadi (leaf_slot g b) in
    for m = 0 to cnt - 1 do
      let i = mem.loadi (leaf_slot g b + 1 + m) in
      let x = mem.loadf (body_slot g i 0) and y = mem.loadf (body_slot g i 1) in
      let pot = ref (eval_local c (x -. cx, y -. cy)) in
      mem.work (nterms * 4 * flop_cycles);
      List.iter
        (fun nb ->
          let ncnt = mem.loadi (leaf_slot g nb) in
          for mm = 0 to ncnt - 1 do
            let j = mem.loadi (leaf_slot g nb + 1 + mm) in
            if j <> i then begin
              let xj = mem.loadf (body_slot g j 0)
              and yj = mem.loadf (body_slot g j 1)
              and qj = mem.loadf (body_slot g j 2) in
              let dx = x -. xj and dy = y -. yj in
              pot :=
                !pot
                +. (qj *. 0.5 *. Float.log ((dx *. dx) +. (dy *. dy)));
              mem.work (8 * flop_cycles)
            end
          done)
        (neighbors levels b);
      mem.storef (body_slot g i 3) !pot
    done
  done;
  sync ()

let make_part np p =
  let lo = Array.make (levels + 1) 0 and hi = Array.make (levels + 1) 0 in
  for l = 2 to levels do
    lo.(l) <- p * nboxes l / np;
    hi.(l) <- (p + 1) * nboxes l / np
  done;
  { lo; hi; blo = 0; bhi = 0 }

let instance ?(vg = false) ?(scale = 1.0) () =
  let n = App.scaled scale 1024 in
  let g = make_geometry n in
  {
    App.name = "fmm";
    workload =
      Printf.sprintf "%d bodies, %d levels, p=%d%s" n levels p_order
        (if vg then ", vg 256B" else "");
    heap_bytes = (g.total_slots * 8) + (1 lsl 17);
    setup =
      (fun h ->
        let prng = Prng.create 2718 in
        let init = Array.make g.total_slots 0.0 in
        for i = 0 to n - 1 do
          init.(body_slot g i 0) <- Prng.float prng 1.0;
          init.(body_slot g i 1) <- Prng.float prng 1.0;
          init.(body_slot g i 2) <- Prng.float prng 1.0 +. 0.1
        done;
        (* Shared arrays: bodies; box expansions (vg hint); leaf lists. *)
        let bodies = Dsm.alloc_floats h (g.bodies_off + (n * body_slots)) in
        let boxes_floats = g.leaf_off - g.mpole_off.(2) in
        let boxes =
          Dsm.alloc_floats h
            ?block_size:(if vg then Some 256 else None)
            boxes_floats
        in
        let leaves = Dsm.alloc_floats h (g.total_slots - g.leaf_off) in
        let addr_of_slot s =
          if s < g.mpole_off.(2) then bodies + (8 * s)
          else if s < g.leaf_off then boxes + (8 * (s - g.mpole_off.(2)))
          else leaves + (8 * (s - g.leaf_off))
        in
        (* Home placement: box expansions and leaf lists at their owners. *)
        let np = (Dsm.config h).Config.nprocs in
        for p = 0 to np - 1 do
          let part = make_part np p in
          for l = 2 to levels do
            if part.hi.(l) > part.lo.(l) then begin
              Dsm.place h
                ~addr:(addr_of_slot (mpole_slot g l part.lo.(l)))
                ~len:((part.hi.(l) - part.lo.(l)) * coeff_floats * 8)
                ~proc:p;
              Dsm.place h
                ~addr:(addr_of_slot (local_slot g l part.lo.(l)))
                ~len:((part.hi.(l) - part.lo.(l)) * coeff_floats * 8)
                ~proc:p
            end
          done;
          if part.hi.(levels) > part.lo.(levels) then
            Dsm.place h
              ~addr:(addr_of_slot (leaf_slot g part.lo.(levels)))
              ~len:((part.hi.(levels) - part.lo.(levels)) * (1 + leaf_cap) * 8)
              ~proc:p
        done;
        for i = 0 to n - 1 do
          for k = 0 to body_slots - 1 do
            Dsm.poke_float h (addr_of_slot (body_slot g i k)) init.(body_slot g i k)
          done
        done;
        (* Sequential reference. *)
        let ref_mem =
          {
            loadf = (fun s -> init.(s));
            storef = (fun s v -> init.(s) <- v);
            loadi = (fun s -> int_of_float init.(s));
            storei = (fun s v -> init.(s) <- float_of_int v);
            read_vec = (fun s k -> Array.sub init s k);
            write_vec = (fun s v -> Array.blit v 0 init s (Array.length v));
            work = ignore;
          }
        in
        run_fmm ref_mem g (make_part 1 0) ~sync:ignore;
        (* Direct-sum accuracy check data. *)
        let direct = Array.make n 0.0 in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if j <> i then begin
              let dx = init.(body_slot g i 0) -. init.(body_slot g j 0)
              and dy = init.(body_slot g i 1) -. init.(body_slot g j 1) in
              direct.(i) <-
                direct.(i)
                +. (init.(body_slot g j 2) *. 0.5
                   *. Float.log ((dx *. dx) +. (dy *. dy)))
            end
          done
        done;
        let bar = Dsm.alloc_barrier h in
        let body ctx =
          let p = Dsm.pid ctx in
          let part = make_part (Dsm.nprocs ctx) p in
          let mem =
            {
              loadf = (fun s -> Dsm.load_float ctx (addr_of_slot s));
              storef = (fun s v -> Dsm.store_float ctx (addr_of_slot s) v);
              loadi = (fun s -> Dsm.load_int ctx (addr_of_slot s));
              storei = (fun s v -> Dsm.store_int ctx (addr_of_slot s) v);
              read_vec =
                (fun s k ->
                  let a = Array.make k 0.0 in
                  Dsm.batch ctx
                    [ (addr_of_slot s, k * 8, Dsm.R) ]
                    (fun () ->
                      for i = 0 to k - 1 do
                        a.(i) <- Dsm.Batch.load_float ctx (addr_of_slot (s + i))
                      done);
                  a);
              write_vec =
                (fun s v ->
                  Dsm.batch ctx
                    [ (addr_of_slot s, Array.length v * 8, Dsm.W) ]
                    (fun () ->
                      Array.iteri
                        (fun i x ->
                          Dsm.Batch.store_float ctx (addr_of_slot (s + i)) x)
                        v));
              work = (fun c -> Dsm.compute ctx c);
            }
          in
          run_fmm mem g part ~sync:(fun () -> Dsm.barrier ctx bar)
        in
        let verify h =
          let worst = ref 0.0 and direct_err = ref 0.0 in
          for i = 0 to n - 1 do
            let got = Dsm.peek_float h (addr_of_slot (body_slot g i 3)) in
            let want = init.(body_slot g i 3) in
            let scale = Float.max 1.0 (Float.abs want) in
            worst := Float.max !worst (Float.abs (got -. want) /. scale);
            direct_err :=
              Float.max !direct_err
                (Float.abs (got -. direct.(i))
                /. Float.max 1.0 (Float.abs direct.(i)))
          done;
          let detail =
            Printf.sprintf "vs ref %.2e; vs direct %.2e" !worst !direct_err
          in
          if !worst < 1e-8 && !direct_err < 0.2 then App.pass ~detail
          else App.fail ~detail
        in
        (body, verify));
  }
