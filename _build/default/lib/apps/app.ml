type verdict = { ok : bool; detail : string }

type instance = {
  name : string;
  workload : string;
  heap_bytes : int;
  setup :
    Shasta_core.Dsm.handle ->
    (Shasta_core.Dsm.ctx -> unit) * (Shasta_core.Dsm.handle -> verdict);
}

type maker = ?vg:bool -> ?scale:float -> unit -> instance

let scaled s n = max 1 (int_of_float (Float.round (s *. float_of_int n)))
let pass ~detail = { ok = true; detail }
let fail ~detail = { ok = false; detail }

let close ?(tol = 1e-6) a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= tol *. scale
