(** Shared machinery of the two Water kernels: molecule records,
    a Lennard-Jones-style cutoff interaction, and leapfrog integration.

    A molecule is 9 consecutive doubles in shared memory:
    position (3), velocity (3), accumulated force (3). *)

val mol_bytes : int
(** 72: nine 8-byte fields. *)

val fields : int
(** 9. *)

val flop_cycles : int

type mol = { px : float; py : float; pz : float }

val pair_force :
  box:float -> cutoff:float -> mol -> mol -> (float * float * float) option
(** Force exerted on the first molecule by the second under periodic
    boundary conditions, [None] beyond the cutoff. *)

val pair_flops : int
(** Cycle charge for evaluating one pair (whether or not it is within
    the cutoff — the distance computation dominates). *)

val integrate :
  dt:float -> box:float ->
  float array -> int -> unit
(** Reference-side leapfrog step over a plain array of molecule records
    (index = molecule number, layout as in shared memory): v += f*dt,
    p += v*dt wrapped into the box, force cleared. *)

val init_molecules : Shasta_util.Prng.t -> n:int -> box:float -> float array
(** Lattice-perturbed initial state (forces zero). *)
