(** Distributed work queues with stealing, in shared memory.

    Raytrace and Volrend distribute image tiles through per-processor
    task queues protected by locks; an idle processor steals from other
    queues. Queue contention makes the queue blocks migratory — one of
    the sharing patterns of the two rendering workloads. *)

type t

val create : Shasta_core.Dsm.handle -> ntasks:int -> t
(** Allocate one queue per processor and deal tasks 0..ntasks-1
    round-robin (setup phase). *)

val drain : t -> Shasta_core.Dsm.ctx -> (int -> unit) -> unit
(** Repeatedly pop a task from the caller's queue (or steal from the
    others when empty) and run the worker on it, until every queue is
    empty. *)
