module Dsm = Shasta_core.Dsm
module Prng = Shasta_util.Prng

let tile = 8
let flop_cycles = 6

type vol = {
  size : int;
  voxel : int -> int -> int -> int;  (* x y z -> density 0..255 *)
  opacity : int -> int;  (* scaled by 2^16, integer table lookup *)
  emission : int -> int;
  work : int -> unit;
}

let table_scale = 65536.0
let unscale v = float_of_int v /. table_scale

let cast v ~w ~h x y =
  let fx = (float_of_int x +. 0.5) /. float_of_int w in
  let fy = (float_of_int y +. 0.5) /. float_of_int h in
  let ix = min (v.size - 1) (int_of_float (fx *. float_of_int v.size)) in
  let iy = min (v.size - 1) (int_of_float (fy *. float_of_int v.size)) in
  let color = ref 0.0 and alpha = ref 0.0 in
  let z = ref 0 in
  while !z < v.size && !alpha < 0.98 do
    let d = v.voxel ix iy !z in
    if d > 8 then begin
      let a = unscale (v.opacity d) in
      color := !color +. ((1.0 -. !alpha) *. a *. unscale (v.emission d));
      alpha := !alpha +. ((1.0 -. !alpha) *. a);
      (* Trilinear interpolation and gradient shading of the original
         renderer: ~60 flops per non-transparent sample. *)
      v.work (60 * flop_cycles)
    end
    else v.work (4 * flop_cycles);
    incr z
  done;
  !color

let density size x y z =
  (* Nested shells around the volume center, with a deterministic
     pseudo-noise term. *)
  let c = float_of_int size /. 2.0 in
  let dx = float_of_int x -. c and dy = float_of_int y -. c and dz = float_of_int z -. c in
  let r = Float.sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) /. c in
  let shell m w = Float.exp (-.(((r -. m) /. w) ** 2.0)) in
  let v = (200.0 *. shell 0.25 0.08) +. (120.0 *. shell 0.6 0.05) +. (60.0 *. shell 0.85 0.04) in
  let noise = float_of_int (((x * 73) + (y * 179) + (z * 283)) mod 17) in
  min 255 (int_of_float (v +. noise))

let instance ?(vg = false) ?(scale = 1.0) () =
  let size = 32 in
  let w = App.scaled scale 64 and h = App.scaled scale 64 in
  {
    App.name = "volrend";
    workload = Printf.sprintf "%d^3 volume, %dx%d image%s" size w h
        (if vg then ", vg 1024B maps" else "");
    heap_bytes = ((size * size * size) + 512 + (w * h) + 4096) * 8 + (1 lsl 16);
    setup =
      (fun h_ ->
        let volume = Dsm.alloc_floats h_ (size * size * size) in
        let vaddr x y z = volume + (8 * ((((x * size) + y) * size) + z)) in
        for z = 0 to size - 1 do
          for y = 0 to size - 1 do
            for x = 0 to size - 1 do
              Dsm.poke_int h_ (vaddr x y z) (density size x y z)
            done
          done
        done;
        let maps =
          Dsm.alloc_floats h_ ?block_size:(if vg then Some 1024 else None) 512
        in
        let opac_addr d = maps + (8 * d) in
        let emis_addr d = maps + (8 * (256 + d)) in
        let opac =
          Array.init 256 (fun d ->
              int_of_float (Float.min 0.5 (float_of_int d /. 400.0) *. table_scale))
        in
        let emis =
          Array.init 256 (fun d ->
              int_of_float (float_of_int d /. 255.0 *. table_scale))
        in
        Array.iteri (fun d v -> Dsm.poke_int h_ (opac_addr d) v) opac;
        Array.iteri (fun d v -> Dsm.poke_int h_ (emis_addr d) v) emis;
        let fb = Dsm.alloc_floats h_ (w * h) in
        let tiles_x = (w + tile - 1) / tile and tiles_y = (h + tile - 1) / tile in
        let tq = Task_queue.create h_ ~ntasks:(tiles_x * tiles_y) in
        let bar = Dsm.alloc_barrier h_ in
        let ref_vol =
          {
            size;
            voxel = (fun x y z -> density size x y z);
            opacity = (fun d -> opac.(d));
            emission = (fun d -> emis.(d));
            work = ignore;
          }
        in
        let reference = Array.make (w * h) 0.0 in
        for y = 0 to h - 1 do
          for x = 0 to w - 1 do
            reference.((y * w) + x) <- cast ref_vol ~w ~h x y
          done
        done;
        let body ctx =
          let v =
            {
              size;
              voxel = (fun x y z -> Dsm.load_int ctx (vaddr x y z));
              opacity = (fun d -> Dsm.load_int ctx (opac_addr d));
              emission = (fun d -> Dsm.load_int ctx (emis_addr d));
              work = (fun c -> Dsm.compute ctx c);
            }
          in
          Task_queue.drain tq ctx (fun tidx ->
              let ty = tidx / tiles_x and tx = tidx mod tiles_x in
              for y = ty * tile to min h (ty * tile + tile) - 1 do
                for x = tx * tile to min w (tx * tile + tile) - 1 do
                  Dsm.store_float ctx (fb + (8 * ((y * w) + x))) (cast v ~w ~h x y)
                done
              done);
          Dsm.barrier ctx bar
        in
        let verify h_ =
          let worst = ref 0.0 in
          for i = 0 to (w * h) - 1 do
            let got = Dsm.peek_float h_ (fb + (8 * i)) in
            worst := Float.max !worst (Float.abs (got -. reference.(i)))
          done;
          if !worst < 1e-9 then
            App.pass ~detail:(Printf.sprintf "max pixel err %.2e" !worst)
          else App.fail ~detail:(Printf.sprintf "max pixel err %.2e" !worst)
        in
        (body, verify));
  }
