(** SPLASH-2 Water-Nsquared (simplified): O(n²) cutoff molecular
    dynamics.

    Each processor owns a contiguous stripe of molecules and evaluates
    each pair once (cyclic half-range rule), accumulating forces locally
    and then folding them into the shared force fields under
    per-molecule-group locks — the migratory-data pattern responsible
    for Water's three-message downgrades in Figure 8. The
    variable-granularity hint allocates the molecule array in 2048-byte
    blocks (Table 2). *)

val instance : App.maker
