(** SPLASH-2 LU: blocked dense LU factorization, non-contiguous layout.

    The matrix is one row-major n×n array of doubles; a 16×16 element
    block's rows are strided across the array, so with the default
    64-byte coherence blocks there is communication at block edges. The
    variable-granularity hint sets the matrix array's coherence block
    size to 128 bytes (Table 2). *)

val instance : App.maker
