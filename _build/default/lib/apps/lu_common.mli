(** Shared machinery of the two LU factorization kernels.

    Both factor a dense n×n matrix (no pivoting; the generator makes it
    diagonally dominant) in B×B element blocks with the standard
    SPLASH-2 2-D scatter ownership. They differ only in the memory
    layout of the blocks. *)

val proc_grid : int -> int * int
(** [proc_grid np] = (rows, cols) with rows*cols = np, rows <= cols. *)

val owner : pr:int -> pc:int -> int -> int -> int
(** Owner processor of block (bi, bj) under 2-D scatter. *)

val generate : Shasta_util.Prng.t -> int -> float array
(** Random diagonally-dominant n×n matrix, row-major. *)

val reference_lu : float array -> int -> unit
(** In-place unblocked LU factorization (L unit-diagonal, packed). *)

(** Element addressing abstraction: [addr i j] is the shared-heap address
    of element (i, j). *)
type layout = { addr : int -> int -> int }

val factor_diag :
  Shasta_core.Dsm.ctx -> layout -> bsz:int -> k:int -> unit
(** In-place LU of the diagonal block [k] (block-row/col index). *)

val div_column_block :
  Shasta_core.Dsm.ctx -> layout -> bsz:int -> k:int -> i:int -> unit
(** A(i,k) := A(i,k) · U(k,k)⁻¹. *)

val div_row_block :
  Shasta_core.Dsm.ctx -> layout -> bsz:int -> k:int -> j:int -> unit
(** A(k,j) := L(k,k)⁻¹ · A(k,j). *)

val update_block :
  Shasta_core.Dsm.ctx -> layout -> bsz:int -> k:int -> i:int -> j:int -> unit
(** A(i,j) -= A(i,k) · A(k,j). *)

val block_ranges :
  layout -> bsz:int -> bi:int -> bj:int -> Shasta_core.Dsm.access ->
  (int * int * Shasta_core.Dsm.access) list
(** Batch ranges covering a block (one per block row). *)

val verify_against :
  Shasta_core.Dsm.handle -> layout -> n:int -> float array -> App.verdict
(** Compare the factored shared matrix against a reference. *)
