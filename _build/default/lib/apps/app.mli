(** Common shape of the SPLASH-2 workloads.

    An {!instance} is a fully-sized workload: [setup] allocates and
    initializes its shared data on a machine handle and returns the
    per-processor body plus a result verifier. The verifier compares the
    parallel run's output (read with [Dsm.peek_*]) against an internally
    computed sequential reference.

    [vg] selects the paper's variable-granularity allocation hints for
    the application's key data structures (Table 2); without it all
    large objects use the default 64-byte blocks. [scale] multiplies the
    problem size linearly (1.0 = the scaled-down default documented in
    EXPERIMENTS.md; 2.0 = the "larger problem" configuration of
    Table 3). *)

type verdict = { ok : bool; detail : string }

type instance = {
  name : string;
  workload : string;  (** human description of the sized problem *)
  heap_bytes : int;  (** shared-heap requirement *)
  setup :
    Shasta_core.Dsm.handle ->
    (Shasta_core.Dsm.ctx -> unit) * (Shasta_core.Dsm.handle -> verdict);
}

type maker = ?vg:bool -> ?scale:float -> unit -> instance
(** Every application module provides [instance : maker]. *)

val scaled : float -> int -> int
(** [scaled s n] is [n] scaled by [s], at least 1. *)

val pass : detail:string -> verdict
val fail : detail:string -> verdict

val close : ?tol:float -> float -> float -> bool
(** Relative comparison with default tolerance 1e-6 (parallel floating
    point sums reassociate). *)
