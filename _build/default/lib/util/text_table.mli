(** Plain-text table rendering for the benchmark harness.

    Produces aligned, pipe-separated tables resembling the tables in the
    paper, suitable for terminal output and the EXPERIMENTS.md log. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out [rows] under [header] with columns
    padded to the widest cell. [aligns] defaults to left-aligning the
    first column and right-aligning the rest. *)

val bar : ?width:int -> float -> string
(** [bar v] renders a horizontal bar of [v] (clamped to \[0,1\]) scaled
    to [width] (default 40) characters — used for the "figures". *)

val stacked_bar : ?width:int -> (char * float) list -> string
(** [stacked_bar segments] renders segments (label char, value) as one
    bar whose total length is proportional to the sum of values, with
    [width] characters representing 1.0. *)
