type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let int t bound =
  assert (bound > 0);
  (* Mask to 62 bits so the OCaml int is non-negative. *)
  let v = Int64.to_int (Int64.logand (int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  (* 53 significant bits, matching the double mantissa. *)
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L
