type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?aligns ~header rows =
  let ncols = List.length header in
  let aligns =
    match aligns with
    | Some a ->
      assert (List.length a = ncols);
      a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let line row =
    let cells =
      List.mapi (fun i cell -> pad (List.nth aligns i) widths.(i) cell) row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule =
    "|"
    ^ String.concat "|"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let bar ?(width = 40) v =
  let v = Float.max 0. (Float.min 1. v) in
  let n = int_of_float (Float.round (v *. float_of_int width)) in
  String.make n '#'

let stacked_bar ?(width = 40) segments =
  let buf = Buffer.create width in
  List.iter
    (fun (c, v) ->
      let n = int_of_float (Float.round (Float.max 0. v *. float_of_int width)) in
      Buffer.add_string buf (String.make n c))
    segments;
  Buffer.contents buf
