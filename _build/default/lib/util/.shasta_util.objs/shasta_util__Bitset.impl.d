lib/util/bitset.ml: Format List
