lib/util/histogram.ml: Format Hashtbl List Option
