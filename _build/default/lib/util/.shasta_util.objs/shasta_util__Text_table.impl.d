lib/util/text_table.ml: Array Buffer Float List String
