lib/util/prng.mli:
