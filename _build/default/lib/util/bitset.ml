type t = int

let max_element = 62

let check i =
  assert (i >= 0 && i <= max_element);
  i

let empty = 0
let is_empty t = t = 0
let singleton i = 1 lsl check i
let add i t = t lor singleton i
let remove i t = t land lnot (singleton i)
let mem i t = t land singleton i <> 0
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b

let cardinal t =
  let rec count acc t = if t = 0 then acc else count (acc + (t land 1)) (t lsr 1) in
  count 0 t

let iter f t =
  for i = 0 to max_element do
    if mem i t then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])
let of_list l = List.fold_left (fun acc i -> add i acc) empty l
let equal (a : t) b = a = b

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements t)
