(** Small bit sets over processor identifiers (0..62).

    The directory's sharer vector (one bit per processor) is the main
    client; the cluster tops out at 16 processors so a single immutable
    [int] suffices. *)

type t
(** Immutable set of small non-negative integers. *)

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val of_list : int list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
