(** Deterministic pseudo-random number generator (SplitMix64).

    Every simulated run must be reproducible, so all randomness in the
    workloads flows through explicitly seeded generators rather than the
    global [Random] state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** Independent copy with identical future output. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from [t]'s. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool
(** Fair coin flip. *)
