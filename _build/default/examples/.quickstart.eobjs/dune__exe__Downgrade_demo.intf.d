examples/downgrade_demo.mli:
