examples/downgrade_demo.ml: Array List Printf Shasta_core Shasta_util
