examples/heat_diffusion.ml: Array List Printf Shasta_core
