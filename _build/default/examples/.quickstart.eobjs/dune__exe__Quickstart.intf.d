examples/quickstart.mli:
