examples/quickstart.ml: Printf Shasta_core
