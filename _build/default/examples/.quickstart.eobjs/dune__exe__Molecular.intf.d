examples/molecular.mli:
