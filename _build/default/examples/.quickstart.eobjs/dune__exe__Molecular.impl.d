examples/molecular.ml: Array List Printf Shasta_core Shasta_util
