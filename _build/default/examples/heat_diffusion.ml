(* Heat diffusion: a Jacobi stencil with home placement and batched row
   access, run under Base-Shasta and under SMP-Shasta at increasing
   clustering to show the clustering effect of the paper on a
   nearest-neighbour workload (cf. Ocean, the biggest winner).

     dune exec examples/heat_diffusion.exe *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config

let n = 128
let dim = n + 2
let iters = 6

let run ~variant ~clustering =
  let cfg = Config.create ~variant ~nprocs:16 ~clustering () in
  let h = Dsm.create cfg in
  let grids = Array.init 2 (fun _ -> Dsm.alloc_floats h (dim * dim)) in
  let at g i j = grids.(g) + (8 * ((i * dim) + j)) in
  let np = 16 in
  (* Each processor owns a band of rows; home the bands accordingly. *)
  for p = 0 to np - 1 do
    let lo = 1 + (p * n / np) and hi = (p + 1) * n / np in
    if hi >= lo then
      Array.iter
        (fun g ->
          Dsm.place h ~addr:(at g lo 0) ~len:((hi - lo + 1) * dim * 8) ~proc:p)
        [| 0; 1 |]
  done;
  for i = 0 to dim - 1 do
    for j = 0 to dim - 1 do
      let v = if i = 0 then 100.0 else 0.0 in
      Dsm.poke_float h (at 0 i j) v;
      Dsm.poke_float h (at 1 i j) v
    done
  done;
  let bar = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      let lo = 1 + (p * n / np) and hi = (p + 1) * n / np in
      for t = 0 to iters - 1 do
        let src = t land 1 and dst = 1 - (t land 1) in
        for i = lo to hi do
          Dsm.batch ctx
            [
              (at src (i - 1) 0, dim * 8, Dsm.R);
              (at src i 0, dim * 8, Dsm.R);
              (at src (i + 1) 0, dim * 8, Dsm.R);
              (at dst i 0, dim * 8, Dsm.W);
            ]
            (fun () ->
              for j = 1 to n do
                let v =
                  0.25
                  *. (Dsm.Batch.load_float ctx (at src (i - 1) j)
                     +. Dsm.Batch.load_float ctx (at src (i + 1) j)
                     +. Dsm.Batch.load_float ctx (at src i (j - 1))
                     +. Dsm.Batch.load_float ctx (at src i (j + 1)))
                in
                Dsm.Batch.store_float ctx (at dst i j) v;
                Dsm.compute ctx 30
              done)
        done;
        Dsm.barrier ctx bar
      done);
  let ms = 1000.0 *. float_of_int (Dsm.parallel_cycles h) /. 3.0e8 in
  ( ms,
    Shasta_core.Stats.total_misses (Dsm.aggregate_stats h),
    Dsm.messages_local h,
    Dsm.messages_remote h )

let () =
  Printf.printf "%dx%d Jacobi heat diffusion, %d iterations, 16 processors\n\n"
    dim dim iters;
  let configs =
    [
      ("Base-Shasta", Config.Base, 1);
      ("SMP-Shasta, clustering 2", Config.Smp, 2);
      ("SMP-Shasta, clustering 4", Config.Smp, 4);
    ]
  in
  List.iter
    (fun (name, variant, clustering) ->
      let ms, misses, local, remote = run ~variant ~clustering in
      Printf.printf "%-26s %8.2f ms  %6d misses  %6d local msgs  %6d remote msgs\n"
        name ms misses local remote)
    configs;
  print_newline ();
  print_endline
    "Clustering turns the software misses between processors of the same\n\
     SMP into plain cache-coherent loads: the miss count and the local\n\
     message count collapse. The remaining remote messages are the real\n\
     inter-node boundary exchanges, which no clustering can remove - the\n\
     effect the paper reports for Ocean (Figures 6 and 7)."
