(* Downgrade-protocol demonstration: shows the private-state-table
   mechanism of §3.3/§3.4.3 in action — how many downgrade messages a
   remote read triggers depends on how many processors of the owning
   node actually wrote the block.

     dune exec examples/downgrade_demo.exe *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Stats = Shasta_core.Stats
module Histogram = Shasta_util.Histogram

let run ~writers =
  let cfg =
    Config.create ~variant:Config.Smp ~nprocs:8 ~procs_per_node:4 ~clustering:4 ()
  in
  let h = Dsm.create cfg in
  (* 32 one-line blocks homed on the second node. *)
  let blocks = List.init 32 (fun _ -> Dsm.alloc h ~block_size:64 ~home:4 64) in
  let bar = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      (* Phase 1: [writers] processors of node 1 store to every block,
         raising their private state-table entries to exclusive. *)
      if p >= 4 && p < 4 + writers then
        List.iter (fun a -> Dsm.store_float ctx a (float_of_int p)) blocks;
      Dsm.barrier ctx bar;
      (* Phase 2: a processor on node 0 reads each block; the owning
         node must downgrade exclusive -> shared, messaging exactly the
         processors whose private tables show an exclusive entry. *)
      if p = 0 then List.iter (fun a -> ignore (Dsm.load_float ctx a)) blocks;
      Dsm.barrier ctx bar);
  let stats = Dsm.aggregate_stats h in
  let hist = stats.Stats.downgrade_events in
  Printf.printf
    "%d writer(s) on the owning node -> downgrade events by message count: " writers;
  List.iter
    (fun k -> Printf.printf "%d msgs x%d  " k (Histogram.count hist k))
    (Histogram.keys hist);
  Printf.printf "| mean read latency %.1f us\n"
    (Stats.mean_read_latency_us (Dsm.proc_stats h).(0))

let () =
  print_endline
    "SMP-Shasta downgrade selectivity (two 4-processor nodes; a remote\n\
     processor reads blocks held exclusively by the other node):\n";
  List.iter (fun w -> run ~writers:w) [ 1; 2; 3; 4 ];
  print_newline ();
  print_endline
    "With one writer the handling processor downgrades itself silently (0\n\
     messages). Each additional writer's private entry costs one downgrade\n\
     message and adds to the read latency — the +10us/+5us staircase the\n\
     paper reports in 4.4.";
  print_newline ();
  (* And the contrast: a sibling that only *loads* through the
     invalid-flag check never raises its private entry, so it needs no
     downgrade message. *)
  let cfg = Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4 () in
  let h = Dsm.create cfg in
  let a = Dsm.alloc h ~block_size:64 ~home:4 64 in
  Dsm.poke_float h a 1.0;
  let bar = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      if p = 4 then Dsm.store_float ctx a 2.0;
      Dsm.barrier ctx bar;
      (* siblings read through the flag check only *)
      if p > 4 then ignore (Dsm.load_float ctx a);
      Dsm.barrier ctx bar;
      if p = 0 then ignore (Dsm.load_float ctx a);
      Dsm.barrier ctx bar);
  let hist = (Dsm.aggregate_stats h).Stats.downgrade_events in
  Printf.printf
    "flag-only sibling readers: remote read needed %d downgrade message(s)\n"
    (List.fold_left
       (fun acc k -> acc + (k * Histogram.count hist k))
       0 (Histogram.keys hist))
