(* Molecular dynamics example: a little cutoff MD system with
   lock-protected force accumulation — the migratory-data pattern of the
   paper's Water codes — comparing Base-Shasta and SMP-Shasta.

     dune exec examples/molecular.exe *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Prng = Shasta_util.Prng

let n = 128
let fields = 9 (* x y z vx vy vz fx fy fz *)
let box = 5.0
let cutoff = 1.8
let dt = 0.005
let steps = 3

let run ~variant ~clustering =
  let cfg = Config.create ~variant ~nprocs:16 ~clustering ~seed:11 () in
  let h = Dsm.create cfg in
  let mols = Dsm.alloc h ~block_size:2048 (n * fields * 8) in
  let fld i k = mols + (8 * ((i * fields) + k)) in
  let prng = Prng.create 303 in
  for i = 0 to n - 1 do
    for d = 0 to 2 do
      Dsm.poke_float h (fld i d) (Prng.float prng box);
      Dsm.poke_float h (fld i (3 + d)) (0.1 *. (Prng.float prng 1.0 -. 0.5))
    done
  done;
  let locks = Array.init (n / 8) (fun _ -> Dsm.alloc_lock h) in
  let bar = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx and np = Dsm.nprocs ctx in
      let lo = p * n / np and hi = (p + 1) * n / np in
      for _s = 1 to steps do
        (* Pairwise forces on my stripe, accumulated locally. *)
        let local = Array.make (n * 3) 0.0 in
        for i = lo to hi - 1 do
          let xi = Dsm.load_float ctx (fld i 0)
          and yi = Dsm.load_float ctx (fld i 1)
          and zi = Dsm.load_float ctx (fld i 2) in
          for j = 0 to n - 1 do
            if j <> i then begin
              let dx = xi -. Dsm.load_float ctx (fld j 0)
              and dy = yi -. Dsm.load_float ctx (fld j 1)
              and dz = zi -. Dsm.load_float ctx (fld j 2) in
              let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
              Dsm.compute ctx 120;
              if r2 < cutoff *. cutoff && r2 > 0.0 then begin
                let f = 1.0 /. ((r2 +. 0.1) *. (r2 +. 0.1)) in
                local.(i * 3) <- local.(i * 3) +. (f *. dx);
                local.((i * 3) + 1) <- local.((i * 3) + 1) +. (f *. dy);
                local.((i * 3) + 2) <- local.((i * 3) + 2) +. (f *. dz)
              end
            end
          done
        done;
        (* Fold into the shared force fields under per-group locks. *)
        for g = 0 to (n / 8) - 1 do
          Dsm.lock ctx locks.(g);
          for i = g * 8 to (g * 8) + 7 do
            for d = 0 to 2 do
              if local.((i * 3) + d) <> 0.0 then
                Dsm.store_float ctx (fld i (6 + d))
                  (Dsm.load_float ctx (fld i (6 + d)) +. local.((i * 3) + d))
            done
          done;
          Dsm.unlock ctx locks.(g)
        done;
        Dsm.barrier ctx bar;
        (* Integrate my stripe. *)
        for i = lo to hi - 1 do
          Dsm.batch ctx
            [ (fld i 0, fields * 8, Dsm.W) ]
            (fun () ->
              for d = 0 to 2 do
                let v =
                  Dsm.Batch.load_float ctx (fld i (3 + d))
                  +. (Dsm.Batch.load_float ctx (fld i (6 + d)) *. dt)
                in
                Dsm.Batch.store_float ctx (fld i (3 + d)) v;
                Dsm.Batch.store_float ctx (fld i d)
                  (Dsm.Batch.load_float ctx (fld i d) +. (v *. dt));
                Dsm.Batch.store_float ctx (fld i (6 + d)) 0.0
              done)
        done;
        Dsm.barrier ctx bar
      done);
  h

let () =
  Printf.printf "%d molecules, %d steps, 16 processors\n\n" n steps;
  List.iter
    (fun (name, variant, clustering) ->
      let h = run ~variant ~clustering in
      let stats = Dsm.aggregate_stats h in
      Printf.printf
        "%-24s %8.2f ms   misses %6d   downgrade msgs %5d   mean read %4.1f us\n"
        name
        (1000.0 *. float_of_int (Dsm.parallel_cycles h) /. 3.0e8)
        (Shasta_core.Stats.total_misses stats)
        (Dsm.downgrade_messages h)
        (Shasta_core.Stats.mean_read_latency_us stats))
    [
      ("Base-Shasta", Config.Base, 1);
      ("SMP-Shasta cl=4", Config.Smp, 4);
    ];
  print_newline ();
  print_endline
    "The lock-protected force records migrate between processors; under\n\
     SMP-Shasta most of that traffic stays inside a node, at the price of\n\
     downgrade messages when a block leaves the node (cf. Water, Figure 8)."
