(* Quickstart: a parallel sum over a shared array on a simulated
   16-processor cluster of four 4-way SMPs running SMP-Shasta.

     dune exec examples/quickstart.exe *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config

let () =
  (* 1. Configure the machine: the SMP-Shasta protocol with a clustering
     of 4 processors per coherence node. *)
  let cfg = Config.create ~variant:Config.Smp ~nprocs:16 ~clustering:4 () in
  let h = Dsm.create cfg in

  (* 2. Setup phase: allocate shared data, locks and barriers, and
     initialize values at their home nodes. *)
  let n = 4096 in
  let data = Dsm.alloc_floats h n in
  for i = 0 to n - 1 do
    Dsm.poke_float h (data + (8 * i)) (float_of_int (i + 1))
  done;
  let total = Dsm.alloc_floats h 1 in
  let lock = Dsm.alloc_lock h in
  let bar = Dsm.alloc_barrier h in

  (* 3. Parallel phase: every simulated processor runs this body. Loads
     and stores go through the inline access-control checks and the
     coherence protocol underneath, exactly like an instrumented
     executable on the real system. *)
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx and np = Dsm.nprocs ctx in
      let lo = p * n / np and hi = (p + 1) * n / np in
      let local = ref 0.0 in
      for i = lo to hi - 1 do
        local := !local +. Dsm.load_float ctx (data + (8 * i));
        Dsm.compute ctx 10 (* model some local work per element *)
      done;
      Dsm.lock ctx lock;
      Dsm.store_float ctx total (Dsm.load_float ctx total +. !local);
      Dsm.unlock ctx lock;
      Dsm.barrier ctx bar);

  (* 4. Inspect results and execution statistics. *)
  let expect = float_of_int (n * (n + 1) / 2) in
  Printf.printf "sum = %.0f (expected %.0f)\n" (Dsm.peek_float h total) expect;
  Printf.printf "parallel time: %.3f simulated ms\n"
    (1000.0 *. float_of_int (Dsm.parallel_cycles h) /. 3.0e8);
  Printf.printf "misses: %d, remote messages: %d, local: %d, downgrades: %d\n"
    (Shasta_core.Stats.total_misses (Dsm.aggregate_stats h))
    (Dsm.messages_remote h) (Dsm.messages_local h) (Dsm.downgrade_messages h)
