(* Tests for the interconnect model. *)

module Topology = Shasta_net.Topology
module Link = Shasta_net.Link
module Network = Shasta_net.Network

let test_topology () =
  let t = Topology.create ~nprocs:16 ~procs_per_node:4 in
  Alcotest.(check int) "nodes" 4 (Topology.nnodes t);
  Alcotest.(check int) "node of 5" 1 (Topology.node_of t 5);
  Alcotest.(check bool) "same node" true (Topology.same_node t 4 7);
  Alcotest.(check bool) "different nodes" false (Topology.same_node t 3 4);
  Alcotest.(check (list int)) "procs of node 2" [ 8; 9; 10; 11 ]
    (Topology.procs_of_node t 2)

let test_topology_partial () =
  let t = Topology.create ~nprocs:6 ~procs_per_node:4 in
  Alcotest.(check int) "two nodes" 2 (Topology.nnodes t);
  Alcotest.(check (list int)) "partial node" [ 4; 5 ] (Topology.procs_of_node t 1)

let test_link_costs () =
  let l = Link.default in
  let local = Link.transfer_cycles l ~same_node:true ~size:64 in
  let remote = Link.transfer_cycles l ~same_node:false ~size:64 in
  Alcotest.(check bool) "remote slower" true (remote > local);
  let small = Link.transfer_cycles l ~same_node:false ~size:16 in
  Alcotest.(check bool) "size matters" true (remote > small)

let test_network_delivery () =
  let topo = Topology.create ~nprocs:4 ~procs_per_node:2 in
  let net = Network.create topo Link.default in
  Network.send net ~src:0 ~dst:1 ~now:0 ~size:16 "hello";
  Alcotest.(check (option (pair int string))) "not arrived yet" None
    (Network.poll net ~dst:1 ~now:0);
  (match Network.peek_arrival net ~dst:1 with
  | Some t ->
    Alcotest.(check (option (pair int string)))
      "arrives at its timestamp" (Some (0, "hello"))
      (Network.poll net ~dst:1 ~now:t)
  | None -> Alcotest.fail "message lost");
  Alcotest.(check int) "queue drained" 0 (Network.queued net ~dst:1)

let test_network_fifo_per_pair () =
  (* A small message sent after a large one must not overtake it. *)
  let topo = Topology.create ~nprocs:2 ~procs_per_node:1 in
  let net = Network.create topo Link.default in
  Network.send net ~src:0 ~dst:1 ~now:0 ~size:8192 "big";
  Network.send net ~src:0 ~dst:1 ~now:1 ~size:0 "small";
  let got = ref [] in
  let rec drain now =
    match Network.poll net ~dst:1 ~now with
    | Some (_, m) ->
      got := m :: !got;
      drain now
    | None -> if Network.queued net ~dst:1 > 0 then drain (now + 100)
  in
  drain 0;
  Alcotest.(check (list string)) "FIFO per pair" [ "big"; "small" ] (List.rev !got)

let test_network_counters () =
  let topo = Topology.create ~nprocs:4 ~procs_per_node:2 in
  let net = Network.create topo Link.default in
  Network.send net ~src:0 ~dst:1 ~now:0 ~size:10 "local";
  Network.send net ~src:0 ~dst:2 ~now:0 ~size:20 "remote";
  Network.send net ~src:3 ~dst:2 ~now:0 ~size:30 "local2";
  Alcotest.(check int) "local count" 2 (Network.sent_local net);
  Alcotest.(check int) "remote count" 1 (Network.sent_remote net);
  Alcotest.(check int) "remote bytes" 20 (Network.bytes_remote net)

let prop_arrival_order =
  QCheck.Test.make ~name:"poll yields messages in arrival order" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 30) (pair (int_bound 3) (int_bound 500)))
    (fun sends ->
      let topo = Topology.create ~nprocs:4 ~procs_per_node:2 in
      let net = Network.create topo Link.default in
      List.iter
        (fun (src, now) -> Network.send net ~src ~dst:3 ~now ~size:8 now)
        sends;
      let rec drain acc now =
        match Network.poll net ~dst:3 ~now with
        | Some (_, _) -> (
          (* record the arrival time used *)
          match Network.peek_arrival net ~dst:3 with
          | _ -> drain (now :: acc) now)
        | None -> if Network.queued net ~dst:3 > 0 then drain acc (now + 50) else acc
      in
      let _ = drain [] 0 in
      true)

let () =
  Alcotest.run "net"
    [
      ( "topology",
        [
          Alcotest.test_case "basic" `Quick test_topology;
          Alcotest.test_case "partial node" `Quick test_topology_partial;
        ] );
      ("link", [ Alcotest.test_case "costs" `Quick test_link_costs ]);
      ( "network",
        [
          Alcotest.test_case "delivery" `Quick test_network_delivery;
          Alcotest.test_case "fifo per pair" `Quick test_network_fifo_per_pair;
          Alcotest.test_case "counters" `Quick test_network_counters;
          QCheck_alcotest.to_alcotest prop_arrival_order;
        ] );
    ]
