(* SMP-Shasta-specific behaviour: intra-node sharing, private state
   tables, selective downgrades, and the race scenarios of Figure 2. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Machine = Shasta_core.Machine
module Stats = Shasta_core.Stats
module Msg = Shasta_core.Msg
module State_table = Shasta_mem.State_table
module Layout = Shasta_mem.Layout
module Histogram = Shasta_util.Histogram

(* 8 processors, two 4-processor coherence nodes. *)
let smp_machine () =
  Dsm.create (Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4 ())

let test_intra_node_sharing_no_remote_miss () =
  let h = smp_machine () in
  let a = Dsm.alloc h ~block_size:64 ~home:4 64 in
  Dsm.poke_float h a 4.0;
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      (* proc 0 fetches the remote block. *)
      if p = 0 then ignore (Dsm.load_float ctx a);
      Dsm.barrier ctx b;
      (* Siblings read it without any new software miss: the flag-based
         check succeeds directly against the node's copy. *)
      if p >= 1 && p <= 3 then
        Alcotest.(check (float 0.0)) "clustered read" 4.0 (Dsm.load_float ctx a));
  Alcotest.(check int) "exactly one read miss" 1
    (Stats.total_misses (Dsm.aggregate_stats h))

let test_private_upgrade_on_sibling_store () =
  let h = smp_machine () in
  let a = Dsm.alloc h ~block_size:64 ~home:4 64 in
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      if p = 0 then Dsm.store_float ctx a 1.0;
      Dsm.barrier ctx b;
      (* Sibling's store needs only a private-state upgrade: the node
         already holds the block exclusively. *)
      if p = 1 then Dsm.store_float ctx a 2.0;
      Dsm.barrier ctx b);
  let agg = Dsm.aggregate_stats h in
  Alcotest.(check int) "one software miss total" 1 (Stats.total_misses agg);
  Alcotest.(check bool) "private upgrade recorded" true (agg.Stats.private_upgrades >= 1);
  Alcotest.(check (float 0.0)) "last store wins" 2.0 (Dsm.peek_float h a)

(* Downgrade selectivity: only processors whose private table shows an
   access receive downgrade messages (Figure 8's mechanism). *)
let downgrade_events_with ~writers =
  let h = smp_machine () in
  let a = Dsm.alloc h ~block_size:64 ~home:4 64 in
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      if p >= 4 && p < 4 + writers then Dsm.store_float ctx a (float_of_int p);
      Dsm.barrier ctx b;
      if p = 0 then ignore (Dsm.load_float ctx a);
      Dsm.barrier ctx b);
  let hist = (Dsm.aggregate_stats h).Stats.downgrade_events in
  (Histogram.total hist, hist)

let test_selective_downgrades_zero () =
  let total, hist = downgrade_events_with ~writers:1 in
  Alcotest.(check bool) "at least one downgrade event" true (total >= 1);
  Alcotest.(check int) "no messages needed" 0
    (List.fold_left
       (fun acc k -> acc + (k * Histogram.count hist k))
       0 (Histogram.keys hist))

let test_selective_downgrades_counted () =
  (* Three sibling writers => private-exclusive entries on all three;
     the read-forward handler executes at one of them and must message
     exactly the other two. *)
  let _, hist = downgrade_events_with ~writers:3 in
  Alcotest.(check int) "one event with 2 messages" 1 (Histogram.count hist 2)

let test_flag_loads_dont_raise_private () =
  (* A sibling whose loads always succeed through the invalid-flag check
     never upgrades its private entry, so it receives no downgrade
     message (§3.3). *)
  let h = smp_machine () in
  let a = Dsm.alloc h ~block_size:64 ~home:4 64 in
  Dsm.poke_float h a 8.0;
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      if p = 4 then ignore (Dsm.load_float ctx a);
      Dsm.barrier ctx b;
      (* sibling 5 reads via the flag check only. *)
      if p = 5 then
        Alcotest.(check (float 0.0)) "value" 8.0 (Dsm.load_float ctx a);
      Dsm.barrier ctx b);
  let m = Dsm.machine h in
  let line = Layout.line_of m.Machine.layout a in
  Alcotest.(check bool) "proc 5 private still invalid" true
    (State_table.get m.Machine.privates.(5) line = State_table.Invalid)

(* Figure 2 scenarios, run as concurrent hammering: a node-resident
   writer/reader races against remote requests; the downgrade protocol
   must never lose a store or return the flag value to a load. *)
let test_figure2_races () =
  let h =
    Dsm.create (Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4 ~seed:5 ())
  in
  let a = Dsm.alloc h ~block_size:64 ~home:0 64 in
  let l = Dsm.alloc_lock h in
  let rounds = 40 in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      for _ = 1 to rounds do
        match p with
        | 0 | 4 ->
          (* lock-protected increments from both nodes: exclusive copies
             bounce, stores race with downgrades *)
          Dsm.lock ctx l;
          let v = Dsm.load_float ctx a in
          Dsm.store_float ctx a (v +. 1.0);
          Dsm.unlock ctx l
        | 1 | 5 ->
          (* concurrent readers: must never observe the flag pattern as
             data, and never a non-integral intermediate *)
          let v = Dsm.load_float ctx a in
          Alcotest.(check bool) "read an integral counter value" true
            (Float.is_integer v && v >= 0.0);
          Dsm.compute ctx 200
        | _ -> Dsm.compute ctx 500
      done);
  Alcotest.(check (float 0.0)) "no lost increments"
    (float_of_int (2 * rounds))
    (Dsm.peek_float h a)

let test_clustering_reduces_messages () =
  (* The same workload with clustering 1 vs 4: remote messages must drop
     substantially with clustering (Figure 7's effect). *)
  let run clustering =
    let h =
      Dsm.create (Config.create ~variant:Config.Smp ~nprocs:8 ~clustering ())
    in
    let arr = Dsm.alloc_floats h ~home:0 256 in
    for i = 0 to 255 do
      Dsm.poke_float h (arr + (8 * i)) 1.0
    done;
    let b = Dsm.alloc_barrier h in
    Dsm.run h (fun ctx ->
        let s = ref 0.0 in
        for i = 0 to 255 do
          s := !s +. Dsm.load_float ctx (arr + (8 * i))
        done;
        Dsm.barrier ctx b);
    Dsm.messages_remote h
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "clustering=4 (%d) << clustering=1 (%d)" r4 r1)
    true
    (r4 * 2 < r1)

let test_downgrade_message_stat_consistency () =
  let _, hist = downgrade_events_with ~writers:3 in
  let weighted =
    List.fold_left (fun acc k -> acc + (k * Histogram.count hist k)) 0
      (Histogram.keys hist)
  in
  let h = smp_machine () in
  ignore h;
  Alcotest.(check bool) "weighted sum positive" true (weighted >= 2)

let () =
  Alcotest.run "smp"
    [
      ( "clustering",
        [
          Alcotest.test_case "intra-node sharing" `Quick
            test_intra_node_sharing_no_remote_miss;
          Alcotest.test_case "private upgrade" `Quick
            test_private_upgrade_on_sibling_store;
          Alcotest.test_case "fewer remote messages" `Quick
            test_clustering_reduces_messages;
        ] );
      ( "downgrades",
        [
          Alcotest.test_case "zero messages" `Quick test_selective_downgrades_zero;
          Alcotest.test_case "selective count" `Quick
            test_selective_downgrades_counted;
          Alcotest.test_case "flag loads stay private-invalid" `Quick
            test_flag_loads_dont_raise_private;
          Alcotest.test_case "stat consistency" `Quick
            test_downgrade_message_stat_consistency;
        ] );
      ( "races",
        [ Alcotest.test_case "figure-2 hammer" `Quick test_figure2_races ] );
    ]
