(* Tests for the memory substrate: layout, block map, allocator, state
   tables, images and the invalid-flag mechanism. *)

module Layout = Shasta_mem.Layout
module Block_map = Shasta_mem.Block_map
module Home_map = Shasta_mem.Home_map
module State_table = Shasta_mem.State_table
module Image = Shasta_mem.Image
module Alloc = Shasta_mem.Alloc

let layout () = Layout.create ~line_size:64 ~heap_bytes:(1 lsl 20) ()

let test_layout () =
  let l = layout () in
  Alcotest.(check int) "nlines" (1 lsl 14) (Layout.nlines l);
  Alcotest.(check int) "line of 0" 0 (Layout.line_of l 0);
  Alcotest.(check int) "line of 63" 0 (Layout.line_of l 63);
  Alcotest.(check int) "line of 64" 1 (Layout.line_of l 64);
  Alcotest.(check int) "addr of line" 128 (Layout.addr_of_line l 2);
  Alcotest.(check bool) "valid" true (Layout.valid_addr l 0);
  Alcotest.(check bool) "invalid" false (Layout.valid_addr l (1 lsl 20));
  Alcotest.(check int) "page of line 63" 0 (Layout.page_of_line l 63);
  Alcotest.(check int) "page of line 64" 1 (Layout.page_of_line l 64)

let test_block_map () =
  let l = layout () in
  let b = Block_map.create l in
  Alcotest.(check int) "default 1-line block" 5 (Block_map.base_line b 5);
  Block_map.define b ~first_line:8 ~nlines:4;
  for line = 8 to 11 do
    Alcotest.(check int) "base" 8 (Block_map.base_line b line);
    Alcotest.(check int) "len" 4 (Block_map.block_nlines b line)
  done;
  Alcotest.(check int) "outside" 12 (Block_map.base_line b 12);
  Alcotest.(check int) "base addr" (8 * 64) (Block_map.base_addr b l (9 * 64));
  Alcotest.(check int) "size" 256 (Block_map.size_bytes b l (9 * 64))

let test_alloc_default_granularity () =
  let l = layout () in
  let bm = Block_map.create l in
  let a = Alloc.create l bm in
  (* Small object: one block covering the object. *)
  let small = Alloc.alloc a 200 in
  Alcotest.(check int) "small is one block" 256 (Block_map.size_bytes bm l small);
  (* Large object: line-sized blocks. *)
  let large = Alloc.alloc a 4096 in
  Alcotest.(check int) "large uses 64B blocks" 64 (Block_map.size_bytes bm l large);
  (* Explicit hint. *)
  let hinted = Alloc.alloc a ~block_size:512 4096 in
  Alcotest.(check int) "hinted block" 512 (Block_map.size_bytes bm l hinted);
  (* Objects never share a line. *)
  let x = Alloc.alloc a 8 in
  let y = Alloc.alloc a 8 in
  Alcotest.(check bool) "line-aligned objects" true
    (Layout.line_of l x <> Layout.line_of l y)

let test_alloc_exhaustion () =
  let l = Layout.create ~line_size:64 ~heap_bytes:4096 () in
  let a = Alloc.create l (Block_map.create l) in
  ignore (Alloc.alloc a 4000);
  Alcotest.check_raises "heap exhausted"
    (Failure "Alloc.alloc: shared heap exhausted") (fun () ->
      ignore (Alloc.alloc a 4096))

let test_state_table () =
  let l = layout () in
  let t = State_table.create l in
  Alcotest.(check bool) "starts invalid" true
    (State_table.get t 0 = State_table.Invalid);
  State_table.set t 0 State_table.Exclusive;
  State_table.set_pending t 0 true;
  State_table.set_pending_downgrade t 0 true;
  Alcotest.(check bool) "state kept" true
    (State_table.get t 0 = State_table.Exclusive);
  Alcotest.(check bool) "pending" true (State_table.pending t 0);
  Alcotest.(check bool) "pdg" true (State_table.pending_downgrade t 0);
  State_table.set t 0 State_table.Shared;
  Alcotest.(check bool) "bits independent of state" true
    (State_table.pending t 0 && State_table.pending_downgrade t 0);
  State_table.set_pending t 0 false;
  Alcotest.(check bool) "pending cleared" false (State_table.pending t 0);
  Alcotest.(check bool) "pdg survives" true (State_table.pending_downgrade t 0)

let test_state_order () =
  let open State_table in
  Alcotest.(check bool) "E>=S" true (base_geq Exclusive Shared);
  Alcotest.(check bool) "S>=S" true (base_geq Shared Shared);
  Alcotest.(check bool) "S<E" false (base_geq Shared Exclusive);
  Alcotest.(check bool) "I<S" false (base_geq Invalid Shared)

let test_image_values () =
  let l = layout () in
  let img = Image.create l in
  Image.store_float img 0 3.25;
  Alcotest.(check (float 0.0)) "float roundtrip" 3.25 (Image.load_float img 0);
  Image.store_int img 8 (-42);
  Alcotest.(check int) "int roundtrip" (-42) (Image.load_int img 8)

let test_invalid_flag () =
  let l = layout () in
  let img = Image.create l in
  Image.store_float img 0 1.5;
  Image.write_invalid_flag img ~addr:0 ~len:64;
  Alcotest.(check bool) "flag detected" true (Image.is_flag64 (Image.load64 img 0));
  Alcotest.(check bool) "whole line stamped" true
    (Image.is_flag64 (Image.load64 img 56));
  Image.store_float img 0 2.5;
  Alcotest.(check bool) "data clears flag" false
    (Image.is_flag64 (Image.load64 img 0))

let test_write_bytes_skip () =
  let l = layout () in
  let img = Image.create l in
  Image.store_int img 0 1;
  Image.store_int img 8 2;
  Image.store_int img 16 3;
  let incoming = Bytes.make 24 '\xff' in
  Image.write_bytes img ~addr:0 ~skip:[ (8, 8) ] incoming;
  Alcotest.(check bool) "overwritten" true (Image.load_int img 0 <> 1);
  Alcotest.(check int) "skipped range preserved" 2 (Image.load_int img 8);
  Alcotest.(check bool) "tail overwritten" true (Image.load_int img 16 <> 3)

let test_home_map () =
  let l = layout () in
  let hm = Home_map.create l ~nprocs:4 in
  Alcotest.(check int) "page 0 round robin" 0 (Home_map.home_of_line hm l 0);
  Alcotest.(check int) "page 1 round robin" 1 (Home_map.home_of_line hm l 64);
  Home_map.set_home hm l ~addr:0 ~len:8192 ~proc:3;
  Alcotest.(check int) "pinned" 3 (Home_map.home_of_line hm l 0);
  Alcotest.(check int) "pinned second page" 3 (Home_map.home_of_line hm l 64);
  Alcotest.(check int) "beyond range untouched" 2 (Home_map.home_of_line hm l 128)

let prop_flag_pattern_is_rare =
  QCheck.Test.make ~name:"random doubles are not the flag pattern" ~count:1000
    QCheck.float (fun f -> not (Image.is_flag64 (Int64.bits_of_float f)))

let prop_alloc_disjoint =
  QCheck.Test.make ~name:"allocations are disjoint" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 2000))
    (fun sizes ->
      let l = Layout.create ~heap_bytes:(1 lsl 20) () in
      let a = Alloc.create l (Block_map.create l) in
      let spans = List.map (fun s -> (Alloc.alloc a s, s)) sizes in
      let rec disjoint = function
        | [] -> true
        | (base, size) :: rest ->
          List.for_all
            (fun (b2, s2) -> b2 >= base + size || base >= b2 + s2)
            rest
          && disjoint rest
      in
      disjoint spans)

let () =
  Alcotest.run "mem"
    [
      ("layout", [ Alcotest.test_case "geometry" `Quick test_layout ]);
      ("block-map", [ Alcotest.test_case "define/query" `Quick test_block_map ]);
      ( "alloc",
        [
          Alcotest.test_case "granularity" `Quick test_alloc_default_granularity;
          Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
          QCheck_alcotest.to_alcotest prop_alloc_disjoint;
        ] );
      ( "state-table",
        [
          Alcotest.test_case "bits" `Quick test_state_table;
          Alcotest.test_case "ordering" `Quick test_state_order;
        ] );
      ( "image",
        [
          Alcotest.test_case "values" `Quick test_image_values;
          Alcotest.test_case "invalid flag" `Quick test_invalid_flag;
          Alcotest.test_case "merge skip" `Quick test_write_bytes_skip;
          QCheck_alcotest.to_alcotest prop_flag_pattern_is_rare;
        ] );
      ("home-map", [ Alcotest.test_case "placement" `Quick test_home_map ]);
    ]
