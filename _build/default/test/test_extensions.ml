(* The paper's §5 planned extensions, implemented behind configuration
   flags: hierarchical SMP barriers and shared directory state. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Stats = Shasta_core.Stats

let run_barrier_workload ~smp_sync =
  let cfg =
    Config.create ~variant:Config.Smp ~nprocs:16 ~clustering:4 ~smp_sync ()
  in
  let h = Dsm.create cfg in
  let arr = Dsm.alloc_floats h 16 in
  let b = Dsm.alloc_barrier h in
  let rounds = 10 in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      for r = 1 to rounds do
        Dsm.store_float ctx (arr + (8 * p)) (float_of_int r);
        Dsm.barrier ctx b;
        (* Everyone checks everyone's phase value: release semantics. *)
        for q = 0 to 15 do
          let v = Dsm.load_float ctx (arr + (8 * q)) in
          Alcotest.(check (float 0.0)) "phase value" (float_of_int r) v
        done;
        Dsm.barrier ctx b
      done);
  h

let test_hierarchical_barrier_correct () = ignore (run_barrier_workload ~smp_sync:true)

let test_hierarchical_barrier_fewer_messages () =
  let plain = run_barrier_workload ~smp_sync:false in
  let hier = run_barrier_workload ~smp_sync:true in
  let total h = Dsm.messages_remote h + Dsm.messages_local h in
  Alcotest.(check bool)
    (Printf.sprintf "hier (%d) < plain (%d)" (total hier) (total plain))
    true
    (total hier < total plain)

let run_dirshare_workload ~share_directory =
  let cfg =
    Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4 ~share_directory ()
  in
  let h = Dsm.create cfg in
  (* Data homed at proc 1; procs 0,2,3 (same node as the home) and the
     other node both access it. *)
  let arr = Dsm.alloc_floats h ~home:1 64 in
  let l = Dsm.alloc_lock h in
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      for _ = 1 to 6 do
        Dsm.lock ctx l;
        for i = 0 to 7 do
          let v = Dsm.load_float ctx (arr + (8 * i)) in
          Dsm.store_float ctx (arr + (8 * i)) (v +. 1.0)
        done;
        Dsm.unlock ctx l
      done;
      Dsm.barrier ctx b);
  (h, arr)

let test_dirshare_values () =
  let h, arr = run_dirshare_workload ~share_directory:true in
  for i = 0 to 7 do
    Alcotest.(check (float 0.0)) "counter" 48.0 (Dsm.peek_float h (arr + (8 * i)))
  done

let test_dirshare_fewer_local_messages () =
  let plain, _ = run_dirshare_workload ~share_directory:false in
  let shared, _ = run_dirshare_workload ~share_directory:true in
  Alcotest.(check bool)
    (Printf.sprintf "shared (%d) < plain (%d)"
       (Dsm.messages_local shared) (Dsm.messages_local plain))
    true
    (Dsm.messages_local shared < Dsm.messages_local plain)

let () =
  Alcotest.run "extensions"
    [
      ( "smp-sync",
        [
          Alcotest.test_case "hierarchical barrier correct" `Quick
            test_hierarchical_barrier_correct;
          Alcotest.test_case "fewer sync messages" `Quick
            test_hierarchical_barrier_fewer_messages;
        ] );
      ( "share-directory",
        [
          Alcotest.test_case "lock counters correct" `Quick test_dirshare_values;
          Alcotest.test_case "fewer local messages" `Quick
            test_dirshare_fewer_local_messages;
        ] );
    ]
