(* Machine-level state: allocation-time ownership, home placement,
   geometry queries and synchronization object allocation. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Machine = Shasta_core.Machine
module Image = Shasta_mem.Image
module State_table = Shasta_mem.State_table
module Layout = Shasta_mem.Layout

let machine () =
  Machine.create (Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4 ())

let test_initial_ownership () =
  let m = machine () in
  let a = Machine.alloc m ~block_size:64 ~home:5 256 in
  let home_node = Machine.node_of m 5 in
  let line = Layout.line_of m.Machine.layout a in
  Array.iteri
    (fun n ns ->
      let st = State_table.get ns.Machine.table line in
      if n = home_node then
        Alcotest.(check bool) "home node exclusive" true (st = State_table.Exclusive)
      else begin
        Alcotest.(check bool) "other nodes invalid" true (st = State_table.Invalid);
        Alcotest.(check bool) "flag stamped" true
          (Image.is_flag64 (Image.load64 ns.Machine.image a))
      end)
    m.Machine.nodes;
  Alcotest.(check int) "home lookup" 5 (Machine.home_of_block m a)

let test_home_proc_private_exclusive () =
  let m = machine () in
  let a = Machine.alloc m ~block_size:64 ~home:2 64 in
  let line = Layout.line_of m.Machine.layout a in
  Array.iteri
    (fun p tbl ->
      let expect = if p = 2 then State_table.Exclusive else State_table.Invalid in
      Alcotest.(check bool) (Printf.sprintf "private of %d" p) true
        (State_table.get tbl line = expect))
    m.Machine.privates

let test_place_moves_ownership () =
  let m = machine () in
  let a = Machine.alloc m 8192 in
  Machine.place m ~addr:a ~len:8192 ~proc:6;
  Alcotest.(check int) "rehomed" 6 (Machine.home_of_block m a);
  let line = Layout.line_of m.Machine.layout a in
  let new_node = Machine.node_of m 6 in
  Array.iteri
    (fun n ns ->
      let st = State_table.get ns.Machine.table line in
      Alcotest.(check bool) "only new node valid" true
        (if n = new_node then st = State_table.Exclusive
         else st = State_table.Invalid))
    m.Machine.nodes

let test_block_geometry () =
  let m = machine () in
  let a = Machine.alloc m ~block_size:512 2048 in
  Alcotest.(check int) "base of middle addr" a (Machine.block_base m (a + 300));
  Alcotest.(check int) "block size" 512 (Machine.block_size m (a + 300));
  Alcotest.(check int) "second block base" (a + 512) (Machine.block_base m (a + 700))

let test_sync_allocation () =
  let m = machine () in
  let l1 = Machine.alloc_lock m and l2 = Machine.alloc_lock m in
  Alcotest.(check bool) "distinct locks" true (l1 <> l2);
  let b = Machine.alloc_barrier m in
  Alcotest.(check bool) "barrier exists" true (Hashtbl.mem m.Machine.barriers b);
  Alcotest.(check bool) "lock homes in range" true
    (Machine.lock_home m l1 >= 0 && Machine.lock_home m l1 < 8)

let test_fresh_machine_quiescent () =
  let m = machine () in
  ignore (Machine.alloc m 1024);
  (* No processors have run: not quiescent only because procs unfinished. *)
  Alcotest.(check bool) "not quiescent before run" false (Machine.quiescent m)

let test_node_partition () =
  let cfg = Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:2 () in
  Alcotest.(check int) "nnodes" 4 (Config.nnodes cfg);
  Alcotest.(check (list int)) "node 1 procs" [ 2; 3 ] (Config.procs_of_node cfg 1)

let test_config_validation () =
  Alcotest.check_raises "base clustering"
    (Invalid_argument "Config.create: Base-Shasta requires clustering = 1")
    (fun () ->
      ignore (Config.create ~variant:Config.Base ~nprocs:4 ~clustering:2 ()));
  Alcotest.check_raises "clustering divides node"
    (Invalid_argument "Config.create: clustering must divide procs_per_node")
    (fun () ->
      ignore (Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:3 ()))

let test_poke_peek () =
  let cfg = Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4 () in
  let h = Dsm.create cfg in
  let a = Dsm.alloc_floats h ~home:3 4 in
  Dsm.poke_float h (a + 8) 2.5;
  Dsm.poke_int h (a + 16) 77;
  Alcotest.(check (float 0.0)) "peek float" 2.5 (Dsm.peek_float h (a + 8));
  Alcotest.(check int) "peek int" 77 (Dsm.peek_int h (a + 16))

let () =
  Alcotest.run "machine"
    [
      ( "ownership",
        [
          Alcotest.test_case "initial at home" `Quick test_initial_ownership;
          Alcotest.test_case "home private exclusive" `Quick
            test_home_proc_private_exclusive;
          Alcotest.test_case "place moves ownership" `Quick
            test_place_moves_ownership;
        ] );
      ( "geometry",
        [
          Alcotest.test_case "blocks" `Quick test_block_geometry;
          Alcotest.test_case "node partition" `Quick test_node_partition;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
      ( "setup",
        [
          Alcotest.test_case "sync allocation" `Quick test_sync_allocation;
          Alcotest.test_case "quiescence" `Quick test_fresh_machine_quiescent;
          Alcotest.test_case "poke/peek" `Quick test_poke_peek;
        ] );
    ]
