(* Smoke tests of the experiment harness at reduced scale: each renderer
   must produce a non-empty table containing its expected structure, and
   the run cache must be shared across experiments. *)

module E = Shasta_experiments

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let check_contains out parts =
  List.iter
    (fun p ->
      Alcotest.(check bool) (Printf.sprintf "output mentions %S" p) true
        (contains out p))
    parts

let scale = 0.4

let test_table1 () =
  let out = E.Exp_checking_overhead.render ~scale () in
  check_contains out [ "Table 1"; "lu"; "raytrace"; "average overhead" ]

let test_micro () =
  let out = E.Exp_microbench.render () in
  check_contains out [ "2-hop"; "downgrade"; "us" ]

let test_fig8 () =
  let out = E.Exp_downgrade_dist.render ~procs:[ 8 ] ~scale () in
  check_contains out [ "Figure 8"; "0 msgs"; "3 msgs"; "water-nsq" ]

let test_speedup_consistency () =
  (* The cached sequential run must make speedups consistent across
     calls: same spec, same result. *)
  let s1 = E.Runner.speedup (E.Runner.base ~scale "ocean" 4) in
  let s2 = E.Runner.speedup (E.Runner.base ~scale "ocean" 4) in
  Alcotest.(check (float 0.0)) "deterministic cached speedup" s1 s2;
  Alcotest.(check bool) "cache populated" true (E.Runner.cache_size () > 0)

let test_run_verifies () =
  let r = E.Runner.run (E.Runner.smp ~scale "water-sp" 8 ~clustering:4) in
  Alcotest.(check bool) "verdict ok" true r.E.Runner.verdict.Shasta_apps.App.ok;
  Alcotest.(check bool) "produced misses" true
    (Shasta_core.Stats.total_misses r.E.Runner.stats > 0)

let test_messages_split () =
  let r = E.Runner.run (E.Runner.smp ~scale "ocean" 8 ~clustering:4) in
  Alcotest.(check bool) "remote messages" true (r.E.Runner.remote_msgs > 0);
  Alcotest.(check bool) "downgrades counted separately" true
    (r.E.Runner.downgrade_msgs >= 0 && r.E.Runner.local_msgs >= 0)

let () =
  Alcotest.run "experiments"
    [
      ( "renderers",
        [
          Alcotest.test_case "table 1" `Quick test_table1;
          Alcotest.test_case "microbench" `Quick test_micro;
          Alcotest.test_case "figure 8" `Quick test_fig8;
        ] );
      ( "runner",
        [
          Alcotest.test_case "cached speedups" `Quick test_speedup_consistency;
          Alcotest.test_case "runs verify" `Quick test_run_verifies;
          Alcotest.test_case "message split" `Quick test_messages_split;
        ] );
    ]
