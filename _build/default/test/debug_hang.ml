(* Diagnostic driver: run a workload under a configurable machine and,
   if it hits the cycle limit (a hang) or fails verification, dump the
   full machine state via Inspect.

     dune exec test/debug_hang.exe -- water-nsq smp 16 4 [vg]
     SHASTA_TRACE_BLOCK=0x2800 dune exec test/debug_hang.exe -- ... *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module App = Shasta_apps.App

let () =
  let argv = Sys.argv in
  let app = if Array.length argv > 1 then argv.(1) else "water-nsq" in
  let variant =
    if Array.length argv > 2 && argv.(2) = "base" then Config.Base else Config.Smp
  in
  let nprocs = if Array.length argv > 3 then int_of_string argv.(3) else 16 in
  let clustering = if Array.length argv > 4 then int_of_string argv.(4) else 4 in
  let vg = Array.length argv > 5 && argv.(5) = "vg" in
  let clustering = if variant = Config.Base then 1 else clustering in
  let maker = Shasta_apps.Registry.find app in
  let inst = maker ~vg () in
  let heap = (max (1 lsl 22) inst.App.heap_bytes + 4095) / 4096 * 4096 in
  let cfg =
    Config.create ~variant ~nprocs ~clustering ~heap_bytes:heap
      ~max_cycles:200_000_000 ()
  in
  let h = Dsm.create cfg in
  let body, verify = inst.App.setup h in
  Printf.printf "%s: %s\n%!" inst.App.name inst.App.workload;
  (try
     Dsm.run h body;
     let v = verify h in
     Printf.printf "verdict: ok=%b %s\n" v.App.ok v.App.detail;
     match Shasta_core.Inspect.check_invariants (Dsm.machine h) with
     | [] -> print_endline "invariants: ok"
     | vs -> List.iter (fun s -> print_endline ("INVARIANT: " ^ s)) vs
   with Shasta_sim.Engine.Cycle_limit p ->
     Printf.printf "CYCLE LIMIT hit on proc %d - machine state:\n%!" p;
     Shasta_core.Inspect.dump Format.std_formatter (Dsm.machine h));
  Format.pp_print_flush Format.std_formatter ()
