module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Stats = Shasta_core.Stats

(* Migratory counter: each proc in turn increments every slot under a lock.
   Exercises upgrades, readex, invalidations, downgrades. *)
let migratory ~variant ~nprocs ~clustering () =
  let cfg = Config.create ~variant ~nprocs ~clustering ~seed:7 () in
  let h = Dsm.create cfg in
  let slots = 64 in
  let arr = Dsm.alloc_floats h slots in
  let l = Dsm.alloc_lock h in
  let b = Dsm.alloc_barrier h in
  let rounds = 8 in
  Dsm.run h (fun ctx ->
      for _r = 1 to rounds do
        Dsm.lock ctx l;
        for i = 0 to slots - 1 do
          let v = Dsm.load_float ctx (arr + (8 * i)) in
          Dsm.store_float ctx (arr + (8 * i)) (v +. 1.0);
          Dsm.compute ctx 3
        done;
        Dsm.unlock ctx l;
        Dsm.compute ctx 50
      done;
      Dsm.barrier ctx b;
      if Dsm.pid ctx = 0 then
        for i = 0 to slots - 1 do
          let v = Dsm.load_float ctx (arr + (8 * i)) in
          Alcotest.(check (float 1e-9)) "count" (float_of_int (rounds * Dsm.nprocs ctx)) v
        done);
  let agg = Dsm.aggregate_stats h in
  if nprocs > 1 then
    Alcotest.(check bool) "misses occurred" true (Stats.total_misses agg > 0);
  if clustering > 1 then
    Alcotest.(check bool) "downgrades occurred" true (agg.Stats.downgrades_sent > 0)

(* Batched stencil: write-batch own row, read-batch neighbours. *)
let batched ~variant ~nprocs ~clustering () =
  let cfg = Config.create ~variant ~nprocs ~clustering ~seed:3 () in
  let h = Dsm.create cfg in
  let cols = 32 in
  let rows = nprocs * 4 in
  let grid = Dsm.alloc_floats h (rows * cols) in
  let addr r c = grid + (8 * ((r * cols) + c)) in
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx and np = Dsm.nprocs ctx in
      let r0 = p * rows / np and r1 = (p + 1) * rows / np in
      (* init own rows *)
      for r = r0 to r1 - 1 do
        Dsm.batch ctx [ (addr r 0, cols * 8, Dsm.W) ] (fun () ->
            for c = 0 to cols - 1 do
              Dsm.Batch.store_float ctx (addr r c) (float_of_int ((r * cols) + c))
            done)
      done;
      Dsm.barrier ctx b;
      (* smooth: each row becomes avg of row above/below *)
      let acc = ref 0.0 in
      for r = r0 to r1 - 1 do
        let up = (r + rows - 1) mod rows and dn = (r + 1) mod rows in
        Dsm.batch ctx
          [ (addr up 0, cols * 8, Dsm.R); (addr dn 0, cols * 8, Dsm.R) ]
          (fun () ->
            for c = 0 to cols - 1 do
              acc :=
                !acc
                +. (Dsm.Batch.load_float ctx (addr up c)
                   +. Dsm.Batch.load_float ctx (addr dn c))
                   /. 2.0
            done)
      done;
      Dsm.barrier ctx b;
      ignore !acc);
  let total = float_of_int (rows * cols * (rows * cols - 1) / 2) in
  ignore total

let () =
  Alcotest.run "smoke2"
    [
      ( "migratory",
        [
          Alcotest.test_case "base-4" `Quick (migratory ~variant:Config.Base ~nprocs:4 ~clustering:1);
          Alcotest.test_case "smp-8x4" `Quick (migratory ~variant:Config.Smp ~nprocs:8 ~clustering:4);
          Alcotest.test_case "smp-16x4" `Quick (migratory ~variant:Config.Smp ~nprocs:16 ~clustering:4);
          Alcotest.test_case "smp-16x2" `Quick (migratory ~variant:Config.Smp ~nprocs:16 ~clustering:2);
        ] );
      ( "batched",
        [
          Alcotest.test_case "base-8" `Quick (batched ~variant:Config.Base ~nprocs:8 ~clustering:1);
          Alcotest.test_case "smp-16x4" `Quick (batched ~variant:Config.Smp ~nprocs:16 ~clustering:4);
        ] );
    ]
