(* Unit and property tests for shasta_util. *)

module Prng = Shasta_util.Prng
module Bitset = Shasta_util.Bitset
module Histogram = Shasta_util.Histogram
module Text_table = Shasta_util.Text_table

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_prng_copy_independent () =
  let a = Prng.create 7 in
  ignore (Prng.int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.int64 a) (Prng.int64 b)

let test_prng_split_diverges () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.int64 a) (Prng.int64 b) then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 4)

let test_prng_bounds () =
  let a = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.int a 17 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 17);
    let f = Prng.float a 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_bitset_basic () =
  let s = Bitset.of_list [ 3; 5; 5; 0 ] in
  Alcotest.(check (list int)) "elements" [ 0; 3; 5 ] (Bitset.elements s);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check bool) "mem" true (Bitset.mem 5 s);
  Alcotest.(check bool) "not mem" false (Bitset.mem 4 s);
  let s' = Bitset.remove 5 s in
  Alcotest.(check bool) "removed" false (Bitset.mem 5 s');
  Alcotest.(check bool) "original untouched" true (Bitset.mem 5 s)

let test_bitset_ops () =
  let a = Bitset.of_list [ 1; 2; 3 ] and b = Bitset.of_list [ 2; 3; 4 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ]
    (Bitset.elements (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Bitset.elements (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1 ] (Bitset.elements (Bitset.diff a b))

let test_histogram () =
  let h = Histogram.create () in
  Histogram.add h 0;
  Histogram.add h 0;
  Histogram.add_many h 3 4;
  Alcotest.(check int) "count 0" 2 (Histogram.count h 0);
  Alcotest.(check int) "count 3" 4 (Histogram.count h 3);
  Alcotest.(check int) "total" 6 (Histogram.total h);
  Alcotest.(check (list int)) "keys" [ 0; 3 ] (Histogram.keys h);
  Alcotest.(check (float 1e-9)) "fraction" (2.0 /. 6.0) (Histogram.fraction h 0);
  let h2 = Histogram.create () in
  Histogram.add h2 0;
  let m = Histogram.merge h h2 in
  Alcotest.(check int) "merged" 3 (Histogram.count m 0);
  Alcotest.(check int) "inputs unchanged" 2 (Histogram.count h 0)

let test_table_render () =
  let out =
    Text_table.render ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "four lines" 4 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check int) "equal widths" (String.length (List.hd lines))
        (String.length l))
    lines

let test_bars () =
  Alcotest.(check string) "full bar" (String.make 10 '#')
    (Text_table.bar ~width:10 1.0);
  Alcotest.(check string) "clamped" (String.make 10 '#')
    (Text_table.bar ~width:10 2.0);
  Alcotest.(check string) "empty" "" (Text_table.bar ~width:10 0.0);
  Alcotest.(check string) "stacked" "##--"
    (Text_table.stacked_bar ~width:4 [ ('#', 0.5); ('-', 0.5) ])

(* Property tests. *)
let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/elements roundtrip" ~count:200
    QCheck.(list (int_bound 62))
    (fun l ->
      let sorted = List.sort_uniq compare l in
      Bitset.elements (Bitset.of_list l) = sorted)

let prop_bitset_cardinal =
  QCheck.Test.make ~name:"bitset cardinal = |elements|" ~count:200
    QCheck.(list (int_bound 62))
    (fun l ->
      let s = Bitset.of_list l in
      Bitset.cardinal s = List.length (Bitset.elements s))

let prop_histogram_total =
  QCheck.Test.make ~name:"histogram total = sum of counts" ~count:200
    QCheck.(list (int_bound 10))
    (fun l ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) l;
      Histogram.total h = List.length l)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "split" `Quick test_prng_split_diverges;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "set ops" `Quick test_bitset_ops;
          QCheck_alcotest.to_alcotest prop_bitset_roundtrip;
          QCheck_alcotest.to_alcotest prop_bitset_cardinal;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_histogram;
          QCheck_alcotest.to_alcotest prop_histogram_total;
        ] );
      ( "text-table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "bars" `Quick test_bars;
        ] );
    ]
