(* Batched-access semantics (§3.4.4): combined checks, multi-block
   ranges, concurrent batch writers on one block, and the deferred
   invalid-flag machinery under contention. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Machine = Shasta_core.Machine
module Stats = Shasta_core.Stats

let smp () = Dsm.create (Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4 ())

let test_batch_basic () =
  let h = smp () in
  let a = Dsm.alloc h ~block_size:64 128 in
  Dsm.run h (fun ctx ->
      if Dsm.pid ctx = 0 then begin
        Dsm.batch ctx
          [ (a, 128, Dsm.W) ]
          (fun () ->
            for i = 0 to 15 do
              Dsm.Batch.store_float ctx (a + (8 * i)) (float_of_int i)
            done);
        Dsm.batch ctx
          [ (a, 128, Dsm.R) ]
          (fun () ->
            for i = 0 to 15 do
              Alcotest.(check (float 0.0)) "read back" (float_of_int i)
                (Dsm.Batch.load_float ctx (a + (8 * i)))
            done)
      end)

let test_batch_spanning_blocks () =
  let h = smp () in
  (* A 72-byte record crossing a 64-byte block boundary. *)
  let a = Dsm.alloc h ~block_size:64 256 in
  let rec_base = a + 40 in
  Dsm.run h (fun ctx ->
      if Dsm.pid ctx = 1 then
        Dsm.batch ctx
          [ (rec_base, 72, Dsm.W) ]
          (fun () ->
            for k = 0 to 8 do
              Dsm.Batch.store_float ctx (rec_base + (8 * k)) (float_of_int (100 + k))
            done));
  for k = 0 to 8 do
    Alcotest.(check (float 0.0)) "spanning record" (float_of_int (100 + k))
      (Dsm.peek_float h (rec_base + (8 * k)))
  done

let test_concurrent_batch_writers_one_block () =
  (* Two processors on different nodes batch-write disjoint halves of
     the same 2048-byte block repeatedly; every write must survive the
     replay/merge machinery. *)
  let h = smp () in
  let a = Dsm.alloc h ~block_size:2048 2048 in
  let rounds = 12 in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      if p = 0 || p = 4 then begin
        let base = if p = 0 then a else a + 1024 in
        for r = 1 to rounds do
          Dsm.batch ctx
            [ (base, 1024, Dsm.W) ]
            (fun () ->
              for i = 0 to 127 do
                Dsm.Batch.store_float ctx (base + (8 * i))
                  (float_of_int ((r * 1000) + i))
              done);
          Dsm.compute ctx 100
        done
      end);
  for i = 0 to 127 do
    Alcotest.(check (float 0.0)) "half A final" (float_of_int ((rounds * 1000) + i))
      (Dsm.peek_float h (a + (8 * i)));
    Alcotest.(check (float 0.0)) "half B final" (float_of_int ((rounds * 1000) + i))
      (Dsm.peek_float h (a + 1024 + (8 * i)))
  done

let test_batch_reader_vs_writer () =
  (* Ocean-style parity split within one block: the writer updates even
     slots while the reader consumes odd slots — element-race-free but
     block-contended. Reads must never see the flag or torn values. *)
  let h = smp () in
  let a = Dsm.alloc h ~block_size:512 512 in
  for i = 0 to 63 do
    Dsm.poke_float h (a + (8 * i)) 1.0
  done;
  let rounds = 15 in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      if p = 0 then
        for r = 1 to rounds do
          Dsm.batch ctx
            [ (a, 512, Dsm.W) ]
            (fun () ->
              for i = 0 to 31 do
                Dsm.Batch.store_float ctx (a + (16 * i)) (float_of_int r)
              done);
          Dsm.compute ctx 300
        done
      else if p = 4 then
        for _ = 1 to rounds do
          Dsm.batch ctx
            [ (a, 512, Dsm.R) ]
            (fun () ->
              for i = 0 to 31 do
                let v = Dsm.Batch.load_float ctx (a + (16 * i) + 8) in
                Alcotest.(check (float 0.0)) "odd slots stable" 1.0 v
              done);
          Dsm.compute ctx 300
        done);
  Alcotest.(check (float 0.0)) "writer's last round"
    (float_of_int rounds)
    (Dsm.peek_float h a)

let test_no_deferred_flags_after_quiescence () =
  let h = smp () in
  let a = Dsm.alloc h ~block_size:1024 4096 in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      for r = 0 to 9 do
        Dsm.batch ctx
          [ (a + (1024 * (p mod 4)), 512, Dsm.W) ]
          (fun () ->
            for i = 0 to 63 do
              Dsm.Batch.store_float ctx
                (a + (1024 * (p mod 4)) + (8 * i))
                (float_of_int r)
            done)
      done);
  let m = Dsm.machine h in
  Array.iter
    (fun ns ->
      Alcotest.(check int) "no deferred flags" 0
        (Hashtbl.length ns.Machine.deferred_flags);
      Alcotest.(check int) "no batch lines" 0 (Hashtbl.length ns.Machine.batch_lines);
      Alcotest.(check int) "no registered wranges" 0
        (Hashtbl.length ns.Machine.batch_wranges))
    m.Machine.nodes

let test_batch_counts_checks () =
  let h = smp () in
  let a = Dsm.alloc h ~block_size:64 256 in
  Dsm.run h (fun ctx ->
      if Dsm.pid ctx = 0 then
        Dsm.batch ctx [ (a, 256, Dsm.R) ] (fun () -> ()));
  Alcotest.(check int) "one check per covered line" 4
    (Dsm.aggregate_stats h).Stats.checks

let () =
  Alcotest.run "batch"
    [
      ( "semantics",
        [
          Alcotest.test_case "write/read roundtrip" `Quick test_batch_basic;
          Alcotest.test_case "block-spanning range" `Quick
            test_batch_spanning_blocks;
          Alcotest.test_case "check accounting" `Quick test_batch_counts_checks;
        ] );
      ( "contention",
        [
          Alcotest.test_case "concurrent writers one block" `Quick
            test_concurrent_batch_writers_one_block;
          Alcotest.test_case "reader vs writer parity" `Quick
            test_batch_reader_vs_writer;
          Alcotest.test_case "clean after quiescence" `Quick
            test_no_deferred_flags_after_quiescence;
        ] );
    ]
