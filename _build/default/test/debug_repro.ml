(* Standalone reproduction of the batched-coherence counterexample that
   exposed the private-raise-during-downgrade bug (DESIGN.md 5b, last
   item; pinned as a regression in test_regressions.ml). Prints nothing
   but the invariant verdict when healthy.

     dune exec test/debug_repro.exe *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config

let value s t = float_of_int ((s * 1000) + t)

let () =
  let nprocs = 8 and clustering = 2 and block_size = 64 and nslots = 16 and nphases = 3 and seed = 709 in
  let cfg = Config.create ~variant:Config.Smp ~nprocs ~clustering ~seed ~heap_bytes:(4*1024*1024) () in
  let h = Dsm.create cfg in
  let arr = Dsm.alloc h ~block_size (8 * nslots) in
  Printf.printf "arr=0x%x\n%!" arr;
  let bar = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      for t = 0 to nphases - 1 do
        let lo = p * nslots / nprocs and hi = (p + 1) * nslots / nprocs in
        if hi > lo then
          Dsm.batch ctx [ (arr + (8 * lo), 8 * (hi - lo), Dsm.W) ]
            (fun () ->
              for s = lo to hi - 1 do
                Dsm.Batch.store_float ctx (arr + (8 * s)) (value s t)
              done);
        Dsm.barrier ctx bar;
        let q = (p + t + 1) mod nprocs in
        let qlo = q * nslots / nprocs and qhi = (q + 1) * nslots / nprocs in
        if qhi > qlo then begin
          Dsm.batch ctx [ (arr + (8 * qlo), 8 * (qhi - qlo), Dsm.R) ]
            (fun () ->
              for s = qlo to qhi - 1 do
                let v = Dsm.Batch.load_float ctx (arr + (8 * s)) in
                if v <> value s t then
                  Printf.eprintf "MISMATCH p%d phase%d slot%d (batched): got %g want %g\n%!" p t s v (value s t)
              done);
          let v = Dsm.load_float ctx (arr + (8 * qlo)) in
          if v <> value qlo t then
            Printf.eprintf "MISMATCH p%d phase%d slot%d (plain): got %g want %g\n%!" p t qlo v (value qlo t)
        end;
        Dsm.barrier ctx bar
      done);
  (match Shasta_core.Inspect.check_invariants (Dsm.machine h) with
   | [] -> print_endline "invariants ok"
   | vs -> List.iter print_endline vs)
