test/debug_repro.mli:
