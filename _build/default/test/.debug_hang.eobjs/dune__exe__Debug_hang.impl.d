test/debug_hang.ml: Array Format List Printf Shasta_apps Shasta_core Shasta_sim Sys
