test/debug_hang.mli:
