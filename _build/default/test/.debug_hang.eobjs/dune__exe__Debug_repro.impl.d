test/debug_repro.ml: List Printf Shasta_core
