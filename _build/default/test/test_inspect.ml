(* The introspection module itself: healthy machines pass, corrupted
   machines are caught, dumps render. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Machine = Shasta_core.Machine
module Inspect = Shasta_core.Inspect
module State_table = Shasta_mem.State_table
module Layout = Shasta_mem.Layout

let run_small () =
  let cfg = Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4 () in
  let h = Dsm.create cfg in
  let arr = Dsm.alloc_floats h ~block_size:64 32 in
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      (* Everyone shares the block, then proc 0 takes it exclusive so
         exactly one node holds a valid copy at the end. *)
      ignore (Dsm.load_float ctx arr);
      Dsm.barrier ctx b;
      if p = 0 then Dsm.store_float ctx arr 1.0;
      Dsm.barrier ctx b);
  (h, arr)

let test_healthy () =
  let h, _ = run_small () in
  Alcotest.(check (list string)) "no violations" []
    (Inspect.check_invariants (Dsm.machine h))

let test_detects_double_exclusive () =
  let h, arr = run_small () in
  let m = Dsm.machine h in
  let line = Layout.line_of m.Machine.layout arr in
  (* Corrupt: force a second node exclusive. *)
  Array.iter
    (fun ns -> State_table.set ns.Machine.table line State_table.Exclusive)
    m.Machine.nodes;
  Alcotest.(check bool) "violation reported" true
    (Inspect.check_invariants m <> [])

let test_detects_private_overstate () =
  let h, arr = run_small () in
  let m = Dsm.machine h in
  let line = Layout.line_of m.Machine.layout arr in
  (* Find a node that does NOT hold the block and pretend one of its
     processors has it exclusive. *)
  let victim = ref None in
  Array.iteri
    (fun n ns ->
      if
        !victim = None
        && State_table.get ns.Machine.table line = State_table.Invalid
      then victim := Some n)
    m.Machine.nodes;
  (match !victim with
  | Some n ->
    let p = List.hd (Config.procs_of_node m.Machine.cfg n) in
    State_table.set m.Machine.privates.(p) line State_table.Exclusive
  | None -> Alcotest.fail "expected an invalid node");
  Alcotest.(check bool) "violation reported" true
    (Inspect.check_invariants m <> [])

let test_detects_missing_flag () =
  let h, arr = run_small () in
  let m = Dsm.machine h in
  let line = Layout.line_of m.Machine.layout arr in
  (* Find an invalid copy and scribble application-looking data into it
     without fixing the state. *)
  let hit = ref false in
  Array.iter
    (fun ns ->
      if
        (not !hit)
        && State_table.get ns.Machine.table line = State_table.Invalid
      then begin
        hit := true;
        Shasta_mem.Image.store_float ns.Machine.image arr 3.5
      end)
    m.Machine.nodes;
  Alcotest.(check bool) "had an invalid copy" true !hit;
  Alcotest.(check bool) "violation reported" true
    (Inspect.check_invariants m <> [])

let test_dump_renders () =
  let h, arr = run_small () in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Inspect.dump ~block:arr ppf (Dsm.machine h);
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "mentions machine" true
    (String.length out > 50 && String.sub out 0 3 = "===")

let () =
  Alcotest.run "inspect"
    [
      ( "invariants",
        [
          Alcotest.test_case "healthy machine" `Quick test_healthy;
          Alcotest.test_case "double exclusive" `Quick test_detects_double_exclusive;
          Alcotest.test_case "private overstate" `Quick test_detects_private_overstate;
          Alcotest.test_case "missing flag" `Quick test_detects_missing_flag;
        ] );
      ("dump", [ Alcotest.test_case "renders" `Quick test_dump_renders ]);
    ]
