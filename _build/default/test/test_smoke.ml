module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config

let run_case ~variant ~nprocs ~clustering () =
  let cfg = Config.create ~variant ~nprocs ~clustering () in
  let h = Dsm.create cfg in
  let n = 256 in
  let arr = Dsm.alloc_floats h n in
  let b = Dsm.alloc_barrier h in
  let l = Dsm.alloc_lock h in
  let sum_addr = Dsm.alloc_floats h 1 in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx and np = Dsm.nprocs ctx in
      (* phase 1: each proc writes its slice *)
      let chunk = n / np in
      for i = p * chunk to ((p + 1) * chunk) - 1 do
        Dsm.store_float ctx (arr + (8 * i)) (float_of_int i);
        Dsm.compute ctx 10
      done;
      Dsm.barrier ctx b;
      (* phase 2: each proc reads the whole array and accumulates *)
      let local = ref 0.0 in
      for i = 0 to n - 1 do
        local := !local +. Dsm.load_float ctx (arr + (8 * i));
        Dsm.compute ctx 5
      done;
      Dsm.lock ctx l;
      let s = Dsm.load_float ctx sum_addr in
      Dsm.store_float ctx sum_addr (s +. !local);
      Dsm.unlock ctx l;
      Dsm.barrier ctx b;
      if p = 0 then begin
        let expect = float_of_int (n * (n - 1) / 2 * np) in
        let got = Dsm.load_float ctx sum_addr in
        Alcotest.(check (float 1e-9)) "sum" expect got
      end)

let () =
  Alcotest.run "smoke"
    [
      ( "dsm",
        [
          Alcotest.test_case "base-1" `Quick (run_case ~variant:Config.Base ~nprocs:1 ~clustering:1);
          Alcotest.test_case "base-4" `Quick (run_case ~variant:Config.Base ~nprocs:4 ~clustering:1);
          Alcotest.test_case "base-8" `Quick (run_case ~variant:Config.Base ~nprocs:8 ~clustering:1);
          Alcotest.test_case "smp-4x2" `Quick (run_case ~variant:Config.Smp ~nprocs:4 ~clustering:2);
          Alcotest.test_case "smp-8x4" `Quick (run_case ~variant:Config.Smp ~nprocs:8 ~clustering:4);
          Alcotest.test_case "smp-16x4" `Quick (run_case ~variant:Config.Smp ~nprocs:16 ~clustering:4);
        ] );
    ]
