(* Unit tests for the small core modules: messages, statistics, timing,
   directory and miss-table bookkeeping. *)

module Msg = Shasta_core.Msg
module Stats = Shasta_core.Stats
module Timing = Shasta_core.Timing
module Directory = Shasta_core.Directory
module Miss_table = Shasta_core.Miss_table
module Downgrade = Shasta_core.Downgrade
module Bitset = Shasta_util.Bitset

let test_msg_sizes () =
  let small = Msg.size_bytes (Msg.Req { kind = Msg.Read; block = 0 }) in
  let data =
    Msg.size_bytes
      (Msg.Data_reply
         {
           kind = Msg.Read;
           block = 0;
           data = Bytes.create 64;
           from_home = true;
           inval_acks = 0;
         })
  in
  Alcotest.(check int) "header only" 16 small;
  Alcotest.(check int) "header + payload" (16 + 64) data

let test_msg_describe () =
  Alcotest.(check string) "read req" "read_req"
    (Msg.describe (Msg.Req { kind = Msg.Read; block = 0 }));
  Alcotest.(check string) "downgrade" "downgrade"
    (Msg.describe (Msg.Downgrade { block = 0; target = Shasta_mem.State_table.Shared }))

let test_stats_accounting () =
  let s = Stats.create () in
  Stats.add_cycles s Stats.Task 100;
  Stats.add_cycles s Stats.Read 50;
  Stats.add_cycles s Stats.Task 10;
  Alcotest.(check int) "task" 110 (Stats.cycles s Stats.Task);
  Alcotest.(check int) "total" 160 (Stats.total_cycles s);
  Stats.record_miss s { Stats.kind = Msg.Read; three_hop = true };
  Stats.record_miss s { Stats.kind = Msg.Upgrade; three_hop = false };
  Alcotest.(check int) "miss classes distinct" 1
    (Stats.miss_count s { Stats.kind = Msg.Read; three_hop = true });
  Alcotest.(check int) "miss total" 2 (Stats.total_misses s)

let test_stats_aggregate () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add_cycles a Stats.Sync 5;
  Stats.add_cycles b Stats.Sync 7;
  Stats.record_read_latency a 300;
  Stats.record_read_latency b 900;
  let m = Stats.aggregate [ a; b ] in
  Alcotest.(check int) "cycles summed" 12 (Stats.cycles m Stats.Sync);
  Alcotest.(check (float 1e-9)) "latency pooled (2us mean)" 2.0
    (Stats.mean_read_latency_us m)

let test_timing_sanity () =
  let t = Timing.default in
  Alcotest.(check bool) "SMP float check costlier" true
    (t.Timing.load_check_flag_float_smp > t.Timing.load_check_flag_float_base);
  Alcotest.(check bool) "SMP batch check costlier" true
    (t.Timing.batch_check_per_line_smp > t.Timing.batch_check_per_line_base);
  Alcotest.(check (float 1e-9)) "cycle conversion" 1.0 (Timing.us_of_cycles 300)

let test_directory_queue_fifo () =
  let d = Directory.create () in
  let e = Directory.entry d ~block:0 ~home:3 in
  Alcotest.(check int) "fresh owner is home" 3 e.Directory.owner;
  Directory.push_queued e ~src:1 (Msg.Req { kind = Msg.Read; block = 0 });
  Directory.push_queued e ~src:2 (Msg.Req { kind = Msg.Readex; block = 0 });
  (match Directory.pop_queued e with
  | Some (src, _) -> Alcotest.(check int) "FIFO order" 1 src
  | None -> Alcotest.fail "queue empty");
  (match Directory.pop_queued e with
  | Some (src, _) -> Alcotest.(check int) "second" 2 src
  | None -> Alcotest.fail "queue empty");
  Alcotest.(check bool) "drained" true (Directory.pop_queued e = None)

let test_miss_table_lifecycle () =
  let t = Miss_table.create () in
  let e = Miss_table.add t ~block:64 ~requester:2 ~kind:Msg.Readex ~now:100 in
  Alcotest.(check bool) "incomplete without reply" false (Miss_table.complete e);
  e.Miss_table.data_ready <- true;
  e.Miss_table.acks_expected <- 2;
  Alcotest.(check bool) "incomplete without acks" false (Miss_table.complete e);
  e.Miss_table.acks_received <- 2;
  Alcotest.(check bool) "complete" true (Miss_table.complete e);
  Alcotest.(check bool) "find by block" true (Miss_table.find t ~block:64 <> None);
  Alcotest.(check bool) "find by id" true (Miss_table.find_id t e.Miss_table.id <> None);
  Miss_table.add_store_range e ~off:8 ~len:16 ~proc:5;
  Alcotest.(check bool) "store proc recorded" true
    (Bitset.mem 5 e.Miss_table.store_procs);
  Miss_table.remove t e;
  Alcotest.(check int) "empty" 0 (Miss_table.count t);
  Alcotest.(check bool) "id retired" true (Miss_table.find_id t e.Miss_table.id = None)

let test_downgrade_queue () =
  let t = Downgrade.create () in
  let e =
    Downgrade.add t ~block:0 ~target:Shasta_mem.State_table.Invalid
      ~deferred:(Downgrade.Inval_done { requester = 7 })
      ~remaining:2
  in
  Downgrade.push_queued e ~src:1 (Msg.Req { kind = Msg.Read; block = 0 });
  Downgrade.push_queued e ~src:2 (Msg.Req { kind = Msg.Read; block = 0 });
  let q = Downgrade.take_queued e in
  Alcotest.(check (list int)) "arrival order" [ 1; 2 ] (List.map fst q);
  Alcotest.(check (list int)) "queue cleared" []
    (List.map fst (Downgrade.take_queued e));
  Downgrade.remove t e;
  Alcotest.(check int) "removed" 0 (Downgrade.count t)

let () =
  Alcotest.run "core-units"
    [
      ( "msg",
        [
          Alcotest.test_case "sizes" `Quick test_msg_sizes;
          Alcotest.test_case "describe" `Quick test_msg_describe;
        ] );
      ( "stats",
        [
          Alcotest.test_case "accounting" `Quick test_stats_accounting;
          Alcotest.test_case "aggregate" `Quick test_stats_aggregate;
        ] );
      ("timing", [ Alcotest.test_case "sanity" `Quick test_timing_sanity ]);
      ( "directory",
        [ Alcotest.test_case "queue fifo" `Quick test_directory_queue_fifo ] );
      ( "miss-table",
        [ Alcotest.test_case "lifecycle" `Quick test_miss_table_lifecycle ] );
      ( "downgrade",
        [ Alcotest.test_case "queue" `Quick test_downgrade_queue ] );
    ]
