test/test_experiments.ml: Alcotest List Printf Shasta_apps Shasta_core Shasta_experiments String
