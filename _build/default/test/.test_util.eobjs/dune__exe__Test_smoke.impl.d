test/test_smoke.ml: Alcotest Shasta_core
