test/test_inspect.mli:
