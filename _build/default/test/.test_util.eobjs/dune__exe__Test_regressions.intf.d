test/test_regressions.mli:
