test/test_smoke2.ml: Alcotest Shasta_core
