test/test_smoke2.mli:
