test/test_mem.ml: Alcotest Bytes Gen Int64 List QCheck QCheck_alcotest Shasta_mem
