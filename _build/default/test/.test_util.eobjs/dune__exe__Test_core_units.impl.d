test/test_core_units.ml: Alcotest Bytes List Shasta_core Shasta_mem Shasta_util
