test/test_smp.ml: Alcotest Array Float List Printf Shasta_core Shasta_mem Shasta_util
