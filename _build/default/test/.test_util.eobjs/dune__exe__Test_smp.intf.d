test/test_smp.mli:
