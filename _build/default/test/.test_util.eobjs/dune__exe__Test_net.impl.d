test/test_net.ml: Alcotest Gen List QCheck QCheck_alcotest Shasta_net
