test/test_apps_quick.ml: Alcotest Shasta_apps Shasta_core
