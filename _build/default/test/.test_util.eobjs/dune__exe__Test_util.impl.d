test/test_util.ml: Alcotest Int64 List QCheck QCheck_alcotest Shasta_util String
