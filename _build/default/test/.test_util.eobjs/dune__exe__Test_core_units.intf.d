test/test_core_units.mli:
