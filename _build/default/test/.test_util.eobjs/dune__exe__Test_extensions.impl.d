test/test_extensions.ml: Alcotest Printf Shasta_core
