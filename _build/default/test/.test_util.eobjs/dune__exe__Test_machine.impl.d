test/test_machine.ml: Alcotest Array Hashtbl Printf Shasta_core Shasta_mem
