test/test_sim.ml: Alcotest Array Gen List QCheck QCheck_alcotest Shasta_sim
