test/test_props.ml: Alcotest Array Gen Printf QCheck QCheck_alcotest Shasta_core Shasta_mem Shasta_util
