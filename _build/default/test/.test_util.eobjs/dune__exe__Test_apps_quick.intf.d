test/test_apps_quick.mli:
