test/test_inspect.ml: Alcotest Array Buffer Format List Shasta_core Shasta_mem String
