test/test_apps_matrix.mli:
