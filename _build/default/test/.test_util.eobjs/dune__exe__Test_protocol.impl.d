test/test_protocol.ml: Alcotest Array Int64 Option Printf Shasta_core Shasta_mem Shasta_sim Shasta_util
