test/test_apps_matrix.ml: Alcotest List Shasta_apps Shasta_core
