test/test_batch.ml: Alcotest Array Hashtbl Shasta_core
