test/test_regressions.ml: Alcotest Array Printf Shasta_apps Shasta_core Shasta_util
