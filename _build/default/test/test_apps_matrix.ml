(* Broader application matrix: smaller scale across more machine shapes,
   including the §5 extension flags — every combination must verify. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module App = Shasta_apps.App
module Registry = Shasta_apps.Registry

let run_app name ~scale ~vg cfg () =
  let maker = Registry.find name in
  let inst = maker ~vg ~scale () in
  let h = Dsm.create cfg in
  let body, verify = inst.App.setup h in
  Dsm.run h body;
  let v = verify h in
  Alcotest.(check bool) (name ^ ": " ^ v.App.detail) true v.App.ok

let heap = 16 * 1024 * 1024

let cfg_base2 = Config.create ~variant:Config.Base ~nprocs:2 ~heap_bytes:heap ()

let cfg_smp6x2 =
  Config.create ~variant:Config.Smp ~nprocs:6 ~clustering:2 ~procs_per_node:2
    ~heap_bytes:heap ()

let cfg_smp12x4 =
  Config.create ~variant:Config.Smp ~nprocs:12 ~clustering:4 ~heap_bytes:heap ()

let cfg_ext =
  Config.create ~variant:Config.Smp ~nprocs:16 ~clustering:4 ~smp_sync:true
    ~share_directory:true ~heap_bytes:heap ()

let cases name =
  ( name,
    [
      Alcotest.test_case "base-2" `Quick (run_app name ~scale:0.5 ~vg:false cfg_base2);
      Alcotest.test_case "smp-6x2" `Quick (run_app name ~scale:0.5 ~vg:false cfg_smp6x2);
      Alcotest.test_case "smp-12x4" `Quick (run_app name ~scale:0.5 ~vg:false cfg_smp12x4);
      Alcotest.test_case "smp-16x4+ext" `Quick (run_app name ~scale:0.5 ~vg:true cfg_ext);
    ] )

let () = Alcotest.run "apps-matrix" (List.map cases Registry.names)
