(* Directed protocol-level scenarios on small machines, with directory
   and statistics introspection. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Machine = Shasta_core.Machine
module Stats = Shasta_core.Stats
module Msg = Shasta_core.Msg
module Directory = Shasta_core.Directory
module Image = Shasta_mem.Image
module State_table = Shasta_mem.State_table
module Layout = Shasta_mem.Layout
module Bitset = Shasta_util.Bitset

let base_machine ?(nprocs = 8) () =
  Dsm.create (Config.create ~variant:Config.Base ~nprocs ())

let miss_count h cls =
  Stats.miss_count (Dsm.aggregate_stats h) cls

let test_two_hop_read () =
  let h = base_machine () in
  (* Block homed (and initially owned) at proc 4; proc 0 reads it. *)
  let a = Dsm.alloc h ~block_size:64 ~home:4 64 in
  Dsm.poke_float h a 7.5;
  Dsm.run h (fun ctx ->
      if Dsm.pid ctx = 0 then
        Alcotest.(check (float 0.0)) "value" 7.5 (Dsm.load_float ctx a));
  Alcotest.(check int) "one 2-hop read miss" 1
    (miss_count h { Stats.kind = Msg.Read; three_hop = false });
  Alcotest.(check int) "no 3-hop" 0
    (miss_count h { Stats.kind = Msg.Read; three_hop = true });
  (* Directory: proc 0 recorded as sharer, home still owner. *)
  let m = Dsm.machine h in
  match Directory.find m.Machine.dirs.(4) ~block:a with
  | None -> Alcotest.fail "no directory entry"
  | Some e ->
    Alcotest.(check bool) "proc 0 is sharer" true (Bitset.mem 0 e.Directory.sharers);
    Alcotest.(check int) "owner unchanged" 4 e.Directory.owner;
    Alcotest.(check bool) "not busy" false e.Directory.busy

let test_three_hop_read () =
  let h = base_machine () in
  let a = Dsm.alloc h ~block_size:64 ~home:4 64 in
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      (* proc 6 takes ownership, then proc 0 reads: home forwards. *)
      if Dsm.pid ctx = 6 then Dsm.store_float ctx a 3.0;
      Dsm.barrier ctx b;
      if Dsm.pid ctx = 0 then
        Alcotest.(check (float 0.0)) "value from owner" 3.0 (Dsm.load_float ctx a));
  Alcotest.(check int) "one 3-hop read" 1
    (miss_count h { Stats.kind = Msg.Read; three_hop = true })

let test_upgrade_and_invalidation () =
  let h = base_machine () in
  let a = Dsm.alloc h ~block_size:64 ~home:4 64 in
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      (* Phase 1: procs 0 and 1 read (both become sharers). *)
      if p <= 1 then ignore (Dsm.load_float ctx a);
      Dsm.barrier ctx b;
      (* Phase 2: proc 0 writes — an upgrade that invalidates proc 1. *)
      if p = 0 then Dsm.store_float ctx a 9.0;
      Dsm.barrier ctx b;
      (* Phase 3: proc 1 re-reads and must see the new value. *)
      if p = 1 then
        Alcotest.(check (float 0.0)) "sees new value" 9.0 (Dsm.load_float ctx a));
  Alcotest.(check int) "one upgrade miss" 1
    (miss_count h { Stats.kind = Msg.Upgrade; three_hop = false })

let test_invalid_flag_stamped_on_victim () =
  let h = base_machine ~nprocs:4 () in
  let a = Dsm.alloc h ~block_size:64 ~home:1 64 in
  Dsm.poke_float h a 1.25;
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      if p = 2 then ignore (Dsm.load_float ctx a);
      Dsm.barrier ctx b;
      if p = 3 then Dsm.store_float ctx a 2.0;
      Dsm.barrier ctx b);
  (* Proc 2's copy (its own node in Base mode) must now carry the flag. *)
  let m = Dsm.machine h in
  let img = m.Machine.nodes.(2).Machine.image in
  Alcotest.(check bool) "flag stamped" true (Image.is_flag64 (Image.load64 img a));
  let line = Layout.line_of m.Machine.layout a in
  Alcotest.(check bool) "state invalid" true
    (State_table.get m.Machine.nodes.(2).Machine.table line = State_table.Invalid)

let test_false_miss () =
  let h = base_machine ~nprocs:2 () in
  let a = Dsm.alloc h ~block_size:64 ~home:0 64 in
  (* The application data IS the flag pattern. *)
  Dsm.poke_float h a (Int64.float_of_bits Image.invalid_flag64);
  Dsm.run h (fun ctx ->
      if Dsm.pid ctx = 0 then begin
        let v = Dsm.load_float ctx a in
        Alcotest.(check int64) "flag value returned" Image.invalid_flag64
          (Int64.bits_of_float v)
      end);
  Alcotest.(check bool) "false miss recorded" true
    ((Dsm.aggregate_stats h).Stats.false_misses > 0);
  Alcotest.(check int) "no real miss" 0 (Stats.total_misses (Dsm.aggregate_stats h))

let test_nonblocking_store () =
  let h = base_machine () in
  let a = Dsm.alloc h ~block_size:64 ~home:4 64 in
  Dsm.run h (fun ctx ->
      if Dsm.pid ctx = 0 then begin
        let m = Dsm.machine h in
        let before = (Shasta_sim.Engine.now (Option.get m.Machine.procs.(0).Machine.engine)) in
        Dsm.store_float ctx a 5.0;
        let after = (Shasta_sim.Engine.now (Option.get m.Machine.procs.(0).Machine.engine)) in
        (* The store returns long before a 20us round trip completes. *)
        Alcotest.(check bool) "store did not stall" true (after - before < 3000);
        (* But the entry is outstanding until the reply. *)
        Alcotest.(check bool) "outstanding store" true
          (m.Machine.procs.(0).Machine.outstanding_stores >= 1)
      end);
  Alcotest.(check (float 0.0)) "value landed" 5.0 (Dsm.peek_float h a)

let test_store_merge_on_reply () =
  (* Two processors store to different words of the same block around
     the same time; both writes must survive the reply merges. *)
  let h = base_machine ~nprocs:4 () in
  let a = Dsm.alloc h ~block_size:64 ~home:3 64 in
  Dsm.poke_float h a 0.0;
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      if p = 0 then Dsm.store_float ctx (a + 0) 1.0;
      if p = 1 then Dsm.store_float ctx (a + 8) 2.0;
      if p = 2 then Dsm.store_float ctx (a + 16) 3.0);
  Alcotest.(check (float 0.0)) "word 0" 1.0 (Dsm.peek_float h (a + 0));
  Alcotest.(check (float 0.0)) "word 1" 2.0 (Dsm.peek_float h (a + 8));
  Alcotest.(check (float 0.0)) "word 2" 3.0 (Dsm.peek_float h (a + 16))

let test_release_on_unlock () =
  (* A value stored before unlock must be visible to the next holder. *)
  let h = base_machine () in
  let a = Dsm.alloc h ~block_size:64 ~home:7 64 in
  let l = Dsm.alloc_lock h in
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      for round = 0 to Dsm.nprocs ctx - 1 do
        if Dsm.pid ctx = round then begin
          Dsm.lock ctx l;
          let v = Dsm.load_float ctx a in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "round %d" round)
            (float_of_int round) v;
          Dsm.store_float ctx a (v +. 1.0);
          Dsm.unlock ctx l
        end;
        Dsm.barrier ctx b
      done)

let test_lock_mutual_exclusion () =
  let h = base_machine () in
  let a = Dsm.alloc h ~block_size:64 64 in
  let l = Dsm.alloc_lock h in
  let rounds = 20 in
  Dsm.run h (fun ctx ->
      for _ = 1 to rounds do
        Dsm.lock ctx l;
        let v = Dsm.load_float ctx a in
        Dsm.compute ctx 500;
        Dsm.store_float ctx a (v +. 1.0);
        Dsm.unlock ctx l
      done);
  Alcotest.(check (float 0.0)) "all increments"
    (float_of_int (8 * rounds))
    (Dsm.peek_float h a)

let test_barrier_separates_phases () =
  let h = base_machine ~nprocs:4 () in
  let arr = Dsm.alloc_floats h 4 in
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      Dsm.store_float ctx (arr + (8 * p)) (float_of_int (p + 1));
      Dsm.barrier ctx b;
      let sum = ref 0.0 in
      for i = 0 to 3 do
        sum := !sum +. Dsm.load_float ctx (arr + (8 * i))
      done;
      Alcotest.(check (float 0.0)) "all phase-1 writes visible" 10.0 !sum)

let test_quiescent_after_run () =
  let h = base_machine () in
  let a = Dsm.alloc h 4096 in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      for i = 0 to 63 do
        Dsm.store_float ctx (a + (8 * ((i * 8) + p))) 1.0
      done);
  Alcotest.(check bool) "machine quiescent" true (Machine.quiescent (Dsm.machine h))

let test_read_latency_recorded () =
  let h = base_machine () in
  let a = Dsm.alloc h ~block_size:64 ~home:4 64 in
  Dsm.run h (fun ctx ->
      if Dsm.pid ctx = 0 then ignore (Dsm.load_float ctx a));
  let lat = Stats.mean_read_latency_us (Dsm.proc_stats h).(0) in
  Alcotest.(check bool) "latency near 20us" true (lat > 10.0 && lat < 40.0)

let () =
  Alcotest.run "protocol"
    [
      ( "misses",
        [
          Alcotest.test_case "2-hop read" `Quick test_two_hop_read;
          Alcotest.test_case "3-hop read" `Quick test_three_hop_read;
          Alcotest.test_case "upgrade + invalidation" `Quick
            test_upgrade_and_invalidation;
          Alcotest.test_case "false miss" `Quick test_false_miss;
          Alcotest.test_case "read latency" `Quick test_read_latency_recorded;
        ] );
      ( "invalid-flag",
        [
          Alcotest.test_case "stamped on victim" `Quick
            test_invalid_flag_stamped_on_victim;
        ] );
      ( "stores",
        [
          Alcotest.test_case "non-blocking" `Quick test_nonblocking_store;
          Alcotest.test_case "merge on reply" `Quick test_store_merge_on_reply;
        ] );
      ( "synchronization",
        [
          Alcotest.test_case "release on unlock" `Quick test_release_on_unlock;
          Alcotest.test_case "mutual exclusion" `Quick test_lock_mutual_exclusion;
          Alcotest.test_case "barrier phases" `Quick test_barrier_separates_phases;
        ] );
      ( "lifecycle",
        [ Alcotest.test_case "quiescent after run" `Quick test_quiescent_after_run ] );
    ]
