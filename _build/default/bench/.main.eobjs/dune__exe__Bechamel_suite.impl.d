bench/bechamel_suite.ml: Analyze Bechamel Benchmark Buffer Hashtbl Instance List Measure Printf Shasta_core Staged Test Time
