bench/main.mli:
