bench/main.ml: Array Bechamel_suite List Printf Shasta_experiments String Sys Unix
