(** Exhaustive reachability over the abstract protocol model ({!Model}):
    breadth-first enumeration of every state reachable under any
    interleaving of checked accesses and message deliveries, with
    bounded channels and interned (hash-consed) canonical states.
    Checks the {!Model.check_invariants} sweep on every reachable state;
    BFS order makes each reported counterexample minimal. *)

type params = {
  home : int;  (** pid hosting the block (default 2) *)
  bound : int;  (** per-(src,dst) channel bound (default 2) *)
  fault : Shasta_core.Config.fault option;
  crashes : bool;
      (** enable the node-crash transition (default false); the dead
          report then expects the crash branches to be reached *)
  max_states : int;
  stop_at_first : bool;  (** stop at the first violation (fault runs) *)
}

val default_params : params

type violation = {
  v_message : string;
  v_trace : string list;  (** action descriptions, initial state first *)
}

type result = {
  r_params : params;
  r_states : int;
  r_edges : int;
  r_violations : violation list;
  r_labels : (Model.label, unit) Hashtbl.t;
      (** complete label vocabulary of the explored model — the
          conformance reference set *)
  r_branches : (string, unit) Hashtbl.t;
  r_capped : bool;  (** [max_states] hit: enumeration incomplete *)
}

val explore : params -> result

val pp_violation : Format.formatter -> violation -> unit
val pp_result : Format.formatter -> result -> unit

(** {1 Dead-coverage report} *)

type dead = {
  dead_branches : string list;  (** unexpectedly unreached: possible rot *)
  dead_expected : string list;  (** unreached, structurally expected *)
  unmodeled_tags : string list;  (** sync Msg tags outside the model *)
}

val dead_report : result -> dead
val pp_dead : Format.formatter -> dead -> unit
