(** Lock-order deadlock analysis: collect the lock-acquisition graph
    (edge a -> b = lock b acquired while a held) from instrumented app
    registrations or direct {!add_edge} calls, and report potential
    deadlock cycles — including ones no executed schedule has hit. *)

type t

val create : unit -> t
val add_edge : t -> held:int -> acquired:int -> unit

val observer : t -> Shasta_core.Observer.t
(** Install with [Dsm.add_observer]; records an edge from every held
    lock to every newly acquired one, per processor. *)

val edges : t -> (int * int) list
(** Distinct (held, acquired) pairs in first-seen order. *)

val cycles : t -> int list list
(** One witness cycle per back edge of the DFS, self-edges
    (re-acquisition while held) included. Empty = no potential
    deadlock in the recorded order. *)

val describe_cycle : int list -> string
