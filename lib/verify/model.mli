(** Abstract model of the per-block coherence protocol: a pure mirror
    of the [lib/core/protocol.ml] handlers, specialized to the litmus
    geometry (2 coherence nodes x 2 processors, SMP variant, one block)
    with data abstracted to one invalid-flag bit per node copy.
    {!Reach} enumerates its complete reachable state space under a
    channel bound; {!Conform} checks real runs against its label set. *)

(** {1 Geometry} *)

val nprocs : int
(** 4: two processors on each of two coherence nodes. *)

val nnodes : int
val node_of : int -> int
val sibling : int -> int

(** {1 Vocabulary} *)

type base = I | S | E

val rank : base -> int
val base_name : base -> string

type kind = Read | Readex | Upgrade

val kind_name : kind -> string

(** The coherence subset of the {!Shasta_core.Msg} vocabulary (tags
    0-12); sync messages (locks, barriers) do not touch per-block state
    and are outside the model. *)
type msg =
  | Req of kind
  | Fwd of { kind : kind; requester : int; inval_acks : int }
  | Data_reply of { kind : kind; from_home : bool; inval_acks : int }
  | Upgrade_reply of { inval_acks : int }
  | Invalidate of { requester : int }
  | Inval_ack
  | Sharing_wb of { new_sharer : int }
  | Own_ack
  | Downgrade of { target : base }

val coherence_tags : int
(** 13: model messages map onto [Msg] tags [0 .. coherence_tags - 1]. *)

val tag : msg -> int
(** Index into {!Shasta_core.Msg.tag_names}. *)

val msg_name : msg -> string

(** {1 Abstract state}

    Mutable records stepped in place; the explorer deep-copies via
    {!copy_state} before each step and never mutates a state after
    interning it, so structural equality and hashing canonicalize. *)

type deferred =
  | Reply_read of { requester : int }
  | Reply_readex of { requester : int; inval_acks : int }
  | Inval_done of { requester : int }
  | D_recovered
      (** crash recovery rewrote a deferred action whose transaction was
          restarted: complete the downgrade locally, send nothing
          (mirrors [Downgrade.Recovered]) *)

type down = {
  d_target : base;
  mutable d_deferred : deferred;  (** mutable for crash-recovery rewrites *)
  mutable d_remaining : int;
  mutable d_queued : (int * msg) list;
}

type entry = {
  mutable e_kind : kind;
  mutable e_ready : bool;
  mutable e_acks_expected : int;
  mutable e_acks_received : int;
  mutable e_uar : bool;
  mutable e_iar : bool;
  mutable e_fwds : (int * msg) list;
}

type nodest = {
  mutable nbase : base;
  mutable pending : bool;
  mutable pdg : bool;
  mutable stamped : bool;
  mutable miss : entry option;
  mutable down : down option;
}

type dirst = {
  mutable owner : int;
  mutable sharers : int;
  mutable busy : bool;
  mutable queue : (int * kind) list;
}

type state = {
  dir : dirst;
  nodes : nodest array;
  priv : base array;
  mutable net : (int * int * msg) list;
      (** in-flight messages as (src, dst, msg) in send order —
          delivery follows the simulator's arrival-order semantics with
          minimum-latency ranks (see {!enabled_actions}) *)
  mutable s_home : int;
      (** current home pid; moves to the surviving node if the home
          node crashes *)
  mutable s_dead : int;  (** node-index bitset of crashed nodes *)
}

val copy_state : state -> state

val initial : home:int -> state
(** Post-allocation state: the home's node holds an exclusive unstamped
    copy (home processor's private state Exclusive), the other node is
    invalid and flag-stamped. *)

(** {1 Conformance labels}

    The schedule-independent projection of the Observer hook stream;
    see {!Conform}. *)

type label =
  | L_state of { at_home : bool; from_ : int; to_ : int }
  | L_private of { at_home : bool; self : bool; from_ : int; to_ : int }
  | L_pending of { at_home : bool; set : bool }
  | L_pdg of { at_home : bool; set : bool }
  | L_send of { tg : int; src_home : bool; dst_home : bool; same_node : bool }

val describe_label : label -> string

(** {1 Stepping} *)

exception Model_violation of string
(** A handler reached one of the real protocol's
    impossible-configuration checks ([Protocol_violation] sites). *)

type t = {
  home : int;  (** initial home (the current home lives in [st.s_home]) *)
  bound : int;
  fault : Shasta_core.Config.fault option;
  crashes : bool;  (** enable the node-crash transition *)
  mutable on_label : label -> unit;
  mutable on_branch : string -> unit;
  mutable overflow : bool;
  mutable st : state;
}

val create :
  ?home:int ->
  ?bound:int ->
  ?fault:Shasta_core.Config.fault ->
  ?crashes:bool ->
  unit ->
  t
(** [home] defaults to 2 (so the home node also has a non-home sibling
    processor), [bound] to 2 in-flight messages per (src, dst) pair,
    [crashes] to false (no crash transition). *)

val home : t -> int
(** The current home pid ([t.st.s_home]). *)

type action =
  | Load of int
  | Store of int
  | Deliver of { src : int; dst : int }
  | Crash of int  (** node index: fail-stop the node, then recover *)

val enabled_actions : ?crashes:bool -> state -> action list
(** Checked load / checked store on the block by every live processor,
    plus the deliverable messages: in-flight entries every earlier entry
    of which has strictly higher minimum-latency rank (intra-node
    control < intra-node data < remote control < remote data) and a
    different (src, dst) pair — a later send can only overtake an
    earlier one with a strictly cheaper transfer, and never on its own
    pair. With [crashes] (default false), additionally [Crash n] for
    each node while no node is dead yet: at most one crash per run,
    since the last live node may not die. *)

val describe_action : state -> action -> string

val step : t -> action -> unit
(** Execute one action against [t.st] in place, emitting labels and
    branch names through the hooks. Raises {!Model_violation} at a
    defensive-check site; sets [t.overflow] when a send exceeded
    [t.bound] (the explorer prunes such successors). *)

(** {1 Invariants} *)

val transient : state -> bool
(** Protocol activity in flight: any miss/downgrade entry, pending or
    pending-downgrade bit, busy directory or non-empty directory queue.
    Every in-flight coherence message implies such a marker. *)

val check_invariants : state -> string list
(** The {!Shasta_core.Inspect} sweep over the abstract state:
    single-Exclusive, exclusive-implies-rest-invalid, some-valid-copy,
    pending<->miss, pdg<->downgrade-entry, invalid-implies-stamped
    (settled states only), private-never-overstates-node. *)

(** {1 Coverage} *)

val all_branches : string list
(** Every branch name the transition relation can emit, for the
    dead-branch report. *)

val expected_dead : string list
(** Branches structurally unreachable in the abstraction — one-word
    one-block artifacts plus paths that need message races the
    ordered-delivery discipline forbids in this geometry; listed
    separately by [verify --reach --dead]. *)

val crash_branches : string list
(** The branches only the {!action.Crash} transition can reach; a
    crash-free exploration counts them as expected-dead. *)
