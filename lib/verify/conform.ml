(* Conformance between real runs and the abstract model.

   An exhaustive exploration of the clean model yields its complete
   label vocabulary (Reach.r_labels): every state/private/pending/pdg
   transition and every message send the protocol can perform on one
   block, projected to home-relative coordinates. A real 2-node run's
   Observer stream projects into the same space; conformance means
   every projected event is a member — i.e. nothing the simulator does
   on any block falls outside what the model says the protocol can do.

   The projection is per-block and home-relative (booleans "on the home
   node or not" instead of pids), so one model exploration covers every
   block of a run regardless of where it is homed. It is only sound for
   2-node configs: with more nodes a run exhibits shapes (e.g. a
   non-home third party) that the 2-node model cannot produce. *)

module M = Model
module Core = Shasta_core
module St = Shasta_mem.State_table

type t = {
  observer : Core.Observer.t;
      (** install with [Dsm.add_observer] before the run *)
  mismatches : unit -> string list;
      (** distinct out-of-model labels, first-seen order *)
  events : unit -> int;  (** total projected events checked *)
}

let rank = function St.Invalid -> 0 | St.Shared -> 1 | St.Exclusive -> 2

let make ~labels (m : Core.Machine.t) =
  let seen_bad : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let events = ref 0 in
  let record l =
    incr events;
    if not (Hashtbl.mem labels l) then begin
      let d = M.describe_label l in
      if not (Hashtbl.mem seen_bad d) then begin
        Hashtbl.add seen_bad d ();
        order := d :: !order
      end
    end
  in
  let node_of p = Core.Machine.node_of m p in
  let home_node block = node_of (Core.Machine.home_of_block m block) in
  let observer =
    {
      Core.Observer.nil with
      on_state =
        (fun ~by:_ ~node ~block ~from_ ~to_ ~now:_ ->
          record
            (M.L_state
               {
                 at_home = node = home_node block;
                 from_ = rank from_;
                 to_ = rank to_;
               }));
      on_private =
        (fun ~by ~proc ~block ~from_ ~to_ ~now:_ ->
          record
            (M.L_private
               {
                 at_home = node_of proc = home_node block;
                 self = by = proc;
                 from_ = rank from_;
                 to_ = rank to_;
               }));
      on_pending =
        (fun ~by:_ ~node ~block ~set ~now:_ ->
          record (M.L_pending { at_home = node = home_node block; set }));
      on_pending_downgrade =
        (fun ~by:_ ~node ~block ~set ~now:_ ->
          record (M.L_pdg { at_home = node = home_node block; set }));
      on_send =
        (fun ~src ~dst ~now:_ msg ->
          let tg = Core.Msg.tag msg in
          if tg < M.coherence_tags then
            match Core.Msg.block_of msg with
            | None -> ()
            | Some block ->
              let hn = home_node block in
              record
                (M.L_send
                   {
                     tg;
                     src_home = node_of src = hn;
                     dst_home = node_of dst = hn;
                     same_node = node_of src = node_of dst;
                   }));
    }
  in
  { observer; mismatches = (fun () -> List.rev !order); events = (fun () -> !events) }

(* Memoized clean-model exploration: the reference label vocabulary. *)
let reference_cache : (int * Reach.result) option ref = ref None

let reference ?(bound = 2) () =
  match !reference_cache with
  | Some (b, r) when b = bound -> r
  | _ ->
    (* The reference vocabulary is the CRASH-FREE model's: conformance
       checks crash-free runs only (Conformance skips machines that
       crashed), so the crash transition must not silently widen the
       label set the oracle accepts. *)
    let r =
      Reach.explore { Reach.default_params with Reach.bound; crashes = false }
    in
    (match r.Reach.r_violations with
    | [] -> ()
    | v :: _ ->
      failwith
        ("conformance reference model violates its own invariants: "
        ^ v.Reach.v_message));
    reference_cache := Some (bound, r);
    r

let reference_labels ?bound () = (reference ?bound ()).Reach.r_labels
