(* Exhaustive reachability over the abstract protocol model.

   Breadth-first enumeration of every state reachable from the
   post-allocation state under any interleaving of checked accesses and
   message deliveries, with per-(src,dst) channels bounded by
   [params.bound]. States are canonicalized by interning: the model's
   records are deep-copied before each step and never mutated after
   being added to the table, so structural equality and hashing give
   each reachable configuration exactly one id. BFS order makes the
   parent chain of the first violating step a minimal counterexample
   (fewest actions from the initial state). *)

module M = Model

type params = {
  home : int;
  bound : int;
  fault : Shasta_core.Config.fault option;
  crashes : bool;  (** enable the node-crash transition *)
  max_states : int;
  stop_at_first : bool;  (** stop at the first violation (fault runs) *)
}

let default_params =
  { home = 2; bound = 2; fault = None; crashes = false;
    max_states = 4_000_000; stop_at_first = false }

type violation = {
  v_message : string;
  v_trace : string list;  (** action descriptions, initial state first *)
}

type result = {
  r_params : params;
  r_states : int;
  r_edges : int;
  r_violations : violation list;
  r_labels : (M.label, unit) Hashtbl.t;
  r_branches : (string, unit) Hashtbl.t;
  r_capped : bool;  (** [max_states] hit: enumeration incomplete *)
}

exception Done

let explore (p : params) =
  let t =
    M.create ~home:p.home ~bound:p.bound ?fault:p.fault ~crashes:p.crashes ()
  in
  let labels : (M.label, unit) Hashtbl.t = Hashtbl.create 512 in
  let branches : (string, unit) Hashtbl.t = Hashtbl.create 128 in
  t.M.on_label <-
    (fun l -> if not (Hashtbl.mem labels l) then Hashtbl.add labels l ());
  t.M.on_branch <-
    (fun b -> if not (Hashtbl.mem branches b) then Hashtbl.add branches b ());
  let ids : (M.state, int) Hashtbl.t = Hashtbl.create 65536 in
  let by_id : (int, M.state) Hashtbl.t = Hashtbl.create 65536 in
  (* id -> (parent id, action description); absent for the root *)
  let parent : (int, int * string) Hashtbl.t = Hashtbl.create 65536 in
  let queue = Queue.create () in
  let next = ref 0 in
  let capped = ref false in
  let edges = ref 0 in
  let violations = ref [] in
  let intern st ~from_ ~act =
    match Hashtbl.find_opt ids st with
    | Some _ -> None
    | None ->
      if !next >= p.max_states then begin
        capped := true;
        None
      end
      else begin
        let id = !next in
        incr next;
        Hashtbl.add ids st id;
        Hashtbl.add by_id id st;
        if from_ >= 0 then Hashtbl.add parent id (from_, act);
        Queue.add id queue;
        Some id
      end
  in
  (* Action path from the initial state to [id], plus [extra] steps. *)
  let trace_to id extra =
    let rec walk id acc =
      match Hashtbl.find_opt parent id with
      | None -> acc
      | Some (pid, act) -> walk pid (act :: acc)
    in
    walk id extra
  in
  let report id extra msg =
    violations := { v_message = msg; v_trace = trace_to id extra } :: !violations;
    if p.stop_at_first then raise Done
  in
  let check_state id st =
    List.iter (fun msg -> report id [] msg) (M.check_invariants st)
  in
  (match intern (M.initial ~home:p.home) ~from_:(-1) ~act:"" with
  | Some id -> (
    try check_state id (Hashtbl.find by_id id) with Done -> ())
  | None -> ());
  (try
     while not (Queue.is_empty queue) do
       let id = Queue.pop queue in
       let st = Hashtbl.find by_id id in
       List.iter
         (fun act ->
           let desc = M.describe_action st act in
           t.M.st <- M.copy_state st;
           match M.step t act with
           | exception M.Model_violation msg -> report id [ desc ] msg
           | () ->
             if not t.M.overflow then begin
               incr edges;
               match intern t.M.st ~from_:id ~act:desc with
               | None -> ()
               | Some nid -> check_state nid t.M.st
             end)
         (M.enabled_actions ~crashes:p.crashes st)
     done
   with Done -> ());
  {
    r_params = p;
    r_states = !next;
    r_edges = !edges;
    r_violations = List.rev !violations;
    r_labels = labels;
    r_branches = branches;
    r_capped = !capped;
  }

(* ------------------------------------------------------------------ *)
(* Reporting.                                                          *)

let pp_violation ppf v =
  Format.fprintf ppf "@[<v 2>%s@ counterexample (%d steps):" v.v_message
    (List.length v.v_trace);
  List.iteri (fun i act -> Format.fprintf ppf "@ %3d. %s" (i + 1) act) v.v_trace;
  Format.fprintf ppf "@]"

let pp_result ppf r =
  Format.fprintf ppf "@[<v>%d states, %d edges%s%s: %d violation%s@]"
    r.r_states r.r_edges
    (match r.r_params.fault with
    | None -> ""
    | Some f ->
      " under fault "
      ^ (match f with
        | Shasta_core.Config.Skip_private_downgrade -> "skip-private-downgrade"
        | Shasta_core.Config.Skip_flag_stamp -> "skip-flag-stamp"))
    (if r.r_capped then " (CAPPED: enumeration incomplete)" else "")
    (List.length r.r_violations)
    (if List.length r.r_violations = 1 then "" else "s")

(* Dead-coverage report: model branches never hit, split into the
   structurally-expected set and genuine rot, plus the Msg tags outside
   the model (informational; `verify --reach --dead`). *)

type dead = {
  dead_branches : string list;  (** unexpectedly unreached *)
  dead_expected : string list;  (** unreached and listed as expected *)
  unmodeled_tags : string list;  (** Msg tags outside the coherence model *)
}

let dead_report r =
  let unreached =
    List.filter (fun b -> not (Hashtbl.mem r.r_branches b)) M.all_branches
  in
  (* Without the crash transition the crash branches are dead by
     construction, not rot. *)
  let expected_set =
    if r.r_params.crashes then M.expected_dead
    else M.expected_dead @ M.crash_branches
  in
  let expected, rot =
    List.partition (fun b -> List.mem b expected_set) unreached
  in
  let unmodeled =
    Array.to_list
      (Array.sub Shasta_core.Msg.tag_names M.coherence_tags
         (Array.length Shasta_core.Msg.tag_names - M.coherence_tags))
  in
  { dead_branches = rot; dead_expected = expected; unmodeled_tags = unmodeled }

let pp_dead ppf d =
  Format.fprintf ppf "@[<v>";
  (match d.dead_branches with
  | [] -> Format.fprintf ppf "no unexpectedly dead branches"
  | l ->
    Format.fprintf ppf "unexpectedly dead branches (%d):" (List.length l);
    List.iter (fun b -> Format.fprintf ppf "@   %s" b) l);
  Format.fprintf ppf "@ expected-dead (structural, %d):"
    (List.length d.dead_expected);
  List.iter (fun b -> Format.fprintf ppf "@   %s" b) d.dead_expected;
  Format.fprintf ppf "@ unmodeled sync tags (%d):"
    (List.length d.unmodeled_tags);
  List.iter (fun b -> Format.fprintf ppf "@   %s" b) d.unmodeled_tags;
  Format.fprintf ppf "@]"
