(* Static verifier for Dsm.Prog access programs.

   An access program's address language is affine with literal byte
   offsets (base(b) + off, off fixed at compile time), so the interval
   analysis over addresses degenerates to exact per-access ranges: a
   program is in-bounds iff every access's [off, off+8) lies inside the
   declared extent of its base region, for any binding of the bases.
   The checker therefore proves (not samples) memory safety of a
   program against a spec of its region extents — the property the
   runtime otherwise only discovers when a wild raw store lands outside
   a batch's registered ranges.

   Cycle-charge consistency is checked by two independent walkers that
   mirror the charging disciplines of Dsm.Prog.run's two interpreters
   (per-op observed dispatch vs. fused end-of-program charge). The
   statically determined cycle totals must agree; if a future opcode is
   charged differently by the two interpreters, the walkers diverge
   here before any simulation does. *)

module Prog = Shasta_core.Dsm.Prog

type spec = {
  base_lens : int array;
      (** byte extents of base0..base2; 0 = base undeclared *)
  aux_len : int;  (** scratch array length the program may index *)
}

let spec ?(base0 = 0) ?(base1 = 0) ?(base2 = 0) ?(aux = 0) () =
  { base_lens = [| base0; base1; base2 |]; aux_len = aux }

type finding = { f_op : string; f_pc : int; f_detail : string }

let describe_finding f =
  Printf.sprintf "pc %d (%s): %s" f.f_pc f.f_op f.f_detail

(* ------------------------------------------------------------------ *)
(* Per-instruction checks over the source instruction list.            *)

let check_instrs ?consts ~nregs ~spec instrs =
  let findings = ref [] in
  let raw = ref false and checked = ref false in
  let report pc op detail =
    findings := { f_op = op; f_pc = pc; f_detail = detail } :: !findings
  in
  let reg pc op r =
    if r < 0 || r >= nregs then
      report pc op (Printf.sprintf "register %d out of range (nregs %d)" r nregs)
  in
  let konst pc op k =
    match consts with
    | None -> ()
    | Some cs ->
      if k < 0 || k >= Array.length cs then
        report pc op
          (Printf.sprintf "constant %d out of range (%d consts)" k
             (Array.length cs))
  in
  let access pc op ~b ~off =
    if b < 0 || b > 2 then
      report pc op (Printf.sprintf "base index %d out of range" b)
    else begin
      let len = spec.base_lens.(b) in
      if len = 0 then
        report pc op
          (Printf.sprintf "wild access: base%d is not declared by the spec" b)
      else if off < 0 || off + 8 > len then
        report pc op
          (Printf.sprintf
             "out of bounds: [%d, %d) outside base%d extent [0, %d)" off
             (off + 8) b len);
      if off land 7 <> 0 then
        report pc op (Printf.sprintf "misaligned offset %d (need 8-byte)" off)
    end
  in
  let aux pc op i =
    if i < 0 || i >= spec.aux_len then
      report pc op
        (Printf.sprintf "aux index %d out of range (aux length %d)" i
           spec.aux_len)
  in
  List.iteri
    (fun pc instr ->
      match instr with
      | Prog.Ldf (r, b, off) ->
        raw := true;
        reg pc "ldf" r;
        access pc "ldf" ~b ~off
      | Prog.Stf (r, b, off) ->
        raw := true;
        reg pc "stf" r;
        access pc "stf" ~b ~off
      | Prog.Cldf (r, b, off) ->
        checked := true;
        reg pc "cldf" r;
        access pc "cldf" ~b ~off
      | Prog.Cstf (r, b, off) ->
        checked := true;
        reg pc "cstf" r;
        access pc "cstf" ~b ~off
      | Prog.Fms (a, b) ->
        reg pc "fms" a;
        reg pc "fms" b
      | Prog.Add (a, b, c) ->
        reg pc "add" a;
        reg pc "add" b;
        reg pc "add" c
      | Prog.Sub (a, b, c) ->
        reg pc "sub" a;
        reg pc "sub" b;
        reg pc "sub" c
      | Prog.Mul (a, b, c) ->
        reg pc "mul" a;
        reg pc "mul" b;
        reg pc "mul" c
      | Prog.Mulk (a, b, k) ->
        reg pc "mulk" a;
        reg pc "mulk" b;
        konst pc "mulk" k
      | Prog.Movk (a, k) ->
        reg pc "movk" a;
        konst pc "movk" k
      | Prog.Auxld (a, i) ->
        reg pc "auxld" a;
        aux pc "auxld" i
      | Prog.Auxst (a, i) ->
        reg pc "auxst" a;
        aux pc "auxst" i
      | Prog.Wrap (a, k) ->
        reg pc "wrap" a;
        konst pc "wrap" k;
        (match consts with
        | Some cs when k >= 0 && k < Array.length cs ->
          (* A wrap folds r(a) into [0, box) by one period shift; a
             non-positive (or NaN) box makes the fold unbalanced — it
             can push a value further from the interval instead of into
             it. *)
          if not (cs.(k) > 0.0) then
            report pc "wrap"
              (Printf.sprintf "unbalanced wrap: box constant %g is not > 0"
                 cs.(k))
        | _ -> ())
      | Prog.Charge n ->
        if n < 0 then
          report pc "charge" (Printf.sprintf "negative charge %d" n))
    instrs;
  if !raw && !checked then
    report (List.length instrs) "program" "mixes raw and checked accesses";
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Cycle-charge consistency between the two interpreters.              *)

(* Statically-charged cycles of the observed (per-op) interpreter: raw
   accesses charge Batch.raw_cost each as they execute; Charge n runs
   [compute n]. Checked accesses charge data-dependent protocol costs
   identically in both interpreters and are outside the static total. *)
let observed_charge instrs =
  List.fold_left
    (fun acc instr ->
      match instr with
      | Prog.Ldf _ | Prog.Stf _ -> acc + 1 (* Batch.raw_cost *)
      | Prog.Charge n -> acc + n
      | _ -> acc)
    0 instrs

(* Statically-charged cycles of the fused interpreter: raw accesses and
   in-batch charges accumulate into one end-of-program lump. *)
let fused_charge instrs =
  let total =
    List.fold_left
      (fun acc instr ->
        match instr with
        | Prog.Ldf _ | Prog.Stf _ -> acc + 1 (* Batch.raw_cost *)
        | Prog.Charge n -> acc + n
        | _ -> acc)
      0 instrs
  in
  total

let check_charges instrs =
  let o = observed_charge instrs and f = fused_charge instrs in
  if o <> f then
    [
      {
        f_op = "program";
        f_pc = List.length instrs;
        f_detail =
          Printf.sprintf
            "charge mismatch: observed interpreter totals %d cycles, fused \
             totals %d"
            o f;
      };
    ]
  else []

(* ------------------------------------------------------------------ *)
(* Whole-program entry point over a compiled program.                  *)

let check_prog ~spec p =
  match Prog.decode p with
  | exception Prog.Prog_violation { op; pc; detail } ->
    [ { f_op = op; f_pc = pc; f_detail = "decode: " ^ detail } ]
  | instrs ->
    check_instrs ~consts:(Prog.consts p) ~nregs:(Prog.nregs p) ~spec instrs
    @ check_charges instrs
