(** Static verifier for {!Shasta_core.Dsm.Prog} access programs.

    A program's address language is affine with literal offsets, so
    interval analysis over addresses degenerates to exact per-access
    ranges: the checker {e proves} every access in-bounds and 8-byte
    aligned against a spec of the base-region extents, rejects wild
    accesses to undeclared bases, unbalanced [Wrap]s (non-positive box),
    negative charges and raw/checked mixing, and checks that the two
    interpreters of [Prog.run] would charge identical static cycle
    totals. Run at registration time ({!Registry}) and from
    [shasta_cli verify --progs]. *)

type spec = {
  base_lens : int array;
      (** byte extents of base0..base2; 0 = base undeclared: any access
          through it is reported as wild *)
  aux_len : int;  (** scratch array length the program may index *)
}

val spec : ?base0:int -> ?base1:int -> ?base2:int -> ?aux:int -> unit -> spec

type finding = { f_op : string; f_pc : int; f_detail : string }

val describe_finding : finding -> string

val check_instrs :
  ?consts:float array ->
  nregs:int ->
  spec:spec ->
  Shasta_core.Dsm.Prog.instr list ->
  finding list
(** Check a source instruction list (including programs [compile] would
    reject, e.g. negative charges — usable as a pre-compile lint).
    Constant-index and wrap-box checks need [consts]. *)

val check_prog : spec:spec -> Shasta_core.Dsm.Prog.t -> finding list
(** Decode and check a compiled program, plus charge-consistency
    between the observed and fused interpreters. Empty = verified. *)
