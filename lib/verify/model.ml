(* Abstract model of the per-block coherence protocol.

   The transition relation below is a pure mirror of the handlers in
   lib/core/protocol.ml, specialized to the litmus geometry (2 coherence
   nodes x 2 processors, SMP variant, one block, share_directory off)
   and stripped of everything that does not affect protocol state:
   cycle charges, statistics, batching, and data values. Data content is
   abstracted to one bit per node copy — [stamped], true iff the copy
   holds the invalid-flag pattern, which is exactly what the inline
   access-control check reads. The mirrored sites carry the same
   ordering as the real handlers (privates drop before the node entry,
   snapshots precede sends, inline self-delivery runs the handler
   immediately) so that the label stream projected from a transition
   matches what the Observer hooks of a real run would report.

   Exhaustive exploration of this model is what makes it useful: the
   simulator's litmus explorer judges only delay-bounded schedules it
   actually executes, while reachability over this relation covers every
   interleaving of message deliveries and processor accesses under a
   channel bound. *)

module Config = Shasta_core.Config

let nprocs = 4
let nnodes = 2
let node_of p = p / 2
let sibling p = p lxor 1
let procs_of_node n = [ 2 * n; (2 * n) + 1 ]

(* ------------------------------------------------------------------ *)
(* Abstract vocabulary.                                                *)

type base = I | S | E

let rank = function I -> 0 | S -> 1 | E -> 2
let base_name = function I -> "Invalid" | S -> "Shared" | E -> "Exclusive"

type kind = Read | Readex | Upgrade

let kind_name = function
  | Read -> "read"
  | Readex -> "readex"
  | Upgrade -> "upgrade"

(* The coherence subset of the Msg vocabulary (tags 0-12); the sync
   tags 13-17 (locks, barriers) do not touch per-block state and are
   outside the model. *)
type msg =
  | Req of kind
  | Fwd of { kind : kind; requester : int; inval_acks : int }
  | Data_reply of { kind : kind; from_home : bool; inval_acks : int }
  | Upgrade_reply of { inval_acks : int }
  | Invalidate of { requester : int }
  | Inval_ack
  | Sharing_wb of { new_sharer : int }
  | Own_ack
  | Downgrade of { target : base }

let coherence_tags = 13

let tag = function
  | Req Read -> 0
  | Req Readex -> 1
  | Req Upgrade -> 2
  | Fwd { kind = Read; _ } -> 3
  | Fwd { kind = Readex; _ } -> 4
  | Fwd { kind = Upgrade; _ } -> 5
  | Data_reply _ -> 6
  | Upgrade_reply _ -> 7
  | Invalidate _ -> 8
  | Inval_ack -> 9
  | Sharing_wb _ -> 10
  | Own_ack -> 11
  | Downgrade _ -> 12

let tag_name t = Shasta_core.Msg.tag_names.(t)
let msg_name m = tag_name (tag m)

(* ------------------------------------------------------------------ *)
(* Abstract state.                                                     *)

type deferred =
  | Reply_read of { requester : int }
  | Reply_readex of { requester : int; inval_acks : int }
  | Inval_done of { requester : int }
  | D_recovered
      (** crash recovery rewrote a deferred action whose requester died:
          complete the downgrade locally, send nothing (mirrors
          [Downgrade.Recovered]) *)

type down = {
  d_target : base;
  mutable d_deferred : deferred;  (** mutable for crash-recovery rewrites *)
  mutable d_remaining : int;
  mutable d_queued : (int * msg) list;  (** newest first, as in Downgrade *)
}

type entry = {
  mutable e_kind : kind;
  mutable e_ready : bool;
  mutable e_acks_expected : int;  (** -1 until the reply sets it *)
  mutable e_acks_received : int;
  mutable e_uar : bool;  (** upgrade_after_reply *)
  mutable e_iar : bool;  (** inval_after_reply *)
  mutable e_fwds : (int * msg) list;  (** newest first *)
}

type nodest = {
  mutable nbase : base;
  mutable pending : bool;
  mutable pdg : bool;  (** pending_downgrade *)
  mutable stamped : bool;  (** copy holds the invalid-flag pattern *)
  mutable miss : entry option;
  mutable down : down option;
}

type dirst = {
  mutable owner : int;
  mutable sharers : int;  (** pid bitset *)
  mutable busy : bool;
  mutable queue : (int * kind) list;  (** newest first, as in Directory *)
}

(* In-flight messages: one global queue in send order. The real network
   delivers at send-time + transfer(class, size) and the engine runs
   handlers in arrival order, so delivery order is the send order
   except where a cheaper transfer can close an arbitrary send gap:
   ranking messages by minimum latency — intra-node control <
   intra-node data < remote control < remote data (only [Data_reply]
   carries the block; the rank order holds for line sizes up to 256
   bytes under the default link) — a later send can only overtake an
   earlier one of strictly higher rank, and never on the same
   (src, dst) pair (the network forces per-pair FIFO explicitly).
   Fully independent channels would over-approximate into reorderings
   the simulator cannot exhibit (e.g. a stale invalidate overtaking a
   later ownership grant) whose races are real unordered-network
   hazards but false alarms against this implementation. *)
type state = {
  dir : dirst;
  nodes : nodest array;  (** length 2 *)
  priv : base array;  (** length 4 *)
  mutable net : (int * int * msg) list;  (** (src, dst, msg), send order *)
  mutable s_home : int;  (** current home pid; moves if the home node dies *)
  mutable s_dead : int;  (** node-index bitset of crashed nodes *)
}

let copy_entry e = { e with e_kind = e.e_kind }
let copy_down d = { d with d_remaining = d.d_remaining }

let copy_node n =
  {
    n with
    miss = Option.map copy_entry n.miss;
    down = Option.map copy_down n.down;
  }

let copy_state s =
  {
    dir = { s.dir with owner = s.dir.owner };
    nodes = Array.map copy_node s.nodes;
    priv = Array.copy s.priv;
    net = s.net;
    s_home = s.s_home;
    s_dead = s.s_dead;
  }

let initial ~home =
  {
    dir = { owner = home; sharers = 0; busy = false; queue = [] };
    nodes =
      Array.init nnodes (fun n ->
          {
            nbase = (if n = node_of home then E else I);
            pending = false;
            pdg = false;
            stamped = n <> node_of home;
            miss = None;
            down = None;
          });
    priv = Array.init nprocs (fun p -> if p = home then E else I);
    net = [];
    s_home = home;
    s_dead = 0;
  }

(* ------------------------------------------------------------------ *)
(* Conformance labels: the schedule-independent projection of the
   Observer hook stream. A real run's hooks project into this space
   (Conform.observer); exhaustive exploration emits the complete label
   set of the model, and conformance means every projected real event
   is a member. Fields are node-relative booleans (home node or not)
   rather than pids so that the labels carry over to any 2-node config
   regardless of which processor hosts the block. *)

type label =
  | L_state of { at_home : bool; from_ : int; to_ : int }
  | L_private of { at_home : bool; self : bool; from_ : int; to_ : int }
  | L_pending of { at_home : bool; set : bool }
  | L_pdg of { at_home : bool; set : bool }
  | L_send of { tg : int; src_home : bool; dst_home : bool; same_node : bool }

let describe_label = function
  | L_state { at_home; from_; to_ } ->
    Printf.sprintf "state[%s] %d->%d" (if at_home then "home" else "remote") from_ to_
  | L_private { at_home; self; from_; to_ } ->
    Printf.sprintf "private[%s,%s] %d->%d"
      (if at_home then "home" else "remote")
      (if self then "self" else "peer")
      from_ to_
  | L_pending { at_home; set } ->
    Printf.sprintf "pending[%s] %b" (if at_home then "home" else "remote") set
  | L_pdg { at_home; set } ->
    Printf.sprintf "pdg[%s] %b" (if at_home then "home" else "remote") set
  | L_send { tg; src_home; dst_home; same_node } ->
    Printf.sprintf "send[%s] %s->%s%s" (tag_name tg)
      (if src_home then "home" else "remote")
      (if dst_home then "home" else "remote")
      (if same_node then " intra" else "")

(* ------------------------------------------------------------------ *)
(* Transition context.                                                 *)

exception Model_violation of string

type t = {
  home : int;  (** initial home (the current home lives in [st.s_home]) *)
  bound : int;  (** per-(src,dst) channel bound *)
  fault : Config.fault option;
  crashes : bool;  (** enable the node-crash transition *)
  mutable on_label : label -> unit;
  mutable on_branch : string -> unit;
  mutable overflow : bool;  (** a send exceeded [bound] this step *)
  mutable st : state;
}

let create ?(home = 2) ?(bound = 2) ?fault ?(crashes = false) () =
  {
    home;
    bound;
    fault;
    crashes;
    on_label = ignore;
    on_branch = ignore;
    overflow = false;
    st = initial ~home;
  }

let home t = t.st.s_home
let home_node t = node_of (home t)
let nd t p = t.st.nodes.(node_of p)
let violation msg = raise (Model_violation msg)
let hit t b = t.on_branch b

let fault_is t f = t.fault = Some f

(* Bitset helpers over pids. *)
let bmem p s = s land (1 lsl p) <> 0
let badd p s = s lor (1 lsl p)
let belements s = List.filter (fun p -> bmem p s) [ 0; 1; 2; 3 ]

(* ---------------- label-emitting state updates ---------------- *)

let emit t l = t.on_label l
let at_home t p = node_of p = home_node t

let set_nbase t p v =
  let n = nd t p in
  if v <> n.nbase then
    emit t (L_state { at_home = at_home t p; from_ = rank n.nbase; to_ = rank v });
  n.nbase <- v

let set_pending t p v =
  (nd t p).pending <- v;
  emit t (L_pending { at_home = at_home t p; set = v })

let set_pdg t p v =
  (nd t p).pdg <- v;
  emit t (L_pdg { at_home = at_home t p; set = v })

let raise_private t p q v =
  let old = t.st.priv.(q) in
  if rank old < rank v then begin
    t.st.priv.(q) <- v;
    emit t
      (L_private
         { at_home = at_home t q; self = p = q; from_ = rank old; to_ = rank v })
  end

let lower_private t p q v =
  let old = t.st.priv.(q) in
  if rank old > rank v then begin
    t.st.priv.(q) <- v;
    emit t
      (L_private
         { at_home = at_home t q; self = p = q; from_ = rank old; to_ = rank v })
  end

let stamp_invalid t p =
  if not (fault_is t Config.Skip_flag_stamp) then (nd t p).stamped <- true

let node_has_valid t p =
  let n = nd t p in
  n.nbase <> I && (not n.pending) && not n.pdg

(* ---------------- message transport ---------------- *)

(* Minimum-latency rank of a message on a (src, dst) pair: a later
   send can only overtake an earlier in-flight message of strictly
   higher rank (and never one on its own pair). *)
let rank_of src dst m =
  let cls = if node_of src = node_of dst then 0 else 2 in
  let weight = match m with Data_reply _ -> 1 | _ -> 0 in
  cls + weight

(* [send] mirrors Protocol.deliver: a self-destined message runs its
   handler inline (requester-is-home fast path); anything else enters
   the global send-ordered queue. A send pushing one (src, dst) pair
   past the bound marks the step for pruning by the explorer. *)
let rec send t p dst m =
  if dst = p then handle_message t p ~src:p m
  else begin
    emit t
      (L_send
         {
           tg = tag m;
           src_home = at_home t p;
           dst_home = at_home t dst;
           same_node = node_of p = node_of dst;
         });
    t.st.net <- t.st.net @ [ (p, dst, m) ];
    let pair_depth =
      List.fold_left
        (fun n (s, d, _) -> if s = p && d = dst then n + 1 else n)
        0 t.st.net
    in
    if pair_depth > t.bound then t.overflow <- true
  end

and handle_message t p ~src m =
  hit t ("msg:" ^ msg_name m);
  match m with
  | Req kind -> handle_dir_request t p ~src ~kind
  | Fwd { kind; requester; inval_acks } ->
    handle_fwd t p ~src ~kind ~requester ~inval_acks m
  | Data_reply { kind; from_home = _; inval_acks } ->
    handle_data_reply t p ~kind ~inval_acks
  | Upgrade_reply { inval_acks } -> handle_upgrade_reply t p ~inval_acks
  | Invalidate { requester } -> handle_invalidate t p ~src ~requester m
  | Inval_ack -> handle_inval_ack t p
  | Sharing_wb { new_sharer } -> handle_sharing_wb t p ~new_sharer
  | Own_ack -> handle_own_ack t p
  | Downgrade { target } -> handle_downgrade_msg t p ~target

(* ---------------- directory (home) side ---------------- *)

and handle_dir_request t p ~src ~kind =
  if p <> home t then violation "directory request handled off-home";
  let e = t.st.dir in
  if e.busy then begin
    hit t "dir.busy_queue";
    e.queue <- (src, kind) :: e.queue
  end
  else
    match kind with
    | Read -> handle_read_request t p ~src
    | Readex -> handle_readex_request t p ~src
    | Upgrade ->
      if bmem src e.sharers then handle_upgrade_request t p ~src
      else begin
        hit t "dir.upgrade_as_readex";
        handle_readex_request t p ~src
      end

and handle_read_request t p ~src =
  let e = t.st.dir in
  if node_has_valid t p then begin
    match (nd t p).nbase with
    | S ->
      hit t "dir.read.serve_shared";
      e.sharers <- badd src (badd p e.sharers);
      reply_data t p ~dst:src ~kind:Read ~inval_acks:0
    | E ->
      hit t "dir.read.home_exclusive";
      e.busy <- true;
      start_node_downgrade t p ~target:S ~deferred:(Reply_read { requester = src })
    | I -> violation "read request: home node valid yet state Invalid"
  end
  else begin
    hit t "dir.read.forward";
    e.busy <- true;
    send t p e.owner (Fwd { kind = Read; requester = src; inval_acks = 0 })
  end

and send_invalidate t p ~requester q =
  if node_of q = node_of p then begin
    hit t "inval.inline";
    handle_invalidate t p ~src:p ~requester (Invalidate { requester })
  end
  else send t p q (Invalidate { requester })

and handle_readex_request t p ~src =
  let e = t.st.dir in
  if node_has_valid t p then begin
    hit t "dir.readex.home_valid";
    let invals =
      List.filter
        (fun q -> node_of q <> node_of p && node_of q <> node_of src)
        (belements e.sharers)
    in
    List.iter (send_invalidate t p ~requester:src) invals;
    let acks = List.length invals in
    e.owner <- src;
    e.sharers <- badd src 0;
    e.busy <- true;
    start_node_downgrade t p ~target:I
      ~deferred:(Reply_readex { requester = src; inval_acks = acks })
  end
  else begin
    hit t "dir.readex.forward";
    let owner = e.owner in
    let invals =
      List.filter
        (fun q -> node_of q <> node_of owner && node_of q <> node_of src)
        (belements e.sharers)
    in
    List.iter (send_invalidate t p ~requester:src) invals;
    let acks = List.length invals in
    e.owner <- src;
    e.sharers <- badd src 0;
    e.busy <- true;
    send t p owner (Fwd { kind = Readex; requester = src; inval_acks = acks })
  end

and handle_upgrade_request t p ~src =
  hit t "dir.upgrade.serve";
  let e = t.st.dir in
  let invals =
    List.filter (fun q -> node_of q <> node_of src) (belements e.sharers)
  in
  List.iter (send_invalidate t p ~requester:src) invals;
  e.owner <- src;
  e.sharers <- badd src 0;
  send t p src (Upgrade_reply { inval_acks = List.length invals })

and drain_dir_queue t p =
  let e = t.st.dir in
  let rec loop () =
    if not e.busy then
      match List.rev e.queue with
      | [] -> ()
      | (src, kind) :: rest ->
        e.queue <- List.rev rest;
        hit t "dir.drain";
        (match kind with
        | Read -> handle_read_request t p ~src
        | Readex -> handle_readex_request t p ~src
        | Upgrade ->
          if bmem src e.sharers then handle_upgrade_request t p ~src
          else handle_readex_request t p ~src);
        loop ()
  in
  loop ()

and handle_sharing_wb t p ~new_sharer =
  let e = t.st.dir in
  e.sharers <- badd new_sharer (badd e.owner e.sharers);
  e.busy <- false;
  drain_dir_queue t p

and handle_own_ack t p =
  t.st.dir.busy <- false;
  drain_dir_queue t p

(* ---------------- owner / sharer side ---------------- *)

and send_data t p ~dst ~kind ~inval_acks =
  send t p dst (Data_reply { kind; from_home = p = home t; inval_acks })

and reply_data t p ~dst ~kind ~inval_acks = send_data t p ~dst ~kind ~inval_acks

and handle_fwd t p ~src ~kind ~requester ~inval_acks m =
  let n = nd t p in
  match n.down with
  | Some dg ->
    hit t "fwd.queued_on_downgrade";
    dg.d_queued <- (src, m) :: dg.d_queued
  | None -> (
    match n.miss with
    | Some e when (not e.e_ready) && n.nbase = I ->
      hit t "fwd.queued_on_miss";
      e.e_fwds <- (src, m) :: e.e_fwds
    | Some _ | None -> (
      match kind with
      | Read -> (
        match n.nbase with
        | E ->
          hit t "fwd.read.exclusive";
          start_node_downgrade t p ~target:S
            ~deferred:(Reply_read { requester })
        | S ->
          hit t "fwd.read.shared";
          execute_deferred t p ~target:S ~deferred:(Reply_read { requester })
        | I -> violation "read forwarded to an owner with no copy")
      | Readex ->
        if n.nbase = I then
          violation "readex forwarded to an owner with no copy";
        hit t "fwd.readex";
        start_node_downgrade t p ~target:I
          ~deferred:(Reply_readex { requester; inval_acks })
      | Upgrade ->
        violation "upgrade forwarded to an owner (upgrades are home-served)"))

and handle_invalidate t p ~src ~requester m =
  let n = nd t p in
  match n.down with
  | Some dg ->
    hit t "inval.queued_on_downgrade";
    dg.d_queued <- (src, m) :: dg.d_queued
  | None -> (
    match n.miss with
    | Some e when not e.e_ready ->
      (if e.e_kind = Read then begin
         hit t "inval.mark_after_reply";
         e.e_iar <- true
       end
       else begin
         hit t "inval.kill_current_copy";
         if n.nbase <> I then begin
           stamp_invalid t p;
           List.iter
             (fun q -> lower_private t p q I)
             (procs_of_node (node_of p));
           set_nbase t p I
         end
       end);
      send t p requester Inval_ack
    | Some _ | None -> (
      match n.nbase with
      | S | E ->
        hit t "inval.downgrade";
        start_node_downgrade t p ~target:I
          ~deferred:(Inval_done { requester })
      | I ->
        hit t "inval.stale_ack";
        send t p requester Inval_ack))

(* ---------------- downgrades (section 3.4.3) ---------------- *)

and start_node_downgrade t p ~target ~deferred =
  let n = nd t p in
  let targets =
    List.filter
      (fun q -> rank t.st.priv.(q) > rank target)
      [ sibling p ]
  in
  lower_private t p p target;
  match targets with
  | [] ->
    hit t "downgrade.immediate";
    execute_deferred t p ~target ~deferred
  | _ ->
    hit t "downgrade.sibling";
    if n.down <> None then
      violation "downgrade started with one already in progress";
    n.down <-
      Some
        {
          d_target = target;
          d_deferred = deferred;
          d_remaining = List.length targets;
          d_queued = [];
        };
    set_pdg t p true;
    List.iter (fun q -> send t p q (Downgrade { target })) targets

and handle_downgrade_msg t p ~target =
  if not (fault_is t Config.Skip_private_downgrade) then
    lower_private t p p target;
  let n = nd t p in
  match n.down with
  | None -> violation "downgrade message with no downgrade in progress"
  | Some dg ->
    dg.d_remaining <- dg.d_remaining - 1;
    if dg.d_remaining = 0 then begin
      hit t "downgrade.complete";
      n.down <- None;
      set_pdg t p false;
      execute_deferred t p ~target:dg.d_target ~deferred:dg.d_deferred;
      List.iter
        (fun (src, m) ->
          hit t "downgrade.replay";
          handle_message t p ~src m)
        (List.rev dg.d_queued)
    end

and execute_deferred t p ~target ~deferred =
  let n = nd t p in
  if n.down <> None then
    violation "deferred action ran with a downgrade still pending";
  match deferred with
  | Reply_read { requester } ->
    if target <> S then violation "read downgrade with a non-Shared target";
    hit t "deferred.reply_read";
    set_nbase t p S;
    send_data t p ~dst:requester ~kind:Read ~inval_acks:0;
    if p = home t then handle_sharing_wb t p ~new_sharer:requester
    else send t p (home t) (Sharing_wb { new_sharer = requester })
  | Reply_readex { requester; inval_acks } ->
    if target <> I then violation "readex downgrade with a non-Invalid target";
    hit t "deferred.reply_readex";
    stamp_invalid t p;
    set_nbase t p I;
    send_data t p ~dst:requester ~kind:Readex ~inval_acks
  | Inval_done { requester } ->
    if target <> I then violation "inval downgrade with a non-Invalid target";
    hit t "deferred.inval_done";
    stamp_invalid t p;
    set_nbase t p I;
    send t p requester Inval_ack
  | D_recovered ->
    (* Crash recovery rewrote the deferred action (its requester died or
       its transaction was restarted): complete the downgrade locally and
       send nothing, mirroring Downgrade.Recovered in lib/core. *)
    hit t "deferred.recovered";
    if target = I then stamp_invalid t p;
    set_nbase t p target

(* ---------------- requester side: replies ---------------- *)

and complete_if_ready t p e =
  let n = nd t p in
  let complete =
    e.e_ready && e.e_acks_expected >= 0
    && e.e_acks_received >= e.e_acks_expected
  in
  if complete then begin
    hit t "entry.retire";
    let fwds = List.rev e.e_fwds in
    e.e_fwds <- [];
    n.miss <- None;
    List.iter (fun (src, m) -> handle_message t p ~src m) fwds
  end
  else if e.e_ready then begin
    let fwds = List.rev e.e_fwds in
    e.e_fwds <- [];
    if fwds <> [] then hit t "entry.serve_early";
    List.iter (fun (src, m) -> handle_message t p ~src m) fwds
  end

and handle_data_reply t p ~kind ~inval_acks =
  let n = nd t p in
  match n.miss with
  | None -> violation "data reply with no outstanding miss"
  | Some e ->
    if e.e_ready then violation "data reply on an already-ready entry";
    n.stamped <- false;
    let new_state = match kind with Read -> S | Readex | Upgrade -> E in
    set_nbase t p new_state;
    set_pending t p false;
    raise_private t p p new_state;
    e.e_ready <- true;
    e.e_acks_expected <- inval_acks;
    if kind = Readex then
      if p = home t then handle_own_ack t p else send t p (home t) Own_ack;
    if e.e_iar then begin
      hit t "entry.inval_after_reply";
      e.e_iar <- false;
      stamp_invalid t p;
      lower_private t p p I;
      set_nbase t p I
    end;
    if e.e_uar && e.e_kind = Read then begin
      hit t "entry.chain_ownership";
      e.e_uar <- false;
      e.e_ready <- false;
      e.e_acks_expected <- -1;
      let kind2 = if n.nbase = S then Upgrade else Readex in
      e.e_kind <- kind2;
      set_pending t p true;
      send t p (home t) (Req kind2)
    end
    else complete_if_ready t p e

and handle_upgrade_reply t p ~inval_acks =
  let n = nd t p in
  match n.miss with
  | None -> violation "upgrade reply with no outstanding miss"
  | Some e ->
    if e.e_ready then violation "upgrade reply on an already-ready entry";
    set_nbase t p E;
    set_pending t p false;
    raise_private t p p E;
    e.e_ready <- true;
    e.e_acks_expected <- inval_acks;
    complete_if_ready t p e

and handle_inval_ack t p =
  let n = nd t p in
  match n.miss with
  | None -> violation "invalidation ack with no outstanding miss"
  | Some e ->
    e.e_acks_received <- e.e_acks_received + 1;
    complete_if_ready t p e

(* ---------------- processor accesses ---------------- *)

let new_entry kind =
  {
    e_kind = kind;
    e_ready = false;
    e_acks_expected = -1;
    e_acks_received = 0;
    e_uar = false;
    e_iar = false;
    e_fwds = [];
  }

(* Checked load: the inline check reads the copy's content; only a
   flagged word enters the protocol (Protocol.load_miss). An Invalid
   copy whose content is NOT flagged (possible only transiently around
   merged non-blocking stores, or under Skip_flag_stamp) is read as
   data without any protocol action -- which is exactly how that fault
   manifests in the real system. *)
let do_load t p =
  let n = nd t p in
  if not n.stamped then hit t "load.hit"
  else if n.nbase <> I then begin
    (* False miss (flagged content over a valid copy). Unreachable in
       the one-word abstraction -- kept as the mirror of load_miss's
       Valid branch so the dead-branch report documents it. *)
    if n.pdg then hit t "load.pdg_consume"
    else if rank t.st.priv.(p) = 0 then begin
      hit t "load.private_upgrade";
      raise_private t p p S
    end
    else hit t "load.false_miss"
  end
  else
    match n.miss with
    | Some e when not e.e_ready -> hit t "load.stall_data"
    | Some _ -> hit t "load.stall_drain"
    | None ->
      hit t "load.issue";
      n.miss <- Some (new_entry Read);
      set_pending t p true;
      send t p (home t) (Req Read)

(* Checked store: private Exclusive writes through; anything else
   enters Protocol.store_miss. *)
let do_store t p =
  let n = nd t p in
  if rank t.st.priv.(p) = 2 then begin
    hit t "store.hit";
    n.stamped <- false
  end
  else begin
    let pdg = n.pdg and base = n.nbase in
    if pdg && base = E then begin
      hit t "store.pre_downgrade";
      n.stamped <- false
    end
    else if (not pdg) && base = E then begin
      hit t "store.private_upgrade";
      if rank t.st.priv.(p) < 2 then raise_private t p p E;
      n.stamped <- false
    end
    else
      match n.miss with
      | Some e when e.e_ready -> hit t "store.stall_drain"
      | Some e ->
        hit t "store.merge";
        if e.e_kind = Read then e.e_uar <- true;
        n.stamped <- false
      | None ->
        hit t "store.issue";
        let kind = if base = S then Upgrade else Readex in
        n.miss <- Some (new_entry kind);
        set_pending t p true;
        n.stamped <- false;
        send t p (home t) (Req kind)
  end

(* ------------------------------------------------------------------ *)
(* Node crash and recovery: the abstract mirror of Recover.rebuild,
   specialized to the 2-node geometry. After one crash exactly one node
   survives, so re-homed blocks and rebuilt directories always land on
   it, and a second crash is never enabled (the last live node may not
   die). The transition is atomic — fail-stop plus the whole rebuild in
   one step — mirroring the engine, which runs the recovery callback
   between scheduling points; the self-destined sends it performs are
   therefore safe to inline. *)

(* The surviving node's representative: the live pid with the highest
   private rank, lowest pid on ties — the pid Recover.rebuild elects to
   stand for the node's copy in the rebuilt directory and as the
   re-issuer of its outstanding miss. *)
let crash_rep t n' =
  List.fold_left
    (fun best p -> if rank t.st.priv.(p) > rank t.st.priv.(best) then p else best)
    (2 * n') (procs_of_node n')

let msg_requester = function
  | Fwd { requester; _ } | Invalidate { requester } -> Some requester
  | _ -> None

let do_crash t n =
  hit t "crash.kill";
  let st = t.st in
  let n' = 1 - n in
  let dead_pid p = node_of p = n in
  let dn = st.nodes.(n) and ln = st.nodes.(n') in
  let d = st.dir in
  let dead_had_state =
    dn.nbase <> I || dn.pending || dn.pdg || dn.miss <> None || dn.down <> None
    || List.exists (fun p -> st.priv.(p) <> I) (procs_of_node n)
  in
  (* Fail-stop: in-flight messages with a dead endpoint vanish. *)
  let harvested, kept =
    List.partition (fun (s, dst, _) -> dead_pid s || dead_pid dst) st.net
  in
  st.net <- kept;
  st.s_dead <- st.s_dead lor (1 lsl n);
  (* Scrub the dead node: tables Invalid, copies flag-stamped,
     transients cleared — the node no longer exists. *)
  dn.nbase <- I;
  dn.pending <- false;
  dn.pdg <- false;
  dn.stamped <- true;
  dn.miss <- None;
  dn.down <- None;
  List.iter (fun p -> st.priv.(p) <- I) (procs_of_node n);
  (* A dead-homed block re-homes to the surviving node. *)
  let home_died = node_of st.s_home = n in
  if home_died then begin
    hit t "crash.rehome";
    st.s_home <- 2 * n'
  end;
  let refs_dead (src, m) =
    dead_pid src
    || match msg_requester m with Some r -> dead_pid r | None -> false
  in
  let dir_refs_dead =
    dead_pid d.owner
    || List.exists dead_pid (belements d.sharers)
    || List.exists (fun (src, _) -> dead_pid src) d.queue
  in
  let deferred_refs_dead = function
    | Reply_read { requester }
    | Reply_readex { requester; _ }
    | Inval_done { requester } -> dead_pid requester
    | D_recovered -> false
  in
  let dg_refs_dead =
    match ln.down with
    | Some dg ->
      deferred_refs_dead dg.d_deferred || List.exists refs_dead dg.d_queued
    | None -> false
  in
  let entry_refs_dead =
    match ln.miss with
    | Some e -> List.exists refs_dead e.e_fwds
    | None -> false
  in
  let live_msg_refs_dead =
    List.exists (fun (_, _, m) -> refs_dead (nprocs, m)) st.net
  in
  let affected =
    home_died || dead_had_state || harvested <> [] || dir_refs_dead
    || dg_refs_dead || entry_refs_dead || live_msg_refs_dead
  in
  if not affected then hit t "crash.unaffected"
  else begin
    (* Cancel the survivors' in-flight messages about the block — they
       belong to transactions the rebuild restarts — except Downgrades,
       whose completion the owner's down entry is counting on. A
       cancelled ownership-transferring data reply is un-sent: the bytes
       exist only in that message (the sender downgraded to Invalid just
       before sending), so the sender's copy is restored. *)
    let cancelled, kept =
      List.partition
        (fun (_, _, m) -> match m with Downgrade _ -> false | _ -> true)
        st.net
    in
    st.net <- kept;
    if cancelled <> [] then hit t "crash.cancel";
    List.iter
      (fun (s, _, m) ->
        match m with
        | Data_reply { kind = Readex | Upgrade; _ } ->
          hit t "crash.unsend_data";
          let sn = st.nodes.(node_of s) in
          sn.stamped <- false;
          sn.nbase <- E;
          st.priv.(s) <- E
        | _ -> ())
      cancelled;
    (* A surviving in-progress downgrade completes locally: its queued
       messages were cancelled above and its deferred action served a
       transaction that is being restarted. *)
    (match ln.down with
    | Some dg ->
      hit t "crash.dg_recovered";
      dg.d_queued <- [];
      dg.d_deferred <- D_recovered
    | None -> ());
    (* Rebuild the directory entry from the survivor's state. *)
    let rp = crash_rep t n' in
    d.queue <- [];
    d.busy <- false;
    d.owner <- rp;
    d.sharers <- badd rp 0;
    let eff = match ln.down with Some dg -> dg.d_target | None -> ln.nbase in
    let rescued = ref false in
    if eff <> I then hit t "crash.rebuild"
    else begin
      match ln.down with
      | Some dg ->
        (* The block's only copy is mid-downgrade to Invalid on the
           survivor: its bytes are still present until the downgrade
           completes, so redirect the deferred reply at the survivor
           itself — the normal Reply_readex path then re-delivers
           ownership (and its Own_ack clears the busy bit). *)
        hit t "crash.rescue";
        rescued := true;
        (match ln.miss with
        | Some e ->
          e.e_kind <- Readex;
          e.e_ready <- false;
          e.e_acks_expected <- -1;
          e.e_acks_received <- 0;
          e.e_uar <- false;
          e.e_iar <- false;
          e.e_fwds <- []
        | None -> ln.miss <- Some (new_entry Readex));
        ln.pending <- true;
        dg.d_deferred <- Reply_readex { requester = rp; inval_acks = 0 };
        d.busy <- true
      | None -> (
        (* Every copy of the block died with the node. *)
        match ln.miss with
        | Some e ->
          (* A live demand miss is outstanding: mirror the
             checkpoint-restore path — the data is restored from the
             checkpoint plus log and the miss completes locally. (The
             sharer-pull mode raises Recovery_violation (Data_loss)
             here; that typed failure is exercised by the concrete
             crash tests, not modeled as a transition.) *)
          hit t "crash.data_loss";
          let ns = match e.e_kind with Read when not e.e_uar -> S | _ -> E in
          ln.stamped <- false;
          ln.nbase <- ns;
          ln.pending <- false;
          ln.miss <- None;
          st.priv.(rp) <- ns
        | None ->
          (* No live demand: re-initialize a zeroed Exclusive copy at
             the (new) home, as sharer-pull recovery does. *)
          hit t "crash.reinit";
          ln.stamped <- false;
          ln.nbase <- E)
    end;
    (* Re-issue the survivor's outstanding miss — last, once the
       directory is consistent, because a self-destined Req runs its
       handler inline. *)
    if not !rescued then
      match ln.miss with
      | Some e ->
        hit t "crash.reissue";
        e.e_fwds <- [];
        e.e_acks_received <- 0;
        let k =
          if e.e_ready then begin
            (* The data already arrived; only acknowledgements died.
               Re-secure ownership with a fresh upgrade transaction. *)
            e.e_ready <- false;
            e.e_kind <- Upgrade;
            Upgrade
          end
          else e.e_kind
        in
        e.e_acks_expected <- -1;
        ln.pending <- true;
        send t rp (home t) (Req k)
      | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Actions and stepping.                                               *)

type action =
  | Load of int
  | Store of int
  | Deliver of { src : int; dst : int }
  | Crash of int  (** node index: fail-stop the node, then recover *)

(* Delivery rule derived from arrival-order handling with per-class
   latencies (see the [state] comment): an in-flight message is
   deliverable iff every earlier in-flight message has strictly higher
   minimum-latency rank and lives on a different (src, dst) pair.
   Scanning in send order, that is: rank strictly below the running
   minimum, pair not yet seen. *)
let deliverable st =
  let acc = ref [] in
  let minrank = ref max_int in
  let seen = ref [] in
  List.iter
    (fun (src, dst, m) ->
      let r = rank_of src dst m in
      if r < !minrank && not (List.mem (src, dst) !seen) then
        acc := (src, dst) :: !acc;
      if r < !minrank then minrank := r;
      seen := (src, dst) :: !seen)
    st.net;
  List.rev !acc

let enabled_actions ?(crashes = false) st =
  let acc = ref [] in
  (* At most one crash per run, and the last live node may not die. *)
  if crashes && st.s_dead = 0 then
    for n = nnodes - 1 downto 0 do
      acc := Crash n :: !acc
    done;
  List.iter
    (fun (src, dst) -> acc := Deliver { src; dst } :: !acc)
    (List.rev (deliverable st));
  for p = nprocs - 1 downto 0 do
    if st.s_dead land (1 lsl node_of p) = 0 then
      acc := Load p :: Store p :: !acc
  done;
  !acc

(* Describe [action] against [st] (before executing it), for
   counterexample traces — computed up front so a violating step still
   has its description. *)
let describe_action st = function
  | Load p -> Printf.sprintf "p%d: load" p
  | Store p -> Printf.sprintf "p%d: store" p
  | Deliver { src; dst } -> (
    match List.find_opt (fun (s, d, _) -> s = src && d = dst) st.net with
    | Some (_, _, m) ->
      Printf.sprintf "deliver %s p%d->p%d" (msg_name m) src dst
    | None -> Printf.sprintf "deliver <empty> p%d->p%d" src dst)
  | Crash n -> Printf.sprintf "crash node %d" n

(* Execute [action] against [t.st], mutating it in place. Raises
   [Model_violation] when a handler reaches one of the real protocol's
   impossible-configuration checks; sets [t.overflow] when a send
   exceeded the channel bound (the explorer prunes the result). *)
let step t action =
  t.overflow <- false;
  match action with
  | Load p -> do_load t p
  | Store p -> do_store t p
  | Deliver { src; dst } -> (
    (* Remove the oldest in-flight (src, dst) entry from the queue. *)
    let rec take = function
      | [] -> violation "deliver from an empty channel"
      | ((s, d, m) as e) :: rest ->
        if s = src && d = dst then (m, rest)
        else
          let m', rest' = take rest in
          (m', e :: rest')
    in
    let m, rest = take t.st.net in
    t.st.net <- rest;
    handle_message t dst ~src m)
  | Crash n ->
    if not t.crashes then violation "crash action on a crash-free model";
    if t.st.s_dead <> 0 then violation "second crash (last live node)";
    do_crash t n

(* ------------------------------------------------------------------ *)
(* Invariants: the Inspect.report sweep over the abstract state. A
   block with protocol activity in flight (mirrored by its table
   entries and bits -- every in-flight coherence message implies such a
   marker) may break the settled-state invariants transiently. *)

let transient st =
  Array.exists
    (fun n -> n.miss <> None || n.down <> None || n.pending || n.pdg)
    st.nodes
  || st.dir.busy || st.dir.queue <> []

let check_invariants st =
  let bad = ref [] in
  let push what = bad := what :: !bad in
  let tr = transient st in
  let exclusive = ref 0 and valid = ref 0 in
  Array.iteri
    (fun i n ->
      (match n.nbase with
      | E ->
        incr exclusive;
        incr valid
      | S -> incr valid
      | I -> ());
      if n.pending && n.miss = None then
        push (Printf.sprintf "node %d: pending with no outstanding miss" i);
      (match (n.pdg, n.down) with
      | true, None ->
        push (Printf.sprintf "node %d: pending-downgrade with no downgrade entry" i)
      | false, Some _ ->
        push
          (Printf.sprintf "node %d: downgrade entry without pending-downgrade bit" i)
      | _ -> ());
      if (not tr) && n.nbase = I && not n.stamped then
        push (Printf.sprintf "node %d: invalid without flag pattern" i))
    st.nodes;
  if !exclusive > 1 then push (Printf.sprintf "%d exclusive nodes" !exclusive);
  if (not tr) && !exclusive = 1 && !valid > 1 then
    push "exclusive node coexists with sharers";
  if (not tr) && !valid = 0 then push "no valid copy anywhere";
  Array.iteri
    (fun p pv ->
      if rank pv > rank st.nodes.(node_of p).nbase then
        push
          (Printf.sprintf "proc %d: private %s overstates node state %s" p
             (base_name pv)
             (base_name st.nodes.(node_of p).nbase)))
    st.priv;
  List.rev !bad

(* ------------------------------------------------------------------ *)
(* The complete branch vocabulary, for the dead-branch report. *)

let all_branches =
  [
    "msg:read_req"; "msg:readex_req"; "msg:upgrade_req"; "msg:read_fwd";
    "msg:readex_fwd"; "msg:upgrade_fwd"; "msg:data_reply"; "msg:upgrade_reply";
    "msg:invalidate"; "msg:inval_ack"; "msg:sharing_wb"; "msg:own_ack";
    "msg:downgrade";
    "dir.busy_queue"; "dir.upgrade_as_readex"; "dir.read.serve_shared";
    "dir.read.home_exclusive"; "dir.read.forward"; "dir.readex.home_valid";
    "dir.readex.forward"; "dir.upgrade.serve"; "dir.drain";
    "inval.inline"; "inval.queued_on_downgrade"; "inval.mark_after_reply";
    "inval.kill_current_copy"; "inval.downgrade"; "inval.stale_ack";
    "fwd.queued_on_downgrade"; "fwd.queued_on_miss"; "fwd.read.exclusive";
    "fwd.read.shared"; "fwd.readex";
    "downgrade.immediate"; "downgrade.sibling"; "downgrade.complete";
    "downgrade.replay";
    "deferred.reply_read"; "deferred.reply_readex"; "deferred.inval_done";
    "entry.retire"; "entry.serve_early"; "entry.inval_after_reply";
    "entry.chain_ownership";
    "load.hit"; "load.pdg_consume"; "load.private_upgrade"; "load.false_miss";
    "load.stall_data"; "load.stall_drain"; "load.issue";
    "store.hit"; "store.pre_downgrade"; "store.private_upgrade";
    "store.stall_drain"; "store.merge"; "store.issue";
    "deferred.recovered";
    "crash.kill"; "crash.rehome"; "crash.unaffected"; "crash.cancel";
    "crash.unsend_data"; "crash.dg_recovered"; "crash.rescue";
    "crash.data_loss"; "crash.reinit"; "crash.rebuild"; "crash.reissue";
  ]

(* The branches only a crash can reach; a crash-free exploration reports
   them dead by construction, so the dead report counts them as expected
   unless the run enabled crashes. *)
let crash_branches =
  [
    "deferred.recovered";
    "crash.kill"; "crash.rehome"; "crash.unaffected"; "crash.cancel";
    "crash.unsend_data"; "crash.dg_recovered"; "crash.rescue";
    "crash.data_loss"; "crash.reinit"; "crash.rebuild"; "crash.reissue";
  ]

(* Branches that are structurally unreachable in the abstraction and
   therefore expected to show up dead; listed so the dead report can
   separate expected rot from real rot. Two families:

   One-word, one-block artifacts (content aliasing and defensive
   mirrors that a single checked word cannot produce):
   - msg:upgrade_fwd: upgrades are home-served; the Fwd Upgrade
     constructor exists only as a violation path.
   - load.pdg_consume / load.private_upgrade / load.false_miss:
     a checked load on the only word of the only block either hits or
     takes the full miss path; the partial-line states these branches
     serve cannot arise.

   Ordered-delivery artifacts: under the constant-latency network
   (see [enabled_actions]) in the 2-node geometry, directory busy
   serializes the transactions whose overlap these branches absorb:
   - dir.read.serve_shared: home Shared with a remote invalid reader
     needs a third node; with two nodes every path that leaves home
     Shared also leaves the other node Shared (reads that downgrade the
     remote owner hand the data to the only other node).
   - inval.stale_ack: a stale invalidate needs the invalidate to
     overtake a later ownership grant to the same destination, which
     ordered delivery forbids.
   - inval.queued_on_downgrade / fwd.queued_on_downgrade /
     downgrade.replay: a message landing inside an open §3.4.3
     downgrade window needs a second transaction to race the window's
     intra-node downgrade round trip; the busy bit plus
     cheapest-transfer-only overtaking close that race here.
   - fwd.queued_on_miss / entry.serve_early / fwd.read.shared:
     a forward reaching a node that is itself mid-miss (or an owner
     already demoted to Shared) needs the directory's owner update to
     outrun the data reply it chases; with two nodes the only eligible
     requesters are stalled on their own entry.

   These hold for this geometry and delivery discipline, not for the
   full simulator: the dynamic litmus/fuzz harnesses do exercise the
   queued-forward and replay paths of lib/core/protocol.ml. *)
let expected_dead =
  [
    "msg:upgrade_fwd";
    "load.pdg_consume"; "load.private_upgrade"; "load.false_miss";
    "dir.read.serve_shared"; "inval.stale_ack";
    "inval.queued_on_downgrade"; "fwd.queued_on_downgrade";
    "downgrade.replay";
    "fwd.queued_on_miss"; "entry.serve_early"; "fwd.read.shared";
  ]
