(* Lock-order deadlock analysis (lockdep-style).

   The lock-acquisition graph has an edge a -> b whenever some
   processor acquires lock b while holding lock a. A cycle in the graph
   is a potential deadlock: there exist schedules in which the
   processors contributing the cycle's edges block each other forever,
   even if no executed schedule has deadlocked yet. The graph is
   collected from app/KV registrations by running their bodies under
   the {!observer} (the lock hooks fire on every acquisition with the
   holder known), or populated directly with {!add_edge}; cycle
   detection is a plain DFS with an explicit gray set, reporting one
   witness cycle per back edge, self-edges (re-acquisition of a held
   lock) included. *)

module Core = Shasta_core

type t = {
  edge_set : (int * int, unit) Hashtbl.t;
  mutable edge_order : (int * int) list;  (** newest first *)
  held : (int, int list) Hashtbl.t;  (** proc -> held locks, newest first *)
}

let create () =
  { edge_set = Hashtbl.create 64; edge_order = []; held = Hashtbl.create 8 }

let add_edge t ~held ~acquired =
  let e = (held, acquired) in
  if not (Hashtbl.mem t.edge_set e) then begin
    Hashtbl.add t.edge_set e ();
    t.edge_order <- e :: t.edge_order
  end

let edges t = List.rev t.edge_order

let observer t =
  let held_of proc = Option.value ~default:[] (Hashtbl.find_opt t.held proc) in
  {
    Core.Observer.nil with
    on_lock_acquired =
      (fun ~proc ~lock ~now:_ ->
        let held = held_of proc in
        List.iter (fun h -> add_edge t ~held:h ~acquired:lock) held;
        Hashtbl.replace t.held proc (lock :: held));
    on_lock_released =
      (fun ~proc ~lock ~now:_ ->
        let rec drop = function
          | [] -> []
          | l :: rest -> if l = lock then rest else l :: drop rest
        in
        Hashtbl.replace t.held proc (drop (held_of proc)));
  }

(* ------------------------------------------------------------------ *)
(* Cycle detection.                                                    *)

let cycles t =
  let adj : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let nodes = ref [] in
  let note n = if not (Hashtbl.mem adj n) then begin
      Hashtbl.add adj n [];
      nodes := n :: !nodes
    end
  in
  List.iter
    (fun (a, b) ->
      note a;
      note b;
      Hashtbl.replace adj a (b :: Hashtbl.find adj a))
    (edges t);
  let color : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (* 1 = on the current DFS path, 2 = done *)
  let found = ref [] in
  let rec dfs path n =
    Hashtbl.replace color n 1;
    List.iter
      (fun m ->
        match Hashtbl.find_opt color m with
        | Some 1 ->
          (* Back edge n -> m: the cycle is the path suffix m..n. *)
          let rec upto = function
            | [] -> []
            | x :: rest -> if x = m then [ x ] else x :: upto rest
          in
          found := List.rev (upto path) :: !found
        | Some _ -> ()
        | None -> dfs (m :: path) m)
      (List.rev (Hashtbl.find adj n));
    Hashtbl.replace color n 2
  in
  List.iter
    (fun n -> if not (Hashtbl.mem color n) then dfs [ n ] n)
    (List.sort compare !nodes);
  List.rev !found

let describe_cycle cycle =
  match cycle with
  | [ l ] -> Printf.sprintf "lock %d re-acquired while held" l
  | _ ->
    String.concat " -> "
      (List.map string_of_int (cycle @ [ List.hd cycle ]))
    |> Printf.sprintf "lock-order cycle: %s"
