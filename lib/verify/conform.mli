(** Conformance between real runs and the abstract model: every
    Observer event of a 2-node run, projected to the model's
    home-relative label space, must be a member of the clean model's
    exhaustively-enumerated label vocabulary. Sound for 2-node configs
    only (the litmus geometry). *)

type t = {
  observer : Shasta_core.Observer.t;
      (** install with [Dsm.add_observer] before the run *)
  mismatches : unit -> string list;
      (** distinct out-of-model labels, first-seen order; empty =
          conformant *)
  events : unit -> int;  (** total projected events checked *)
}

val make : labels:(Model.label, unit) Hashtbl.t -> Shasta_core.Machine.t -> t

val reference : ?bound:int -> unit -> Reach.result
(** Memoized clean-model exploration (default channel bound 2). Raises
    [Failure] if the clean model violates its own invariants. *)

val reference_labels : ?bound:int -> unit -> (Model.label, unit) Hashtbl.t
