(* Compiled access programs for the app kernels' hot loops.

   Each builder flattens one app's innermost loop body into a
   {!Shasta_core.Dsm.Prog} instruction list whose memory-op order and
   floating-point expression shapes replicate the closure formulation it
   replaces exactly (OCaml evaluates operator arguments right to left,
   so e.g. [a +. (b *. dt)] issues the [b] load first) — the observed
   interpreter replays the closure's hook stream verbatim and the values
   are bit-identical. Programs carry a per-processor register file:
   build them inside the parallel body, once per [ctx], never shared. *)

module Dsm = Shasta_core.Dsm
open Dsm.Prog

(* Water integrate (both water-nsq and water-sp), one molecule per run:
   for d in 0..2, advance velocity by the accumulated force, advance the
   wrapped position, clear the force. Raw ops; run inside the molecule's
   batch with [base0] = the molecule's first field. *)
let water_integrate ~dt ~box ~flop_cycles =
  let instrs =
    List.concat
      (List.init 3 (fun d ->
           [
             Ldf (0, 0, 8 * (6 + d));
             Mulk (0, 0, 0) (* f *. dt *);
             Ldf (1, 0, 8 * (3 + d));
             Add (1, 1, 0) (* v' = v +. f*.dt *);
             Stf (1, 0, 8 * (3 + d));
             Mulk (0, 1, 0) (* v' *. dt *);
             Ldf (2, 0, 8 * d);
             Add (2, 2, 0) (* x +. v'*.dt *);
             Wrap (2, 1);
             Stf (2, 0, 8 * d);
             Movk (3, 2);
             Stf (3, 0, 8 * (6 + d)) (* f <- 0 *);
             Charge (4 * flop_cycles);
           ]))
  in
  compile ~consts:[| dt; box; 0.0 |] ~nregs:4 instrs

(* Barnes integrate: the same velocity/position update without the
   periodic wrap, over checked accesses (the real Barnes does not batch
   its integrate phase). [base0] = the body's first slot address. *)
let barnes_integrate ~dt ~flop_cycles =
  let instrs =
    List.concat
      (List.init 3 (fun d ->
           [
             Cldf (0, 0, 8 * (6 + d));
             Mulk (0, 0, 0);
             Cldf (1, 0, 8 * (3 + d));
             Add (1, 1, 0);
             Cstf (1, 0, 8 * (3 + d));
             Mulk (0, 1, 0);
             Cldf (2, 0, 8 * d);
             Add (2, 2, 0);
             Cstf (2, 0, 8 * d);
             Charge (4 * flop_cycles);
           ]))
  in
  compile ~consts:[| dt |] ~nregs:3 instrs

let rec range_by2 j n = if j > n then [] else j :: range_by2 (j + 2) n

(* Ocean red-black SOR row: one batched stencil update per matching-
   parity column. [jstart] (1 or 2) selects the column parity; bases:
   [base0] = row i-1, [base1] = row i+1, [base2] = row i; [aux] = the
   pre-read right-hand-side row. *)
let ocean_row ~n ~jstart ~omega ~cell_cycles =
  let instrs =
    List.concat_map
      (fun j ->
        [
          (* Loads in the closure's right-to-left order: (i,j+1),
             (i,j-1), (i+1,j), (i-1,j). *)
          Ldf (3, 2, 8 * (j + 1));
          Ldf (2, 2, 8 * (j - 1));
          Ldf (1, 1, 8 * j);
          Ldf (0, 0, 8 * j);
          Add (0, 0, 1);
          Add (0, 0, 2);
          Add (0, 0, 3);
          Auxld (4, j);
          Sub (0, 0, 4);
          Mulk (0, 0, 0) (* 0.25 *);
          Ldf (5, 2, 8 * j) (* old *);
          Mulk (5, 5, 1) (* (1-omega) *. old *);
          Mulk (0, 0, 2) (* omega *. v *);
          Add (5, 5, 0);
          Stf (5, 2, 8 * j);
          Charge cell_cycles;
        ])
      (range_by2 jstart n)
  in
  compile ~consts:[| 0.25; 1.0 -. omega; omega |] ~nregs:6 instrs

(* Ocean right-hand-side row prefetch: checked loads of the matching-
   parity columns into [aux] (the host-side coefficient row). [base0] =
   the rhs row's first cell. *)
let ocean_rhs_row ~n ~jstart =
  let instrs =
    List.concat_map
      (fun j -> [ Cldf (0, 0, 8 * j); Auxst (0, j) ])
      (range_by2 jstart n)
  in
  compile ~nregs:1 instrs

(* FMM expansion-vector transfers: [k] raw loads into [aux], or [k] raw
   stores out of it. [base0] = the vector's first slot address. *)
let vec_read ~k =
  compile ~nregs:1
    (List.concat (List.init k (fun i -> [ Ldf (0, 0, 8 * i); Auxst (0, i) ])))

let vec_write ~k =
  compile ~nregs:1
    (List.concat (List.init k (fun i -> [ Auxld (0, i); Stf (0, 0, 8 * i) ])))

(* ------------------------------------------------------------------ *)

(* Every program shape the apps compile, built with the parameters the
   default-scale instances pass (the literals mirror the private
   constants of water_nsq/water_sp, barnes, ocean and fmm), paired with
   the extents of the regions the app runs it against. The static
   verifier proves each one in-bounds, aligned and charge-consistent
   before any simulation uses it. *)
let manifest () =
  let spec = Shasta_verify.Progcheck.spec in
  (* Molecule/body record: 3 positions, 3 velocities, 3 forces. *)
  let mol = 8 * 9 in
  (* Ocean interior size at default scale; rows have n + 2 cells. *)
  let n = 256 in
  let row = 8 * (n + 2) in
  let grid = spec ~base0:row ~base1:row ~base2:row ~aux:(n + 1) () in
  (* FMM expansion vectors: 2 floats per term, p = 12. *)
  let k = 2 * 13 in
  let vec = spec ~base0:(8 * k) ~aux:k () in
  [
    ( "water.integrate",
      water_integrate ~dt:0.004 ~box:6.0 ~flop_cycles:6,
      spec ~base0:mol () );
    ("barnes.integrate", barnes_integrate ~dt:0.02 ~flop_cycles:6,
      spec ~base0:mol ());
    ("ocean.sor-row.red", ocean_row ~n ~jstart:2 ~omega:1.5 ~cell_cycles:60,
      grid);
    ("ocean.sor-row.black", ocean_row ~n ~jstart:1 ~omega:1.5 ~cell_cycles:60,
      grid);
    ("ocean.rhs-row.red", ocean_rhs_row ~n ~jstart:2,
      spec ~base0:row ~aux:(n + 1) ());
    ("ocean.rhs-row.black", ocean_rhs_row ~n ~jstart:1,
      spec ~base0:row ~aux:(n + 1) ());
    ("fmm.vec-read", vec_read ~k, vec);
    ("fmm.vec-write", vec_write ~k, vec);
    (* LU's daxpy row lives in Dsm.Prog itself; bsz = 16 is both lu
       variants' block size. *)
    ( "lu.fms-row",
      Dsm.Prog.fms_row ~len:16 ~cost:6,
      spec ~base0:(8 * 16) ~base1:(8 * 16) () );
    ( "lu.fms-row.2x",
      Dsm.Prog.fms_row ~len:16 ~cost:12,
      spec ~base0:(8 * 16) ~base1:(8 * 16) () );
  ]
