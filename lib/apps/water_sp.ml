module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module W = Water_common

let cutoff = 2.2
let dt = 0.004
let steps = 2
let cell_cap = 32

let cells_for n = if n <= 300 then 4 else 5
let box_for c = float_of_int c *. 2.2

(* Cell lists are double-buffered: each step rebuilds the owner's lists
   from the previous step's lists of the cell and its 26 neighbours (a
   molecule can only migrate between adjacent cells in one step), which
   is the incremental structure of the real Water-Spatial — a full
   rescan of every molecule would serialize on reading all positions. *)

let cell_of ~c ~box px py pz =
  let idx v = min (c - 1) (int_of_float (v /. box *. float_of_int c)) in
  (((idx pz * c) + idx py) * c) + idx px

let neighbours ~c cidx =
  let wrap d = ((d mod c) + c) mod c in
  let cz = cidx / (c * c) and cy = cidx / c mod c and cx = cidx mod c in
  let acc = ref [] in
  for dz = -1 to 1 do
    for dy = -1 to 1 do
      for dx = -1 to 1 do
        acc := ((((wrap (cz + dz) * c) + wrap (cy + dy)) * c) + wrap (cx + dx)) :: !acc
      done
    done
  done;
  List.rev !acc

(* Sequential reference mirroring the parallel arithmetic order exactly. *)
let reference_run mols n ~c ~box =
  let f = W.fields in
  let ncells = c * c * c in
  let counts = Array.init 2 (fun _ -> Array.make ncells 0) in
  let lists = Array.init 2 (fun _ -> Array.make_matrix ncells cell_cap 0) in
  let mol_cell i = cell_of ~c ~box mols.(i * f) mols.((i * f) + 1) mols.((i * f) + 2) in
  (* initial build, molecule-index order, into buffer 0 *)
  for i = 0 to n - 1 do
    let cidx = mol_cell i in
    if counts.(0).(cidx) < cell_cap then begin
      lists.(0).(cidx).(counts.(0).(cidx)) <- i;
      counts.(0).(cidx) <- counts.(0).(cidx) + 1
    end
  done;
  for s = 1 to steps do
    let prev = (s - 1) mod 2 and cur = s mod 2 in
    (* rebuild from candidates *)
    for cidx = 0 to ncells - 1 do
      counts.(cur).(cidx) <- 0;
      List.iter
        (fun nidx ->
          for m = 0 to counts.(prev).(nidx) - 1 do
            let i = lists.(prev).(nidx).(m) in
            if mol_cell i = cidx && counts.(cur).(cidx) < cell_cap then begin
              lists.(cur).(cidx).(counts.(cur).(cidx)) <- i;
              counts.(cur).(cidx) <- counts.(cur).(cidx) + 1
            end
          done)
        (neighbours ~c cidx)
    done;
    (* forces *)
    for cidx = 0 to ncells - 1 do
      for m = 0 to counts.(cur).(cidx) - 1 do
        let i = lists.(cur).(cidx).(m) in
        let mi = { W.px = mols.(i * f); py = mols.((i * f) + 1); pz = mols.((i * f) + 2) } in
        List.iter
          (fun nidx ->
            for mm = 0 to counts.(cur).(nidx) - 1 do
              let j = lists.(cur).(nidx).(mm) in
              if j <> i then
                let mj = { W.px = mols.(j * f); py = mols.((j * f) + 1); pz = mols.((j * f) + 2) } in
                match W.pair_force ~box ~cutoff mi mj with
                | None -> ()
                | Some (fx, fy, fz) ->
                  mols.((i * f) + 6) <- mols.((i * f) + 6) +. fx;
                  mols.((i * f) + 7) <- mols.((i * f) + 7) +. fy;
                  mols.((i * f) + 8) <- mols.((i * f) + 8) +. fz
            done)
          (neighbours ~c cidx)
      done
    done;
    (* integrate, cell order (each molecule is in exactly one list) *)
    for cidx = 0 to ncells - 1 do
      for m = 0 to counts.(cur).(cidx) - 1 do
        let i = lists.(cur).(cidx).(m) in
        let wrap_pos q = if q < 0.0 then q +. box else if q >= box then q -. box else q in
        for d = 0 to 2 do
          mols.((i * f) + 3 + d) <-
            mols.((i * f) + 3 + d) +. (mols.((i * f) + 6 + d) *. dt);
          mols.((i * f) + d) <-
            wrap_pos (mols.((i * f) + d) +. (mols.((i * f) + 3 + d) *. dt));
          mols.((i * f) + 6 + d) <- 0.0
        done
      done
    done
  done

let instance ?(vg = false) ?(scale = 1.0) () =
  ignore vg;
  (* Water-Sp has no Table-2 granularity hint. *)
  let n = App.scaled scale 512 in
  let c = cells_for n in
  let box = box_for c in
  let ncells = c * c * c in
  let cell_bytes = (1 + cell_cap) * 8 in
  {
    App.name = "water-sp";
    workload = Printf.sprintf "%d molecules, %d^3 cells, %d steps" n c steps;
    heap_bytes = (n * W.mol_bytes) + (2 * ncells * cell_bytes) + (1 lsl 16);
    setup =
      (fun h ->
        let prng = Shasta_util.Prng.create 101 in
        let reference = W.init_molecules prng ~n ~box in
        let mols = Dsm.alloc h (n * W.mol_bytes) in
        let fld i k = mols + (W.mol_bytes * i) + (8 * k) in
        let buffers = Array.init 2 (fun _ -> Dsm.alloc h (ncells * cell_bytes)) in
        let cell_count buf cidx = buffers.(buf) + (cidx * cell_bytes) in
        let cell_slot buf cidx s = buffers.(buf) + (cidx * cell_bytes) + (8 * (1 + s)) in
        let np = (Dsm.config h).Config.nprocs in
        (* Cells partitioned linearly and homed at their owners. *)
        let cell_lo p = p * ncells / np and cell_hi p = (p + 1) * ncells / np in
        for buf = 0 to 1 do
          for p = 0 to np - 1 do
            if cell_hi p > cell_lo p then
              Dsm.place h
                ~addr:(cell_count buf (cell_lo p))
                ~len:((cell_hi p - cell_lo p) * cell_bytes)
                ~proc:p
          done
        done;
        for i = 0 to n - 1 do
          for k = 0 to W.fields - 1 do
            Dsm.poke_float h (fld i k) reference.((i * W.fields) + k)
          done
        done;
        (* Pre-built initial lists in buffer 0, molecule-index order. *)
        let init_counts = Array.make ncells 0 in
        for i = 0 to n - 1 do
          let cidx =
            cell_of ~c ~box
              reference.(i * W.fields)
              reference.((i * W.fields) + 1)
              reference.((i * W.fields) + 2)
          in
          if init_counts.(cidx) < cell_cap then begin
            Dsm.poke_int h (cell_slot 0 cidx init_counts.(cidx)) i;
            init_counts.(cidx) <- init_counts.(cidx) + 1
          end
        done;
        Array.iteri (fun cidx cnt -> Dsm.poke_int h (cell_count 0 cidx) cnt) init_counts;
        let bar = Dsm.alloc_barrier h in
        let body ctx =
          let p = Dsm.pid ctx in
          let lo = cell_lo p and hi = cell_hi p in
          let integ =
            Kernels.water_integrate ~dt ~box ~flop_cycles:W.flop_cycles
          in
          let mol_cell i =
            let coord d = Dsm.load_float ctx (fld i d) in
            let r = cell_of ~c ~box (coord 0) (coord 1) (coord 2) in
            Dsm.compute ctx (6 * W.flop_cycles);
            r
          in
          for s = 1 to steps do
            let prev = (s - 1) mod 2 and cur = s mod 2 in
            (* Rebuild own cells from the previous lists of the 3x3x3
               neighbourhood. *)
            for cidx = lo to hi - 1 do
              Dsm.store_int ctx (cell_count cur cidx) 0;
              List.iter
                (fun nidx ->
                  let ncnt = Dsm.load_int ctx (cell_count prev nidx) in
                  for m = 0 to ncnt - 1 do
                    let i = Dsm.load_int ctx (cell_slot prev nidx m) in
                    if mol_cell i = cidx then begin
                      let cnt = Dsm.load_int ctx (cell_count cur cidx) in
                      if cnt < cell_cap then begin
                        Dsm.store_int ctx (cell_slot cur cidx cnt) i;
                        Dsm.store_int ctx (cell_count cur cidx) (cnt + 1)
                      end
                    end
                  done)
                (neighbours ~c cidx)
            done;
            Dsm.barrier ctx bar;
            (* Forces for molecules in own cells. *)
            for cidx = lo to hi - 1 do
              let cnt = Dsm.load_int ctx (cell_count cur cidx) in
              for m = 0 to cnt - 1 do
                let i = Dsm.load_int ctx (cell_slot cur cidx m) in
                let mi =
                  {
                    W.px = Dsm.load_float ctx (fld i 0);
                    py = Dsm.load_float ctx (fld i 1);
                    pz = Dsm.load_float ctx (fld i 2);
                  }
                in
                let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
                List.iter
                  (fun nidx ->
                    let ncnt = Dsm.load_int ctx (cell_count cur nidx) in
                    for mm = 0 to ncnt - 1 do
                      let j = Dsm.load_int ctx (cell_slot cur nidx mm) in
                      if j <> i then begin
                        let mj =
                          {
                            W.px = Dsm.load_float ctx (fld j 0);
                            py = Dsm.load_float ctx (fld j 1);
                            pz = Dsm.load_float ctx (fld j 2);
                          }
                        in
                        Dsm.compute ctx W.pair_flops;
                        match W.pair_force ~box ~cutoff mi mj with
                        | None -> ()
                        | Some (gx, gy, gz) ->
                          fx := !fx +. gx;
                          fy := !fy +. gy;
                          fz := !fz +. gz
                      end
                    done)
                  (neighbours ~c cidx);
                Dsm.store_float ctx (fld i 6) (Dsm.load_float ctx (fld i 6) +. !fx);
                Dsm.store_float ctx (fld i 7) (Dsm.load_float ctx (fld i 7) +. !fy);
                Dsm.store_float ctx (fld i 8) (Dsm.load_float ctx (fld i 8) +. !fz)
              done
            done;
            Dsm.barrier ctx bar;
            (* Integrate molecules in own cells. *)
            for cidx = lo to hi - 1 do
              let cnt = Dsm.load_int ctx (cell_count cur cidx) in
              for m = 0 to cnt - 1 do
                let i = Dsm.load_int ctx (cell_slot cur cidx m) in
                Dsm.batch ctx
                  [ (fld i 0, W.mol_bytes, Dsm.W) ]
                  (fun () ->
                    Dsm.Prog.run ctx integ ~s:0.0 ~aux:Dsm.Prog.no_aux
                      ~base0:(fld i 0) ~base1:0 ~base2:0)
              done
            done;
            Dsm.barrier ctx bar
          done
        in
        reference_run reference n ~c ~box;
        let verify h =
          let worst = ref 0.0 in
          for i = 0 to n - 1 do
            for d = 0 to 2 do
              let got = Dsm.peek_float h (fld i d) in
              let want = reference.((i * W.fields) + d) in
              worst := Float.max !worst (Float.abs (got -. want))
            done
          done;
          if !worst < 1e-6 then
            App.pass ~detail:(Printf.sprintf "max pos err %.2e" !worst)
          else App.fail ~detail:(Printf.sprintf "max pos err %.2e" !worst)
        in
        (body, verify));
  }
