(** Catalogue of the registered workloads: the nine SPLASH-2 kernels
    plus the DSM-backed key-value store. *)

val all : (string * App.maker) list
(** The paper's Table 1 order — barnes, fmm, lu, lu-contig, ocean,
    raytrace, volrend, water-nsq, water-sp — followed by "kv". *)

val find : string -> App.maker
(** Raises [Not_found] for unknown names. The first lookup statically
    verifies every compiled kernel program ({!verify_kernels}) and
    raises [Failure] if any is rejected, so a bad kernel fails before
    any simulation runs it. *)

val kernel_manifest :
  unit ->
  (string * Shasta_core.Dsm.Prog.t * Shasta_verify.Progcheck.spec) list
(** Every compiled access program the registered apps can hand to the
    engine — {!Kernels.manifest} plus {!Kv.prog_manifest} — with the
    extents each runs against. *)

val verify_kernels : unit -> (string * Shasta_verify.Progcheck.finding) list
(** Static findings over {!kernel_manifest}; empty = all verified. *)

val names : string list

val splash2 : string list
(** Just the nine paper applications — what the paper-reproduction
    experiment tables iterate, so their rendered output is independent
    of later additions to [all]. *)

val table2 : string list
(** The six applications with a variable-granularity hint (Table 2). *)

val table3 : string list
(** The seven applications measured at larger problem sizes (Table 3). *)
