let splash2_apps : (string * App.maker) list =
  [
    ("barnes", Barnes.instance);
    ("fmm", Fmm.instance);
    ("lu", Lu.instance);
    ("lu-contig", Lu_contig.instance);
    ("ocean", Ocean.instance);
    ("raytrace", Raytrace.instance);
    ("volrend", Volrend.instance);
    ("water-nsq", Water_nsq.instance);
    ("water-sp", Water_sp.instance);
  ]

let all : (string * App.maker) list = splash2_apps @ [ ("kv", Kv.instance) ]
let find name = List.assoc name all
let names = List.map fst all
let splash2 = List.map fst splash2_apps
let table2 = [ "barnes"; "fmm"; "lu"; "lu-contig"; "volrend"; "water-nsq" ]

let table3 =
  [ "barnes"; "fmm"; "lu"; "lu-contig"; "ocean"; "water-nsq"; "water-sp" ]
