let splash2_apps : (string * App.maker) list =
  [
    ("barnes", Barnes.instance);
    ("fmm", Fmm.instance);
    ("lu", Lu.instance);
    ("lu-contig", Lu_contig.instance);
    ("ocean", Ocean.instance);
    ("raytrace", Raytrace.instance);
    ("volrend", Volrend.instance);
    ("water-nsq", Water_nsq.instance);
    ("water-sp", Water_sp.instance);
  ]

let all : (string * App.maker) list = splash2_apps @ [ ("kv", Kv.instance) ]

(* ------------------------------------------------------------------ *)
(* Registration-time kernel verification. Every compiled access
   program an app can hand to the engine is statically checked once per
   process — in-bounds, aligned, well-formed, charge-consistent — the
   first time an app is looked up; a bad kernel fails loudly before any
   simulation runs it. *)

let kernel_manifest () = Kernels.manifest () @ Kv.prog_manifest ()

let verify_kernels () =
  List.concat_map
    (fun (name, prog, spec) ->
      List.map
        (fun f -> (name, f))
        (Shasta_verify.Progcheck.check_prog ~spec prog))
    (kernel_manifest ())

let kernels_ok =
  lazy
    (match verify_kernels () with
    | [] -> ()
    | findings ->
      let lines =
        List.map
          (fun (name, f) ->
            Printf.sprintf "%s: %s" name
              (Shasta_verify.Progcheck.describe_finding f))
          findings
      in
      failwith
        ("Registry: kernel access programs failed static verification:\n"
        ^ String.concat "\n" lines))

let find name =
  Lazy.force kernels_ok;
  List.assoc name all
let names = List.map fst all
let splash2 = List.map fst splash2_apps
let table2 = [ "barnes"; "fmm"; "lu"; "lu-contig"; "volrend"; "water-nsq" ]

let table3 =
  [ "barnes"; "fmm"; "lu"; "lu-contig"; "ocean"; "water-nsq"; "water-sp" ]
