module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Prng = Shasta_util.Prng

type t = {
  base : int;
  stride : int;  (** bytes per bucket: 8 * (1 + 2*bcap) *)
  nbuckets : int;
  bcap : int;
  records : int;
  slots : int array;  (** key -> slot within its bucket, -1 if absent *)
  locks : int array;
  appended : int array;  (** successful runtime inserts per bucket *)
  preload : int array;  (** preload occupancy per bucket *)
}

(* SplitMix64-style finalizer: spreads sequential keys across buckets so
   occupancy stays near-multinomial whatever the key distribution. *)
let mix k =
  let open Int64 in
  let z = of_int k in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  Stdlib.(to_int z land max_int)

let bucket_idx nbuckets k = mix k mod nbuckets

type plan = { nbuckets : int; bcap : int; bytes : int }

let occupancy ~nbuckets ~records =
  let occ = Array.make nbuckets 0 in
  for k = 0 to records - 1 do
    let b = bucket_idx nbuckets k in
    occ.(b) <- occ.(b) + 1
  done;
  occ

let plan ?(slack = 2) ~nbuckets ~records () =
  if nbuckets < 1 then invalid_arg "Kv.plan: nbuckets";
  if records < 1 then invalid_arg "Kv.plan: records";
  let occ = occupancy ~nbuckets ~records in
  let bcap = Array.fold_left max 0 occ + slack in
  { nbuckets; bcap; bytes = nbuckets * 8 * (1 + (2 * bcap)) }

let records (t : t) = t.records
let nbuckets (t : t) = t.nbuckets
let bcap (t : t) = t.bcap
let bucket_of (t : t) k = bucket_idx t.nbuckets k
let slot_of t k = t.slots.(k)
let appended t = t.appended
let preloaded t = t.preload

let bucket_addr t b = t.base + (b * t.stride)
let count_off = 0
let key_off s = 8 * (1 + (2 * s))
let val_off s = 8 * (2 + (2 * s))
let count_addr t b = bucket_addr t b + count_off
let key_addr t b s = bucket_addr t b + key_off s
let val_addr t b s = bucket_addr t b + val_off s

let create h ?block_size ?(slack = 2) ~nbuckets ~records ~extra_keys ~value0 ()
    =
  let { nbuckets; bcap; bytes } = plan ~slack ~nbuckets ~records () in
  let base = Dsm.alloc h ?block_size bytes in
  let locks = Array.init nbuckets (fun _ -> Dsm.alloc_lock h) in
  let slots = Array.make (records + extra_keys) (-1) in
  let occ = Array.make nbuckets 0 in
  let t =
    {
      base;
      stride = 8 * (1 + (2 * bcap));
      nbuckets;
      bcap;
      records;
      slots;
      locks;
      appended = Array.make nbuckets 0;
      preload = occ;
    }
  in
  for k = 0 to records - 1 do
    let b = bucket_idx nbuckets k in
    let s = occ.(b) in
    occ.(b) <- s + 1;
    slots.(k) <- s;
    Dsm.poke_float h (key_addr t b s) (float_of_int k);
    Dsm.poke_float h (val_addr t b s) (value0 k)
  done;
  for b = 0 to nbuckets - 1 do
    Dsm.poke_float h (count_addr t b) (float_of_int occ.(b))
  done;
  t

let hash_cost = 8
let charge_hash _t ctx = Dsm.compute ctx hash_cost
let lock t ctx b = Dsm.lock ctx t.locks.(b)
let unlock t ctx b = Dsm.unlock ctx t.locks.(b)

let probe_in t ctx k =
  let b = bucket_of t k in
  let n = int_of_float (Dsm.load_float ctx (count_addr t b)) in
  let fk = float_of_int k in
  let rec probe s =
    if s >= n then `Absent n
    else if Dsm.load_float ctx (key_addr t b s) = fk then `Found s
    else probe (s + 1)
  in
  probe 0

let read_slot t ctx ~bucket ~slot = Dsm.load_float ctx (val_addr t bucket slot)

let write_slot t ctx ~bucket ~slot v =
  Dsm.store_float ctx (val_addr t bucket slot) v

let append_in t ctx ~key v =
  let b = bucket_of t key in
  match probe_in t ctx key with
  | `Found _ -> invalid_arg "Kv.append_in: key already present"
  | `Absent n ->
    if n >= t.bcap then None
    else begin
      Dsm.store_float ctx (key_addr t b n) (float_of_int key);
      Dsm.store_float ctx (val_addr t b n) v;
      Dsm.store_float ctx (count_addr t b) (float_of_int (n + 1));
      (* Host index updates are ordered across processors by the bucket
         lock the caller holds. *)
      t.slots.(key) <- n;
      t.appended.(b) <- t.appended.(b) + 1;
      Some n
    end

(* Compiled probe for a key at slot [s]: the exact access sequence of
   [probe_in] when it finds the key — count cell, then keys 0..s. *)
let probe_instrs s =
  let open Dsm.Prog in
  Cldf (0, 0, count_off)
  :: List.init (s + 1) (fun j -> Cldf (0, 0, key_off j))

let progs_get_cap bcap =
  Array.init bcap (fun s ->
      Dsm.Prog.compile ~nregs:2
        (probe_instrs s
        @ [ Dsm.Prog.Cldf (0, 0, val_off s); Dsm.Prog.Auxst (0, 1) ]))

let progs_put_cap bcap =
  Array.init bcap (fun s ->
      Dsm.Prog.compile ~nregs:2
        (probe_instrs s
        @ [ Dsm.Prog.Auxld (1, 0); Dsm.Prog.Cstf (1, 0, val_off s) ]))

let progs_rmw_cap bcap =
  Array.init bcap (fun s ->
      Dsm.Prog.compile ~nregs:2
        (probe_instrs s
        @ Dsm.Prog.
            [
              Cldf (0, 0, val_off s);
              Auxld (1, 0);
              Add (0, 0, 1);
              Cstf (0, 0, val_off s);
            ]))

let progs_get (t : t) = progs_get_cap t.bcap
let progs_put (t : t) = progs_put_cap t.bcap
let progs_rmw (t : t) = progs_rmw_cap t.bcap

(* The op-class programs at a representative capacity, paired with the
   extents they run against, for the static verifier. Any capacity
   exercises every offset shape (slot [s] touches the count cell, keys
   0..[s] and value [s]), so one small table stands in for them all. *)
let prog_manifest () =
  let bcap = 4 in
  let stride = 8 * (1 + (2 * bcap)) in
  let spec = Shasta_verify.Progcheck.spec ~base0:stride ~aux:2 () in
  let table kind ps =
    Array.to_list
      (Array.mapi
         (fun s p -> (Printf.sprintf "kv.%s.slot%d" kind s, p, spec))
         ps)
  in
  table "get" (progs_get_cap bcap)
  @ table "put" (progs_put_cap bcap)
  @ table "rmw" (progs_rmw_cap bcap)

let run_prog t ctx p ~bucket ~aux =
  Dsm.Prog.run ctx p ~s:0.0 ~aux ~base0:(bucket_addr t bucket) ~base1:0
    ~base2:0

let peek_value t h k =
  let s = t.slots.(k) in
  if s < 0 then invalid_arg "Kv.peek_value: key absent";
  Dsm.peek_float h (val_addr t (bucket_of t k) s)

let peek_count t h b = Dsm.peek_float h (count_addr t b)

(* The registered app: a mixed get/put/rmw/scan workload over uniform
   keys, verified against a host shadow copy maintained under the same
   bucket locks (so the shadow sees writes in lock order — the final
   value of every key must match the last write in that order). *)
let instance ?(vg = false) ?(scale = 1.0) () =
  let records = App.scaled scale 2000 in
  let nbuckets = min 256 (max 16 (records / 6)) in
  let rounds = App.scaled scale 250 in
  let p = plan ~nbuckets ~records () in
  let value0 k = float_of_int ((k * 3) + 1) in
  {
    App.name = "kv";
    workload =
      Printf.sprintf
        "%d records in %d buckets (cap %d), %d mixed get/put/rmw/scan \
         ops/proc%s"
        records nbuckets p.bcap rounds
        (if vg then ", 256B bucket blocks" else "");
    heap_bytes = p.bytes + 65536;
    setup =
      (fun h ->
        let t =
          create h
            ?block_size:(if vg then Some 256 else None)
            ~nbuckets ~records ~extra_keys:0 ~value0 ()
        in
        let np = (Dsm.config h).Config.nprocs in
        let shadow = Array.init records value0 in
        let mism = Array.make np 0 in
        let get_check ctx p k =
          charge_hash t ctx;
          let b = bucket_of t k in
          lock t ctx b;
          (match probe_in t ctx k with
          | `Found s ->
            if read_slot t ctx ~bucket:b ~slot:s <> shadow.(k) then
              mism.(p) <- mism.(p) + 1
          | `Absent _ -> mism.(p) <- mism.(p) + 1);
          unlock t ctx b
        in
        let body ctx =
          let p = Dsm.pid ctx in
          let prng = Dsm.prng ctx in
          for i = 1 to rounds do
            let c = Prng.int prng 100 in
            let k = Prng.int prng records in
            if c < 50 then get_check ctx p k
            else if c < 80 then begin
              let v = float_of_int ((p * 1_000_000) + i) in
              charge_hash t ctx;
              let b = bucket_of t k in
              lock t ctx b;
              (match probe_in t ctx k with
              | `Found s ->
                write_slot t ctx ~bucket:b ~slot:s v;
                shadow.(k) <- v
              | `Absent _ -> mism.(p) <- mism.(p) + 1);
              unlock t ctx b
            end
            else if c < 95 then begin
              charge_hash t ctx;
              let b = bucket_of t k in
              lock t ctx b;
              (match probe_in t ctx k with
              | `Found s ->
                let v = read_slot t ctx ~bucket:b ~slot:s +. 1.0 in
                write_slot t ctx ~bucket:b ~slot:s v;
                shadow.(k) <- shadow.(k) +. 1.0
              | `Absent _ -> mism.(p) <- mism.(p) + 1);
              unlock t ctx b
            end
            else begin
              let len = 1 + Prng.int prng 4 in
              for j = 0 to len - 1 do
                get_check ctx p ((k + j) mod records)
              done
            end
          done
        in
        let verify h =
          let bad = Array.fold_left ( + ) 0 mism in
          if bad > 0 then
            App.fail
              ~detail:(Printf.sprintf "%d read-oracle mismatches" bad)
          else begin
            let stale = ref 0 in
            for k = 0 to records - 1 do
              if peek_value t h k <> shadow.(k) then incr stale
            done;
            let badc = ref 0 in
            for b = 0 to nbuckets - 1 do
              if peek_count t h b <> float_of_int t.preload.(b) then
                incr badc
            done;
            if !stale > 0 || !badc > 0 then
              App.fail
                ~detail:
                  (Printf.sprintf "%d stale values, %d bad bucket counts"
                     !stale !badc)
            else
              App.pass
                ~detail:
                  (Printf.sprintf "%d keys match the lock-order shadow"
                     records)
          end
        in
        (body, verify));
  }
