(** DSM-backed concurrent hash table — the tenth app ("kv").

    A fixed-geometry open hash table living entirely in simulated shared
    memory: [nbuckets] buckets, each a contiguous run of 8-byte cells
    [count; key0; val0; key1; val1; ...] with capacity [bcap] slots, one
    {!Shasta_core.Dsm} lock per bucket. Every cell is a float (keys are
    small integers, exactly representable), so the probe sequences of
    get/put/rmw compile to checked {!Shasta_core.Dsm.Prog} access
    programs when the layout is static (no inserts) — the YCSB harness'
    fast path.

    Two access layers:
    - {e primitives} ([probe_in], [read_slot], [write_slot],
      [append_in]) that assume the caller holds the bucket's lock — the
      YCSB harness composes these with its own oracle bookkeeping inside
      the critical section;
    - a registered {!App.maker} ([instance]) that drives a mixed
      get/put/rmw/scan workload from the per-processor PRNG and verifies
      against a host-side shadow copy updated under the same locks (a
      per-key sequential-consistency oracle: the final value of every
      key must be the last write in lock order). *)

module Dsm := Shasta_core.Dsm

type t

type plan = { nbuckets : int; bcap : int; bytes : int }
(** Table geometry, computable before a machine exists (for
    [App.heap_bytes]): [bcap] is the deepest preload bucket plus
    [slack] spare slots for runtime inserts; [bytes] the shared-heap
    footprint of the bucket region. *)

val plan : ?slack:int -> nbuckets:int -> records:int -> unit -> plan
(** Deterministic in (nbuckets, records): replays the preload hash
    assignment host-side. Default [slack] 2. *)

val create :
  Dsm.handle ->
  ?block_size:int ->
  ?slack:int ->
  nbuckets:int ->
  records:int ->
  extra_keys:int ->
  value0:(int -> float) ->
  unit ->
  t
(** Allocate the bucket region and per-bucket locks, preload keys
    [0 .. records-1] (key [k] born with [value0 k] at its home) and
    build the host-side key -> slot index. [extra_keys] reserves index
    room for runtime [append_in] keys [records .. records+extra_keys-1].
    Setup phase only. *)

val records : t -> int
val nbuckets : t -> int
val bcap : t -> int

val bucket_of : t -> int -> int
(** Home bucket of a key (a SplitMix64-style finalizer mod nbuckets). *)

val slot_of : t -> int -> int
(** Slot of a preloaded (or successfully appended) key; [-1] if absent.
    Host-side index — reading it models no simulated work. *)

val charge_hash : t -> Dsm.ctx -> unit
(** Model the key-hash computation (a fixed handful of cycles). Both
    the closure and the compiled paths charge it once per probe. *)

val lock : t -> Dsm.ctx -> int -> unit
val unlock : t -> Dsm.ctx -> int -> unit

(** {1 In-bucket primitives}

    All assume the caller holds [lock t ctx bucket]. Their simulated
    access sequences are the contract the compiled programs replicate:
    a probe loads the bucket count, then key cells [0..s] in order. *)

val probe_in : t -> Dsm.ctx -> int -> [ `Found of int | `Absent of int ]
(** Probe for a key: [`Found slot], or [`Absent count] after loading
    all [count] key cells (the absence proof an insert needs). *)

val read_slot : t -> Dsm.ctx -> bucket:int -> slot:int -> float
val write_slot : t -> Dsm.ctx -> bucket:int -> slot:int -> float -> unit

val append_in : t -> Dsm.ctx -> key:int -> float -> int option
(** Insert after an [`Absent] probe: stores key and value cells, bumps
    the count, records the slot in the host index. [None] when the
    bucket is full (the caller counts a dropped insert — deterministic,
    never fatal). *)

val appended : t -> int array
(** Per-bucket count of successful [append_in]s (host bookkeeping for
    final-state verification). *)

val preloaded : t -> int array
(** Per-bucket preload occupancy, so a final count cell must equal
    [preloaded.(b) + appended.(b)]. *)

(** {1 Compiled access programs}

    Checked programs equivalent to probe+get / probe+put / probe+rmw on
    a key living at slot [s]: load count, load keys [0..s], then read
    the value cell / store [aux.(0)] to it / add [aux.(0)] into it. The
    get program additionally deposits the loaded value in [aux.(1)]
    (free, like every register move) so the caller can oracle-check
    compiled reads. Valid only while the layout is static (no
    concurrent inserts). Programs carry a per-processor register file:
    build one table per [ctx] inside the body, never share across
    processors. *)

val progs_get : t -> Dsm.Prog.t array
val progs_put : t -> Dsm.Prog.t array
val progs_rmw : t -> Dsm.Prog.t array

val run_prog : t -> Dsm.ctx -> Dsm.Prog.t -> bucket:int -> aux:float array -> unit

val prog_manifest :
  unit -> (string * Dsm.Prog.t * Shasta_verify.Progcheck.spec) list
(** The get/put/rmw program tables at a representative bucket capacity,
    each paired with the extents it runs against, for
    [shasta_cli verify --progs] and {!Registry.verify_kernels}. *)

(** {1 Post-run inspection} *)

val peek_value : t -> Dsm.handle -> int -> float
(** Value of a key via {!Dsm.peek_float} (post-run verification). The
    key must be live ([slot_of] >= 0). *)

val peek_count : t -> Dsm.handle -> int -> float
(** A bucket's occupancy cell. *)

val instance : App.maker
(** The registered "kv" workload: [scale]d record/op counts, uniform
    keys from the per-processor PRNG, 50/30/15/5 get/put/rmw/scan mix,
    shadow-oracle verification. [vg] allocates the bucket region at
    256-byte granularity. *)
