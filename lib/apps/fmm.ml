module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Prng = Shasta_util.Prng

let p_order = 12
let nterms = p_order + 1 (* complex coefficients a_0..a_p *)
let coeff_floats = 2 * nterms
let levels = 4 (* leaf level; level l has 4^l boxes *)
let leaf_cap = 24
let body_slots = 4 (* x y q pot *)
let flop_cycles = 6

let nboxes l = 1 lsl (2 * l)
let side l = 1 lsl l

(* Binomial table, large enough for C(2p, k). *)
let binom =
  let nmax = (2 * p_order) + 2 in
  let t = Array.make_matrix nmax nmax 0.0 in
  for i = 0 to nmax - 1 do
    t.(i).(0) <- 1.0;
    for j = 1 to i do
      t.(i).(j) <- t.(i - 1).(j - 1) +. (if j <= i - 1 then t.(i - 1).(j) else 0.0)
    done
  done;
  fun n k -> if k < 0 || k > n then 0.0 else t.(n).(k)

(* Complex values are (re, im) pairs packed in float arrays; the
   expansion operators below keep them in plain float locals (see the
   comment before [p2m]). *)

(* Abstract memory so the DSM run and the sequential reference share the
   algorithm. Vectors model batched access to whole expansions. *)
type mem = {
  loadf : int -> float;
  storef : int -> float -> unit;
  loadi : int -> int;
  storei : int -> int -> unit;
  read_vec : int -> int -> float array;
  write_vec : int -> float array -> unit;
  work : int -> unit;
}

type geometry = {
  n : int;
  bodies_off : int;
  mpole_off : int array;  (** per level *)
  local_off : int array;
  leaf_off : int;  (** leaf lists: (1 + leaf_cap) slots per leaf box *)
  total_slots : int;
}

let make_geometry n =
  let off = ref 0 in
  let take k =
    let v = !off in
    off := !off + k;
    v
  in
  let bodies_off = take (n * body_slots) in
  let mpole_off =
    Array.init (levels + 1) (fun l ->
        if l < 2 then 0 else take (nboxes l * coeff_floats))
  in
  let local_off =
    Array.init (levels + 1) (fun l ->
        if l < 2 then 0 else take (nboxes l * coeff_floats))
  in
  let leaf_off = take (nboxes levels * (1 + leaf_cap)) in
  { n; bodies_off; mpole_off; local_off; leaf_off; total_slots = !off }

let body_slot g i k = g.bodies_off + (i * body_slots) + k
let mpole_slot g l b = g.mpole_off.(l) + (b * coeff_floats)
let local_slot g l b = g.local_off.(l) + (b * coeff_floats)
let leaf_slot g b = g.leaf_off + (b * (1 + leaf_cap))

let box_center l b =
  let s = side l in
  let ix = b mod s and iy = b / s in
  let w = 1.0 /. float_of_int s in
  ((float_of_int ix +. 0.5) *. w, (float_of_int iy +. 0.5) *. w)

let box_index l x y =
  let s = side l in
  let ix = min (s - 1) (int_of_float (x *. float_of_int s)) in
  let iy = min (s - 1) (int_of_float (y *. float_of_int s)) in
  (iy * s) + ix

let neighbors l b =
  let s = side l in
  let ix = b mod s and iy = b / s in
  let acc = ref [] in
  for dy = -1 to 1 do
    for dx = -1 to 1 do
      let nx = ix + dx and ny = iy + dy in
      if nx >= 0 && nx < s && ny >= 0 && ny < s then
        acc := ((ny * s) + nx) :: !acc
    done
  done;
  List.rev !acc

let adjacent l a b =
  let s = side l in
  abs ((a mod s) - (b mod s)) <= 1 && abs ((a / s) - (b / s)) <= 1

(* Children of the parent's neighbours that are not adjacent to [b]. *)
let interaction_list l b =
  let parent = ((b / side l / 2 * (side l / 2)) + (b mod side l / 2)) in
  let kids pb =
    let ps = side (l - 1) in
    let px = pb mod ps and py = pb / ps in
    List.concat_map
      (fun dy ->
        List.map (fun dx -> (((2 * py) + dy) * side l) + (2 * px) + dx) [ 0; 1 ])
      [ 0; 1 ]
  in
  List.concat_map kids (neighbors (l - 1) parent)
  |> List.filter (fun c -> not (adjacent l c b))

(* --- Expansion operators (log kernel). --- *)

(* The expansion operators below keep their complex arithmetic in plain
   float locals (two per complex value) instead of the (re, im) tuples
   of the helpers above: the O(p^2) inner loops dominate the app's host
   time and a tuple per cmul/cadd made them allocation-bound. Each
   expression is the literal unfolding of the corresponding helper
   chain, so the computed values — and therefore the simulated run —
   are bit-identical. *)

let p2m mem g b =
  let cx, cy = box_center levels b in
  let c = Array.make coeff_floats 0.0 in
  let cnt = mem.loadi (leaf_slot g b) in
  for m = 0 to cnt - 1 do
    let i = mem.loadi (leaf_slot g b + 1 + m) in
    let x = mem.loadf (body_slot g i 0)
    and y = mem.loadf (body_slot g i 1)
    and q = mem.loadf (body_slot g i 2) in
    let zr = x -. cx and zi = y -. cy in
    c.(0) <- c.(0) +. q;
    c.(1) <- c.(1) +. 0.0;
    let zkr = ref 1.0 and zki = ref 0.0 in
    for k = 1 to p_order do
      let nr = (!zkr *. zr) -. (!zki *. zi)
      and ni = (!zkr *. zi) +. (!zki *. zr) in
      zkr := nr;
      zki := ni;
      let s = -.q /. float_of_int k in
      c.(2 * k) <- c.(2 * k) +. (s *. !zkr);
      c.((2 * k) + 1) <- c.((2 * k) + 1) +. (s *. !zki);
      mem.work (6 * flop_cycles)
    done
  done;
  mem.write_vec (mpole_slot g levels b) c

let m2m mem g l b =
  (* Combine the four children's multipoles into box [b] at level [l]. *)
  let cx, cy = box_center l b in
  let out = Array.make coeff_floats 0.0 in
  let s = side l in
  let ix = b mod s and iy = b / s in
  for dy = 0 to 1 do
    for dx = 0 to 1 do
      let cb = ((((2 * iy) + dy) * side (l + 1)) + (2 * ix) + dx) in
      let a = mem.read_vec (mpole_slot g (l + 1) cb) coeff_floats in
      let ccx, ccy = box_center (l + 1) cb in
      let dr = ccx -. cx and di = ccy -. cy in
      let a0r = a.(0) and a0i = a.(1) in
      out.(0) <- out.(0) +. a0r;
      out.(1) <- out.(1) +. a0i;
      let dlr = ref 1.0 and dli = ref 0.0 in
      for ll = 1 to p_order do
        let nr = (!dlr *. dr) -. (!dli *. di)
        and ni = (!dlr *. di) +. (!dli *. dr) in
        dlr := nr;
        dli := ni;
        (* -a0 d^l / l *)
        let s = -1.0 /. float_of_int ll in
        let mr = (a0r *. !dlr) -. (a0i *. !dli)
        and mi = (a0r *. !dli) +. (a0i *. !dlr) in
        out.(2 * ll) <- out.(2 * ll) +. (s *. mr);
        out.((2 * ll) + 1) <- out.((2 * ll) + 1) +. (s *. mi);
        let dpr = ref 1.0 and dpi = ref 0.0 in
        (* sum_{k=1..l} a_k d^{l-k} C(l-1,k-1), accumulate from k=l down *)
        for k = ll downto 1 do
          (* d^{l-k}: when k = l this is 1; we build it incrementally. *)
          let akr = a.(2 * k) and aki = a.((2 * k) + 1) in
          let s = binom (ll - 1) (k - 1) in
          let mr = (akr *. !dpr) -. (aki *. !dpi)
          and mi = (akr *. !dpi) +. (aki *. !dpr) in
          out.(2 * ll) <- out.(2 * ll) +. (s *. mr);
          out.((2 * ll) + 1) <- out.((2 * ll) + 1) +. (s *. mi);
          let nr = (!dpr *. dr) -. (!dpi *. di)
          and ni = (!dpr *. di) +. (!dpi *. dr) in
          dpr := nr;
          dpi := ni;
          mem.work (8 * flop_cycles)
        done
      done
    done
  done;
  mem.write_vec (mpole_slot g l b) out

let m2l mem g l ~src ~dst out =
  let sx, sy = box_center l src and dx_, dy_ = box_center l dst in
  let a = mem.read_vec (mpole_slot g l src) coeff_floats in
  let dr = sx -. dx_ and di = sy -. dy_ in
  let a0r = a.(0) and a0i = a.(1) in
  (* c_0 = a0 log(-d) + sum_k a_k (-1)^k / d^k *)
  let ndr = -1.0 *. dr and ndi = -1.0 *. di in
  let lgr = 0.5 *. Float.log ((ndr *. ndr) +. (ndi *. ndi))
  and lgi = Float.atan2 ndi ndr in
  let c0r = ref ((a0r *. lgr) -. (a0i *. lgi))
  and c0i = ref ((a0r *. lgi) +. (a0i *. lgr)) in
  let dkr = ref 1.0 and dki = ref 0.0 in
  for k = 1 to p_order do
    let nr = (!dkr *. dr) -. (!dki *. di)
    and ni = (!dkr *. di) +. (!dki *. dr) in
    dkr := nr;
    dki := ni;
    let sign = if k land 1 = 1 then -1.0 else 1.0 in
    let den = (!dkr *. !dkr) +. (!dki *. !dki) in
    let ibr = !dkr /. den and ibi = -. !dki /. den in
    let akr = a.(2 * k) and aki = a.((2 * k) + 1) in
    let qr = (akr *. ibr) -. (aki *. ibi)
    and qi = (akr *. ibi) +. (aki *. ibr) in
    c0r := !c0r +. (sign *. qr);
    c0i := !c0i +. (sign *. qi);
    mem.work (8 * flop_cycles)
  done;
  out.(0) <- out.(0) +. !c0r;
  out.(1) <- out.(1) +. !c0i;
  let dlr = ref 1.0 and dli = ref 0.0 in
  for ll = 1 to p_order do
    let nr = (!dlr *. dr) -. (!dli *. di)
    and ni = (!dlr *. di) +. (!dli *. dr) in
    dlr := nr;
    dli := ni;
    (* -a0 / (l d^l) *)
    let dend = (!dlr *. !dlr) +. (!dli *. !dli) in
    let ilr = !dlr /. dend and ili = -. !dli /. dend in
    let s = -1.0 /. float_of_int ll in
    let qr = (a0r *. ilr) -. (a0i *. ili)
    and qi = (a0r *. ili) +. (a0i *. ilr) in
    let tr = ref (s *. qr) and ti = ref (s *. qi) in
    let dkr = ref 1.0 and dki = ref 0.0 in
    for k = 1 to p_order do
      let nr = (!dkr *. dr) -. (!dki *. di)
      and ni = (!dkr *. di) +. (!dki *. dr) in
      dkr := nr;
      dki := ni;
      let sign = if k land 1 = 1 then -1.0 else 1.0 in
      let den = (!dkr *. !dkr) +. (!dki *. !dki) in
      let ibr = !dkr /. den and ibi = -. !dki /. den in
      let akr = a.(2 * k) and aki = a.((2 * k) + 1) in
      let q1r = (akr *. ibr) -. (aki *. ibi)
      and q1i = (akr *. ibi) +. (aki *. ibr) in
      let q2r = (q1r *. ilr) -. (q1i *. ili)
      and q2i = (q1r *. ili) +. (q1i *. ilr) in
      let s = sign *. binom (ll + k - 1) (k - 1) in
      tr := !tr +. (s *. q2r);
      ti := !ti +. (s *. q2i);
      mem.work (8 * flop_cycles)
    done;
    out.(2 * ll) <- out.(2 * ll) +. !tr;
    out.((2 * ll) + 1) <- out.((2 * ll) + 1) +. !ti
  done

let l2l mem g l ~parent ~child out =
  (* Shift the parent's local expansion to the child's center. *)
  let px, py = box_center (l - 1) parent and cx, cy = box_center l child in
  let c = mem.read_vec (local_slot g (l - 1) parent) coeff_floats in
  let dr = cx -. px and di = cy -. py in
  for ll = 0 to p_order do
    let tr = ref 0.0 and ti = ref 0.0 in
    for k = ll to p_order do
      (* c_k C(k,l) d^{k-l} *)
      let dpr = ref 1.0 and dpi = ref 0.0 in
      for _ = 1 to k - ll do
        let nr = (!dpr *. dr) -. (!dpi *. di)
        and ni = (!dpr *. di) +. (!dpi *. dr) in
        dpr := nr;
        dpi := ni
      done;
      let ckr = c.(2 * k) and cki = c.((2 * k) + 1) in
      let s = binom k ll in
      let mr = (ckr *. !dpr) -. (cki *. !dpi)
      and mi = (ckr *. !dpi) +. (cki *. !dpr) in
      tr := !tr +. (s *. mr);
      ti := !ti +. (s *. mi);
      mem.work (6 * flop_cycles)
    done;
    out.(2 * ll) <- out.(2 * ll) +. !tr;
    out.((2 * ll) + 1) <- out.((2 * ll) + 1) +. !ti
  done

let eval_local c (zx, zy) =
  let vr = ref 0.0 and vi = ref 0.0 in
  let zpr = ref 1.0 and zpi = ref 0.0 in
  for k = 0 to p_order do
    let ckr = c.(2 * k) and cki = c.((2 * k) + 1) in
    vr := !vr +. ((ckr *. !zpr) -. (cki *. !zpi));
    vi := !vi +. ((ckr *. !zpi) +. (cki *. !zpr));
    let nr = (!zpr *. zx) -. (!zpi *. zy)
    and ni = (!zpr *. zy) +. (!zpi *. zx) in
    zpr := nr;
    zpi := ni
  done;
  !vr

(* --- Driver, shared by the parallel and reference executions. --- *)

type part = { lo : int array; hi : int array; blo : int; bhi : int }
(* per-level box ranges and body range for one processor *)

let run_fmm mem g part ~sync =
  (* Phase 1: leaf lists (each proc fills its own leaf boxes). *)
  for b = part.lo.(levels) to part.hi.(levels) - 1 do
    mem.storei (leaf_slot g b) 0
  done;
  for i = 0 to g.n - 1 do
    let x = mem.loadf (body_slot g i 0) and y = mem.loadf (body_slot g i 1) in
    let b = box_index levels x y in
    mem.work (4 * flop_cycles);
    if b >= part.lo.(levels) && b < part.hi.(levels) then begin
      let cnt = mem.loadi (leaf_slot g b) in
      if cnt < leaf_cap then begin
        mem.storei (leaf_slot g b + 1 + cnt) i;
        mem.storei (leaf_slot g b) (cnt + 1)
      end
    end
  done;
  sync ();
  (* Phase 2: P2M on own leaves. *)
  for b = part.lo.(levels) to part.hi.(levels) - 1 do
    p2m mem g b
  done;
  sync ();
  (* Phase 3: M2M upward. *)
  for l = levels - 1 downto 2 do
    for b = part.lo.(l) to part.hi.(l) - 1 do
      m2m mem g l b
    done;
    sync ()
  done;
  (* Phase 4: downward M2L (+ L2L below the top transfer level). *)
  for l = 2 to levels do
    for b = part.lo.(l) to part.hi.(l) - 1 do
      let out = Array.make coeff_floats 0.0 in
      if l > 2 then begin
        let s = side l in
        let parent = ((b / s / 2 * (s / 2)) + (b mod s / 2)) in
        l2l mem g l ~parent ~child:b out
      end;
      List.iter (fun src -> m2l mem g l ~src ~dst:b out) (interaction_list l b);
      mem.write_vec (local_slot g l b) out
    done;
    sync ()
  done;
  (* Phase 5: evaluation on own leaves (L2P + P2P over neighbours). *)
  for b = part.lo.(levels) to part.hi.(levels) - 1 do
    let cx, cy = box_center levels b in
    let c = mem.read_vec (local_slot g levels b) coeff_floats in
    let cnt = mem.loadi (leaf_slot g b) in
    for m = 0 to cnt - 1 do
      let i = mem.loadi (leaf_slot g b + 1 + m) in
      let x = mem.loadf (body_slot g i 0) and y = mem.loadf (body_slot g i 1) in
      let pot = ref (eval_local c (x -. cx, y -. cy)) in
      mem.work (nterms * 4 * flop_cycles);
      List.iter
        (fun nb ->
          let ncnt = mem.loadi (leaf_slot g nb) in
          for mm = 0 to ncnt - 1 do
            let j = mem.loadi (leaf_slot g nb + 1 + mm) in
            if j <> i then begin
              let xj = mem.loadf (body_slot g j 0)
              and yj = mem.loadf (body_slot g j 1)
              and qj = mem.loadf (body_slot g j 2) in
              let dx = x -. xj and dy = y -. yj in
              pot :=
                !pot
                +. (qj *. 0.5 *. Float.log ((dx *. dx) +. (dy *. dy)));
              mem.work (8 * flop_cycles)
            end
          done)
        (neighbors levels b);
      mem.storef (body_slot g i 3) !pot
    done
  done;
  sync ()

let make_part np p =
  let lo = Array.make (levels + 1) 0 and hi = Array.make (levels + 1) 0 in
  for l = 2 to levels do
    lo.(l) <- p * nboxes l / np;
    hi.(l) <- (p + 1) * nboxes l / np
  done;
  { lo; hi; blo = 0; bhi = 0 }

let instance ?(vg = false) ?(scale = 1.0) () =
  let n = App.scaled scale 1024 in
  let g = make_geometry n in
  {
    App.name = "fmm";
    workload =
      Printf.sprintf "%d bodies, %d levels, p=%d%s" n levels p_order
        (if vg then ", vg 256B" else "");
    heap_bytes = (g.total_slots * 8) + (1 lsl 17);
    setup =
      (fun h ->
        let prng = Prng.create 2718 in
        let init = Array.make g.total_slots 0.0 in
        for i = 0 to n - 1 do
          init.(body_slot g i 0) <- Prng.float prng 1.0;
          init.(body_slot g i 1) <- Prng.float prng 1.0;
          init.(body_slot g i 2) <- Prng.float prng 1.0 +. 0.1
        done;
        (* Shared arrays: bodies; box expansions (vg hint); leaf lists. *)
        let bodies = Dsm.alloc_floats h (g.bodies_off + (n * body_slots)) in
        let boxes_floats = g.leaf_off - g.mpole_off.(2) in
        let boxes =
          Dsm.alloc_floats h
            ?block_size:(if vg then Some 256 else None)
            boxes_floats
        in
        let leaves = Dsm.alloc_floats h (g.total_slots - g.leaf_off) in
        let addr_of_slot s =
          if s < g.mpole_off.(2) then bodies + (8 * s)
          else if s < g.leaf_off then boxes + (8 * (s - g.mpole_off.(2)))
          else leaves + (8 * (s - g.leaf_off))
        in
        (* Home placement: box expansions and leaf lists at their owners. *)
        let np = (Dsm.config h).Config.nprocs in
        for p = 0 to np - 1 do
          let part = make_part np p in
          for l = 2 to levels do
            if part.hi.(l) > part.lo.(l) then begin
              Dsm.place h
                ~addr:(addr_of_slot (mpole_slot g l part.lo.(l)))
                ~len:((part.hi.(l) - part.lo.(l)) * coeff_floats * 8)
                ~proc:p;
              Dsm.place h
                ~addr:(addr_of_slot (local_slot g l part.lo.(l)))
                ~len:((part.hi.(l) - part.lo.(l)) * coeff_floats * 8)
                ~proc:p
            end
          done;
          if part.hi.(levels) > part.lo.(levels) then
            Dsm.place h
              ~addr:(addr_of_slot (leaf_slot g part.lo.(levels)))
              ~len:((part.hi.(levels) - part.lo.(levels)) * (1 + leaf_cap) * 8)
              ~proc:p
        done;
        for i = 0 to n - 1 do
          for k = 0 to body_slots - 1 do
            Dsm.poke_float h (addr_of_slot (body_slot g i k)) init.(body_slot g i k)
          done
        done;
        (* Sequential reference. *)
        let ref_mem =
          {
            loadf = (fun s -> init.(s));
            storef = (fun s v -> init.(s) <- v);
            loadi = (fun s -> int_of_float init.(s));
            storei = (fun s v -> init.(s) <- float_of_int v);
            read_vec = (fun s k -> Array.sub init s k);
            write_vec = (fun s v -> Array.blit v 0 init s (Array.length v));
            work = ignore;
          }
        in
        run_fmm ref_mem g (make_part 1 0) ~sync:ignore;
        (* Direct-sum accuracy check data. *)
        let direct = Array.make n 0.0 in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if j <> i then begin
              let dx = init.(body_slot g i 0) -. init.(body_slot g j 0)
              and dy = init.(body_slot g i 1) -. init.(body_slot g j 1) in
              direct.(i) <-
                direct.(i)
                +. (init.(body_slot g j 2) *. 0.5
                   *. Float.log ((dx *. dx) +. (dy *. dy)))
            end
          done
        done;
        let bar = Dsm.alloc_barrier h in
        let body ctx =
          let p = Dsm.pid ctx in
          let part = make_part (Dsm.nprocs ctx) p in
          let mem =
            {
              loadf = (fun s -> Dsm.load_float ctx (addr_of_slot s));
              storef = (fun s v -> Dsm.store_float ctx (addr_of_slot s) v);
              loadi = (fun s -> Dsm.load_int ctx (addr_of_slot s));
              storei = (fun s v -> Dsm.store_int ctx (addr_of_slot s) v);
              (* Expansion vectors live contiguously inside one
                 allocation region, so the whole transfer is one access
                 program over [base0 + 8*i] (see Kernels); odd-sized
                 vectors (none today) would fall back to the loop. *)
              read_vec =
                (let rd = Kernels.vec_read ~k:coeff_floats in
                 fun s k ->
                   let a = Array.make k 0.0 in
                   Dsm.batch ctx
                     [ (addr_of_slot s, k * 8, Dsm.R) ]
                     (fun () ->
                       if k = coeff_floats then
                         Dsm.Prog.run ctx rd ~s:0.0 ~aux:a
                           ~base0:(addr_of_slot s) ~base1:0 ~base2:0
                       else
                         for i = 0 to k - 1 do
                           a.(i) <-
                             Dsm.Batch.load_float ctx (addr_of_slot (s + i))
                         done);
                   a);
              write_vec =
                (let wr = Kernels.vec_write ~k:coeff_floats in
                 fun s v ->
                   let k = Array.length v in
                   Dsm.batch ctx
                     [ (addr_of_slot s, k * 8, Dsm.W) ]
                     (fun () ->
                       if k = coeff_floats then
                         Dsm.Prog.run ctx wr ~s:0.0 ~aux:v
                           ~base0:(addr_of_slot s) ~base1:0 ~base2:0
                       else
                         Array.iteri
                           (fun i x ->
                             Dsm.Batch.store_float ctx (addr_of_slot (s + i)) x)
                           v));
              work = (fun c -> Dsm.compute ctx c);
            }
          in
          run_fmm mem g part ~sync:(fun () -> Dsm.barrier ctx bar)
        in
        let verify h =
          let worst = ref 0.0 and direct_err = ref 0.0 in
          for i = 0 to n - 1 do
            let got = Dsm.peek_float h (addr_of_slot (body_slot g i 3)) in
            let want = init.(body_slot g i 3) in
            let scale = Float.max 1.0 (Float.abs want) in
            worst := Float.max !worst (Float.abs (got -. want) /. scale);
            direct_err :=
              Float.max !direct_err
                (Float.abs (got -. direct.(i))
                /. Float.max 1.0 (Float.abs direct.(i)))
          done;
          let detail =
            Printf.sprintf "vs ref %.2e; vs direct %.2e" !worst !direct_err
          in
          if !worst < 1e-8 && !direct_err < 0.2 then App.pass ~detail
          else App.fail ~detail
        in
        (body, verify));
  }
