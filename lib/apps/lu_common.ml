module Dsm = Shasta_core.Dsm

let flop_cycles = 6

let proc_grid np =
  let r = ref 1 in
  for d = 1 to np do
    if np mod d = 0 && d * d <= np then r := d
  done;
  (!r, np / !r)

let owner ~pr ~pc bi bj = ((bi mod pr) * pc) + (bj mod pc)

let generate prng n =
  let a = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      a.((i * n) + j) <- Shasta_util.Prng.float prng 1.0
    done;
    a.((i * n) + i) <- a.((i * n) + i) +. float_of_int n
  done;
  a

let reference_lu a n =
  for k = 0 to n - 1 do
    let akk = a.((k * n) + k) in
    for i = k + 1 to n - 1 do
      a.((i * n) + k) <- a.((i * n) + k) /. akk
    done;
    for i = k + 1 to n - 1 do
      let lik = a.((i * n) + k) in
      for j = k + 1 to n - 1 do
        a.((i * n) + j) <- a.((i * n) + j) -. (lik *. a.((k * n) + j))
      done
    done
  done

type layout = { addr : int -> int -> int }

let block_ranges layout ~bsz ~bi ~bj access =
  List.init bsz (fun r ->
      (layout.addr ((bi * bsz) + r) (bj * bsz), bsz * 8, access))

(* In-place LU of diagonal block k. *)
let factor_diag ctx layout ~bsz ~k =
  let at i j = layout.addr ((k * bsz) + i) ((k * bsz) + j) in
  Dsm.batch ctx (block_ranges layout ~bsz ~bi:k ~bj:k Dsm.W) (fun () ->
      for kk = 0 to bsz - 1 do
        let akk = Dsm.Batch.load_float ctx (at kk kk) in
        for i = kk + 1 to bsz - 1 do
          let v = Dsm.Batch.load_float ctx (at i kk) /. akk in
          Dsm.Batch.store_float ctx (at i kk) v;
          Dsm.compute ctx flop_cycles;
          for j = kk + 1 to bsz - 1 do
            let w =
              Dsm.Batch.load_float ctx (at i j)
              -. (v *. Dsm.Batch.load_float ctx (at kk j))
            in
            Dsm.Batch.store_float ctx (at i j) w;
            Dsm.compute ctx flop_cycles
          done
        done
      done)

(* A(i,k) := A(i,k) * U(k,k)^-1, column-by-column forward substitution. *)
let div_column_block ctx layout ~bsz ~k ~i =
  let diag r c = layout.addr ((k * bsz) + r) ((k * bsz) + c) in
  let tgt r c = layout.addr ((i * bsz) + r) ((k * bsz) + c) in
  Dsm.batch ctx
    (block_ranges layout ~bsz ~bi:k ~bj:k Dsm.R
    @ block_ranges layout ~bsz ~bi:i ~bj:k Dsm.W)
    (fun () ->
      for j = 0 to bsz - 1 do
        for r = 0 to bsz - 1 do
          let acc = ref (Dsm.Batch.load_float ctx (tgt r j)) in
          for m = 0 to j - 1 do
            acc :=
              !acc
              -. (Dsm.Batch.load_float ctx (tgt r m)
                 *. Dsm.Batch.load_float ctx (diag m j));
            Dsm.compute ctx flop_cycles
          done;
          Dsm.Batch.store_float ctx (tgt r j)
            (!acc /. Dsm.Batch.load_float ctx (diag j j));
          Dsm.compute ctx flop_cycles
        done
      done)

(* A(k,j) := L(k,k)^-1 * A(k,j), row-by-row forward substitution with a
   unit-diagonal L. *)
let div_row_block ctx layout ~bsz ~k ~j =
  let diag r c = layout.addr ((k * bsz) + r) ((k * bsz) + c) in
  let tgt r c = layout.addr ((k * bsz) + r) ((j * bsz) + c) in
  let prog = Dsm.Prog.fms_row ~len:bsz ~cost:flop_cycles in
  Dsm.batch ctx
    (block_ranges layout ~bsz ~bi:k ~bj:k Dsm.R
    @ block_ranges layout ~bsz ~bi:k ~bj:j Dsm.W)
    (fun () ->
      for r = 1 to bsz - 1 do
        for m = 0 to r - 1 do
          let lrm = Dsm.Batch.load_float ctx (diag r m) in
          Dsm.Prog.run ctx prog ~s:lrm ~aux:Dsm.Prog.no_aux ~base0:(tgt r 0)
            ~base1:(tgt m 0) ~base2:0
        done
      done)

(* A(i,j) -= A(i,k) * A(k,j), batched per (r, m) row pair as the real
   Shasta batches the straight-line daxpy inner loop — one combined
   check per destination/source row, with the multiplier loaded through
   an ordinary (checked) float load. The row kernel is compiled once per
   block into an access program ({!Dsm.Prog}), so the dominant inner
   loop of the whole workload interprets flat ints instead of
   dispatching closures. *)
let update_block ctx layout ~bsz ~k ~i ~j =
  let a r m = layout.addr ((i * bsz) + r) ((k * bsz) + m) in
  let b m c = layout.addr ((k * bsz) + m) ((j * bsz) + c) in
  let d r c = layout.addr ((i * bsz) + r) ((j * bsz) + c) in
  let prog = Dsm.Prog.fms_row ~len:bsz ~cost:(2 * flop_cycles) in
  for r = 0 to bsz - 1 do
    for m = 0 to bsz - 1 do
      let arm = Dsm.load_float ctx (a r m) in
      Dsm.batch ctx
        [ (d r 0, bsz * 8, Dsm.W); (b m 0, bsz * 8, Dsm.R) ]
        (fun () ->
          Dsm.Prog.run ctx prog ~s:arm ~aux:Dsm.Prog.no_aux ~base0:(d r 0)
            ~base1:(b m 0) ~base2:0)
    done
  done

let verify_against h layout ~n reference =
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let got = Dsm.peek_float h (layout.addr i j) in
      let want = reference.((i * n) + j) in
      let scale = Float.max 1.0 (Float.abs want) in
      worst := Float.max !worst (Float.abs (got -. want) /. scale)
    done
  done;
  if !worst < 1e-8 then
    App.pass ~detail:(Printf.sprintf "max rel err %.2e" !worst)
  else App.fail ~detail:(Printf.sprintf "max rel err %.2e" !worst)
