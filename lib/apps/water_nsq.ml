module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module W = Water_common

let box = 6.0
let cutoff = 2.2
let dt = 0.004
let steps = 2
let mols_per_lock = 8

(* Cyclic half-range pair rule: molecule [i] interacts with the next
   n/2 molecules (one fewer for even n when i >= n/2), so each pair is
   evaluated exactly once. *)
let half_range n i = if n land 1 = 0 && 2 * i >= n then (n / 2) - 1 else n / 2

let reference_step mols n =
  let f = W.fields in
  for i = 0 to n - 1 do
    for k = 1 to half_range n i do
      let j = (i + k) mod n in
      let mi = { W.px = mols.(i * f); py = mols.((i * f) + 1); pz = mols.((i * f) + 2) } in
      let mj = { W.px = mols.(j * f); py = mols.((j * f) + 1); pz = mols.((j * f) + 2) } in
      match W.pair_force ~box ~cutoff mi mj with
      | None -> ()
      | Some (fx, fy, fz) ->
        mols.((i * f) + 6) <- mols.((i * f) + 6) +. fx;
        mols.((i * f) + 7) <- mols.((i * f) + 7) +. fy;
        mols.((i * f) + 8) <- mols.((i * f) + 8) +. fz;
        mols.((j * f) + 6) <- mols.((j * f) + 6) -. fx;
        mols.((j * f) + 7) <- mols.((j * f) + 7) -. fy;
        mols.((j * f) + 8) <- mols.((j * f) + 8) -. fz
    done
  done;
  W.integrate ~dt ~box mols n

let instance ?(vg = false) ?(scale = 1.0) () =
  let n = App.scaled scale 512 in
  {
    App.name = "water-nsq";
    workload =
      Printf.sprintf "%d molecules, %d steps, O(n^2) pairs%s" n steps
        (if vg then ", vg 2048B" else "");
    heap_bytes = (n * W.mol_bytes) + (1 lsl 16);
    setup =
      (fun h ->
        let prng = Shasta_util.Prng.create 99 in
        let reference = W.init_molecules prng ~n ~box in
        let mols =
          Dsm.alloc h ?block_size:(if vg then Some 2048 else None)
            (n * W.mol_bytes)
        in
        let fld i k = mols + (W.mol_bytes * i) + (8 * k) in
        for i = 0 to n - 1 do
          for k = 0 to W.fields - 1 do
            Dsm.poke_float h (fld i k) reference.((i * W.fields) + k)
          done
        done;
        let nlocks = (n + mols_per_lock - 1) / mols_per_lock in
        let locks = Array.init nlocks (fun _ -> Dsm.alloc_lock h) in
        let bar = Dsm.alloc_barrier h in
        let np = (Dsm.config h).Config.nprocs in
        let body ctx =
          let p = Dsm.pid ctx in
          let lo = p * n / np and hi = (p + 1) * n / np in
          let local = Array.make (n * 3) 0.0 in
          let integ =
            Kernels.water_integrate ~dt ~box ~flop_cycles:W.flop_cycles
          in
          for _s = 1 to steps do
            Array.fill local 0 (n * 3) 0.0;
            (* Pair evaluation: positions read via single float loads
               (pointer-chasing through molecule records). *)
            let pos i =
              {
                W.px = Dsm.load_float ctx (fld i 0);
                py = Dsm.load_float ctx (fld i 1);
                pz = Dsm.load_float ctx (fld i 2);
              }
            in
            for i = lo to hi - 1 do
              let mi = pos i in
              for k = 1 to half_range n i do
                let j = (i + k) mod n in
                let mj = pos j in
                Dsm.compute ctx W.pair_flops;
                match W.pair_force ~box ~cutoff mi mj with
                | None -> ()
                | Some (fx, fy, fz) ->
                  local.(i * 3) <- local.(i * 3) +. fx;
                  local.((i * 3) + 1) <- local.((i * 3) + 1) +. fy;
                  local.((i * 3) + 2) <- local.((i * 3) + 2) +. fz;
                  local.(j * 3) <- local.(j * 3) -. fx;
                  local.((j * 3) + 1) <- local.((j * 3) + 1) -. fy;
                  local.((j * 3) + 2) <- local.((j * 3) + 2) -. fz
              done
            done;
            (* Fold local force contributions into the shared records
               under per-molecule-group locks — migratory data. *)
            for g = 0 to nlocks - 1 do
              let glo = g * mols_per_lock and ghi = min n ((g + 1) * mols_per_lock) in
              let touched = ref false in
              for i = glo to ghi - 1 do
                if
                  local.(i * 3) <> 0.0
                  || local.((i * 3) + 1) <> 0.0
                  || local.((i * 3) + 2) <> 0.0
                then touched := true
              done;
              if !touched then begin
                Dsm.lock ctx locks.(g);
                for i = glo to ghi - 1 do
                  for d = 0 to 2 do
                    if local.((i * 3) + d) <> 0.0 then begin
                      let cur = Dsm.load_float ctx (fld i (6 + d)) in
                      Dsm.store_float ctx (fld i (6 + d))
                        (cur +. local.((i * 3) + d));
                      Dsm.compute ctx W.flop_cycles
                    end
                  done
                done;
                Dsm.unlock ctx locks.(g)
              end
            done;
            Dsm.barrier ctx bar;
            (* Integrate own molecules (the velocity/position update
               compiled to an access program; see Kernels). *)
            for i = lo to hi - 1 do
              Dsm.batch ctx
                [ (fld i 0, W.mol_bytes, Dsm.W) ]
                (fun () ->
                  Dsm.Prog.run ctx integ ~s:0.0 ~aux:Dsm.Prog.no_aux
                    ~base0:(fld i 0) ~base1:0 ~base2:0)
            done;
            Dsm.barrier ctx bar
          done
        in
        for _s = 1 to steps do
          reference_step reference n
        done;
        let verify h =
          let worst = ref 0.0 in
          for i = 0 to n - 1 do
            for d = 0 to 2 do
              let got = Dsm.peek_float h (fld i d) in
              let want = reference.((i * W.fields) + d) in
              worst := Float.max !worst (Float.abs (got -. want))
            done
          done;
          if !worst < 1e-6 then
            App.pass ~detail:(Printf.sprintf "max pos err %.2e" !worst)
          else App.fail ~detail:(Printf.sprintf "max pos err %.2e" !worst)
        in
        (body, verify));
  }
