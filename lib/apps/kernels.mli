(** Compiled access programs for the app kernels' hot loops.

    Each builder flattens one app's innermost loop body into a
    {!Shasta_core.Dsm.Prog} whose memory-op order and floating-point
    expression shapes replicate the closure formulation it replaces
    exactly, so the observed interpreter replays the closure's hook
    stream verbatim and the computed values are bit-identical.
    Programs carry a per-processor register file: build them inside
    the parallel body, once per [ctx], never shared. *)

module Dsm = Shasta_core.Dsm

val water_integrate : dt:float -> box:float -> flop_cycles:int -> Dsm.Prog.t
(** One molecule's integrate step (water-nsq and water-sp), raw ops
    inside the molecule's batch: per dimension, advance velocity by the
    accumulated force, advance the wrapped position, clear the force.
    [base0] = the molecule's first field. *)

val barnes_integrate : dt:float -> flop_cycles:int -> Dsm.Prog.t
(** The same update without the periodic wrap, over checked accesses
    (Barnes does not batch its integrate phase). *)

val ocean_row :
  n:int -> jstart:int -> omega:float -> cell_cycles:int -> Dsm.Prog.t
(** One red-black SOR row over the matching-parity columns
    ([jstart] = 1 or 2). [base0]/[base1] = rows i-1 / i+1, [base2] =
    row i, [aux] = the pre-read right-hand-side row. *)

val ocean_rhs_row : n:int -> jstart:int -> Dsm.Prog.t
(** Checked prefetch of a right-hand-side row's matching-parity columns
    into [aux]. [base0] = the row's first cell. *)

val vec_read : k:int -> Dsm.Prog.t
(** [k] raw loads from [base0] into [aux] (FMM expansion vectors). *)

val vec_write : k:int -> Dsm.Prog.t
(** [k] raw stores from [aux] out to [base0]. *)

val manifest :
  unit -> (string * Dsm.Prog.t * Shasta_verify.Progcheck.spec) list
(** Every program shape above, built with the default-scale parameters
    the apps pass, each paired with the extents it runs against — the
    input to {!Registry.verify_kernels} and
    [shasta_cli verify --progs]. *)
