module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Prng = Shasta_util.Prng

let theta = 0.7
let dt = 0.02
let eps2 = 0.0025
let steps = 1
let box = 10.0
let body_slots = 10 (* x y z vx vy vz fx fy fz mass *)
let cell_slots = 16 (* mass comx comy comz cx cy cz half child0..7 *)
let flop_cycles = 6

(* The algorithm runs over an abstract slot-addressed memory so the
   parallel (DSM) execution and the sequential reference share one
   implementation — which also makes verification exact up to floating
   reassociation. Slots are 8-byte cells. *)
type mem = {
  loadf : int -> float;
  storef : int -> float -> unit;
  loadi : int -> int;
  storei : int -> int -> unit;
  work : int -> unit;
}

type geometry = {
  n : int;
  max_cells : int;
  bodies_off : int;  (** slot of body 0 *)
  cells_off : int;  (** slot of cell 0 *)
}

let body_slot g i k = g.bodies_off + (i * body_slots) + k
let cell_slot g c k = g.cells_off + (c * cell_slots) + k

(* Child encoding: 0 = empty, c+1 = cell c, -(i+1) = body i. *)
let enc_cell c = c + 1
let enc_body i = -(i + 1)

let octant mem g c x y z =
  let cx = mem.loadf (cell_slot g c 4)
  and cy = mem.loadf (cell_slot g c 5)
  and cz = mem.loadf (cell_slot g c 6) in
  (if x >= cx then 1 else 0)
  lor (if y >= cy then 2 else 0)
  lor if z >= cz then 4 else 0

let child_center mem g c oct =
  let half = mem.loadf (cell_slot g c 7) /. 2.0 in
  let off b = if b then half else -.half in
  ( mem.loadf (cell_slot g c 4) +. off (oct land 1 <> 0),
    mem.loadf (cell_slot g c 5) +. off (oct land 2 <> 0),
    mem.loadf (cell_slot g c 6) +. off (oct land 4 <> 0),
    half )

let new_cell mem g ~ncells ~cx ~cy ~cz ~half =
  let c = !ncells in
  if c >= g.max_cells then failwith "Barnes: out of cells";
  incr ncells;
  mem.storef (cell_slot g c 0) 0.0;
  mem.storef (cell_slot g c 4) cx;
  mem.storef (cell_slot g c 5) cy;
  mem.storef (cell_slot g c 6) cz;
  mem.storef (cell_slot g c 7) half;
  for o = 0 to 7 do
    mem.storei (cell_slot g c (8 + o)) 0
  done;
  c

let build_tree mem g =
  let ncells = ref 0 in
  let root =
    new_cell mem g ~ncells ~cx:(box /. 2.0) ~cy:(box /. 2.0) ~cz:(box /. 2.0)
      ~half:(box /. 2.0)
  in
  let body_pos i =
    ( mem.loadf (body_slot g i 0),
      mem.loadf (body_slot g i 1),
      mem.loadf (body_slot g i 2) )
  in
  let rec insert c i =
    let x, y, z = body_pos i in
    let oct = octant mem g c x y z in
    mem.work (8 * flop_cycles);
    let slot = cell_slot g c (8 + oct) in
    let cur = mem.loadi slot in
    if cur = 0 then mem.storei slot (enc_body i)
    else if cur > 0 then insert (cur - 1) i
    else begin
      (* Occupied by a body: split this octant into a fresh cell. *)
      let j = -cur - 1 in
      let cx, cy, cz, half = child_center mem g c oct in
      let nc = new_cell mem g ~ncells ~cx ~cy ~cz ~half in
      mem.storei slot (enc_cell nc);
      insert nc j;
      insert nc i
    end
  in
  for i = 0 to g.n - 1 do
    insert root i
  done;
  root

let compute_masses mem g root =
  let rec go c =
    let mass = ref 0.0 and mx = ref 0.0 and my = ref 0.0 and mz = ref 0.0 in
    for o = 0 to 7 do
      let v = mem.loadi (cell_slot g c (8 + o)) in
      if v > 0 then begin
        go (v - 1);
        let m = mem.loadf (cell_slot g (v - 1) 0) in
        mass := !mass +. m;
        mx := !mx +. (m *. mem.loadf (cell_slot g (v - 1) 1));
        my := !my +. (m *. mem.loadf (cell_slot g (v - 1) 2));
        mz := !mz +. (m *. mem.loadf (cell_slot g (v - 1) 3))
      end
      else if v < 0 then begin
        let i = -v - 1 in
        let m = mem.loadf (body_slot g i 9) in
        mass := !mass +. m;
        mx := !mx +. (m *. mem.loadf (body_slot g i 0));
        my := !my +. (m *. mem.loadf (body_slot g i 1));
        mz := !mz +. (m *. mem.loadf (body_slot g i 2))
      end;
      mem.work (8 * flop_cycles)
    done;
    mem.storef (cell_slot g c 0) !mass;
    let m = Float.max !mass 1e-30 in
    mem.storef (cell_slot g c 1) (!mx /. m);
    mem.storef (cell_slot g c 2) (!my /. m);
    mem.storef (cell_slot g c 3) (!mz /. m)
  in
  go root

let force_on mem g root i =
  let x = mem.loadf (body_slot g i 0)
  and y = mem.loadf (body_slot g i 1)
  and z = mem.loadf (body_slot g i 2) in
  let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
  let add m px py pz =
    let dx = px -. x and dy = py -. y and dz = pz -. z in
    let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. eps2 in
    let inv = 1.0 /. (r2 *. Float.sqrt r2) in
    fx := !fx +. (m *. dx *. inv);
    fy := !fy +. (m *. dy *. inv);
    fz := !fz +. (m *. dz *. inv);
    (* 12 pipelined flops plus a divide and a square root, both long
       unpipelined operations on the 21164 (~60 and ~30 cycles). *)
    mem.work ((12 * flop_cycles) + 90)
  in
  let rec visit c =
    let comx = mem.loadf (cell_slot g c 1)
    and comy = mem.loadf (cell_slot g c 2)
    and comz = mem.loadf (cell_slot g c 3) in
    let dx = comx -. x and dy = comy -. y and dz = comz -. z in
    let d2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
    let size = 2.0 *. mem.loadf (cell_slot g c 7) in
    mem.work (8 * flop_cycles);
    if size *. size < theta *. theta *. d2 then
      add (mem.loadf (cell_slot g c 0)) comx comy comz
    else
      for o = 0 to 7 do
        let v = mem.loadi (cell_slot g c (8 + o)) in
        if v > 0 then visit (v - 1)
        else if v < 0 then begin
          let j = -v - 1 in
          if j <> i then
            add
              (mem.loadf (body_slot g j 9))
              (mem.loadf (body_slot g j 0))
              (mem.loadf (body_slot g j 1))
              (mem.loadf (body_slot g j 2))
        end
      done
  in
  visit root;
  (!fx, !fy, !fz)

let integrate mem g i =
  for d = 0 to 2 do
    let v =
      mem.loadf (body_slot g i (3 + d)) +. (mem.loadf (body_slot g i (6 + d)) *. dt)
    in
    mem.storef (body_slot g i (3 + d)) v;
    mem.storef (body_slot g i d) (mem.loadf (body_slot g i d) +. (v *. dt));
    mem.work (4 * flop_cycles)
  done

(* [integrate] can be overridden with an equivalent per-body routine —
   the DSM body substitutes a compiled access program; the sequential
   reference keeps the closure form. *)
let run_step ?integrate:integ mem g ~lo ~hi ~build ~sync =
  let integ =
    match integ with None -> fun i -> integrate mem g i | Some f -> f
  in
  if build then begin
    let root = build_tree mem g in
    compute_masses mem g root
  end;
  sync ();
  for i = lo to hi - 1 do
    let fx, fy, fz = force_on mem g 0 i in
    mem.storef (body_slot g i 6) fx;
    mem.storef (body_slot g i 7) fy;
    mem.storef (body_slot g i 8) fz
  done;
  sync ();
  for i = lo to hi - 1 do
    integ i
  done;
  sync ()

let instance ?(vg = false) ?(scale = 1.0) () =
  let n = App.scaled scale 2048 in
  let max_cells = 4 * n in
  let g = { n; max_cells; bodies_off = 0; cells_off = n * body_slots } in
  let total_slots = (n * body_slots) + (max_cells * cell_slots) in
  {
    App.name = "barnes";
    workload = Printf.sprintf "%d bodies, theta=%.1f, %d steps%s" n theta steps
        (if vg then ", vg 512B" else "");
    heap_bytes = (total_slots * 8) + (1 lsl 16);
    setup =
      (fun h ->
        let prng = Prng.create 4242 in
        let init = Array.make total_slots 0.0 in
        for i = 0 to n - 1 do
          for d = 0 to 2 do
            init.((i * body_slots) + d) <- Prng.float prng box
          done;
          for d = 3 to 5 do
            init.((i * body_slots) + d) <- 0.02 *. (Prng.float prng 1.0 -. 0.5)
          done;
          init.((i * body_slots) + 9) <- 0.5 +. Prng.float prng 1.0
        done;
        (* Shared layout: bodies array then cells array. *)
        let bodies = Dsm.alloc_floats h (n * body_slots) in
        (* The tree is (re)built serially by processor 0; homing the
           cell array there keeps the build free of remote write misses
           (readers still fetch the cells, as on the real system). *)
        let cells =
          Dsm.alloc_floats h
            ?block_size:(if vg then Some 512 else None)
            ~home:0 (max_cells * cell_slots)
        in
        let addr_of_slot s =
          if s < g.cells_off then bodies + (8 * s)
          else cells + (8 * (s - g.cells_off))
        in
        for i = 0 to n - 1 do
          for k = 0 to body_slots - 1 do
            Dsm.poke_float h
              (addr_of_slot (body_slot g i k))
              init.((i * body_slots) + k)
          done
        done;
        (* Sequential reference over a plain array. *)
        let ref_mem =
          {
            loadf = (fun s -> init.(s));
            storef = (fun s v -> init.(s) <- v);
            loadi = (fun s -> int_of_float init.(s));
            storei = (fun s v -> init.(s) <- float_of_int v);
            work = ignore;
          }
        in
        for _s = 1 to steps do
          run_step ref_mem g ~lo:0 ~hi:n ~build:true ~sync:ignore
        done;
        let bar = Dsm.alloc_barrier h in
        let np = (Dsm.config h).Config.nprocs in
        let body ctx =
          let p = Dsm.pid ctx in
          let lo = p * n / np and hi = (p + 1) * n / np in
          let mem =
            {
              loadf = (fun s -> Dsm.load_float ctx (addr_of_slot s));
              storef = (fun s v -> Dsm.store_float ctx (addr_of_slot s) v);
              loadi = (fun s -> Dsm.load_int ctx (addr_of_slot s));
              storei = (fun s v -> Dsm.store_int ctx (addr_of_slot s) v);
              work = (fun c -> Dsm.compute ctx c);
            }
          in
          let iprog = Kernels.barnes_integrate ~dt ~flop_cycles in
          let integrate i =
            Dsm.Prog.run ctx iprog ~s:0.0 ~aux:Dsm.Prog.no_aux
              ~base0:(addr_of_slot (body_slot g i 0))
              ~base1:0 ~base2:0
          in
          for _s = 1 to steps do
            run_step ~integrate mem g ~lo ~hi ~build:(p = 0)
              ~sync:(fun () -> Dsm.barrier ctx bar)
          done
        in
        let verify h =
          let worst = ref 0.0 in
          for i = 0 to n - 1 do
            for d = 0 to 2 do
              let got = Dsm.peek_float h (addr_of_slot (body_slot g i d)) in
              let want = init.((i * body_slots) + d) in
              worst := Float.max !worst (Float.abs (got -. want))
            done
          done;
          if !worst < 1e-6 then
            App.pass ~detail:(Printf.sprintf "max pos err %.2e" !worst)
          else App.fail ~detail:(Printf.sprintf "max pos err %.2e" !worst)
        in
        (body, verify));
  }
