module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Prng = Shasta_util.Prng

let omega = 1.5
let flop_cycles = 6
let cell_cycles = 10 * flop_cycles

let reference_sweeps grid rhs n iters =
  let at i j = (i * (n + 2)) + j in
  for _t = 1 to iters do
    List.iter
      (fun parity ->
        for i = 1 to n do
          for j = 1 to n do
            if (i + j) land 1 = parity then begin
              let v =
                0.25
                *. (grid.(at (i - 1) j)
                   +. grid.(at (i + 1) j)
                   +. grid.(at i (j - 1))
                   +. grid.(at i (j + 1))
                   -. rhs.(at i j))
              in
              grid.(at i j) <- ((1.0 -. omega) *. grid.(at i j)) +. (omega *. v)
            end
          done
        done)
      [ 0; 1 ]
  done

let instance ?(vg = false) ?(scale = 1.0) () =
  ignore vg;
  (* Ocean has no Table-2 granularity change; rows are already
     line-contiguous. *)
  let n = App.scaled scale 256 in
  let iters = 8 in
  let dim = n + 2 in
  {
    App.name = "ocean";
    workload = Printf.sprintf "%dx%d ocean, %d red-black SOR sweeps" dim dim iters;
    heap_bytes = (2 * dim * dim * 8) + (1 lsl 16);
    setup =
      (fun h ->
        let np = (Dsm.config h).Config.nprocs in
        let grid = Dsm.alloc_floats h (dim * dim) in
        let rhs = Dsm.alloc_floats h (dim * dim) in
        let at i j = grid + (8 * ((i * dim) + j)) in
        let rhs_at i j = rhs + (8 * ((i * dim) + j)) in
        (* Row partition homed at its owner. *)
        let row_lo p = 1 + (p * n / np) in
        let row_hi p = (p + 1) * n / np in
        for p = 0 to np - 1 do
          if row_hi p >= row_lo p then begin
            Dsm.place h ~addr:(at (row_lo p) 0)
              ~len:((row_hi p - row_lo p + 1) * dim * 8)
              ~proc:p;
            Dsm.place h
              ~addr:(rhs_at (row_lo p) 0)
              ~len:((row_hi p - row_lo p + 1) * dim * 8)
              ~proc:p
          end
        done;
        let prng = Prng.create 77 in
        let reference = Array.make (dim * dim) 0.0 in
        let rhs_ref = Array.make (dim * dim) 0.0 in
        for i = 0 to dim - 1 do
          for j = 0 to dim - 1 do
            let v =
              if i = 0 || j = 0 || i = dim - 1 || j = dim - 1 then
                Float.sin (float_of_int (i + j))
              else Prng.float prng 1.0
            in
            reference.((i * dim) + j) <- v;
            Dsm.poke_float h (at i j) v;
            let f = 0.01 *. Float.sin (float_of_int ((3 * i) + j)) in
            rhs_ref.((i * dim) + j) <- f;
            Dsm.poke_float h (rhs_at i j) f
          done
        done;
        reference_sweeps reference rhs_ref n iters;
        let bar = Dsm.alloc_barrier h in
        let body ctx =
          let p = Dsm.pid ctx in
          let lo = row_lo p and hi = row_hi p in
          let row_bytes = dim * 8 in
          (* The row sweep compiled to access programs, one per column
             parity (see Kernels): the stencil as a raw in-batch
             program, the coefficient prefetch as a checked program —
             the coefficient grid is read through ordinary (unbatched)
             checked loads, like the multiple right-hand-side grids of
             the real Ocean. *)
          let row_p =
            [|
              Kernels.ocean_row ~n ~jstart:2 ~omega ~cell_cycles;
              Kernels.ocean_row ~n ~jstart:1 ~omega ~cell_cycles;
            |]
          in
          let rhs_p =
            [| Kernels.ocean_rhs_row ~n ~jstart:2;
               Kernels.ocean_rhs_row ~n ~jstart:1 |]
          in
          for _t = 1 to iters do
            List.iter
              (fun parity ->
                for i = lo to hi do
                  (* Columns j with (i + j) land 1 = parity; odd js
                     (jstart = 1) exactly when (i + 1) land 1 = parity. *)
                  let sel = if (i + 1) land 1 = parity then 1 else 0 in
                  let frow = Array.make (dim + 1) 0.0 in
                  Dsm.Prog.run ctx rhs_p.(sel) ~s:0.0 ~aux:frow
                    ~base0:(rhs_at i 0) ~base1:0 ~base2:0;
                  Dsm.batch ctx
                    [
                      (at (i - 1) 0, row_bytes, Dsm.R);
                      (at (i + 1) 0, row_bytes, Dsm.R);
                      (at i 0, row_bytes, Dsm.W);
                    ]
                    (fun () ->
                      Dsm.Prog.run ctx row_p.(sel) ~s:0.0 ~aux:frow
                        ~base0:(at (i - 1) 0)
                        ~base1:(at (i + 1) 0)
                        ~base2:(at i 0))
                done;
                Dsm.barrier ctx bar)
              [ 0; 1 ]
          done
        in
        let verify h =
          let worst = ref 0.0 in
          for i = 0 to dim - 1 do
            for j = 0 to dim - 1 do
              let got = Dsm.peek_float h (at i j) in
              let want = reference.((i * dim) + j) in
              worst := Float.max !worst (Float.abs (got -. want))
            done
          done;
          if !worst < 1e-9 then
            App.pass ~detail:(Printf.sprintf "max abs err %.2e" !worst)
          else App.fail ~detail:(Printf.sprintf "max abs err %.2e" !worst)
        in
        (body, verify));
  }
