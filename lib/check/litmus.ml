module Machine = Shasta_core.Machine
module Config = Shasta_core.Config
module Dsm = Shasta_core.Dsm
module Inspect = Shasta_core.Inspect
module Protocol = Shasta_core.Protocol
module Observer = Shasta_core.Observer
module Network = Shasta_net.Network
module Engine = Shasta_sim.Engine

(* ------------------------------------------------------------------ *)
(* Scenarios: 2 coherence nodes x 2 processors, all targeting the
   intra-node downgrade window of §3.4.3 — the paper's race-prone spot:
   a request arriving for a block while a downgrade for it is pending
   must queue on the downgrade entry and replay in arrival order. *)

type instance = {
  handle : Dsm.handle;
  body : Dsm.ctx -> unit;
  final : unit -> string option;  (** outcome check after a clean run *)
}

type scenario = {
  name : string;
  what : string;
  make : fault:Config.fault option -> instance;
}

(* Tiny heap and a low cycle ceiling: thousands of machines are built
   per exploration, and a schedule that livelocks must fail fast. *)
let make_cfg fault =
  Config.create ~variant:Smp ~nprocs:4 ~procs_per_node:2 ~clustering:2
    ~heap_bytes:(64 * 1024) ~max_cycles:2_000_000 ~sanitize:1 ?fault ()

(* Two sharers on one node, then an upgrade from the home node: the
   invalidation reaches one processor of node 0 (sibling misses
   coalesce, so the directory registers one sharer per node) and its
   handler must downgrade the sibling's private copy before
   acknowledging — delaying either the invalidate or the intra-node
   downgrade message stretches the §3.4.3 window across the barrier
   release. *)
let two_sharer_upgrade =
  {
    name = "two-sharer-upgrade";
    what = "2 sharers on one node invalidated by an upgrade";
    make =
      (fun ~fault ->
        let h = Dsm.create (make_cfg fault) in
        let x = Dsm.alloc h ~home:2 8 in
        let b0 = Dsm.alloc_barrier h and b1 = Dsm.alloc_barrier h in
        let got = Array.make 4 (-1) in
        let body ctx =
          let p = Dsm.pid ctx in
          if p < 2 then got.(p) <- Dsm.load_int ctx x;
          Dsm.barrier ctx b0;
          if p = 2 then Dsm.store_int ctx x 42;
          Dsm.barrier ctx b1;
          got.(p) <- Dsm.load_int ctx x
        in
        let final () =
          if Array.for_all (fun v -> v = 42) got then None
          else
            Some
              (Printf.sprintf "expected 42 everywhere, got [%s]"
                 (String.concat ";"
                    (Array.to_list (Array.map string_of_int got))))
        in
        { handle = h; body; final })
  }

(* Both processors of node 0 write (distinct words of) a block, so both
   hold private state; reads from the other node then force an
   exclusive-to-shared downgrade with a sibling target, and the second
   read forward can arrive during the pending downgrade. *)
let exclusive_handoff =
  {
    name = "exclusive-handoff";
    what = "E->S downgrade with sibling private state, racing read forwards";
    make =
      (fun ~fault ->
        let h = Dsm.create (make_cfg fault) in
        let x = Dsm.alloc h ~home:2 16 in
        let b0 = Dsm.alloc_barrier h in
        let sum = Array.make 4 0 in
        let body ctx =
          let p = Dsm.pid ctx in
          if p = 0 then Dsm.store_int ctx x 7;
          if p = 1 then Dsm.store_int ctx (x + 8) 9;
          Dsm.barrier ctx b0;
          sum.(p) <- Dsm.load_int ctx x + Dsm.load_int ctx (x + 8)
        in
        let final () =
          if Array.for_all (fun v -> v = 16) sum then None
          else
            Some
              (Printf.sprintf "expected 16 everywhere, got [%s]"
                 (String.concat ";"
                    (Array.to_list (Array.map string_of_int sum))))
        in
        { handle = h; body; final })
  }

(* Ownership stolen from a node whose processors both touched the block:
   the ->Invalid downgrade must lower both private entries and stamp the
   invalid-flag pattern (the two injectable faults live exactly here). *)
let store_steal =
  {
    name = "store-steal";
    what = "->Invalid downgrade (readex forward) with sibling private state";
    make =
      (fun ~fault ->
        let h = Dsm.create (make_cfg fault) in
        let x = Dsm.alloc h ~home:2 8 in
        let bpre = Dsm.alloc_barrier h in
        let b0 = Dsm.alloc_barrier h and b1 = Dsm.alloc_barrier h in
        let got = Array.make 4 (-1) in
        let body ctx =
          let p = Dsm.pid ctx in
          if p = 0 then Dsm.store_int ctx x 1;
          Dsm.barrier ctx bpre;
          if p = 1 then ignore (Dsm.load_int ctx x);
          Dsm.barrier ctx b0;
          if p = 2 then Dsm.store_int ctx x 2;
          Dsm.barrier ctx b1;
          got.(p) <- Dsm.load_int ctx x
        in
        let final () =
          if Array.for_all (fun v -> v = 2) got then None
          else
            Some
              (Printf.sprintf "expected 2 everywhere, got [%s]"
                 (String.concat ";"
                    (Array.to_list (Array.map string_of_int got))))
        in
        { handle = h; body; final })
  }

(* Lock-serialized increments ping-ponging a block between the nodes:
   ownership transfer under contention, with downgrades on both sides. *)
let lock_counter =
  {
    name = "lock-counter";
    what = "lock-serialized counter ping-ponging ownership between nodes";
    make =
      (fun ~fault ->
        let h = Dsm.create (make_cfg fault) in
        let x = Dsm.alloc h ~home:0 8 in
        let l = Dsm.alloc_lock h in
        let b0 = Dsm.alloc_barrier h in
        let got = Array.make 4 (-1) in
        let body ctx =
          let p = Dsm.pid ctx in
          Dsm.lock ctx l;
          Dsm.store_int ctx x (Dsm.load_int ctx x + 1);
          Dsm.unlock ctx l;
          Dsm.barrier ctx b0;
          got.(p) <- Dsm.load_int ctx x
        in
        let final () =
          if Array.for_all (fun v -> v = 4) got then None
          else
            Some
              (Printf.sprintf "expected 4 everywhere, got [%s]"
                 (String.concat ";"
                    (Array.to_list (Array.map string_of_int got))))
        in
        { handle = h; body; final })
  }

let scenarios = [ two_sharer_upgrade; exclusive_handoff; store_steal; lock_counter ]

(* ------------------------------------------------------------------ *)
(* Exploration: replay-based delay-bounded DFS. A schedule is encoded
   as a prefix of choice indices, one per ELIGIBLE decision point — a
   scheduling decision at which some processor other than the (clock,
   pid) minimum has a message due (arrived at or before its own clock),
   so resuming it next runs a protocol handler ahead of lower-clock
   work. Reordering handlers against inline application code and
   against each other is precisely the protocol's race surface (§3.3,
   §3.4.3); every other point is kept on the default schedule, which
   collapses the thousands of spin-wait yields a run performs into a
   tree focused on handler interleavings. Index 0 of a decision is the
   default (the global minimum); beyond the prefix every point takes
   index 0, so replaying a prefix is deterministic and children can be
   derived from a parent's trace. *)

let due (m : Machine.t) p =
  match m.Machine.procs.(p).Machine.engine with
  | None -> false
  | Some ep -> Network.earliest_arrival m.Machine.net ~dst:p <= Engine.now ep

(* The decision's candidates: the default choice, then every other
   runnable processor with a due message; [None] when that leaves no
   real alternative. *)
let eligible_alts (m : Machine.t) (cands : int array) =
  let alts = ref [] in
  for i = Array.length cands - 1 downto 1 do
    if due m cands.(i) then alts := cands.(i) :: !alts
  done;
  match !alts with
  | [] -> None
  | alts -> Some (Array.of_list (cands.(0) :: alts))

type run_record = {
  lens : int array;  (** candidate count at each eligible point *)
  cands : int array array;  (** the candidate pids at each eligible point *)
  seg_procs : int list array;  (** processors stepped after point i *)
  seg_dsts : int list array;  (** message destinations sent after point i *)
  nodes : int array;  (** proc -> coherence node *)
  failure : string option;
}

let run_one sc ~fault (prefix : int array) =
  let { handle = h; body; final } = sc.make ~fault in
  let m = Dsm.machine h in
  let san = Sanitizer.attach m in
  let lens = ref [] and cands = ref [] and segs = ref [] in
  let nelig = ref 0 in
  let seg_proc p = match !segs with [] -> () | (ps, _) :: _ -> ps := p :: !ps in
  let seg_dst d = match !segs with [] -> () | (_, ds) :: _ -> ds := d :: !ds in
  Machine.add_observer m
    {
      Observer.nil with
      Observer.on_send = (fun ~src:_ ~dst ~now:_ _ -> seg_dst dst);
    };
  (* Consecutive decisions with an identical alternative set are the
     same choice offered again a few cycles later: only the first one
     consumes a prefix slot ("run the handler at its first opportunity
     or keep it delayed until the situation changes"). *)
  let last = ref [||] in
  let choose cs =
    let pick =
      match eligible_alts m cs with
      | None ->
        last := [||];
        cs.(0)
      | Some alts when alts = !last -> cs.(0)
      | Some alts ->
        last := alts;
        let i = !nelig in
        incr nelig;
        let len = Array.length alts in
        lens := len :: !lens;
        cands := alts :: !cands;
        segs := (ref [], ref []) :: !segs;
        let c =
          if i < Array.length prefix && prefix.(i) < len then prefix.(i) else 0
        in
        alts.(c)
    in
    seg_proc pick;
    pick
  in
  let failure =
    try
      Dsm.run_controlled ~choose h body;
      if Sanitizer.violation_count san > 0 then
        Some
          ("sanitizer: "
          ^ String.concat "; "
              (List.map Inspect.describe (Sanitizer.violations san)))
      else
        match Inspect.report m with
        | [] -> final ()
        | vs ->
          Some
            ("post-run invariants: "
            ^ String.concat "; " (List.map Inspect.describe vs))
    with
    | Engine.Cycle_limit p ->
      Some (Printf.sprintf "livelock: processor %d hit the cycle limit" p)
    | Protocol.Protocol_violation _ as e -> Some (Printexc.to_string e)
    | Inspect.Violation _ as e -> Some (Printexc.to_string e)
    | Invalid_argument msg -> Some ("Invalid_argument: " ^ msg)
    | Failure msg -> Some ("Failure: " ^ msg)
  in
  {
    lens = Array.of_list (List.rev !lens);
    cands = Array.of_list (List.rev !cands);
    seg_procs = Array.of_list (List.rev_map (fun (ps, _) -> List.rev !ps) !segs);
    seg_dsts = Array.of_list (List.rev_map (fun (_, ds) -> List.rev !ds) !segs);
    nodes =
      Array.init m.Machine.cfg.Config.nprocs (fun p -> Machine.node_of m p);
    failure;
  }

(* Simple sleep-set reduction: deviating at point [d] in favor of
   processor [q] only matters if the segment the default schedule ran
   between points [d] and [d+1] interacts with [q] — some processor of
   [q]'s node stepped (shared tables and images), or a message was sent
   to [q]. An independent segment commutes with [q]'s next step, and the
   commuted schedule is reachable by deviating at [d+1] instead, which
   the enumeration covers. *)
let depends r d q =
  d >= Array.length r.seg_procs
  || List.exists (fun p -> r.nodes.(p) = r.nodes.(q)) r.seg_procs.(d)
  || List.mem q r.seg_dsts.(d)

type failure = { prefix : int list; what : string }

type report = {
  scenario : string;
  what : string;
  runs : int;
  decision_points : int;  (** eligible points on the default schedule *)
  capped : bool;  (** run budget exhausted before the frontier emptied *)
  failures : failure list;
}

let check ?fault ?(budget = 2) ?(max_runs = 20_000) sc =
  let runs = ref 0 and capped = ref false and failures = ref [] in
  let decision_points = ref 0 in
  let frontier = ref [ [||] ] in
  while !frontier <> [] do
    match !frontier with
    | [] -> ()
    | prefix :: rest ->
      if !runs >= max_runs then begin
        capped := true;
        frontier := []
      end
      else begin
        frontier := rest;
        let r = run_one sc ~fault prefix in
        incr runs;
        if Array.length prefix = 0 then
          decision_points := Array.length r.lens;
        (match r.failure with
        | Some what ->
          failures := { prefix = Array.to_list prefix; what } :: !failures
        | None ->
          (* Only clean runs expand: a failing schedule is already a
             result, and its trace past the failure is meaningless. *)
          let deviations =
            Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 prefix
          in
          if deviations < budget then
            (* Depth-first: push deeper deviations first so sibling
               schedules that share a long prefix run back-to-back. *)
            for d = Array.length r.lens - 1 downto Array.length prefix do
              for alt = r.lens.(d) - 1 downto 1 do
                if depends r d r.cands.(d).(alt) then begin
                  let child = Array.make (d + 1) 0 in
                  Array.blit prefix 0 child 0 (Array.length prefix);
                  child.(d) <- alt;
                  frontier := child :: !frontier
                end
              done
            done)
      end
  done;
  {
    scenario = sc.name;
    what = sc.what;
    runs = !runs;
    decision_points = !decision_points;
    capped = !capped;
    failures = List.rev !failures;
  }

let check_all ?fault ?budget ?max_runs () =
  List.map (fun sc -> check ?fault ?budget ?max_runs sc) scenarios

let pp_report ppf r =
  Format.fprintf ppf "%-20s %5d runs, %3d decision points%s: %s" r.scenario
    r.runs r.decision_points
    (if r.capped then " (capped)" else "")
    (match r.failures with
    | [] -> "ok"
    | fs ->
      Format.asprintf "%d schedule(s) FAILED, first: [%s] %s" (List.length fs)
        (String.concat ";"
           (List.map string_of_int (List.hd fs).prefix))
        (List.hd fs).what)
