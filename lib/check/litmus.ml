module Machine = Shasta_core.Machine
module Config = Shasta_core.Config
module Dsm = Shasta_core.Dsm
module Inspect = Shasta_core.Inspect
module Protocol = Shasta_core.Protocol
module Observer = Shasta_core.Observer
module Network = Shasta_net.Network
module Engine = Shasta_sim.Engine

(* ------------------------------------------------------------------ *)
(* Scenarios: 2 coherence nodes x 2 processors, all targeting the
   intra-node downgrade window of §3.4.3 — the paper's race-prone spot:
   a request arriving for a block while a downgrade for it is pending
   must queue on the downgrade entry and replay in arrival order. *)

type instance = {
  handle : Dsm.handle;
  body : Dsm.ctx -> unit;
  final : unit -> string option;  (** outcome check after a clean run *)
  crash_final : live:(int -> bool) -> string option;
      (** outcome check after a run with a scheduled crash: dead
          processors never ran their final loads, and recovery may
          legitimately roll a lost block back to an older (or zeroed)
          value, so each live processor's observation need only be in
          the scenario's reachable-value set *)
}

type scenario = {
  name : string;
  what : string;
  make : fault:Config.fault option -> instance;
}

(* Tiny heap and a low cycle ceiling: thousands of machines are built
   per exploration, and a schedule that livelocks must fail fast. *)
let make_cfg fault =
  Config.create ~variant:Smp ~nprocs:4 ~procs_per_node:2 ~clustering:2
    ~heap_bytes:(64 * 1024) ~max_cycles:2_000_000 ~sanitize:1 ?fault ()

(* Crash-aware outcome helper: every live processor's recorded value
   must be in [allowed] (which always includes the zero a recovery
   re-initialization can surface). *)
let live_values ~live got allowed =
  let bad = ref [] in
  Array.iteri
    (fun p v -> if live p && not (List.mem v allowed) then bad := (p, v) :: !bad)
    got;
  match List.rev !bad with
  | [] -> None
  | l ->
    Some
      (Printf.sprintf "live values outside {%s}: [%s]"
         (String.concat ";" (List.map string_of_int allowed))
         (String.concat ";"
            (List.map (fun (p, v) -> Printf.sprintf "p%d=%d" p v) l)))

(* Two sharers on one node, then an upgrade from the home node: the
   invalidation reaches one processor of node 0 (sibling misses
   coalesce, so the directory registers one sharer per node) and its
   handler must downgrade the sibling's private copy before
   acknowledging — delaying either the invalidate or the intra-node
   downgrade message stretches the §3.4.3 window across the barrier
   release. *)
let two_sharer_upgrade =
  {
    name = "two-sharer-upgrade";
    what = "2 sharers on one node invalidated by an upgrade";
    make =
      (fun ~fault ->
        let h = Dsm.create (make_cfg fault) in
        let x = Dsm.alloc h ~home:2 8 in
        let b0 = Dsm.alloc_barrier h and b1 = Dsm.alloc_barrier h in
        let got = Array.make 4 (-1) in
        let body ctx =
          let p = Dsm.pid ctx in
          if p < 2 then got.(p) <- Dsm.load_int ctx x;
          Dsm.barrier ctx b0;
          if p = 2 then Dsm.store_int ctx x 42;
          Dsm.barrier ctx b1;
          got.(p) <- Dsm.load_int ctx x
        in
        let final () =
          if Array.for_all (fun v -> v = 42) got then None
          else
            Some
              (Printf.sprintf "expected 42 everywhere, got [%s]"
                 (String.concat ";"
                    (Array.to_list (Array.map string_of_int got))))
        in
        let crash_final ~live = live_values ~live got [ 0; 42 ] in
        { handle = h; body; final; crash_final })
  }

(* Both processors of node 0 write (distinct words of) a block, so both
   hold private state; reads from the other node then force an
   exclusive-to-shared downgrade with a sibling target, and the second
   read forward can arrive during the pending downgrade. *)
let exclusive_handoff =
  {
    name = "exclusive-handoff";
    what = "E->S downgrade with sibling private state, racing read forwards";
    make =
      (fun ~fault ->
        let h = Dsm.create (make_cfg fault) in
        let x = Dsm.alloc h ~home:2 16 in
        let b0 = Dsm.alloc_barrier h in
        let sum = Array.make 4 0 in
        let body ctx =
          let p = Dsm.pid ctx in
          if p = 0 then Dsm.store_int ctx x 7;
          if p = 1 then Dsm.store_int ctx (x + 8) 9;
          Dsm.barrier ctx b0;
          sum.(p) <- Dsm.load_int ctx x + Dsm.load_int ctx (x + 8)
        in
        let final () =
          if Array.for_all (fun v -> v = 16) sum then None
          else
            Some
              (Printf.sprintf "expected 16 everywhere, got [%s]"
                 (String.concat ";"
                    (Array.to_list (Array.map string_of_int sum))))
        in
        (* each word is 0 or its written value, independently *)
        let crash_final ~live = live_values ~live sum [ 0; 7; 9; 16 ] in
        { handle = h; body; final; crash_final })
  }

(* Ownership stolen from a node whose processors both touched the block:
   the ->Invalid downgrade must lower both private entries and stamp the
   invalid-flag pattern (the two injectable faults live exactly here). *)
let store_steal =
  {
    name = "store-steal";
    what = "->Invalid downgrade (readex forward) with sibling private state";
    make =
      (fun ~fault ->
        let h = Dsm.create (make_cfg fault) in
        let x = Dsm.alloc h ~home:2 8 in
        let bpre = Dsm.alloc_barrier h in
        let b0 = Dsm.alloc_barrier h and b1 = Dsm.alloc_barrier h in
        let got = Array.make 4 (-1) in
        let body ctx =
          let p = Dsm.pid ctx in
          if p = 0 then Dsm.store_int ctx x 1;
          Dsm.barrier ctx bpre;
          if p = 1 then ignore (Dsm.load_int ctx x);
          Dsm.barrier ctx b0;
          if p = 2 then Dsm.store_int ctx x 2;
          Dsm.barrier ctx b1;
          got.(p) <- Dsm.load_int ctx x
        in
        let final () =
          if Array.for_all (fun v -> v = 2) got then None
          else
            Some
              (Printf.sprintf "expected 2 everywhere, got [%s]"
                 (String.concat ";"
                    (Array.to_list (Array.map string_of_int got))))
        in
        let crash_final ~live = live_values ~live got [ 0; 1; 2 ] in
        { handle = h; body; final; crash_final })
  }

(* Lock-serialized increments ping-ponging a block between the nodes:
   ownership transfer under contention, with downgrades on both sides. *)
let lock_counter =
  {
    name = "lock-counter";
    what = "lock-serialized counter ping-ponging ownership between nodes";
    make =
      (fun ~fault ->
        let h = Dsm.create (make_cfg fault) in
        let x = Dsm.alloc h ~home:0 8 in
        let l = Dsm.alloc_lock h in
        let b0 = Dsm.alloc_barrier h in
        let got = Array.make 4 (-1) in
        let body ctx =
          let p = Dsm.pid ctx in
          Dsm.lock ctx l;
          Dsm.store_int ctx x (Dsm.load_int ctx x + 1);
          Dsm.unlock ctx l;
          Dsm.barrier ctx b0;
          got.(p) <- Dsm.load_int ctx x
        in
        let final () =
          if Array.for_all (fun v -> v = 4) got then None
          else
            Some
              (Printf.sprintf "expected 4 everywhere, got [%s]"
                 (String.concat ";"
                    (Array.to_list (Array.map string_of_int got))))
        in
        (* the counter is monotonic; dead processors' increments may or
           may not have landed *)
        let crash_final ~live = live_values ~live got [ 0; 1; 2; 3; 4 ] in
        { handle = h; body; final; crash_final })
  }

let scenarios = [ two_sharer_upgrade; exclusive_handoff; store_steal; lock_counter ]

(* ------------------------------------------------------------------ *)
(* Exploration: replay-based delay-bounded DFS. A schedule is encoded
   as a prefix of choice indices, one per ELIGIBLE decision point — a
   scheduling decision at which some processor other than the (clock,
   pid) minimum has a message due (arrived at or before its own clock),
   so resuming it next runs a protocol handler ahead of lower-clock
   work. Reordering handlers against inline application code and
   against each other is precisely the protocol's race surface (§3.3,
   §3.4.3); every other point is kept on the default schedule, which
   collapses the thousands of spin-wait yields a run performs into a
   tree focused on handler interleavings. Index 0 of a decision is the
   default (the global minimum); beyond the prefix every point takes
   index 0, so replaying a prefix is deterministic and children can be
   derived from a parent's trace. *)

let due (m : Machine.t) p =
  match m.Machine.procs.(p).Machine.engine with
  | None -> false
  | Some ep -> Network.earliest_arrival m.Machine.net ~dst:p <= Engine.now ep

(* The decision's candidates: the default choice, then every other
   runnable processor with a due message; [None] when that leaves no
   real alternative. *)
let eligible_alts (m : Machine.t) (cands : int array) =
  let alts = ref [] in
  for i = Array.length cands - 1 downto 1 do
    if due m cands.(i) then alts := cands.(i) :: !alts
  done;
  match !alts with
  | [] -> None
  | alts -> Some (Array.of_list (cands.(0) :: alts))

type run_record = {
  lens : int array;  (** candidate count at each eligible point *)
  cands : int array array;  (** the candidate pids at each eligible point *)
  seg_procs : int list array;  (** processors stepped after point i *)
  seg_dsts : int list array;  (** message destinations sent after point i *)
  nodes : int array;  (** proc -> coherence node *)
  send_clocks : int list;  (** distinct send timestamps, ascending *)
  failure : string option;
}

let run_one ?(mk_events = fun _ -> []) sc ~fault (prefix : int array) =
  let { handle = h; body; final; crash_final } = sc.make ~fault in
  let m = Dsm.machine h in
  let events = mk_events h in
  let san = Sanitizer.attach m in
  let lens = ref [] and cands = ref [] and segs = ref [] in
  let clocks = ref [] in
  let nelig = ref 0 in
  let seg_proc p = match !segs with [] -> () | (ps, _) :: _ -> ps := p :: !ps in
  let seg_dst d = match !segs with [] -> () | (_, ds) :: _ -> ds := d :: !ds in
  Machine.add_observer m
    {
      Observer.nil with
      Observer.on_send =
        (fun ~src:_ ~dst ~now _ ->
          seg_dst dst;
          clocks := now :: !clocks);
    };
  (* Consecutive decisions with an identical alternative set are the
     same choice offered again a few cycles later: only the first one
     consumes a prefix slot ("run the handler at its first opportunity
     or keep it delayed until the situation changes"). *)
  let last = ref [||] in
  let choose cs =
    let pick =
      match eligible_alts m cs with
      | None ->
        last := [||];
        cs.(0)
      | Some alts when alts = !last -> cs.(0)
      | Some alts ->
        last := alts;
        let i = !nelig in
        incr nelig;
        let len = Array.length alts in
        lens := len :: !lens;
        cands := alts :: !cands;
        segs := (ref [], ref []) :: !segs;
        let c =
          if i < Array.length prefix && prefix.(i) < len then prefix.(i) else 0
        in
        alts.(c)
    in
    seg_proc pick;
    pick
  in
  let failure =
    try
      Dsm.run_controlled ~choose ~events h body;
      if Sanitizer.violation_count san > 0 then
        Some
          ("sanitizer: "
          ^ String.concat "; "
              (List.map Inspect.describe (Sanitizer.violations san)))
      else
        match Inspect.report m with
        | [] ->
          if m.Machine.crashes > 0 then
            crash_final ~live:(fun p -> not m.Machine.dead.(p))
          else final ()
        | vs ->
          Some
            ("post-run invariants: "
            ^ String.concat "; " (List.map Inspect.describe vs))
    with
    | Engine.Cycle_limit p ->
      Some (Printf.sprintf "livelock: processor %d hit the cycle limit" p)
    | Protocol.Protocol_violation _ as e -> Some (Printexc.to_string e)
    | Inspect.Violation _ as e -> Some (Printexc.to_string e)
    | Shasta_recover.Recover.Recovery_violation _ as e ->
      Some (Printexc.to_string e)
    | Invalid_argument msg -> Some ("Invalid_argument: " ^ msg)
    | Failure msg -> Some ("Failure: " ^ msg)
  in
  {
    lens = Array.of_list (List.rev !lens);
    cands = Array.of_list (List.rev !cands);
    seg_procs = Array.of_list (List.rev_map (fun (ps, _) -> List.rev !ps) !segs);
    seg_dsts = Array.of_list (List.rev_map (fun (_, ds) -> List.rev !ds) !segs);
    nodes =
      Array.init m.Machine.cfg.Config.nprocs (fun p -> Machine.node_of m p);
    send_clocks = List.sort_uniq compare !clocks;
    failure;
  }

(* Simple sleep-set reduction: deviating at point [d] in favor of
   processor [q] only matters if the segment the default schedule ran
   between points [d] and [d+1] interacts with [q] — some processor of
   [q]'s node stepped (shared tables and images), or a message was sent
   to [q]. An independent segment commutes with [q]'s next step, and the
   commuted schedule is reachable by deviating at [d+1] instead, which
   the enumeration covers. *)
let depends r d q =
  d >= Array.length r.seg_procs
  || List.exists (fun p -> r.nodes.(p) = r.nodes.(q)) r.seg_procs.(d)
  || List.mem q r.seg_dsts.(d)

type failure = { prefix : int list; what : string }

type report = {
  scenario : string;
  what : string;
  runs : int;
  decision_points : int;  (** eligible points on the default schedule *)
  capped : bool;  (** run budget exhausted before the frontier emptied *)
  failures : failure list;
}

let check ?fault ?(budget = 2) ?(max_runs = 20_000) sc =
  let runs = ref 0 and capped = ref false and failures = ref [] in
  let decision_points = ref 0 in
  let frontier = ref [ [||] ] in
  while !frontier <> [] do
    match !frontier with
    | [] -> ()
    | prefix :: rest ->
      if !runs >= max_runs then begin
        capped := true;
        frontier := []
      end
      else begin
        frontier := rest;
        let r = run_one sc ~fault prefix in
        incr runs;
        if Array.length prefix = 0 then
          decision_points := Array.length r.lens;
        (match r.failure with
        | Some what ->
          failures := { prefix = Array.to_list prefix; what } :: !failures
        | None ->
          (* Only clean runs expand: a failing schedule is already a
             result, and its trace past the failure is meaningless. *)
          let deviations =
            Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 prefix
          in
          if deviations < budget then
            (* Depth-first: push deeper deviations first so sibling
               schedules that share a long prefix run back-to-back. *)
            for d = Array.length r.lens - 1 downto Array.length prefix do
              for alt = r.lens.(d) - 1 downto 1 do
                if depends r d r.cands.(d).(alt) then begin
                  let child = Array.make (d + 1) 0 in
                  Array.blit prefix 0 child 0 (Array.length prefix);
                  child.(d) <- alt;
                  frontier := child :: !frontier
                end
              done
            done)
      end
  done;
  {
    scenario = sc.name;
    what = sc.what;
    runs = !runs;
    decision_points = !decision_points;
    capped = !capped;
    failures = List.rev !failures;
  }

let check_all ?fault ?budget ?max_runs () =
  List.map (fun sc -> check ?fault ?budget ?max_runs sc) scenarios

let pp_report ppf r =
  Format.fprintf ppf "%-20s %5d runs, %3d decision points%s: %s" r.scenario
    r.runs r.decision_points
    (if r.capped then " (capped)" else "")
    (match r.failures with
    | [] -> "ok"
    | fs ->
      Format.asprintf "%d schedule(s) FAILED, first: [%s] %s" (List.length fs)
        (String.concat ";"
           (List.map string_of_int (List.hd fs).prefix))
        (List.hd fs).what)

(* ------------------------------------------------------------------ *)
(* Crash placement sweep: the same delay-bounded DFS, with a node crash
   scheduled at a virtual cycle harvested from the default run's send
   timestamps — every distinct in-flight-message window is a candidate
   placement, so the crash lands mid-downgrade, mid-miss, mid-barrier,
   and between a checkpoint and its log tail, not only at quiescent
   points. Each placement is swept for both crashable nodes and
   explored around with schedule deviations; a run passes when it
   recovers with the sanitizer, the post-run invariant sweep, and the
   crash-aware outcome check all clean, or fails with the typed
   Recovery_violation (a Data_loss under sharer-pull recovery is the
   documented honest outcome when every copy died, and is counted
   rather than failed). *)

type crash_mode = Pull | Ckpt of int  (** checkpoint interval, cycles *)

type crash_failure = {
  cf_at : int;  (** crash cycle *)
  cf_node : int;  (** crashed node *)
  cf_prefix : int list;  (** schedule deviation prefix *)
  cf_what : string;
}

type crash_report = {
  cc_scenario : string;
  cc_mode : string;  (** "pull" or "ckpt" *)
  cc_placements : int;  (** (cycle, node) pairs swept *)
  cc_runs : int;
  cc_data_loss : int;  (** typed Data_loss outcomes (pull mode only) *)
  cc_capped : bool;
  cc_failures : crash_failure list;
}

(* Evenly subsample [l] down to at most [k] elements. *)
let subsample k l =
  let n = List.length l in
  if n <= k then l
  else
    let a = Array.of_list l in
    List.init k (fun i -> a.(i * n / k))

let is_data_loss what =
  let pre = "Recovery_violation (Data_loss" in
  String.length what >= String.length pre
  && String.sub what 0 (String.length pre) = pre

let check_crash ?(mode = Pull) ?(budget = 1) ?(max_runs = 4_000)
    ?(max_clocks = 12) sc =
  (* Harvest crash windows from the default schedule: one cycle past
     each distinct send timestamp, so the sent message is in flight
     when the node dies. *)
  let r0 = run_one sc ~fault:None [||] in
  let clocks =
    subsample max_clocks (List.map (fun c -> c + 1) r0.send_clocks)
  in
  let placements =
    List.concat_map (fun at -> [ (at, 0); (at, 1) ]) clocks
  in
  let runs = ref 0 and capped = ref false in
  let data_loss = ref 0 and failures = ref [] in
  List.iter
    (fun (at, node) ->
      let mk_events h =
        match mode with
        | Pull -> [ Shasta_recover.Crash.kill h ~node ~at ]
        | Ckpt interval ->
          let ckpt =
            Shasta_recover.Checkpoint.attach (Dsm.machine h) ~interval
          in
          [ Shasta_recover.Crash.with_checkpoint h ~node ~at ~ckpt ]
      in
      let frontier = ref [ [||] ] in
      while !frontier <> [] do
        match !frontier with
        | [] -> ()
        | prefix :: rest ->
          if !runs >= max_runs then begin
            capped := true;
            frontier := []
          end
          else begin
            frontier := rest;
            let r = run_one ~mk_events sc ~fault:None prefix in
            incr runs;
            (match r.failure with
            | Some what when mode = Pull && is_data_loss what ->
              incr data_loss
            | Some what ->
              failures :=
                { cf_at = at; cf_node = node;
                  cf_prefix = Array.to_list prefix; cf_what = what }
                :: !failures
            | None ->
              let deviations =
                Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 prefix
              in
              if deviations < budget then
                for d = Array.length r.lens - 1 downto Array.length prefix do
                  for alt = r.lens.(d) - 1 downto 1 do
                    if depends r d r.cands.(d).(alt) then begin
                      let child = Array.make (d + 1) 0 in
                      Array.blit prefix 0 child 0 (Array.length prefix);
                      child.(d) <- alt;
                      frontier := child :: !frontier
                    end
                  done
                done)
          end
      done)
    placements;
  {
    cc_scenario = sc.name;
    cc_mode = (match mode with Pull -> "pull" | Ckpt _ -> "ckpt");
    cc_placements = List.length placements;
    cc_runs = !runs;
    cc_data_loss = !data_loss;
    cc_capped = !capped;
    cc_failures = List.rev !failures;
  }

let check_crash_all ?mode ?budget ?max_runs ?max_clocks () =
  List.map (fun sc -> check_crash ?mode ?budget ?max_runs ?max_clocks sc)
    scenarios

let pp_crash_report ppf r =
  Format.fprintf ppf "%-20s %-4s %3d placements, %5d runs, %3d data-loss%s: %s"
    r.cc_scenario r.cc_mode r.cc_placements r.cc_runs r.cc_data_loss
    (if r.cc_capped then " (capped)" else "")
    (match r.cc_failures with
    | [] -> "ok"
    | fs ->
      let f = List.hd fs in
      Format.asprintf "%d placement(s) FAILED, first: node %d @%d [%s] %s"
        (List.length fs) f.cf_node f.cf_at
        (String.concat ";" (List.map string_of_int f.cf_prefix))
        f.cf_what)
