(** Litmus model checker: bounded exhaustive exploration of scheduler
    interleavings over small 2-node / 4-processor scenarios aimed at the
    intra-node downgrade window (§3.4.3).

    Each scenario is replayed under {!Shasta_core.Dsm.run_controlled}
    with schedules encoded as prefixes of choice indices over {e
    eligible} decision points (>= 2 runnable processors while protocol
    work is in flight); the tree of deviations from the default schedule
    is explored depth-first up to a deviation budget, with a simple
    sleep-set reduction pruning alternatives that cannot interact with
    the segment they would displace. Every run is checked by the online
    {!Sanitizer}, the {!Shasta_core.Inspect} post-run sweep, a
    scenario-specific outcome predicate, and the cycle-limit livelock
    backstop. *)

type instance = {
  handle : Shasta_core.Dsm.handle;
  body : Shasta_core.Dsm.ctx -> unit;
  final : unit -> string option;
      (** outcome check after a clean run; [Some what] = failure *)
  crash_final : live:(int -> bool) -> string option;
      (** outcome check after a run with a scheduled crash: dead
          processors never ran their final loads, and recovery may
          legitimately roll a lost block back to an older (or zeroed)
          value, so each live processor's observation need only be in
          the scenario's reachable-value set *)
}

type scenario = {
  name : string;
  what : string;  (** one-line description of the exercised window *)
  make : fault:Shasta_core.Config.fault option -> instance;
}

val scenarios : scenario list
(** The built-in suite; every scenario drives at least one downgrade
    with queued-or-racing traffic on the downgraded block. *)

type failure = { prefix : int list; what : string }
(** A failing schedule: the choice-index prefix reproduces it exactly
    under [check] with the same scenario and fault. *)

type report = {
  scenario : string;
  what : string;
  runs : int;
  decision_points : int;  (** eligible points on the default schedule *)
  capped : bool;  (** run budget exhausted before the frontier emptied *)
  failures : failure list;
}

val check :
  ?fault:Shasta_core.Config.fault ->
  ?budget:int ->
  ?max_runs:int ->
  scenario ->
  report
(** Explore one scenario. [budget] (default 2) bounds deviations from
    the default schedule per run; [max_runs] (default 20000) bounds
    total replays — [capped] reports whether it bit. The built-in suite
    completes uncapped at the defaults. *)

val check_all :
  ?fault:Shasta_core.Config.fault ->
  ?budget:int ->
  ?max_runs:int ->
  unit ->
  report list

val pp_report : Format.formatter -> report -> unit

(** {1 Crash placement sweep}

    The same delay-bounded DFS with a node crash scheduled at a virtual
    cycle harvested from the default run's send timestamps, so the
    crash lands inside in-flight-message windows (mid-downgrade,
    mid-miss, mid-barrier). Each placement is swept for both nodes and
    explored around with schedule deviations; a run must recover with
    the sanitizer, the post-run invariant sweep, and the crash-aware
    outcome check clean, or fail with the typed
    {!Shasta_recover.Recover.Recovery_violation}. *)

type crash_mode =
  | Pull  (** sharer-pull recovery; a typed [Data_loss] is counted, not failed *)
  | Ckpt of int
      (** checkpoint + log-replay recovery at the given interval
          (cycles); any [Data_loss] is a failure *)

type crash_failure = {
  cf_at : int;  (** crash cycle *)
  cf_node : int;  (** crashed node *)
  cf_prefix : int list;  (** schedule deviation prefix *)
  cf_what : string;
}

type crash_report = {
  cc_scenario : string;
  cc_mode : string;  (** "pull" or "ckpt" *)
  cc_placements : int;  (** (cycle, node) pairs swept *)
  cc_runs : int;
  cc_data_loss : int;  (** typed Data_loss outcomes (pull mode only) *)
  cc_capped : bool;
  cc_failures : crash_failure list;
}

val check_crash :
  ?mode:crash_mode ->
  ?budget:int ->
  ?max_runs:int ->
  ?max_clocks:int ->
  scenario ->
  crash_report
(** Sweep one scenario. [mode] defaults to [Pull], [budget] (schedule
    deviations per placement) to 1, [max_runs] to 4000 across all
    placements, [max_clocks] (crash cycles sampled from the default
    run) to 12. *)

val check_crash_all :
  ?mode:crash_mode ->
  ?budget:int ->
  ?max_runs:int ->
  ?max_clocks:int ->
  unit ->
  crash_report list

val pp_crash_report : Format.formatter -> crash_report -> unit
