(** Litmus model checker: bounded exhaustive exploration of scheduler
    interleavings over small 2-node / 4-processor scenarios aimed at the
    intra-node downgrade window (§3.4.3).

    Each scenario is replayed under {!Shasta_core.Dsm.run_controlled}
    with schedules encoded as prefixes of choice indices over {e
    eligible} decision points (>= 2 runnable processors while protocol
    work is in flight); the tree of deviations from the default schedule
    is explored depth-first up to a deviation budget, with a simple
    sleep-set reduction pruning alternatives that cannot interact with
    the segment they would displace. Every run is checked by the online
    {!Sanitizer}, the {!Shasta_core.Inspect} post-run sweep, a
    scenario-specific outcome predicate, and the cycle-limit livelock
    backstop. *)

type instance = {
  handle : Shasta_core.Dsm.handle;
  body : Shasta_core.Dsm.ctx -> unit;
  final : unit -> string option;
      (** outcome check after a clean run; [Some what] = failure *)
}

type scenario = {
  name : string;
  what : string;  (** one-line description of the exercised window *)
  make : fault:Shasta_core.Config.fault option -> instance;
}

val scenarios : scenario list
(** The built-in suite; every scenario drives at least one downgrade
    with queued-or-racing traffic on the downgraded block. *)

type failure = { prefix : int list; what : string }
(** A failing schedule: the choice-index prefix reproduces it exactly
    under [check] with the same scenario and fault. *)

type report = {
  scenario : string;
  what : string;
  runs : int;
  decision_points : int;  (** eligible points on the default schedule *)
  capped : bool;  (** run budget exhausted before the frontier emptied *)
  failures : failure list;
}

val check :
  ?fault:Shasta_core.Config.fault ->
  ?budget:int ->
  ?max_runs:int ->
  scenario ->
  report
(** Explore one scenario. [budget] (default 2) bounds deviations from
    the default schedule per run; [max_runs] (default 20000) bounds
    total replays — [capped] reports whether it bit. The built-in suite
    completes uncapped at the defaults. *)

val check_all :
  ?fault:Shasta_core.Config.fault ->
  ?budget:int ->
  ?max_runs:int ->
  unit ->
  report list

val pp_report : Format.formatter -> report -> unit
