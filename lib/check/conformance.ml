(* Conformance driver: check real litmus runs against the abstract
   model's label vocabulary.

   {!Shasta_verify.Conform} supplies the projection observer and the
   reference label set (the clean model's exhaustive exploration); this
   module supplies the runs — every litmus scenario under the default
   schedule plus a battery of PRNG-fuzzed schedules, the same
   (scenario, seed) space the schedule fuzzer walks. A mismatch means
   the simulator performed a per-block transition or send the model
   says the protocol cannot perform: either a protocol bug or a model
   gap, and either way worth failing CI over. *)

module Dsm = Shasta_core.Dsm
module Verify = Shasta_verify
module Prng = Shasta_util.Prng

type report = {
  scenario : string;
  runs : int;
  events : int;  (** projected hook events checked across all runs *)
  mismatches : string list;
      (** distinct out-of-model labels, first-seen order; empty =
          conformant *)
}

let random_choose seed =
  let prng = Prng.create (0x5eed + (seed * 2654435761)) in
  fun (cands : int array) -> cands.(Prng.int prng (Array.length cands))

let default_choose (cands : int array) = cands.(0)

let check_scenario ?(seeds = 64) (sc : Litmus.scenario) =
  let labels = Verify.Conform.reference_labels () in
  let runs = ref 0 in
  let events = ref 0 in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let one choose =
    let inst = sc.Litmus.make ~fault:None in
    let m = Dsm.machine inst.Litmus.handle in
    let conf = Verify.Conform.make ~labels m in
    Dsm.add_observer inst.Litmus.handle conf.Verify.Conform.observer;
    Dsm.run_controlled ~choose inst.Litmus.handle inst.Litmus.body;
    (* The reference vocabulary is the crash-free model's (see
       Conform.reference): a run that crashed would project recovery
       re-injections against labels that deliberately exclude them.
       Conformance runs never schedule crashes; fail loudly if one did
       rather than report spurious mismatches. *)
    if m.Shasta_core.Machine.crashes > 0 then
      failwith "conformance run crashed: crash runs are checked by the \
                crash litmus sweep, not the conformance oracle";
    incr runs;
    events := !events + conf.Verify.Conform.events ();
    List.iter
      (fun d ->
        if not (Hashtbl.mem seen d) then begin
          Hashtbl.add seen d ();
          order := d :: !order
        end)
      (conf.Verify.Conform.mismatches ())
  in
  one default_choose;
  for seed = 0 to seeds - 1 do
    one (random_choose seed)
  done;
  {
    scenario = sc.Litmus.name;
    runs = !runs;
    events = !events;
    mismatches = List.rev !order;
  }

let check_all ?seeds () = List.map (check_scenario ?seeds) Litmus.scenarios

let pp_report ppf r =
  Format.fprintf ppf "%-20s %3d runs, %6d events: %s" r.scenario r.runs
    r.events
    (match r.mismatches with
    | [] -> "conformant"
    | ms ->
      Format.asprintf "%d out-of-model label(s): %s" (List.length ms)
        (String.concat "; " ms))
