(** Online protocol invariant sanitizer.

    Attaches to a machine's {!Shasta_core.Observer} hooks and
    incrementally re-checks per-block protocol invariants at every state
    transition, instead of waiting for a whole-machine sweep: single
    exclusive copy, directory/state-table agreement, private-vs-shared
    table consistency, pending / pending-downgrade lifecycle, and the
    invalid-flag stamping discipline. Each check is O(nodes + procs) in
    the affected block only, so the sanitizer runs on real workloads
    ([SHASTA_SANITIZE=1]). Cycle-neutral: hooks never charge simulated
    time. *)

type t

val attach : ?limit:int -> Shasta_core.Machine.t -> t
(** Install the sanitizer (composes with any other observer). At most
    [limit] (default 100) violations are retained; the count keeps
    incrementing. *)

val events : t -> int
(** Transitions checked so far. *)

val violation_count : t -> int

val violations : t -> Shasta_core.Inspect.violation list
(** Retained violations in detection order. *)

val check : t -> unit
(** Raise {!Shasta_core.Inspect.Violation} if anything was detected. *)
