module Layout = Shasta_mem.Layout
module Image = Shasta_mem.Image
module State_table = Shasta_mem.State_table
module Machine = Shasta_core.Machine
module Config = Shasta_core.Config
module Observer = Shasta_core.Observer
module Inspect = Shasta_core.Inspect
module Miss_table = Shasta_core.Miss_table
module Downgrade = Shasta_core.Downgrade

type t = {
  m : Machine.t;
  limit : int;
  mutable events : int;
  mutable nviolations : int;
  mutable violations : Inspect.violation list;  (* newest first *)
}

let state_rank = function
  | State_table.Invalid -> 0
  | State_table.Shared -> 1
  | State_table.Exclusive -> 2

let push t block subject what =
  t.nviolations <- t.nviolations + 1;
  if t.nviolations <= t.limit then
    t.violations <- { Inspect.block; subject; what } :: t.violations

let block_in_batch t ns block =
  let layout = t.m.Machine.layout in
  let first = Layout.line_of layout block in
  let n = Machine.block_size t.m block / layout.Layout.line_size in
  let hit = ref false in
  for l = first to first + n - 1 do
    if Hashtbl.mem ns.Machine.batch_lines l then hit := true
  done;
  !hit

(* Every node-state transition re-checks the cross-node copy invariants
   for the affected block, the private-table discipline of the node that
   moved, and — on a transition to Invalid with no local reason for the
   flags to be missing — the invalid-flag stamping discipline. All hook
   sites fire after the protocol applied the mutation (and after sibling
   private entries were lowered), so a correct protocol passes at every
   single event. *)
let check_state t ~node ~block ~from_ ~to_ =
  t.events <- t.events + 1;
  let m = t.m in
  let line = Layout.line_of m.Machine.layout block in
  let exclusive = ref 0 and valid = ref 0 in
  Array.iter
    (fun ns ->
      match State_table.get ns.Machine.table line with
      | State_table.Exclusive ->
        incr exclusive;
        incr valid
      | State_table.Shared -> incr valid
      | State_table.Invalid -> ())
    m.Machine.nodes;
  if !exclusive > 1 then
    push t block Inspect.Machine_wide
      (Printf.sprintf "%d exclusive nodes after node %d moved to %s" !exclusive
         node
         (Format.asprintf "%a" State_table.pp_base to_));
  if not (Inspect.block_transient m block) then begin
    if !exclusive = 1 && !valid > 1 then
      push t block Inspect.Machine_wide "exclusive node coexists with sharers";
    if !valid = 0 then push t block Inspect.Machine_wide "no valid copy anywhere"
  end;
  let ns = m.Machine.nodes.(node) in
  if state_rank to_ < state_rank from_ && not (block_in_batch t ns block) then
    List.iter
      (fun p ->
        if
          state_rank (State_table.get m.Machine.privates.(p) line)
          > state_rank to_
        then
          push t block (Inspect.Proc p)
            (Printf.sprintf "private state above %s after node %d downgrade"
               (Format.asprintf "%a" State_table.pp_base to_)
               node))
      (Config.procs_of_node m.Machine.cfg node);
  (* Flag-stamping discipline: the stamp always precedes the state drop
     within one handler, so an Invalid transition with no local deferral
     reason must already observe the flag pattern (store-merge ranges of
     a local miss are legitimately left unstamped). *)
  if
    to_ = State_table.Invalid
    && (not (Hashtbl.mem ns.Machine.deferred_flags block))
    && (not (block_in_batch t ns block))
    && Miss_table.find ns.Machine.misses ~block = None
  then begin
    let size = Machine.block_size m block in
    let clean = ref true in
    for w = 0 to (size / 8) - 1 do
      if not (Image.is_flag64 (Image.load64 ns.Machine.image (block + (8 * w))))
      then clean := false
    done;
    if not !clean then
      push t block (Inspect.Node node)
        "transitioned to Invalid without the flag pattern stamped"
  end

let check_private t ~proc ~block ~from_ ~to_ =
  t.events <- t.events + 1;
  if state_rank to_ > state_rank from_ then begin
    let m = t.m in
    let node = Machine.node_of m proc in
    let ns = m.Machine.nodes.(node) in
    let line = Layout.line_of m.Machine.layout block in
    if
      (not (block_in_batch t ns block))
      && state_rank to_ > state_rank (State_table.get ns.Machine.table line)
    then
      push t block (Inspect.Proc proc)
        (Printf.sprintf "private raised above node %d shared state" node)
  end

let check_pending t ~node ~block ~set =
  t.events <- t.events + 1;
  if
    set
    && Miss_table.find t.m.Machine.nodes.(node).Machine.misses ~block = None
  then push t block (Inspect.Node node) "pending set with no outstanding miss"

let check_pending_downgrade t ~node ~block ~set =
  t.events <- t.events + 1;
  let dg = Downgrade.find t.m.Machine.nodes.(node).Machine.downgrades ~block in
  match (set, dg) with
  | true, None ->
    push t block (Inspect.Node node)
      "pending-downgrade set with no downgrade entry"
  | false, Some _ ->
    push t block (Inspect.Node node)
      "pending-downgrade cleared with the downgrade entry still present"
  | _ -> ()

let attach ?(limit = 100) m =
  let t = { m; limit; events = 0; nviolations = 0; violations = [] } in
  Machine.add_observer m
    {
      Observer.nil with
      Observer.on_state =
        (fun ~by:_ ~node ~block ~from_ ~to_ ~now:_ ->
          check_state t ~node ~block ~from_ ~to_);
      on_private =
        (fun ~by:_ ~proc ~block ~from_ ~to_ ~now:_ ->
          check_private t ~proc ~block ~from_ ~to_);
      on_pending =
        (fun ~by:_ ~node ~block ~set ~now:_ ->
          check_pending t ~node ~block ~set);
      on_pending_downgrade =
        (fun ~by:_ ~node ~block ~set ~now:_ ->
          check_pending_downgrade t ~node ~block ~set);
    };
  t

let events t = t.events
let violation_count t = t.nviolations
let violations t = List.rev t.violations

let check t =
  if t.nviolations > 0 then raise (Inspect.Violation (violations t))
