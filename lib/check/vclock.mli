(** Vector clocks over a fixed processor set, mutable in place. *)

type t

val create : int -> t
(** All-zero clock of the given width. *)

val copy : t -> t
val get : t -> int -> int

val tick : t -> int -> unit
(** Advance one processor's component — one local event. *)

val join : t -> t -> unit
(** [join t other] raises [t] to the componentwise maximum. *)

val leq : t -> t -> bool
(** Componentwise [<=]: whether the first clock happened-before (or
    equals) the second. *)

val pp : Format.formatter -> t -> unit
