module Machine = Shasta_core.Machine
module Config = Shasta_core.Config
module Observer = Shasta_core.Observer
module Msg = Shasta_core.Msg

type access = Load | Store

type race = {
  addr : int;
  first_kind : access;
  first_proc : int;
  first_now : int;  (** virtual cycle of the earlier access on its processor *)
  second_kind : access;
  second_proc : int;
  second_now : int;
}

(* Last-writer epoch plus a read table per 8-byte word (FastTrack-style:
   one epoch per reader suffices because reads are checked against the
   writer only). *)
type shadow = {
  mutable w_proc : int;  (* -1 = never written *)
  mutable w_clk : int;
  mutable w_now : int;
  reads : (int, int * int) Hashtbl.t;  (* proc -> (clk, now) *)
}

type t = {
  m : Machine.t;
  nprocs : int;
  proc_vc : Vclock.t array;
  channels : (int * int, Vclock.t Queue.t) Hashtbl.t;  (* (src, dst) *)
  store_vc : (int * int, Vclock.t) Hashtbl.t;  (* (node, block) *)
  copy_vc : (int * int, Vclock.t) Hashtbl.t;  (* (node, block) *)
  downgrade_vc : (int * int, Vclock.t) Hashtbl.t;  (* (node, block) *)
  lock_vc : (int, Vclock.t) Hashtbl.t;
  barrier_vc : (int * int, Vclock.t) Hashtbl.t;  (* (barrier, epoch) *)
  shadows : (int, shadow) Hashtbl.t;  (* 8-byte word address *)
  seen : (int * int * int * bool * bool, unit) Hashtbl.t;
  mutable races : race list;  (* newest first *)
}

let find_vc table key n =
  match Hashtbl.find_opt table key with
  | Some vc -> vc
  | None ->
    let vc = Vclock.create n in
    Hashtbl.replace table key vc;
    vc

let channel t ~src ~dst =
  match Hashtbl.find_opt t.channels (src, dst) with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.channels (src, dst) q;
    q

(* The block whose copy a data-carrying message updates, if any. *)
let data_block = function Msg.Data_reply { block; _ } -> Some block | _ -> None

(* A message send publishes the sender's knowledge; a data reply
   additionally publishes everything its node's copy of the block
   carries — sibling stores the sender never synchronized with
   ([store_vc]) and knowledge that arrived with the copy itself
   ([copy_vc]). *)
let on_send t ~src ~dst ~now:_ msg =
  let snap = Vclock.copy t.proc_vc.(src) in
  (match data_block msg with
  | None -> ()
  | Some block ->
    let node = Machine.node_of t.m src in
    (match Hashtbl.find_opt t.store_vc (node, block) with
    | Some vc -> Vclock.join snap vc
    | None -> ());
    (match Hashtbl.find_opt t.copy_vc (node, block) with
    | Some vc -> Vclock.join snap vc
    | None -> ()));
  Queue.push snap (channel t ~src ~dst)

(* Message delivery merges the channel snapshot into the receiver; a
   data reply also deposits it on the receiving node's copy, so siblings
   that later read the fetched data inherit the edge without a message
   of their own. Sends and receives are 1:1 per (src, dst) pair and the
   network delivers each pair FIFO, so the queue head is always the
   matching snapshot. *)
let on_recv t ~src ~dst ~now:_ msg =
  let q = channel t ~src ~dst in
  if not (Queue.is_empty q) then begin
    let snap = Queue.pop q in
    Vclock.join t.proc_vc.(dst) snap;
    match data_block msg with
    | None -> ()
    | Some block ->
      let node = Machine.node_of t.m dst in
      Vclock.join (find_vc t.copy_vc (node, block) t.nprocs) snap
  end

(* Intra-node downgrades: every sibling that handles a downgrade message
   for a block deposits its clock on the node's accumulator; the
   processor that executes the deferred action (the last handler)
   absorbs the accumulated clocks. *)
let on_downgrade_ack t ~proc ~block =
  let node = Machine.node_of t.m proc in
  Vclock.join (find_vc t.downgrade_vc (node, block) t.nprocs) t.proc_vc.(proc)

let on_downgrade_done t ~proc ~block =
  let node = Machine.node_of t.m proc in
  match Hashtbl.find_opt t.downgrade_vc (node, block) with
  | None -> ()
  | Some vc ->
    Vclock.join t.proc_vc.(proc) vc;
    Hashtbl.remove t.downgrade_vc (node, block)

let on_lock_released t ~proc ~lock ~now:_ =
  Vclock.join (find_vc t.lock_vc lock t.nprocs) t.proc_vc.(proc)

let on_lock_acquired t ~proc ~lock ~now:_ =
  match Hashtbl.find_opt t.lock_vc lock with
  | None -> ()
  | Some vc -> Vclock.join t.proc_vc.(proc) vc

(* A barrier episode orders every pre-barrier access before every
   post-barrier one: arrivals accumulate, leaves absorb. The protocol
   guarantees every arrival hook of an episode fires before any leave
   hook of that episode, so one accumulator per (barrier, epoch) is
   enough. *)
let on_barrier_arrive t ~proc ~barrier ~epoch ~now:_ =
  Vclock.join (find_vc t.barrier_vc (barrier, epoch) t.nprocs) t.proc_vc.(proc)

let on_barrier_leave t ~proc ~barrier ~epoch ~now:_ =
  match Hashtbl.find_opt t.barrier_vc (barrier, epoch) with
  | None -> ()
  | Some vc -> Vclock.join t.proc_vc.(proc) vc

let shadow t addr =
  match Hashtbl.find_opt t.shadows addr with
  | Some s -> s
  | None ->
    let s = { w_proc = -1; w_clk = 0; w_now = 0; reads = Hashtbl.create 4 } in
    Hashtbl.replace t.shadows addr s;
    s

let report t ~addr ~first_kind ~first_proc ~first_now ~second_kind ~second_proc
    ~second_now =
  let key =
    (addr, first_proc, second_proc, first_kind = Store, second_kind = Store)
  in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    t.races <-
      {
        addr;
        first_kind;
        first_proc;
        first_now;
        second_kind;
        second_proc;
        second_now;
      }
      :: t.races
  end

(* One application access: absorb the knowledge carried by the node's
   copy of the block, advance this processor's component, then check the
   shadow word. Sibling stores are deliberately NOT absorbed here
   ([store_vc] flows only outward, through data replies): folding them
   into same-node readers would order every intra-node conflict and hide
   exactly the unsynchronized sibling accesses the downgrade protocol
   (§3.4.3) exists to make safe. *)
let access t kind ~proc ~addr ~len ~now =
  let block = Machine.block_base t.m addr in
  let node = Machine.node_of t.m proc in
  let vc = t.proc_vc.(proc) in
  (match Hashtbl.find_opt t.copy_vc (node, block) with
  | Some cvc -> Vclock.join vc cvc
  | None -> ());
  Vclock.tick vc proc;
  let clk = Vclock.get vc proc in
  let w = ref (addr land lnot 7) in
  while !w < addr + len do
    let s = shadow t !w in
    (* write-read / write-write: the last write must be ordered before
       this access. *)
    if s.w_proc >= 0 && s.w_proc <> proc && s.w_clk > Vclock.get vc s.w_proc
    then
      report t ~addr:!w ~first_kind:Store ~first_proc:s.w_proc
        ~first_now:s.w_now ~second_kind:kind ~second_proc:proc ~second_now:now;
    (match kind with
    | Store ->
      (* read-write: every recorded read must be ordered before a new
         write. *)
      Hashtbl.iter
        (fun q (qclk, qnow) ->
          if q <> proc && qclk > Vclock.get vc q then
            report t ~addr:!w ~first_kind:Load ~first_proc:q ~first_now:qnow
              ~second_kind:Store ~second_proc:proc ~second_now:now)
        s.reads;
      Hashtbl.reset s.reads;
      s.w_proc <- proc;
      s.w_clk <- clk;
      s.w_now <- now;
      Vclock.join (find_vc t.store_vc (node, block) t.nprocs) vc
    | Load -> Hashtbl.replace s.reads proc (clk, now));
    w := !w + 8
  done

let attach m =
  let nprocs = m.Machine.cfg.Config.nprocs in
  let t =
    {
      m;
      nprocs;
      proc_vc = Array.init nprocs (fun _ -> Vclock.create nprocs);
      channels = Hashtbl.create 64;
      store_vc = Hashtbl.create 64;
      copy_vc = Hashtbl.create 64;
      downgrade_vc = Hashtbl.create 16;
      lock_vc = Hashtbl.create 8;
      barrier_vc = Hashtbl.create 16;
      shadows = Hashtbl.create 1024;
      seen = Hashtbl.create 16;
      races = [];
    }
  in
  Machine.add_observer m
    {
      Observer.nil with
      Observer.on_send = (fun ~src ~dst ~now msg -> on_send t ~src ~dst ~now msg);
      on_recv = (fun ~src ~dst ~now msg -> on_recv t ~src ~dst ~now msg);
      on_downgrade_ack =
        (fun ~proc ~block ~now:_ -> on_downgrade_ack t ~proc ~block);
      on_downgrade_done =
        (fun ~proc ~block ~now:_ -> on_downgrade_done t ~proc ~block);
      on_lock_acquired =
        (fun ~proc ~lock ~now -> on_lock_acquired t ~proc ~lock ~now);
      on_lock_released =
        (fun ~proc ~lock ~now -> on_lock_released t ~proc ~lock ~now);
      on_barrier_arrive =
        (fun ~proc ~barrier ~epoch ~now ->
          on_barrier_arrive t ~proc ~barrier ~epoch ~now);
      on_barrier_leave =
        (fun ~proc ~barrier ~epoch ~now ->
          on_barrier_leave t ~proc ~barrier ~epoch ~now);
      on_load =
        (fun ~proc ~addr ~len ~now -> access t Load ~proc ~addr ~len ~now);
      on_store =
        (fun ~proc ~addr ~len ~now -> access t Store ~proc ~addr ~len ~now);
    };
  t

let races t = List.rev t.races
let race_count t = List.length t.races

let describe r =
  let k = function Load -> "load" | Store -> "store" in
  Printf.sprintf
    "race on %#x: %s by proc %d (cycle %d) unordered with %s by proc %d (cycle %d)"
    r.addr (k r.first_kind) r.first_proc r.first_now (k r.second_kind)
    r.second_proc r.second_now
