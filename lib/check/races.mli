(** Happens-before race detection over simulated application accesses.

    Vector clocks are maintained per processor and merged along every
    synchronization-bearing edge the simulated system has: message
    delivery (per-pair FIFO channels carrying send-time snapshots),
    barrier episodes, lock transfers, and the intra-node downgrade
    protocol. Per-8-byte-word shadow state (last-writer epoch plus a
    read table, FastTrack-style) then flags conflicting access pairs not
    ordered by any such edge, with per-processor virtual-time
    provenance.

    Node-copy subtlety: a data reply deposits its clock on the receiving
    node's copy, and every access absorbs the copy's clock — siblings
    reading data fetched by another processor's miss inherit the edge.
    Sibling {e stores}, however, flow only outward (via data replies):
    absorbing them locally would hide unsynchronized same-node
    conflicts, the exact §3.4.3 race window. *)

type access = Load | Store

type race = {
  addr : int;  (** 8-byte word address *)
  first_kind : access;
  first_proc : int;
  first_now : int;  (** virtual cycle of the earlier access on its processor *)
  second_kind : access;
  second_proc : int;
  second_now : int;
}

type t

val attach : Shasta_core.Machine.t -> t
(** Install the detector (composes with any other observer). Enabled by
    the harnesses at [SHASTA_SANITIZE=2]. *)

val races : t -> race list
(** Distinct races (deduplicated by word and processor pair) in
    detection order. *)

val race_count : t -> int
val describe : race -> string
