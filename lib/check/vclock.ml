type t = int array

let create n = Array.make n 0
let copy = Array.copy
let get t p = t.(p)
let tick t p = t.(p) <- t.(p) + 1

let join t other =
  for i = 0 to Array.length t - 1 do
    if other.(i) > t.(i) then t.(i) <- other.(i)
  done

let leq a b =
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if a.(i) > b.(i) then ok := false
  done;
  !ok

let pp ppf t =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int t)))
