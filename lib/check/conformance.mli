(** Conformance oracle: every per-block transition and send a real
    litmus run performs must be a member of the abstract model's label
    vocabulary ({!Shasta_verify.Conform}). Runs each scenario under the
    default schedule plus [seeds] PRNG-fuzzed schedules (the schedule
    fuzzer's (scenario, seed) space). *)

type report = {
  scenario : string;
  runs : int;
  events : int;  (** projected hook events checked across all runs *)
  mismatches : string list;
      (** distinct out-of-model labels, first-seen order; empty =
          conformant *)
}

val check_scenario : ?seeds:int -> Litmus.scenario -> report
(** [seeds] defaults to 64. *)

val check_all : ?seeds:int -> unit -> report list
(** All litmus scenarios. *)

val pp_report : Format.formatter -> report -> unit
