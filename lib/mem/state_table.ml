type base = Invalid | Shared | Exclusive

let base_geq have need =
  match (have, need) with
  | Exclusive, _ -> true
  | Shared, (Invalid | Shared) -> true
  | Shared, Exclusive -> false
  | Invalid, Invalid -> true
  | Invalid, (Shared | Exclusive) -> false

type t = Bytes.t

let base_mask = 0b11
let pending_bit = 0b100
let downgrade_bit = 0b1000
let batch_bit = 0b10000

let create layout = Bytes.make (Layout.nlines layout) '\000'

(* Raw byte access for the inline-check fast path.  The bounds check is
   kept as an assert so dev builds (which is what dune's default profile
   ships) still catch out-of-range lines, while release builds compile
   down to a single unchecked byte load/store. *)
let unsafe_get_byte t l =
  assert (l >= 0 && l < Bytes.length t);
  Char.code (Bytes.unsafe_get t l)

let unsafe_set_byte t l v =
  assert (l >= 0 && l < Bytes.length t);
  assert (v >= 0 && v < 0x20);
  Bytes.unsafe_set t l (Char.unsafe_chr v)

let get t l =
  match unsafe_get_byte t l land base_mask with
  | 0 -> Invalid
  | 1 -> Shared
  | _ -> Exclusive

let set t l b =
  let v = unsafe_get_byte t l land lnot base_mask in
  let b = match b with Invalid -> 0 | Shared -> 1 | Exclusive -> 2 in
  unsafe_set_byte t l (v lor b)

let get_bit bit t l = unsafe_get_byte t l land bit <> 0

let set_bit bit t l v =
  let c = unsafe_get_byte t l in
  let c = if v then c lor bit else c land lnot bit in
  unsafe_set_byte t l c

let pending = get_bit pending_bit
let set_pending = set_bit pending_bit
let pending_downgrade = get_bit downgrade_bit
let set_pending_downgrade = set_bit downgrade_bit
let batch_marker = get_bit batch_bit
let set_batch_marker = set_bit batch_bit

(* Fused hit predicate: one byte load answers "is the line's base state
   at least [need] with no transient markers set?".  Clean bytes are
   exactly 0 (Invalid), 1 (Shared) and 2 (Exclusive); any pending /
   pending-downgrade / batch bit pushes the byte past [base_mask]. *)
let clean_geq t l need =
  let b = unsafe_get_byte t l in
  match need with
  | Invalid -> b land lnot base_mask = 0
  | Shared -> b = 1 || b = 2
  | Exclusive -> b = 2

let pp_base ppf b =
  Format.pp_print_string ppf
    (match b with Invalid -> "I" | Shared -> "S" | Exclusive -> "E")
