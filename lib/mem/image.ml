type t = Bytes.t

let create layout = Bytes.make layout.Layout.heap_bytes '\000'

(* Unaligned 64-bit access primitives (the same ones Stdlib.Bytes builds
   its checked accessors on). They are native-endian; the image format
   is little-endian, so fall back to the checked LE accessors on a
   big-endian host — [Sys.big_endian] is a link-time constant, the
   branch costs nothing on the machines we care about. Bounds stay
   enforced in debug builds via the asserts. *)
external unsafe_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let[@inline] load64 t a =
  assert (a >= 0 && a + 8 <= Bytes.length t);
  if Sys.big_endian then Bytes.get_int64_le t a else unsafe_get64 t a

let[@inline] store64 t a v =
  assert (a >= 0 && a + 8 <= Bytes.length t);
  if Sys.big_endian then Bytes.set_int64_le t a v else unsafe_set64 t a v

let[@inline] load_float t a = Int64.float_of_bits (load64 t a)
let[@inline] store_float t a v = store64 t a (Int64.bits_of_float v)
let[@inline] load_int t a = Int64.to_int (load64 t a)
let[@inline] store_int t a v = store64 t a (Int64.of_int v)
let snapshot t ~addr ~len = Bytes.sub t addr len

let write_bytes t ~addr ?(skip = []) data =
  let saved = List.map (fun (off, len) -> (off, Bytes.sub t (addr + off) len)) skip in
  Bytes.blit data 0 t addr (Bytes.length data);
  List.iter (fun (off, b) -> Bytes.blit b 0 t (addr + off) (Bytes.length b)) saved

let invalid_flag32 = 0xDEADBEEFl
let invalid_flag64 = 0xDEADBEEFDEADBEEFL

let write_invalid_flag t ~addr ~len =
  assert (addr mod 4 = 0 && len mod 4 = 0);
  let words = len / 4 in
  for w = 0 to words - 1 do
    Bytes.set_int32_le t (addr + (4 * w)) invalid_flag32
  done

let is_flag64 v = Int64.equal v invalid_flag64
