type t = {
  line_size : int;
  line_shift : int;
  heap_bytes : int;
  page_size : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go s n = if n <= 1 then s else go (s + 1) (n lsr 1) in
  go 0 n

let create ?(line_size = 64) ?(heap_bytes = 8 * 1024 * 1024) () =
  let page_size = 4096 in
  assert (is_power_of_two line_size && line_size >= 8);
  assert (page_size mod line_size = 0);
  assert (heap_bytes mod page_size = 0);
  { line_size; line_shift = log2 line_size; heap_bytes; page_size }

let nlines t = t.heap_bytes / t.line_size
let npages t = t.heap_bytes / t.page_size
let valid_addr t a = a >= 0 && a < t.heap_bytes

(* Addresses are non-negative, so the shift is the power-of-two division
   — without the hardware divide a division by a runtime value costs on
   this per-access path. *)
let line_of t a = a lsr t.line_shift
let addr_of_line t l = l * t.line_size
let page_of_line t l = l * t.line_size / t.page_size
