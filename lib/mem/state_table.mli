(** Per-line coherence state tables.

    A node's {e shared} table holds the base state plus the protocol's
    transient markers; each processor's {e private} table (SMP-Shasta)
    holds only a base state and is the one consulted by inline checks,
    which is what lets the checks run without synchronization or fences. *)

type base = Invalid | Shared | Exclusive

val base_geq : base -> base -> bool
(** [base_geq have need]: does state [have] permit an access requiring
    [need]? ([Shared] suffices for loads, [Exclusive] for stores.) *)

type t

val create : Layout.t -> t
(** All lines start [Invalid] with no markers. *)

val get : t -> int -> base
val set : t -> int -> base -> unit

val unsafe_get_byte : t -> int -> int
(** Raw encoded byte for line [l]: base state in the low two bits plus
    the transient marker bits.  Bounds-checked by [assert] only (kept in
    dev builds, compiled out with [-noassert]). *)

val unsafe_set_byte : t -> int -> int -> unit
(** Raw byte store; same assert-only bounds policy as
    {!unsafe_get_byte}. *)

val clean_geq : t -> int -> base -> bool
(** [clean_geq t l need]: single-byte fused check — the line's base
    state satisfies [base_geq base need] {e and} no pending /
    pending-downgrade / batch marker is set.  This is the inline-check
    fast-path predicate: a [true] answer means the access can complete
    against the local image without entering the protocol. *)

val pending : t -> int -> bool
(** A miss for this line's block is outstanding (request sent, reply not
    yet processed). *)

val set_pending : t -> int -> bool -> unit

val pending_downgrade : t -> int -> bool
(** An intra-node downgrade is in flight for this line's block. *)

val set_pending_downgrade : t -> int -> bool -> unit

val batch_marker : t -> int -> bool
(** The line is inside an active batch; invalid-flag stores into it must
    be deferred until the batch ends (§3.4.4). *)

val set_batch_marker : t -> int -> bool -> unit

val pp_base : Format.formatter -> base -> unit
