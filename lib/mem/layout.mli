(** Shared address-space geometry.

    The simulated shared heap is a flat range of byte addresses
    [0, heap_bytes). It is subdivided into fixed-size [lines] (the unit
    of state-table bookkeeping, 64 bytes by default as in the paper) and
    [pages] (the unit of home assignment, 4096 bytes). Blocks — the unit
    of coherence — are defined per allocation on top of lines by
    {!Block_map}. *)

type t = private {
  line_size : int;
  line_shift : int;  (** [log2 line_size]; [line_of] divides by shifting *)
  heap_bytes : int;
  page_size : int;
}

val create : ?line_size:int -> ?heap_bytes:int -> unit -> t
(** Defaults: 64-byte lines, 8 MiB heap, 4 KiB pages. [line_size] must be
    a power of two of at least 8 and divide the page size. *)

val nlines : t -> int
val npages : t -> int

val valid_addr : t -> int -> bool
(** Is the address inside the shared heap? (The simulated equivalent of
    the inline check's shared-range test.) *)

val line_of : t -> int -> int
(** Line index containing a byte address. *)

val addr_of_line : t -> int -> int
(** First byte address of a line. *)

val page_of_line : t -> int -> int
