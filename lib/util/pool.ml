type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a state;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  cond : Condition.t;  (* queue non-empty, or stopping *)
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "SHASTA_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None ->
      invalid_arg (Printf.sprintf "SHASTA_JOBS=%S: expected a positive integer" s))
  | None -> max 1 (Domain.recommended_domain_count ())

let jobs t = t.jobs

(* Workers drain the queue until [stopping] is set AND the queue is
   empty, so [shutdown] never abandons accepted work. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.cond t.mutex
  done;
  match Queue.take_opt t.queue with
  | Some job ->
    Mutex.unlock t.mutex;
    job ();
    worker_loop t
  | None ->
    (* stopping && empty *)
    Mutex.unlock t.mutex

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let fill fut st =
  Mutex.lock fut.f_mutex;
  fut.f_state <- st;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_mutex

let run_into fut f () =
  match f () with
  | v -> fill fut (Done v)
  | exception e -> fill fut (Failed (e, Printexc.get_raw_backtrace ()))

let submit t f =
  let fut = { f_mutex = Mutex.create (); f_cond = Condition.create (); f_state = Pending } in
  if t.jobs = 1 then begin
    if t.stopping then invalid_arg "Pool.submit: pool is shut down";
    run_into fut f ()
  end
  else begin
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Queue.add (run_into fut f) t.queue;
    Condition.signal t.cond;
    Mutex.unlock t.mutex
  end;
  fut

let is_pending fut =
  match fut.f_state with Pending -> true | Done _ | Failed _ -> false

let await fut =
  Mutex.lock fut.f_mutex;
  while is_pending fut do
    Condition.wait fut.f_cond fut.f_mutex
  done;
  let st = fut.f_state in
  Mutex.unlock fut.f_mutex;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let shutdown t =
  if t.jobs = 1 then t.stopping <- true
  else begin
    Mutex.lock t.mutex;
    let was_stopping = t.stopping in
    t.stopping <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    if not was_stopping then List.iter Domain.join t.workers
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map_list ~jobs f xs =
  with_pool ~jobs (fun t ->
      let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
      (* Await in submission order; a failure still waits for the rest
         via [with_pool]'s shutdown before propagating. *)
      List.map await futs)
