(** Integer-keyed frequency counters.

    Used for the downgrade-message distribution of Figure 8 and for
    miscellaneous protocol statistics. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** [add t k] increments the count of key [k]. *)

val add_many : t -> int -> int -> unit
(** [add_many t k n] increments the count of key [k] by [n]. *)

val count : t -> int -> int
(** Count recorded for a key ([0] if never seen). *)

val total : t -> int
(** Sum of all counts. *)

val keys : t -> int list
(** Keys with non-zero counts, ascending. *)

val fraction : t -> int -> float
(** [fraction t k] is [count t k / total t] ([0.] on an empty histogram). *)

val percentile : t -> float -> int
(** [percentile t p] (with [p] clamped to [0..1]) is the smallest
    recorded key whose cumulative count covers a [p] fraction of the
    total: [percentile t 1.] is the largest key, [percentile t 0.] the
    smallest, and the result always is a recorded key. [0] on an empty
    histogram. *)

val merge : t -> t -> t
(** Pointwise sum; inputs unchanged. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
