type t = (int, int) Hashtbl.t

let create () = Hashtbl.create 16

let add_many t k n =
  match Hashtbl.find_opt t k with
  | Some c -> Hashtbl.replace t k (c + n)
  | None -> Hashtbl.replace t k n

let add t k = add_many t k 1
let count t k = Option.value ~default:0 (Hashtbl.find_opt t k)
let total t = Hashtbl.fold (fun _ c acc -> acc + c) t 0
let keys t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let fraction t k =
  let n = total t in
  if n = 0 then 0. else float_of_int (count t k) /. float_of_int n

let percentile t p =
  let n = total t in
  if n = 0 then 0
  else begin
    let p = if p < 0. then 0. else if p > 1. then 1. else p in
    (* Smallest key whose cumulative count reaches [ceil (p * n)],
       with p = 0 mapping to the first recorded value. *)
    let target = max 1 (int_of_float (ceil (p *. float_of_int n))) in
    let acc = ref 0 and result = ref 0 and found = ref false in
    List.iter
      (fun k ->
        if not !found then begin
          acc := !acc + count t k;
          if !acc >= target then begin
            result := k;
            found := true
          end
        end)
      (keys t);
    !result
  end

let merge a b =
  let r = create () in
  Hashtbl.iter (fun k c -> add_many r k c) a;
  Hashtbl.iter (fun k c -> add_many r k c) b;
  r

let clear t = Hashtbl.reset t

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf k -> Format.fprintf ppf "%d:%d" k (count t k)))
    (keys t)
