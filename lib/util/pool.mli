(** Fixed-size domain pool with futures.

    A dependency-free work queue on top of [Domain]/[Mutex]/[Condition]
    for running independent, self-contained jobs on real cores. Designed
    for the experiment runner: jobs are whole simulations (seconds of
    host work each), so per-job overhead is irrelevant and the pool
    keeps no fancy structures — one lock, one queue, one condition.

    Contract: jobs must not touch shared mutable state (see DESIGN.md
    §3c, "the domain-safety contract"). The pool guarantees each
    submitted job runs exactly once, on some worker domain — or, when
    the pool was created with [jobs = 1], in place on the submitting
    domain, with no domains spawned at all. *)

type t
(** A pool with a fixed worker set. *)

val default_jobs : unit -> int
(** Worker count to use when the caller does not specify one: the
    [SHASTA_JOBS] environment variable if set (a positive integer),
    otherwise [Domain.recommended_domain_count ()]. *)

val create : jobs:int -> t
(** Spawn [jobs] worker domains ([jobs >= 1]; [invalid_arg] otherwise).
    [jobs = 1] spawns nothing: submissions execute immediately in the
    submitting domain. *)

val jobs : t -> int
(** The worker count the pool was created with. *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a job. Exceptions raised by the job are captured and
    re-raised (with their backtrace) by {!await} — including in the
    in-place [jobs = 1] mode, so error behavior is mode-independent. *)

val await : 'a future -> 'a
(** Block until the job has run; return its result or re-raise its
    exception. May be called more than once. *)

val shutdown : t -> unit
(** Finish every queued job, then join the workers. Submitting after
    shutdown raises [Invalid_argument]. Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run the function, [shutdown] (also on exception). *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Run [f] over every element on a temporary pool; results are in
    submission order regardless of completion order. The first element's
    exception (in list order) is re-raised after all jobs have
    finished. *)
