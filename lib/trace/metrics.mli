(** Online metrics registry derived from observer hooks.

    Maintains {!Shasta_util.Histogram} distributions (paper Tables 5-8
    flavour) incrementally, so they are exact even when the event
    {!Recorder} ring has dropped old entries: miss latency (allocation
    to retirement, chained upgrades included), downgrade round-trip
    (pending-downgrade set to clear), wire message sizes, per-receiver
    message handling load ("home occupancy"), and per-kind message
    counters. Never charges simulated cycles. *)

type t

val create : unit -> t

val observer : t -> Shasta_core.Observer.t
(** The metering hooks, for manual composition. *)

val attach : Shasta_core.Machine.t -> t
(** [create] + install on the machine. *)

val merge_into : into:t -> t -> unit
(** Pointwise accumulate [src] into [into] (commutative/associative, so
    a cross-run aggregate is independent of run completion order). *)

val misses : t -> int
val sends : t -> int
val recvs : t -> int
val downgrades : t -> int

val miss_latency : t -> Shasta_util.Histogram.t
val downgrade_rtt : t -> Shasta_util.Histogram.t
val msg_size : t -> Shasta_util.Histogram.t

val msg_kind : t -> Shasta_util.Histogram.t
(** Keyed by {!Shasta_core.Msg.tag}. *)

val home_occupancy : t -> Shasta_util.Histogram.t
(** Keyed by receiving processor id. *)

val to_json : t -> string
(** One JSON object: counters plus [count/p50/p90/p99/p999/max] summaries and
    a [msg_kinds] name-to-count object. *)

val pp : Format.formatter -> t -> unit
