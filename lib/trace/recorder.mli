(** Ring-buffer flight recorder for protocol events.

    One fixed-capacity ring per simulated processor; appending is a
    store and an increment, and overflow silently overwrites the oldest
    entries of that processor (the newest events always survive —
    flight-recorder semantics). The recorder never charges simulated
    cycles: attaching one leaves every cycle count bit-identical.

    Events are attributed to the {e executing} processor, whose
    per-proc stream is a pure function of virtual time. [events]
    therefore returns the same list under the run-ahead and always-yield
    schedulers, which the trace-golden test uses as a determinism
    oracle.

    High-volume application [on_load]/[on_store] hooks are deliberately
    not recorded (the race detector consumes those); everything else in
    {!Shasta_core.Observer.t} is. *)

type t

val default_capacity : int
(** 65536 events per processor. *)

val create : ?capacity:int -> nprocs:int -> unit -> t
(** [capacity] (per processor) is rounded up to a power of two,
    minimum 2. *)

val observer : t -> Shasta_core.Observer.t
(** The recording hooks, for manual composition. *)

val attach : ?capacity:int -> Shasta_core.Machine.t -> t
(** [create] + install on the machine (composes with any existing
    observer). *)

val record : t -> proc:int -> time:int -> Event.payload -> unit

val capacity : t -> int
(** Actual per-processor ring capacity (after power-of-two rounding). *)

val recorded : t -> int
(** Total events ever appended, including overwritten ones. *)

val dropped : t -> int
(** Events lost to ring overflow. *)

val proc_events : t -> int -> Event.t list
(** Retained events of one processor, oldest first. *)

val events : t -> Event.t list
(** All retained events merged by (time, proc, per-proc order) — the
    canonical scheduler-invariant stream. *)
