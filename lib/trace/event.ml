module State_table = Shasta_mem.State_table
module Msg = Shasta_core.Msg

type base = State_table.base

type payload =
  | State of { node : int; block : int; from_ : base; to_ : base }
  | Private of { target : int; block : int; from_ : base; to_ : base }
  | Pending of { node : int; block : int; set : bool }
  | Pending_downgrade of { node : int; block : int; set : bool }
  | Send of { dst : int; kind : int; size : int; block : int }
  | Recv of { src : int; kind : int; size : int; block : int }
  | Miss_start of { block : int; kind : Msg.req_kind }
  | Miss_end of { block : int; kind : Msg.req_kind; start : int }
  | Downgrade_ack of { block : int }
  | Downgrade_done of { block : int }
  | Downgrade_queued of { block : int; src : int; kind : int }
  | Downgrade_replay of { block : int; src : int; kind : int }
  | Lock_acquired of { lock : int }
  | Lock_released of { lock : int }
  | Barrier_arrive of { barrier : int; epoch : int }
  | Barrier_leave of { barrier : int; epoch : int }

type t = { proc : int; time : int; payload : payload }

let class_name e =
  match e.payload with
  | State _ -> "state"
  | Private _ -> "private"
  | Pending _ -> "pending"
  | Pending_downgrade _ -> "pending_downgrade"
  | Send _ -> "send"
  | Recv _ -> "recv"
  | Miss_start _ -> "miss_start"
  | Miss_end _ -> "miss_end"
  | Downgrade_ack _ -> "downgrade_ack"
  | Downgrade_done _ -> "downgrade_done"
  | Downgrade_queued _ -> "downgrade_queued"
  | Downgrade_replay _ -> "downgrade_replay"
  | Lock_acquired _ -> "lock_acquired"
  | Lock_released _ -> "lock_released"
  | Barrier_arrive _ -> "barrier_arrive"
  | Barrier_leave _ -> "barrier_leave"

let block_of e =
  match e.payload with
  | State { block; _ }
  | Private { block; _ }
  | Pending { block; _ }
  | Pending_downgrade { block; _ }
  | Miss_start { block; _ }
  | Miss_end { block; _ }
  | Downgrade_ack { block }
  | Downgrade_done { block }
  | Downgrade_queued { block; _ }
  | Downgrade_replay { block; _ } ->
    Some block
  | Send { block; _ } | Recv { block; _ } ->
    if block < 0 then None else Some block
  | Lock_acquired _ | Lock_released _ | Barrier_arrive _ | Barrier_leave _ ->
    None

let base_name = function
  | State_table.Invalid -> "I"
  | State_table.Shared -> "S"
  | State_table.Exclusive -> "E"

let req_kind_name = function
  | Msg.Read -> "read"
  | Msg.Readex -> "readex"
  | Msg.Upgrade -> "upgrade"

let msg_kind_name k =
  if k >= 0 && k < Array.length Msg.tag_names then Msg.tag_names.(k)
  else Printf.sprintf "kind%d" k

let describe e =
  match e.payload with
  | State { node; block; from_; to_ } ->
    Printf.sprintf "state node=%d block=%#x %s->%s" node block
      (base_name from_) (base_name to_)
  | Private { target; block; from_; to_ } ->
    Printf.sprintf "private p%d block=%#x %s->%s" target block
      (base_name from_) (base_name to_)
  | Pending { node; block; set } ->
    Printf.sprintf "pending node=%d block=%#x %s" node block
      (if set then "set" else "clear")
  | Pending_downgrade { node; block; set } ->
    Printf.sprintf "pending_downgrade node=%d block=%#x %s" node block
      (if set then "set" else "clear")
  | Send { dst; kind; size; block } ->
    if block < 0 then
      Printf.sprintf "send %s -> p%d %dB" (msg_kind_name kind) dst size
    else
      Printf.sprintf "send %s -> p%d %dB block=%#x" (msg_kind_name kind) dst
        size block
  | Recv { src; kind; size; block } ->
    if block < 0 then
      Printf.sprintf "recv %s <- p%d %dB" (msg_kind_name kind) src size
    else
      Printf.sprintf "recv %s <- p%d %dB block=%#x" (msg_kind_name kind) src
        size block
  | Miss_start { block; kind } ->
    Printf.sprintf "miss_start %s block=%#x" (req_kind_name kind) block
  | Miss_end { block; kind; start } ->
    Printf.sprintf "miss_end %s block=%#x latency=%d" (req_kind_name kind)
      block (e.time - start)
  | Downgrade_ack { block } -> Printf.sprintf "downgrade_ack block=%#x" block
  | Downgrade_done { block } -> Printf.sprintf "downgrade_done block=%#x" block
  | Downgrade_queued { block; src; kind } ->
    Printf.sprintf "downgrade_queued %s from p%d block=%#x"
      (msg_kind_name kind) src block
  | Downgrade_replay { block; src; kind } ->
    Printf.sprintf "downgrade_replay %s from p%d block=%#x"
      (msg_kind_name kind) src block
  | Lock_acquired { lock } -> Printf.sprintf "lock_acquired %d" lock
  | Lock_released { lock } -> Printf.sprintf "lock_released %d" lock
  | Barrier_arrive { barrier; epoch } ->
    Printf.sprintf "barrier_arrive %d epoch=%d" barrier epoch
  | Barrier_leave { barrier; epoch } ->
    Printf.sprintf "barrier_leave %d epoch=%d" barrier epoch

let to_string e = Printf.sprintf "[p%d @%d] %s" e.proc e.time (describe e)

type filter = {
  procs : int list;
  blocks : int list;
  kinds : string list;
  from_ : int option;
  upto : int option;
}

let no_filter = { procs = []; blocks = []; kinds = []; from_ = None; upto = None }

let matches f e =
  (f.procs = [] || List.mem e.proc f.procs)
  && (f.blocks = []
     || match block_of e with Some b -> List.mem b f.blocks | None -> false)
  && (f.kinds = [] || List.mem (class_name e) f.kinds)
  && (match f.from_ with Some lo -> e.time >= lo | None -> true)
  && match f.upto with Some hi -> e.time <= hi | None -> true
