(* Chrome trace_event JSON (the "JSON array format" understood by
   chrome://tracing and Perfetto). pid = coherence node, tid =
   processor, so the UI groups per-processor tracks by node. ts is in
   microseconds of the simulated 300 MHz clock (1 us = 300 cycles);
   misses and node downgrades additionally get duration ("X") events so
   their spans are visible at a glance. *)

let cycles_per_us = 300.

let ts cycles = float_of_int cycles /. cycles_per_us

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type emitter = { buf : Buffer.t; mutable first : bool }

let obj e fields =
  if e.first then e.first <- false else Buffer.add_string e.buf ",\n";
  Buffer.add_char e.buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string e.buf ", ";
      Buffer.add_string e.buf (Printf.sprintf {|"%s": %s|} k v))
    fields;
  Buffer.add_char e.buf '}'

let str s = Printf.sprintf {|"%s"|} (escape s)
let num_ts t = Printf.sprintf "%.3f" (ts t)

let meta e ~pid ~tid ~what ~name =
  obj e
    [
      ("name", str what);
      ("ph", str "M");
      ("ts", "0");
      ("pid", string_of_int pid);
      ("tid", string_of_int tid);
      ("args", Printf.sprintf {|{"name": %s}|} (str name));
    ]

let duration e ~name ~cat ~start ~stop ~pid ~tid =
  obj e
    [
      ("name", str name);
      ("cat", str cat);
      ("ph", str "X");
      ("ts", num_ts start);
      ("dur", Printf.sprintf "%.3f" (ts (stop - start)));
      ("pid", string_of_int pid);
      ("tid", string_of_int tid);
    ]

let instant e ~name ~cat ~time ~pid ~tid ~detail =
  obj e
    [
      ("name", str name);
      ("cat", str cat);
      ("ph", str "i");
      ("ts", num_ts time);
      ("pid", string_of_int pid);
      ("tid", string_of_int tid);
      ("s", str "t");
      ("args", Printf.sprintf {|{"detail": %s}|} (str detail));
    ]

let export buf ~node_of events =
  let e = { buf; first = true } in
  Buffer.add_string buf "[\n";
  (* Name the process (node) and thread (processor) tracks. *)
  let procs = Hashtbl.create 16 and nodes = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let p = ev.Event.proc in
      if not (Hashtbl.mem procs p) then begin
        Hashtbl.replace procs p ();
        let n = node_of p in
        if not (Hashtbl.mem nodes n) then Hashtbl.replace nodes n ()
      end)
    events;
  List.iter
    (fun n -> meta e ~pid:n ~tid:0 ~what:"process_name"
        ~name:(Printf.sprintf "node%d" n))
    (List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) nodes []));
  List.iter
    (fun p -> meta e ~pid:(node_of p) ~tid:p ~what:"thread_name"
        ~name:(Printf.sprintf "proc%d" p))
    (List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) procs []));
  (* Downgrade spans: pending-downgrade set -> clear per (node, block). *)
  let dg_start = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let pid = node_of ev.Event.proc and tid = ev.Event.proc in
      match ev.Event.payload with
      | Event.Miss_end { block; kind; start } ->
        duration e
          ~name:(Printf.sprintf "miss %s %#x" (Event.req_kind_name kind) block)
          ~cat:"miss" ~start ~stop:ev.Event.time ~pid ~tid
      | Event.Pending_downgrade { node; block; set = true } ->
        Hashtbl.replace dg_start (node, block) ev.Event.time
      | Event.Pending_downgrade { node; block; set = false } -> (
        match Hashtbl.find_opt dg_start (node, block) with
        | Some start ->
          Hashtbl.remove dg_start (node, block);
          duration e
            ~name:(Printf.sprintf "downgrade %#x" block)
            ~cat:"downgrade" ~start ~stop:ev.Event.time ~pid ~tid
        | None -> ())
      | _ ->
        instant e ~name:(Event.class_name ev) ~cat:"protocol"
          ~time:ev.Event.time ~pid ~tid ~detail:(Event.describe ev))
    events;
  Buffer.add_string buf "\n]\n"

let to_string ~node_of events =
  let buf = Buffer.create 4096 in
  export buf ~node_of events;
  Buffer.contents buf

let write_file path ~node_of events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~node_of events))
