module Machine = Shasta_core.Machine
module Config = Shasta_core.Config
module Observer = Shasta_core.Observer
module Msg = Shasta_core.Msg

(* One ring per processor. [count] is the total number of events ever
   appended; when it exceeds [Array.length buf] the oldest entries have
   been overwritten (flight-recorder semantics). *)
type ring = { buf : Event.t option array; mutable count : int }

type t = { rings : ring array; capacity : int }

let default_capacity = 1 lsl 16

let append ring ev =
  ring.buf.(ring.count land (Array.length ring.buf - 1)) <- Some ev;
  ring.count <- ring.count + 1

(* Round up to a power of two so the ring index is a mask. *)
let pow2_at_least n =
  let c = ref 1 in
  while !c < n do
    c := !c * 2
  done;
  !c

let create ?(capacity = default_capacity) ~nprocs () =
  let capacity = pow2_at_least (max 2 capacity) in
  {
    rings =
      Array.init nprocs (fun _ ->
          { buf = Array.make capacity None; count = 0 });
    capacity;
  }

let record t ~proc ~time payload =
  append t.rings.(proc) { Event.proc; time; payload }

let observer t =
  let ev = record t in
  {
    Observer.nil with
    Observer.on_state =
      (fun ~by ~node ~block ~from_ ~to_ ~now ->
        ev ~proc:by ~time:now (Event.State { node; block; from_; to_ }));
    on_private =
      (fun ~by ~proc ~block ~from_ ~to_ ~now ->
        ev ~proc:by ~time:now
          (Event.Private { target = proc; block; from_; to_ }));
    on_pending =
      (fun ~by ~node ~block ~set ~now ->
        ev ~proc:by ~time:now (Event.Pending { node; block; set }));
    on_pending_downgrade =
      (fun ~by ~node ~block ~set ~now ->
        ev ~proc:by ~time:now (Event.Pending_downgrade { node; block; set }));
    on_send =
      (fun ~src ~dst ~now msg ->
        ev ~proc:src ~time:now
          (Event.Send
             {
               dst;
               kind = Msg.tag msg;
               size = Msg.size_bytes msg;
               block = Option.value ~default:(-1) (Msg.block_of msg);
             }));
    on_recv =
      (fun ~src ~dst ~now msg ->
        ev ~proc:dst ~time:now
          (Event.Recv
             {
               src;
               kind = Msg.tag msg;
               size = Msg.size_bytes msg;
               block = Option.value ~default:(-1) (Msg.block_of msg);
             }));
    on_miss_start =
      (fun ~proc ~block ~kind ~now ->
        ev ~proc ~time:now (Event.Miss_start { block; kind }));
    on_miss_end =
      (fun ~proc ~block ~kind ~start ~now ->
        ev ~proc ~time:now (Event.Miss_end { block; kind; start }));
    on_downgrade_ack =
      (fun ~proc ~block ~now ->
        ev ~proc ~time:now (Event.Downgrade_ack { block }));
    on_downgrade_done =
      (fun ~proc ~block ~now ->
        ev ~proc ~time:now (Event.Downgrade_done { block }));
    on_downgrade_queued =
      (fun ~proc ~block ~src ~now msg ->
        ev ~proc ~time:now
          (Event.Downgrade_queued { block; src; kind = Msg.tag msg }));
    on_downgrade_replay =
      (fun ~proc ~block ~src ~now msg ->
        ev ~proc ~time:now
          (Event.Downgrade_replay { block; src; kind = Msg.tag msg }));
    on_lock_acquired =
      (fun ~proc ~lock ~now -> ev ~proc ~time:now (Event.Lock_acquired { lock }));
    on_lock_released =
      (fun ~proc ~lock ~now -> ev ~proc ~time:now (Event.Lock_released { lock }));
    on_barrier_arrive =
      (fun ~proc ~barrier ~epoch ~now ->
        ev ~proc ~time:now (Event.Barrier_arrive { barrier; epoch }));
    on_barrier_leave =
      (fun ~proc ~barrier ~epoch ~now ->
        ev ~proc ~time:now (Event.Barrier_leave { barrier; epoch }));
  }

let attach ?capacity m =
  let t = create ?capacity ~nprocs:m.Machine.cfg.Config.nprocs () in
  Machine.add_observer m (observer t);
  t

let capacity t = t.capacity

let recorded t = Array.fold_left (fun acc r -> acc + r.count) 0 t.rings

let dropped t =
  Array.fold_left
    (fun acc r -> acc + max 0 (r.count - Array.length r.buf)) 0 t.rings

let proc_events t p =
  let r = t.rings.(p) in
  let cap = Array.length r.buf in
  let n = min r.count cap in
  let first = r.count - n in
  List.init n (fun i ->
      match r.buf.((first + i) land (cap - 1)) with
      | Some ev -> ev
      | None -> assert false)

(* Retained events of every processor, merged into the canonical
   scheduler-invariant order: (time, proc, per-proc emission order).
   Per-proc streams are already time-sorted, so tagging each event with
   its per-proc index makes the sort key total and deterministic. *)
let events t =
  let tagged = ref [] in
  Array.iteri
    (fun p _ ->
      List.iteri (fun i ev -> tagged := (ev.Event.time, p, i, ev) :: !tagged)
        (proc_events t p))
    t.rings;
  List.map (fun (_, _, _, ev) -> ev)
    (List.sort
       (fun (t1, p1, i1, _) (t2, p2, i2, _) ->
         compare (t1, p1, i1) (t2, p2, i2))
       !tagged)
