(** Chrome [trace_event] JSON exporter.

    Produces the JSON-array flavour loadable in [chrome://tracing] and
    Perfetto. Tracks: [pid] = coherence node, [tid] = processor.
    Timestamps are microseconds of the simulated 300 MHz clock
    (1 us = 300 cycles). Misses ([Miss_end], which carries its start
    cycle) and node downgrades (paired pending-downgrade set/clear)
    become duration ("X") events; every other event is an instant ("i");
    process/thread name metadata ("M") records name the tracks. Every
    emitted object carries [ph]/[ts]/[pid]/[tid]. *)

val export : Buffer.t -> node_of:(int -> int) -> Event.t list -> unit
(** [node_of] maps a processor id to its coherence node
    (e.g. [Shasta_core.Machine.node_of m]). *)

val to_string : node_of:(int -> int) -> Event.t list -> string

val write_file : string -> node_of:(int -> int) -> Event.t list -> unit
