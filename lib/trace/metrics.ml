module Machine = Shasta_core.Machine
module Observer = Shasta_core.Observer
module Msg = Shasta_core.Msg
module Histogram = Shasta_util.Histogram

type t = {
  miss_latency : Histogram.t;  (* cycles per retired miss *)
  downgrade_rtt : Histogram.t;  (* pending-downgrade set -> clear, cycles *)
  msg_size : Histogram.t;  (* wire bytes per sent message *)
  msg_kind : Histogram.t;  (* Msg.tag per sent message *)
  home_occupancy : Histogram.t;  (* messages handled, keyed by receiver *)
  mutable misses : int;
  mutable sends : int;
  mutable recvs : int;
  mutable downgrades : int;  (* completed multi-processor node downgrades *)
  dg_start : (int * int, int) Hashtbl.t;  (* (node, block) -> set cycle *)
}

let create () =
  {
    miss_latency = Histogram.create ();
    downgrade_rtt = Histogram.create ();
    msg_size = Histogram.create ();
    msg_kind = Histogram.create ();
    home_occupancy = Histogram.create ();
    misses = 0;
    sends = 0;
    recvs = 0;
    downgrades = 0;
    dg_start = Hashtbl.create 16;
  }

let observer t =
  {
    Observer.nil with
    Observer.on_miss_end =
      (fun ~proc:_ ~block:_ ~kind:_ ~start ~now ->
        t.misses <- t.misses + 1;
        Histogram.add t.miss_latency (now - start));
    on_pending_downgrade =
      (fun ~by:_ ~node ~block ~set ~now ->
        if set then Hashtbl.replace t.dg_start (node, block) now
        else
          match Hashtbl.find_opt t.dg_start (node, block) with
          | None -> ()
          | Some start ->
            Hashtbl.remove t.dg_start (node, block);
            t.downgrades <- t.downgrades + 1;
            Histogram.add t.downgrade_rtt (now - start));
    on_send =
      (fun ~src:_ ~dst:_ ~now:_ msg ->
        t.sends <- t.sends + 1;
        Histogram.add t.msg_size (Msg.size_bytes msg);
        Histogram.add t.msg_kind (Msg.tag msg));
    on_recv =
      (fun ~src:_ ~dst ~now:_ _msg ->
        t.recvs <- t.recvs + 1;
        Histogram.add t.home_occupancy dst);
  }

let attach m =
  let t = create () in
  Machine.add_observer m (observer t);
  t

let hist_merge_into ~into src =
  List.iter
    (fun k -> Histogram.add_many into k (Histogram.count src k))
    (Histogram.keys src)

(* Pointwise sum: commutative and associative, so a global aggregate
   filled from parallel runner domains (under a mutex) is independent of
   completion order. *)
let merge_into ~into src =
  hist_merge_into ~into:into.miss_latency src.miss_latency;
  hist_merge_into ~into:into.downgrade_rtt src.downgrade_rtt;
  hist_merge_into ~into:into.msg_size src.msg_size;
  hist_merge_into ~into:into.msg_kind src.msg_kind;
  hist_merge_into ~into:into.home_occupancy src.home_occupancy;
  into.misses <- into.misses + src.misses;
  into.sends <- into.sends + src.sends;
  into.recvs <- into.recvs + src.recvs;
  into.downgrades <- into.downgrades + src.downgrades

let misses t = t.misses
let sends t = t.sends
let recvs t = t.recvs
let downgrades t = t.downgrades
let miss_latency t = t.miss_latency
let downgrade_rtt t = t.downgrade_rtt
let msg_size t = t.msg_size
let msg_kind t = t.msg_kind
let home_occupancy t = t.home_occupancy

let summary_json buf h =
  Buffer.add_string buf
    (Printf.sprintf
       {|{"count": %d, "p50": %d, "p90": %d, "p99": %d, "p999": %d, "max": %d}|}
       (Histogram.total h)
       (Histogram.percentile h 0.5)
       (Histogram.percentile h 0.9)
       (Histogram.percentile h 0.99)
       (Histogram.percentile h 0.999)
       (Histogram.percentile h 1.0))

let to_json t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"misses": %d, "messages_sent": %d, "messages_received": %d, "downgrades": %d, "miss_latency": |}
       t.misses t.sends t.recvs t.downgrades);
  summary_json buf t.miss_latency;
  Buffer.add_string buf {|, "downgrade_rtt": |};
  summary_json buf t.downgrade_rtt;
  Buffer.add_string buf {|, "msg_size": |};
  summary_json buf t.msg_size;
  Buffer.add_string buf {|, "home_occupancy": |};
  summary_json buf t.home_occupancy;
  Buffer.add_string buf {|, "msg_kinds": {|};
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf {|"%s": %d|} (Event.msg_kind_name k)
           (Histogram.count t.msg_kind k)))
    (Histogram.keys t.msg_kind);
  Buffer.add_string buf "}}";
  Buffer.contents buf

let pp_summary ppf (label, h) =
  Format.fprintf ppf
    "  %-15s n=%-8d p50=%-8d p90=%-8d p99=%-8d p999=%-8d max=%d@." label
    (Histogram.total h)
    (Histogram.percentile h 0.5)
    (Histogram.percentile h 0.9)
    (Histogram.percentile h 0.99)
    (Histogram.percentile h 0.999)
    (Histogram.percentile h 1.0)

let pp ppf t =
  Format.fprintf ppf
    "misses %d, messages %d sent / %d received, node downgrades %d@."
    t.misses t.sends t.recvs t.downgrades;
  pp_summary ppf ("miss_latency", t.miss_latency);
  pp_summary ppf ("downgrade_rtt", t.downgrade_rtt);
  pp_summary ppf ("msg_size", t.msg_size);
  pp_summary ppf ("home_occupancy", t.home_occupancy);
  Format.fprintf ppf "  messages by kind:@.";
  List.iter
    (fun k ->
      Format.fprintf ppf "    %-15s %d@." (Event.msg_kind_name k)
        (Histogram.count t.msg_kind k))
    (Histogram.keys t.msg_kind)
