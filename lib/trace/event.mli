(** Structured protocol trace events.

    One event records one protocol occurrence, attributed to the
    processor that {e executed} it ([proc]) at that processor's virtual
    cycle ([time]). Because each processor's execution is deterministic
    in virtual time, the sub-stream of any one [proc] is independent of
    the host scheduler; the merged stream (ordered by time, then proc,
    then per-proc emission order) is therefore a scheduler-invariant
    oracle — see [Recorder.events]. *)

type base = Shasta_mem.State_table.base

type payload =
  | State of { node : int; block : int; from_ : base; to_ : base }
      (** a node's shared state table changed *)
  | Private of { target : int; block : int; from_ : base; to_ : base }
      (** processor [target]'s private table changed (possibly lowered
          by a sibling — the event's [proc] is the executor) *)
  | Pending of { node : int; block : int; set : bool }
  | Pending_downgrade of { node : int; block : int; set : bool }
  | Send of { dst : int; kind : int; size : int; block : int }
      (** [kind] indexes {!Shasta_core.Msg.tag_names}; [size] is the
          wire size in bytes; [block] is [-1] for sync traffic *)
  | Recv of { src : int; kind : int; size : int; block : int }
  | Miss_start of { block : int; kind : Shasta_core.Msg.req_kind }
  | Miss_end of { block : int; kind : Shasta_core.Msg.req_kind; start : int }
      (** the miss that started at cycle [start] retired; a chained
          read-then-upgrade is one span with the final kind *)
  | Downgrade_ack of { block : int }
  | Downgrade_done of { block : int }
  | Downgrade_queued of { block : int; src : int; kind : int }
  | Downgrade_replay of { block : int; src : int; kind : int }
  | Lock_acquired of { lock : int }
  | Lock_released of { lock : int }
  | Barrier_arrive of { barrier : int; epoch : int }
  | Barrier_leave of { barrier : int; epoch : int }

type t = { proc : int; time : int; payload : payload }

val class_name : t -> string
(** Payload constructor as a lowercase identifier ([state], [send],
    [miss_end], ...) — the vocabulary of the [--kind] filter. *)

val block_of : t -> int option

val base_name : base -> string
val req_kind_name : Shasta_core.Msg.req_kind -> string
val msg_kind_name : int -> string

val describe : t -> string
(** Payload rendered without the [proc]/[time] prefix. *)

val to_string : t -> string
(** Flight-recorder line: ["[p3 @1042] send data_reply -> p0 80B ..."]. *)

type filter = {
  procs : int list;  (** empty = all *)
  blocks : int list;  (** block base addresses; empty = all *)
  kinds : string list;  (** {!class_name} values; empty = all *)
  from_ : int option;  (** inclusive lower time bound *)
  upto : int option;  (** inclusive upper time bound *)
}

val no_filter : filter
val matches : filter -> t -> bool
