type variant = Base | Smp
type fault = Skip_private_downgrade | Skip_flag_stamp

(* SHASTA_SANITIZE is read once per [create] so the toggle works on any
   harness that builds its configs after the environment is set (the
   bench harness, the experiment runner, the CLI). *)
let env_sanitize () =
  match Sys.getenv_opt "SHASTA_SANITIZE" with
  | None | Some "" | Some "0" -> 0
  | Some "1" -> 1
  | Some s -> ( match int_of_string_opt s with Some n when n > 1 -> 2 | _ -> 1)

(* SHASTA_TRACE follows the same once-per-[create] discipline. *)
let env_trace () =
  match Sys.getenv_opt "SHASTA_TRACE" with
  | None | Some "" | Some "0" -> 0
  | Some _ -> 1

(* SHASTA_SHARDS likewise; 0 means "auto" (resolved per run against the
   machine's node count and the host's core count by Dsm.run). *)
let env_shards () =
  match Sys.getenv_opt "SHASTA_SHARDS" with
  | None | Some "" | Some "auto" | Some "0" -> 0
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ -> invalid_arg "SHASTA_SHARDS: expected auto|0|N>=1")

(* SHASTA_FASTPATH gates the fused inline-check fast path; it defaults
   to on and exists so CI can diff fast-path vs. reference runs
   byte-for-byte. *)
let env_fastpath () =
  match Sys.getenv_opt "SHASTA_FASTPATH" with
  | Some "0" -> false
  | None | Some _ -> true

(* SHASTA_CKPT: checkpoint interval in simulated cycles, 0 (the default)
   means checkpointing off. *)
let env_ckpt () =
  match Sys.getenv_opt "SHASTA_CKPT" with
  | None | Some "" | Some "0" -> 0
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ -> invalid_arg "SHASTA_CKPT: expected 0|interval>=1")

type t = {
  variant : variant;
  nprocs : int;
  procs_per_node : int;
  clustering : int;
  line_size : int;
  heap_bytes : int;
  checks_enabled : bool;
  timing : Timing.t;
  link : Shasta_net.Link.t;
  max_cycles : int;
  seed : int;
  smp_sync : bool;
  share_directory : bool;
  sanitize : int;
  trace : int;
  shards : int;
  fastpath : bool;
  ckpt : int;
  fault : fault option;
}

let create ?(variant = Base) ?(nprocs = 1) ?(procs_per_node = 4)
    ?(clustering = 1) ?(line_size = 64) ?(heap_bytes = 8 * 1024 * 1024)
    ?(checks_enabled = true) ?(timing = Timing.default)
    ?(link = Shasta_net.Link.default) ?(max_cycles = 2_000_000_000)
    ?(seed = 42) ?(smp_sync = false) ?(share_directory = false)
    ?sanitize ?trace ?shards ?fastpath ?ckpt ?fault () =
  let sanitize =
    match sanitize with Some s -> max 0 s | None -> env_sanitize ()
  in
  let trace = match trace with Some v -> max 0 v | None -> env_trace () in
  let shards =
    match shards with Some s -> max 0 s | None -> env_shards ()
  in
  let fastpath =
    match fastpath with Some b -> b | None -> env_fastpath ()
  in
  let ckpt = match ckpt with Some n -> max 0 n | None -> env_ckpt () in
  if nprocs <= 0 then invalid_arg "Config.create: nprocs";
  if procs_per_node <= 0 then invalid_arg "Config.create: procs_per_node";
  if clustering <= 0 then invalid_arg "Config.create: clustering";
  (match variant with
  | Base ->
    if clustering <> 1 then
      invalid_arg "Config.create: Base-Shasta requires clustering = 1"
  | Smp ->
    if procs_per_node mod clustering <> 0 then
      invalid_arg "Config.create: clustering must divide procs_per_node");
  {
    variant;
    nprocs;
    procs_per_node;
    clustering;
    line_size;
    heap_bytes;
    checks_enabled;
    timing;
    link;
    max_cycles;
    seed;
    smp_sync;
    share_directory;
    sanitize;
    trace;
    shards;
    fastpath;
    ckpt;
    fault;
  }

let nnodes t = (t.nprocs + t.clustering - 1) / t.clustering
let node_of_proc t p = p / t.clustering

let procs_of_node t n =
  let lo = n * t.clustering in
  let hi = min t.nprocs (lo + t.clustering) - 1 in
  List.init (hi - lo + 1) (fun i -> lo + i)
