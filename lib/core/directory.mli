(** Per-home directory state.

    Each home processor keeps, for every block on its pages, the identity
    of the current owner (the last processor that held an exclusive copy)
    and a bit vector of sharing processors. Only the first processor of a
    node to request a block is recorded, which keeps protocol requests
    for a block serialized at one processor per node (§3.4.2).

    The [busy] flag covers the window between forwarding a request to the
    owner (or starting a local downgrade) and its completion
    acknowledgement; requests arriving in that window are queued in FIFO
    order and re-dispatched on completion. *)

type entry = {
  mutable owner : int;
  mutable sharers : Shasta_util.Bitset.t;
  mutable busy : bool;
  mutable queue : (int * Msg.t) list;  (** (source, message), newest first *)
}

type t

val create : unit -> t

val entry : t -> block:int -> home:int -> entry
(** Find or create; a fresh entry has [owner = home], no sharers, and is
    idle. *)

val find : t -> block:int -> entry option
(** Lookup without creating (for tests and invariant checks). *)

val iter : (int -> entry -> unit) -> t -> unit

val clear : t -> unit
(** Drop every entry — a crashed home's directory, about to be rebuilt
    (crash recovery only). *)

val remove : t -> block:int -> unit
(** Drop one entry (crash recovery: a block re-homed away). *)

val push_queued : entry -> src:int -> Msg.t -> unit
(** Append a request to the busy-entry queue (FIFO). *)

val pop_queued : entry -> (int * Msg.t) option
(** Remove the oldest queued request. *)
