(** Machine configuration for a simulated run. *)

type variant =
  | Base  (** Base-Shasta: message passing between all processors *)
  | Smp  (** SMP-Shasta: memory shared within each clustering group *)

type fault =
  | Skip_private_downgrade
      (** a processor handling a downgrade message leaves its private
          state table untouched (the §3.4.3 bug class) *)
  | Skip_flag_stamp
      (** invalid-flag stamping is skipped when a block is surrendered,
          so later flag-based load checks read stale data as valid *)
(** Deliberate protocol faults, strictly for testing the sanitizer and
    the litmus model checker. Never set in a real configuration. *)

type t = private {
  variant : variant;
  nprocs : int;
  procs_per_node : int;  (** physical SMP size (message latency domain) *)
  clustering : int;
      (** logical sharing-domain size; 1 for Base, divides
          [procs_per_node] for Smp so a sharing domain never spans
          physical nodes *)
  line_size : int;
  heap_bytes : int;
  checks_enabled : bool;
      (** disable to measure the original sequential execution time *)
  timing : Timing.t;
  link : Shasta_net.Link.t;
  max_cycles : int;
  seed : int;  (** workload seed, so runs are reproducible *)
  smp_sync : bool;
      (** 5 extension: hierarchical barriers that combine arrivals in
          each node's shared memory and send one message per node *)
  share_directory : bool;
      (** 5 extension: a requester colocated with the home's node
          accesses the directory directly, eliminating the intra-node
          request/reply messages *)
  sanitize : int;
      (** analysis level: 0 off; 1 online invariant sanitizing plus an
          {!Inspect.report} sweep at every barrier; 2 additionally
          enables the happens-before race detector where the harness
          supports it. Defaults to the [SHASTA_SANITIZE] environment
          variable. *)
  trace : int;
      (** event tracing/metrics level: 0 off; >= 1 asks harnesses (the
          experiment runner, bench) to attach the {!Shasta_trace}
          metrics observer. Like hooks in general it never charges
          simulated cycles. Defaults to the [SHASTA_TRACE] environment
          variable. *)
  shards : int;
      (** scheduler shards for a single run: 0 (the default) means
          "auto" — one shard per coherence node, capped by the host's
          recommended domain count; 1 forces the sequential scheduler on
          the calling domain; N > 1 requests exactly N shards (clamped
          to the node count). Simulated results are bit-identical at any
          setting. Defaults to the [SHASTA_SHARDS] environment
          variable. *)
  fastpath : bool;
      (** enable the fused inline-check fast path (hit checks resolved
          against a single state-table byte, batched per-line checks in
          access programs) with cycle accounting deferred to a
          per-processor accumulator. Simulated results are bit-identical
          either way; off exists so CI can diff fast vs. reference.
          Defaults to the [SHASTA_FASTPATH] environment variable
          (default on; ["0"] disables). *)
  ckpt : int;
      (** checkpoint interval in simulated cycles: every node snapshots
          its directory/state-table slices whenever the interval has
          elapsed since its last snapshot, and logs sent messages in
          between (piggybacked on the [on_send] observer hook — zero
          simulated cycles). 0 (the default) disables checkpointing.
          Defaults to the [SHASTA_CKPT] environment variable. Forces the
          sequential scheduler. *)
  fault : fault option;  (** test-only protocol fault injection *)
}

val create :
  ?variant:variant ->
  ?nprocs:int ->
  ?procs_per_node:int ->
  ?clustering:int ->
  ?line_size:int ->
  ?heap_bytes:int ->
  ?checks_enabled:bool ->
  ?timing:Timing.t ->
  ?link:Shasta_net.Link.t ->
  ?max_cycles:int ->
  ?seed:int ->
  ?smp_sync:bool ->
  ?share_directory:bool ->
  ?sanitize:int ->
  ?trace:int ->
  ?shards:int ->
  ?fastpath:bool ->
  ?ckpt:int ->
  ?fault:fault ->
  unit ->
  t
(** Defaults: [Base], 1 processor, 4 per node, clustering 1, 64-byte
    lines, 8 MiB heap, checks enabled. Raises [Invalid_argument] on
    inconsistent combinations (Base with clustering > 1, clustering not
    dividing the node size, non-positive sizes). *)

val env_fastpath : unit -> bool
(** The [SHASTA_FASTPATH] environment variable: ["0"] means off,
    anything else (including unset) means on. The default for
    {!create}'s [?fastpath]; exposed so harnesses (bench) can report the
    requested value. *)

val env_ckpt : unit -> int
(** The [SHASTA_CKPT] environment variable parsed to a checkpoint
    interval in cycles: absent, empty or ["0"] mean 0 (off); [N >= 1]
    means snapshot every [N] cycles. Raises [Invalid_argument] on
    anything else. The default for {!create}'s [?ckpt]. *)

val env_shards : unit -> int
(** The [SHASTA_SHARDS] environment variable parsed to the [shards]
    encoding: absent, empty, ["auto"] or ["0"] mean 0 (auto); [N >= 1]
    means exactly [N]. Raises [Invalid_argument] on anything else. The
    default for {!create}'s [?shards]; exposed so harnesses (bench) can
    report the requested value. *)

val nnodes : t -> int
(** Number of coherence nodes (sharing domains). *)

val node_of_proc : t -> int -> int
(** Coherence node of a processor. *)

val procs_of_node : t -> int -> int list
(** Processors of a coherence node, ascending. *)
