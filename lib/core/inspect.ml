module Layout = Shasta_mem.Layout
module Image = Shasta_mem.Image
module State_table = Shasta_mem.State_table
module Network = Shasta_net.Network

let state_rank = function
  | State_table.Invalid -> 0
  | State_table.Shared -> 1
  | State_table.Exclusive -> 2

let iter_allocated_blocks (m : Machine.t) f =
  let used = Shasta_mem.Alloc.used_bytes m.Machine.heap in
  let pos = ref 0 in
  while !pos < used do
    f !pos;
    pos := !pos + Machine.block_size m !pos
  done

let block_in_batch (m : Machine.t) ns block =
  let layout = m.Machine.layout in
  let first = Layout.line_of layout block in
  let n = Machine.block_size m block / layout.Layout.line_size in
  let hit = ref false in
  for l = first to first + n - 1 do
    if Hashtbl.mem ns.Machine.batch_lines l then hit := true
  done;
  !hit

type subject = Node of int | Proc of int | Machine_wide
type violation = { block : int; subject : subject; what : string }

exception Violation of violation list

let describe v =
  let where =
    match v.subject with
    | Node n -> Printf.sprintf "node %d " n
    | Proc p -> Printf.sprintf "proc %d " p
    | Machine_wide -> ""
  in
  Printf.sprintf "block %#x: %s%s" v.block where v.what

let () =
  Printexc.register_printer (function
    | Violation vs ->
      Some
        ("Inspect.Violation:\n  " ^ String.concat "\n  " (List.map describe vs))
    | _ -> None)

(* A block with any protocol activity in flight anywhere — an
   outstanding miss, a downgrade, pending bits, a deferred flag write,
   an active batch, or a busy/queued directory entry — may legitimately
   break the settled-state invariants until that activity completes. *)
let block_transient (m : Machine.t) block =
  let layout = m.Machine.layout in
  let line = Layout.line_of layout block in
  Array.exists
    (fun ns ->
      Miss_table.find ns.Machine.misses ~block <> None
      || Downgrade.find ns.Machine.downgrades ~block <> None
      || State_table.pending ns.Machine.table line
      || State_table.pending_downgrade ns.Machine.table line
      || Hashtbl.mem ns.Machine.deferred_flags block
      || Hashtbl.mem ns.Machine.batch_wranges block
      || block_in_batch m ns block)
    m.Machine.nodes
  ||
  match Directory.find m.Machine.dirs.(Machine.home_of_block m block) ~block with
  | Some e -> e.Directory.busy || e.Directory.queue <> []
  | None -> false

let report (m : Machine.t) =
  let bad = ref [] in
  let push block subject what = bad := { block; subject; what } :: !bad in
  let layout = m.Machine.layout in
  iter_allocated_blocks m (fun block ->
      let line = Layout.line_of layout block in
      let transient = block_transient m block in
      let exclusive = ref 0 and valid = ref 0 in
      Array.iteri
        (fun n ns ->
          (match State_table.get ns.Machine.table line with
          | State_table.Exclusive ->
            incr exclusive;
            incr valid
          | State_table.Shared -> incr valid
          | State_table.Invalid -> ());
          (* Pending bits track the miss table; a pending-downgrade bit
             tracks the downgrade table. Both pairs are updated with no
             scheduling point in between, so a sweep never sees them
             disagree in a correct protocol. *)
          if
            State_table.pending ns.Machine.table line
            && Miss_table.find ns.Machine.misses ~block = None
          then push block (Node n) "pending with no outstanding miss";
          (match
             ( State_table.pending_downgrade ns.Machine.table line,
               Downgrade.find ns.Machine.downgrades ~block )
           with
          | true, None ->
            push block (Node n) "pending-downgrade with no downgrade entry"
          | false, Some _ ->
            push block (Node n) "downgrade entry without pending-downgrade bit"
          | _ -> ());
          (* Invalid and settled => flag pattern everywhere. *)
          if
            (not transient)
            && State_table.get ns.Machine.table line = State_table.Invalid
          then begin
            let size = Machine.block_size m block in
            let words = size / 8 in
            let clean = ref true in
            for w = 0 to words - 1 do
              if not (Image.is_flag64 (Image.load64 ns.Machine.image (block + (8 * w))))
              then clean := false
            done;
            if not !clean then
              push block (Node n) "invalid without flag pattern"
          end)
        m.Machine.nodes;
      if !exclusive > 1 then
        push block Machine_wide
          (Printf.sprintf "%d exclusive nodes" !exclusive);
      if (not transient) && !exclusive = 1 && !valid > 1 then
        push block Machine_wide "exclusive node coexists with sharers";
      if (not transient) && !valid = 0 then
        push block Machine_wide "no valid copy anywhere";
      (* Private entries never exceed the node's shared entry, except
         transiently under an active batch. *)
      Array.iteri
        (fun p priv ->
          let node = Machine.node_of m p in
          let ns = m.Machine.nodes.(node) in
          if
            (not (block_in_batch m ns block))
            && state_rank (State_table.get priv line)
               > state_rank (State_table.get ns.Machine.table line)
          then
            push block (Proc p)
              (Printf.sprintf "private overstates node %d shared state" node))
        m.Machine.privates);
  List.rev !bad

let check_invariants m = List.map describe (report m)

let assert_invariants m =
  match report m with [] -> () | vs -> raise (Violation vs)

let pp_base = State_table.pp_base

let dump ?block ppf (m : Machine.t) =
  let open Format in
  fprintf ppf "=== machine: %d procs, clustering %d ===@."
    m.Machine.cfg.Config.nprocs m.Machine.cfg.Config.clustering;
  Array.iteri
    (fun i (ps : Machine.proc_state) ->
      fprintf ppf "proc %2d: node %d, %s, category %s, outstanding stores %d@." i
        ps.Machine.node
        (if ps.Machine.finished then "finished" else "running")
        (Stats.category_name ps.Machine.category)
        ps.Machine.outstanding_stores)
    m.Machine.procs;
  Array.iteri
    (fun n (ns : Machine.node_state) ->
      List.iter
        (fun id ->
          match Miss_table.find_id ns.Machine.misses id with
          | Some e ->
            fprintf ppf
              "node %d miss: block %#x kind %s ready=%b acks %d/%d ranges %d@." n
              e.Miss_table.block
              (match e.Miss_table.kind with
              | Msg.Read -> "read"
              | Msg.Readex -> "readex"
              | Msg.Upgrade -> "upgrade")
              e.Miss_table.data_ready e.Miss_table.acks_received
              e.Miss_table.acks_expected
              (List.length e.Miss_table.store_ranges)
          | None -> ())
        (Miss_table.outstanding_ids ns.Machine.misses);
      if Downgrade.count ns.Machine.downgrades > 0 then
        fprintf ppf "node %d: %d downgrades in progress@." n
          (Downgrade.count ns.Machine.downgrades);
      if Hashtbl.length ns.Machine.deferred_flags > 0 then
        fprintf ppf "node %d: %d deferred flag writes@." n
          (Hashtbl.length ns.Machine.deferred_flags))
    m.Machine.nodes;
  Array.iteri
    (fun p d ->
      Directory.iter
        (fun b e ->
          if e.Directory.busy || e.Directory.queue <> [] then
            fprintf ppf "dir@%d block %#x: busy=%b owner=%d sharers=%a queue=%d@." p
              b e.Directory.busy e.Directory.owner Shasta_util.Bitset.pp
              e.Directory.sharers
              (List.length e.Directory.queue))
        d)
    m.Machine.dirs;
  Hashtbl.iter
    (fun id (ls : Machine.lock_state) ->
      if ls.Machine.held || ls.Machine.lock_queue <> [] then
        fprintf ppf "lock %d: holder %d, %d queued@." id ls.Machine.holder
          (List.length ls.Machine.lock_queue))
    m.Machine.locks;
  Hashtbl.iter
    (fun id (bs : Machine.barrier_state) ->
      fprintf ppf "barrier %d: arrived %d, generation %d@." id bs.Machine.arrived
        bs.Machine.generation)
    m.Machine.barriers;
  for p = 0 to m.Machine.cfg.Config.nprocs - 1 do
    let q = Network.queued m.Machine.net ~dst:p in
    if q > 0 then fprintf ppf "net: %d messages queued for proc %d@." q p
  done;
  match block with
  | None -> ()
  | Some b ->
    let line = Layout.line_of m.Machine.layout b in
    fprintf ppf "block %#x:@." b;
    Array.iteri
      (fun n ns ->
        fprintf ppf "  node %d: %a pend=%b pdg=%b@." n pp_base
          (State_table.get ns.Machine.table line)
          (State_table.pending ns.Machine.table line)
          (State_table.pending_downgrade ns.Machine.table line))
      m.Machine.nodes;
    Array.iteri
      (fun p priv ->
        fprintf ppf "  proc %d private: %a@." p pp_base (State_table.get priv line))
      m.Machine.privates
