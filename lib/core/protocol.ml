module Engine = Shasta_sim.Engine
module Layout = Shasta_mem.Layout
module Image = Shasta_mem.Image
module State_table = Shasta_mem.State_table
module Network = Shasta_net.Network
module Bitset = Shasta_util.Bitset
module Histogram = Shasta_util.Histogram

type ctx = {
  m : Machine.t;
  eng : Engine.proc;
  ps : Machine.proc_state;
  t : Timing.t;
  smp : bool;
}

let make_ctx m eng =
  let ps = m.Machine.procs.(Engine.pid eng) in
  ps.Machine.engine <- Some eng;
  {
    m;
    eng;
    ps;
    t = m.Machine.cfg.Config.timing;
    smp = m.Machine.cfg.Config.variant = Config.Smp;
  }

let machine ctx = ctx.m
let pid ctx = ctx.ps.Machine.pid
let node ctx = ctx.ps.Machine.node
let proc_state ctx = ctx.ps
let engine_proc ctx = ctx.eng
let timing ctx = ctx.t
let is_smp ctx = ctx.smp
let node_state ctx = ctx.m.Machine.nodes.(node ctx)
let node_image ctx = (node_state ctx).Machine.image

let check_table ctx =
  if ctx.smp then ctx.m.Machine.privates.(pid ctx)
  else (node_state ctx).Machine.table

(* ------------------------------------------------------------------ *)
(* Diagnosable protocol failures.                                      *)

exception
  Protocol_violation of {
    pid : int;
    block : int;
    state : State_table.base;
    detail : string;
  }

let () =
  Printexc.register_printer (function
    | Protocol_violation { pid; block; state; detail } ->
      Some
        (Printf.sprintf
           "Protocol_violation (proc %d, block %#x, node state %s): %s" pid
           block
           (match state with
           | State_table.Invalid -> "Invalid"
           | State_table.Shared -> "Shared"
           | State_table.Exclusive -> "Exclusive")
           detail)
    | _ -> None)

(* An impossible protocol configuration was reached while dispatching a
   message: raise with enough context to diagnose without a debugger. *)
let violation ctx ~block detail =
  let line = Layout.line_of ctx.m.Machine.layout block in
  let state = State_table.get (node_state ctx).Machine.table line in
  raise (Protocol_violation { pid = pid ctx; block; state; detail })

(* ------------------------------------------------------------------ *)
(* Observer hooks. Each site is a single match on the option: with no
   observer installed the hook costs one load and one branch, so the
   instrumented build stays within noise of the unhooked code, and no
   hook ever charges cycles — simulated time is bit-identical whether
   or not an observer is watching. *)

let fault_is ctx f = ctx.m.Machine.cfg.Config.fault = Some f

let obs_state ctx ~block ~from_ ~to_ =
  match ctx.m.Machine.observer with
  | None -> ()
  | Some o ->
    o.Observer.on_state ~by:(pid ctx) ~node:(node ctx) ~block ~from_ ~to_
      ~now:(Engine.now ctx.eng)

let obs_private ctx ~proc ~block ~from_ ~to_ =
  match ctx.m.Machine.observer with
  | None -> ()
  | Some o ->
    o.Observer.on_private ~by:(pid ctx) ~proc ~block ~from_ ~to_
      ~now:(Engine.now ctx.eng)

let obs_pending ctx ~block ~set =
  match ctx.m.Machine.observer with
  | None -> ()
  | Some o ->
    o.Observer.on_pending ~by:(pid ctx) ~node:(node ctx) ~block ~set
      ~now:(Engine.now ctx.eng)

let obs_pending_downgrade ctx ~block ~set =
  match ctx.m.Machine.observer with
  | None -> ()
  | Some o ->
    o.Observer.on_pending_downgrade ~by:(pid ctx) ~node:(node ctx) ~block ~set
      ~now:(Engine.now ctx.eng)

let obs_miss_start ctx ~block ~kind =
  match ctx.m.Machine.observer with
  | None -> ()
  | Some o ->
    o.Observer.on_miss_start ~proc:(pid ctx) ~block ~kind
      ~now:(Engine.now ctx.eng)

let obs_miss_end ctx ~block ~kind ~start =
  match ctx.m.Machine.observer with
  | None -> ()
  | Some o ->
    o.Observer.on_miss_end ~proc:(pid ctx) ~block ~kind ~start
      ~now:(Engine.now ctx.eng)

let obs_downgrade_ack ctx ~block =
  match ctx.m.Machine.observer with
  | None -> ()
  | Some o ->
    o.Observer.on_downgrade_ack ~proc:(pid ctx) ~block ~now:(Engine.now ctx.eng)

let obs_downgrade_done ctx ~block =
  match ctx.m.Machine.observer with
  | None -> ()
  | Some o ->
    o.Observer.on_downgrade_done ~proc:(pid ctx) ~block
      ~now:(Engine.now ctx.eng)

let obs_downgrade_queued ctx ~block ~src msg =
  match ctx.m.Machine.observer with
  | None -> ()
  | Some o ->
    o.Observer.on_downgrade_queued ~proc:(pid ctx) ~block ~src
      ~now:(Engine.now ctx.eng) msg

let obs_downgrade_replay ctx ~block ~src msg =
  match ctx.m.Machine.observer with
  | None -> ()
  | Some o ->
    o.Observer.on_downgrade_replay ~proc:(pid ctx) ~block ~src
      ~now:(Engine.now ctx.eng) msg

let obs_recv ctx ~src ~now msg =
  match ctx.m.Machine.observer with
  | None -> ()
  | Some o -> o.Observer.on_recv ~src ~dst:(pid ctx) ~now msg

let obs_lock_acquired ctx ~lock =
  match ctx.m.Machine.observer with
  | None -> ()
  | Some o -> o.Observer.on_lock_acquired ~proc:(pid ctx) ~lock ~now:(Engine.now ctx.eng)

let obs_lock_released ctx ~lock =
  match ctx.m.Machine.observer with
  | None -> ()
  | Some o -> o.Observer.on_lock_released ~proc:(pid ctx) ~lock ~now:(Engine.now ctx.eng)

let obs_barrier_arrive ctx ~barrier ~epoch =
  match ctx.m.Machine.observer with
  | None -> ()
  | Some o ->
    o.Observer.on_barrier_arrive ~proc:(pid ctx) ~barrier ~epoch
      ~now:(Engine.now ctx.eng)

let obs_barrier_leave ctx ~barrier ~epoch =
  match ctx.m.Machine.observer with
  | None -> ()
  | Some o ->
    o.Observer.on_barrier_leave ~proc:(pid ctx) ~barrier ~epoch
      ~now:(Engine.now ctx.eng)

(* ------------------------------------------------------------------ *)
(* Cycle accounting.                                                   *)

let charge ctx c =
  if not ctx.ps.Machine.finished then
    Stats.add_cycles ctx.ps.Machine.stats ctx.ps.Machine.category c;
  Engine.advance_local ctx.eng c

let charge_yield ctx c =
  if not ctx.ps.Machine.finished then
    Stats.add_cycles ctx.ps.Machine.stats ctx.ps.Machine.category c;
  Engine.advance ctx.eng c

let with_category ctx cat f =
  let saved = ctx.ps.Machine.category in
  ctx.ps.Machine.category <- cat;
  Fun.protect ~finally:(fun () -> ctx.ps.Machine.category <- saved) f

(* ------------------------------------------------------------------ *)
(* Geometry helpers.                                                   *)

let lines_of_block ctx block =
  let layout = ctx.m.Machine.layout in
  let first = Layout.line_of layout block in
  (first, Machine.block_size ctx.m block / layout.Layout.line_size)

let state_rank = function
  | State_table.Invalid -> 0
  | State_table.Shared -> 1
  | State_table.Exclusive -> 2

(* The [table] argument is always the node's shared table of [ctx]'s
   own node, so the observer hook can attribute the transition. *)
let set_block_state ctx table block st =
  let first, n = lines_of_block ctx block in
  let old = State_table.get table first in
  for l = first to first + n - 1 do
    State_table.set table l st
  done;
  if st <> old then obs_state ctx ~block ~from_:old ~to_:st

let set_block_pending ctx table block v =
  let first, n = lines_of_block ctx block in
  for l = first to first + n - 1 do
    State_table.set_pending table l v
  done;
  obs_pending ctx ~block ~set:v

let set_block_pending_downgrade ctx table block v =
  let first, n = lines_of_block ctx block in
  for l = first to first + n - 1 do
    State_table.set_pending_downgrade table l v
  done;
  obs_pending_downgrade ctx ~block ~set:v

(* Raise a private state table to [st] (never downgrade). *)
let raise_private ctx p block st =
  let table = ctx.m.Machine.privates.(p) in
  let first, n = lines_of_block ctx block in
  let old = State_table.get table first in
  for l = first to first + n - 1 do
    if state_rank (State_table.get table l) < state_rank st then
      State_table.set table l st
  done;
  if state_rank old < state_rank st then
    obs_private ctx ~proc:p ~block ~from_:old ~to_:st

(* Lower a private state table to [st] (never upgrade). *)
let lower_private ctx p block st =
  let table = ctx.m.Machine.privates.(p) in
  let first, n = lines_of_block ctx block in
  let old = State_table.get table first in
  for l = first to first + n - 1 do
    if state_rank (State_table.get table l) > state_rank st then
      State_table.set table l st
  done;
  if state_rank old > state_rank st then
    obs_private ctx ~proc:p ~block ~from_:old ~to_:st

let private_state ctx p block =
  let table = ctx.m.Machine.privates.(p) in
  State_table.get table (Layout.line_of ctx.m.Machine.layout block)

(* ------------------------------------------------------------------ *)
(* Invalid-flag stamping, with batch deferral (§3.4.4).                *)

let block_in_active_batch ctx block =
  let ns = node_state ctx in
  let first, n = lines_of_block ctx block in
  let hit = ref false in
  for l = first to first + n - 1 do
    if Hashtbl.mem ns.Machine.batch_lines l then hit := true
  done;
  !hit

let write_flag_now ctx block =
  let ns = node_state ctx in
  let size = Machine.block_size ctx.m block in
  (* Preserve non-blocking-store bytes only while a future data reply
     will still merge around them (fetch in flight, or an ownership
     request chained behind a read). Once the entry's data is complete
     the stores have been serialized into the node copy -- and possibly
     shipped onward -- so a surrendered block must be stamped entirely,
     or a later flag-based load would read the stale word as valid. *)
  let skip =
    match Miss_table.find ns.Machine.misses ~block with
    | Some e
      when (not e.Miss_table.data_ready) || e.Miss_table.upgrade_after_reply ->
      e.Miss_table.store_ranges
    | Some _ | None -> []
  in
  match skip with
  | [] -> Image.write_invalid_flag ns.Machine.image ~addr:block ~len:size
  | _ ->
    let flags = Bytes.create size in
    for w = 0 to (size / 4) - 1 do
      Bytes.set_int32_le flags (4 * w) Image.invalid_flag32
    done;
    Image.write_bytes ns.Machine.image ~addr:block ~skip flags

let stamp_invalid ctx block =
  let ns = node_state ctx in
  if fault_is ctx Config.Skip_flag_stamp then
    (* Test-only fault: leave stale application data behind where the
       invalid-flag pattern belongs. *)
    ()
  else if block_in_active_batch ctx block then
    Hashtbl.replace ns.Machine.deferred_flags block ()
  else write_flag_now ctx block

(* ------------------------------------------------------------------ *)
(* Message handling. [deliver] routes to the network unless the
   destination is this very processor, in which case the handler runs
   inline (a processor never sends itself a message; this is the
   requester-is-home fast path of Base-Shasta). *)

let rec deliver ctx dst msg =
  if dst = pid ctx then handle_message ctx ~src:(pid ctx) msg
  else begin
    if not (Shasta_net.Topology.same_node ctx.m.Machine.topo (pid ctx) dst) then
      charge ctx ctx.t.Timing.remote_send;
    let now = Engine.now ctx.eng in
    Network.send ctx.m.Machine.net ~src:(pid ctx) ~dst ~now
      ~size:(Msg.size_bytes msg) msg;
    match ctx.m.Machine.observer with
    | None -> ()
    | Some o -> o.Observer.on_send ~src:(pid ctx) ~dst ~now msg
  end

and handle_message ctx ~src msg =
  charge ctx ctx.t.Timing.handler_base;
  (match msg with
  | Msg.Req _ | Msg.Fwd _ | Msg.Data_reply _ | Msg.Upgrade_reply _
  | Msg.Invalidate _ | Msg.Inval_ack _ | Msg.Sharing_wb _ | Msg.Own_ack _
  | Msg.Downgrade _ ->
    if ctx.smp then charge ctx ctx.t.Timing.smp_lock
  | Msg.Lock_req _ | Msg.Lock_grant _ | Msg.Lock_release _
  | Msg.Barrier_arrive _ | Msg.Barrier_release _ ->
    ());
  match msg with
  | Msg.Req { kind; block } -> handle_dir_request ctx ~src ~kind ~block
  | Msg.Fwd { kind; block; requester; inval_acks } ->
    handle_fwd ctx ~src ~kind ~block ~requester ~inval_acks msg
  | Msg.Data_reply { kind; block; data; from_home; inval_acks } ->
    handle_data_reply ctx ~kind ~block ~data ~from_home ~inval_acks
  | Msg.Upgrade_reply { block; inval_acks } ->
    handle_upgrade_reply ctx ~block ~inval_acks
  | Msg.Invalidate { block; requester } ->
    handle_invalidate ctx ~src ~block ~requester msg
  | Msg.Inval_ack { block } -> handle_inval_ack ctx ~block
  | Msg.Sharing_wb { block; new_sharer } ->
    handle_sharing_wb ctx ~block ~new_sharer
  | Msg.Own_ack { block } -> handle_own_ack ctx ~block
  | Msg.Downgrade { block; target } -> handle_downgrade_msg ctx ~block ~target
  | Msg.Lock_req { lock } -> handle_lock_req ctx ~src ~lock
  | Msg.Lock_grant { lock } -> Hashtbl.replace ctx.ps.Machine.granted lock ()
  | Msg.Lock_release { lock } -> handle_lock_release ctx ~lock
  | Msg.Barrier_arrive { barrier } -> handle_barrier_arrive ctx ~src ~barrier
  | Msg.Barrier_release { barrier; generation } ->
    if
      ctx.m.Machine.cfg.Config.smp_sync
      && ctx.m.Machine.cfg.Config.clustering > 1
    then begin
      (* Publish the release through the node's shared memory. *)
      let tbl = ctx.m.Machine.barrier_local.(node ctx) in
      let bs =
        match Hashtbl.find_opt tbl barrier with
        | Some bs -> bs
        | None ->
          let bs = { Machine.arrived = 0; generation = 0; arrived_procs = [] } in
          Hashtbl.replace tbl barrier bs;
          bs
      in
      bs.Machine.generation <- generation
    end
    else Hashtbl.replace ctx.ps.Machine.barrier_seen barrier generation

(* ---------------- Directory (home) side ---------------- *)

and dir_entry ctx block =
  (* The entry lives in the home processor's directory; with the
     share_directory extension the handler may be running on a
     colocated processor, so resolve the home explicitly. *)
  let home = Machine.home_of_block ctx.m block in
  Directory.entry ctx.m.Machine.dirs.(home) ~block ~home

and node_has_valid ctx block =
  let ns = node_state ctx in
  let line = Layout.line_of ctx.m.Machine.layout block in
  let base = State_table.get ns.Machine.table line in
  base <> State_table.Invalid
  && (not (State_table.pending ns.Machine.table line))
  && not (State_table.pending_downgrade ns.Machine.table line)

and handle_dir_request ctx ~src ~kind ~block =
  charge ctx ctx.t.Timing.handler_home;
  let e = dir_entry ctx block in
  if e.Directory.busy then Directory.push_queued e ~src (Msg.Req { kind; block })
  else
    match kind with
    | Msg.Read -> handle_read_request ctx ~src ~block e
    | Msg.Readex -> handle_readex_request ctx ~src ~block e
    | Msg.Upgrade ->
      if Bitset.mem src e.Directory.sharers then
        handle_upgrade_request ctx ~src ~block e
      else
        (* The requester's copy was invalidated while its upgrade was in
           flight: supply data as for a read-exclusive. *)
        handle_readex_request ctx ~src ~block e

and handle_read_request ctx ~src ~block e =
  let ns = node_state ctx in
  let line = Layout.line_of ctx.m.Machine.layout block in
  if node_has_valid ctx block then begin
    match State_table.get ns.Machine.table line with
    | State_table.Shared ->
      (* Home has a clean copy: serve directly (2 hops). *)
      e.Directory.sharers <-
        Bitset.add src (Bitset.add (pid ctx) e.Directory.sharers);
      reply_data ctx ~dst:src ~kind:Msg.Read ~block ~inval_acks:0
    | State_table.Exclusive ->
      e.Directory.busy <- true;
      start_node_downgrade ctx ~block ~target:State_table.Shared
        ~deferred:(Downgrade.Reply_read { requester = src })
    | State_table.Invalid ->
      violation ctx ~block "read request: home node valid yet state Invalid"
  end
  else begin
    e.Directory.busy <- true;
    deliver ctx e.Directory.owner
      (Msg.Fwd { kind = Msg.Read; block; requester = src; inval_acks = 0 })
  end

(* Send an invalidation to a sharer — except that a sharer on this very
   node must be invalidated inline: the home has already serialized the
   invalidating transaction, and leaving its own node's copy valid until
   a sibling polls the message would let a later request be served from
   the dead copy. *)
and send_invalidate ctx ~block ~requester q =
  if Machine.node_of ctx.m q = node ctx then
    handle_invalidate ctx ~src:(pid ctx) ~block ~requester
      (Msg.Invalidate { block; requester })
  else deliver ctx q (Msg.Invalidate { block; requester })

and handle_readex_request ctx ~src ~block e =
  if node_has_valid ctx block then begin
    (* The home node supplies the data and is itself invalidated;
       sharers on other nodes (except the requester's) are invalidated
       with acknowledgements flowing to the requester. *)
    let invals =
      List.filter
        (fun q ->
          Machine.node_of ctx.m q <> node ctx
          && Machine.node_of ctx.m q <> Machine.node_of ctx.m src)
        (Bitset.elements e.Directory.sharers)
    in
    List.iter (send_invalidate ctx ~block ~requester:src) invals;
    let acks = List.length invals in
    e.Directory.owner <- src;
    e.Directory.sharers <- Bitset.singleton src;
    e.Directory.busy <- true;
    start_node_downgrade ctx ~block ~target:State_table.Invalid
      ~deferred:(Downgrade.Reply_readex { requester = src; inval_acks = acks })
  end
  else begin
    let owner = e.Directory.owner in
    let invals =
      List.filter
        (fun q ->
          Machine.node_of ctx.m q <> Machine.node_of ctx.m owner
          && Machine.node_of ctx.m q <> Machine.node_of ctx.m src)
        (Bitset.elements e.Directory.sharers)
    in
    List.iter (send_invalidate ctx ~block ~requester:src) invals;
    let acks = List.length invals in
    e.Directory.owner <- src;
    e.Directory.sharers <- Bitset.singleton src;
    e.Directory.busy <- true;
    deliver ctx owner
      (Msg.Fwd { kind = Msg.Readex; block; requester = src; inval_acks = acks })
  end

and handle_upgrade_request ctx ~src ~block e =
  let invals =
    List.filter
      (fun q -> Machine.node_of ctx.m q <> Machine.node_of ctx.m src)
      (Bitset.elements e.Directory.sharers)
  in
  List.iter (send_invalidate ctx ~block ~requester:src) invals;
  e.Directory.owner <- src;
  e.Directory.sharers <- Bitset.singleton src;
  deliver ctx src (Msg.Upgrade_reply { block; inval_acks = List.length invals })

and drain_dir_queue ctx block =
  let e = dir_entry ctx block in
  let rec loop () =
    if not e.Directory.busy then
      match Directory.pop_queued e with
      | Some (src, Msg.Req { kind; block = b }) ->
        assert (b = block);
        (match kind with
        | Msg.Read -> handle_read_request ctx ~src ~block e
        | Msg.Readex -> handle_readex_request ctx ~src ~block e
        | Msg.Upgrade ->
          if Bitset.mem src e.Directory.sharers then
            handle_upgrade_request ctx ~src ~block e
          else handle_readex_request ctx ~src ~block e);
        loop ()
      | Some (_, m) ->
        violation ctx ~block
          ("directory queue held a non-request message: " ^ Msg.describe m)
      | None -> ()
  in
  loop ()

and handle_sharing_wb ctx ~block ~new_sharer =
  let e = dir_entry ctx block in
  e.Directory.sharers <-
    Bitset.add new_sharer (Bitset.add e.Directory.owner e.Directory.sharers);
  e.Directory.busy <- false;
  drain_dir_queue ctx block

and handle_own_ack ctx ~block =
  let e = dir_entry ctx block in
  e.Directory.busy <- false;
  drain_dir_queue ctx block

(* ---------------- Owner / sharer side ---------------- *)

and snapshot_block ctx block =
  let ns = node_state ctx in
  let size = Machine.block_size ctx.m block in
  Image.snapshot ns.Machine.image ~addr:block ~len:size

and send_data ctx ~dst ~kind ~block ~inval_acks data =
  let from_home = pid ctx = Machine.home_of_block ctx.m block in
  deliver ctx dst (Msg.Data_reply { kind; block; data; from_home; inval_acks })

and reply_data ctx ~dst ~kind ~block ~inval_acks =
  send_data ctx ~dst ~kind ~block ~inval_acks (snapshot_block ctx block)

and handle_fwd ctx ~src ~kind ~block ~requester ~inval_acks msg =
  let ns = node_state ctx in
  let line = Layout.line_of ctx.m.Machine.layout block in
  match Downgrade.find ns.Machine.downgrades ~block with
  | Some dg ->
    Downgrade.push_queued dg ~src msg;
    obs_downgrade_queued ctx ~block ~src msg
  | None -> (
    match Miss_table.find ns.Machine.misses ~block with
    | Some e
      when (not e.Miss_table.data_ready)
           && State_table.get ns.Machine.table line = State_table.Invalid ->
      (* Our data is genuinely in flight: defer until it lands. When the
         pending request is an upgrade the node still holds a valid
         (shared) copy and the forwarded request — serialized before our
         upgrade at the home — must be served immediately instead;
         deferring it would deadlock against the home's busy queue. *)
      e.Miss_table.queued_fwds <- (src, msg) :: e.Miss_table.queued_fwds
    | Some _ | None -> (
      let base = State_table.get ns.Machine.table line in
      match kind with
      | Msg.Read -> (
        match base with
        | State_table.Exclusive ->
          start_node_downgrade ctx ~block ~target:State_table.Shared
            ~deferred:(Downgrade.Reply_read { requester })
        | State_table.Shared ->
          execute_deferred ctx ~block ~target:State_table.Shared
            ~deferred:(Downgrade.Reply_read { requester })
        | State_table.Invalid ->
          violation ctx ~block "read forwarded to an owner with no copy")
      | Msg.Readex ->
        if base = State_table.Invalid then
          violation ctx ~block "readex forwarded to an owner with no copy";
        start_node_downgrade ctx ~block ~target:State_table.Invalid
          ~deferred:(Downgrade.Reply_readex { requester; inval_acks })
      | Msg.Upgrade ->
        violation ctx ~block
          "upgrade forwarded to an owner (upgrades are home-served)"))

and handle_invalidate ctx ~src ~block ~requester msg =
  let ns = node_state ctx in
  match Downgrade.find ns.Machine.downgrades ~block with
  | Some dg ->
    Downgrade.push_queued dg ~src msg;
    obs_downgrade_queued ctx ~block ~src msg
  | None -> (
    match Miss_table.find ns.Machine.misses ~block with
    | Some e when not e.Miss_table.data_ready ->
      (* The invalidation raced with our refetch and targets the copy we
         held when the home serialized the invalidating write — always
         before our own request. For a pure read fetch the reply data is
         therefore already stale: apply it, wake waiters, invalidate
         immediately. For an ownership fetch (read-exclusive, upgrade,
         or a read with a chained ownership request) the reply grants
         fresh exclusive ownership serialized after the invalidation —
         but the node's CURRENT (shared) copy must die right now, or
         sibling processors could keep reading it after the invalidating
         writer's release completes. *)
      if e.Miss_table.kind = Msg.Read then
        (* Applies to chained-upgrade reads too: the invalidation-aware
           apply path stamps before the chained ownership request picks
           its kind, so the chain fetches fresh data. *)
        e.Miss_table.inval_after_reply <- true
      else begin
        let line = Layout.line_of ctx.m.Machine.layout block in
        if State_table.get ns.Machine.table line <> State_table.Invalid then begin
          ns.Machine.downgrade_epoch <- ns.Machine.downgrade_epoch + 1;
          stamp_invalid ctx block;
          (* Privates drop before the node entry so that no observer
             (and no sibling in real memory order) ever sees a private
             entry exceeding the node's; there is no scheduling point in
             between, so the order is otherwise invisible. *)
          List.iter
            (fun q -> lower_private ctx q block State_table.Invalid)
            (Config.procs_of_node ctx.m.Machine.cfg (node ctx));
          set_block_state ctx ns.Machine.table block State_table.Invalid
        end
      end;
      deliver ctx requester (Msg.Inval_ack { block })
    | Some _ | None -> (
      let line = Layout.line_of ctx.m.Machine.layout block in
      match State_table.get ns.Machine.table line with
      | State_table.Shared | State_table.Exclusive ->
        start_node_downgrade ctx ~block ~target:State_table.Invalid
          ~deferred:(Downgrade.Inval_done { requester })
      | State_table.Invalid ->
        (* Stale invalidation; nothing to do but acknowledge. *)
        deliver ctx requester (Msg.Inval_ack { block })))

(* ---------------- Downgrades (§3.4.3) ---------------- *)

and start_node_downgrade ctx ~block ~target ~deferred =
  let ns = node_state ctx in
  charge ctx ctx.t.Timing.downgrade_initiate;
  let siblings =
    List.filter
      (fun q -> q <> pid ctx)
      (Config.procs_of_node ctx.m.Machine.cfg (node ctx))
  in
  let targets =
    List.filter
      (fun q -> state_rank (private_state ctx q block) > state_rank target)
      siblings
  in
  lower_private ctx (pid ctx) block target;
  let n = List.length targets in
  Histogram.add ctx.ps.Machine.stats.Stats.downgrade_events n;
  ctx.ps.Machine.stats.Stats.downgrades_sent <-
    ctx.ps.Machine.stats.Stats.downgrades_sent + n;
  if n = 0 then execute_deferred ctx ~block ~target ~deferred
  else begin
    ignore (Downgrade.add ns.Machine.downgrades ~block ~target ~deferred ~remaining:n);
    set_block_pending_downgrade ctx ns.Machine.table block true;
    List.iter
      (fun q ->
        charge ctx ctx.t.Timing.downgrade_send;
        deliver ctx q (Msg.Downgrade { block; target }))
      targets
  end

and handle_downgrade_msg ctx ~block ~target =
  charge ctx ctx.t.Timing.handler_downgrade;
  if not (fault_is ctx Config.Skip_private_downgrade) then
    lower_private ctx (pid ctx) block target;
  obs_downgrade_ack ctx ~block;
  let ns = node_state ctx in
  match Downgrade.find ns.Machine.downgrades ~block with
  | None ->
    violation ctx ~block "downgrade message with no downgrade in progress"
  | Some dg ->
    dg.Downgrade.remaining <- dg.Downgrade.remaining - 1;
    if dg.Downgrade.remaining = 0 then begin
      Downgrade.remove ns.Machine.downgrades dg;
      set_block_pending_downgrade ctx ns.Machine.table block false;
      execute_deferred ctx ~block ~target:dg.Downgrade.target
        ~deferred:dg.Downgrade.deferred;
      List.iter
        (fun (src, msg) ->
          obs_downgrade_replay ctx ~block ~src msg;
          handle_message ctx ~src msg)
        (Downgrade.take_queued dg)
    end

and execute_deferred ctx ~block ~target ~deferred =
  let ns = node_state ctx in
  ns.Machine.downgrade_epoch <- ns.Machine.downgrade_epoch + 1;
  let home = Machine.home_of_block ctx.m block in
  obs_downgrade_done ctx ~block;
  (match Downgrade.find ns.Machine.downgrades ~block with
  | Some _ ->
    violation ctx ~block "deferred action ran with a downgrade still pending"
  | None -> ());
  (* The snapshot is taken and this node's state fully downgraded
     BEFORE any message is sent: a reply to a requester on this very
     node is handled inline, and it must observe the downgraded state
     (otherwise installing its fresh copy would be undone below). *)
  match deferred with
  | Downgrade.Reply_read { requester } ->
    assert (target = State_table.Shared);
    let data = snapshot_block ctx block in
    set_block_state ctx ns.Machine.table block State_table.Shared;
    send_data ctx ~dst:requester ~kind:Msg.Read ~block ~inval_acks:0 data;
    if pid ctx = home then handle_sharing_wb ctx ~block ~new_sharer:requester
    else deliver ctx home (Msg.Sharing_wb { block; new_sharer = requester })
  | Downgrade.Reply_readex { requester; inval_acks } ->
    assert (target = State_table.Invalid);
    ignore home;
    let data = snapshot_block ctx block in
    stamp_invalid ctx block;
    set_block_state ctx ns.Machine.table block State_table.Invalid;
    (* The home's busy bit is cleared by the REQUESTER's Own_ack when it
       applies this data: forwarding a later request to the new owner
       before its data has landed would let it serve stale bytes. *)
    send_data ctx ~dst:requester ~kind:Msg.Readex ~block ~inval_acks data
  | Downgrade.Inval_done { requester } ->
    assert (target = State_table.Invalid);
    stamp_invalid ctx block;
    set_block_state ctx ns.Machine.table block State_table.Invalid;
    deliver ctx requester (Msg.Inval_ack { block })
  | Downgrade.Recovered ->
    (* The requester of the original deferred action died; recovery
       rewrote the entry. Complete the downgrade locally so the node
       state matches the already-lowered sibling private entries, and
       send nothing. *)
    if target = State_table.Invalid then stamp_invalid ctx block;
    set_block_state ctx ns.Machine.table block target

(* ---------------- Requester side: replies ---------------- *)

and finish_entry ctx e =
  let ns = node_state ctx in
  obs_miss_end ctx ~block:e.Miss_table.block ~kind:e.Miss_table.kind
    ~start:e.Miss_table.start_cycles;
  Miss_table.remove ns.Machine.misses e;
  Bitset.iter
    (fun p ->
      let q = ctx.m.Machine.procs.(p) in
      q.Machine.outstanding_stores <- q.Machine.outstanding_stores - 1)
    e.Miss_table.store_procs

and complete_if_ready ctx e =
  if Miss_table.complete e then begin
    let fwds = List.rev e.Miss_table.queued_fwds in
    e.Miss_table.queued_fwds <- [];
    finish_entry ctx e;
    List.iter (fun (src, msg) -> handle_message ctx ~src msg) fwds
  end
  else if e.Miss_table.data_ready then begin
    (* Still awaiting acks, but the data is valid: serve queued
       forwarded requests now. *)
    let fwds = List.rev e.Miss_table.queued_fwds in
    e.Miss_table.queued_fwds <- [];
    List.iter (fun (src, msg) -> handle_message ctx ~src msg) fwds
  end

and handle_data_reply ctx ~kind ~block ~data ~from_home ~inval_acks =
  charge ctx ctx.t.Timing.handler_data_apply;
  let ns = node_state ctx in
  match Miss_table.find ns.Machine.misses ~block with
  | None -> violation ctx ~block "data reply with no outstanding miss"
  | Some e ->
    assert (not e.Miss_table.data_ready);
    (* A refetch supersedes any flag write deferred by an active batch. *)
    Hashtbl.remove ns.Machine.deferred_flags block;
    let batch_skip =
      Option.value ~default:[] (Hashtbl.find_opt ns.Machine.batch_wranges block)
    in
    Image.write_bytes ns.Machine.image ~addr:block
      ~skip:(e.Miss_table.store_ranges @ batch_skip)
      data;
    let new_state =
      match kind with
      | Msg.Read -> State_table.Shared
      | Msg.Readex | Msg.Upgrade -> State_table.Exclusive
    in
    set_block_state ctx ns.Machine.table block new_state;
    set_block_pending ctx ns.Machine.table block false;
    raise_private ctx (pid ctx) block new_state;
    e.Miss_table.data_ready <- true;
    e.Miss_table.acks_expected <- inval_acks;
    if kind = Msg.Readex then begin
      (* Completion acknowledgement of the ownership transfer. *)
      let home = Machine.home_of_block ctx.m block in
      if pid ctx = home then handle_own_ack ctx ~block
      else deliver ctx home (Msg.Own_ack { block })
    end;
    Stats.record_miss ctx.ps.Machine.stats
      { Stats.kind = e.Miss_table.kind; three_hop = not from_home };
    if e.Miss_table.kind = Msg.Read then
      Stats.record_read_latency ctx.ps.Machine.stats
        (Engine.now ctx.eng - e.Miss_table.start_cycles);
    if e.Miss_table.inval_after_reply then begin
      (* Stalled accesses observe [data_ready] and re-run their checks;
         the block is already gone again. *)
      e.Miss_table.inval_after_reply <- false;
      stamp_invalid ctx block;
      lower_private ctx (pid ctx) block State_table.Invalid;
      set_block_state ctx ns.Machine.table block State_table.Invalid
    end;
    if e.Miss_table.upgrade_after_reply && e.Miss_table.kind = Msg.Read then begin
      (* A store merged into this read entry while it was pending: chain
         an ownership request, keeping the entry (and its merged store
         ranges) alive so that release operations wait for it. *)
      e.Miss_table.upgrade_after_reply <- false;
      e.Miss_table.data_ready <- false;
      e.Miss_table.acks_expected <- -1;
      let line = Layout.line_of ctx.m.Machine.layout block in
      let kind2 =
        if State_table.get ns.Machine.table line = State_table.Shared then
          Msg.Upgrade
        else Msg.Readex
      in
      e.Miss_table.kind <- kind2;
      set_block_pending ctx ns.Machine.table block true;
      charge ctx ctx.t.Timing.miss_setup;
      deliver ctx (Machine.home_of_block ctx.m block)
        (Msg.Req { kind = kind2; block })
    end
    else complete_if_ready ctx e

and handle_upgrade_reply ctx ~block ~inval_acks =
  charge ctx ctx.t.Timing.handler_data_apply;
  let ns = node_state ctx in
  match Miss_table.find ns.Machine.misses ~block with
  | None -> violation ctx ~block "upgrade reply with no outstanding miss"
  | Some e ->
    assert (not e.Miss_table.data_ready);
    set_block_state ctx ns.Machine.table block State_table.Exclusive;
    set_block_pending ctx ns.Machine.table block false;
    raise_private ctx (pid ctx) block State_table.Exclusive;
    e.Miss_table.data_ready <- true;
    e.Miss_table.acks_expected <- inval_acks;
    Stats.record_miss ctx.ps.Machine.stats
      { Stats.kind = Msg.Upgrade; three_hop = false };
    complete_if_ready ctx e

and handle_inval_ack ctx ~block =
  let ns = node_state ctx in
  match Miss_table.find ns.Machine.misses ~block with
  | None -> violation ctx ~block "invalidation ack with no outstanding miss"
  | Some e ->
    e.Miss_table.acks_received <- e.Miss_table.acks_received + 1;
    complete_if_ready ctx e

(* ---------------- Synchronization ---------------- *)

and handle_lock_req ctx ~src ~lock =
  charge ctx ctx.t.Timing.sync_manager;
  let ls = Hashtbl.find ctx.m.Machine.locks lock in
  if not ls.Machine.held then begin
    ls.Machine.held <- true;
    ls.Machine.holder <- src;
    deliver ctx src (Msg.Lock_grant { lock })
  end
  else ls.Machine.lock_queue <- src :: ls.Machine.lock_queue

and handle_lock_release ctx ~lock =
  charge ctx ctx.t.Timing.sync_manager;
  let ls = Hashtbl.find ctx.m.Machine.locks lock in
  match List.rev ls.Machine.lock_queue with
  | [] ->
    ls.Machine.held <- false;
    ls.Machine.holder <- -1
  | oldest :: rest ->
    ls.Machine.lock_queue <- List.rev rest;
    ls.Machine.holder <- oldest;
    deliver ctx oldest (Msg.Lock_grant { lock })

and handle_barrier_arrive ctx ~src ~barrier =
  charge ctx ctx.t.Timing.sync_manager;
  let cfg = ctx.m.Machine.cfg in
  let hierarchical = cfg.Config.smp_sync && cfg.Config.clustering > 1 in
  (* After a crash the barrier waits only for live participants; the
     arrival pids are recorded so recovery can subtract arrivals from
     processors that died mid-episode. *)
  let expected =
    if hierarchical then Machine.live_nodes ctx.m else Machine.live_procs ctx.m
  in
  let bs = Hashtbl.find ctx.m.Machine.barriers barrier in
  bs.Machine.arrived <- bs.Machine.arrived + 1;
  bs.Machine.arrived_procs <- src :: bs.Machine.arrived_procs;
  if bs.Machine.arrived >= expected then begin
    bs.Machine.arrived <- 0;
    bs.Machine.arrived_procs <- [];
    bs.Machine.generation <- bs.Machine.generation + 1;
    let generation = bs.Machine.generation in
    if hierarchical then
      for n = 0 to Config.nnodes cfg - 1 do
        if not ctx.m.Machine.dead_nodes.(n) then
          deliver ctx (List.hd (Config.procs_of_node cfg n))
            (Msg.Barrier_release { barrier; generation })
      done
    else
      for p = 0 to cfg.Config.nprocs - 1 do
        if not ctx.m.Machine.dead.(p) then
          deliver ctx p (Msg.Barrier_release { barrier; generation })
      done
  end

(* ------------------------------------------------------------------ *)
(* Polling.                                                            *)

let poll_handle ctx =
  let cat =
    if ctx.ps.Machine.category = Stats.Task then Stats.Message
    else ctx.ps.Machine.category
  in
  let rec loop () =
    (* A scheduling point must precede every queue observation: past the
       run-ahead horizon the queue may still be missing virtually-earlier
       sends from processors frozen behind this one, and each handled
       message advances the clock, so re-check before every probe. Below
       the horizon the yield is elided and this costs one comparison. *)
    Engine.yield ctx.eng;
    let now = Engine.now ctx.eng in
    match Network.poll ctx.m.Machine.net ~dst:(pid ctx) ~now with
    | Some (src, msg) ->
      obs_recv ctx ~src ~now msg;
      handle_message ctx ~src msg;
      loop ()
    | None -> ()
  in
  with_category ctx cat loop

let poll ctx =
  (* The scheduling point must come before the emptiness observation for
     the same reason as above; after it, an arrival-time compare decides
     the common nothing-due case without entering the handler loop (no
     category bookkeeping, no closure). *)
  Engine.yield ctx.eng;
  if
    Network.earliest_arrival ctx.m.Machine.net ~dst:(pid ctx)
    <= Engine.now ctx.eng
  then poll_handle ctx

let op_tick ctx =
  ctx.ps.Machine.ops_since_poll <- ctx.ps.Machine.ops_since_poll + 1;
  if ctx.ps.Machine.ops_since_poll >= ctx.t.Timing.poll_interval_ops then begin
    ctx.ps.Machine.ops_since_poll <- 0;
    if ctx.m.Machine.cfg.Config.checks_enabled then
      charge ctx ctx.t.Timing.poll;
    poll ctx
  end

(* Spin-wait, re-checking [pred] and the message queue every
   [stall_gap] cycles. Iterations whose lattice point lies strictly
   below the visibility horizon are provably no-ops (frozen peers, an
   empty probe, a false predicate), so they are collapsed into a single
   advance ([Engine.idle_skip]) — the cycle charge and every observable
   re-check point are identical to stepping. *)
let stall ctx cat pred =
  let gap = ctx.t.Timing.stall_gap in
  with_category ctx cat (fun () ->
      while not (pred ()) do
        poll ctx;
        if not (pred ()) then
          charge_yield ctx (gap + Engine.idle_skip ctx.eng ~quantum:gap)
      done)

(* ------------------------------------------------------------------ *)
(* Requests.                                                           *)

(* Route a directory-bound message. With the share_directory extension
   (5), a sender colocated with the home's node manipulates the
   directory directly — the home's data structures are shared within
   the node — eliminating the intra-node message and its reply hop. *)
let deliver_dir ctx home msg =
  if
    home <> pid ctx
    && (machine ctx).Machine.cfg.Config.share_directory
    && Machine.node_of ctx.m home = node ctx
  then begin
    if ctx.smp then charge ctx ctx.t.Timing.smp_lock;
    handle_message ctx ~src:(pid ctx) msg
  end
  else deliver ctx home msg

let issue_request ctx ~block ~kind =
  let ns = node_state ctx in
  assert (Miss_table.find ns.Machine.misses ~block = None);
  let e =
    Miss_table.add ns.Machine.misses ~block ~requester:(pid ctx) ~kind
      ~now:(Engine.now ctx.eng)
  in
  obs_miss_start ctx ~block ~kind;
  set_block_pending ctx ns.Machine.table block true;
  charge ctx ctx.t.Timing.miss_setup;
  deliver_dir ctx (Machine.home_of_block ctx.m block) (Msg.Req { kind; block });
  e

(* ------------------------------------------------------------------ *)
(* Miss paths called from the Dsm layer.                               *)

let load_miss ctx ~addr =
  let block = Machine.block_base ctx.m addr in
  let ns = node_state ctx in
  let line = Layout.line_of ctx.m.Machine.layout addr in
  charge ctx ctx.t.Timing.protocol_entry;
  if ctx.smp then charge ctx ctx.t.Timing.smp_lock;
  let base = State_table.get ns.Machine.table line in
  if base <> State_table.Invalid then begin
    (* The node has the data, so the flag value is application data: a
       false miss — or, under SMP, possibly just a private-state miss. *)
    if State_table.pending_downgrade ns.Machine.table line then
      (* Pre-downgrade state suffices for a load; consume the value now
         without touching the private state (§3.4.3). *)
      with_category ctx Stats.Other (fun () ->
          charge ctx ctx.t.Timing.private_upgrade)
    else if ctx.smp && state_rank (private_state ctx (pid ctx) block) = 0 then begin
      raise_private ctx (pid ctx) block State_table.Shared;
      ctx.ps.Machine.stats.Stats.private_upgrades <-
        ctx.ps.Machine.stats.Stats.private_upgrades + 1;
      with_category ctx Stats.Other (fun () ->
          charge ctx ctx.t.Timing.private_upgrade)
    end;
    ctx.ps.Machine.stats.Stats.false_misses <-
      ctx.ps.Machine.stats.Stats.false_misses + 1;
    `Valid
  end
  else
    match Miss_table.find ns.Machine.misses ~block with
    | Some e when not e.Miss_table.data_ready ->
      stall ctx Stats.Read (fun () -> e.Miss_table.data_ready);
      `Retry
    | Some _ ->
      (* The previous transaction is still collecting invalidation acks
         and the block has been invalidated again underneath it: a new
         request must wait for the old entry to drain. *)
      stall ctx Stats.Read (fun () ->
          Option.is_none (Miss_table.find ns.Machine.misses ~block));
      `Retry
    | None ->
      let e = issue_request ctx ~block ~kind:Msg.Read in
      stall ctx Stats.Read (fun () -> e.Miss_table.data_ready);
      `Retry

let under_store_limit ctx =
  ctx.ps.Machine.outstanding_stores < ctx.t.Timing.max_outstanding_stores

(* The outstanding-store limit is enforced by stalling, and any stall can
   complete or remove a miss entry, so the whole decision is retried from
   scratch after every stall: bookkeeping mutations happen only on paths
   with no intervening scheduling point. *)
let rec store_miss ctx ~addr ~len write =
  let block = Machine.block_base ctx.m addr in
  let ns = node_state ctx in
  let line = Layout.line_of ctx.m.Machine.layout addr in
  charge ctx ctx.t.Timing.protocol_entry;
  if ctx.smp then charge ctx ctx.t.Timing.smp_lock;
  let base = State_table.get ns.Machine.table line in
  let pdg = State_table.pending_downgrade ns.Machine.table line in
  if pdg && base = State_table.Exclusive then
    (* Pre-downgrade state suffices: perform the store under the lock;
       the downgrade's data snapshot will include it (§3.4.3). *)
    with_category ctx Stats.Other (fun () ->
        charge ctx ctx.t.Timing.private_upgrade;
        write ns.Machine.image)
  else if (not pdg) && base = State_table.Exclusive then begin
    if ctx.smp && state_rank (private_state ctx (pid ctx) block) < 2 then begin
      raise_private ctx (pid ctx) block State_table.Exclusive;
      ctx.ps.Machine.stats.Stats.private_upgrades <-
        ctx.ps.Machine.stats.Stats.private_upgrades + 1;
      with_category ctx Stats.Other (fun () ->
          charge ctx ctx.t.Timing.private_upgrade)
    end;
    write ns.Machine.image
  end
  else
    match Miss_table.find ns.Machine.misses ~block with
    | Some { Miss_table.data_ready = true; _ } ->
      (* The entry's data phase is over (it is only draining
         acknowledgements) and the node no longer holds the block
         exclusively — it was invalidated or downgraded to shared while
         the entry lingered. No future reply would merge around a range
         recorded now, so the store must wait for the entry to retire
         and run its own ownership transaction. *)
      stall ctx Stats.Write (fun () ->
          Option.is_none (Miss_table.find ns.Machine.misses ~block));
      store_miss ctx ~addr ~len write
    | Some e ->
      if
        Bitset.mem (pid ctx) e.Miss_table.store_procs || under_store_limit ctx
      then begin
        if not (Bitset.mem (pid ctx) e.Miss_table.store_procs) then
          ctx.ps.Machine.outstanding_stores <-
            ctx.ps.Machine.outstanding_stores + 1;
        Miss_table.add_store_range e ~off:(addr - block) ~len ~proc:(pid ctx);
        if e.Miss_table.kind = Msg.Read then
          e.Miss_table.upgrade_after_reply <- true;
        write ns.Machine.image
      end
      else begin
        stall ctx Stats.Write (fun () -> under_store_limit ctx);
        store_miss ctx ~addr ~len write
      end
    | None ->
      if under_store_limit ctx then begin
        let kind =
          if base = State_table.Shared then Msg.Upgrade else Msg.Readex
        in
        let e =
          Miss_table.add ns.Machine.misses ~block ~requester:(pid ctx) ~kind
            ~now:(Engine.now ctx.eng)
        in
        obs_miss_start ctx ~block ~kind;
        set_block_pending ctx ns.Machine.table block true;
        ctx.ps.Machine.outstanding_stores <-
          ctx.ps.Machine.outstanding_stores + 1;
        Miss_table.add_store_range e ~off:(addr - block) ~len ~proc:(pid ctx);
        (* Apply the store before the request goes out: if the request is
           handled inline (home is this processor) and replied instantly,
           the reply merge must already see our bytes in memory. *)
        write ns.Machine.image;
        charge ctx ctx.t.Timing.miss_setup;
        deliver ctx (Machine.home_of_block ctx.m block)
          (Msg.Req { kind; block })
      end
      else begin
        stall ctx Stats.Write (fun () -> under_store_limit ctx);
        store_miss ctx ~addr ~len write
      end

(* ---------------- Batching (§3.4.4) ---------------- *)

type batch_token = {
  b_lines : int list;
  b_wpieces : (int * int * int) list;
      (** batched write ranges split at block boundaries:
          (block, block-relative offset, length) *)
}

(* Fetch one line to a sufficient state — a single fetch, no
   re-verification. If the block is downgraded again while the rest of
   the batch is being assembled, the batch markers keep its bytes in
   memory (flag writes deferred) for the batched loads, and batch_end
   replays the batched stores coherently. *)
let rec ensure_line ctx line need =
  let layout = ctx.m.Machine.layout in
  let addr = Layout.addr_of_line layout line in
  let block = Machine.block_base ctx.m addr in
  let ns = node_state ctx in
  let cat = if need = State_table.Exclusive then Stats.Write else Stats.Read in
  let base () = State_table.get ns.Machine.table line in
  (* "Sufficient" requires a settled state: raising the private entry
     while a downgrade is pending would resurrect it after the downgrade
     machinery has already lowered it, leaving a stale private-exclusive
     over an invalidated node copy. *)
  let sufficient () =
    state_rank (base ()) >= state_rank need
    && (not (State_table.pending_downgrade ns.Machine.table line))
    && not (State_table.pending ns.Machine.table line)
  in
  if State_table.pending_downgrade ns.Machine.table line then begin
    stall ctx cat (fun () ->
        not (State_table.pending_downgrade ns.Machine.table line));
    ensure_line ctx line need
  end
  else
    (* Once awaited data has landed, the batch can proceed even if the
       block was immediately given away again: the batch markers keep
       the bytes in memory for the batched loads and batch_end replays
       the batched stores coherently. Insisting that the state remain
       sufficient would livelock two nodes batching the same block. *)
    let accept _e =
      (* Whether the data arrived via a reply (landed, stamped flag
         deferred by our markers) or was already present (an upgrade of
         a shared copy), the bytes are in memory now and will stay there
         until batch_end. *)
      if sufficient () && ctx.smp then
        raise_private ctx (pid ctx) block need
    in
    match Miss_table.find ns.Machine.misses ~block with
    | Some e
      when (not e.Miss_table.data_ready) && e.Miss_table.inval_after_reply ->
      (* Joining after an invalidation was acknowledged: the in-flight
         data is already stale for us; wait it out and refetch. *)
      stall ctx cat (fun () ->
          Option.is_none (Miss_table.find ns.Machine.misses ~block));
      ensure_line ctx line need
    | Some e when not e.Miss_table.data_ready ->
      stall ctx cat (fun () -> e.Miss_table.data_ready);
      accept e
    | Some _ when not (sufficient ()) ->
      (* Ack-draining entry over a re-invalidated block: wait it out. *)
      stall ctx cat (fun () ->
          Option.is_none (Miss_table.find ns.Machine.misses ~block));
      ensure_line ctx line need
    | Some _ -> if ctx.smp then raise_private ctx (pid ctx) block need
    | None ->
      if sufficient () then begin
        if ctx.smp then raise_private ctx (pid ctx) block need
      end
      else begin
        let kind =
          if need = State_table.Exclusive then
            if base () = State_table.Shared then Msg.Upgrade else Msg.Readex
          else Msg.Read
        in
        let e = issue_request ctx ~block ~kind in
        stall ctx cat (fun () -> e.Miss_table.data_ready);
        accept e
      end

let batch_begin ctx ranges =
  let layout = ctx.m.Machine.layout in
  let t = ctx.t in
  (* Collect covered lines with the strongest need over each. *)
  let needs : (int, State_table.base) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (addr, len, need) ->
      assert (len > 0);
      let first = Layout.line_of layout addr in
      let last = Layout.line_of layout (addr + len - 1) in
      for l = first to last do
        let cur =
          Option.value ~default:State_table.Invalid (Hashtbl.find_opt needs l)
        in
        if state_rank need > state_rank cur then Hashtbl.replace needs l need
      done)
    ranges;
  let lines =
    List.sort compare (Hashtbl.fold (fun l _ acc -> l :: acc) needs [])
  in
  let per_line =
    if ctx.smp then t.Timing.batch_check_per_line_smp
    else t.Timing.batch_check_per_line_base
  in
  if ctx.m.Machine.cfg.Config.checks_enabled then
    charge ctx
      ((per_line * List.length lines)
      + (t.Timing.batch_check_per_range * List.length ranges));
  ctx.ps.Machine.stats.Stats.checks <-
    ctx.ps.Machine.stats.Stats.checks + List.length lines;
  let ns = node_state ctx in
  (* Mark every covered line before fetching anything, so that blocks
     invalidated while the handler waits keep their data in memory. *)
  List.iter
    (fun l ->
      let cur =
        Option.value ~default:0 (Hashtbl.find_opt ns.Machine.batch_lines l)
      in
      Hashtbl.replace ns.Machine.batch_lines l (cur + 1))
    lines;
  let table = check_table ctx in
  let missing =
    List.filter
      (fun l ->
        state_rank (State_table.get table l)
        < state_rank (Hashtbl.find needs l))
      lines
  in
  if missing <> [] then begin
    charge ctx t.Timing.protocol_entry;
    if ctx.smp then charge ctx t.Timing.smp_lock;
    List.iter (fun l -> ensure_line ctx l (Hashtbl.find needs l)) missing
  end;
  let wpieces =
    List.concat_map
      (fun (addr, len, need) ->
        if need <> State_table.Exclusive then []
        else begin
          let pieces = ref [] in
          let pos = ref addr in
          while !pos < addr + len do
            let block = Machine.block_base ctx.m !pos in
            let bsize = Machine.block_size ctx.m block in
            let chunk = min (addr + len) (block + bsize) - !pos in
            pieces := (block, !pos - block, chunk) :: !pieces;
            pos := !pos + chunk
          done;
          !pieces
        end)
      ranges
  in
  (* Register the raw-write pieces on the node so that data replies for
     these blocks (a sibling's refetch) merge around the batch's stores,
     exactly as they merge around non-blocking-store ranges. *)
  List.iter
    (fun (block, off, len) ->
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt ns.Machine.batch_wranges block)
      in
      Hashtbl.replace ns.Machine.batch_wranges block ((off, len) :: cur))
    wpieces;
  { b_lines = lines; b_wpieces = wpieces }

(* Replay a batched store piece through the protocol if its block may
   have lost exclusivity while the batch ran (conservatively detected
   through the node downgrade epoch): the bytes are still in memory
   (flag writes were deferred by the batch markers and data replies
   merged around the registered ranges), so pushing exactly the declared
   piece through the ordinary non-blocking store path re-serializes the
   writes with any concurrent owner's copy. *)
let replay_wpiece ctx (block, off, len) =
  let layout = ctx.m.Machine.layout in
  let ns = node_state ctx in
  let line = Layout.line_of layout (block + off) in
  (* Once the registered ranges protect the bytes from being merged
     over, holding the block exclusively at batch end implies our copy
     (including the raw batched stores) is the authoritative one; replay
     is needed only when exclusivity was not retained. *)
  let needs_replay =
    State_table.get ns.Machine.table line <> State_table.Exclusive
    || State_table.pending ns.Machine.table line
    || State_table.pending_downgrade ns.Machine.table line
  in
  if needs_replay then begin
    let at = block + off in
    let bytes = Image.snapshot ns.Machine.image ~addr:at ~len in
    store_miss ctx ~addr:at ~len (fun img ->
        Image.write_bytes img ~addr:at bytes)
  end

let unregister_wpiece ctx (block, off, len) =
  let ns = node_state ctx in
  match Hashtbl.find_opt ns.Machine.batch_wranges block with
  | None ->
    violation ctx ~block "batch end: write piece with no registered ranges"
  | Some ranges ->
    let rec remove_one = function
      | [] -> []
      | r :: rest -> if r = (off, len) then rest else r :: remove_one rest
    in
    (match remove_one ranges with
    | [] -> Hashtbl.remove ns.Machine.batch_wranges block
    | rest -> Hashtbl.replace ns.Machine.batch_wranges block rest)

let batch_end ctx token =
  let ns = node_state ctx in
  List.iter (replay_wpiece ctx) token.b_wpieces;
  List.iter (unregister_wpiece ctx) token.b_wpieces;
  List.iter
    (fun l ->
      match Hashtbl.find_opt ns.Machine.batch_lines l with
      | Some 1 -> Hashtbl.remove ns.Machine.batch_lines l
      | Some n -> Hashtbl.replace ns.Machine.batch_lines l (n - 1)
      | None ->
        violation ctx
          ~block:(Layout.addr_of_line ctx.m.Machine.layout l)
          "batch end: line count missing from the batch table")
    token.b_lines;
  (* Under SMP, a private entry raised for the batch may now overstate
     the node state (the block was downgraded mid-batch). Private state
     is maintained block-uniformly, so the re-alignment must cover every
     line of every touched block — lowering only the batch's own lines
     would leave stale Exclusive entries on the block's other lines. *)
  if ctx.smp then begin
    let layout = ctx.m.Machine.layout in
    let seen = Hashtbl.create 8 in
    List.iter
      (fun l ->
        let block = Machine.block_base ctx.m (Layout.addr_of_line layout l) in
        if not (Hashtbl.mem seen block) then begin
          Hashtbl.replace seen block ();
          let node_st =
            State_table.get ns.Machine.table (Layout.line_of layout block)
          in
          lower_private ctx (pid ctx) block node_st
        end)
      token.b_lines
  end;
  (* Perform flag writes deferred on blocks that are now batch-free and
     still invalid (a refetch cancels the deferred stamp). *)
  let layout = ctx.m.Machine.layout in
  let ready =
    Hashtbl.fold
      (fun block () acc ->
        if block_in_active_batch ctx block then acc else block :: acc)
      ns.Machine.deferred_flags []
  in
  List.iter
    (fun block ->
      Hashtbl.remove ns.Machine.deferred_flags block;
      if
        State_table.get ns.Machine.table (Layout.line_of layout block)
        = State_table.Invalid
      then write_flag_now ctx block)
    ready

(* ---------------- Release consistency & synchronization ---------------- *)

let release_stores ctx =
  let ns = node_state ctx in
  charge ctx ctx.t.Timing.memory_barrier;
  let ids = Miss_table.outstanding_ids ns.Machine.misses in
  let writes =
    List.filter
      (fun id ->
        match Miss_table.find_id ns.Machine.misses id with
        | Some e ->
          e.Miss_table.kind <> Msg.Read
          || e.Miss_table.upgrade_after_reply
          || e.Miss_table.store_ranges <> []
        | None -> false)
      ids
  in
  stall ctx Stats.Write (fun () ->
      List.for_all
        (fun id -> Miss_table.find_id ns.Machine.misses id = None)
        writes)

let acquire_fence ctx =
  (* §3.4.4 footnote: stall at an acquire while any block on the node has
     a deferred invalid-flag write outstanding. *)
  let ns = node_state ctx in
  charge ctx ctx.t.Timing.memory_barrier;
  stall ctx Stats.Sync (fun () -> Hashtbl.length ns.Machine.deferred_flags = 0)

let lock_acquire ctx lock =
  acquire_fence ctx;
  ctx.ps.Machine.waiting_lock <- Some lock;
  with_category ctx Stats.Sync (fun () ->
      deliver ctx (Machine.lock_home ctx.m lock) (Msg.Lock_req { lock }));
  stall ctx Stats.Sync (fun () -> Hashtbl.mem ctx.ps.Machine.granted lock);
  ctx.ps.Machine.waiting_lock <- None;
  Hashtbl.remove ctx.ps.Machine.granted lock;
  obs_lock_acquired ctx ~lock

let lock_release ctx lock =
  release_stores ctx;
  obs_lock_released ctx ~lock;
  with_category ctx Stats.Sync (fun () ->
      deliver ctx (Machine.lock_home ctx.m lock) (Msg.Lock_release { lock }))

let local_barrier ctx barrier =
  let tbl = ctx.m.Machine.barrier_local.(node ctx) in
  match Hashtbl.find_opt tbl barrier with
  | Some bs -> bs
  | None ->
    let bs = { Machine.arrived = 0; generation = 0; arrived_procs = [] } in
    Hashtbl.replace tbl barrier bs;
    bs

(* SHASTA_SANITIZE >= 1: sweep the whole-machine invariants every time a
   processor leaves a barrier. The sweep charges no cycles and runs only
   between scheduling points, so simulated time is unchanged. Skipped
   under the sharded scheduler: the sweep reads every node's tables, and
   other shards are mid-flight in host time even though their effects
   are provably invisible in virtual time — Dsm.run instead sweeps once
   after the shards join. *)
let barrier_sanitize ctx =
  if ctx.m.Machine.cfg.Config.sanitize > 0 && not ctx.m.Machine.sharded then
    match Inspect.report ctx.m with
    | [] -> ()
    | vs -> raise (Inspect.Violation vs)

let barrier_wait ctx barrier =
  release_stores ctx;
  let hierarchical =
    ctx.m.Machine.cfg.Config.smp_sync && ctx.m.Machine.cfg.Config.clustering > 1
  in
  if hierarchical then begin
    (* 5 extension: arrivals combine in the node's shared memory; only
       the last processor of each node sends a message, and the release
       is broadcast once per node and fanned out through shared memory. *)
    let bs = local_barrier ctx barrier in
    let before = bs.Machine.generation in
    obs_barrier_arrive ctx ~barrier ~epoch:(before + 1);
    charge ctx (ctx.t.Timing.memory_barrier + ctx.t.Timing.sync_manager);
    bs.Machine.arrived <- bs.Machine.arrived + 1;
    ctx.ps.Machine.waiting_barrier <- Some barrier;
    if bs.Machine.arrived = List.length (Config.procs_of_node ctx.m.Machine.cfg (node ctx))
    then begin
      bs.Machine.arrived <- 0;
      with_category ctx Stats.Sync (fun () ->
          deliver ctx (Machine.barrier_home ctx.m barrier)
            (Msg.Barrier_arrive { barrier }))
    end;
    stall ctx Stats.Sync (fun () -> bs.Machine.generation > before);
    ctx.ps.Machine.waiting_barrier <- None;
    obs_barrier_leave ctx ~barrier ~epoch:(before + 1);
    acquire_fence ctx;
    barrier_sanitize ctx
  end
  else begin
    let seen () =
      Option.value ~default:0 (Hashtbl.find_opt ctx.ps.Machine.barrier_seen barrier)
    in
    let before = seen () in
    obs_barrier_arrive ctx ~barrier ~epoch:(before + 1);
    ctx.ps.Machine.waiting_barrier <- Some barrier;
    with_category ctx Stats.Sync (fun () ->
        deliver ctx (Machine.barrier_home ctx.m barrier) (Msg.Barrier_arrive { barrier }));
    stall ctx Stats.Sync (fun () -> seen () > before);
    ctx.ps.Machine.waiting_barrier <- None;
    obs_barrier_leave ctx ~barrier ~epoch:(before + 1);
    acquire_fence ctx;
    barrier_sanitize ctx
  end

(* ---------------- Post-run drain ---------------- *)

let drain ctx =
  ctx.ps.Machine.finished <- true;
  ctx.ps.Machine.app_finish_cycles <- Engine.now ctx.eng;
  let gap = ctx.t.Timing.stall_gap in
  if ctx.m.Machine.sharded then
    (* [Machine.quiescent] reads every shard's queues and tables, which
       is racy across domains; the sharded scheduler's termination
       detector publishes the same condition through [quiesced] (set
       exactly once, when every shard is quiet and every cross-shard
       send is drained). The final clocks of drained processors — never
       part of the simulation's results — depend on when quiescence is
       detected in host time. *)
    while not (Atomic.get ctx.m.Machine.quiesced) do
      poll ctx;
      Engine.advance ctx.eng (gap + Engine.idle_skip ctx.eng ~quantum:gap)
    done
  else
    while not (Machine.quiescent ctx.m) do
      poll ctx;
      Engine.advance ctx.eng (gap + Engine.idle_skip ctx.eng ~quantum:gap)
    done
