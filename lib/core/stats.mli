(** Per-processor execution statistics.

    Cycle accounting follows the breakdown of Figure 4: task time (the
    application, inline checks and protocol-entry code), read/write stall
    time, synchronization stall time, message-handling time when not
    already stalled (handling while stalled is hidden inside the stall
    categories), and "other" protocol overhead (private state-table
    upgrades, pending-downgrade servicing, non-blocking store
    bookkeeping). *)

type category = Task | Read | Write | Sync | Message | Other

val categories : category list
val category_name : category -> string

type miss_class = {
  kind : Msg.req_kind;
  three_hop : bool;  (** reply came from a processor other than the home *)
}

type t = {
  mutable cycles : int array;  (** indexed by category *)
  mutable misses : int array;  (** indexed by miss class: kind x hops *)
  mutable private_upgrades : int;
      (** misses satisfied from the node's shared state table *)
  mutable false_misses : int;  (** flag checks that hit application data *)
  mutable read_latency_cycles : int;
  mutable read_latency_count : int;
  mutable downgrades_sent : int;  (** intra-node downgrade messages *)
  downgrade_events : Shasta_util.Histogram.t;
      (** per downgrade occurrence, the number of messages sent (0-3) *)
  mutable checks : int;  (** inline checks executed *)
  mutable fast_hits : int;
      (** inline checks resolved by the fused fast path (no protocol
          dispatch); a subset of [checks], and host-side bookkeeping
          only — never charged simulated cycles *)
  mutable accesses : int;
      (** checked application loads/stores issued through [Dsm]
          (per-access or in-batch), counted whether or not checks are
          enabled *)
  mutable prog_accesses : int;
      (** the subset of [accesses] issued by compiled [Dsm.Prog] access
          programs rather than closure dispatch *)
}

val create : unit -> t
val add_cycles : t -> category -> int -> unit
val cycles : t -> category -> int
val total_cycles : t -> int
val record_miss : t -> miss_class -> unit
val miss_count : t -> miss_class -> int
val total_misses : t -> int
val record_read_latency : t -> int -> unit

val mean_read_latency_us : t -> float
(** Mean read-miss stall latency in microseconds ([0.] if no misses). *)

val aggregate : t list -> t
(** Pointwise sum across processors (read latency pooled). *)
