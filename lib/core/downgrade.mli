(** Per-node table of downgrades in progress (§3.4.3).

    When servicing an incoming request requires downgrading the node's
    copy of a block, the handling processor sends downgrade messages to
    exactly the sibling processors whose private state tables show they
    have accessed the block, records the deferred protocol action here,
    and returns. The processor that handles the last downgrade message
    executes the deferred action. Requests arriving for a block in
    pending-downgrade state are queued on the entry. *)

type deferred =
  | Reply_read of { requester : int }
      (** exclusive→shared: snapshot the block and send a read reply *)
  | Reply_readex of { requester : int; inval_acks : int }
      (** →invalid: snapshot, send an exclusive data reply, stamp the
          invalid flag *)
  | Inval_done of { requester : int }
      (** →invalid: stamp the flag and acknowledge the invalidation *)
  | Recovered
      (** crash recovery rewrote a deferred action whose requester died:
          complete the downgrade locally, send nothing *)

type entry = {
  block : int;
  target : Shasta_mem.State_table.base;
  mutable deferred : deferred;  (** mutable for crash recovery rewrites *)
  mutable remaining : int;
  mutable queued : (int * Msg.t) list;  (** newest first *)
}

type t

val create : unit -> t
val find : t -> block:int -> entry option

val add :
  t ->
  block:int ->
  target:Shasta_mem.State_table.base ->
  deferred:deferred ->
  remaining:int ->
  entry
(** Raises [Invalid_argument] if the block already has a downgrade in
    progress — at most one downgrade per block per node may be in flight
    (requests that arrive meanwhile queue on the existing entry). *)

val remove : t -> entry -> unit
val count : t -> int

val iter : (entry -> unit) -> t -> unit

val clear : t -> unit
(** Drop every entry — a crashed node's downgrade table (crash recovery
    only). *)

val push_queued : entry -> src:int -> Msg.t -> unit
val take_queued : entry -> (int * Msg.t) list
(** Queued requests in arrival order; the entry's queue is cleared. *)
