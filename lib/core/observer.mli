(** Protocol event observer: the hook surface of the analysis layer.

    An observer is a record of callbacks installed on a {!Machine.t}
    (see [Machine.observer]) before the parallel phase starts. The
    protocol and the Dsm access layer invoke each callback at the
    corresponding event; when no observer is installed every hook site
    compiles to a single [match] on [None], so an uninstrumented run
    stays within measurement noise of the unhooked code and its
    simulated cycle counts are bit-identical (hooks never charge
    cycles).

    Events fire {e after} the mutation they describe has been applied
    (a state hook observes the new table contents), except
    [on_send]/[on_recv] which bracket a message's network transit, and
    [on_barrier_arrive], which fires when the processor commits to the
    barrier episode [epoch] (before it stalls). *)

type base = Shasta_mem.State_table.base

type t = {
  on_state : node:int -> block:int -> from_:base -> to_:base -> unit;
      (** a node's shared state table changed for a whole block *)
  on_private : proc:int -> block:int -> from_:base -> to_:base -> unit;
      (** a processor's private state table changed for a whole block
          (SMP-Shasta; fires only on an actual change) *)
  on_pending : node:int -> block:int -> set:bool -> unit;
      (** the pending (miss outstanding) marker toggled *)
  on_pending_downgrade : node:int -> block:int -> set:bool -> unit;
      (** the pending-downgrade marker toggled *)
  on_send : src:int -> dst:int -> now:int -> Msg.t -> unit;
      (** a message entered the network ([src <> dst]; inline
          same-processor delivery generates no send/recv pair) *)
  on_recv : src:int -> dst:int -> now:int -> Msg.t -> unit;
      (** a message was polled off the network by [dst], about to be
          handled; replays of messages queued on a miss entry, a busy
          directory entry or a downgrade entry do not re-fire this *)
  on_downgrade_ack : proc:int -> block:int -> unit;
      (** a sibling handled a downgrade message (its private entry is
          already lowered) *)
  on_downgrade_done : proc:int -> block:int -> unit;
      (** the deferred protocol action of a node downgrade is about to
          run on [proc] (the processor that handled the last downgrade
          message, or the initiator when no sibling needed one) *)
  on_downgrade_queued : proc:int -> block:int -> src:int -> Msg.t -> unit;
      (** a message arriving during a pending downgrade was queued on
          the entry *)
  on_downgrade_replay : proc:int -> block:int -> src:int -> Msg.t -> unit;
      (** a queued message is being replayed after the downgrade
          completed (fires in replay order) *)
  on_load : proc:int -> addr:int -> len:int -> now:int -> unit;
      (** an application load retired (after any miss handling) *)
  on_store : proc:int -> addr:int -> len:int -> now:int -> unit;
      (** an application store was issued through the protocol *)
  on_lock_acquired : proc:int -> lock:int -> now:int -> unit;
  on_lock_released : proc:int -> lock:int -> now:int -> unit;
  on_barrier_arrive : proc:int -> barrier:int -> epoch:int -> now:int -> unit;
  on_barrier_leave : proc:int -> barrier:int -> epoch:int -> now:int -> unit;
}

val nil : t
(** Every callback is a no-op; build observers with [{ nil with ... }]. *)

val seq : t -> t -> t
(** [seq a b] runs [a]'s callback then [b]'s at every event. *)
