(** Protocol event observer: the hook surface of the analysis layer.

    An observer is a record of callbacks installed on a {!Machine.t}
    (see [Machine.observer]) before the parallel phase starts. The
    protocol and the Dsm access layer invoke each callback at the
    corresponding event; when no observer is installed every hook site
    compiles to a single [match] on [None], so an uninstrumented run
    stays within measurement noise of the unhooked code and its
    simulated cycle counts are bit-identical (hooks never charge
    cycles).

    Events fire {e after} the mutation they describe has been applied
    (a state hook observes the new table contents), except
    [on_send]/[on_recv] which bracket a message's network transit, and
    [on_barrier_arrive], which fires when the processor commits to the
    barrier episode [epoch] (before it stalls).

    Every hook carries [now] (the virtual cycle of the processor that
    executed the event) and identifies that executing processor — as
    [by] on the node-level hooks, whose [node]/[proc] argument names the
    entity that changed rather than the actor, and as [proc]/[src]/[dst]
    elsewhere. Because each processor's execution is deterministic in
    virtual time, the stream of events attributed to one executing
    processor is a pure function of the program and configuration,
    independent of the host scheduler — which makes per-processor event
    streams usable as a determinism oracle (see {!Shasta_trace}). *)

type base = Shasta_mem.State_table.base

type t = {
  on_state :
    by:int -> node:int -> block:int -> from_:base -> to_:base -> now:int -> unit;
      (** a node's shared state table changed for a whole block;
          [by] is the processor executing the transition *)
  on_private :
    by:int -> proc:int -> block:int -> from_:base -> to_:base -> now:int -> unit;
      (** processor [proc]'s private state table changed for a whole
          block (SMP-Shasta; fires only on an actual change). [by] is
          the executing processor — a downgrade handler lowers a
          {e sibling}'s entry, so [by] and [proc] can differ. *)
  on_pending : by:int -> node:int -> block:int -> set:bool -> now:int -> unit;
      (** the pending (miss outstanding) marker toggled *)
  on_pending_downgrade :
    by:int -> node:int -> block:int -> set:bool -> now:int -> unit;
      (** the pending-downgrade marker toggled *)
  on_send : src:int -> dst:int -> now:int -> Msg.t -> unit;
      (** a message entered the network ([src <> dst]; inline
          same-processor delivery generates no send/recv pair) *)
  on_recv : src:int -> dst:int -> now:int -> Msg.t -> unit;
      (** a message was polled off the network by [dst], about to be
          handled; replays of messages queued on a miss entry, a busy
          directory entry or a downgrade entry do not re-fire this *)
  on_miss_start : proc:int -> block:int -> kind:Msg.req_kind -> now:int -> unit;
      (** a miss entry was allocated: the node had no request in flight
          for [block] and [proc]'s access created one (sibling accesses
          that merge into an existing entry do not fire this) *)
  on_miss_end :
    proc:int -> block:int -> kind:Msg.req_kind -> start:int -> now:int -> unit;
      (** the miss entry allocated at cycle [start] retired on [proc]
          (data applied and all acks in). [kind] is the entry's final
          kind — an upgrade chained onto a read entry reports [Readex],
          and the whole chain is one miss span. *)
  on_downgrade_ack : proc:int -> block:int -> now:int -> unit;
      (** a sibling handled a downgrade message (its private entry is
          already lowered) *)
  on_downgrade_done : proc:int -> block:int -> now:int -> unit;
      (** the deferred protocol action of a node downgrade is about to
          run on [proc] (the processor that handled the last downgrade
          message, or the initiator when no sibling needed one) *)
  on_downgrade_queued :
    proc:int -> block:int -> src:int -> now:int -> Msg.t -> unit;
      (** a message arriving during a pending downgrade was queued on
          the entry *)
  on_downgrade_replay :
    proc:int -> block:int -> src:int -> now:int -> Msg.t -> unit;
      (** a queued message is being replayed after the downgrade
          completed (fires in replay order) *)
  on_load : proc:int -> addr:int -> len:int -> now:int -> unit;
      (** an application load retired (after any miss handling) *)
  on_store : proc:int -> addr:int -> len:int -> now:int -> unit;
      (** an application store was issued through the protocol *)
  on_lock_acquired : proc:int -> lock:int -> now:int -> unit;
  on_lock_released : proc:int -> lock:int -> now:int -> unit;
  on_barrier_arrive : proc:int -> barrier:int -> epoch:int -> now:int -> unit;
  on_barrier_leave : proc:int -> barrier:int -> epoch:int -> now:int -> unit;
}

val nil : t
(** Every callback is a no-op; build observers with [{ nil with ... }]. *)

val seq : t -> t -> t
(** [seq a b] runs [a]'s callback then [b]'s at every event. *)

val synchronized : Mutex.t -> t -> t
(** [synchronized mu o] wraps every callback of [o] in [mu]. The sharded
    scheduler fires hooks from several domains concurrently; observers
    written for the sequential scheduler (trace buffers, metrics tables,
    the sanitizer) assume exclusive access, so [Dsm.run] wraps the
    installed observer before a sharded run. The lock is per event and
    never held across events. Note that the {e interleaving} of events
    from different processors under the lock follows host time, not
    virtual time — per-processor event substreams remain deterministic
    (the trace oracle's invariant), the merged order does not. *)
