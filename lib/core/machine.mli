(** Global state of a simulated cluster run.

    A [t] bundles the configuration, interconnect, per-coherence-node
    memory images / shared state tables / miss and downgrade tables,
    per-processor private state tables and directories, synchronization
    manager state, and statistics. It is created once per run; shared
    data, locks and barriers are allocated in a setup phase before the
    processors start. *)

type node_state = {
  image : Shasta_mem.Image.t;
  table : Shasta_mem.State_table.t;  (** the node's shared state table *)
  misses : Miss_table.t;
  downgrades : Downgrade.t;
  deferred_flags : (int, unit) Hashtbl.t;
      (** blocks invalidated during an active batch whose flag write is
          deferred to batch end (§3.4.4) *)
  batch_lines : (int, int) Hashtbl.t;  (** line -> active batch count *)
  batch_wranges : (int, (int * int) list) Hashtbl.t;
      (** block -> block-relative ranges being written raw by active
          batches; data replies merge around them, exactly as they merge
          around non-blocking-store ranges *)
  mutable downgrade_epoch : int;
      (** bumped whenever any block of this node is downgraded; lets a
          batch detect that a block it wrote may have churned mid-batch
          and must be re-serialized through the store path *)
}

type lock_state = {
  mutable held : bool;
  mutable holder : int;
  mutable lock_queue : int list;  (** waiting processors, newest first *)
}

type barrier_state = {
  mutable arrived : int;
  mutable generation : int;
  mutable arrived_procs : int list;
      (** pids (or, hierarchical, node representatives) counted in
          [arrived] — crash recovery subtracts dead arrivals *)
}

type proc_state = {
  pid : int;
  node : int;  (** coherence node *)
  stats : Stats.t;
  prng : Shasta_util.Prng.t;
  mutable engine : Shasta_sim.Engine.proc option;
  mutable category : Stats.category;
  mutable ops_since_poll : int;
  mutable outstanding_stores : int;
  granted : (int, unit) Hashtbl.t;  (** lock grants not yet consumed *)
  barrier_seen : (int, int) Hashtbl.t;  (** barrier id -> generation *)
  mutable finished : bool;
  mutable app_finish_cycles : int;
  mutable waiting_lock : int option;
      (** lock requested but not yet granted; crash recovery re-issues
          or re-grants for stranded waiters *)
  mutable waiting_barrier : int option;
      (** barrier arrived at but not yet released from; crash recovery
          re-issues arrivals or re-sends releases lost with a dead
          barrier manager *)
}

type t = {
  cfg : Config.t;
  topo : Shasta_net.Topology.t;
  net : Msg.t Shasta_net.Network.t;
  layout : Shasta_mem.Layout.t;
  blocks : Shasta_mem.Block_map.t;
  homes : Shasta_mem.Home_map.t;
  heap : Shasta_mem.Alloc.t;
  nodes : node_state array;
  privates : Shasta_mem.State_table.t array;  (** per processor *)
  dirs : Directory.t array;  (** per processor (home side) *)
  locks : (int, lock_state) Hashtbl.t;
  barriers : (int, barrier_state) Hashtbl.t;
  barrier_local : (int, barrier_state) Hashtbl.t array;
      (** per-coherence-node combining state for the hierarchical
          barrier extension, keyed by barrier id. One table per node
          (rather than one (barrier, node)-keyed table) so that under
          the sharded scheduler each shard touches only its own nodes'
          tables — no cross-domain Hashtbl mutation. *)
  procs : proc_state array;
  mutable next_lock : int;
  mutable next_barrier : int;
  mutable observer : Observer.t option;
      (** analysis hooks; [None] (the default) makes every hook site a
          no-op. Install before the parallel phase starts. *)
  mutable sharded : bool;
      (** true while the sharded scheduler is driving this machine:
          gates host-order-dependent conveniences (the per-barrier
          sanitizer sweep, the sequential drain predicate) that would
          race or skew across domains *)
  quiesced : bool Atomic.t;
      (** set exactly once by the sharded scheduler's termination
          detector; the sharded drain loop spins on it *)
  dead : bool array;
      (** per-processor crash flags; mutated only inside the atomic
          crash-and-recover surgery of [Shasta_recover.Crash] *)
  dead_nodes : bool array;  (** per-coherence-node crash flags *)
  mutable has_dead : bool;
  mutable crashes : int;  (** node crashes executed on this machine *)
  mutable recovery_cycles : int;
      (** simulated cycles charged to recovery traffic (message pauses
          of re-injected requests) *)
}

val create : Config.t -> t

val add_observer : t -> Observer.t -> unit
(** Install an observer, composing ({!Observer.seq}) with any already
    installed one. *)

val node_of : t -> int -> int
(** Coherence node of a processor. *)

val earliest_arrival : t -> int -> int
(** Earliest in-flight message arrival time for a processor, [max_int]
    when its queue is empty. Threaded into {!Shasta_sim.Engine.run} as
    the run-ahead horizon hint; allocation-free. *)

val home_of_block : t -> int -> int
(** Home processor of the block at the given base address. *)

val block_base : t -> int -> int
(** Base address of the block containing an address. *)

val block_size : t -> int -> int
(** Byte size of the block containing an address. *)

val alloc : t -> ?block_size:int -> ?home:int -> int -> int
(** Allocate shared memory (setup phase). The home's node starts with an
    exclusive, zero-initialized copy; all other nodes start invalid with
    the flag pattern stamped in. [home] pins every page of the object;
    because homes live at page granularity, raises [Invalid_argument] if
    the allocation starts mid-page on a page whose current home differs
    from [home] — pinning would silently re-home the tail of the
    previous allocation sharing that page and orphan its directory
    entries. (Packing several objects onto one page pinned to the {e
    same} home is idempotent and allowed.) Pad the preceding allocation
    to a page multiple, or allocate the pinned object first. *)

val place : t -> addr:int -> len:int -> proc:int -> unit
(** Re-home an address range (setup phase only): pins the page-aligned
    envelope of the range to [proc] and re-establishes the initial
    exclusive (zeroed) copies there. Initial data must be poked after
    placement. *)

val alloc_lock : t -> int
val alloc_barrier : t -> int

val lock_home : t -> int -> int
val barrier_home : t -> int -> int
(** Manager processor for a lock/barrier id: round-robin by id, failing
    over to the next live pid once a crash has happened. *)

val live_procs : t -> int
(** Number of processors not marked dead. *)

val live_nodes : t -> int
(** Number of coherence nodes not marked dead. *)

val quiescent : t -> bool
(** No queued or in-flight messages, no outstanding misses, downgrades,
    or busy directory entries — used to drain the run after all
    application code has finished. *)

val shard_quiet : t -> procs:int list -> nodes:int list -> bool
(** {!quiescent} restricted to one shard's processors and coherence
    nodes — the sharded scheduler's per-shard quiet predicate. Reads
    only state owned by the calling shard's domain. *)

val parallel_cycles : t -> int
(** Maximum over processors of the cycle count at which the application
    body returned. *)
