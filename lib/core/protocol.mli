(** The Shasta coherence protocol engine (Base and SMP variants).

    One implementation serves both variants: Base-Shasta is the
    degenerate case of one processor per coherence node, in which the
    downgrade machinery naturally sends zero messages and the SMP-only
    costs (per-line locking, private-table upgrades, the atomic
    float-load check) are not charged.

    All message handling is polling-based: a processor handles incoming
    messages only inside {!poll}, which Dsm calls at simulated loop
    backedges and which every stall loop calls while waiting — never
    between an inline check and its corresponding load or store, which is
    the invariant that makes the downgrade protocol race-free (§3.3). *)

exception
  Protocol_violation of {
    pid : int;  (** processor dispatching when the violation was found *)
    block : int;
    state : Shasta_mem.State_table.base;  (** its node's state for [block] *)
    detail : string;
  }
(** An impossible protocol configuration was reached while dispatching a
    message — e.g. a data reply with no outstanding miss, a downgrade
    message with no downgrade in progress, or a request forwarded to an
    owner with no copy. Replaces what would otherwise be a blind
    assertion failure; carries enough context to diagnose the state
    machine without a debugger. *)

type ctx
(** Per-processor protocol context, valid for the duration of a run. *)

val make_ctx : Machine.t -> Shasta_sim.Engine.proc -> ctx
val machine : ctx -> Machine.t
val pid : ctx -> int
val node : ctx -> int
val proc_state : ctx -> Machine.proc_state
val engine_proc : ctx -> Shasta_sim.Engine.proc
val timing : ctx -> Timing.t
val is_smp : ctx -> bool

val charge : ctx -> int -> unit
(** Charge cycles to the context's current accounting category without a
    scheduling point. *)

val charge_yield : ctx -> int -> unit
(** Charge cycles and yield to the scheduler. *)

val with_category : ctx -> Stats.category -> (unit -> 'a) -> 'a
(** Run a thunk with cycle charges attributed to the given category. *)

val poll : ctx -> unit
(** Handle every message that has arrived at this processor. *)

val op_tick : ctx -> unit
(** Account one simulated memory access; every
    [timing.poll_interval_ops] accesses this charges the polling cost,
    polls, and yields — the simulated loop backedge. *)

val node_image : ctx -> Shasta_mem.Image.t
(** This processor's node's copy of the shared heap (for checked raw
    access from Dsm once a check has succeeded). *)

val check_table : ctx -> Shasta_mem.State_table.t
(** The table consulted by inline checks: the processor's private table
    under SMP-Shasta, the node's (= processor's) shared table under
    Base-Shasta. *)

val load_miss : ctx -> addr:int -> [ `Valid | `Retry ]
(** Flag-based load check failed at [addr]. Handles false misses,
    private-state upgrades, merging with pending misses, and real fetches
    (stalling in the [Read] category). [`Valid] means the bytes at [addr]
    are application data right now and the caller must consume them
    without an intervening scheduling point; [`Retry] means re-run the
    check. *)

val store_miss : ctx -> addr:int -> len:int -> (Shasta_mem.Image.t -> unit) -> unit
(** Store check failed for the [len] bytes at [addr]. Applies the write
    (passed as a continuation on the node image) at the protocol-correct
    moment; non-blocking — returns as soon as the store is recorded,
    stalling only on the outstanding-store limit. *)

type batch_token

val batch_begin :
  ctx -> (int * int * Shasta_mem.State_table.base) list -> batch_token
(** Batched check over (addr, len, needed-state) ranges (§3.4.4). Marks
    every covered line as batch-active {e before} fetching (so blocks
    invalidated while the handler waits keep their bytes in memory for
    the batched loads — the deferred-flag mechanism), then fetches each
    insufficient line once. The caller performs raw accesses and must
    call {!batch_end}. *)

val batch_end : ctx -> batch_token -> unit
(** Re-serializes batched stores whose block lost exclusivity during the
    batch (pushing the declared write ranges back through the
    non-blocking store path), unmarks the lines, re-aligns private
    state, and performs deferred invalid-flag writes. *)

val lock_acquire : ctx -> int -> unit
(** Application lock acquire (stalls in the [Sync] category). Also
    enforces the acquire-side stall while any block on the node has a
    deferred flag write pending (§3.4.4 footnote). *)

val lock_release : ctx -> int -> unit
(** Release semantics: drains this processor's (node's, under SMP)
    outstanding stores, then releases the lock. *)

val barrier_wait : ctx -> int -> unit
(** Release + arrive + wait for the barrier generation to advance. When
    [cfg.sanitize > 0] the leaving processor additionally sweeps the
    whole machine with {!Inspect.report}, raising {!Inspect.Violation}
    on any failure; the sweep charges no cycles. *)

val drain : ctx -> unit
(** Post-application service loop: poll until the whole machine is
    quiescent. Cycle charges during the drain are not recorded in the
    statistics (the application has already finished). *)
