type entry = {
  mutable owner : int;
  mutable sharers : Shasta_util.Bitset.t;
  mutable busy : bool;
  mutable queue : (int * Msg.t) list;
}

type t = (int, entry) Hashtbl.t

let create () = Hashtbl.create 256

let entry t ~block ~home =
  match Hashtbl.find_opt t block with
  | Some e -> e
  | None ->
    let e =
      { owner = home; sharers = Shasta_util.Bitset.empty; busy = false; queue = [] }
    in
    Hashtbl.replace t block e;
    e

let find t ~block = Hashtbl.find_opt t block
let iter f t = Hashtbl.iter f t
let clear t = Hashtbl.reset t
let remove t ~block = Hashtbl.remove t block
let push_queued e ~src m = e.queue <- (src, m) :: e.queue

let pop_queued e =
  match List.rev e.queue with
  | [] -> None
  | oldest :: rest ->
    e.queue <- List.rev rest;
    Some oldest
