(** Machine introspection: state dumps and invariant checking.

    Used by the test suite after every randomized run, and available for
    debugging protocol issues together with the structured event trace
    ([shasta_cli trace], {!Shasta_trace}). *)

type subject =
  | Node of int  (** a coherence node's shared tables *)
  | Proc of int  (** a processor's private table *)
  | Machine_wide  (** a cross-node property *)

type violation = { block : int; subject : subject; what : string }

exception Violation of violation list

val block_transient : Machine.t -> int -> bool
(** Whether a block has protocol activity in flight anywhere — an
    outstanding miss, a downgrade, pending bits, a deferred flag write,
    an active batch, or a busy/queued directory entry — and so may
    legitimately break the settled-state invariants right now. *)

val report : Machine.t -> violation list
(** Machine-wide coherence invariants, checked over every allocated
    block; returns structured violations (empty = healthy). Safe to call
    mid-run — invariants that legitimately break while a block has
    protocol activity in flight (a miss, a downgrade, pending bits, a
    deferred flag write, an active batch, or a busy directory entry) are
    suppressed for that block:

    - at most one node holds a block [Exclusive] (never suppressed), and
      then no other node holds it [Shared];
    - some node always holds a valid copy;
    - a pending bit is backed by an outstanding miss entry, and a
      pending-downgrade bit agrees with the downgrade table (never
      suppressed — each pair is updated without an intervening
      scheduling point);
    - no processor's private entry exceeds its node's shared entry
      (outside an active batch, which temporarily suspends this);
    - a settled invalid block carries the invalid-flag pattern in every
      longword. *)

val describe : violation -> string
(** One human-readable line, e.g.
    ["block 0x1f40: node 2 pending with no outstanding miss"]. *)

val check_invariants : Machine.t -> string list
(** [List.map describe (report m)]. *)

val assert_invariants : Machine.t -> unit
(** Raises {!Violation} with the report if any invariant fails. *)

val dump : ?block:int -> Format.formatter -> Machine.t -> unit
(** Human-readable machine state: per-processor status, outstanding miss
    entries, downgrades, busy directory entries, lock/barrier state and
    network queue depths. With [block], also prints that block's state
    on every node and in every private table. *)
