module Layout = Shasta_mem.Layout
module Image = Shasta_mem.Image
module State_table = Shasta_mem.State_table
module Block_map = Shasta_mem.Block_map
module Home_map = Shasta_mem.Home_map
module Alloc = Shasta_mem.Alloc
module Topology = Shasta_net.Topology
module Network = Shasta_net.Network

type node_state = {
  image : Image.t;
  table : State_table.t;
  misses : Miss_table.t;
  downgrades : Downgrade.t;
  deferred_flags : (int, unit) Hashtbl.t;
  batch_lines : (int, int) Hashtbl.t;
  batch_wranges : (int, (int * int) list) Hashtbl.t;
  mutable downgrade_epoch : int;
}

type lock_state = {
  mutable held : bool;
  mutable holder : int;
  mutable lock_queue : int list;
}

type barrier_state = {
  mutable arrived : int;
  mutable generation : int;
  mutable arrived_procs : int list;
}

type proc_state = {
  pid : int;
  node : int;
  stats : Stats.t;
  prng : Shasta_util.Prng.t;
  mutable engine : Shasta_sim.Engine.proc option;
  mutable category : Stats.category;
  mutable ops_since_poll : int;
  mutable outstanding_stores : int;
  granted : (int, unit) Hashtbl.t;
  barrier_seen : (int, int) Hashtbl.t;
  mutable finished : bool;
  mutable app_finish_cycles : int;
  mutable waiting_lock : int option;
      (* lock id this processor has requested but not yet been granted —
         crash recovery uses it to find stranded waiters *)
  mutable waiting_barrier : int option;
      (* barrier id this processor has arrived at but not yet been
         released from — crash recovery uses it to find stranded
         arrivals when the barrier manager died *)
}

type t = {
  cfg : Config.t;
  topo : Topology.t;
  net : Msg.t Network.t;
  layout : Layout.t;
  blocks : Block_map.t;
  homes : Home_map.t;
  heap : Alloc.t;
  nodes : node_state array;
  privates : State_table.t array;
  dirs : Directory.t array;
  locks : (int, lock_state) Hashtbl.t;
  barriers : (int, barrier_state) Hashtbl.t;
  barrier_local : (int, barrier_state) Hashtbl.t array;
  procs : proc_state array;
  mutable next_lock : int;
  mutable next_barrier : int;
  mutable observer : Observer.t option;
  mutable sharded : bool;
  quiesced : bool Atomic.t;
  (* Crash bookkeeping. [dead]/[dead_nodes] are set (with [has_dead])
     atomically with the recovery surgery by [Shasta_recover.Crash], so
     protocol code only ever observes a fully recovered machine; the
     flags gate the O(1) fast paths of lock/barrier homing and the
     barrier expected-count. *)
  dead : bool array;  (* per processor *)
  dead_nodes : bool array;  (* per coherence node *)
  mutable has_dead : bool;
  mutable crashes : int;
  mutable recovery_cycles : int;
}

let create (cfg : Config.t) =
  let layout =
    Layout.create ~line_size:cfg.Config.line_size ~heap_bytes:cfg.Config.heap_bytes
      ()
  in
  let blocks = Block_map.create layout in
  let topo =
    Topology.create ~nprocs:cfg.Config.nprocs
      ~procs_per_node:cfg.Config.procs_per_node
  in
  let make_node _ =
    {
      image = Image.create layout;
      table = State_table.create layout;
      misses = Miss_table.create ();
      downgrades = Downgrade.create ();
      deferred_flags = Hashtbl.create 8;
      batch_lines = Hashtbl.create 32;
      batch_wranges = Hashtbl.create 8;
      downgrade_epoch = 0;
    }
  in
  let make_proc pid =
    {
      pid;
      node = Config.node_of_proc cfg pid;
      stats = Stats.create ();
      prng = Shasta_util.Prng.create (cfg.Config.seed + (1000 * pid));
      engine = None;
      category = Stats.Task;
      ops_since_poll = 0;
      outstanding_stores = 0;
      granted = Hashtbl.create 4;
      barrier_seen = Hashtbl.create 4;
      finished = false;
      app_finish_cycles = 0;
      waiting_lock = None;
      waiting_barrier = None;
    }
  in
  {
    cfg;
    topo;
    net = Network.create topo cfg.Config.link;
    layout;
    blocks;
    homes = Home_map.create layout ~nprocs:cfg.Config.nprocs;
    heap = Alloc.create layout blocks;
    nodes = Array.init (Config.nnodes cfg) make_node;
    privates =
      Array.init cfg.Config.nprocs (fun _ -> State_table.create layout);
    dirs = Array.init cfg.Config.nprocs (fun _ -> Directory.create ());
    locks = Hashtbl.create 64;
    barriers = Hashtbl.create 8;
    barrier_local = Array.init (Config.nnodes cfg) (fun _ -> Hashtbl.create 8);
    procs = Array.init cfg.Config.nprocs make_proc;
    next_lock = 0;
    next_barrier = 0;
    observer = None;
    sharded = false;
    quiesced = Atomic.make false;
    dead = Array.make cfg.Config.nprocs false;
    dead_nodes = Array.make (Config.nnodes cfg) false;
    has_dead = false;
    crashes = 0;
    recovery_cycles = 0;
  }

let add_observer t o =
  t.observer <-
    Some (match t.observer with None -> o | Some prev -> Observer.seq prev o)

let node_of t p = t.procs.(p).node

(* Earliest in-flight message arrival for [p], [max_int] when none: the
   engine's run-ahead horizon hint. Called once per scheduler resume, so
   it must not allocate. *)
let earliest_arrival t p = Network.earliest_arrival t.net ~dst:p

let home_of_block t block =
  Home_map.home_of_line t.homes t.layout (Layout.line_of t.layout block)

let block_base t addr = Block_map.base_addr t.blocks t.layout addr
let block_size t addr = Block_map.size_bytes t.blocks t.layout addr

(* Establish initial ownership of one block: the home's node holds an
   exclusive zeroed copy; every other node is invalid with the flag
   pattern stamped so that flag-based load checks fail as they must. *)
let init_block_ownership t ~block =
  let home = home_of_block t block in
  let home_node = node_of t home in
  let size = block_size t block in
  let first_line = Layout.line_of t.layout block in
  let nlines = size / t.layout.Layout.line_size in
  Array.iteri
    (fun n ns ->
      if n = home_node then
        for l = first_line to first_line + nlines - 1 do
          State_table.set ns.table l State_table.Exclusive
        done
      else begin
        Image.write_invalid_flag ns.image ~addr:block ~len:size;
        for l = first_line to first_line + nlines - 1 do
          State_table.set ns.table l State_table.Invalid
        done
      end)
    t.nodes;
  Array.iteri
    (fun p tbl ->
      let state =
        if p = home then State_table.Exclusive else State_table.Invalid
      in
      for l = first_line to first_line + nlines - 1 do
        State_table.set tbl l state
      done)
    t.privates

let iter_blocks t ~addr ~len f =
  let pos = ref (block_base t addr) in
  while !pos < addr + len do
    f !pos;
    pos := !pos + block_size t !pos
  done

let alloc t ?block_size:bs ?home size =
  let addr = Alloc.alloc t.heap ?block_size:bs size in
  (match home with
  | Some proc ->
    (* Homes live at page granularity. An object that starts mid-page
       shares its first page with the tail of an earlier allocation;
       pinning it to a different home would silently re-home those
       earlier bytes and orphan their directory entries (the livelock
       shape PR 5's flight recorder diagnosed). Pinning to the page's
       current home is idempotent and allowed (several small objects
       deliberately packed onto one pinned page); a trailing partial
       page is harmless too — the next allocation inherits the pin
       consistently — so only a conflicting leading boundary raises.
       Callers pad the preceding allocation to a page multiple or
       allocate the pinned object first. *)
    let ps = t.layout.Layout.page_size in
    (if addr mod ps <> 0 then
       let lead_home =
         Home_map.home_of_line t.homes t.layout
           (Layout.line_of t.layout (addr / ps * ps))
       in
       if lead_home <> proc then
         invalid_arg
           (Printf.sprintf
              "Machine.alloc ~home:%d: allocation at 0x%x starts mid-page \
               (page size %d bytes, page homed at %d); pinning would re-home \
               earlier objects on the shared page"
              proc addr ps lead_home));
    Home_map.set_home t.homes t.layout ~addr ~len:size ~proc
  | None -> ());
  iter_blocks t ~addr ~len:size (fun b -> init_block_ownership t ~block:b);
  addr

let place t ~addr ~len ~proc =
  (* Setup phase only. Homes live at page granularity, so re-pinning any
     byte of a page moves the whole page: operate on the page-aligned
     envelope so block states and the home map never disagree. Data must
     be poked after placement. *)
  let ps = t.layout.Layout.page_size in
  let start = addr / ps * ps in
  let stop = (((addr + len - 1) / ps) + 1) * ps in
  let env_len = stop - start in
  iter_blocks t ~addr:start ~len:env_len (fun b ->
      let size = block_size t b in
      Array.iter
        (fun ns -> Image.write_invalid_flag ns.image ~addr:b ~len:size)
        t.nodes);
  Home_map.set_home t.homes t.layout ~addr:start ~len:env_len ~proc;
  let new_node = node_of t proc in
  Image.write_bytes t.nodes.(new_node).image ~addr:start
    (Bytes.make env_len '\000');
  iter_blocks t ~addr:start ~len:env_len (fun b ->
      init_block_ownership t ~block:b)

let alloc_lock t =
  let id = t.next_lock in
  t.next_lock <- id + 1;
  Hashtbl.replace t.locks id { held = false; holder = -1; lock_queue = [] };
  id

let alloc_barrier t =
  let id = t.next_barrier in
  t.next_barrier <- id + 1;
  Hashtbl.replace t.barriers id
    { arrived = 0; generation = 0; arrived_procs = [] };
  id

(* Lock/barrier manager homing: round-robin by id, walking forward past
   dead processors once a crash has happened (the manager role of a dead
   processor fails over to the next live pid; all processors compute the
   same answer because [dead] only changes inside the atomic crash
   surgery). *)
let live_manager t id =
  let n = t.cfg.Config.nprocs in
  let p = id mod n in
  if not t.has_dead then p
  else begin
    let q = ref p in
    while t.dead.(!q) do
      q := (!q + 1) mod n
    done;
    !q
  end

let lock_home t id = live_manager t id
let barrier_home t id = live_manager t id

let live_procs t =
  if not t.has_dead then t.cfg.Config.nprocs
  else begin
    let n = ref 0 in
    Array.iter (fun d -> if not d then incr n) t.dead;
    !n
  end

let live_nodes t =
  if not t.has_dead then Config.nnodes t.cfg
  else begin
    let n = ref 0 in
    Array.iter (fun d -> if not d then incr n) t.dead_nodes;
    !n
  end

(* Evaluated lazily, cheapest condition first: the post-run drain loop
   probes this every [stall_gap] while the stragglers are still running,
   so the common answer is "no" at the finished-flags check — the
   directory sweep (O(blocks ever touched), unbounded over a run) must
   only be paid in the final iterations when every processor is done. *)
let quiescent t =
  Array.for_all (fun p -> p.finished) t.procs
  && (let ok = ref true in
      for p = 0 to t.cfg.Config.nprocs - 1 do
        if Network.queued t.net ~dst:p > 0 then ok := false
      done;
      !ok)
  && Array.for_all
       (fun ns ->
         Miss_table.count ns.misses = 0 && Downgrade.count ns.downgrades = 0)
       t.nodes
  && Array.for_all
       (fun d ->
         let idle = ref true in
         Directory.iter
           (fun _ e ->
             if e.Directory.busy || e.Directory.queue <> [] then idle := false)
           d;
         !idle)
       t.dirs

(* [quiescent] restricted to one shard: reads only the given processors'
   flags, queues and directories and the given nodes' tables, all owned
   by the calling shard's domain. The finished-flag check comes first so
   the common mid-run probe is O(1). *)
let shard_quiet t ~procs ~nodes =
  List.for_all
    (fun p -> t.procs.(p).finished && Network.queued t.net ~dst:p = 0)
    procs
  && List.for_all
       (fun n ->
         let ns = t.nodes.(n) in
         Miss_table.count ns.misses = 0 && Downgrade.count ns.downgrades = 0)
       nodes
  && List.for_all
       (fun p ->
         let idle = ref true in
         Directory.iter
           (fun _ e ->
             if e.Directory.busy || e.Directory.queue <> [] then idle := false)
           t.dirs.(p);
         !idle)
       procs

let parallel_cycles t =
  Array.fold_left (fun acc p -> max acc p.app_finish_cycles) 0 t.procs
