type entry = {
  id : int;
  block : int;
  requester : int;
  start_cycles : int;
  mutable kind : Msg.req_kind;
  mutable data_ready : bool;
  mutable acks_expected : int;
  mutable acks_received : int;
  mutable store_ranges : (int * int) list;
  mutable store_procs : Shasta_util.Bitset.t;
  mutable upgrade_after_reply : bool;
  mutable inval_after_reply : bool;
  mutable queued_fwds : (int * Msg.t) list;
}

let complete e =
  e.data_ready && e.acks_expected >= 0 && e.acks_received >= e.acks_expected

type t = {
  by_block : (int, entry) Hashtbl.t;
  by_id : (int, entry) Hashtbl.t;
  mutable next_id : int;
}

let create () =
  { by_block = Hashtbl.create 64; by_id = Hashtbl.create 64; next_id = 0 }

let find t ~block = Hashtbl.find_opt t.by_block block

let add t ~block ~requester ~kind ~now =
  assert (not (Hashtbl.mem t.by_block block));
  let e =
    {
      id = t.next_id;
      block;
      requester;
      start_cycles = now;
      kind;
      data_ready = false;
      acks_expected = -1;
      acks_received = 0;
      store_ranges = [];
      store_procs = Shasta_util.Bitset.empty;
      upgrade_after_reply = false;
      inval_after_reply = false;
      queued_fwds = [];
    }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.by_block block e;
  Hashtbl.replace t.by_id e.id e;
  e

let remove t e =
  Hashtbl.remove t.by_block e.block;
  Hashtbl.remove t.by_id e.id

let find_id t id = Hashtbl.find_opt t.by_id id
let outstanding_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.by_id []
let count t = Hashtbl.length t.by_block
let iter f t = Hashtbl.iter (fun _ e -> f e) t.by_block

let clear t =
  Hashtbl.reset t.by_block;
  Hashtbl.reset t.by_id

let add_store_range e ~off ~len ~proc =
  e.store_ranges <- (off, len) :: e.store_ranges;
  e.store_procs <- Shasta_util.Bitset.add proc e.store_procs
