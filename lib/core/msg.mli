(** Protocol messages.

    [block] fields always carry the block's base byte address. Requests
    go requester → home; the home either replies directly (2 hops) or
    forwards to the owner (3 hops). Invalidations are acknowledged
    directly to the requester (eager release consistency). [Downgrade]
    messages exist only between processors of the same coherence node
    (§3.3). Lock and barrier traffic uses the same transport, as in the
    prototype. *)

type req_kind = Read | Readex | Upgrade

type t =
  | Req of { kind : req_kind; block : int }
  | Fwd of { kind : req_kind; block : int; requester : int; inval_acks : int }
      (** home → owner; [inval_acks] is how many sharer acknowledgements
          the requester must collect (readex only) *)
  | Data_reply of {
      kind : req_kind;
      block : int;
      data : Bytes.t;
      from_home : bool;
      inval_acks : int;
    }
  | Upgrade_reply of { block : int; inval_acks : int }
  | Invalidate of { block : int; requester : int }
      (** home → sharer; the sharer acknowledges to [requester] *)
  | Inval_ack of { block : int }
  | Sharing_wb of { block : int; new_sharer : int }
      (** owner → home after serving a forwarded read: the owner's node
          is now shared and [new_sharer] holds a copy *)
  | Own_ack of { block : int }
      (** old owner → home after serving a forwarded read-exclusive *)
  | Downgrade of { block : int; target : Shasta_mem.State_table.base }
  | Lock_req of { lock : int }
  | Lock_grant of { lock : int }
  | Lock_release of { lock : int }
  | Barrier_arrive of { barrier : int }
  | Barrier_release of { barrier : int; generation : int }

val size_bytes : t -> int
(** Wire size: a 16-byte header plus any data payload. *)

val block_of : t -> int option
(** The block a coherence message concerns; [None] for sync traffic. *)

val tag : t -> int
(** Stable small-integer message class, indexing {!tag_names} — request
    messages are split by [req_kind], [Fwd] is not. Used as a histogram
    key for per-kind message counters. *)

val tag_names : string array

val describe : t -> string
(** Constructor name, for traces and tests. *)
