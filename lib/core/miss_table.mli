(** Per-node table of outstanding misses.

    One entry exists per block with a request in flight. The entry
    supports the protocol's aggressive lockup-free behaviour: stores by
    any processor of the node merge their (offset, len) ranges into the
    entry and proceed without stalling; reply data is written around the
    merged ranges. Requests from other processors of the node for the
    same block attach to the existing entry rather than producing a
    second network request (§3.4.2). *)

type entry = {
  id : int;
  block : int;
  requester : int;  (** processor whose request is in flight *)
  start_cycles : int;
  mutable kind : Msg.req_kind;
  mutable data_ready : bool;
  mutable acks_expected : int;  (** -1 until the reply announces it *)
  mutable acks_received : int;
  mutable store_ranges : (int * int) list;
      (** block-relative ranges written by non-blocking stores *)
  mutable store_procs : Shasta_util.Bitset.t;
      (** processors with stores merged into this entry *)
  mutable upgrade_after_reply : bool;
      (** a store merged into a read entry: issue an ownership request
          once the read data arrives *)
  mutable inval_after_reply : bool;
      (** an invalidation raced with the pending fetch; apply the reply,
          wake waiters, then invalidate immediately *)
  mutable queued_fwds : (int * Msg.t) list;
      (** forwarded requests that arrived before our data did *)
}

val complete : entry -> bool
(** Data applied and all expected invalidation acks received. *)

type t

val create : unit -> t

val find : t -> block:int -> entry option

val add : t -> block:int -> requester:int -> kind:Msg.req_kind -> now:int -> entry

val remove : t -> entry -> unit

val find_id : t -> int -> entry option
(** Lookup by entry id — ids are never reused, so a release operation can
    snapshot the ids of currently outstanding entries and wait for
    exactly those to drain. *)

val outstanding_ids : t -> int list

val count : t -> int

val iter : (entry -> unit) -> t -> unit

val clear : t -> unit
(** Drop every entry — a crashed node's miss table (crash recovery
    only). *)

val add_store_range : entry -> off:int -> len:int -> proc:int -> unit
(** Record a non-blocking store (coalescing is not attempted; ranges are
    applied in order at merge time, which is equivalent). *)
