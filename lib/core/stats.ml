type category = Task | Read | Write | Sync | Message | Other

let categories = [ Task; Read; Write; Sync; Message; Other ]

let category_name = function
  | Task -> "task"
  | Read -> "read"
  | Write -> "write"
  | Sync -> "sync"
  | Message -> "message"
  | Other -> "other"

let category_index = function
  | Task -> 0
  | Read -> 1
  | Write -> 2
  | Sync -> 3
  | Message -> 4
  | Other -> 5

type miss_class = { kind : Msg.req_kind; three_hop : bool }

let miss_index { kind; three_hop } =
  let k = match kind with Msg.Read -> 0 | Msg.Readex -> 1 | Msg.Upgrade -> 2 in
  (2 * k) + if three_hop then 1 else 0

type t = {
  mutable cycles : int array;
  mutable misses : int array;
  mutable private_upgrades : int;
  mutable false_misses : int;
  mutable read_latency_cycles : int;
  mutable read_latency_count : int;
  mutable downgrades_sent : int;
  downgrade_events : Shasta_util.Histogram.t;
  mutable checks : int;
  mutable fast_hits : int;
  mutable accesses : int;
  mutable prog_accesses : int;
}

let create () =
  {
    cycles = Array.make 6 0;
    misses = Array.make 6 0;
    private_upgrades = 0;
    false_misses = 0;
    read_latency_cycles = 0;
    read_latency_count = 0;
    downgrades_sent = 0;
    downgrade_events = Shasta_util.Histogram.create ();
    checks = 0;
    fast_hits = 0;
    accesses = 0;
    prog_accesses = 0;
  }

let add_cycles t c n = t.cycles.(category_index c) <- t.cycles.(category_index c) + n
let cycles t c = t.cycles.(category_index c)
let total_cycles t = Array.fold_left ( + ) 0 t.cycles
let record_miss t m = t.misses.(miss_index m) <- t.misses.(miss_index m) + 1
let miss_count t m = t.misses.(miss_index m)
let total_misses t = Array.fold_left ( + ) 0 t.misses

let record_read_latency t c =
  t.read_latency_cycles <- t.read_latency_cycles + c;
  t.read_latency_count <- t.read_latency_count + 1

let mean_read_latency_us t =
  if t.read_latency_count = 0 then 0.
  else
    Timing.us_of_cycles t.read_latency_cycles /. float_of_int t.read_latency_count

let aggregate ts =
  let r = create () in
  List.iter
    (fun t ->
      Array.iteri (fun i v -> r.cycles.(i) <- r.cycles.(i) + v) t.cycles;
      Array.iteri (fun i v -> r.misses.(i) <- r.misses.(i) + v) t.misses;
      r.private_upgrades <- r.private_upgrades + t.private_upgrades;
      r.false_misses <- r.false_misses + t.false_misses;
      r.read_latency_cycles <- r.read_latency_cycles + t.read_latency_cycles;
      r.read_latency_count <- r.read_latency_count + t.read_latency_count;
      r.downgrades_sent <- r.downgrades_sent + t.downgrades_sent;
      Shasta_util.Histogram.(
        List.iter
          (fun k -> add_many r.downgrade_events k (count t.downgrade_events k))
          (keys t.downgrade_events));
      r.checks <- r.checks + t.checks;
      r.fast_hits <- r.fast_hits + t.fast_hits;
      r.accesses <- r.accesses + t.accesses;
      r.prog_accesses <- r.prog_accesses + t.prog_accesses)
    ts;
  r
