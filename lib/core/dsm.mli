(** Public API of the simulated Shasta distributed shared memory.

    Usage is in two phases. In the {e setup phase}, create a machine from
    a {!Config.t} and allocate shared data, locks and barriers. In the
    {e parallel phase}, {!run} executes one body per simulated processor;
    the body accesses shared memory through the checked [load]/[store]
    operations (each of which performs the inline access-control check of
    the real system, charging its cycle cost, and drops into the
    coherence protocol on a miss), synchronizes with locks and barriers,
    and models local computation with {!compute}.

    All values live in the simulated shared heap as 8-byte cells (floats
    or 63-bit integers); addresses are byte offsets and must be 8-byte
    aligned. *)

type handle
(** A configured machine (setup phase + post-run inspection). *)

val create : Config.t -> handle
val config : handle -> Config.t
val machine : handle -> Machine.t

(** {1 Setup phase} *)

val alloc : handle -> ?block_size:int -> ?home:int -> int -> int
(** Allocate bytes of shared memory; see {!Machine.alloc}. *)

val alloc_floats : handle -> ?block_size:int -> ?home:int -> int -> int
(** Allocate an array of [n] 8-byte cells; element [i] lives at
    [base + 8*i]. *)

val place : handle -> addr:int -> len:int -> proc:int -> unit
(** Home-placement optimization; see {!Machine.place}. *)

val alloc_lock : handle -> int
val alloc_barrier : handle -> int

val add_observer : handle -> Observer.t -> unit
(** Install analysis hooks ({!Machine.add_observer}) before {!run}. *)

val poke_float : handle -> int -> float -> unit
(** Setup phase: write an initial value directly into the home node's
    copy (data is born initialized at its home, so the parallel phase
    starts with the cold-miss behaviour of the real system). *)

val poke_int : handle -> int -> int -> unit

(** {1 Parallel phase} *)

type ctx

val run :
  ?run_ahead:bool ->
  ?shards:int ->
  ?events:(int * (kill:(int -> unit) -> now:int -> unit)) list ->
  handle ->
  (ctx -> unit) ->
  unit
(** Execute the body on every simulated processor and drain the
    protocol. May be called once per handle. [run_ahead] (default
    [true]) enables the slack-based run-ahead scheduler; disabling it
    forces a full scheduler round-trip at every charged scheduling
    point, which must produce the identical simulation.

    [shards] overrides [Config.shards] for this run (same encoding:
    0 = auto). With more than one shard the run executes as a
    conservative parallel discrete-event simulation across OCaml 5
    domains — one per group of coherence nodes, see
    {!Shasta_sim.Engine.run_sharded} — whose merged event stream and
    every simulated-time result (cycles, stats, messages, memory) are
    bit-identical to the sequential scheduler; only host wall time and
    the yield counters of {!sched_counts} differ. The request is capped
    at the node count and forced to 1 when [run_ahead] is off, fault
    injection is configured, [sanitize >= 2] (the race detector needs
    the sequential merged event order), checkpointing is enabled
    ([Config.ckpt] > 0), or [events] is non-empty.

    [events] schedules virtual-time callbacks — the crash-injection
    surface, see {!Shasta_sim.Engine.run} and {!Shasta_recover.Crash}.
    Each [(at, f)] fires once, at a scheduler decision point, before
    any processor executes at or past cycle [at]; [f] may kill
    processors and mutate machine state atomically. Passing [[]]
    (the default) is bit-identical to the previous behaviour. *)

val run_controlled :
  ?events:(int * (kill:(int -> unit) -> now:int -> unit)) list ->
  choose:(int array -> int) ->
  handle ->
  (ctx -> unit) ->
  unit
(** {!run} under an external scheduler, for the litmus model checker:
    run-ahead is disabled, every scheduling point performs, and at each
    one [choose] picks the next processor from the runnable set (sorted
    by virtual time, ties by pid — index 0 reproduces the default
    schedule). [events] as in {!run} — lets the litmus DFS place
    crashes at explored decision points. See
    {!Shasta_sim.Engine.run_controlled}. *)

val pid : ctx -> int
val nprocs : ctx -> int
val prng : ctx -> Shasta_util.Prng.t
(** Per-processor deterministic random stream. *)

val now : ctx -> int
(** This processor's current virtual cycle clock. *)

val compute : ctx -> int -> unit
(** Model [n] cycles of local computation (includes a loop-backedge poll
    at the configured interval). *)

val load_float : ctx -> int -> float
val store_float : ctx -> int -> float -> unit

val load_int : ctx -> int -> int
val store_int : ctx -> int -> int -> unit

(** {1 Batched access (§3.4.4)}

    [batch ctx ranges f] performs one combined check for all the (addr,
    len, access) ranges, then runs [f], inside which the [Batch] raw
    operations may touch exactly those ranges without further checks. *)

type access = R | W

val batch : ctx -> (int * int * access) list -> (unit -> 'a) -> 'a

module Batch : sig
  val load_float : ctx -> int -> float
  val store_float : ctx -> int -> float -> unit
  val load_int : ctx -> int -> int
  val store_int : ctx -> int -> int -> unit
end

(** {1 Access programs}

    A hot per-block access sequence compiled once into a flat int array
    and interpreted in a tight loop — the §3.4.1 batched-check idea
    applied to the simulator's own hot path, replacing per-access
    closure dispatch. A program is {e raw} (uses {!instr.Ldf}/[Stf];
    must run inside a {!batch} whose ranges cover every address it
    touches) or {e checked} (uses [Cldf]/[Cstf]; runs outside batches,
    each access going through the ordinary checked load/store); mixing
    both in one program is rejected at {!compile} time. The
    interpretation is cycle-identical to the equivalent closure
    formulation: with an observer installed every op charges and fires
    its hook individually; without one a raw program's cycles are
    charged in a single fused charge at the end (same total and finish
    time; a [Cycle_limit] that would have fired mid-program fires at the
    program's end clock). Programs are per-processor scratch (they carry
    a register file) — build one per [ctx], not shared across bodies. *)
module Prog : sig
  type instr =
    | Ldf of int * int * int
        (** [Ldf (r, b, off)]: reg [r] <- raw in-batch float load at
            base [b] + byte offset [off] ([b] selects [base0..base2] of
            {!run}) *)
    | Stf of int * int * int  (** raw in-batch float store of reg [r] *)
    | Cldf of int * int * int  (** checked float load (outside batch) *)
    | Cstf of int * int * int  (** checked float store *)
    | Fms of int * int
        (** [Fms (a, b)]: [r(a) <- r(a) -. s *. r(b)] with {!run}'s
            scalar [s] *)
    | Add of int * int * int  (** [r(a) <- r(b) +. r(c)] *)
    | Sub of int * int * int  (** [r(a) <- r(b) -. r(c)] *)
    | Mul of int * int * int  (** [r(a) <- r(b) *. r(c)] *)
    | Mulk of int * int * int  (** [r(a) <- r(b) *. consts.(k)] *)
    | Movk of int * int  (** [r(a) <- consts.(k)] *)
    | Auxld of int * int  (** [r(a) <- aux.(i)] from {!run}'s scratch *)
    | Auxst of int * int  (** [aux.(i) <- r(a)] *)
    | Wrap of int * int
        (** [Wrap (a, k)]: periodic wrap of [r(a)] into
            [\[0, consts.(k))] — adds or subtracts one period, the
            water-kernel boundary condition *)
    | Charge of int  (** model [n] cycles of local computation *)

  type t

  exception Prog_violation of { op : string; pc : int; detail : string }
  (** An impossible program configuration reached during interpretation
      or decoding (e.g. an unknown opcode in a hand-forged code array) —
      the access-program counterpart of [Protocol.Protocol_violation].
      [pc] is the instruction index (code offset / 4). *)

  val compile : ?consts:float array -> nregs:int -> instr list -> t
  (** Validate and flatten a program. Raises [Invalid_argument] on a
      register/base/constant index out of range or a program mixing raw
      and checked accesses. *)

  val decode : t -> instr list
  (** Recover the instruction list a program was compiled from
      ([compile] is a bijection up to the flat encoding) — the input to
      the static verifier. Raises {!Prog_violation} on an unknown
      opcode. *)

  val nregs : t -> int
  val consts : t -> float array
  val uses_raw : t -> bool
  val uses_checked : t -> bool

  val no_aux : float array
  (** Empty scratch array for programs without [Auxld]/[Auxst]. *)

  val fms_row : len:int -> cost:int -> t
  (** The daxpy row kernel [dst.(c) <- dst.(c) -. s *. src.(c)] for
      [c] in [0, len), charging [cost] cycles of compute per element —
      ops emitted in the evaluation order of the closure formulation
      (src load, dst load, multiply-subtract, dst store, charge). *)

  val run :
    ctx -> t -> s:float -> aux:float array -> base0:int -> base1:int ->
    base2:int -> unit
  (** Interpret a program with scalar [s], host-side scratch [aux]
      (pass {!no_aux} when unused) and the three base addresses bound
      ([base0] = dst row, [base1] = src row for {!fms_row}; unused bases
      may be [0]). A raw program must run inside a {!batch} whose ranges
      cover every address it touches; a checked program must run outside
      any batch. *)
end

(** {1 Synchronization} *)

val lock : ctx -> int -> unit
val unlock : ctx -> int -> unit
val barrier : ctx -> int -> unit

(** {1 Post-run results} *)

val parallel_cycles : handle -> int
(** Wall-clock of the parallel phase: max over processors of the cycle
    count when the body returned. *)

val proc_stats : handle -> Stats.t array
val aggregate_stats : handle -> Stats.t

val peek_float : handle -> int -> float
(** Post-run: read a value from a currently valid copy (owner-preferred)
    without going through any protocol — for result verification. *)

val peek_int : handle -> int -> int

val messages_local : handle -> int
(** Intra-node protocol messages sent, including downgrades. *)

val messages_remote : handle -> int
val downgrade_messages : handle -> int

val sched_counts : handle -> int * int
(** (performed, elided) yield-effect counts of this handle's {!run} —
    the per-run scheduler observability of {!Shasta_sim.Engine.outcome}.
    [(0, 0)] before [run]. Under a sharded run the split between
    performed and elided depends on host timing (parking at the
    cross-shard bound re-publishes horizons); treat as diagnostics
    only. *)

val shards_used : handle -> int
(** Shards the {!run} actually executed with, after auto resolution and
    the forced-sequential fallbacks. [0] before [run]. *)

val shard_stats : handle -> Shasta_sim.Engine.shard_stats option
(** Per-shard wall/steps/spins of a sharded {!run}; [None] before [run]
    or when it ran sequentially. *)
