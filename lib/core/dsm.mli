(** Public API of the simulated Shasta distributed shared memory.

    Usage is in two phases. In the {e setup phase}, create a machine from
    a {!Config.t} and allocate shared data, locks and barriers. In the
    {e parallel phase}, {!run} executes one body per simulated processor;
    the body accesses shared memory through the checked [load]/[store]
    operations (each of which performs the inline access-control check of
    the real system, charging its cycle cost, and drops into the
    coherence protocol on a miss), synchronizes with locks and barriers,
    and models local computation with {!compute}.

    All values live in the simulated shared heap as 8-byte cells (floats
    or 63-bit integers); addresses are byte offsets and must be 8-byte
    aligned. *)

type handle
(** A configured machine (setup phase + post-run inspection). *)

val create : Config.t -> handle
val config : handle -> Config.t
val machine : handle -> Machine.t

(** {1 Setup phase} *)

val alloc : handle -> ?block_size:int -> ?home:int -> int -> int
(** Allocate bytes of shared memory; see {!Machine.alloc}. *)

val alloc_floats : handle -> ?block_size:int -> ?home:int -> int -> int
(** Allocate an array of [n] 8-byte cells; element [i] lives at
    [base + 8*i]. *)

val place : handle -> addr:int -> len:int -> proc:int -> unit
(** Home-placement optimization; see {!Machine.place}. *)

val alloc_lock : handle -> int
val alloc_barrier : handle -> int

val add_observer : handle -> Observer.t -> unit
(** Install analysis hooks ({!Machine.add_observer}) before {!run}. *)

val poke_float : handle -> int -> float -> unit
(** Setup phase: write an initial value directly into the home node's
    copy (data is born initialized at its home, so the parallel phase
    starts with the cold-miss behaviour of the real system). *)

val poke_int : handle -> int -> int -> unit

(** {1 Parallel phase} *)

type ctx

val run : ?run_ahead:bool -> handle -> (ctx -> unit) -> unit
(** Execute the body on every simulated processor and drain the
    protocol. May be called once per handle. [run_ahead] (default
    [true]) enables the slack-based run-ahead scheduler; disabling it
    forces a full scheduler round-trip at every charged scheduling
    point, which must produce the identical simulation. *)

val run_controlled : choose:(int array -> int) -> handle -> (ctx -> unit) -> unit
(** {!run} under an external scheduler, for the litmus model checker:
    run-ahead is disabled, every scheduling point performs, and at each
    one [choose] picks the next processor from the runnable set (sorted
    by virtual time, ties by pid — index 0 reproduces the default
    schedule). See {!Shasta_sim.Engine.run_controlled}. *)

val pid : ctx -> int
val nprocs : ctx -> int
val prng : ctx -> Shasta_util.Prng.t
(** Per-processor deterministic random stream. *)

val now : ctx -> int
(** This processor's current virtual cycle clock. *)

val compute : ctx -> int -> unit
(** Model [n] cycles of local computation (includes a loop-backedge poll
    at the configured interval). *)

val load_float : ctx -> int -> float
val store_float : ctx -> int -> float -> unit

val load_int : ctx -> int -> int
val store_int : ctx -> int -> int -> unit

(** {1 Batched access (§3.4.4)}

    [batch ctx ranges f] performs one combined check for all the (addr,
    len, access) ranges, then runs [f], inside which the [Batch] raw
    operations may touch exactly those ranges without further checks. *)

type access = R | W

val batch : ctx -> (int * int * access) list -> (unit -> 'a) -> 'a

module Batch : sig
  val load_float : ctx -> int -> float
  val store_float : ctx -> int -> float -> unit
  val load_int : ctx -> int -> int
  val store_int : ctx -> int -> int -> unit
end

(** {1 Synchronization} *)

val lock : ctx -> int -> unit
val unlock : ctx -> int -> unit
val barrier : ctx -> int -> unit

(** {1 Post-run results} *)

val parallel_cycles : handle -> int
(** Wall-clock of the parallel phase: max over processors of the cycle
    count when the body returned. *)

val proc_stats : handle -> Stats.t array
val aggregate_stats : handle -> Stats.t

val peek_float : handle -> int -> float
(** Post-run: read a value from a currently valid copy (owner-preferred)
    without going through any protocol — for result verification. *)

val peek_int : handle -> int -> int

val messages_local : handle -> int
(** Intra-node protocol messages sent, including downgrades. *)

val messages_remote : handle -> int
val downgrade_messages : handle -> int

val sched_counts : handle -> int * int
(** (performed, elided) yield-effect counts of this handle's {!run} —
    the per-run scheduler observability of {!Shasta_sim.Engine.outcome}.
    [(0, 0)] before [run]. *)
