type deferred =
  | Reply_read of { requester : int }
  | Reply_readex of { requester : int; inval_acks : int }
  | Inval_done of { requester : int }
  | Recovered
      (* crash recovery rewrote a deferred action whose requester died:
         the downgrade still completes locally (siblings already lowered
         their private entries) but no reply is sent *)

type entry = {
  block : int;
  target : Shasta_mem.State_table.base;
  mutable deferred : deferred;
  mutable remaining : int;
  mutable queued : (int * Msg.t) list;
}

type t = (int, entry) Hashtbl.t

let create () = Hashtbl.create 16
let find t ~block = Hashtbl.find_opt t block

let add t ~block ~target ~deferred ~remaining =
  if Hashtbl.mem t block then
    invalid_arg
      (Printf.sprintf "Downgrade.add: block %#x already has a downgrade in progress"
         block);
  let e = { block; target; deferred; remaining; queued = [] } in
  Hashtbl.replace t block e;
  e

let remove t e = Hashtbl.remove t e.block
let count t = Hashtbl.length t
let iter f t = Hashtbl.iter (fun _ e -> f e) t
let clear t = Hashtbl.reset t
let push_queued e ~src m = e.queued <- (src, m) :: e.queued

let take_queued e =
  let q = List.rev e.queued in
  e.queued <- [];
  q
