module Engine = Shasta_sim.Engine
module Image = Shasta_mem.Image
module State_table = Shasta_mem.State_table
module Layout = Shasta_mem.Layout
module Network = Shasta_net.Network

type handle = { m : Machine.t; mutable ran : bool; mutable sched : int * int }

let create cfg = { m = Machine.create cfg; ran = false; sched = (0, 0) }
let config h = h.m.Machine.cfg
let machine h = h.m

let alloc h ?block_size ?home size = Machine.alloc h.m ?block_size ?home size

let alloc_floats h ?block_size ?home n =
  Machine.alloc h.m ?block_size ?home (8 * n)

let place h ~addr ~len ~proc = Machine.place h.m ~addr ~len ~proc
let alloc_lock h = Machine.alloc_lock h.m
let alloc_barrier h = Machine.alloc_barrier h.m

let home_image h addr =
  let block = Machine.block_base h.m addr in
  let home = Machine.home_of_block h.m block in
  h.m.Machine.nodes.(Machine.node_of h.m home).Machine.image

let poke_float h addr v = Image.store_float (home_image h addr) addr v
let poke_int h addr v = Image.store_int (home_image h addr) addr v

(* Scan for a valid copy, preferring an exclusive one. *)
let peek_image h addr =
  let line = Layout.line_of h.m.Machine.layout addr in
  let best = ref None in
  Array.iter
    (fun ns ->
      match (State_table.get ns.Machine.table line, !best) with
      | State_table.Exclusive, _ -> best := Some ns.Machine.image
      | State_table.Shared, None -> best := Some ns.Machine.image
      | State_table.Shared, Some _ | State_table.Invalid, _ -> ())
    h.m.Machine.nodes;
  match !best with
  | Some img -> img
  | None -> invalid_arg "Dsm.peek: no valid copy"

let peek_float h addr = Image.load_float (peek_image h addr) addr
let peek_int h addr = Image.load_int (peek_image h addr) addr

type ctx = { p : Protocol.ctx; mutable in_batch : bool }

let pid ctx = Protocol.pid ctx.p
let nprocs ctx = (Protocol.machine ctx.p).Machine.cfg.Config.nprocs
let prng ctx = (Protocol.proc_state ctx.p).Machine.prng

(* Inline-check costs vanish when checks are disabled (the "original
   sequential code" baseline of Table 1). *)
let ccost ctx c =
  if (Protocol.machine ctx.p).Machine.cfg.Config.checks_enabled then c else 0

(* Per-pair run-ahead lookahead (see Engine.run): processors in the same
   coherence node share memory images, state tables and miss entries, so
   their interactions carry no minimum delay. Any other pair can only
   interact through the network, whose cheapest message costs the
   zero-byte transfer time of their link class (intra-node queues for
   processors colocated on a physical node, the remote link
   otherwise). *)
let lookahead_matrix m =
  let cfg = m.Machine.cfg in
  let n = cfg.Config.nprocs in
  Array.init (n * n) (fun k ->
      let p = k / n and q = k mod n in
      if p = q || Machine.node_of m p = Machine.node_of m q then 0
      else
        let same_node = Shasta_net.Topology.same_node m.Machine.topo p q in
        Shasta_net.Link.transfer_cycles cfg.Config.link ~same_node ~size:0)

let run ?(run_ahead = true) h body =
  assert (not h.ran);
  h.ran <- true;
  let cfg = h.m.Machine.cfg in
  let outcome =
    Engine.run ~nprocs:cfg.Config.nprocs ~max_cycles:cfg.Config.max_cycles
      ~run_ahead
      ~arrival_hint:(Machine.earliest_arrival h.m)
      ~lookahead:(lookahead_matrix h.m)
      (fun eng ->
        let p = Protocol.make_ctx h.m eng in
        let ctx = { p; in_batch = false } in
        body ctx;
        Protocol.drain p)
  in
  h.sched <- (outcome.Engine.yields_performed, outcome.Engine.yields_elided)

let run_controlled ~choose h body =
  assert (not h.ran);
  h.ran <- true;
  let cfg = h.m.Machine.cfg in
  let outcome =
    Engine.run_controlled ~nprocs:cfg.Config.nprocs
      ~max_cycles:cfg.Config.max_cycles ~choose
      (fun eng ->
        let p = Protocol.make_ctx h.m eng in
        let ctx = { p; in_batch = false } in
        body ctx;
        Protocol.drain p)
  in
  h.sched <- (outcome.Engine.yields_performed, outcome.Engine.yields_elided)

let sched_counts h = h.sched

let now ctx = Engine.now (Protocol.engine_proc ctx.p)
let add_observer h o = Machine.add_observer h.m o

(* Application-level access hooks for the happens-before race detector:
   fired once per simulated load/store after the access completes, never
   charging cycles (see Observer). *)
let obs_load ctx ~addr ~len =
  match (Protocol.machine ctx.p).Machine.observer with
  | None -> ()
  | Some o -> o.Observer.on_load ~proc:(pid ctx) ~addr ~len ~now:(now ctx)

let obs_store ctx ~addr ~len =
  match (Protocol.machine ctx.p).Machine.observer with
  | None -> ()
  | Some o -> o.Observer.on_store ~proc:(pid ctx) ~addr ~len ~now:(now ctx)

let compute ctx n =
  Protocol.charge ctx.p n;
  if not ctx.in_batch then Protocol.op_tick ctx.p

let check_addr ctx addr =
  let layout = (Protocol.machine ctx.p).Machine.layout in
  assert (Layout.valid_addr layout addr && addr land 7 = 0)

(* Flag-based load check: the loaded value doubles as the state check.
   Equality with the flag pattern sends us into the miss handler, which
   distinguishes real misses from false misses. *)
let load64 ctx ~float_load addr =
  check_addr ctx addr;
  assert (not ctx.in_batch);
  Protocol.op_tick ctx.p;
  let t = Protocol.timing ctx.p in
  let cost =
    if not float_load then t.Timing.load_check_flag
    else if Protocol.is_smp ctx.p then t.Timing.load_check_flag_float_smp
    else t.Timing.load_check_flag_float_base
  in
  Protocol.charge ctx.p (ccost ctx cost);
  (Protocol.proc_state ctx.p).Machine.stats.Stats.checks <-
    (Protocol.proc_state ctx.p).Machine.stats.Stats.checks + 1;
  let image = Protocol.node_image ctx.p in
  let rec go () =
    let v = Image.load64 image addr in
    if not (Image.is_flag64 v) then v
    else
      match Protocol.load_miss ctx.p ~addr with
      | `Valid -> Image.load64 image addr
      | `Retry ->
        Protocol.charge ctx.p (ccost ctx t.Timing.load_check_flag);
        go ()
  in
  let v = go () in
  obs_load ctx ~addr ~len:8;
  v

let store64 ctx addr v =
  check_addr ctx addr;
  assert (not ctx.in_batch);
  Protocol.op_tick ctx.p;
  let t = Protocol.timing ctx.p in
  Protocol.charge ctx.p (ccost ctx t.Timing.store_check);
  (Protocol.proc_state ctx.p).Machine.stats.Stats.checks <-
    (Protocol.proc_state ctx.p).Machine.stats.Stats.checks + 1;
  let table = Protocol.check_table ctx.p in
  let layout = (Protocol.machine ctx.p).Machine.layout in
  let line = Layout.line_of layout addr in
  (if State_table.get table line = State_table.Exclusive then
     Image.store64 (Protocol.node_image ctx.p) addr v
   else
     Protocol.store_miss ctx.p ~addr ~len:8 (fun img -> Image.store64 img addr v));
  obs_store ctx ~addr ~len:8

let load_float ctx addr = Int64.float_of_bits (load64 ctx ~float_load:true addr)
let store_float ctx addr v = store64 ctx addr (Int64.bits_of_float v)
let load_int ctx addr = Int64.to_int (load64 ctx ~float_load:false addr)
let store_int ctx addr v = store64 ctx addr (Int64.of_int v)

type access = R | W

let batch ctx ranges f =
  assert (not ctx.in_batch);
  Protocol.op_tick ctx.p;
  let ranges =
    List.map
      (fun (addr, len, a) ->
        check_addr ctx addr;
        ( addr,
          len,
          match a with R -> State_table.Shared | W -> State_table.Exclusive ))
      ranges
  in
  let token = Protocol.batch_begin ctx.p ranges in
  ctx.in_batch <- true;
  Fun.protect
    ~finally:(fun () ->
      ctx.in_batch <- false;
      Protocol.batch_end ctx.p token)
    f

module Batch = struct
  let raw_cost = 1

  let load_float ctx addr =
    assert (ctx.in_batch);
    Protocol.charge ctx.p raw_cost;
    let v = Image.load_float (Protocol.node_image ctx.p) addr in
    obs_load ctx ~addr ~len:8;
    v

  let store_float ctx addr v =
    assert (ctx.in_batch);
    Protocol.charge ctx.p raw_cost;
    Image.store_float (Protocol.node_image ctx.p) addr v;
    obs_store ctx ~addr ~len:8

  let load_int ctx addr =
    assert (ctx.in_batch);
    Protocol.charge ctx.p raw_cost;
    let v = Image.load_int (Protocol.node_image ctx.p) addr in
    obs_load ctx ~addr ~len:8;
    v

  let store_int ctx addr v =
    assert (ctx.in_batch);
    Protocol.charge ctx.p raw_cost;
    Image.store_int (Protocol.node_image ctx.p) addr v;
    obs_store ctx ~addr ~len:8
end

let lock ctx l =
  assert (not ctx.in_batch);
  Protocol.lock_acquire ctx.p l

let unlock ctx l =
  assert (not ctx.in_batch);
  Protocol.lock_release ctx.p l

let barrier ctx b =
  assert (not ctx.in_batch);
  Protocol.barrier_wait ctx.p b

let parallel_cycles h = Machine.parallel_cycles h.m

let proc_stats h = Array.map (fun p -> p.Machine.stats) h.m.Machine.procs

let aggregate_stats h = Stats.aggregate (Array.to_list (proc_stats h))

let downgrade_messages h =
  Array.fold_left
    (fun acc p -> acc + p.Machine.stats.Stats.downgrades_sent)
    0 h.m.Machine.procs

let messages_local h = Network.sent_local h.m.Machine.net
let messages_remote h = Network.sent_remote h.m.Machine.net
