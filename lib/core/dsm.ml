module Engine = Shasta_sim.Engine
module Image = Shasta_mem.Image
module State_table = Shasta_mem.State_table
module Layout = Shasta_mem.Layout
module Network = Shasta_net.Network

type handle = {
  m : Machine.t;
  mutable ran : bool;
  mutable sched : int * int;
  mutable shards_used : int;
  mutable shard_info : Engine.shard_stats option;
}

let create cfg =
  {
    m = Machine.create cfg;
    ran = false;
    sched = (0, 0);
    shards_used = 0;
    shard_info = None;
  }
let config h = h.m.Machine.cfg
let machine h = h.m

let alloc h ?block_size ?home size = Machine.alloc h.m ?block_size ?home size

let alloc_floats h ?block_size ?home n =
  Machine.alloc h.m ?block_size ?home (8 * n)

let place h ~addr ~len ~proc = Machine.place h.m ~addr ~len ~proc
let alloc_lock h = Machine.alloc_lock h.m
let alloc_barrier h = Machine.alloc_barrier h.m

let home_image h addr =
  let block = Machine.block_base h.m addr in
  let home = Machine.home_of_block h.m block in
  h.m.Machine.nodes.(Machine.node_of h.m home).Machine.image

let poke_float h addr v = Image.store_float (home_image h addr) addr v
let poke_int h addr v = Image.store_int (home_image h addr) addr v

(* Scan for a valid copy, preferring an exclusive one. *)
let peek_image h addr =
  let line = Layout.line_of h.m.Machine.layout addr in
  let best = ref None in
  Array.iter
    (fun ns ->
      match (State_table.get ns.Machine.table line, !best) with
      | State_table.Exclusive, _ -> best := Some ns.Machine.image
      | State_table.Shared, None -> best := Some ns.Machine.image
      | State_table.Shared, Some _ | State_table.Invalid, _ -> ())
    h.m.Machine.nodes;
  match !best with
  | Some img -> img
  | None -> invalid_arg "Dsm.peek: no valid copy"

let peek_float h addr = Image.load_float (peek_image h addr) addr
let peek_int h addr = Image.load_int (peek_image h addr) addr

type ctx = { p : Protocol.ctx; mutable in_batch : bool }

let pid ctx = Protocol.pid ctx.p
let nprocs ctx = (Protocol.machine ctx.p).Machine.cfg.Config.nprocs
let prng ctx = (Protocol.proc_state ctx.p).Machine.prng

(* Inline-check costs vanish when checks are disabled (the "original
   sequential code" baseline of Table 1). *)
let ccost ctx c =
  if (Protocol.machine ctx.p).Machine.cfg.Config.checks_enabled then c else 0

(* Per-pair run-ahead lookahead (see Engine.run): processors in the same
   coherence node share memory images, state tables and miss entries, so
   their interactions carry no minimum delay. Any other pair can only
   interact through the network, whose cheapest message costs the
   zero-byte transfer time of their link class (intra-node queues for
   processors colocated on a physical node, the remote link
   otherwise). *)
let lookahead_matrix m =
  let cfg = m.Machine.cfg in
  let n = cfg.Config.nprocs in
  Array.init (n * n) (fun k ->
      let p = k / n and q = k mod n in
      if p = q || Machine.node_of m p = Machine.node_of m q then 0
      else
        let same_node = Shasta_net.Topology.same_node m.Machine.topo p q in
        Shasta_net.Link.transfer_cycles cfg.Config.link ~same_node ~size:0)

(* How many shards a run actually uses. The partition unit is the
   coherence node (procs sharing a node share images/tables — zero
   lookahead — and must stay on one domain; distinct nodes interact only
   through the network, whose cheapest message satisfies the sharded
   engine's lookahead >= 1 requirement). Forced to 1 when:
   - [run_ahead] is off (the sharded loop is a run-ahead loop);
   - fault injection is on (an injected protocol bug may wedge the run
     before the post-join sweep that replaces the per-barrier sweep);
   - sanitize >= 2 (the happens-before race detector consumes the merged
     event stream, which is only virtual-time-ordered sequentially). *)
let resolve_shards cfg ~run_ahead ~requested =
  let nnodes = Config.nnodes cfg in
  let req =
    match requested with Some n -> n | None -> cfg.Config.shards
  in
  let req = if req = 0 then Domain.recommended_domain_count () else req in
  if
    (not run_ahead) || cfg.Config.fault <> None || cfg.Config.sanitize >= 2
  then 1
  else max 1 (min req nnodes)

let run ?(run_ahead = true) ?shards h body =
  assert (not h.ran);
  h.ran <- true;
  let cfg = h.m.Machine.cfg in
  let m = h.m in
  let shards = resolve_shards cfg ~run_ahead ~requested:shards in
  h.shards_used <- shards;
  let make_body eng =
    let p = Protocol.make_ctx m eng in
    let ctx = { p; in_batch = false } in
    body ctx;
    Protocol.drain p
  in
  if shards = 1 then begin
    let outcome =
      Engine.run ~nprocs:cfg.Config.nprocs ~max_cycles:cfg.Config.max_cycles
        ~run_ahead
        ~arrival_hint:(Machine.earliest_arrival m)
        ~lookahead:(lookahead_matrix m) make_body
    in
    h.sched <- (outcome.Engine.yields_performed, outcome.Engine.yields_elided)
  end
  else begin
    let nnodes = Config.nnodes cfg in
    let shard_of_node n = n * shards / nnodes in
    let shard_of p = shard_of_node (Machine.node_of m p) in
    m.Machine.sharded <- true;
    (match m.Machine.observer with
    | None -> ()
    | Some o ->
      m.Machine.observer <- Some (Observer.synchronized (Mutex.create ()) o));
    Network.set_sharding m.Machine.net ~shards ~shard_of;
    let shard_procs = Array.make shards [] in
    for p = cfg.Config.nprocs - 1 downto 0 do
      shard_procs.(shard_of p) <- p :: shard_procs.(shard_of p)
    done;
    let shard_nodes = Array.make shards [] in
    for n = nnodes - 1 downto 0 do
      shard_nodes.(shard_of_node n) <- n :: shard_nodes.(shard_of_node n)
    done;
    let outcome, stats =
      Engine.run_sharded ~nprocs:cfg.Config.nprocs ~shards ~shard_of
        ~max_cycles:cfg.Config.max_cycles
        ~arrival_hint:(Machine.earliest_arrival m)
        ~lookahead:(lookahead_matrix m)
        ~drain:(fun s -> Network.drain_shard m.Machine.net ~shard:s)
        ~cross_sent:(fun () -> Network.cross_sent m.Machine.net)
        ~quiet:(fun s ->
          Machine.shard_quiet m ~procs:shard_procs.(s) ~nodes:shard_nodes.(s))
        ~on_quiesced:(fun () -> Atomic.set m.Machine.quiesced true)
        ~clock:Unix.gettimeofday
          (* Parked-shard backoff: spin briefly (cross-shard hand-offs
             are usually tens of cycles away), then yield the core to
             the OS scheduler. Crucial when shards outnumber host cores
             — a spinning parked shard would otherwise eat the working
             shard's whole timeslice between hand-offs. Host-time
             policy only; virtual time never sees it. *)
        ~park:(fun consec ->
          if consec < 200 then Domain.cpu_relax () else Unix.sleepf 50e-6)
        make_body
    in
    m.Machine.sharded <- false;
    h.sched <- (outcome.Engine.yields_performed, outcome.Engine.yields_elided);
    h.shard_info <- Some stats;
    (* The per-barrier sanitizer sweep is skipped while sharded (it
       reads every shard's state); make up for it with one sweep over
       the joined, quiescent machine. *)
    if cfg.Config.sanitize > 0 then
      match Inspect.report m with
      | [] -> ()
      | vs -> raise (Inspect.Violation vs)
  end

let run_controlled ~choose h body =
  assert (not h.ran);
  h.ran <- true;
  let cfg = h.m.Machine.cfg in
  let outcome =
    Engine.run_controlled ~nprocs:cfg.Config.nprocs
      ~max_cycles:cfg.Config.max_cycles ~choose
      (fun eng ->
        let p = Protocol.make_ctx h.m eng in
        let ctx = { p; in_batch = false } in
        body ctx;
        Protocol.drain p)
  in
  h.sched <- (outcome.Engine.yields_performed, outcome.Engine.yields_elided)

let sched_counts h = h.sched

let now ctx = Engine.now (Protocol.engine_proc ctx.p)
let add_observer h o = Machine.add_observer h.m o

(* Application-level access hooks for the happens-before race detector:
   fired once per simulated load/store after the access completes, never
   charging cycles (see Observer). *)
let obs_load ctx ~addr ~len =
  match (Protocol.machine ctx.p).Machine.observer with
  | None -> ()
  | Some o -> o.Observer.on_load ~proc:(pid ctx) ~addr ~len ~now:(now ctx)

let obs_store ctx ~addr ~len =
  match (Protocol.machine ctx.p).Machine.observer with
  | None -> ()
  | Some o -> o.Observer.on_store ~proc:(pid ctx) ~addr ~len ~now:(now ctx)

let compute ctx n =
  Protocol.charge ctx.p n;
  if not ctx.in_batch then Protocol.op_tick ctx.p

let check_addr ctx addr =
  let layout = (Protocol.machine ctx.p).Machine.layout in
  assert (Layout.valid_addr layout addr && addr land 7 = 0)

(* Flag-based load check: the loaded value doubles as the state check.
   Equality with the flag pattern sends us into the miss handler, which
   distinguishes real misses from false misses. *)
let load64 ctx ~float_load addr =
  check_addr ctx addr;
  assert (not ctx.in_batch);
  Protocol.op_tick ctx.p;
  let t = Protocol.timing ctx.p in
  let cost =
    if not float_load then t.Timing.load_check_flag
    else if Protocol.is_smp ctx.p then t.Timing.load_check_flag_float_smp
    else t.Timing.load_check_flag_float_base
  in
  Protocol.charge ctx.p (ccost ctx cost);
  (Protocol.proc_state ctx.p).Machine.stats.Stats.checks <-
    (Protocol.proc_state ctx.p).Machine.stats.Stats.checks + 1;
  let image = Protocol.node_image ctx.p in
  let rec go () =
    let v = Image.load64 image addr in
    if not (Image.is_flag64 v) then v
    else
      match Protocol.load_miss ctx.p ~addr with
      | `Valid -> Image.load64 image addr
      | `Retry ->
        Protocol.charge ctx.p (ccost ctx t.Timing.load_check_flag);
        go ()
  in
  let v = go () in
  obs_load ctx ~addr ~len:8;
  v

let store64 ctx addr v =
  check_addr ctx addr;
  assert (not ctx.in_batch);
  Protocol.op_tick ctx.p;
  let t = Protocol.timing ctx.p in
  Protocol.charge ctx.p (ccost ctx t.Timing.store_check);
  (Protocol.proc_state ctx.p).Machine.stats.Stats.checks <-
    (Protocol.proc_state ctx.p).Machine.stats.Stats.checks + 1;
  let table = Protocol.check_table ctx.p in
  let layout = (Protocol.machine ctx.p).Machine.layout in
  let line = Layout.line_of layout addr in
  (if State_table.get table line = State_table.Exclusive then
     Image.store64 (Protocol.node_image ctx.p) addr v
   else
     Protocol.store_miss ctx.p ~addr ~len:8 (fun img -> Image.store64 img addr v));
  obs_store ctx ~addr ~len:8

let load_float ctx addr = Int64.float_of_bits (load64 ctx ~float_load:true addr)
let store_float ctx addr v = store64 ctx addr (Int64.bits_of_float v)
let load_int ctx addr = Int64.to_int (load64 ctx ~float_load:false addr)
let store_int ctx addr v = store64 ctx addr (Int64.of_int v)

type access = R | W

let batch ctx ranges f =
  assert (not ctx.in_batch);
  Protocol.op_tick ctx.p;
  let ranges =
    List.map
      (fun (addr, len, a) ->
        check_addr ctx addr;
        ( addr,
          len,
          match a with R -> State_table.Shared | W -> State_table.Exclusive ))
      ranges
  in
  let token = Protocol.batch_begin ctx.p ranges in
  ctx.in_batch <- true;
  Fun.protect
    ~finally:(fun () ->
      ctx.in_batch <- false;
      Protocol.batch_end ctx.p token)
    f

module Batch = struct
  let raw_cost = 1

  let load_float ctx addr =
    assert (ctx.in_batch);
    Protocol.charge ctx.p raw_cost;
    let v = Image.load_float (Protocol.node_image ctx.p) addr in
    obs_load ctx ~addr ~len:8;
    v

  let store_float ctx addr v =
    assert (ctx.in_batch);
    Protocol.charge ctx.p raw_cost;
    Image.store_float (Protocol.node_image ctx.p) addr v;
    obs_store ctx ~addr ~len:8

  let load_int ctx addr =
    assert (ctx.in_batch);
    Protocol.charge ctx.p raw_cost;
    let v = Image.load_int (Protocol.node_image ctx.p) addr in
    obs_load ctx ~addr ~len:8;
    v

  let store_int ctx addr v =
    assert (ctx.in_batch);
    Protocol.charge ctx.p raw_cost;
    Image.store_int (Protocol.node_image ctx.p) addr v;
    obs_store ctx ~addr ~len:8
end

(* Access programs (§3.4.1 batched checks taken to their limit): a
   per-block access sequence compiled once into a flat int array and
   interpreted in a tight loop, replacing per-access closure dispatch on
   the batch hit path. Two interpreters: with an observer installed the
   per-op loop charges and fires hooks exactly as the equivalent [Batch]
   calls would (cycle- and event-identical); without one, memory traffic
   runs back-to-back and the whole program's cycles are charged in one
   [Protocol.charge] — same total, same virtual finish time, no
   mid-program scheduling points. The fusion leans on the batch
   contract: nothing may race with the batched ranges for the batch's
   duration, so nobody can observe the intermediate timing. *)
module Prog = struct
  type t = { code : int array; regs : float array }

  (* Opcodes, stride 4: op, a, b, c. [b] selects the base address bound
     at [run] time (0 -> base0, 1 -> base1); [c] is a byte offset. *)
  let op_load = 0 (* regs.(a) <- float at base(b) + c *)
  let op_store = 1 (* float at base(b) + c <- regs.(a) *)
  let op_fms = 2 (* regs.(a) <- regs.(a) -. s *. regs.(b) *)
  let op_charge = 3 (* charge a cycles *)

  let fms_row ~len ~cost =
    (* dst[c] <- dst[c] - s * src[c] for c in [0, len): the daxpy inner
       row of blocked LU. Ops are emitted in the evaluation order of the
       closure formulation (src load, dst load, multiply-subtract, dst
       store, flop charge) so the observed interpreter replays its event
       stream exactly. *)
    let code = Array.make (len * 20) 0 in
    let k = ref 0 in
    let emit op a b c =
      code.(!k) <- op;
      code.(!k + 1) <- a;
      code.(!k + 2) <- b;
      code.(!k + 3) <- c;
      k := !k + 4
    in
    for j = 0 to len - 1 do
      let off = 8 * j in
      emit op_load 0 1 off;
      emit op_load 1 0 off;
      emit op_fms 1 0 0;
      emit op_store 1 0 off;
      emit op_charge cost 0 0
    done;
    { code; regs = Array.make 2 0.0 }

  let run ctx t ~s ~base0 ~base1 =
    assert (ctx.in_batch);
    let code = t.code and regs = t.regs in
    let n = Array.length code in
    match (Protocol.machine ctx.p).Machine.observer with
    | None ->
      let img = Protocol.node_image ctx.p in
      let total = ref 0 in
      let k = ref 0 in
      while !k < n do
        (match code.(!k) with
        | 0 ->
          let base = if code.(!k + 2) = 0 then base0 else base1 in
          regs.(code.(!k + 1)) <- Image.load_float img (base + code.(!k + 3));
          total := !total + Batch.raw_cost
        | 1 ->
          let base = if code.(!k + 2) = 0 then base0 else base1 in
          Image.store_float img (base + code.(!k + 3)) regs.(code.(!k + 1));
          total := !total + Batch.raw_cost
        | 2 -> regs.(code.(!k + 1)) <- regs.(code.(!k + 1)) -. (s *. regs.(code.(!k + 2)))
        | _ -> total := !total + code.(!k + 1))
        ;
        k := !k + 4
      done;
      (* One fused charge; a [Cycle_limit] for a budget exhausted
         mid-program is raised here, at the program's end clock. *)
      Protocol.charge ctx.p !total
    | Some _ ->
      let k = ref 0 in
      while !k < n do
        (match code.(!k) with
        | 0 ->
          let base = if code.(!k + 2) = 0 then base0 else base1 in
          regs.(code.(!k + 1)) <- Batch.load_float ctx (base + code.(!k + 3))
        | 1 ->
          let base = if code.(!k + 2) = 0 then base0 else base1 in
          Batch.store_float ctx (base + code.(!k + 3)) regs.(code.(!k + 1))
        | 2 -> regs.(code.(!k + 1)) <- regs.(code.(!k + 1)) -. (s *. regs.(code.(!k + 2)))
        | _ -> Protocol.charge ctx.p code.(!k + 1));
        k := !k + 4
      done
end

let lock ctx l =
  assert (not ctx.in_batch);
  Protocol.lock_acquire ctx.p l

let unlock ctx l =
  assert (not ctx.in_batch);
  Protocol.lock_release ctx.p l

let barrier ctx b =
  assert (not ctx.in_batch);
  Protocol.barrier_wait ctx.p b

let parallel_cycles h = Machine.parallel_cycles h.m

let proc_stats h = Array.map (fun p -> p.Machine.stats) h.m.Machine.procs

let aggregate_stats h = Stats.aggregate (Array.to_list (proc_stats h))

let downgrade_messages h =
  Array.fold_left
    (fun acc p -> acc + p.Machine.stats.Stats.downgrades_sent)
    0 h.m.Machine.procs

let messages_local h = Network.sent_local h.m.Machine.net
let messages_remote h = Network.sent_remote h.m.Machine.net
let shards_used h = h.shards_used
let shard_stats h = h.shard_info
