module Engine = Shasta_sim.Engine
module Image = Shasta_mem.Image
module State_table = Shasta_mem.State_table
module Layout = Shasta_mem.Layout
module Network = Shasta_net.Network

type handle = {
  m : Machine.t;
  mutable ran : bool;
  mutable sched : int * int;
  mutable shards_used : int;
  mutable shard_info : Engine.shard_stats option;
}

let create cfg =
  {
    m = Machine.create cfg;
    ran = false;
    sched = (0, 0);
    shards_used = 0;
    shard_info = None;
  }
let config h = h.m.Machine.cfg
let machine h = h.m

let alloc h ?block_size ?home size = Machine.alloc h.m ?block_size ?home size

let alloc_floats h ?block_size ?home n =
  Machine.alloc h.m ?block_size ?home (8 * n)

let place h ~addr ~len ~proc = Machine.place h.m ~addr ~len ~proc
let alloc_lock h = Machine.alloc_lock h.m
let alloc_barrier h = Machine.alloc_barrier h.m

let home_image h addr =
  let block = Machine.block_base h.m addr in
  let home = Machine.home_of_block h.m block in
  h.m.Machine.nodes.(Machine.node_of h.m home).Machine.image

let poke_float h addr v = Image.store_float (home_image h addr) addr v
let poke_int h addr v = Image.store_int (home_image h addr) addr v

(* Scan for a valid copy, preferring an exclusive one. The protocol
   keeps at most one Exclusive copy, so the scan can stop at the first
   one it sees; otherwise any Shared copy serves. *)
let peek_image h addr =
  let line = Layout.line_of h.m.Machine.layout addr in
  let nodes = h.m.Machine.nodes in
  let n = Array.length nodes in
  let rec scan i best =
    if i >= n then best
    else
      let ns = nodes.(i) in
      match State_table.get ns.Machine.table line with
      | State_table.Exclusive -> Some ns.Machine.image
      | State_table.Shared ->
        scan (i + 1)
          (match best with None -> Some ns.Machine.image | some -> some)
      | State_table.Invalid -> scan (i + 1) best
  in
  match scan 0 None with
  | Some img -> img
  | None -> invalid_arg "Dsm.peek: no valid copy"

let peek_float h addr = Image.load_float (peek_image h addr) addr
let peek_int h addr = Image.load_int (peek_image h addr) addr

(* The context carries the fast-path machinery alongside the protocol
   handle. [fast] is resolved once per run: the fused inline-check path
   is on only when the configuration asks for it and no observer is
   installed (observers must see every access hook with its exact
   timestamp, which the fused path does not produce). All other fields
   are caches of per-run constants so the hit path touches no
   indirections beyond the context itself.

   [acc] is the deferred-cycle accumulator: the fused hit path banks its
   inline-check and raw-access costs here instead of calling
   [Protocol.charge] per access, and [flush] settles the balance before
   every point where simulated time becomes observable (a poll's
   scheduling point, a miss entering the protocol, synchronization,
   [now], the final drain). Since nothing between two such points can
   observe this processor's clock, every yield happens at exactly the
   virtual time the per-access accounting would have produced — cycles,
   stats and message timings are bit-identical. The one visible
   difference is host-side only: a [Cycle_limit] for a budget exhausted
   mid-run is raised at the flush instead of mid-access, at the same
   virtual cycle the fused [Prog] charge (PR 6) already established as
   the contract. *)
type ctx = {
  p : Protocol.ctx;
  mutable in_batch : bool;
  fast : bool;
  ps : Machine.proc_state;
  st : Stats.t;
  image : Image.t;  (** this processor's node image *)
  ctable : State_table.t;  (** table consulted by inline checks *)
  ntable : State_table.t;  (** node shared table (= [ctable] on Base) *)
  layout : Layout.t;
  smp : bool;
  checks : bool;
  tmg : Timing.t;
  c_load_int : int;  (** inline-check costs, folded to 0 when checks off *)
  c_load_float : int;
  c_store : int;
  c_per_line : int;
  c_per_range : int;
  mutable acc : int;  (** deferred cycles not yet charged *)
  mutable iv_first : int array;  (** scratch: batch range line intervals *)
  mutable iv_last : int array;
}

let make_ctx m p ~fast =
  let cfg = m.Machine.cfg in
  let t = Protocol.timing p in
  let ps = Protocol.proc_state p in
  let checks = cfg.Config.checks_enabled in
  let smp = Protocol.is_smp p in
  let cc c = if checks then c else 0 in
  {
    p;
    in_batch = false;
    fast = fast && cfg.Config.fastpath && m.Machine.observer = None;
    ps;
    st = ps.Machine.stats;
    image = Protocol.node_image p;
    ctable = Protocol.check_table p;
    ntable = m.Machine.nodes.(ps.Machine.node).Machine.table;
    layout = m.Machine.layout;
    smp;
    checks;
    tmg = t;
    c_load_int = cc t.Timing.load_check_flag;
    c_load_float =
      cc
        (if smp then t.Timing.load_check_flag_float_smp
         else t.Timing.load_check_flag_float_base);
    c_store = cc t.Timing.store_check;
    c_per_line =
      cc
        (if smp then t.Timing.batch_check_per_line_smp
         else t.Timing.batch_check_per_line_base);
    c_per_range = cc t.Timing.batch_check_per_range;
    acc = 0;
    iv_first = Array.make 8 0;
    iv_last = Array.make 8 0;
  }

let pid ctx = Protocol.pid ctx.p
let nprocs ctx = (Protocol.machine ctx.p).Machine.cfg.Config.nprocs
let prng ctx = ctx.ps.Machine.prng

(* Inline-check costs vanish when checks are disabled (the "original
   sequential code" baseline of Table 1). *)
let ccost ctx c = if ctx.checks then c else 0

let flush ctx =
  if ctx.acc > 0 then begin
    let c = ctx.acc in
    ctx.acc <- 0;
    Protocol.charge ctx.p c
  end

(* Mirror of [Protocol.op_tick] for the fused path: the accumulator must
   be settled before the poll's scheduling point so the yield (and any
   message handling it triggers) happens at the reference clock. *)
let fast_op_tick ctx =
  let ps = ctx.ps in
  ps.Machine.ops_since_poll <- ps.Machine.ops_since_poll + 1;
  if ps.Machine.ops_since_poll >= ctx.tmg.Timing.poll_interval_ops then begin
    ps.Machine.ops_since_poll <- 0;
    flush ctx;
    if ctx.checks then Protocol.charge ctx.p ctx.tmg.Timing.poll;
    Protocol.poll ctx.p
  end

(* Per-pair run-ahead lookahead (see Engine.run): processors in the same
   coherence node share memory images, state tables and miss entries, so
   their interactions carry no minimum delay. Any other pair can only
   interact through the network, whose cheapest message costs the
   zero-byte transfer time of their link class (intra-node queues for
   processors colocated on a physical node, the remote link
   otherwise). *)
let lookahead_matrix m =
  let cfg = m.Machine.cfg in
  let n = cfg.Config.nprocs in
  Array.init (n * n) (fun k ->
      let p = k / n and q = k mod n in
      if p = q || Machine.node_of m p = Machine.node_of m q then 0
      else
        let same_node = Shasta_net.Topology.same_node m.Machine.topo p q in
        Shasta_net.Link.transfer_cycles cfg.Config.link ~same_node ~size:0)

(* How many shards a run actually uses. The partition unit is the
   coherence node (procs sharing a node share images/tables — zero
   lookahead — and must stay on one domain; distinct nodes interact only
   through the network, whose cheapest message satisfies the sharded
   engine's lookahead >= 1 requirement). Forced to 1 when:
   - [run_ahead] is off (the sharded loop is a run-ahead loop);
   - fault injection is on (an injected protocol bug may wedge the run
     before the post-join sweep that replaces the per-barrier sweep);
   - sanitize >= 2 (the happens-before race detector consumes the merged
     event stream, which is only virtual-time-ordered sequentially);
   - checkpointing is on (the checkpoint observer snapshots whole-node
     slices, which must observe a virtual-time-consistent machine). *)
let resolve_shards cfg ~run_ahead ~requested =
  let nnodes = Config.nnodes cfg in
  let req =
    match requested with Some n -> n | None -> cfg.Config.shards
  in
  let req = if req = 0 then Domain.recommended_domain_count () else req in
  if
    (not run_ahead) || cfg.Config.fault <> None || cfg.Config.sanitize >= 2
    || cfg.Config.ckpt > 0
  then 1
  else max 1 (min req nnodes)

let run ?(run_ahead = true) ?shards ?(events = []) h body =
  assert (not h.ran);
  h.ran <- true;
  let cfg = h.m.Machine.cfg in
  let m = h.m in
  let shards = resolve_shards cfg ~run_ahead ~requested:shards in
  (* Crash events mutate whole-machine state atomically at a scheduler
     decision point; only the sequential scheduler has one. *)
  let shards = if events <> [] then 1 else shards in
  h.shards_used <- shards;
  let make_body eng =
    let p = Protocol.make_ctx m eng in
    let ctx = make_ctx m p ~fast:true in
    body ctx;
    flush ctx;
    Protocol.drain p
  in
  if shards = 1 then begin
    let outcome =
      Engine.run ~nprocs:cfg.Config.nprocs ~max_cycles:cfg.Config.max_cycles
        ~run_ahead
        ~arrival_hint:(Machine.earliest_arrival m)
        ~lookahead:(lookahead_matrix m) ~events make_body
    in
    h.sched <- (outcome.Engine.yields_performed, outcome.Engine.yields_elided)
  end
  else begin
    let nnodes = Config.nnodes cfg in
    let shard_of_node n = n * shards / nnodes in
    let shard_of p = shard_of_node (Machine.node_of m p) in
    m.Machine.sharded <- true;
    (match m.Machine.observer with
    | None -> ()
    | Some o ->
      m.Machine.observer <- Some (Observer.synchronized (Mutex.create ()) o));
    Network.set_sharding m.Machine.net ~shards ~shard_of;
    let shard_procs = Array.make shards [] in
    for p = cfg.Config.nprocs - 1 downto 0 do
      shard_procs.(shard_of p) <- p :: shard_procs.(shard_of p)
    done;
    let shard_nodes = Array.make shards [] in
    for n = nnodes - 1 downto 0 do
      shard_nodes.(shard_of_node n) <- n :: shard_nodes.(shard_of_node n)
    done;
    let outcome, stats =
      Engine.run_sharded ~nprocs:cfg.Config.nprocs ~shards ~shard_of
        ~max_cycles:cfg.Config.max_cycles
        ~arrival_hint:(Machine.earliest_arrival m)
        ~lookahead:(lookahead_matrix m)
        ~drain:(fun s -> Network.drain_shard m.Machine.net ~shard:s)
        ~cross_sent:(fun () -> Network.cross_sent m.Machine.net)
        ~quiet:(fun s ->
          Machine.shard_quiet m ~procs:shard_procs.(s) ~nodes:shard_nodes.(s))
        ~on_quiesced:(fun () -> Atomic.set m.Machine.quiesced true)
        ~clock:Unix.gettimeofday
          (* Parked-shard backoff: spin briefly (cross-shard hand-offs
             are usually tens of cycles away), then yield the core to
             the OS scheduler. Crucial when shards outnumber host cores
             — a spinning parked shard would otherwise eat the working
             shard's whole timeslice between hand-offs. Host-time
             policy only; virtual time never sees it. *)
        ~park:(fun consec ->
          if consec < 200 then Domain.cpu_relax () else Unix.sleepf 50e-6)
        make_body
    in
    m.Machine.sharded <- false;
    h.sched <- (outcome.Engine.yields_performed, outcome.Engine.yields_elided);
    h.shard_info <- Some stats;
    (* The per-barrier sanitizer sweep is skipped while sharded (it
       reads every shard's state); make up for it with one sweep over
       the joined, quiescent machine. *)
    if cfg.Config.sanitize > 0 then
      match Inspect.report m with
      | [] -> ()
      | vs -> raise (Inspect.Violation vs)
  end

let run_controlled ?(events = []) ~choose h body =
  assert (not h.ran);
  h.ran <- true;
  let cfg = h.m.Machine.cfg in
  let outcome =
    Engine.run_controlled ~nprocs:cfg.Config.nprocs
      ~max_cycles:cfg.Config.max_cycles ~events ~choose
      (fun eng ->
        let p = Protocol.make_ctx h.m eng in
        (* The controlled scheduler explores interleavings at every
           scheduling point; keep the reference per-access path so it
           sees all of them. *)
        let ctx = make_ctx h.m p ~fast:false in
        body ctx;
        flush ctx;
        Protocol.drain p)
  in
  h.sched <- (outcome.Engine.yields_performed, outcome.Engine.yields_elided)

let sched_counts h = h.sched

let now ctx =
  flush ctx;
  Engine.now (Protocol.engine_proc ctx.p)

let add_observer h o = Machine.add_observer h.m o

(* Application-level access hooks for the happens-before race detector:
   fired once per simulated load/store after the access completes, never
   charging cycles (see Observer). Only reachable on the reference path
   ([fast] forces itself off when an observer is installed). *)
let obs_load ctx ~addr ~len =
  match (Protocol.machine ctx.p).Machine.observer with
  | None -> ()
  | Some o -> o.Observer.on_load ~proc:(pid ctx) ~addr ~len ~now:(now ctx)

let obs_store ctx ~addr ~len =
  match (Protocol.machine ctx.p).Machine.observer with
  | None -> ()
  | Some o -> o.Observer.on_store ~proc:(pid ctx) ~addr ~len ~now:(now ctx)

let compute ctx n =
  if ctx.fast then begin
    ctx.acc <- ctx.acc + n;
    if not ctx.in_batch then fast_op_tick ctx
  end
  else begin
    Protocol.charge ctx.p n;
    if not ctx.in_batch then Protocol.op_tick ctx.p
  end

let check_addr ctx addr =
  assert (Layout.valid_addr ctx.layout addr && addr land 7 = 0)

(* Flag comparison constants for the type-specialized fast paths (no
   int64 round trip per access): the flag pattern is neither a NaN nor
   ±0.0, so float equality against [flag_float] coincides exactly with
   bit equality against the flag — including the reference's treatment
   of application data that happens to equal the pattern (a false miss).
   Bits 63 and 62 of the pattern agree, so [Int64.to_int] sign-extends
   back to the full pattern and int equality against [flag_int]
   coincides with bit equality too. *)
let flag_float = Int64.float_of_bits Image.invalid_flag64
let flag_int = Int64.to_int Image.invalid_flag64

(* Resolve a flag hit the reference way: re-load, enter the miss
   handler, retry on transient outcomes. Shared by the reference load
   and the fused load's fallback. *)
let rec load_flag_loop ctx addr =
  let v = Image.load64 ctx.image addr in
  if not (Image.is_flag64 v) then v
  else
    match Protocol.load_miss ctx.p ~addr with
    | `Valid -> Image.load64 ctx.image addr
    | `Retry ->
      Protocol.charge ctx.p (ccost ctx ctx.tmg.Timing.load_check_flag);
      load_flag_loop ctx addr

(* Flag-based load check: the loaded value doubles as the state check.
   Equality with the flag pattern sends us into the miss handler, which
   distinguishes real misses from false misses. *)
let load64_ref ctx ~float_load addr =
  check_addr ctx addr;
  assert (not ctx.in_batch);
  let st = ctx.st in
  Protocol.op_tick ctx.p;
  Protocol.charge ctx.p
    (if float_load then ctx.c_load_float else ctx.c_load_int);
  st.Stats.checks <- st.Stats.checks + 1;
  st.Stats.accesses <- st.Stats.accesses + 1;
  let v = load_flag_loop ctx addr in
  obs_load ctx ~addr ~len:8;
  v

let store64_ref ctx addr v =
  check_addr ctx addr;
  assert (not ctx.in_batch);
  let st = ctx.st in
  Protocol.op_tick ctx.p;
  Protocol.charge ctx.p ctx.c_store;
  st.Stats.checks <- st.Stats.checks + 1;
  st.Stats.accesses <- st.Stats.accesses + 1;
  let line = Layout.line_of ctx.layout addr in
  (if State_table.get ctx.ctable line = State_table.Exclusive then
     Image.store64 ctx.image addr v
   else
     Protocol.store_miss ctx.p ~addr ~len:8 (fun img ->
         Image.store64 img addr v));
  obs_store ctx ~addr ~len:8

(* Fused-path bookkeeping shared by every checked access: poll tick
   first (exactly where the reference ticks), then bank the inline-check
   cost. *)
let[@inline] fast_access_prologue ctx cost =
  fast_op_tick ctx;
  ctx.acc <- ctx.acc + cost;
  let st = ctx.st in
  st.Stats.checks <- st.Stats.checks + 1;
  st.Stats.accesses <- st.Stats.accesses + 1

let load_float ctx addr =
  if ctx.fast then begin
    check_addr ctx addr;
    assert (not ctx.in_batch);
    fast_access_prologue ctx ctx.c_load_float;
    let v = Image.load_float ctx.image addr in
    if v <> flag_float then begin
      ctx.st.Stats.fast_hits <- ctx.st.Stats.fast_hits + 1;
      v
    end
    else begin
      flush ctx;
      Int64.float_of_bits (load_flag_loop ctx addr)
    end
  end
  else Int64.float_of_bits (load64_ref ctx ~float_load:true addr)

let load_int ctx addr =
  if ctx.fast then begin
    check_addr ctx addr;
    assert (not ctx.in_batch);
    fast_access_prologue ctx ctx.c_load_int;
    let v = Image.load_int ctx.image addr in
    if v <> flag_int then begin
      ctx.st.Stats.fast_hits <- ctx.st.Stats.fast_hits + 1;
      v
    end
    else begin
      flush ctx;
      Int64.to_int (load_flag_loop ctx addr)
    end
  end
  else Int64.to_int (load64_ref ctx ~float_load:false addr)

(* The store check needs clean Exclusive: the base state alone is what
   the reference consults, but a reference store hit cannot coexist with
   transient markers on this line's byte anyway, and testing the whole
   byte keeps this a single compare. *)
let[@inline] fast_store_hit ctx addr =
  let line = Layout.line_of ctx.layout addr in
  State_table.clean_geq ctx.ctable line State_table.Exclusive

let store_float ctx addr v =
  if ctx.fast then begin
    check_addr ctx addr;
    assert (not ctx.in_batch);
    fast_access_prologue ctx ctx.c_store;
    if fast_store_hit ctx addr then begin
      ctx.st.Stats.fast_hits <- ctx.st.Stats.fast_hits + 1;
      Image.store_float ctx.image addr v
    end
    else begin
      flush ctx;
      let line = Layout.line_of ctx.layout addr in
      if State_table.get ctx.ctable line = State_table.Exclusive then
        Image.store_float ctx.image addr v
      else
        Protocol.store_miss ctx.p ~addr ~len:8 (fun img ->
            Image.store_float img addr v)
    end
  end
  else store64_ref ctx addr (Int64.bits_of_float v)

let store_int ctx addr v =
  if ctx.fast then begin
    check_addr ctx addr;
    assert (not ctx.in_batch);
    fast_access_prologue ctx ctx.c_store;
    if fast_store_hit ctx addr then begin
      ctx.st.Stats.fast_hits <- ctx.st.Stats.fast_hits + 1;
      Image.store_int ctx.image addr v
    end
    else begin
      flush ctx;
      let line = Layout.line_of ctx.layout addr in
      if State_table.get ctx.ctable line = State_table.Exclusive then
        Image.store_int ctx.image addr v
      else
        Protocol.store_miss ctx.p ~addr ~len:8 (fun img ->
            Image.store_int img addr v)
    end
  end
  else store64_ref ctx addr (Int64.of_int v)

type access = R | W

(* Reference batch window: collect the declared ranges, enter the
   protocol's batch machinery (mark lines, fetch what's missing,
   register write pieces), run the body, then unwind (replay pieces
   whose blocks lost exclusivity, unmark, stamp deferred flags). *)
let batch_slow ctx ranges f =
  let ranges =
    List.map
      (fun (addr, len, a) ->
        check_addr ctx addr;
        ( addr,
          len,
          match a with R -> State_table.Shared | W -> State_table.Exclusive ))
      ranges
  in
  let token = Protocol.batch_begin ctx.p ranges in
  ctx.in_batch <- true;
  Fun.protect
    ~finally:(fun () ->
      ctx.in_batch <- false;
      flush ctx;
      Protocol.batch_end ctx.p token)
    f

(* Fused batch pre-check: every line covered by [ranges] must be clean
   at its range's needed state — and on SMP clean in the node's shared
   table too, since a private-Exclusive line whose node state carries a
   pending downgrade is exactly the §3.4.3 race the batch-end replay
   exists for. Returns the distinct covered-line count (the reference
   charge multiplier), or -1 if any line fails.

   When every line passes, the whole batch_begin/batch_end round trip is
   skipped: begin would find nothing missing and could not stall, so the
   batch markers and write-piece registrations protect against nothing —
   no other processor gets a turn between here and the window's end
   (batch bodies contain no scheduling points), and batch_end's replay
   condition is provably false for a window that never stalled with a
   clean node state. *)
let fast_batch_lines ctx ranges =
  let nr = List.length ranges in
  if Array.length ctx.iv_first < nr then begin
    ctx.iv_first <- Array.make (2 * nr) 0;
    ctx.iv_last <- Array.make (2 * nr) 0
  end;
  let iv_first = ctx.iv_first and iv_last = ctx.iv_last in
  let ok = ref true in
  let i = ref 0 in
  List.iter
    (fun (addr, len, a) ->
      check_addr ctx addr;
      assert (len > 0);
      let need =
        match a with R -> State_table.Shared | W -> State_table.Exclusive
      in
      let first = Layout.line_of ctx.layout addr in
      let last = Layout.line_of ctx.layout (addr + len - 1) in
      iv_first.(!i) <- first;
      iv_last.(!i) <- last;
      incr i;
      if !ok then begin
        let l = ref first in
        while !ok && !l <= last do
          if
            not
              (State_table.clean_geq ctx.ctable !l need
              && ((not ctx.smp) || State_table.clean_geq ctx.ntable !l need))
          then ok := false;
          incr l
        done
      end)
    ranges;
  if not !ok then -1
  else begin
    (* Distinct covered lines: insertion-sort the intervals by first
       line (ranges per batch are few), then sweep. *)
    for a = 1 to nr - 1 do
      let f = iv_first.(a) and l = iv_last.(a) in
      let b = ref (a - 1) in
      while !b >= 0 && iv_first.(!b) > f do
        iv_first.(!b + 1) <- iv_first.(!b);
        iv_last.(!b + 1) <- iv_last.(!b);
        decr b
      done;
      iv_first.(!b + 1) <- f;
      iv_last.(!b + 1) <- l
    done;
    let count = ref 0 and hi = ref min_int in
    for a = 0 to nr - 1 do
      if iv_last.(a) > !hi then begin
        let f = if iv_first.(a) > !hi + 1 then iv_first.(a) else !hi + 1 in
        count := !count + iv_last.(a) - f + 1;
        hi := iv_last.(a)
      end
    done;
    !count
  end

let batch ctx ranges f =
  assert (not ctx.in_batch);
  if ctx.fast then begin
    fast_op_tick ctx;
    let nlines = fast_batch_lines ctx ranges in
    if nlines >= 0 then begin
      ctx.acc <-
        ctx.acc + (ctx.c_per_line * nlines)
        + (ctx.c_per_range * List.length ranges);
      let st = ctx.st in
      st.Stats.checks <- st.Stats.checks + nlines;
      st.Stats.fast_hits <- st.Stats.fast_hits + nlines;
      ctx.in_batch <- true;
      Fun.protect ~finally:(fun () -> ctx.in_batch <- false) f
    end
    else begin
      flush ctx;
      batch_slow ctx ranges f
    end
  end
  else begin
    Protocol.op_tick ctx.p;
    batch_slow ctx ranges f
  end

module Batch = struct
  let raw_cost = 1

  let load_float ctx addr =
    assert (ctx.in_batch);
    ctx.st.Stats.accesses <- ctx.st.Stats.accesses + 1;
    if ctx.fast then begin
      ctx.acc <- ctx.acc + raw_cost;
      Image.load_float ctx.image addr
    end
    else begin
      Protocol.charge ctx.p raw_cost;
      let v = Image.load_float ctx.image addr in
      obs_load ctx ~addr ~len:8;
      v
    end

  let store_float ctx addr v =
    assert (ctx.in_batch);
    ctx.st.Stats.accesses <- ctx.st.Stats.accesses + 1;
    if ctx.fast then begin
      ctx.acc <- ctx.acc + raw_cost;
      Image.store_float ctx.image addr v
    end
    else begin
      Protocol.charge ctx.p raw_cost;
      Image.store_float ctx.image addr v;
      obs_store ctx ~addr ~len:8
    end

  let load_int ctx addr =
    assert (ctx.in_batch);
    ctx.st.Stats.accesses <- ctx.st.Stats.accesses + 1;
    if ctx.fast then begin
      ctx.acc <- ctx.acc + raw_cost;
      Image.load_int ctx.image addr
    end
    else begin
      Protocol.charge ctx.p raw_cost;
      let v = Image.load_int ctx.image addr in
      obs_load ctx ~addr ~len:8;
      v
    end

  let store_int ctx addr v =
    assert (ctx.in_batch);
    ctx.st.Stats.accesses <- ctx.st.Stats.accesses + 1;
    if ctx.fast then begin
      ctx.acc <- ctx.acc + raw_cost;
      Image.store_int ctx.image addr v
    end
    else begin
      Protocol.charge ctx.p raw_cost;
      Image.store_int ctx.image addr v;
      obs_store ctx ~addr ~len:8
    end
end

(* Access programs (§3.4.1 batched checks taken to their limit): a
   per-block access sequence compiled once into a flat int array and
   interpreted in a tight loop, replacing per-access closure dispatch.
   Raw programs ([Ldf]/[Stf]) run inside a batch window against the node
   image directly; checked programs ([Cldf]/[Cstf]) run outside batches
   and route every access through the ordinary checked load/store (which
   is itself fused when the fast path is on). Two interpreters: with an
   observer installed the per-op loop charges and fires hooks exactly as
   the equivalent closure would (cycle- and event-identical); without
   one, memory traffic runs back-to-back and a raw program's cycles are
   charged in one lump — same total, same virtual finish time, no
   mid-program scheduling points. The fusion leans on the batch
   contract: nothing may race with the batched ranges for the batch's
   duration, so nobody can observe the intermediate timing. *)
module Prog = struct
  type instr =
    | Ldf of int * int * int  (** reg <- raw float at base(b) + off *)
    | Stf of int * int * int  (** raw float at base(b) + off <- reg *)
    | Cldf of int * int * int  (** reg <- checked float load *)
    | Cstf of int * int * int  (** checked float store *)
    | Fms of int * int  (** r(a) <- r(a) -. s *. r(b) *)
    | Add of int * int * int  (** r(a) <- r(b) +. r(c) *)
    | Sub of int * int * int  (** r(a) <- r(b) -. r(c) *)
    | Mul of int * int * int  (** r(a) <- r(b) *. r(c) *)
    | Mulk of int * int * int  (** r(a) <- r(b) *. consts.(k) *)
    | Movk of int * int  (** r(a) <- consts.(k) *)
    | Auxld of int * int  (** r(a) <- aux.(i) *)
    | Auxst of int * int  (** aux.(i) <- r(a) *)
    | Wrap of int * int  (** periodic wrap of r(a) into [0, consts.(k)) *)
    | Charge of int  (** charge n cycles *)

  type t = {
    code : int array;
    regs : float array;
    consts : float array;
    raw : bool;
    checked : bool;
  }

  exception Prog_violation of { op : string; pc : int; detail : string }

  let violation ~op ~pc detail = raise (Prog_violation { op; pc; detail })

  let no_aux : float array = [||]

  (* Opcodes, stride 4: op, a, b, c. *)
  let op_ldf = 0
  let op_stf = 1
  let op_fms = 2
  let op_charge = 3
  let op_cldf = 4
  let op_cstf = 5
  let op_add = 6
  let op_sub = 7
  let op_mul = 8
  let op_mulk = 9
  let op_movk = 10
  let op_auxld = 11
  let op_auxst = 12
  let op_wrap = 13

  let compile ?(consts = no_aux) ~nregs instrs =
    let nconsts = Array.length consts in
    let reg r = if r < 0 || r >= nregs then invalid_arg "Prog.compile: reg" in
    let base b =
      if b < 0 || b > 2 then invalid_arg "Prog.compile: base index"
    in
    let konst k =
      if k < 0 || k >= nconsts then invalid_arg "Prog.compile: const index"
    in
    let raw = ref false and checked = ref false in
    let n = List.length instrs in
    let code = Array.make (4 * n) 0 in
    List.iteri
      (fun i instr ->
        let k = 4 * i in
        let emit op a b c =
          code.(k) <- op;
          code.(k + 1) <- a;
          code.(k + 2) <- b;
          code.(k + 3) <- c
        in
        match instr with
        | Ldf (r, b, off) -> reg r; base b; raw := true; emit op_ldf r b off
        | Stf (r, b, off) -> reg r; base b; raw := true; emit op_stf r b off
        | Cldf (r, b, off) ->
          reg r; base b; checked := true; emit op_cldf r b off
        | Cstf (r, b, off) ->
          reg r; base b; checked := true; emit op_cstf r b off
        | Fms (a, b) -> reg a; reg b; emit op_fms a b 0
        | Add (a, b, c) -> reg a; reg b; reg c; emit op_add a b c
        | Sub (a, b, c) -> reg a; reg b; reg c; emit op_sub a b c
        | Mul (a, b, c) -> reg a; reg b; reg c; emit op_mul a b c
        | Mulk (a, b, k) -> reg a; reg b; konst k; emit op_mulk a b k
        | Movk (a, k) -> reg a; konst k; emit op_movk a k 0
        | Auxld (a, i) ->
          reg a;
          if i < 0 then invalid_arg "Prog.compile: aux index";
          emit op_auxld a i 0
        | Auxst (a, i) ->
          reg a;
          if i < 0 then invalid_arg "Prog.compile: aux index";
          emit op_auxst a i 0
        | Wrap (a, k) -> reg a; konst k; emit op_wrap a k 0
        | Charge n ->
          if n < 0 then invalid_arg "Prog.compile: negative charge";
          emit op_charge n 0 0)
      instrs;
    if !raw && !checked then
      invalid_arg "Prog.compile: program mixes raw and checked accesses";
    { code; regs = Array.make nregs 0.0; consts; raw = !raw; checked = !checked }

  (* Introspection for the static verifier (Shasta_verify.Progcheck):
     a compiled program decodes back to the instruction list it was
     built from — [compile] is a bijection up to the flat encoding. *)
  let nregs t = Array.length t.regs
  let consts t = t.consts
  let uses_raw t = t.raw
  let uses_checked t = t.checked

  let decode t =
    let n = Array.length t.code / 4 in
    List.init n (fun i ->
        let k = 4 * i in
        let op = t.code.(k)
        and a = t.code.(k + 1)
        and b = t.code.(k + 2)
        and c = t.code.(k + 3) in
        if op = op_ldf then Ldf (a, b, c)
        else if op = op_stf then Stf (a, b, c)
        else if op = op_fms then Fms (a, b)
        else if op = op_charge then Charge a
        else if op = op_cldf then Cldf (a, b, c)
        else if op = op_cstf then Cstf (a, b, c)
        else if op = op_add then Add (a, b, c)
        else if op = op_sub then Sub (a, b, c)
        else if op = op_mul then Mul (a, b, c)
        else if op = op_mulk then Mulk (a, b, c)
        else if op = op_movk then Movk (a, b)
        else if op = op_auxld then Auxld (a, b)
        else if op = op_auxst then Auxst (a, b)
        else if op = op_wrap then Wrap (a, b)
        else
          violation ~op:(string_of_int op) ~pc:i "unknown opcode in decode")

  let fms_row ~len ~cost =
    (* dst[c] <- dst[c] - s * src[c] for c in [0, len): the daxpy inner
       row of blocked LU. Ops are emitted in the evaluation order of the
       closure formulation (src load, dst load, multiply-subtract, dst
       store, flop charge) so the observed interpreter replays its event
       stream exactly. *)
    let instrs =
      List.concat
        (List.init len (fun j ->
             let off = 8 * j in
             [ Ldf (0, 1, off); Ldf (1, 0, off); Fms (1, 0);
               Stf (1, 0, off); Charge cost ]))
    in
    compile ~nregs:2 instrs

  let run ctx t ~s ~aux ~base0 ~base1 ~base2 =
    assert ((not t.raw) || ctx.in_batch);
    assert ((not t.checked) || not ctx.in_batch);
    let code = t.code and regs = t.regs and consts = t.consts in
    let n = Array.length code in
    let st = ctx.st in
    let base b = if b = 0 then base0 else if b = 1 then base1 else base2 in
    match (Protocol.machine ctx.p).Machine.observer with
    | Some _ ->
      (* Per-op reference dispatch: exactly the charges and hooks the
         closure formulation produces. *)
      let k = ref 0 in
      while !k < n do
        let a = code.(!k + 1) and b = code.(!k + 2) and c = code.(!k + 3) in
        (match code.(!k) with
        | 0 ->
          st.Stats.prog_accesses <- st.Stats.prog_accesses + 1;
          regs.(a) <- Batch.load_float ctx (base b + c)
        | 1 ->
          st.Stats.prog_accesses <- st.Stats.prog_accesses + 1;
          Batch.store_float ctx (base b + c) regs.(a)
        | 2 -> regs.(a) <- regs.(a) -. (s *. regs.(b))
        | 3 -> compute ctx a
        | 4 ->
          st.Stats.prog_accesses <- st.Stats.prog_accesses + 1;
          regs.(a) <- load_float ctx (base b + c)
        | 5 ->
          st.Stats.prog_accesses <- st.Stats.prog_accesses + 1;
          store_float ctx (base b + c) regs.(a)
        | 6 -> regs.(a) <- regs.(b) +. regs.(c)
        | 7 -> regs.(a) <- regs.(b) -. regs.(c)
        | 8 -> regs.(a) <- regs.(b) *. regs.(c)
        | 9 -> regs.(a) <- regs.(b) *. consts.(c)
        | 10 -> regs.(a) <- consts.(b)
        | 11 -> regs.(a) <- aux.(b)
        | 12 -> aux.(b) <- regs.(a)
        | 13 ->
          let q = regs.(a) and box = consts.(b) in
          regs.(a) <-
            (if q < 0.0 then q +. box
             else if q >= box then q -. box
             else q)
        | op ->
          violation ~op:(string_of_int op) ~pc:(!k / 4)
            "unknown opcode (observed interpreter)");
        k := !k + 4
      done
    | None ->
      let img = ctx.image in
      let total = ref 0 in
      let k = ref 0 in
      while !k < n do
        let a = code.(!k + 1) and b = code.(!k + 2) and c = code.(!k + 3) in
        (match code.(!k) with
        | 0 ->
          st.Stats.accesses <- st.Stats.accesses + 1;
          st.Stats.prog_accesses <- st.Stats.prog_accesses + 1;
          regs.(a) <- Image.load_float img (base b + c);
          total := !total + Batch.raw_cost
        | 1 ->
          st.Stats.accesses <- st.Stats.accesses + 1;
          st.Stats.prog_accesses <- st.Stats.prog_accesses + 1;
          Image.store_float img (base b + c) regs.(a);
          total := !total + Batch.raw_cost
        | 2 -> regs.(a) <- regs.(a) -. (s *. regs.(b))
        | 3 -> if ctx.in_batch then total := !total + a else compute ctx a
        | 4 ->
          st.Stats.prog_accesses <- st.Stats.prog_accesses + 1;
          regs.(a) <- load_float ctx (base b + c)
        | 5 ->
          st.Stats.prog_accesses <- st.Stats.prog_accesses + 1;
          store_float ctx (base b + c) regs.(a)
        | 6 -> regs.(a) <- regs.(b) +. regs.(c)
        | 7 -> regs.(a) <- regs.(b) -. regs.(c)
        | 8 -> regs.(a) <- regs.(b) *. regs.(c)
        | 9 -> regs.(a) <- regs.(b) *. consts.(c)
        | 10 -> regs.(a) <- consts.(b)
        | 11 -> regs.(a) <- aux.(b)
        | 12 -> aux.(b) <- regs.(a)
        | 13 ->
          let q = regs.(a) and box = consts.(b) in
          regs.(a) <-
            (if q < 0.0 then q +. box
             else if q >= box then q -. box
             else q)
        | op ->
          violation ~op:(string_of_int op) ~pc:(!k / 4)
            "unknown opcode (fused interpreter)");
        k := !k + 4
      done;
      (* One fused charge for the in-batch traffic; a [Cycle_limit] for
         a budget exhausted mid-program is raised here, at the program's
         end clock. Banked like any other raw access when fused. *)
      if !total > 0 then begin
        if ctx.fast then ctx.acc <- ctx.acc + !total
        else Protocol.charge ctx.p !total
      end
end

let lock ctx l =
  assert (not ctx.in_batch);
  flush ctx;
  Protocol.lock_acquire ctx.p l

let unlock ctx l =
  assert (not ctx.in_batch);
  flush ctx;
  Protocol.lock_release ctx.p l

let barrier ctx b =
  assert (not ctx.in_batch);
  flush ctx;
  Protocol.barrier_wait ctx.p b

let parallel_cycles h = Machine.parallel_cycles h.m

let proc_stats h = Array.map (fun p -> p.Machine.stats) h.m.Machine.procs

let aggregate_stats h = Stats.aggregate (Array.to_list (proc_stats h))

let downgrade_messages h =
  Array.fold_left
    (fun acc p -> acc + p.Machine.stats.Stats.downgrades_sent)
    0 h.m.Machine.procs

let messages_local h = Network.sent_local h.m.Machine.net
let messages_remote h = Network.sent_remote h.m.Machine.net
let shards_used h = h.shards_used
let shard_stats h = h.shard_info
