type base = Shasta_mem.State_table.base

type t = {
  on_state :
    by:int -> node:int -> block:int -> from_:base -> to_:base -> now:int -> unit;
  on_private :
    by:int -> proc:int -> block:int -> from_:base -> to_:base -> now:int -> unit;
  on_pending : by:int -> node:int -> block:int -> set:bool -> now:int -> unit;
  on_pending_downgrade :
    by:int -> node:int -> block:int -> set:bool -> now:int -> unit;
  on_send : src:int -> dst:int -> now:int -> Msg.t -> unit;
  on_recv : src:int -> dst:int -> now:int -> Msg.t -> unit;
  on_miss_start : proc:int -> block:int -> kind:Msg.req_kind -> now:int -> unit;
  on_miss_end :
    proc:int -> block:int -> kind:Msg.req_kind -> start:int -> now:int -> unit;
  on_downgrade_ack : proc:int -> block:int -> now:int -> unit;
  on_downgrade_done : proc:int -> block:int -> now:int -> unit;
  on_downgrade_queued :
    proc:int -> block:int -> src:int -> now:int -> Msg.t -> unit;
  on_downgrade_replay :
    proc:int -> block:int -> src:int -> now:int -> Msg.t -> unit;
  on_load : proc:int -> addr:int -> len:int -> now:int -> unit;
  on_store : proc:int -> addr:int -> len:int -> now:int -> unit;
  on_lock_acquired : proc:int -> lock:int -> now:int -> unit;
  on_lock_released : proc:int -> lock:int -> now:int -> unit;
  on_barrier_arrive : proc:int -> barrier:int -> epoch:int -> now:int -> unit;
  on_barrier_leave : proc:int -> barrier:int -> epoch:int -> now:int -> unit;
}

let nil =
  {
    on_state = (fun ~by:_ ~node:_ ~block:_ ~from_:_ ~to_:_ ~now:_ -> ());
    on_private = (fun ~by:_ ~proc:_ ~block:_ ~from_:_ ~to_:_ ~now:_ -> ());
    on_pending = (fun ~by:_ ~node:_ ~block:_ ~set:_ ~now:_ -> ());
    on_pending_downgrade = (fun ~by:_ ~node:_ ~block:_ ~set:_ ~now:_ -> ());
    on_send = (fun ~src:_ ~dst:_ ~now:_ _ -> ());
    on_recv = (fun ~src:_ ~dst:_ ~now:_ _ -> ());
    on_miss_start = (fun ~proc:_ ~block:_ ~kind:_ ~now:_ -> ());
    on_miss_end = (fun ~proc:_ ~block:_ ~kind:_ ~start:_ ~now:_ -> ());
    on_downgrade_ack = (fun ~proc:_ ~block:_ ~now:_ -> ());
    on_downgrade_done = (fun ~proc:_ ~block:_ ~now:_ -> ());
    on_downgrade_queued = (fun ~proc:_ ~block:_ ~src:_ ~now:_ _ -> ());
    on_downgrade_replay = (fun ~proc:_ ~block:_ ~src:_ ~now:_ _ -> ());
    on_load = (fun ~proc:_ ~addr:_ ~len:_ ~now:_ -> ());
    on_store = (fun ~proc:_ ~addr:_ ~len:_ ~now:_ -> ());
    on_lock_acquired = (fun ~proc:_ ~lock:_ ~now:_ -> ());
    on_lock_released = (fun ~proc:_ ~lock:_ ~now:_ -> ());
    on_barrier_arrive = (fun ~proc:_ ~barrier:_ ~epoch:_ ~now:_ -> ());
    on_barrier_leave = (fun ~proc:_ ~barrier:_ ~epoch:_ ~now:_ -> ());
  }

(* Wrap every hook of [o] in [mu]: under the sharded scheduler hooks
   fire from several domains, and observers built for the sequential
   scheduler (trace buffers, metrics tables) assume exclusive access.
   The lock is taken per event, never held across events, so it cannot
   interact with the shards' termination protocol. *)
let synchronized mu o =
  let locked f =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) f
  in
  {
    on_state =
      (fun ~by ~node ~block ~from_ ~to_ ~now ->
        locked (fun () -> o.on_state ~by ~node ~block ~from_ ~to_ ~now));
    on_private =
      (fun ~by ~proc ~block ~from_ ~to_ ~now ->
        locked (fun () -> o.on_private ~by ~proc ~block ~from_ ~to_ ~now));
    on_pending =
      (fun ~by ~node ~block ~set ~now ->
        locked (fun () -> o.on_pending ~by ~node ~block ~set ~now));
    on_pending_downgrade =
      (fun ~by ~node ~block ~set ~now ->
        locked (fun () -> o.on_pending_downgrade ~by ~node ~block ~set ~now));
    on_send =
      (fun ~src ~dst ~now m -> locked (fun () -> o.on_send ~src ~dst ~now m));
    on_recv =
      (fun ~src ~dst ~now m -> locked (fun () -> o.on_recv ~src ~dst ~now m));
    on_miss_start =
      (fun ~proc ~block ~kind ~now ->
        locked (fun () -> o.on_miss_start ~proc ~block ~kind ~now));
    on_miss_end =
      (fun ~proc ~block ~kind ~start ~now ->
        locked (fun () -> o.on_miss_end ~proc ~block ~kind ~start ~now));
    on_downgrade_ack =
      (fun ~proc ~block ~now ->
        locked (fun () -> o.on_downgrade_ack ~proc ~block ~now));
    on_downgrade_done =
      (fun ~proc ~block ~now ->
        locked (fun () -> o.on_downgrade_done ~proc ~block ~now));
    on_downgrade_queued =
      (fun ~proc ~block ~src ~now m ->
        locked (fun () -> o.on_downgrade_queued ~proc ~block ~src ~now m));
    on_downgrade_replay =
      (fun ~proc ~block ~src ~now m ->
        locked (fun () -> o.on_downgrade_replay ~proc ~block ~src ~now m));
    on_load =
      (fun ~proc ~addr ~len ~now ->
        locked (fun () -> o.on_load ~proc ~addr ~len ~now));
    on_store =
      (fun ~proc ~addr ~len ~now ->
        locked (fun () -> o.on_store ~proc ~addr ~len ~now));
    on_lock_acquired =
      (fun ~proc ~lock ~now ->
        locked (fun () -> o.on_lock_acquired ~proc ~lock ~now));
    on_lock_released =
      (fun ~proc ~lock ~now ->
        locked (fun () -> o.on_lock_released ~proc ~lock ~now));
    on_barrier_arrive =
      (fun ~proc ~barrier ~epoch ~now ->
        locked (fun () -> o.on_barrier_arrive ~proc ~barrier ~epoch ~now));
    on_barrier_leave =
      (fun ~proc ~barrier ~epoch ~now ->
        locked (fun () -> o.on_barrier_leave ~proc ~barrier ~epoch ~now));
  }

let seq a b =
  {
    on_state =
      (fun ~by ~node ~block ~from_ ~to_ ~now ->
        a.on_state ~by ~node ~block ~from_ ~to_ ~now;
        b.on_state ~by ~node ~block ~from_ ~to_ ~now);
    on_private =
      (fun ~by ~proc ~block ~from_ ~to_ ~now ->
        a.on_private ~by ~proc ~block ~from_ ~to_ ~now;
        b.on_private ~by ~proc ~block ~from_ ~to_ ~now);
    on_pending =
      (fun ~by ~node ~block ~set ~now ->
        a.on_pending ~by ~node ~block ~set ~now;
        b.on_pending ~by ~node ~block ~set ~now);
    on_pending_downgrade =
      (fun ~by ~node ~block ~set ~now ->
        a.on_pending_downgrade ~by ~node ~block ~set ~now;
        b.on_pending_downgrade ~by ~node ~block ~set ~now);
    on_send =
      (fun ~src ~dst ~now m ->
        a.on_send ~src ~dst ~now m;
        b.on_send ~src ~dst ~now m);
    on_recv =
      (fun ~src ~dst ~now m ->
        a.on_recv ~src ~dst ~now m;
        b.on_recv ~src ~dst ~now m);
    on_miss_start =
      (fun ~proc ~block ~kind ~now ->
        a.on_miss_start ~proc ~block ~kind ~now;
        b.on_miss_start ~proc ~block ~kind ~now);
    on_miss_end =
      (fun ~proc ~block ~kind ~start ~now ->
        a.on_miss_end ~proc ~block ~kind ~start ~now;
        b.on_miss_end ~proc ~block ~kind ~start ~now);
    on_downgrade_ack =
      (fun ~proc ~block ~now ->
        a.on_downgrade_ack ~proc ~block ~now;
        b.on_downgrade_ack ~proc ~block ~now);
    on_downgrade_done =
      (fun ~proc ~block ~now ->
        a.on_downgrade_done ~proc ~block ~now;
        b.on_downgrade_done ~proc ~block ~now);
    on_downgrade_queued =
      (fun ~proc ~block ~src ~now m ->
        a.on_downgrade_queued ~proc ~block ~src ~now m;
        b.on_downgrade_queued ~proc ~block ~src ~now m);
    on_downgrade_replay =
      (fun ~proc ~block ~src ~now m ->
        a.on_downgrade_replay ~proc ~block ~src ~now m;
        b.on_downgrade_replay ~proc ~block ~src ~now m);
    on_load =
      (fun ~proc ~addr ~len ~now ->
        a.on_load ~proc ~addr ~len ~now;
        b.on_load ~proc ~addr ~len ~now);
    on_store =
      (fun ~proc ~addr ~len ~now ->
        a.on_store ~proc ~addr ~len ~now;
        b.on_store ~proc ~addr ~len ~now);
    on_lock_acquired =
      (fun ~proc ~lock ~now ->
        a.on_lock_acquired ~proc ~lock ~now;
        b.on_lock_acquired ~proc ~lock ~now);
    on_lock_released =
      (fun ~proc ~lock ~now ->
        a.on_lock_released ~proc ~lock ~now;
        b.on_lock_released ~proc ~lock ~now);
    on_barrier_arrive =
      (fun ~proc ~barrier ~epoch ~now ->
        a.on_barrier_arrive ~proc ~barrier ~epoch ~now;
        b.on_barrier_arrive ~proc ~barrier ~epoch ~now);
    on_barrier_leave =
      (fun ~proc ~barrier ~epoch ~now ->
        a.on_barrier_leave ~proc ~barrier ~epoch ~now;
        b.on_barrier_leave ~proc ~barrier ~epoch ~now);
  }
