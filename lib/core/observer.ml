type base = Shasta_mem.State_table.base

type t = {
  on_state : node:int -> block:int -> from_:base -> to_:base -> unit;
  on_private : proc:int -> block:int -> from_:base -> to_:base -> unit;
  on_pending : node:int -> block:int -> set:bool -> unit;
  on_pending_downgrade : node:int -> block:int -> set:bool -> unit;
  on_send : src:int -> dst:int -> now:int -> Msg.t -> unit;
  on_recv : src:int -> dst:int -> now:int -> Msg.t -> unit;
  on_downgrade_ack : proc:int -> block:int -> unit;
  on_downgrade_done : proc:int -> block:int -> unit;
  on_downgrade_queued : proc:int -> block:int -> src:int -> Msg.t -> unit;
  on_downgrade_replay : proc:int -> block:int -> src:int -> Msg.t -> unit;
  on_load : proc:int -> addr:int -> len:int -> now:int -> unit;
  on_store : proc:int -> addr:int -> len:int -> now:int -> unit;
  on_lock_acquired : proc:int -> lock:int -> now:int -> unit;
  on_lock_released : proc:int -> lock:int -> now:int -> unit;
  on_barrier_arrive : proc:int -> barrier:int -> epoch:int -> now:int -> unit;
  on_barrier_leave : proc:int -> barrier:int -> epoch:int -> now:int -> unit;
}

let nil =
  {
    on_state = (fun ~node:_ ~block:_ ~from_:_ ~to_:_ -> ());
    on_private = (fun ~proc:_ ~block:_ ~from_:_ ~to_:_ -> ());
    on_pending = (fun ~node:_ ~block:_ ~set:_ -> ());
    on_pending_downgrade = (fun ~node:_ ~block:_ ~set:_ -> ());
    on_send = (fun ~src:_ ~dst:_ ~now:_ _ -> ());
    on_recv = (fun ~src:_ ~dst:_ ~now:_ _ -> ());
    on_downgrade_ack = (fun ~proc:_ ~block:_ -> ());
    on_downgrade_done = (fun ~proc:_ ~block:_ -> ());
    on_downgrade_queued = (fun ~proc:_ ~block:_ ~src:_ _ -> ());
    on_downgrade_replay = (fun ~proc:_ ~block:_ ~src:_ _ -> ());
    on_load = (fun ~proc:_ ~addr:_ ~len:_ ~now:_ -> ());
    on_store = (fun ~proc:_ ~addr:_ ~len:_ ~now:_ -> ());
    on_lock_acquired = (fun ~proc:_ ~lock:_ ~now:_ -> ());
    on_lock_released = (fun ~proc:_ ~lock:_ ~now:_ -> ());
    on_barrier_arrive = (fun ~proc:_ ~barrier:_ ~epoch:_ ~now:_ -> ());
    on_barrier_leave = (fun ~proc:_ ~barrier:_ ~epoch:_ ~now:_ -> ());
  }

let seq a b =
  {
    on_state =
      (fun ~node ~block ~from_ ~to_ ->
        a.on_state ~node ~block ~from_ ~to_;
        b.on_state ~node ~block ~from_ ~to_);
    on_private =
      (fun ~proc ~block ~from_ ~to_ ->
        a.on_private ~proc ~block ~from_ ~to_;
        b.on_private ~proc ~block ~from_ ~to_);
    on_pending =
      (fun ~node ~block ~set ->
        a.on_pending ~node ~block ~set;
        b.on_pending ~node ~block ~set);
    on_pending_downgrade =
      (fun ~node ~block ~set ->
        a.on_pending_downgrade ~node ~block ~set;
        b.on_pending_downgrade ~node ~block ~set);
    on_send =
      (fun ~src ~dst ~now m ->
        a.on_send ~src ~dst ~now m;
        b.on_send ~src ~dst ~now m);
    on_recv =
      (fun ~src ~dst ~now m ->
        a.on_recv ~src ~dst ~now m;
        b.on_recv ~src ~dst ~now m);
    on_downgrade_ack =
      (fun ~proc ~block ->
        a.on_downgrade_ack ~proc ~block;
        b.on_downgrade_ack ~proc ~block);
    on_downgrade_done =
      (fun ~proc ~block ->
        a.on_downgrade_done ~proc ~block;
        b.on_downgrade_done ~proc ~block);
    on_downgrade_queued =
      (fun ~proc ~block ~src m ->
        a.on_downgrade_queued ~proc ~block ~src m;
        b.on_downgrade_queued ~proc ~block ~src m);
    on_downgrade_replay =
      (fun ~proc ~block ~src m ->
        a.on_downgrade_replay ~proc ~block ~src m;
        b.on_downgrade_replay ~proc ~block ~src m);
    on_load =
      (fun ~proc ~addr ~len ~now ->
        a.on_load ~proc ~addr ~len ~now;
        b.on_load ~proc ~addr ~len ~now);
    on_store =
      (fun ~proc ~addr ~len ~now ->
        a.on_store ~proc ~addr ~len ~now;
        b.on_store ~proc ~addr ~len ~now);
    on_lock_acquired =
      (fun ~proc ~lock ~now ->
        a.on_lock_acquired ~proc ~lock ~now;
        b.on_lock_acquired ~proc ~lock ~now);
    on_lock_released =
      (fun ~proc ~lock ~now ->
        a.on_lock_released ~proc ~lock ~now;
        b.on_lock_released ~proc ~lock ~now);
    on_barrier_arrive =
      (fun ~proc ~barrier ~epoch ~now ->
        a.on_barrier_arrive ~proc ~barrier ~epoch ~now;
        b.on_barrier_arrive ~proc ~barrier ~epoch ~now);
    on_barrier_leave =
      (fun ~proc ~barrier ~epoch ~now ->
        a.on_barrier_leave ~proc ~barrier ~epoch ~now;
        b.on_barrier_leave ~proc ~barrier ~epoch ~now);
  }
