type req_kind = Read | Readex | Upgrade

type t =
  | Req of { kind : req_kind; block : int }
  | Fwd of { kind : req_kind; block : int; requester : int; inval_acks : int }
  | Data_reply of {
      kind : req_kind;
      block : int;
      data : Bytes.t;
      from_home : bool;
      inval_acks : int;
    }
  | Upgrade_reply of { block : int; inval_acks : int }
  | Invalidate of { block : int; requester : int }
  | Inval_ack of { block : int }
  | Sharing_wb of { block : int; new_sharer : int }
  | Own_ack of { block : int }
  | Downgrade of { block : int; target : Shasta_mem.State_table.base }
  | Lock_req of { lock : int }
  | Lock_grant of { lock : int }
  | Lock_release of { lock : int }
  | Barrier_arrive of { barrier : int }
  | Barrier_release of { barrier : int; generation : int }

let header = 16

let size_bytes = function
  | Data_reply { data; _ } -> header + Bytes.length data
  | Req _ | Fwd _ | Upgrade_reply _ | Invalidate _ | Inval_ack _
  | Sharing_wb _ | Own_ack _ | Downgrade _ | Lock_req _ | Lock_grant _
  | Lock_release _ | Barrier_arrive _ | Barrier_release _ ->
    header

let block_of = function
  | Req { block; _ }
  | Fwd { block; _ }
  | Data_reply { block; _ }
  | Upgrade_reply { block; _ }
  | Invalidate { block; _ }
  | Inval_ack { block; _ }
  | Sharing_wb { block; _ }
  | Own_ack { block; _ }
  | Downgrade { block; _ } ->
    Some block
  | Lock_req _ | Lock_grant _ | Lock_release _ | Barrier_arrive _
  | Barrier_release _ ->
    None

let tag = function
  | Req { kind = Read; _ } -> 0
  | Req { kind = Readex; _ } -> 1
  | Req { kind = Upgrade; _ } -> 2
  | Fwd { kind = Read; _ } -> 3
  | Fwd { kind = Readex; _ } -> 4
  | Fwd { kind = Upgrade; _ } -> 5
  | Data_reply _ -> 6
  | Upgrade_reply _ -> 7
  | Invalidate _ -> 8
  | Inval_ack _ -> 9
  | Sharing_wb _ -> 10
  | Own_ack _ -> 11
  | Downgrade _ -> 12
  | Lock_req _ -> 13
  | Lock_grant _ -> 14
  | Lock_release _ -> 15
  | Barrier_arrive _ -> 16
  | Barrier_release _ -> 17

let tag_names =
  [|
    "read_req";
    "readex_req";
    "upgrade_req";
    "read_fwd";
    "readex_fwd";
    "upgrade_fwd";
    "data_reply";
    "upgrade_reply";
    "invalidate";
    "inval_ack";
    "sharing_wb";
    "own_ack";
    "downgrade";
    "lock_req";
    "lock_grant";
    "lock_release";
    "barrier_arrive";
    "barrier_release";
  |]

let describe = function
  | Req { kind = Read; _ } -> "read_req"
  | Req { kind = Readex; _ } -> "readex_req"
  | Req { kind = Upgrade; _ } -> "upgrade_req"
  | Fwd { kind = Read; _ } -> "read_fwd"
  | Fwd { kind = Readex; _ } -> "readex_fwd"
  | Fwd { kind = Upgrade; _ } -> "upgrade_fwd"
  | Data_reply _ -> "data_reply"
  | Upgrade_reply _ -> "upgrade_reply"
  | Invalidate _ -> "invalidate"
  | Inval_ack _ -> "inval_ack"
  | Sharing_wb _ -> "sharing_wb"
  | Own_ack _ -> "own_ack"
  | Downgrade _ -> "downgrade"
  | Lock_req _ -> "lock_req"
  | Lock_grant _ -> "lock_grant"
  | Lock_release _ -> "lock_release"
  | Barrier_arrive _ -> "barrier_arrive"
  | Barrier_release _ -> "barrier_release"
