type 'a msg = { arrival : int; sent : int; src : int; seq : int; payload : 'a }

(* Minimal binary min-heap on (arrival, sent, src, seq).

   The tie-break beyond [arrival] must be a function of VIRTUAL time
   only: under run-ahead scheduling the real-time order in which two
   processors execute their sends is no longer the virtual-time order,
   so a global send counter alone would make delivery order depend on
   the scheduler. Messages sent at the same virtual instant are ordered
   by sender id (the order the min-clock scheduler runs equal clocks),
   and [seq] only separates sends from the same sender at the same
   instant, where the global counter does follow program order. *)
module Heap = struct
  type 'a t = { mutable data : 'a msg array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let size h = h.size

  let less a b =
    a.arrival < b.arrival
    || (a.arrival = b.arrival
       && (a.sent < b.sent
          || (a.sent = b.sent
             && (a.src < b.src || (a.src = b.src && a.seq < b.seq)))))

  let swap h i j =
    let t = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- t

  let push h m =
    if h.size = Array.length h.data then begin
      let cap = max 16 (2 * h.size) in
      let data = Array.make cap m in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end;
    h.data.(h.size) <- m;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && less h.data.(!i) h.data.((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  (* Arrival time of the minimum, [max_int] when empty. The polling fast
     path (almost always "nothing due yet") must not allocate. *)
  let min_arrival h = if h.size = 0 then max_int else h.data.(0).arrival

  let peek h = if h.size = 0 then None else Some h.data.(0)

  (* Remove and return the minimum; the heap must be non-empty. *)
  let pop_exn h =
    assert (h.size > 0);
    let m = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
      if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        swap h !i !smallest;
        i := !smallest
      end
      else continue := false
    done;
    m

  let pop h = if h.size = 0 then None else Some (pop_exn h)
end

(* One cross-shard letterbox: senders of one shard push under the mutex,
   the owning (destination) shard drains the whole list at its loop top.
   Order within the list is irrelevant — delivery order is decided by
   the (arrival, sent, src, seq) stamps once the messages reach the
   destination heap — so a LIFO cons list is enough. [mb_nonempty]
   lets the receiver skip the lock on the (overwhelmingly common) empty
   probe. *)
type 'a mailbox = {
  mb_mutex : Mutex.t;
  mutable mb_items : (int * 'a msg) list;  (* (dst, message) *)
  mb_nonempty : bool Atomic.t;
}

type 'a t = {
  topo : Topology.t;
  link : Link.t;
  nprocs : int;
  queues : 'a Heap.t array;
  last_arrival : int array;
      (* flat nprocs x nprocs table: [src * nprocs + dst] holds the last
         arrival timestamp assigned on that ordered pair, [min_int] when
         the pair has never carried a message. Replaces a tuple-keyed
         Hashtbl whose probe allocated a (src, dst) key on every send.
         Each cell is written only by [src]'s domain. *)
  seqs : int array;
      (* per-source send sequence. [seq] is only ever compared between
         messages of the same sender (see [Heap.less]), so a per-source
         counter yields the exact delivery order of the old global
         counter while keeping sends from different domains race-free. *)
  n_local : int array;  (* per source, summed on demand post-run *)
  n_remote : int array;
  n_bytes_remote : int array;
  (* Sharding (set before a sharded run, [None] otherwise): messages
     whose source and destination processors live on different shards
     detour through a mailbox instead of being pushed straight into the
     destination heap, which only the destination's domain may touch. *)
  mutable shard_of : (int -> int) option;
  mutable nshards : int;
  mutable mailboxes : 'a mailbox array;  (* src_shard * nshards + dst_shard *)
  xsent : int Atomic.t;
      (* cross-shard sends, incremented BEFORE the mailbox push so the
         termination detector can never observe a push it hasn't counted *)
  (* Crash quarantine: once a processor is marked dead, sends from or to
     it are silently discarded (the wire to a crashed node is cut). The
     [any_dead] flag keeps the common no-crash path at one branch. *)
  deads : bool array;
  mutable any_dead : bool;
  mutable n_dropped : int;
}

let create topo link =
  let nprocs = Topology.nprocs topo in
  {
    topo;
    link;
    nprocs;
    queues = Array.init nprocs (fun _ -> Heap.create ());
    last_arrival = Array.make (nprocs * nprocs) min_int;
    seqs = Array.make nprocs 0;
    n_local = Array.make nprocs 0;
    n_remote = Array.make nprocs 0;
    n_bytes_remote = Array.make nprocs 0;
    shard_of = None;
    nshards = 1;
    mailboxes = [||];
    xsent = Atomic.make 0;
    deads = Array.make nprocs false;
    any_dead = false;
    n_dropped = 0;
  }

let set_sharding t ~shards ~shard_of =
  t.shard_of <- (if shards > 1 then Some shard_of else None);
  t.nshards <- shards;
  t.mailboxes <-
    Array.init (shards * shards) (fun _ ->
        {
          mb_mutex = Mutex.create ();
          mb_items = [];
          mb_nonempty = Atomic.make false;
        })

let send t ~src ~dst ~now ~size payload =
  if t.any_dead && (t.deads.(src) || t.deads.(dst)) then
    t.n_dropped <- t.n_dropped + 1
  else
  let same_node = Topology.same_node t.topo src dst in
  let transfer = Link.transfer_cycles t.link ~same_node ~size in
  let arrival = now + transfer in
  let pair = (src * t.nprocs) + dst in
  let last = t.last_arrival.(pair) in
  (* In-order delivery per (src,dst) pair: a message computed to arrive
     at-or-before its predecessor is pushed just after it instead. *)
  let arrival = if last >= arrival then last + 1 else arrival in
  t.last_arrival.(pair) <- arrival;
  if same_node then t.n_local.(src) <- t.n_local.(src) + 1
  else begin
    t.n_remote.(src) <- t.n_remote.(src) + 1;
    t.n_bytes_remote.(src) <- t.n_bytes_remote.(src) + size
  end;
  let m = { arrival; sent = now; src; seq = t.seqs.(src); payload } in
  t.seqs.(src) <- t.seqs.(src) + 1;
  match t.shard_of with
  | Some shard_of when shard_of src <> shard_of dst ->
    Atomic.incr t.xsent;
    let mb = t.mailboxes.((shard_of src * t.nshards) + shard_of dst) in
    Mutex.lock mb.mb_mutex;
    mb.mb_items <- (dst, m) :: mb.mb_items;
    Atomic.set mb.mb_nonempty true;
    Mutex.unlock mb.mb_mutex;
    ()
  | Some _ | None -> Heap.push t.queues.(dst) m

(* Move every mailboxed message bound for [shard] into its destination
   heap; returns the count moved. Called only by [shard]'s own domain,
   which also owns those heaps. *)
let drain_shard t ~shard =
  let moved = ref 0 in
  for s = 0 to t.nshards - 1 do
    let mb = t.mailboxes.((s * t.nshards) + shard) in
    if Atomic.get mb.mb_nonempty then begin
      Mutex.lock mb.mb_mutex;
      let items = mb.mb_items in
      mb.mb_items <- [];
      Atomic.set mb.mb_nonempty false;
      Mutex.unlock mb.mb_mutex;
      List.iter
        (fun (dst, m) ->
          incr moved;
          Heap.push t.queues.(dst) m)
        items
    end
  done;
  !moved

let cross_sent t = Atomic.get t.xsent

let poll t ~dst ~now =
  let q = t.queues.(dst) in
  if Heap.min_arrival q <= now then begin
    let m = Heap.pop_exn q in
    Some (m.src, m.payload)
  end
  else None

let earliest_arrival t ~dst = Heap.min_arrival t.queues.(dst)

let peek_arrival t ~dst =
  match Heap.peek t.queues.(dst) with
  | Some m -> Some m.arrival
  | None -> None

let queued t ~dst = Heap.size t.queues.(dst)

let mark_dead t pid =
  t.deads.(pid) <- true;
  t.any_dead <- true

let is_dead t pid = t.deads.(pid)

let dropped t = t.n_dropped

(* Discard every queued message with a dead endpoint (the in-flight
   traffic of the crashed node at the instant of the crash). Rebuilds
   each surviving heap by re-pushing the survivors — O(n log n), only
   ever run at a crash. Not shard-safe: crashes force the sequential
   scheduler. *)
let purge_dead t =
  let purged = ref 0 in
  for dst = 0 to t.nprocs - 1 do
    let q = t.queues.(dst) in
    if Heap.size q > 0 then begin
      let survivors = ref [] in
      for i = Heap.size q - 1 downto 0 do
        let m = q.Heap.data.(i) in
        if t.deads.(m.src) || t.deads.(dst) then incr purged
        else survivors := m :: !survivors
      done;
      q.Heap.size <- 0;
      List.iter (fun m -> Heap.push q m) !survivors
    end
  done;
  t.n_dropped <- t.n_dropped + !purged;
  !purged

(* Selective cancellation: drop every queued message matching the
   predicate, returning the dropped messages sorted by their delivery
   stamps (arrival, sent, src, seq) — the order in which they would
   have been handled — so recovery surgery that re-interprets them is
   deterministic. Same rebuild strategy as [purge_dead]. *)
let purge_where t f =
  let dropped = ref [] in
  for dst = 0 to t.nprocs - 1 do
    let q = t.queues.(dst) in
    if Heap.size q > 0 then begin
      let survivors = ref [] in
      let removed = ref false in
      for i = Heap.size q - 1 downto 0 do
        let m = q.Heap.data.(i) in
        if f ~src:m.src ~dst m.payload then begin
          removed := true;
          dropped := (m, dst) :: !dropped
        end
        else survivors := m :: !survivors
      done;
      if !removed then begin
        q.Heap.size <- 0;
        List.iter (fun m -> Heap.push q m) !survivors
      end
    end
  done;
  t.n_dropped <- t.n_dropped + List.length !dropped;
  !dropped
  |> List.sort (fun (a, _) (b, _) ->
         compare (a.arrival, a.sent, a.src, a.seq) (b.arrival, b.sent, b.src, b.seq))
  |> List.map (fun (m, dst) -> (m.src, dst, m.payload))

let iter_queued t ~dst f =
  let q = t.queues.(dst) in
  for i = 0 to Heap.size q - 1 do
    let m = q.Heap.data.(i) in
    f ~src:m.src ~arrival:m.arrival m.payload
  done

let sum = Array.fold_left ( + ) 0

let sent_local t = sum t.n_local
let sent_remote t = sum t.n_remote
let bytes_remote t = sum t.n_bytes_remote
