type 'a msg = { arrival : int; sent : int; src : int; seq : int; payload : 'a }

(* Minimal binary min-heap on (arrival, sent, src, seq).

   The tie-break beyond [arrival] must be a function of VIRTUAL time
   only: under run-ahead scheduling the real-time order in which two
   processors execute their sends is no longer the virtual-time order,
   so a global send counter alone would make delivery order depend on
   the scheduler. Messages sent at the same virtual instant are ordered
   by sender id (the order the min-clock scheduler runs equal clocks),
   and [seq] only separates sends from the same sender at the same
   instant, where the global counter does follow program order. *)
module Heap = struct
  type 'a t = { mutable data : 'a msg array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let size h = h.size

  let less a b =
    a.arrival < b.arrival
    || (a.arrival = b.arrival
       && (a.sent < b.sent
          || (a.sent = b.sent
             && (a.src < b.src || (a.src = b.src && a.seq < b.seq)))))

  let swap h i j =
    let t = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- t

  let push h m =
    if h.size = Array.length h.data then begin
      let cap = max 16 (2 * h.size) in
      let data = Array.make cap m in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end;
    h.data.(h.size) <- m;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && less h.data.(!i) h.data.((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  (* Arrival time of the minimum, [max_int] when empty. The polling fast
     path (almost always "nothing due yet") must not allocate. *)
  let min_arrival h = if h.size = 0 then max_int else h.data.(0).arrival

  let peek h = if h.size = 0 then None else Some h.data.(0)

  (* Remove and return the minimum; the heap must be non-empty. *)
  let pop_exn h =
    assert (h.size > 0);
    let m = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
      if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        swap h !i !smallest;
        i := !smallest
      end
      else continue := false
    done;
    m

  let pop h = if h.size = 0 then None else Some (pop_exn h)
end

type 'a t = {
  topo : Topology.t;
  link : Link.t;
  nprocs : int;
  queues : 'a Heap.t array;
  last_arrival : int array;
      (* flat nprocs x nprocs table: [src * nprocs + dst] holds the last
         arrival timestamp assigned on that ordered pair, [min_int] when
         the pair has never carried a message. Replaces a tuple-keyed
         Hashtbl whose probe allocated a (src, dst) key on every send. *)
  mutable seq : int;
  mutable n_local : int;
  mutable n_remote : int;
  mutable n_bytes_remote : int;
}

let create topo link =
  let nprocs = Topology.nprocs topo in
  {
    topo;
    link;
    nprocs;
    queues = Array.init nprocs (fun _ -> Heap.create ());
    last_arrival = Array.make (nprocs * nprocs) min_int;
    seq = 0;
    n_local = 0;
    n_remote = 0;
    n_bytes_remote = 0;
  }

let send t ~src ~dst ~now ~size payload =
  let same_node = Topology.same_node t.topo src dst in
  let transfer = Link.transfer_cycles t.link ~same_node ~size in
  let arrival = now + transfer in
  let pair = (src * t.nprocs) + dst in
  let last = t.last_arrival.(pair) in
  (* In-order delivery per (src,dst) pair: a message computed to arrive
     at-or-before its predecessor is pushed just after it instead. *)
  let arrival = if last >= arrival then last + 1 else arrival in
  t.last_arrival.(pair) <- arrival;
  if same_node then t.n_local <- t.n_local + 1
  else begin
    t.n_remote <- t.n_remote + 1;
    t.n_bytes_remote <- t.n_bytes_remote + size
  end;
  Heap.push t.queues.(dst) { arrival; sent = now; src; seq = t.seq; payload };
  t.seq <- t.seq + 1

let poll t ~dst ~now =
  let q = t.queues.(dst) in
  if Heap.min_arrival q <= now then begin
    let m = Heap.pop_exn q in
    Some (m.src, m.payload)
  end
  else None

let earliest_arrival t ~dst = Heap.min_arrival t.queues.(dst)

let peek_arrival t ~dst =
  match Heap.peek t.queues.(dst) with
  | Some m -> Some m.arrival
  | None -> None

let queued t ~dst = Heap.size t.queues.(dst)
let sent_local t = t.n_local
let sent_remote t = t.n_remote
let bytes_remote t = t.n_bytes_remote
