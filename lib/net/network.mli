(** Point-to-point message transport with arrival timestamps.

    Each destination processor owns a queue ordered by arrival time (ties
    broken by a global send sequence number, which also keeps delivery
    deterministic). Messages between the same (src, dst) pair are forced
    to stay FIFO even when a small message is sent after a large one —
    both the Memory Channel and the intra-node shared-memory queues of
    the prototype deliver in order. *)

type 'a msg = { arrival : int; sent : int; src : int; seq : int; payload : 'a }
(** A queued message: ordered by [(arrival, sent, src, seq)] — arrival
    time, then send time, then sender id, then the sender's send
    sequence number. [seq] is only compared between messages of the same
    sender, where it follows program order; the tie-break chain is thus
    a function of virtual time and sender identity only, so delivery
    order is independent of how the scheduler interleaves processors in
    host time (required by run-ahead, and by the sharded scheduler where
    the interleaving spans domains). *)

(** Binary min-heap on [(arrival, sent, src, seq)]; exposed for unit
    tests. The read-only probes ([size], [min_arrival]) do not
    allocate. *)
module Heap : sig
  type 'a t

  val create : unit -> 'a t
  val size : 'a t -> int
  val push : 'a t -> 'a msg -> unit

  val min_arrival : 'a t -> int
  (** Arrival time of the earliest message, [max_int] when empty. *)

  val peek : 'a t -> 'a msg option
  val pop : 'a t -> 'a msg option

  val pop_exn : 'a t -> 'a msg
  (** Remove and return the earliest message; the heap must be
      non-empty. *)
end

type 'a t

val create : Topology.t -> Link.t -> 'a t

val send : 'a t -> src:int -> dst:int -> now:int -> size:int -> 'a -> unit
(** Enqueue a message carrying [size] payload bytes; its arrival time is
    [now] plus the link transfer time (at least one cycle after the
    previous message on the same (src,dst) pair). *)

val poll : 'a t -> dst:int -> now:int -> (int * 'a) option
(** Pop the earliest message destined to [dst] whose arrival time is at
    most [now]; result carries the sender. *)

val peek_arrival : 'a t -> dst:int -> int option
(** Arrival time of the earliest queued message for [dst] (whether or not
    it has arrived yet). *)

val earliest_arrival : 'a t -> dst:int -> int
(** Like {!peek_arrival} but allocation-free: [max_int] when the queue is
    empty. Fed to the engine as the run-ahead horizon hint. *)

val queued : 'a t -> dst:int -> int
(** Number of queued (in-flight or arrived) messages for [dst]. *)

(** {1 Sharded transport}

    When the simulation is split across domains, each shard (a group of
    processors) owns its processors' destination heaps outright. A
    message crossing shards is stamped by the sender exactly as usual —
    arrival times and FIFO bumps are a pure function of virtual time —
    but detours through a per-(src shard, dst shard) mutex-protected
    mailbox; the destination shard folds its mailboxes into the heaps at
    every scheduler iteration ({!drain_shard}), always before any of its
    processors could reach the message's arrival time (guaranteed by the
    conservative cross-shard bound — see Engine.run_sharded). *)

val set_sharding : 'a t -> shards:int -> shard_of:(int -> int) -> unit
(** Enable cross-shard mailbox routing. [shard_of] maps a processor id
    to its shard in [0, shards). Call before the run starts; with
    [shards = 1] routing stays direct. *)

val drain_shard : 'a t -> shard:int -> int
(** Move every mailboxed message destined to [shard] into its
    destination heap; returns the number moved. Must be called only from
    the domain running [shard]. *)

val cross_sent : 'a t -> int
(** Monotonic count of cross-shard sends, incremented before the mailbox
    push — so at any instant [cross_sent] is at least the number of
    messages that have ever been visible in a mailbox. The sharded
    scheduler's termination detector compares it against the drained
    count. *)

(** {1 Crash quarantine}

    When a node crashes, its processors are marked dead: subsequent
    sends from or to a dead processor are silently discarded (one extra
    branch on the send path, taken only once some processor has died),
    and {!purge_dead} discards the in-flight messages that had a dead
    endpoint at the instant of the crash. Recovery code uses
    {!iter_queued} to analyse the surviving in-flight traffic. *)

val mark_dead : 'a t -> int -> unit
(** Quarantine a processor: all its future traffic (either direction)
    is dropped. *)

val is_dead : 'a t -> int -> bool

val purge_dead : 'a t -> int
(** Discard every queued message whose source or destination is dead;
    returns the number discarded. Sequential scheduler only. *)

val dropped : 'a t -> int
(** Total messages discarded by quarantine (sends suppressed plus
    in-flight purges). *)

val purge_where :
  'a t -> (src:int -> dst:int -> 'a -> bool) -> (int * int * 'a) list
(** Discard every queued message for which the predicate holds; returns
    the dropped [(src, dst, payload)] triples sorted by their delivery
    stamps (the order they would have been handled in). Used by crash
    recovery to cancel live-live in-flight traffic naming an affected
    block. Sequential scheduler only. *)

val iter_queued : 'a t -> dst:int -> (src:int -> arrival:int -> 'a -> unit) -> unit
(** Iterate over the messages currently queued for [dst] (arrived or
    not), in unspecified order. *)

val sent_local : 'a t -> int
(** Count of intra-node messages sent so far. *)

val sent_remote : 'a t -> int
(** Count of inter-node messages sent so far. *)

val bytes_remote : 'a t -> int
(** Total payload bytes shipped between nodes. *)
