(** Point-to-point message transport with arrival timestamps.

    Each destination processor owns a queue ordered by arrival time (ties
    broken by a global send sequence number, which also keeps delivery
    deterministic). Messages between the same (src, dst) pair are forced
    to stay FIFO even when a small message is sent after a large one —
    both the Memory Channel and the intra-node shared-memory queues of
    the prototype deliver in order. *)

type 'a msg = { arrival : int; sent : int; src : int; seq : int; payload : 'a }
(** A queued message: ordered by [(arrival, sent, src, seq)] — arrival
    time, then send time, then sender id, then the global send sequence
    number. The tie-break chain is a function of virtual time and sender
    identity only, so delivery order is independent of how the scheduler
    interleaves processors in host time (required by run-ahead). *)

(** Binary min-heap on [(arrival, sent, src, seq)]; exposed for unit
    tests. The read-only probes ([size], [min_arrival]) do not
    allocate. *)
module Heap : sig
  type 'a t

  val create : unit -> 'a t
  val size : 'a t -> int
  val push : 'a t -> 'a msg -> unit

  val min_arrival : 'a t -> int
  (** Arrival time of the earliest message, [max_int] when empty. *)

  val peek : 'a t -> 'a msg option
  val pop : 'a t -> 'a msg option

  val pop_exn : 'a t -> 'a msg
  (** Remove and return the earliest message; the heap must be
      non-empty. *)
end

type 'a t

val create : Topology.t -> Link.t -> 'a t

val send : 'a t -> src:int -> dst:int -> now:int -> size:int -> 'a -> unit
(** Enqueue a message carrying [size] payload bytes; its arrival time is
    [now] plus the link transfer time (at least one cycle after the
    previous message on the same (src,dst) pair). *)

val poll : 'a t -> dst:int -> now:int -> (int * 'a) option
(** Pop the earliest message destined to [dst] whose arrival time is at
    most [now]; result carries the sender. *)

val peek_arrival : 'a t -> dst:int -> int option
(** Arrival time of the earliest queued message for [dst] (whether or not
    it has arrived yet). *)

val earliest_arrival : 'a t -> dst:int -> int
(** Like {!peek_arrival} but allocation-free: [max_int] when the queue is
    empty. Fed to the engine as the run-ahead horizon hint. *)

val queued : 'a t -> dst:int -> int
(** Number of queued (in-flight or arrived) messages for [dst]. *)

val sent_local : 'a t -> int
(** Count of intra-node messages sent so far. *)

val sent_remote : 'a t -> int
(** Count of inter-node messages sent so far. *)

val bytes_remote : 'a t -> int
(** Total payload bytes shipped between nodes. *)
