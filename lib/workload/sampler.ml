module Prng = Shasta_util.Prng

type dist = Uniform | Zipfian | Scrambled

let dist_of_string = function
  | "uniform" -> Some Uniform
  | "zipfian" -> Some Zipfian
  | "scrambled" -> Some Scrambled
  | _ -> None

let dist_to_string = function
  | Uniform -> "uniform"
  | Zipfian -> "zipfian"
  | Scrambled -> "scrambled"

type kind =
  | U
  | Z of {
      theta : float;
      alpha : float;
      zetan : float;
      eta : float;
      scramble : bool;
    }

type t = { prng : Prng.t; n : int; kind : kind }

let uniform ~seed ~n =
  if n < 1 then invalid_arg "Sampler.uniform: n";
  { prng = Prng.create seed; n; kind = U }

(* zeta(n, theta) = sum_{i=1..n} 1/i^theta; O(n) but memoized — the
   harness reuses a handful of (n, theta) pairs across processors. *)
let zeta_memo : (int * float, float) Hashtbl.t = Hashtbl.create 8
let zeta_mutex = Mutex.create ()

let zeta n theta =
  Mutex.lock zeta_mutex;
  let z =
    match Hashtbl.find_opt zeta_memo (n, theta) with
    | Some z -> z
    | None ->
      let z = ref 0.0 in
      for i = 1 to n do
        z := !z +. (1.0 /. (float_of_int i ** theta))
      done;
      Hashtbl.add zeta_memo (n, theta) !z;
      !z
  in
  Mutex.unlock zeta_mutex;
  z

let zipfian ?(scramble = false) ~seed ~n ~theta () =
  if n < 2 then invalid_arg "Sampler.zipfian: n";
  if not (theta > 0.0 && theta < 1.0) then
    invalid_arg "Sampler.zipfian: theta";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { prng = Prng.create seed; n; kind = Z { theta; alpha; zetan; eta; scramble } }

let make dist ~seed ~n ~theta =
  match dist with
  | Uniform -> uniform ~seed ~n
  | Zipfian -> zipfian ~seed ~n ~theta ()
  | Scrambled -> zipfian ~scramble:true ~seed ~n ~theta ()

(* FNV-1a over the rank's 8 bytes, for the scrambled variant. *)
let fnv64 k =
  let open Int64 in
  let h = ref 0xCBF29CE484222325L in
  for i = 0 to 7 do
    h := mul (logxor !h (of_int ((k lsr (8 * i)) land 0xff))) 0x100000001B3L
  done;
  Stdlib.(to_int !h land max_int)

let next t =
  match t.kind with
  | U -> Prng.int t.prng t.n
  | Z { theta; alpha; zetan; eta; scramble } ->
    let u = Prng.float t.prng 1.0 in
    let uz = u *. zetan in
    let rank =
      if uz < 1.0 then 0
      else if uz < 1.0 +. (0.5 ** theta) then 1
      else
        int_of_float
          (float_of_int t.n *. (((eta *. u) -. eta +. 1.0) ** alpha))
    in
    let rank = if rank >= t.n then t.n - 1 else rank in
    if scramble then fnv64 rank mod t.n else rank

let support t = t.n

let describe t =
  match t.kind with
  | U -> "uniform"
  | Z { theta; scramble; _ } ->
    Printf.sprintf "%szipfian(%.2f)"
      (if scramble then "scrambled-" else "")
      theta
