(** Seeded key-popularity samplers for the YCSB-style harness.

    All draws flow through an owned {!Shasta_util.Prng}, so a sampler's
    output stream is a pure function of its construction arguments —
    the per-processor op streams built from them are deterministic per
    seed and independent of scheduling. *)

type dist =
  | Uniform
  | Zipfian  (** rank = key: hot keys are the low key ids *)
  | Scrambled  (** zipfian ranks spread over the keyspace by an FNV hash *)

val dist_of_string : string -> dist option
val dist_to_string : dist -> string

type t

val uniform : seed:int -> n:int -> t
(** Uniform over [0, n). *)

val zipfian : ?scramble:bool -> seed:int -> n:int -> theta:float -> unit -> t
(** The YCSB zipfian generator over ranks [0, n) with skew
    [theta in (0, 1)] (frequency of rank r proportional to 1/(r+1)^theta;
    YCSB's default skew is 0.99). With [scramble], ranks are spread over
    the keyspace by an FNV-1a hash, decorrelating popularity from key
    adjacency. The zeta normalizer is memoized per (n, theta). *)

val make : dist -> seed:int -> n:int -> theta:float -> t

val next : t -> int
(** Next key, in [0, n). *)

val support : t -> int
(** The keyspace size [n]. *)

val describe : t -> string
(** E.g. ["zipfian(0.99)"] — stable, used in rendered headers. *)
