module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Observer = Shasta_core.Observer
module Prng = Shasta_util.Prng
module Histogram = Shasta_util.Histogram
module Text_table = Shasta_util.Text_table
module Kv = Shasta_apps.Kv

type mix = A | B | C | D | E | F

let mix_of_string = function
  | "a" | "A" -> Some A
  | "b" | "B" -> Some B
  | "c" | "C" -> Some C
  | "d" | "D" -> Some D
  | "e" | "E" -> Some E
  | "f" | "F" -> Some F
  | _ -> None

let mix_to_string = function
  | A -> "a"
  | B -> "b"
  | C -> "c"
  | D -> "d"
  | E -> "e"
  | F -> "f"

(* Operation fractions (read, update, rmw, insert, scan) — the standard
   YCSB core-workload mixes. *)
let mix_fracs = function
  | A -> (0.5, 0.5, 0.0, 0.0, 0.0)
  | B -> (0.95, 0.05, 0.0, 0.0, 0.0)
  | C -> (1.0, 0.0, 0.0, 0.0, 0.0)
  | D -> (0.95, 0.0, 0.0, 0.05, 0.0)
  | E -> (0.0, 0.0, 0.0, 0.05, 0.95)
  | F -> (0.5, 0.0, 0.5, 0.0, 0.0)

let mix_describe = function
  | A -> "50% read / 50% update"
  | B -> "95% read / 5% update"
  | C -> "100% read"
  | D -> "95% read (latest) / 5% insert"
  | E -> "95% scan / 5% insert"
  | F -> "50% read / 50% read-modify-write"

let mix_has_inserts m =
  let _, _, _, i, _ = mix_fracs m in
  i > 0.0

type op_class = Read | Update | Rmw | Insert | Scan | Other

let class_name = function
  | Read -> "read"
  | Update -> "update"
  | Rmw -> "rmw"
  | Insert -> "insert"
  | Scan -> "scan"
  | Other -> "other"

let class_order = [ Read; Update; Rmw; Insert; Scan; Other ]
let nclasses = 6

let ci = function
  | Read -> 0
  | Update -> 1
  | Rmw -> 2
  | Insert -> 3
  | Scan -> 4
  | Other -> 5

type spec = {
  mix : mix;
  records : int;
  ops : int;
  dist : Sampler.dist;
  theta : float;
  scan_max : int;
  variant : Config.variant;
  nprocs : int;
  clustering : int;
  seed : int;
  progs : bool;
  shards : int;
}

let spec ?(mix = A) ?(records = 10_000) ?(ops = 40_000)
    ?(dist = Sampler.Zipfian) ?(theta = 0.99) ?(scan_max = 16)
    ?(variant = Config.Smp) ?(nprocs = 16) ?(clustering = 4) ?(seed = 42)
    ?(progs = true) ?(shards = -1) () =
  {
    mix;
    records;
    ops;
    dist;
    theta;
    scan_max;
    variant;
    nprocs;
    clustering;
    seed;
    progs;
    shards;
  }

type class_stats = {
  cls : op_class;
  count : int;
  latency : Histogram.t;
  msgs : int;
}

type result = {
  spec : spec;
  nbuckets : int;
  bcap : int;
  compiled : bool;
  shards_used : int;
  parallel_cycles : int;
  remote_msgs : int;
  local_msgs : int;
  downgrade_msgs : int;
  dropped_inserts : int;
  classes : class_stats list;
  oracle_ok : bool;
  oracle : string;
}

(* Process-wide aggregate over every run, for [bench --json] and the
   CLI report. Guarded: experiment targets may run on worker domains. *)
let totals_mutex = Mutex.create ()
let totals_runs = ref 0
let totals_ops = Array.make nclasses 0
let totals_msgs = Array.make nclasses 0
let totals_lat = Array.init nclasses (fun _ -> Histogram.create ())

let record_totals classes =
  Mutex.protect totals_mutex (fun () ->
      incr totals_runs;
      List.iter
        (fun c ->
          let i = ci c.cls in
          totals_ops.(i) <- totals_ops.(i) + c.count;
          totals_msgs.(i) <- totals_msgs.(i) + c.msgs;
          totals_lat.(i) <- Histogram.merge totals_lat.(i) c.latency)
        classes)

let totals () =
  Mutex.protect totals_mutex (fun () ->
      if !totals_runs = 0 then None
      else
        Some
          ( !totals_runs,
            List.filter_map
              (fun cls ->
                let i = ci cls in
                if totals_ops.(i) = 0 && totals_msgs.(i) = 0 then None
                else
                  Some
                    ( cls,
                      totals_ops.(i),
                      Histogram.merge totals_lat.(i) (Histogram.create ()),
                      totals_msgs.(i) ))
              class_order ))

let totals_json () =
  match totals () with
  | None -> None
  | Some (runs, classes) ->
    let cls_json (cls, ops, lat, msgs) =
      Printf.sprintf
        "\"%s\": { \"ops\": %d, \"p50\": %d, \"p99\": %d, \"p999\": %d, \
         \"msgs_per_op\": %.3f }"
        (class_name cls) ops
        (Histogram.percentile lat 0.5)
        (Histogram.percentile lat 0.99)
        (Histogram.percentile lat 0.999)
        (float_of_int msgs /. float_of_int (max 1 ops))
    in
    Some
      (Printf.sprintf "{ \"runs\": %d, \"classes\": { %s } }" runs
         (String.concat ", " (List.map cls_json classes)))

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let dist_describe spec =
  match spec.dist with
  | Sampler.Uniform -> "uniform"
  | Sampler.Zipfian -> Printf.sprintf "zipfian(%.2f)" spec.theta
  | Sampler.Scrambled -> Printf.sprintf "scrambled-zipfian(%.2f)" spec.theta

let value0 k = float_of_int ((k * 7) + 3)
let key_seed spec p = spec.seed + (p * 1_000_003) + 1
let sel_seed spec p = spec.seed + (p * 1_000_003) + 2

let run spec =
  if spec.records < 2 then invalid_arg "Ycsb.run: records < 2";
  if spec.ops < 1 then invalid_arg "Ycsb.run: ops < 1";
  if spec.scan_max < 1 then invalid_arg "Ycsb.run: scan_max < 1";
  let records = spec.records in
  let nbuckets = next_pow2 (max 16 (records / 6)) 16 in
  let np = spec.nprocs in
  let ins_cap = (spec.ops / np) + 1 in
  let has_inserts = mix_has_inserts spec.mix in
  let extra_keys = if has_inserts then ins_cap * np else 0 in
  (* Room for the expected per-bucket share of runtime inserts plus
     dispersion; overflow beyond the slack is dropped, deterministically
     and non-fatally. *)
  let slack =
    if has_inserts then 4 + (2 * ((spec.ops / 20 / nbuckets) + 1)) else 2
  in
  let plan = Kv.plan ~slack ~nbuckets ~records () in
  let heap = plan.Kv.bytes + (1 lsl 16) in
  let heap = max (1 lsl 22) ((heap + 4095) / 4096 * 4096) in
  let cfg =
    Config.create ~variant:spec.variant ~nprocs:np
      ~clustering:spec.clustering ~heap_bytes:heap ~seed:spec.seed
      ?shards:(if spec.shards >= 0 then Some spec.shards else None)
      ()
  in
  let h = Dsm.create cfg in
  let san =
    if cfg.Config.sanitize > 0 then
      Some (Shasta_check.Sanitizer.attach (Dsm.machine h))
    else None
  in
  let rd =
    if cfg.Config.sanitize > 1 then
      Some (Shasta_check.Races.attach (Dsm.machine h))
    else None
  in
  let t = Kv.create h ~slack ~nbuckets ~records ~extra_keys ~value0 () in
  let compiled = spec.progs && not has_inserts in
  let nkeys = records + extra_keys in
  let shadow =
    Array.init nkeys (fun k -> if k < records then value0 k else 0.0)
  in
  let live = Array.make nkeys false in
  Array.fill live 0 records true;
  (* Per-processor measurement state, merged in pid order after the run
     so results are independent of shard count and host scheduling.
     [cur.(p)] names the op class processor [p] is currently executing;
     the [on_send] hook runs on the sending processor's domain (its
     [src] is the executing processor), so reading [cur.(src)] there is
     race-free. *)
  let cur = Array.make np (ci Other) in
  let msgs = Array.init np (fun _ -> Array.make nclasses 0) in
  let lat =
    Array.init np (fun _ -> Array.init nclasses (fun _ -> Histogram.create ()))
  in
  let counts = Array.init np (fun _ -> Array.make nclasses 0) in
  let mism = Array.make np 0 in
  let dropped = Array.make np 0 in
  Dsm.add_observer h
    {
      Observer.nil with
      on_send =
        (fun ~src ~dst:_ ~now:_ _ ->
          let m = msgs.(src) in
          let c = cur.(src) in
          m.(c) <- m.(c) + 1);
    };
  let fr, fu, fm, fi, _fs = mix_fracs spec.mix in
  let c1 = fr in
  let c2 = c1 +. fu in
  let c3 = c2 +. fm in
  let c4 = c3 +. fi in
  let body ctx =
    let p = Dsm.pid ctx in
    let nprocs = Dsm.nprocs ctx in
    let ops_p =
      (spec.ops / nprocs) + (if p < spec.ops mod nprocs then 1 else 0)
    in
    let read_key =
      match (spec.mix, spec.dist) with
      | D, (Sampler.Zipfian | Sampler.Scrambled) ->
        (* "latest": the popularity ranking follows recency — map rank r
           to the r-th newest preloaded key. Runtime-inserted keys live
           in per-processor reserved ranges (for determinism), so reads
           target the initial keyspace only. *)
        let s =
          Sampler.zipfian ~seed:(key_seed spec p) ~n:records
            ~theta:spec.theta ()
        in
        fun () -> records - 1 - Sampler.next s
      | _ ->
        let s =
          Sampler.make spec.dist ~seed:(key_seed spec p) ~n:records
            ~theta:spec.theta
        in
        fun () -> Sampler.next s
    in
    let sel = Prng.create (sel_seed spec p) in
    let aux = [| 0.0; 0.0 |] in
    let gp = if compiled then Kv.progs_get t else [||] in
    let pp = if compiled then Kv.progs_put t else [||] in
    let rp = if compiled then Kv.progs_rmw t else [||] in
    let wseq = ref 0 in
    let next_val () =
      incr wseq;
      float_of_int ((p lsl 36) lor !wseq)
    in
    let ins_next = ref 0 in
    let miss () = mism.(p) <- mism.(p) + 1 in
    (* Closure ops; oracle bookkeeping happens inside the bucket's
       critical section, so the shadow sees writes in lock order. *)
    let do_read k =
      Kv.charge_hash t ctx;
      let b = Kv.bucket_of t k in
      if compiled then begin
        let s = Kv.slot_of t k in
        Kv.lock t ctx b;
        Kv.run_prog t ctx gp.(s) ~bucket:b ~aux;
        if aux.(1) <> shadow.(k) then miss ();
        Kv.unlock t ctx b
      end
      else begin
        Kv.lock t ctx b;
        (match Kv.probe_in t ctx k with
        | `Found s ->
          if Kv.read_slot t ctx ~bucket:b ~slot:s <> shadow.(k) then miss ()
        | `Absent _ -> if live.(k) then miss ());
        Kv.unlock t ctx b
      end
    in
    let do_update k v =
      Kv.charge_hash t ctx;
      let b = Kv.bucket_of t k in
      if compiled then begin
        let s = Kv.slot_of t k in
        aux.(0) <- v;
        Kv.lock t ctx b;
        Kv.run_prog t ctx pp.(s) ~bucket:b ~aux;
        shadow.(k) <- v;
        Kv.unlock t ctx b
      end
      else begin
        Kv.lock t ctx b;
        (match Kv.probe_in t ctx k with
        | `Found s ->
          Kv.write_slot t ctx ~bucket:b ~slot:s v;
          shadow.(k) <- v
        | `Absent _ -> miss ());
        Kv.unlock t ctx b
      end
    in
    let do_rmw k =
      Kv.charge_hash t ctx;
      let b = Kv.bucket_of t k in
      if compiled then begin
        let s = Kv.slot_of t k in
        aux.(0) <- 1.0;
        Kv.lock t ctx b;
        Kv.run_prog t ctx rp.(s) ~bucket:b ~aux;
        shadow.(k) <- shadow.(k) +. 1.0;
        Kv.unlock t ctx b
      end
      else begin
        Kv.lock t ctx b;
        (match Kv.probe_in t ctx k with
        | `Found s ->
          let v = Kv.read_slot t ctx ~bucket:b ~slot:s +. 1.0 in
          Kv.write_slot t ctx ~bucket:b ~slot:s v;
          shadow.(k) <- shadow.(k) +. 1.0
        | `Absent _ -> miss ());
        Kv.unlock t ctx b
      end
    in
    let do_insert () =
      let k = records + (p * ins_cap) + !ins_next in
      incr ins_next;
      let v = next_val () in
      Kv.charge_hash t ctx;
      let b = Kv.bucket_of t k in
      Kv.lock t ctx b;
      (match Kv.append_in t ctx ~key:k v with
      | Some _ ->
        shadow.(k) <- v;
        live.(k) <- true
      | None -> dropped.(p) <- dropped.(p) + 1);
      Kv.unlock t ctx b
    in
    let record cls t0 =
      let i = ci cls in
      Histogram.add lat.(p).(i) (Dsm.now ctx - t0);
      counts.(p).(i) <- counts.(p).(i) + 1
    in
    for _ = 1 to ops_p do
      let u = Prng.float sel 1.0 in
      if u < c1 then begin
        cur.(p) <- ci Read;
        let k = read_key () in
        let t0 = Dsm.now ctx in
        do_read k;
        record Read t0
      end
      else if u < c2 then begin
        cur.(p) <- ci Update;
        let k = read_key () in
        let v = next_val () in
        let t0 = Dsm.now ctx in
        do_update k v;
        record Update t0
      end
      else if u < c3 then begin
        cur.(p) <- ci Rmw;
        let k = read_key () in
        let t0 = Dsm.now ctx in
        do_rmw k;
        record Rmw t0
      end
      else if u < c4 then begin
        cur.(p) <- ci Insert;
        let t0 = Dsm.now ctx in
        do_insert ();
        record Insert t0
      end
      else begin
        cur.(p) <- ci Scan;
        let k0 = read_key () in
        let len = 1 + Prng.int sel spec.scan_max in
        let len = min len (records - k0) in
        let t0 = Dsm.now ctx in
        for j = 0 to len - 1 do
          do_read (k0 + j)
        done;
        record Scan t0
      end
    done;
    cur.(p) <- ci Other
  in
  Dsm.run h body;
  (match san with
  | Some san when Shasta_check.Sanitizer.violation_count san > 0 ->
    failwith
      (Printf.sprintf "ycsb run violated protocol invariants (%s)"
         (String.concat "; "
            (List.map Shasta_core.Inspect.describe
               (Shasta_check.Sanitizer.violations san))))
  | _ -> ());
  (match rd with
  | Some rd when Shasta_check.Races.race_count rd > 0 ->
    failwith
      (Printf.sprintf "ycsb run raced (%s)"
         (String.concat "; "
            (List.map Shasta_check.Races.describe (Shasta_check.Races.races rd))))
  | _ -> ());
  (* Per-key sequential-consistency oracle: every key's final value must
     be the last write in bucket-lock order, and bucket occupancies must
     account for every successful insert. *)
  let misreads = Array.fold_left ( + ) 0 mism in
  let stale = ref 0 in
  for k = 0 to nkeys - 1 do
    if live.(k) && Kv.peek_value t h k <> shadow.(k) then incr stale
  done;
  let badc = ref 0 in
  let pre = Kv.preloaded t and app = Kv.appended t in
  for b = 0 to Kv.nbuckets t - 1 do
    if Kv.peek_count t h b <> float_of_int (pre.(b) + app.(b)) then incr badc
  done;
  let oracle_ok = misreads = 0 && !stale = 0 && !badc = 0 in
  let oracle =
    if oracle_ok then
      Printf.sprintf "ok (%d keys match the lock-order shadow)"
        (records + Array.fold_left ( + ) 0 app)
    else
      Printf.sprintf "FAIL (%d read mismatches, %d stale keys, %d bad counts)"
        misreads !stale !badc
  in
  let classes =
    List.filter_map
      (fun cls ->
        let i = ci cls in
        let count = Array.fold_left (fun a c -> a + c.(i)) 0 counts in
        let m = Array.fold_left (fun a c -> a + c.(i)) 0 msgs in
        if count = 0 && m = 0 then None
        else
          Some
            {
              cls;
              count;
              latency =
                Array.fold_left
                  (fun acc per -> Histogram.merge acc per.(i))
                  (Histogram.create ()) lat;
              msgs = m;
            })
      class_order
  in
  record_totals classes;
  let downgrade_msgs = Dsm.downgrade_messages h in
  {
    spec;
    nbuckets;
    bcap = Kv.bcap t;
    compiled;
    shards_used = Dsm.shards_used h;
    parallel_cycles = Dsm.parallel_cycles h;
    remote_msgs = Dsm.messages_remote h;
    local_msgs = Dsm.messages_local h - downgrade_msgs;
    downgrade_msgs;
    dropped_inserts = Array.fold_left ( + ) 0 dropped;
    classes;
    oracle_ok;
    oracle;
  }

let render r =
  let spec = r.spec in
  let b = Buffer.create 512 in
  Printf.bprintf b
    "ycsb-%s (%s): %d records in %d buckets (cap %d), %d ops, %s keys, %s \
     %dp/%d, seed %d%s\n"
    (mix_to_string spec.mix) (mix_describe spec.mix) spec.records r.nbuckets
    r.bcap spec.ops (dist_describe spec)
    (match spec.variant with Config.Base -> "base" | Config.Smp -> "smp")
    spec.nprocs spec.clustering spec.seed
    (if r.compiled then ", access programs" else "");
  let rows =
    List.map
      (fun c ->
        [
          class_name c.cls;
          string_of_int c.count;
          string_of_int (Histogram.percentile c.latency 0.5);
          string_of_int (Histogram.percentile c.latency 0.99);
          string_of_int (Histogram.percentile c.latency 0.999);
          Printf.sprintf "%.2f"
            (float_of_int c.msgs /. float_of_int (max 1 c.count));
        ])
      r.classes
  in
  Buffer.add_string b
    (Text_table.render
       ~header:[ "class"; "ops"; "p50"; "p99"; "p999"; "msgs/op" ]
       rows);
  Buffer.add_char b '\n';
  Printf.bprintf b
    "parallel cycles %d | messages %d remote / %d local / %d downgrade | \
     dropped inserts %d | oracle %s\n"
    r.parallel_cycles r.remote_msgs r.local_msgs r.downgrade_msgs
    r.dropped_inserts r.oracle;
  Buffer.contents b
