(** YCSB-style traffic generator over the DSM-backed KV store
    ({!Shasta_apps.Kv}).

    A {!spec} fully determines a run: the standard workload mixes A-F,
    a key-popularity distribution ({!Sampler}), record/op counts and a
    machine shape. Every processor draws its own deterministic op
    stream from seeded samplers, so a run is reproducible per seed and
    — like every simulation here — bit-identical in virtual time
    whatever the shard count or host scheduling.

    Measurement is per {e op class} (read / update / rmw / insert /
    scan): each op's latency (cycles between entering and leaving the
    op, timed with [Dsm.now]) lands in a per-processor histogram, and
    every protocol message is attributed via an [on_send] hook to the
    class its sending processor is currently executing — hooks charge
    no cycles, so measuring is free. Per-processor series are merged in
    pid order after the run, keeping results shard-invariant.

    Correctness is checked like the registered apps: a host shadow copy
    is maintained inside the same bucket critical sections (per-key
    sequential consistency: every read must return the last value
    written in lock order, and the final table must equal the shadow),
    and [SHASTA_SANITIZE] attaches the sanitizer / race detector
    exactly as the experiment runner does. *)

module Histogram := Shasta_util.Histogram

type mix = A | B | C | D | E | F

val mix_of_string : string -> mix option
val mix_to_string : mix -> string

val mix_describe : mix -> string
(** E.g. ["50% read / 50% update"]. *)

type op_class = Read | Update | Rmw | Insert | Scan | Other

val class_name : op_class -> string

val class_order : op_class list
(** Fixed rendering/merge order. [Other] holds messages sent outside
    any op (none in the current bodies). *)

type spec = {
  mix : mix;
  records : int;  (** preloaded keys, >= 2 *)
  ops : int;  (** total ops, split round-robin over processors *)
  dist : Sampler.dist;
  theta : float;
  scan_max : int;  (** scan length is uniform in [1, scan_max] *)
  variant : Shasta_core.Config.variant;
  nprocs : int;
  clustering : int;
  seed : int;
  progs : bool;
      (** compile get/put/rmw probes to checked access programs when the
          mix allows it (no inserts); cycle-identical to the closure
          path *)
  shards : int;  (** [Config.shards] encoding, or [-1] for the
                     configuration default ([SHASTA_SHARDS]) *)
}

val spec :
  ?mix:mix ->
  ?records:int ->
  ?ops:int ->
  ?dist:Sampler.dist ->
  ?theta:float ->
  ?scan_max:int ->
  ?variant:Shasta_core.Config.variant ->
  ?nprocs:int ->
  ?clustering:int ->
  ?seed:int ->
  ?progs:bool ->
  ?shards:int ->
  unit ->
  spec
(** Defaults: workload A, 10_000 records, 40_000 ops, zipfian 0.99,
    scan_max 16, Smp 16 processors clustered 4, seed 42, progs on,
    shards from the environment. *)

type class_stats = {
  cls : op_class;
  count : int;  (** ops completed (scan = one op) *)
  latency : Histogram.t;  (** per-op cycles *)
  msgs : int;  (** protocol messages attributed to the class *)
}

type result = {
  spec : spec;
  nbuckets : int;
  bcap : int;
  compiled : bool;  (** the access-program path was used *)
  shards_used : int;
  parallel_cycles : int;
  remote_msgs : int;
  local_msgs : int;  (** excluding downgrades *)
  downgrade_msgs : int;
  dropped_inserts : int;  (** full-bucket inserts (deterministic) *)
  classes : class_stats list;  (** classes with activity, in order *)
  oracle_ok : bool;
  oracle : string;
}

val run : spec -> result
(** Execute the run. Raises [Failure] on a sanitizer violation or a
    detected race (like the experiment runner); an oracle failure is
    reported in [oracle_ok]/[oracle] instead so callers can render the
    result before failing. *)

val render : result -> string
(** The per-op-class table (count, p50/p99/p999 latency cycles,
    messages/op) plus totals — virtual-time quantities only, so the
    output is bit-identical across shard counts and host runs. *)

val totals :
  unit -> (int * (op_class * int * Histogram.t * int) list) option
(** [(runs, per-class (ops, merged latency, msgs))] aggregated over
    every {!run} in this process; [None] before the first. Guarded for
    concurrent runs. *)

val totals_json : unit -> string option
(** The aggregate as a JSON object (per class: ops, p50/p99/p999,
    msgs_per_op) for [bench --json]. *)
