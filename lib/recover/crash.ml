module Dsm = Shasta_core.Dsm

(* A crash is an engine event: at virtual cycle [at], before any
   processor executes at or past it, the node's processors are killed
   where they stand and [Recover.rebuild] repairs the survivors — one
   atomic step of simulated fail-stop plus recovery. *)

let event h ~node ~at ~mode =
  let m = Dsm.machine h in
  (at, fun ~kill ~now -> Recover.rebuild m ~node ~mode ~kill ~now)

let kill h ~node ~at = event h ~node ~at ~mode:Recover.Pull

let with_checkpoint h ~node ~at ~ckpt =
  event h ~node ~at ~mode:(Recover.Ckpt ckpt)
