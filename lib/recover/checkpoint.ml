module Layout = Shasta_mem.Layout
module Image = Shasta_mem.Image
module State_table = Shasta_mem.State_table
module Alloc = Shasta_mem.Alloc
module Bitset = Shasta_util.Bitset
module Machine = Shasta_core.Machine
module Msg = Shasta_core.Msg
module Observer = Shasta_core.Observer
module Directory = Shasta_core.Directory

(* A checkpoint is a consistent global snapshot of the protocol-visible
   durable state — per-node block images and state-table bases, private
   tables, and flattened directory entries — plus a log of every message
   sent since the snapshot. The snapshot piggybacks on the Observer
   [on_send] hook: it runs between scheduling points, charges no
   simulated cycles, and with [Config.ckpt = 0] no observer is installed
   at all, so simulated time is bit-identical with checkpointing off.

   Recovery uses a checkpoint in two ways: the data bytes of a block
   whose last copy died are restored from the snapshot copy of its
   then-owner, superseded by the payload of the last [Data_reply] for
   the block in the log (the freshest copy that ever crossed the wire);
   and the per-block directory image is rolled forward by replaying the
   log's ownership-changing messages as absolute updates, which makes
   replay idempotent — applying any prefix twice leaves the same state
   as applying it once. *)

let iter_blocks m f =
  let used = Alloc.used_bytes m.Machine.heap in
  let pos = ref 0 in
  while !pos < used do
    f !pos;
    pos := !pos + Machine.block_size m !pos
  done

type dir_snap = { ds_owner : int; ds_sharers : int list }

type node_snap = {
  nsn_data : (int * Bytes.t) list;  (** block -> bytes, ascending blocks *)
  nsn_states : (int * State_table.base) list;
}

type snap = {
  sn_cycle : int;
  sn_nodes : node_snap array;
  sn_privates : (int * State_table.base) list array;  (** per pid *)
  sn_dirs : (int * dir_snap) list;  (** block -> directory image *)
}

let snapshot ?(now = 0) m =
  let layout = m.Machine.layout in
  let blocks = ref [] in
  iter_blocks m (fun b -> blocks := b :: !blocks);
  let blocks = List.rev !blocks in
  let node_snap ns =
    {
      nsn_data =
        List.map
          (fun b ->
            (b, Image.snapshot ns.Machine.image ~addr:b ~len:(Machine.block_size m b)))
          blocks;
      nsn_states =
        List.map
          (fun b -> (b, State_table.get ns.Machine.table (Layout.line_of layout b)))
          blocks;
    }
  in
  {
    sn_cycle = now;
    sn_nodes = Array.map node_snap m.Machine.nodes;
    sn_privates =
      Array.map
        (fun tbl ->
          List.map (fun b -> (b, State_table.get tbl (Layout.line_of layout b))) blocks)
        m.Machine.privates;
    sn_dirs =
      List.map
        (fun b ->
          let home = Machine.home_of_block m b in
          match Directory.find m.Machine.dirs.(home) ~block:b with
          | Some e ->
            ( b,
              {
                ds_owner = e.Directory.owner;
                ds_sharers = Bitset.elements e.Directory.sharers;
              } )
          | None -> (b, { ds_owner = home; ds_sharers = [] }))
        blocks;
  }

(* Write a snapshot back into the machine: block bytes and state-table
   bases per node, private bases per processor, directory owner/sharers
   per block (busy cleared, queues dropped). Only meaningful on a
   machine with the same layout/allocations the snapshot was taken
   from. *)
let restore m s =
  let layout = m.Machine.layout in
  let set_lines tbl b st =
    let first = Layout.line_of layout b in
    let n = Machine.block_size m b / layout.Layout.line_size in
    for l = first to first + n - 1 do
      State_table.set tbl l st
    done
  in
  Array.iteri
    (fun i nsn ->
      let ns = m.Machine.nodes.(i) in
      List.iter
        (fun (b, data) -> Image.write_bytes ns.Machine.image ~addr:b data)
        nsn.nsn_data;
      List.iter (fun (b, st) -> set_lines ns.Machine.table b st) nsn.nsn_states)
    s.sn_nodes;
  Array.iteri
    (fun p states ->
      List.iter (fun (b, st) -> set_lines m.Machine.privates.(p) b st) states)
    s.sn_privates;
  List.iter
    (fun (b, d) ->
      let home = Machine.home_of_block m b in
      let e = Directory.entry m.Machine.dirs.(home) ~block:b ~home in
      e.Directory.owner <- d.ds_owner;
      e.Directory.sharers <- Bitset.of_list d.ds_sharers;
      e.Directory.busy <- false;
      e.Directory.queue <- [])
    s.sn_dirs

(* ------------------------------------------------------------------ *)
(* Log replay: the per-block directory image as a pure fold over the
   message log. Every update is absolute (sets membership or ownership
   outright, never increments), so the final value of each field is
   decided by the last relevant message — replaying any prefix a second
   time reproduces the same state, which is what makes a checkpoint
   whose log tail partially overlaps the next snapshot safe. *)

let replay_dir ~block (owner, sharers) (_src, dst, msg) =
  match msg with
  | Msg.Data_reply { kind = Msg.Read; block = b; _ } when b = block ->
    (owner, Bitset.add dst sharers)
  | Msg.Data_reply { block = b; _ } when b = block ->
    (dst, Bitset.singleton dst)
  | Msg.Upgrade_reply { block = b; _ } when b = block -> (dst, Bitset.singleton dst)
  | Msg.Invalidate { block = b; _ } when b = block ->
    (owner, Bitset.remove dst sharers)
  | Msg.Sharing_wb { block = b; new_sharer } when b = block ->
    (owner, Bitset.add new_sharer (Bitset.add owner sharers))
  | _ -> (owner, sharers)

let replay ~block init log = List.fold_left (replay_dir ~block) init log

(* ------------------------------------------------------------------ *)
(* The running checkpointer. *)

type t = {
  m : Machine.t;
  interval : int;
  mutable last_cycle : int;
  mutable snap : snap;
  mutable log : (int * int * Msg.t) list;  (** newest first *)
  mutable snapshots : int;
}

let observer t =
  {
    Observer.nil with
    Observer.on_send =
      (fun ~src ~dst ~now msg ->
        t.log <- (src, dst, msg) :: t.log;
        if now - t.last_cycle >= t.interval then begin
          t.snap <- snapshot ~now t.m;
          t.log <- [];
          t.last_cycle <- now;
          t.snapshots <- t.snapshots + 1
        end);
  }

(* Attach a checkpointer: the initial machine state (data born at its
   home) is itself the first snapshot, so a crash before the first
   interval elapses can still restore. Returns the checkpointer; its
   observer is installed on the machine. *)
let attach m ~interval =
  if interval <= 0 then invalid_arg "Checkpoint.attach: interval must be positive";
  let t =
    { m; interval; last_cycle = 0; snap = snapshot ~now:0 m; log = []; snapshots = 1 }
  in
  Machine.add_observer m (observer t);
  t

let snapshots t = t.snapshots
let log_length t = List.length t.log

(* Best-recoverable bytes for [block]: the payload of the last
   [Data_reply] for the block in the log, else the snapshot copy of the
   block's then-owner node. *)
let recover_data t ~block =
  let logged =
    List.fold_left
      (fun acc (_src, _dst, msg) ->
        match (acc, msg) with
        | None, Msg.Data_reply { block = b; data; _ } when b = block ->
          Some (Bytes.copy data)
        | _ -> acc)
      None (List.rev t.log)
  in
  match logged with
  | Some _ as r -> r
  | None -> (
    match List.assoc_opt block t.snap.sn_dirs with
    | None -> None
    | Some d ->
      let owner_node = Machine.node_of t.m d.ds_owner in
      List.assoc_opt block t.snap.sn_nodes.(owner_node).nsn_data
      |> Option.map Bytes.copy)

(* The directory image of [block] as of the crash instant: snapshot
   directory rolled forward through the log. *)
let recover_dir t ~block =
  let init =
    match List.assoc_opt block t.snap.sn_dirs with
    | Some d -> (d.ds_owner, Bitset.of_list d.ds_sharers)
    | None -> (Machine.home_of_block t.m block, Bitset.empty)
  in
  replay ~block init (List.rev t.log)
