module Layout = Shasta_mem.Layout
module Image = Shasta_mem.Image
module State_table = Shasta_mem.State_table
module Home_map = Shasta_mem.Home_map
module Bitset = Shasta_util.Bitset
module Network = Shasta_net.Network
module Machine = Shasta_core.Machine
module Config = Shasta_core.Config
module Timing = Shasta_core.Timing
module Msg = Shasta_core.Msg
module Directory = Shasta_core.Directory
module Miss_table = Shasta_core.Miss_table
module Downgrade = Shasta_core.Downgrade
module Inspect = Shasta_core.Inspect

type kind =
  | Data_loss of { block : int }
      (** every copy of the block's data died with the node and no
          checkpoint (or rescue donor) could supply it, while a live
          processor has a demand miss outstanding for it *)
  | Invariant of { detail : string }
      (** the post-recovery machine failed a liveness or coherence
          invariant (sanitizer-gated) *)

exception Recovery_violation of kind

type mode =
  | Pull  (** rebuild directory state from surviving sharers only *)
  | Ckpt of Checkpoint.t
      (** additionally restore lost data from the last checkpoint
          snapshot plus its message-log tail *)

let () =
  Printexc.register_printer (function
    | Recovery_violation (Data_loss { block }) ->
      Some (Printf.sprintf "Recovery_violation (Data_loss block 0x%x)" block)
    | Recovery_violation (Invariant { detail }) ->
      Some (Printf.sprintf "Recovery_violation (Invariant %s)" detail)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Small helpers over whole blocks (a block's lines always share one
   state — every protocol transition is block-granular).               *)

let lines_of_block m b =
  let layout = m.Machine.layout in
  (Layout.line_of layout b, Machine.block_size m b / layout.Layout.line_size)

let set_block_state m tbl b st =
  let first, n = lines_of_block m b in
  for l = first to first + n - 1 do
    State_table.set tbl l st
  done

let set_block_pending m tbl b v =
  let first, n = lines_of_block m b in
  for l = first to first + n - 1 do
    State_table.set_pending tbl l v
  done

let clear_block_markers m tbl b =
  let first, n = lines_of_block m b in
  for l = first to first + n - 1 do
    State_table.set_pending tbl l false;
    State_table.set_pending_downgrade tbl l false;
    State_table.set_batch_marker tbl l false
  done

let block_state m tbl b =
  State_table.get tbl (Layout.line_of m.Machine.layout b)

let embedded_requester = function
  | Msg.Fwd { requester; _ } | Msg.Invalidate { requester; _ } -> Some requester
  | _ -> None

let rank = function
  | State_table.Exclusive -> 2
  | State_table.Shared -> 1
  | State_table.Invalid -> 0

(* ------------------------------------------------------------------ *)
(* Planned re-injections.

   Recovery never calls protocol handlers directly; it repairs tables
   and re-sends the minimal set of messages whose loss would strand a
   live processor, and lets the ordinary protocol re-execute them. The
   plan is collected first (so the rescue and checkpoint paths can
   cancel re-requests they satisfy locally), then flushed in one
   deterministic batch. *)

type reinject = {
  rj_block : int;  (** -1 for synchronization messages *)
  rj_src : int;
  rj_dst : int;
  rj_msg : Msg.t;
  mutable rj_live : bool;
}

let rebuild m ~node ~mode ~kill ~now =
  let cfg = m.Machine.cfg in
  let layout = m.Machine.layout in
  let nprocs = cfg.Config.nprocs in
  let dead_pids = Config.procs_of_node cfg node in
  if m.Machine.dead_nodes.(node) then
    invalid_arg "Recover.rebuild: node already dead";
  if Machine.live_nodes m <= 1 then
    invalid_arg "Recover.rebuild: cannot crash the last live node";

  let plan = ref [] in
  let plan_send ?(block = -1) ~src ~dst msg =
    let r = { rj_block = block; rj_src = src; rj_dst = dst; rj_msg = msg; rj_live = true } in
    plan := r :: !plan;
    r
  in
  let planned p = List.exists (fun r -> r.rj_live && p r) !plan in

  (* 1. Stop the node's processors: their continuations are dropped
     where they stand, exactly as a machine check drops a real node
     mid-instruction. No cleanup code runs on the dying side. *)
  List.iter kill dead_pids;

  (* 2-3. Mark the node dead machine-wide and quarantine its traffic. *)
  List.iter (fun p -> m.Machine.dead.(p) <- true) dead_pids;
  m.Machine.dead_nodes.(node) <- true;
  m.Machine.has_dead <- true;
  m.Machine.crashes <- m.Machine.crashes + 1;
  List.iter (fun p -> Network.mark_dead m.Machine.net p) dead_pids;

  (* 4-5. Harvest then discard every in-flight message with a dead
     endpoint: the harvest tells us which blocks and which stranded
     synchronization operations the lost messages concerned. *)
  let harvested = ref [] in
  for dst = 0 to nprocs - 1 do
    Network.iter_queued m.Machine.net ~dst (fun ~src ~arrival:_ payload ->
        if m.Machine.dead.(src) || m.Machine.dead.(dst) then
          harvested := (src, dst, payload) :: !harvested)
  done;
  let harvested = List.rev !harvested in
  ignore (Network.purge_dead m.Machine.net : int);

  (* 6. The affected set: every block whose directory entry, in-flight
     traffic, or queued protocol work referenced the dead node. Only
     these blocks need surgery; everything else is untouched (which is
     what keeps recovery cost proportional to the crash, not the
     heap). *)
  let affected : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let touch b = Hashtbl.replace affected b () in
  let touch_msg msg = Option.iter touch (Msg.block_of msg) in
  let all_blocks = ref [] in
  Checkpoint.iter_blocks m (fun b -> all_blocks := b :: !all_blocks);
  let all_blocks = List.rev !all_blocks in
  List.iter
    (fun b -> if m.Machine.dead.(Machine.home_of_block m b) then touch b)
    all_blocks;
  List.iter (fun (_, _, msg) -> touch_msg msg) harvested;
  for p = 0 to nprocs - 1 do
    if not m.Machine.dead.(p) then
      Directory.iter
        (fun block e ->
          let dead_ref =
            m.Machine.dead.(e.Directory.owner)
            || List.exists (fun q -> m.Machine.dead.(q))
                 (Bitset.elements e.Directory.sharers)
            || List.exists (fun (src, _) -> m.Machine.dead.(src)) e.Directory.queue
          in
          if dead_ref then touch block)
        m.Machine.dirs.(p)
  done;
  for n = 0 to Config.nnodes cfg - 1 do
    if not m.Machine.dead_nodes.(n) then begin
      let ns = m.Machine.nodes.(n) in
      Downgrade.iter
        (fun de ->
          let deferred_dead =
            match de.Downgrade.deferred with
            | Downgrade.Reply_read { requester }
            | Downgrade.Reply_readex { requester; _ }
            | Downgrade.Inval_done { requester } -> m.Machine.dead.(requester)
            | Downgrade.Recovered -> false
          in
          let queued_dead =
            List.exists
              (fun (src, msg) ->
                m.Machine.dead.(src)
                || match embedded_requester msg with
                   | Some r -> m.Machine.dead.(r)
                   | None -> false)
              de.Downgrade.queued
          in
          if deferred_dead || queued_dead then touch de.Downgrade.block)
        ns.Machine.downgrades;
      Miss_table.iter
        (fun me ->
          if
            List.exists
              (fun (src, msg) ->
                m.Machine.dead.(src)
                || match embedded_requester msg with
                   | Some r -> m.Machine.dead.(r)
                   | None -> false)
              me.Miss_table.queued_fwds
          then touch me.Miss_table.block)
        ns.Machine.misses
    end
  done;
  for dst = 0 to nprocs - 1 do
    Network.iter_queued m.Machine.net ~dst (fun ~src:_ ~arrival:_ payload ->
        match embedded_requester payload with
        | Some r when m.Machine.dead.(r) -> touch_msg payload
        | _ -> ())
  done;
  let affected_blocks =
    Hashtbl.fold (fun b () acc -> b :: acc) affected [] |> List.sort compare
  in

  (* 7. Scrub the dead node: tables invalid, images flag-stamped (the
     bytes are gone), protocol tables emptied, its processors' per-proc
     state reset. *)
  let dead_ns = m.Machine.nodes.(node) in
  List.iter
    (fun b ->
      set_block_state m dead_ns.Machine.table b State_table.Invalid;
      clear_block_markers m dead_ns.Machine.table b;
      Image.write_invalid_flag dead_ns.Machine.image ~addr:b
        ~len:(Machine.block_size m b);
      List.iter
        (fun p -> set_block_state m m.Machine.privates.(p) b State_table.Invalid)
        dead_pids)
    all_blocks;
  Miss_table.clear dead_ns.Machine.misses;
  Downgrade.clear dead_ns.Machine.downgrades;
  Hashtbl.reset dead_ns.Machine.deferred_flags;
  Hashtbl.reset dead_ns.Machine.batch_lines;
  Hashtbl.reset dead_ns.Machine.batch_wranges;
  List.iter
    (fun p ->
      Directory.clear m.Machine.dirs.(p);
      let ps = m.Machine.procs.(p) in
      Hashtbl.reset ps.Machine.granted;
      Hashtbl.reset ps.Machine.barrier_seen;
      ps.Machine.finished <- true;
      ps.Machine.waiting_lock <- None;
      ps.Machine.waiting_barrier <- None)
    dead_pids;
  Hashtbl.reset m.Machine.barrier_local.(node);

  (* 8. Re-home dead-homed blocks: walk forward from the old home to the
     next live processor. All blocks of a page share a home, so the walk
     is per-page-stable and [set_home]'s page granularity is safe. *)
  let next_live_from p =
    let rec go k =
      if k = nprocs then invalid_arg "Recover.rebuild: no live processor"
      else
        let q = (p + k) mod nprocs in
        if m.Machine.dead.(q) then go (k + 1) else q
    in
    go 1
  in
  List.iter
    (fun b ->
      let home = Machine.home_of_block m b in
      if m.Machine.dead.(home) then
        Home_map.set_home m.Machine.homes layout ~addr:b
          ~len:(Machine.block_size m b) ~proc:(next_live_from home))
    affected_blocks;

  (* 9. Cancel live-live in-flight messages that name an affected block
     — the rebuilt directory regenerates them — except intra-node
     [Downgrade] messages, whose countdown must complete. Cancelling an
     exclusive data reply un-sends it: the source had already stamped
     its copy invalid when it snapshotted the payload, so the bytes are
     restored there and it becomes the surviving owner. *)
  let cancelled =
    Network.purge_where m.Machine.net (fun ~src:_ ~dst:_ msg ->
        match msg with
        | Msg.Downgrade _ -> false
        | _ -> (
          match Msg.block_of msg with
          | Some b -> Hashtbl.mem affected b
          | None -> false))
  in
  List.iter
    (fun (src, _dst, msg) ->
      match msg with
      | Msg.Data_reply { kind; block; data; _ } when kind <> Msg.Read ->
        let sn = Machine.node_of m src in
        let ns = m.Machine.nodes.(sn) in
        Image.write_bytes ns.Machine.image ~addr:block data;
        set_block_state m ns.Machine.table block State_table.Exclusive;
        set_block_state m m.Machine.privates.(src) block State_table.Exclusive
      | _ -> ())
    cancelled;

  (* 10. Surviving-node surgery per affected block: reset every miss
     entry to the state "request sent, nothing received" and plan a
     fresh request to the (possibly new) home; queued forwards and
     queued downgrade work are dropped (the rebuilt directory will
     regenerate them); deferred downgrade actions are rewritten to
     complete locally (the rescue in step 11 may rewrite one back to a
     live reply). *)
  let miss_plan : (int * int, reinject) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let home = Machine.home_of_block m b in
      for n = 0 to Config.nnodes cfg - 1 do
        if not m.Machine.dead_nodes.(n) then begin
          let ns = m.Machine.nodes.(n) in
          (match Miss_table.find ns.Machine.misses ~block:b with
          | None -> ()
          | Some me ->
            me.Miss_table.queued_fwds <- [];
            me.Miss_table.acks_expected <- -1;
            me.Miss_table.acks_received <- 0;
            me.Miss_table.inval_after_reply <- false;
            let kind =
              if me.Miss_table.data_ready then begin
                (* Data already applied; only invalidation acks were
                   lost. Convert to an upgrade so the rebuilt directory
                   re-invalidates the other sharers through the normal
                   path. *)
                me.Miss_table.data_ready <- false;
                me.Miss_table.kind <- Msg.Upgrade;
                me.Miss_table.upgrade_after_reply <- false;
                set_block_pending m ns.Machine.table b true;
                Msg.Upgrade
              end
              else me.Miss_table.kind
            in
            let rj =
              plan_send ~block:b ~src:me.Miss_table.requester ~dst:home
                (Msg.Req { kind; block = b })
            in
            Hashtbl.replace miss_plan (b, n) rj);
          match Downgrade.find ns.Machine.downgrades ~block:b with
          | None -> ()
          | Some de ->
            de.Downgrade.queued <- [];
            de.Downgrade.deferred <- Downgrade.Recovered
        end
      done)
    affected_blocks;

  (* 11. Directory rebuild per affected block, at its post-re-homing
     home: reconstruct owner and sharers from the surviving nodes'
     effective states (a node mid-downgrade counts at its downgrade
     target — the state it is committed to reach). A node's
     representative is the requester of its resident miss entry when one
     exists (so the re-injected request finds itself in the sharer set),
     else its highest private copy-holder. *)
  List.iter
    (fun b ->
      let home = Machine.home_of_block m b in
      let home_node = Machine.node_of m home in
      let eff n =
        let ns = m.Machine.nodes.(n) in
        match Downgrade.find ns.Machine.downgrades ~block:b with
        | Some de -> de.Downgrade.target
        | None -> block_state m ns.Machine.table b
      in
      let rep n =
        match Miss_table.find m.Machine.nodes.(n).Machine.misses ~block:b with
        | Some me -> me.Miss_table.requester
        | None ->
          let line = Layout.line_of layout b in
          let best = ref (-1) and best_rank = ref (-1) in
          List.iter
            (fun p ->
              let r = rank (State_table.get m.Machine.privates.(p) line) in
              if r > !best_rank then begin
                best := p;
                best_rank := r
              end)
            (Config.procs_of_node cfg n);
          !best
      in
      let live_nodes = ref [] in
      for n = Config.nnodes cfg - 1 downto 0 do
        if not m.Machine.dead_nodes.(n) then live_nodes := n :: !live_nodes
      done;
      let valid_nodes = List.filter (fun n -> eff n <> State_table.Invalid) !live_nodes in
      let e = Directory.entry m.Machine.dirs.(home) ~block:b ~home in
      e.Directory.busy <- false;
      e.Directory.queue <- [];
      if valid_nodes <> [] then begin
        e.Directory.sharers <- Bitset.of_list (List.map rep valid_nodes);
        e.Directory.owner <-
          (match
             List.find_opt (fun n -> eff n = State_table.Exclusive) valid_nodes
           with
          | Some n -> rep n
          | None ->
            if List.mem home_node valid_nodes then rep home_node
            else rep (List.hd valid_nodes))
      end
      else begin
        (* No surviving node holds (or is committed to hold) a valid
           copy. A node mid-downgrade to invalid still physically has
           the bytes: rescue them by rewriting its deferred action into
           an exclusive reply to a miss entry at the home — from there
           the ordinary reply / ownership-ack machinery finishes the
           transfer. *)
        let donor =
          List.find_opt
            (fun n ->
              match
                Downgrade.find m.Machine.nodes.(n).Machine.downgrades ~block:b
              with
              | Some de -> de.Downgrade.target = State_table.Invalid
              | None -> false)
            !live_nodes
        in
        match donor with
        | Some n ->
          let de =
            Option.get
              (Downgrade.find m.Machine.nodes.(n).Machine.downgrades ~block:b)
          in
          let hns = m.Machine.nodes.(home_node) in
          let requester =
            match Miss_table.find hns.Machine.misses ~block:b with
            | Some me ->
              me.Miss_table.kind <- Msg.Readex;
              me.Miss_table.data_ready <- false;
              me.Miss_table.acks_expected <- -1;
              me.Miss_table.acks_received <- 0;
              me.Miss_table.upgrade_after_reply <- false;
              me.Miss_table.inval_after_reply <- false;
              (match Hashtbl.find_opt miss_plan (b, home_node) with
              | Some rj -> rj.rj_live <- false
              | None -> ());
              me.Miss_table.requester
            | None ->
              ignore
                (Miss_table.add hns.Machine.misses ~block:b ~requester:home
                   ~kind:Msg.Readex ~now
                  : Miss_table.entry);
              home
          in
          set_block_pending m hns.Machine.table b true;
          de.Downgrade.deferred <-
            Downgrade.Reply_readex { requester; inval_acks = 0 };
          e.Directory.owner <- requester;
          e.Directory.sharers <- Bitset.singleton requester;
          e.Directory.busy <- true
        | None -> (
          (* True data loss: the block's only copies died. *)
          let demand n =
            Miss_table.find m.Machine.nodes.(n).Machine.misses ~block:b
          in
          let restore_from data skip =
            let hns = m.Machine.nodes.(home_node) in
            Image.write_bytes hns.Machine.image ~addr:b ~skip data;
            set_block_state m hns.Machine.table b State_table.Exclusive;
            match demand home_node with
            | Some me ->
              (* Complete the home-resident miss locally: stalled
                 accesses observe [data_ready] through their entry
                 reference and re-run their checks against the restored
                 exclusive copy. *)
              (match Hashtbl.find_opt miss_plan (b, home_node) with
              | Some rj -> rj.rj_live <- false
              | None -> ());
              me.Miss_table.data_ready <- true;
              me.Miss_table.acks_expected <- 0;
              me.Miss_table.acks_received <- 0;
              set_block_state m m.Machine.privates.(me.Miss_table.requester) b
                State_table.Exclusive;
              Miss_table.remove hns.Machine.misses me;
              Bitset.iter
                (fun p ->
                  let q = m.Machine.procs.(p) in
                  q.Machine.outstanding_stores <- q.Machine.outstanding_stores - 1)
                me.Miss_table.store_procs;
              set_block_pending m hns.Machine.table b false;
              e.Directory.owner <- me.Miss_table.requester;
              e.Directory.sharers <- Bitset.singleton me.Miss_table.requester
            | None ->
              set_block_state m m.Machine.privates.(home) b State_table.Exclusive;
              set_block_pending m hns.Machine.table b false;
              e.Directory.owner <- home;
              e.Directory.sharers <- Bitset.singleton home
          in
          let reinit_or_fail () =
            if List.exists (fun n -> demand n <> None) !live_nodes then
              raise (Recovery_violation (Data_loss { block = b }))
            else
              (* No live processor has ever demanded the block since the
                 loss; re-initialize it zeroed at the home, as at
                 allocation time. *)
              restore_from (Bytes.make (Machine.block_size m b) '\000') []
          in
          match mode with
          | Pull -> reinit_or_fail ()
          | Ckpt ck -> (
            match Checkpoint.recover_data ck ~block:b with
            | None -> reinit_or_fail ()
            | Some data ->
              let skip =
                match demand home_node with
                | Some me -> me.Miss_table.store_ranges
                | None -> []
              in
              restore_from data skip))
      end)
    affected_blocks;

  (* 12a. Re-route stranded synchronization traffic. Lock and barrier
     manager state lives in global tables that survive the manager's
     death — a dead manager is purely a lost-messages problem, and
     [Machine.lock_home]/[barrier_home] already fail over to the next
     live processor. Requests that were in flight to the dead manager
     are re-sent there; grants and releases the dead manager had in
     flight to live processors are re-sent from the new manager. *)
  List.iter
    (fun (src, dst, msg) ->
      let src_live = not m.Machine.dead.(src) and dst_live = not m.Machine.dead.(dst) in
      match msg with
      | Msg.Lock_req { lock } when src_live && not dst_live ->
        ignore (plan_send ~src ~dst:(Machine.lock_home m lock) msg)
      | Msg.Lock_release { lock } when src_live && not dst_live ->
        ignore (plan_send ~src ~dst:(Machine.lock_home m lock) msg)
      | Msg.Barrier_arrive { barrier } when src_live && not dst_live ->
        ignore (plan_send ~src ~dst:(Machine.barrier_home m barrier) msg)
      | Msg.Lock_grant { lock } when dst_live && not src_live ->
        ignore (plan_send ~src:(Machine.lock_home m lock) ~dst msg)
      | Msg.Barrier_release { barrier; _ } when dst_live && not src_live ->
        ignore (plan_send ~src:(Machine.barrier_home m barrier) ~dst msg)
      | _ -> ())
    harvested;

  (* The in-flight picture after all purges, for the stranded-waiter
     checks below. *)
  let inflight = ref [] in
  for dst = 0 to nprocs - 1 do
    Network.iter_queued m.Machine.net ~dst (fun ~src ~arrival:_ payload ->
        inflight := (src, dst, payload) :: !inflight)
  done;
  let inflight = !inflight in

  (* 12b. Lock surgery: drop dead waiters; a dead holder's lock passes
     to the oldest live waiter exactly as a release would have granted
     it; a live waiter with no trace of its request anywhere (state,
     wire, or plan) lost it to the purge and re-issues. *)
  let locks =
    Hashtbl.fold (fun id ls acc -> (id, ls) :: acc) m.Machine.locks []
    |> List.sort compare
  in
  List.iter
    (fun (id, ls) ->
      ls.Machine.lock_queue <-
        List.filter (fun p -> not m.Machine.dead.(p)) ls.Machine.lock_queue;
      if ls.Machine.held && m.Machine.dead.(ls.Machine.holder) then begin
        match List.rev ls.Machine.lock_queue with
        | [] ->
          ls.Machine.held <- false;
          ls.Machine.holder <- -1
        | oldest :: rest ->
          ls.Machine.lock_queue <- List.rev rest;
          ls.Machine.holder <- oldest;
          ignore
            (plan_send ~src:(Machine.lock_home m id) ~dst:oldest
               (Msg.Lock_grant { lock = id }))
      end)
    locks;
  for p = 0 to nprocs - 1 do
    if not m.Machine.dead.(p) then begin
      let ps = m.Machine.procs.(p) in
      match ps.Machine.waiting_lock with
      | None -> ()
      | Some l ->
        let ls = Hashtbl.find m.Machine.locks l in
        let accounted =
          (ls.Machine.held && ls.Machine.holder = p)
          || List.mem p ls.Machine.lock_queue
          || Hashtbl.mem ps.Machine.granted l
          || List.exists
               (fun (src, _, msg) -> src = p && msg = Msg.Lock_req { lock = l })
               inflight
          || List.exists
               (fun (_, dst, msg) -> dst = p && msg = Msg.Lock_grant { lock = l })
               inflight
          || planned (fun r ->
                 (r.rj_src = p && r.rj_msg = Msg.Lock_req { lock = l })
                 || (r.rj_dst = p && r.rj_msg = Msg.Lock_grant { lock = l }))
        in
        if not accounted then
          ignore
            (plan_send ~src:p ~dst:(Machine.lock_home m l)
               (Msg.Lock_req { lock = l }))
    end
  done;

  (* 12c. Barrier surgery. Dead arrivals are subtracted; if the
     surviving arrivals now satisfy the (live) expected count the
     episode releases here, exactly as the manager would have. Then
     stranded live waiters: a waiter the manager has not heard from and
     whose arrival is not on the wire re-arrives; a waiter whose episode
     already released but whose release message died gets the release
     re-sent. Crashes take out whole nodes, so hierarchical intra-node
     combining is never split — only whole-node arrivals and releases
     can be lost. *)
  let hierarchical = cfg.Config.smp_sync && cfg.Config.clustering > 1 in
  let barriers =
    Hashtbl.fold (fun id bs acc -> (id, bs) :: acc) m.Machine.barriers []
    |> List.sort compare
  in
  List.iter
    (fun (id, bs) ->
      bs.Machine.arrived_procs <-
        List.filter (fun p -> not m.Machine.dead.(p)) bs.Machine.arrived_procs;
      bs.Machine.arrived <- List.length bs.Machine.arrived_procs;
      let expected =
        if hierarchical then Machine.live_nodes m else Machine.live_procs m
      in
      if bs.Machine.arrived >= expected && bs.Machine.arrived > 0 then begin
        bs.Machine.arrived <- 0;
        bs.Machine.arrived_procs <- [];
        bs.Machine.generation <- bs.Machine.generation + 1;
        let generation = bs.Machine.generation in
        let mgr = Machine.barrier_home m id in
        if hierarchical then
          for n = 0 to Config.nnodes cfg - 1 do
            if not m.Machine.dead_nodes.(n) then
              ignore
                (plan_send ~src:mgr
                   ~dst:(List.hd (Config.procs_of_node cfg n))
                   (Msg.Barrier_release { barrier = id; generation }))
          done
        else
          for p = 0 to nprocs - 1 do
            if not m.Machine.dead.(p) then
              ignore
                (plan_send ~src:mgr ~dst:p
                   (Msg.Barrier_release { barrier = id; generation }))
          done
      end)
    barriers;
  let arrive_inflight pred =
    List.exists
      (fun (src, _, msg) ->
        match msg with Msg.Barrier_arrive _ -> pred src msg | _ -> false)
      inflight
    || planned (fun r ->
           match r.rj_msg with Msg.Barrier_arrive _ -> pred r.rj_src r.rj_msg | _ -> false)
  in
  let release_inflight pred =
    List.exists
      (fun (_, dst, msg) ->
        match msg with Msg.Barrier_release _ -> pred dst msg | _ -> false)
      inflight
    || planned (fun r ->
           match r.rj_msg with
           | Msg.Barrier_release _ -> pred r.rj_dst r.rj_msg
           | _ -> false)
  in
  if hierarchical then
    for n = 0 to Config.nnodes cfg - 1 do
      if not m.Machine.dead_nodes.(n) then begin
        let node_pids = Config.procs_of_node cfg n in
        let head = List.hd node_pids in
        let waiting_ids =
          List.filter_map
            (fun p -> m.Machine.procs.(p).Machine.waiting_barrier)
            node_pids
          |> List.sort_uniq compare
        in
        List.iter
          (fun b ->
            let bs = Hashtbl.find m.Machine.barriers b in
            let lbs =
              Hashtbl.find_opt m.Machine.barrier_local.(n) b
              |> Option.value
                   ~default:{ Machine.arrived = 0; generation = 0; arrived_procs = [] }
            in
            let is_b = function
              | Msg.Barrier_arrive { barrier } | Msg.Barrier_release { barrier; _ } ->
                barrier = b
              | _ -> false
            in
            if
              bs.Machine.generation > lbs.Machine.generation
              && not (release_inflight (fun dst msg -> dst = head && is_b msg))
            then
              ignore
                (plan_send ~src:(Machine.barrier_home m b) ~dst:head
                   (Msg.Barrier_release
                      { barrier = b; generation = bs.Machine.generation }))
            else if
              lbs.Machine.arrived = 0
              && (not
                    (List.exists
                       (fun p -> List.mem p node_pids)
                       bs.Machine.arrived_procs))
              && not
                   (arrive_inflight (fun src msg -> List.mem src node_pids && is_b msg))
            then
              ignore
                (plan_send ~src:head ~dst:(Machine.barrier_home m b)
                   (Msg.Barrier_arrive { barrier = b })))
          waiting_ids
      end
    done
  else
    for p = 0 to nprocs - 1 do
      if not m.Machine.dead.(p) then begin
        let ps = m.Machine.procs.(p) in
        match ps.Machine.waiting_barrier with
        | None -> ()
        | Some b ->
          let bs = Hashtbl.find m.Machine.barriers b in
          let seen =
            Option.value ~default:0 (Hashtbl.find_opt ps.Machine.barrier_seen b)
          in
          let is_b = function
            | Msg.Barrier_arrive { barrier } | Msg.Barrier_release { barrier; _ } ->
              barrier = b
            | _ -> false
          in
          if bs.Machine.generation > seen then begin
            if not (release_inflight (fun dst msg -> dst = p && is_b msg)) then
              ignore
                (plan_send ~src:(Machine.barrier_home m b) ~dst:p
                   (Msg.Barrier_release
                      { barrier = b; generation = bs.Machine.generation }))
          end
          else if
            (not (List.mem p bs.Machine.arrived_procs))
            && not (arrive_inflight (fun src msg -> src = p && is_b msg))
          then
            ignore
              (plan_send ~src:p ~dst:(Machine.barrier_home m b)
                 (Msg.Barrier_arrive { barrier = b }))
      end
    done;

  (* Flush the plan: one deterministic batch of re-sent messages. Each
     costs a remote send of recovery time (charged to the machine-wide
     recovery counter, not to any processor's clock — the dead node's
     failover hardware does this work in the model). *)
  let to_send =
    List.filter (fun r -> r.rj_live) (List.rev !plan)
    |> List.stable_sort (fun a b ->
           compare
             (a.rj_block, a.rj_src, a.rj_dst, Msg.tag a.rj_msg)
             (b.rj_block, b.rj_src, b.rj_dst, Msg.tag b.rj_msg))
  in
  List.iter
    (fun r ->
      Network.send m.Machine.net ~src:r.rj_src ~dst:r.rj_dst ~now
        ~size:(Msg.size_bytes r.rj_msg) r.rj_msg;
      match m.Machine.observer with
      | None -> ()
      | Some o -> o.Shasta_core.Observer.on_send ~src:r.rj_src ~dst:r.rj_dst ~now r.rj_msg)
    to_send;
  m.Machine.recovery_cycles <-
    m.Machine.recovery_cycles
    + (List.length to_send * cfg.Config.timing.Timing.remote_send);

  (* 13. Verify (sanitizer-gated): every surviving in-flight endpoint,
     lock holder and barrier arrival must be live, and the machine-wide
     coherence invariants must hold (modulo blocks with legitimate
     in-flight activity). *)
  if cfg.Config.sanitize > 0 then begin
    let problems = ref [] in
    let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
    for dst = 0 to nprocs - 1 do
      Network.iter_queued m.Machine.net ~dst (fun ~src ~arrival:_ payload ->
          if m.Machine.dead.(src) || m.Machine.dead.(dst) then
            add "in-flight %s between dead endpoints %d->%d" (Msg.describe payload)
              src dst)
    done;
    List.iter
      (fun (id, ls) ->
        if ls.Machine.held && m.Machine.dead.(ls.Machine.holder) then
          add "lock %d held by dead processor %d" id ls.Machine.holder)
      locks;
    List.iter
      (fun (id, bs) ->
        List.iter
          (fun p ->
            if m.Machine.dead.(p) then add "barrier %d counts dead arrival %d" id p)
          bs.Machine.arrived_procs)
      barriers;
    List.iter (fun v -> add "%s" (Inspect.describe v)) (Inspect.report m);
    match List.rev !problems with
    | [] -> ()
    | ps ->
      raise (Recovery_violation (Invariant { detail = String.concat "; " ps }))
  end
