(** Periodic global checkpoints with message logging.

    A checkpointer snapshots the protocol-visible durable state — block
    images, state-table bases, private tables, and flattened directory
    entries — and logs every message sent since the snapshot, re-
    snapshotting when the configured interval of virtual cycles has
    elapsed. Both piggyback on the {!Shasta_core.Observer.on_send} hook:
    they charge no simulated cycles, and with checkpointing off no
    observer is installed, so simulated time is bit-identical.

    Crash recovery ({!Recover}, mode [Ckpt]) restores a lost block's
    bytes from the last logged data reply for the block, falling back to
    the snapshot copy of its then-owner, and can roll a block's
    directory image forward by replaying the log. Replay applies each
    message as an absolute update, so replaying any log prefix twice
    equals replaying it once (checked by the QCheck round-trip tests). *)

type snap
(** A consistent global snapshot. *)

type t
(** A running checkpointer attached to a machine. *)

val attach : Shasta_core.Machine.t -> interval:int -> t
(** Install the checkpointing observer; the machine's initial state is
    taken as the first snapshot. [interval] is in virtual cycles and
    must be positive ([Config.ckpt] holds the configured value; 0 means
    checkpointing is off and [attach] must not be called). *)

val snapshot : ?now:int -> Shasta_core.Machine.t -> snap
(** One consistent snapshot of the machine, independent of any attached
    checkpointer. *)

val restore : Shasta_core.Machine.t -> snap -> unit
(** Write a snapshot back into the machine: images, state tables,
    private tables, and directory owner/sharer sets (busy flags cleared,
    queues dropped). [restore m (snapshot m)] is an identity on that
    state ([snapshot (restore m s) = s] is the QCheck property). *)

val snapshots : t -> int
(** Snapshots taken so far (at least 1 — the initial one). *)

val log_length : t -> int
(** Messages logged since the last snapshot. *)

val recover_data : t -> block:int -> Bytes.t option
(** Best-recoverable bytes for a block: the payload of the last logged
    data reply for it, else the snapshot copy of its then-owner node.
    [None] only for a block unknown to the snapshot. *)

val recover_dir : t -> block:int -> int * Shasta_util.Bitset.t
(** The block's (owner, sharers) directory image as of now: the snapshot
    image rolled forward through the log with {!replay}. *)

val replay :
  block:int ->
  int * Shasta_util.Bitset.t ->
  (int * int * Shasta_core.Msg.t) list ->
  int * Shasta_util.Bitset.t
(** Pure per-block fold of (src, dst, msg) log entries over an (owner,
    sharers) directory image, oldest first. Idempotent per prefix: every
    update is absolute, so the last relevant message decides each
    field. *)

val iter_blocks : Shasta_core.Machine.t -> (int -> unit) -> unit
(** Iterate the base addresses of all allocated blocks, ascending. *)
