(** Node-crash recovery: rebuild directory and protocol state after a
    fail-stop node crash.

    A crash kills every processor of one coherence node mid-run
    (continuations dropped where they stand, in-flight messages to and
    from the node discarded) and then repairs the survivors so the run
    can resume: dead-homed blocks are re-homed to the next live
    processor and their directory entries reconstructed from the
    surviving sharers' states (pull) or from a checkpoint plus message-
    log replay ({!mode} [Ckpt]); miss entries whose replies died are
    reset and their requests re-injected; a block whose only copy was
    mid-downgrade to invalid on a survivor is rescued from that node's
    still-present bytes; stranded lock and barrier waiters are re-issued
    or re-granted (manager state is global and survives — a dead
    manager only loses messages, and managers fail over by id).

    Recovery is exact about what it cannot do: if every copy of a
    block's data died with the node, no checkpoint covers it, and a live
    processor is waiting on it, it raises {!Recovery_violation}
    ([Data_loss]) rather than fabricate bytes. *)

type kind =
  | Data_loss of { block : int }
      (** every copy died, nothing can restore it, and a live processor
          has a demand miss outstanding for it *)
  | Invariant of { detail : string }
      (** the post-recovery machine failed a liveness or coherence
          invariant (checked when [Config.sanitize > 0]) *)

exception Recovery_violation of kind

type mode =
  | Pull  (** rebuild from surviving sharers only *)
  | Ckpt of Checkpoint.t
      (** additionally restore lost data from checkpoint + log *)

val rebuild :
  Shasta_core.Machine.t ->
  node:int ->
  mode:mode ->
  kill:(int -> unit) ->
  now:int ->
  unit
(** Crash coherence node [node] at virtual cycle [now] and recover.
    [kill] is the engine's kill function (see
    {!Shasta_sim.Engine.run}'s [events]); recovery runs atomically
    between scheduling points. Re-injected messages charge
    [Timing.remote_send] each to [Machine.recovery_cycles] (machine-
    wide; no processor's clock moves). Raises [Invalid_argument] if the
    node is already dead or is the last live node. *)
