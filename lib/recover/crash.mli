(** Crash injection as engine events.

    Build [(at, callback)] pairs for the [events] parameter of
    {!Shasta_core.Dsm.run} / [run_controlled]: at virtual cycle [at] the
    named node fail-stops and {!Recover.rebuild} repairs the survivors,
    atomically at a scheduler decision point. With no events scheduled
    the run is bit-identical to one without the crash machinery. *)

val event :
  Shasta_core.Dsm.handle ->
  node:int ->
  at:int ->
  mode:Recover.mode ->
  int * (kill:(int -> unit) -> now:int -> unit)

val kill :
  Shasta_core.Dsm.handle ->
  node:int ->
  at:int ->
  int * (kill:(int -> unit) -> now:int -> unit)
(** [event] with sharer-pull recovery ({!Recover.Pull}). *)

val with_checkpoint :
  Shasta_core.Dsm.handle ->
  node:int ->
  at:int ->
  ckpt:Checkpoint.t ->
  int * (kill:(int -> unit) -> now:int -> unit)
(** [event] with checkpoint + log-replay recovery. *)
