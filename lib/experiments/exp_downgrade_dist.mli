(** Figure 8: distribution of the number of downgrade messages sent per
    block downgrade, for 8- and 16-processor SMP-Shasta runs with a
    clustering of 4. The private state tables make most downgrades free
    (0 messages) or cheap (1); Water's migratory molecule records are
    the paper's notable three-message outlier. *)

val render : ?procs:int list -> ?scale:float -> unit -> string

val specs : ?procs:int list -> ?scale:float -> unit -> Runner.spec list
(** Every spec [render] will consult — for prefetching through
    {!Runner.run_batch}. *)
