(** Figure 3: speedups of the nine applications on 1-16 processors.

    Speedups are relative to the original sequential code (no checks).
    Base-Shasta runs with one processor per coherence node; SMP-Shasta
    uses a clustering of 2 at 2 processors and 4 at 4, 8 and 16 — the
    configurations plotted in the paper. *)

val render : ?procs:int list -> ?scale:float -> unit -> string

val specs : ?procs:int list -> ?scale:float -> unit -> Runner.spec list
(** Every spec [render] will consult, including the sequential baselines
    the speedups divide by — for prefetching through {!Runner.run_batch}. *)
