(** YCSB sweep: per-op-class tail latency of the DSM-backed KV store
    under production-shaped load.

    Sweeps the workload mix (A, B, C, F compiled to access programs;
    D and E on the closure path), machine shape (Base vs. SMP
    clustering), key skew (zipfian theta, uniform, scrambled) and
    record count, reporting p50/p99/p999 op latency and messages/op per
    operation class. Every run is oracle-checked (per-key sequential
    consistency against a lock-order shadow). All rendered quantities
    are virtual-time, so the table is bit-identical across shard
    counts. *)

val render : scale:float -> unit -> string

val specs : scale:float -> unit -> Runner.spec list
(** Always [[]]: the harness builds bespoke machines inline and has no
    {!Runner.spec} representation. *)
