(** Ablation of the paper's §5 planned extensions.

    The paper's implementation leaves three optimizations unexploited and
    names them as future work: hierarchical synchronization primitives
    that use the SMP hardware, and directory-state sharing that removes
    the intra-node hop when the requester and home are colocated. Both
    are implemented behind configuration flags; this experiment measures
    each against the paper's baseline SMP-Shasta configuration on
    16-processor, clustering-4 runs. *)

val render : ?apps:string list -> ?scale:float -> unit -> string

val specs : ?apps:string list -> ?scale:float -> unit -> Runner.spec list
(** Every spec [render] will consult — for prefetching through
    {!Runner.run_batch}. *)
