(** Table 2: effect of variable coherence granularity in Base-Shasta.

    Sixteen-processor speedups for the six applications whose key data
    structures carry an allocation-time block-size hint, with the
    default 64-byte blocks and with the specified granularity. *)

val render : ?scale:float -> unit -> string

val specs : ?scale:float -> unit -> Runner.spec list
(** Every spec [render] will consult, including the sequential baselines
    the speedups divide by — for prefetching through {!Runner.run_batch}. *)
