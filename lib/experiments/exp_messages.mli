(** Figure 7: protocol messages in 8- and 16-processor runs, split into
    remote (inter-node), local (intra-node, excluding downgrades) and
    downgrade messages, normalized to the Base-Shasta total. *)

val render : ?procs:int list -> ?scale:float -> unit -> string

val specs : ?procs:int list -> ?scale:float -> unit -> Runner.spec list
(** Every spec [render] will consult — for prefetching through
    {!Runner.run_batch}. *)
