module Table = Shasta_util.Text_table
module Registry = Shasta_apps.Registry

let specs ?(procs = [ 8; 16 ]) ?(scale = 1.0) () =
  List.concat_map
    (fun app ->
      List.concat_map
        (fun n ->
          [
            Runner.base ~scale app n;
            Runner.smp ~scale app n ~clustering:2;
            Runner.smp ~scale app n ~clustering:4;
          ])
        procs)
    Registry.splash2

let render ?(procs = [ 8; 16 ]) ?(scale = 1.0) () =
  let header =
    [ "app"; "procs"; "config"; "remote"; "local"; "downgrade"; "total"; "% of Base" ]
  in
  let rows =
    List.concat_map
      (fun app ->
        List.concat_map
          (fun n ->
            let specs =
              [
                ("Base", Runner.base ~scale app n);
                ("SMP-2", Runner.smp ~scale app n ~clustering:2);
                ("SMP-4", Runner.smp ~scale app n ~clustering:4);
              ]
            in
            let base = Runner.run (List.assoc "Base" specs) in
            let base_total = base.Runner.local_msgs + base.Runner.remote_msgs in
            List.map
              (fun (label, spec) ->
                let r = Runner.run spec in
                let total =
                  r.Runner.local_msgs + r.Runner.remote_msgs
                  + r.Runner.downgrade_msgs
                in
                [
                  app;
                  string_of_int n;
                  label;
                  string_of_int r.Runner.remote_msgs;
                  string_of_int r.Runner.local_msgs;
                  string_of_int r.Runner.downgrade_msgs;
                  string_of_int total;
                  (if base_total = 0 then "-"
                   else
                     Report.pct (float_of_int total /. float_of_int base_total));
                ])
              specs)
          procs)
      Registry.splash2
  in
  Report.section "Figure 7: protocol messages (remote / local / downgrade)"
    (Table.render ~header rows)
