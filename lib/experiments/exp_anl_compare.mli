(** §4.3: SMP-Shasta on 4 processors (clustering 4) versus hardware
    cache coherence on one SMP.

    The hardware-coherent reference is approximated by the same
    clustering-4 run with the inline checks disabled — communication is
    then entirely through the node's coherent memory, as with the ANL
    macros on the real AlphaServer. The paper reports SMP-Shasta to be
    on average 12.7% slower, mostly from the checking overhead. *)

val render : ?scale:float -> unit -> string

val specs : ?scale:float -> unit -> Runner.spec list
(** Every spec [render] will consult — for prefetching through
    {!Runner.run_batch}. *)
