(** §4.1 / §4.4 microbenchmarks.

    Measures, on the simulated cluster: the latency of a 64-byte read
    miss served two-hop from a remote home (paper: ~20 us), the same
    miss served by a processor on the same physical SMP under Base-Shasta
    (paper: ~11 us), a three-hop remote miss, and the added cost of a
    read that requires 0-3 intra-node downgrade messages (paper: +10 us
    for the first downgrade, +5 us for each additional one). *)

val render : unit -> string

val specs : unit -> Runner.spec list
(** Always [[]]: the microbenchmarks build bespoke machines inline and
    have no {!Runner.spec} representation. *)
