module Table = Shasta_util.Text_table
module Registry = Shasta_apps.Registry

let smp_clustering n = if n >= 4 then 4 else n

let smp_spec ?vg ?scale app n =
  if n = 1 then Runner.smp ?vg ?scale app 1 ~clustering:1
  else Runner.smp ?vg ?scale app n ~clustering:(smp_clustering n)

let specs ?(procs = [ 1; 2; 4; 8; 16 ]) ?(scale = 1.0) () =
  List.concat_map
    (fun app ->
      Runner.sequential ~scale app
      :: List.concat_map
           (fun n -> [ Runner.base ~scale app n; smp_spec ~scale app n ])
           procs)
    Registry.splash2

let render ?(procs = [ 1; 2; 4; 8; 16 ]) ?(scale = 1.0) () =
  let header =
    "app" :: "protocol" :: List.map (fun n -> string_of_int n ^ "p") procs
  in
  let rows =
    List.concat_map
      (fun app ->
        let row label spec_of =
          app :: label
          :: List.map (fun n -> Report.fx (Runner.speedup (spec_of n))) procs
        in
        [
          row "Base" (fun n -> Runner.base ~scale app n);
          row "SMP" (fun n -> smp_spec ~scale app n);
        ])
      Registry.splash2
  in
  Report.section
    "Figure 3: speedups (vs. original sequential code), Base-Shasta and SMP-Shasta"
    (Table.render ~header rows
    ^ "\n\nSMP-Shasta clustering: 2 processors per node at 2p, 4 at 4p/8p/16p.")
