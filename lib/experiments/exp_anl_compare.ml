module Table = Shasta_util.Text_table
module Registry = Shasta_apps.Registry
module Config = Shasta_core.Config

let spec ~checks ~scale app =
  {
    Runner.app;
    vg = false;
    scale;
    variant = Config.Smp;
    nprocs = 4;
    clustering = 4;
    checks;
    smp_sync = false;
    share_directory = false;
  }

let specs ?(scale = 1.0) () =
  List.concat_map
    (fun app -> [ spec ~checks:false ~scale app; spec ~checks:true ~scale app ])
    Registry.splash2

let render ?(scale = 1.0) () =
  let slowdowns = ref [] in
  let rows =
    List.map
      (fun app ->
        let hw = Runner.run (spec ~checks:false ~scale app) in
        let smp = Runner.run (spec ~checks:true ~scale app) in
        let slow =
          float_of_int (smp.Runner.parallel_cycles - hw.Runner.parallel_cycles)
          /. float_of_int hw.Runner.parallel_cycles
        in
        slowdowns := slow :: !slowdowns;
        [
          app;
          Report.seconds hw.Runner.parallel_cycles;
          Report.seconds smp.Runner.parallel_cycles;
          Report.pct slow;
        ])
      Registry.splash2
  in
  let avg =
    List.fold_left ( +. ) 0.0 !slowdowns /. float_of_int (List.length !slowdowns)
  in
  Report.section
    "4.3: SMP-Shasta (4 processors, clustering 4) vs hardware coherence"
    (Table.render
       ~header:[ "app"; "hardware (ANL approx)"; "SMP-Shasta"; "slowdown" ]
       rows
    ^ Printf.sprintf "\n\naverage slowdown: %s (paper: 12.7%%)" (Report.pct avg))
