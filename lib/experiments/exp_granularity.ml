module Table = Shasta_util.Text_table
module Registry = Shasta_apps.Registry

(* Data structures and block sizes of the paper's Table 2. *)
let hints =
  [
    ("barnes", ("cell array", 512));
    ("fmm", ("box array", 256));
    ("lu", ("matrix array", 128));
    ("lu-contig", ("matrix block", 2048));
    ("volrend", ("opacity/emission maps", 1024));
    ("water-nsq", ("molecule array", 2048));
  ]

let specs ?(scale = 1.0) () =
  List.concat_map
    (fun app ->
      [
        Runner.sequential ~scale app;
        Runner.base ~scale app 16;
        Runner.base ~vg:true ~scale app 16;
        Runner.smp ~vg:true ~scale app 16 ~clustering:4;
      ])
    Registry.table2

let render ?(scale = 1.0) () =
  let header =
    [
      "app";
      "data structure";
      "block size";
      "Base @64B";
      "Base @specified";
      "SMP-4 @specified";
    ]
  in
  let rows =
    List.map
      (fun app ->
        let structure, bytes = List.assoc app hints in
        let plain = Runner.speedup (Runner.base ~scale app 16) in
        let vg = Runner.speedup (Runner.base ~vg:true ~scale app 16) in
        let smp_vg =
          Runner.speedup (Runner.smp ~vg:true ~scale app 16 ~clustering:4)
        in
        [
          app;
          structure;
          string_of_int bytes ^ "B";
          Report.fx plain;
          Report.fx vg;
          Report.fx smp_vg;
        ])
      Registry.table2
  in
  Report.section
    "Table 2: variable block size in Base-Shasta (16 processors)"
    (Table.render ~header rows
    ^ "\n\nThe last column combines the granularity hints with SMP-Shasta\n\
       clustering - the configuration the paper reports as uniformly best.")
