module Table = Shasta_util.Text_table
module Stats = Shasta_core.Stats

let default_apps = [ "ocean"; "lu"; "water-nsq"; "water-sp"; "volrend" ]

let variants =
  [
    ("SMP-Shasta (paper)", false, false);
    ("+ hierarchical barriers", true, false);
    ("+ shared directory", false, true);
    ("+ both", true, true);
  ]

let specs ?(apps = default_apps) ?(scale = 1.0) () =
  List.concat_map
    (fun app ->
      let base_spec = Runner.smp ~scale app 16 ~clustering:4 in
      base_spec
      :: List.map
           (fun (_, smp_sync, share_directory) ->
             { base_spec with Runner.smp_sync; share_directory })
           variants)
    apps

let render ?(apps = default_apps) ?(scale = 1.0) () =
  let header =
    [ "app"; "configuration"; "time vs paper cfg"; "sync share"; "local msgs"; "remote msgs" ]
  in
  let rows =
    List.concat_map
      (fun app ->
        let base_spec = Runner.smp ~scale app 16 ~clustering:4 in
        let base = Runner.run base_spec in
        List.map
          (fun (label, smp_sync, share_directory) ->
            let r =
              Runner.run { base_spec with Runner.smp_sync; share_directory }
            in
            let rel =
              float_of_int r.Runner.parallel_cycles
              /. float_of_int base.Runner.parallel_cycles
            in
            let sync_share =
              let total = Stats.total_cycles r.Runner.stats in
              if total = 0 then 0.0
              else
                float_of_int (Stats.cycles r.Runner.stats Stats.Sync)
                /. float_of_int total
            in
            [
              app;
              label;
              Report.pct rel;
              Report.pct sync_share;
              string_of_int r.Runner.local_msgs;
              string_of_int r.Runner.remote_msgs;
            ])
          variants)
      apps
  in
  Report.section
    "Ablation: the paper's 5 extensions (16 processors, clustering 4)"
    (Table.render ~header rows
    ^ "\n\nHierarchical barriers combine arrivals per node (one message per\n\
       node instead of per processor); the shared directory removes the\n\
       intra-node hop when requester and home are colocated.")
