module Table = Shasta_util.Text_table
module Registry = Shasta_apps.Registry
module Stats = Shasta_core.Stats
module Msg = Shasta_core.Msg

let classes =
  [
    ("rd2", { Stats.kind = Msg.Read; three_hop = false });
    ("rd3", { Stats.kind = Msg.Read; three_hop = true });
    ("wr2", { Stats.kind = Msg.Readex; three_hop = false });
    ("wr3", { Stats.kind = Msg.Readex; three_hop = true });
    ("up2", { Stats.kind = Msg.Upgrade; three_hop = false });
    ("up3", { Stats.kind = Msg.Upgrade; three_hop = true });
  ]

let specs ?(procs = [ 8; 16 ]) ?(scale = 1.0) () =
  List.concat_map
    (fun app ->
      List.concat_map
        (fun n ->
          [
            Runner.base ~scale app n;
            Runner.smp ~scale app n ~clustering:2;
            Runner.smp ~scale app n ~clustering:4;
          ])
        procs)
    Registry.splash2

let render ?(procs = [ 8; 16 ]) ?(scale = 1.0) () =
  let header =
    [ "app"; "procs"; "config" ]
    @ List.map fst classes
    @ [ "total"; "% of Base"; "rd lat" ]
  in
  let rows =
    List.concat_map
      (fun app ->
        List.concat_map
          (fun n ->
            let specs =
              [
                ("Base", Runner.base ~scale app n);
                ("SMP-2", Runner.smp ~scale app n ~clustering:2);
                ("SMP-4", Runner.smp ~scale app n ~clustering:4);
              ]
            in
            let base_total =
              Stats.total_misses (Runner.run (List.assoc "Base" specs)).Runner.stats
            in
            List.map
              (fun (label, spec) ->
                let r = Runner.run spec in
                let total = Stats.total_misses r.Runner.stats in
                [ app; string_of_int n; label ]
                @ List.map
                    (fun (_, c) ->
                      string_of_int (Stats.miss_count r.Runner.stats c))
                    classes
                @ [
                    string_of_int total;
                    (if base_total = 0 then "-"
                     else
                       Report.pct
                         (float_of_int total /. float_of_int base_total));
                    Printf.sprintf "%.1fus"
                      (Stats.mean_read_latency_us r.Runner.stats);
                  ])
              specs)
          procs)
      Registry.splash2
  in
  Report.section
    "Figure 6: misses by type and hops (2-hop = reply from home)"
    (Table.render ~header rows)
