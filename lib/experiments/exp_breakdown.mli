(** Figures 4 and 5: execution-time breakdowns of 8- and 16-processor
    runs.

    For each application the Base-Shasta run is normalized to 100 and
    the SMP-Shasta runs at clusterings of 1, 2 and 4 are shown relative
    to it, split into the paper's six categories (task, read, write,
    synchronization, message, other). Figure 5 is the same view with
    the variable-granularity allocation hints enabled ([vg = true],
    six applications). *)

val render : ?vg:bool -> ?procs:int list -> ?scale:float -> unit -> string

val specs : ?vg:bool -> ?procs:int list -> ?scale:float -> unit -> Runner.spec list
(** Every spec [render] will consult — for prefetching through
    {!Runner.run_batch}. *)
