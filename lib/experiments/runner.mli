(** Shared machinery for the paper-reproduction experiments.

    A {!spec} fully determines a simulated run; results are memoized for
    the lifetime of the process because the experiments reuse each
    other's configurations heavily (e.g. the Figure-4 breakdown uses the
    same runs as the Figure-3 speedups). *)

type spec = {
  app : string;
  vg : bool;
  scale : float;
  variant : Shasta_core.Config.variant;
  nprocs : int;
  clustering : int;
  checks : bool;
  smp_sync : bool;  (** hierarchical-barrier extension (5) *)
  share_directory : bool;  (** shared-directory extension (5) *)
}

val base : ?vg:bool -> ?scale:float -> string -> int -> spec
(** Base-Shasta run at the given processor count. *)

val smp : ?vg:bool -> ?scale:float -> string -> int -> clustering:int -> spec
(** SMP-Shasta run. *)

val sequential : ?scale:float -> string -> spec
(** One processor, inline checks disabled — the "original sequential
    code" baseline. *)

type result = {
  spec : spec;
  workload : string;
  parallel_cycles : int;
  stats : Shasta_core.Stats.t;  (** aggregated over processors *)
  per_proc : Shasta_core.Stats.t array;
  local_msgs : int;  (** intra-node messages, excluding downgrades *)
  remote_msgs : int;
  downgrade_msgs : int;
  verdict : Shasta_apps.App.verdict;
}

val run : spec -> result
(** Execute (or fetch from the cache). Raises [Failure] if the
    application's result verification fails — every experiment run is
    also a correctness check. *)

val run_batch : ?jobs:int -> spec list -> unit
(** Warm the cache for a list of specs: dedupe the list against itself
    and against the cache, execute the misses concurrently on a
    {!Shasta_util.Pool} of [jobs] domains ([Pool.default_jobs ()] when
    omitted — the [SHASTA_JOBS] environment variable or the machine's
    core count), and publish the results. [jobs = 1] executes in place,
    with no domains spawned. Every individual simulation is
    deterministic and self-contained, so subsequent {!run} calls — and
    tables rendered from them — are byte-identical whatever [jobs] was.
    A failed run re-raises after the whole batch has finished; completed
    results of the batch are still cached. Must be called from the
    coordinating (main) domain, never from inside another batch. *)

val seconds : int -> float
(** Simulated seconds from a cycle count (300 MHz clock). *)

val speedup : spec -> float
(** [parallel_cycles (sequential app)] / [parallel_cycles spec], the
    paper's definition (relative to the original sequential code). *)

val cache_size : unit -> int

val simulated_cycles : unit -> int
(** Cumulative [parallel_cycles] over all runs actually executed so far
    (cache hits contribute nothing). Difference across a span to
    attribute simulated work to it. *)

val fastpath_totals : unit -> int * int
(** [(checks, fast_hits)] summed over all runs actually executed so far
    (cache hits contribute nothing). Difference across a span for the
    bench JSON's [hit_fastpath_rate]. *)

val crash_totals : unit -> int * int
(** [(crashes, recovery_cycles)] summed over all runs actually executed
    so far (cache hits contribute nothing): node crashes absorbed and
    the virtual cycles their recoveries charged. Difference across a
    span for the bench JSON's [crashes] / [recovery_cycles] fields —
    both zero unless a run scheduled crash events. *)

val fastpath_by_app : unit -> (string * (int * int * int * int)) list
(** [(app, (checks, fast_hits, accesses, prog_accesses))] summed over
    the cached results of each application, sorted by name — the
    per-app fused-hit rate and access-program coverage the CLI's
    [report] prints to stderr. *)

val traced_runs : unit -> int
(** Runs executed with the metrics observer attached
    ([Config.trace > 0], i.e. [SHASTA_TRACE=1]). *)

val shard_totals : unit -> int * float array * int array * int array
(** [(runs, walls, steps, spins)]: how many runs the sharded scheduler
    executed so far ([SHASTA_SHARDS] / bench [--shards]), and per-shard
    sums over them of host seconds inside the shard loop, processor
    resumes, and iterations parked at the cross-shard bound
    ([steps /. (steps + spins)] is the occupancy the bench JSON
    reports). Arrays are sized by the largest shard count seen — empty
    when every run was sequential. *)

val metrics_snapshot : unit -> Shasta_trace.Metrics.t
(** A copy of the global metrics aggregate over every traced run so far
    (empty when tracing was never on). Aggregation is commutative, so
    the snapshot is independent of the [run_batch] jobs count. *)
