module Table = Shasta_util.Text_table
module Registry = Shasta_apps.Registry

let specs ?(scale = 2.0) () =
  List.concat_map
    (fun app ->
      [
        Runner.sequential ~scale app;
        Runner.base ~scale app 1;
        Runner.smp ~scale app 1 ~clustering:1;
        Runner.base ~scale app 16;
        Runner.smp ~scale app 16 ~clustering:4;
      ])
    Registry.table3

let render ?(scale = 2.0) () =
  let rows =
    List.map
      (fun app ->
        let seq = Runner.run (Runner.sequential ~scale app) in
        let ov spec =
          let r = Runner.run spec in
          Report.pct
            (float_of_int (r.Runner.parallel_cycles - seq.Runner.parallel_cycles)
            /. float_of_int seq.Runner.parallel_cycles)
        in
        [
          app;
          seq.Runner.workload;
          Report.seconds seq.Runner.parallel_cycles;
          ov (Runner.base ~scale app 1);
          ov (Runner.smp ~scale app 1 ~clustering:1);
          Report.f1 (Runner.speedup (Runner.base ~scale app 16));
          Report.f1 (Runner.speedup (Runner.smp ~scale app 16 ~clustering:4));
        ])
      Registry.table3
  in
  Report.section
    "Table 3: larger problem sizes (2x scale, 64-byte lines)"
    (Table.render
       ~header:
         [
           "app";
           "problem";
           "seq time";
           "Base ovh";
           "SMP ovh";
           "16p Base";
           "16p SMP";
         ]
       rows)
