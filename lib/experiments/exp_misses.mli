(** Figure 6: software misses in 8- and 16-processor runs, classified
    by request type (read / write / upgrade) and hops (2 if the reply
    came from the home processor, 3 otherwise), for Base-Shasta and
    SMP-Shasta at clusterings of 2 and 4, normalized to the Base total.
    The mean read-miss latency is included to check the paper's 4.4
    observation that SMP-Shasta's per-miss latency is a few microseconds
    higher (protocol locking) unless reduced contention wins. *)

val render : ?procs:int list -> ?scale:float -> unit -> string

val specs : ?procs:int list -> ?scale:float -> unit -> Runner.spec list
(** Every spec [render] will consult — for prefetching through
    {!Runner.run_batch}. *)
