type t = {
  name : string;
  render : scale:float -> string;
  specs : scale:float -> Runner.spec list;
}

(* Table 3 doubles the problem scale relative to the harness-wide factor
   (the paper's "larger problem sizes"); keeping the factor here makes
   render and specs agree by construction. *)
let all =
  [
    {
      name = "table1";
      render = (fun ~scale -> Exp_checking_overhead.render ~scale ());
      specs = (fun ~scale -> Exp_checking_overhead.specs ~scale ());
    };
    {
      name = "table2";
      render = (fun ~scale -> Exp_granularity.render ~scale ());
      specs = (fun ~scale -> Exp_granularity.specs ~scale ());
    };
    {
      name = "table3";
      render = (fun ~scale -> Exp_large_problems.render ~scale:(2.0 *. scale) ());
      specs = (fun ~scale -> Exp_large_problems.specs ~scale:(2.0 *. scale) ());
    };
    {
      name = "fig3";
      render = (fun ~scale -> Exp_speedup.render ~scale ());
      specs = (fun ~scale -> Exp_speedup.specs ~scale ());
    };
    {
      name = "fig4";
      render = (fun ~scale -> Exp_breakdown.render ~vg:false ~scale ());
      specs = (fun ~scale -> Exp_breakdown.specs ~vg:false ~scale ());
    };
    {
      name = "fig5";
      render = (fun ~scale -> Exp_breakdown.render ~vg:true ~scale ());
      specs = (fun ~scale -> Exp_breakdown.specs ~vg:true ~scale ());
    };
    {
      name = "fig6";
      render = (fun ~scale -> Exp_misses.render ~scale ());
      specs = (fun ~scale -> Exp_misses.specs ~scale ());
    };
    {
      name = "fig7";
      render = (fun ~scale -> Exp_messages.render ~scale ());
      specs = (fun ~scale -> Exp_messages.specs ~scale ());
    };
    {
      name = "fig8";
      render = (fun ~scale -> Exp_downgrade_dist.render ~scale ());
      specs = (fun ~scale -> Exp_downgrade_dist.specs ~scale ());
    };
    {
      name = "micro";
      render = (fun ~scale:_ -> Exp_microbench.render ());
      specs = (fun ~scale:_ -> Exp_microbench.specs ());
    };
    {
      name = "ycsb";
      render = (fun ~scale -> Exp_ycsb.render ~scale ());
      specs = (fun ~scale -> Exp_ycsb.specs ~scale ());
    };
    {
      name = "anl";
      render = (fun ~scale -> Exp_anl_compare.render ~scale ());
      specs = (fun ~scale -> Exp_anl_compare.specs ~scale ());
    };
    {
      name = "ablation";
      render = (fun ~scale -> Exp_ablation.render ~scale ());
      specs = (fun ~scale -> Exp_ablation.specs ~scale ());
    };
  ]

let names = List.map (fun t -> t.name) all
let find name = List.find_opt (fun t -> t.name = name) all

let prefetch ?jobs ~scale targets =
  Runner.run_batch ?jobs
    (List.concat_map (fun t -> t.specs ~scale) targets)
