module Table = Shasta_util.Text_table
module Registry = Shasta_apps.Registry
module Stats = Shasta_core.Stats

let configs ?vg ?scale app n =
  [
    ("Base", Runner.base ?vg ?scale app n);
    ("SMP-1", Runner.smp ?vg ?scale app n ~clustering:1);
    ("SMP-2", Runner.smp ?vg ?scale app n ~clustering:2);
    ("SMP-4", Runner.smp ?vg ?scale app n ~clustering:4);
  ]

(* Normalized stacked segments: category fractions of aggregate cycles,
   scaled by this run's parallel time relative to the Base run's. *)
let segments base_cycles (r : Runner.result) =
  let total = float_of_int (Stats.total_cycles r.Runner.stats) in
  let rel =
    float_of_int r.Runner.parallel_cycles /. float_of_int base_cycles
  in
  List.map
    (fun cat ->
      let f =
        if total = 0.0 then 0.0
        else float_of_int (Stats.cycles r.Runner.stats cat) /. total
      in
      100.0 *. f *. rel)
    Stats.categories

let specs ?(vg = false) ?(procs = [ 8; 16 ]) ?(scale = 1.0) () =
  let apps = if vg then Registry.table2 else Registry.splash2 in
  List.concat_map
    (fun app ->
      List.concat_map
        (fun n -> List.map snd (configs ~vg ~scale app n))
        procs)
    apps

let render ?(vg = false) ?(procs = [ 8; 16 ]) ?(scale = 1.0) () =
  let apps = if vg then Registry.table2 else Registry.splash2 in
  let header =
    [ "app"; "procs"; "config" ]
    @ List.map Stats.category_name Stats.categories
    @ [ "total"; "bar" ]
  in
  let rows =
    List.concat_map
      (fun app ->
        List.concat_map
          (fun n ->
            let cfgs = configs ~vg ~scale app n in
            let base = Runner.run (List.assoc "Base" cfgs) in
            List.map
              (fun (label, spec) ->
                let r = Runner.run spec in
                let segs = segments base.Runner.parallel_cycles r in
                let total = List.fold_left ( +. ) 0.0 segs in
                let bar =
                  Shasta_util.Text_table.stacked_bar ~width:30
                    (List.map2
                       (fun cat v -> ((Stats.category_name cat).[0], v /. 100.0))
                       Stats.categories segs)
                in
                [ app; string_of_int n; label ]
                @ List.map Report.f1 segs
                @ [ Report.f1 total; bar ])
              cfgs)
          procs)
      apps
  in
  let title =
    if vg then
      "Figure 5: execution-time breakdown with variable granularity (Base = 100)"
    else "Figure 4: execution-time breakdown (Base = 100)"
  in
  Report.section title
    (Table.render ~header rows
    ^ "\n\nSegments: t=task r=read w=write s=sync m=message o=other; \
       total is normalized to the Base-Shasta run of the same processor count.")
