module Config = Shasta_core.Config
module Histogram = Shasta_util.Histogram
module Sampler = Shasta_workload.Sampler
module Ycsb = Shasta_workload.Ycsb

let scaled = Shasta_apps.App.scaled

(* The sweep: production-shaped mixes across machine shapes, then one
   dimension varied at a time around the (A, smp-16x4, zipfian 0.99)
   center — skew, distribution, record count, and the insert-bearing
   mixes D/E (which run the closure path: inserts change the layout the
   access programs bake in). *)
let sweep ~scale =
  let records = scaled scale 12_000 in
  let ops = scaled scale 48_000 in
  let machines = [ (Config.Base, 8, 1); (Config.Smp, 16, 4) ] in
  let mk ?(mix = Ycsb.A) ?(records = records) ?(ops = ops)
      ?(dist = Sampler.Zipfian) ?(theta = 0.99) (variant, nprocs, clustering)
      =
    Ycsb.spec ~mix ~records ~ops ~dist ~theta ~variant ~nprocs ~clustering ()
  in
  let smp = (Config.Smp, 16, 4) in
  List.concat
    [
      List.concat_map
        (fun mix -> List.map (fun m -> mk ~mix m) machines)
        [ Ycsb.A; Ycsb.B; Ycsb.C; Ycsb.F ];
      List.map (fun theta -> mk ~theta smp) [ 0.5; 0.9 ];
      List.map (fun dist -> mk ~dist smp) [ Sampler.Uniform; Sampler.Scrambled ];
      List.map (fun records -> mk ~mix:Ycsb.B ~records smp)
        [ scaled scale 6_000; scaled scale 24_000 ];
      List.map (fun mix -> mk ~mix smp) [ Ycsb.D; Ycsb.E ];
    ]

let machine_name (spec : Ycsb.spec) =
  match spec.Ycsb.variant with
  | Config.Base -> Printf.sprintf "base-%d" spec.Ycsb.nprocs
  | Config.Smp ->
    Printf.sprintf "smp-%dx%d" spec.Ycsb.nprocs spec.Ycsb.clustering

let dist_name (spec : Ycsb.spec) =
  match spec.Ycsb.dist with
  | Sampler.Uniform -> "uniform"
  | Sampler.Zipfian -> Printf.sprintf "zipf %.2f" spec.Ycsb.theta
  | Sampler.Scrambled -> Printf.sprintf "scram %.2f" spec.Ycsb.theta

let render ~scale () =
  let results = List.map Ycsb.run (sweep ~scale) in
  let rows =
    List.concat_map
      (fun (r : Ycsb.result) ->
        let spec = r.Ycsb.spec in
        List.filter_map
          (fun (c : Ycsb.class_stats) ->
            if c.Ycsb.count = 0 then None
            else
              Some
                [
                  Ycsb.mix_to_string spec.Ycsb.mix;
                  machine_name spec;
                  dist_name spec;
                  string_of_int spec.Ycsb.records;
                  string_of_int spec.Ycsb.ops;
                  Ycsb.class_name c.Ycsb.cls;
                  string_of_int c.Ycsb.count;
                  string_of_int (Histogram.percentile c.Ycsb.latency 0.5);
                  string_of_int (Histogram.percentile c.Ycsb.latency 0.99);
                  string_of_int (Histogram.percentile c.Ycsb.latency 0.999);
                  Printf.sprintf "%.2f"
                    (float_of_int c.Ycsb.msgs
                    /. float_of_int (max 1 c.Ycsb.count));
                ])
          r.Ycsb.classes)
      results
  in
  let table =
    Shasta_util.Text_table.render
      ~header:
        [
          "mix"; "machine"; "keys"; "records"; "ops"; "class"; "count";
          "p50"; "p99"; "p999"; "msgs/op";
        ]
      rows
  in
  let oracle =
    let bad =
      List.filter (fun (r : Ycsb.result) -> not r.Ycsb.oracle_ok) results
    in
    let dropped =
      List.fold_left
        (fun a (r : Ycsb.result) -> a + r.Ycsb.dropped_inserts)
        0 results
    in
    Printf.sprintf
      "%d runs, oracle %s; %d dropped inserts; latencies in cycles (300 MHz)"
      (List.length results)
      (if bad = [] then "ok on all"
       else Printf.sprintf "FAILED on %d" (List.length bad))
      dropped
  in
  Report.section
    "YCSB: per-op-class tail latency on the DSM-backed KV store"
    (table ^ "\n" ^ oracle ^ "\n")

(* The YCSB harness builds bespoke machines inline (its runs are not
   Registry apps), so there is nothing to prefetch. *)
let specs ~scale:_ () : Runner.spec list = []
