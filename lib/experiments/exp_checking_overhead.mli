(** Table 1: sequential times and miss-check overheads.

    For each application: the simulated sequential execution time
    without inline checks, and the single-processor slowdown when the
    Base-Shasta and SMP-Shasta checks are inserted. The paper reports
    averages of 14.7% (Base) and 24.0% (SMP), with Raytrace and the two
    Water codes most affected by the SMP changes of §3.4.1. *)

val render : ?scale:float -> unit -> string

val specs : ?scale:float -> unit -> Runner.spec list
(** Every spec [render] will consult — for prefetching through
    {!Runner.run_batch}. *)
