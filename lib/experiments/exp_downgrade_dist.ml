module Table = Shasta_util.Text_table
module Registry = Shasta_apps.Registry
module Histogram = Shasta_util.Histogram

let specs ?(procs = [ 8; 16 ]) ?(scale = 1.0) () =
  List.concat_map
    (fun app ->
      List.map (fun n -> Runner.smp ~scale app n ~clustering:4) procs)
    Registry.splash2

let render ?(procs = [ 8; 16 ]) ?(scale = 1.0) () =
  let header =
    [ "app"; "procs"; "downgrades"; "0 msgs"; "1 msg"; "2 msgs"; "3 msgs"; "mean" ]
  in
  let rows =
    List.concat_map
      (fun app ->
        List.map
          (fun n ->
            let r = Runner.run (Runner.smp ~scale app n ~clustering:4) in
            let hist = r.Runner.stats.Shasta_core.Stats.downgrade_events in
            let total = Histogram.total hist in
            let frac k = Report.pct (Histogram.fraction hist k) in
            let mean =
              if total = 0 then 0.0
              else
                float_of_int
                  (List.fold_left
                     (fun acc k -> acc + (k * Histogram.count hist k))
                     0 (Histogram.keys hist))
                /. float_of_int total
            in
            [
              app;
              string_of_int n;
              string_of_int total;
              frac 0;
              frac 1;
              frac 2;
              frac 3;
              Report.fx mean;
            ])
          procs)
      Registry.splash2
  in
  Report.section
    "Figure 8: downgrade-message count distribution (SMP-Shasta, clustering 4)"
    (Table.render ~header rows)
