module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Stats = Shasta_core.Stats
module App = Shasta_apps.App

type spec = {
  app : string;
  vg : bool;
  scale : float;
  variant : Config.variant;
  nprocs : int;
  clustering : int;
  checks : bool;
  smp_sync : bool;
  share_directory : bool;
}

let base ?(vg = false) ?(scale = 1.0) app nprocs =
  {
    app;
    vg;
    scale;
    variant = Config.Base;
    nprocs;
    clustering = 1;
    checks = true;
    smp_sync = false;
    share_directory = false;
  }

let smp ?(vg = false) ?(scale = 1.0) app nprocs ~clustering =
  {
    app;
    vg;
    scale;
    variant = Config.Smp;
    nprocs;
    clustering;
    checks = true;
    smp_sync = false;
    share_directory = false;
  }

let sequential ?(scale = 1.0) app =
  {
    app;
    vg = false;
    scale;
    variant = Config.Base;
    nprocs = 1;
    clustering = 1;
    checks = false;
    smp_sync = false;
    share_directory = false;
  }

type result = {
  spec : spec;
  workload : string;
  parallel_cycles : int;
  stats : Stats.t;
  per_proc : Stats.t array;
  local_msgs : int;
  remote_msgs : int;
  downgrade_msgs : int;
  verdict : App.verdict;
}

let cache : (spec, result) Hashtbl.t = Hashtbl.create 64

(* Cumulative parallel cycles over every run actually executed (cache
   misses only), so callers can attribute simulated work to a span of
   host time by differencing. *)
let executed_cycles = ref 0
let simulated_cycles () = !executed_cycles

let execute spec =
  let maker = Shasta_apps.Registry.find spec.app in
  let inst = maker ~vg:spec.vg ~scale:spec.scale () in
  let heap = max (1 lsl 22) inst.App.heap_bytes in
  (* Round up to a page multiple. *)
  let heap = (heap + 4095) / 4096 * 4096 in
  let cfg =
    Config.create ~variant:spec.variant ~nprocs:spec.nprocs
      ~clustering:spec.clustering ~checks_enabled:spec.checks ~heap_bytes:heap
      ~smp_sync:spec.smp_sync ~share_directory:spec.share_directory ()
  in
  let h = Dsm.create cfg in
  let body, verify = inst.App.setup h in
  Dsm.run h body;
  let verdict = verify h in
  if not verdict.App.ok then
    failwith
      (Printf.sprintf "experiment run failed verification: %s (%s)" spec.app
         verdict.App.detail);
  let downgrade_msgs = Dsm.downgrade_messages h in
  executed_cycles := !executed_cycles + Dsm.parallel_cycles h;
  {
    spec;
    workload = inst.App.workload;
    parallel_cycles = Dsm.parallel_cycles h;
    stats = Dsm.aggregate_stats h;
    per_proc = Dsm.proc_stats h;
    local_msgs = Dsm.messages_local h - downgrade_msgs;
    remote_msgs = Dsm.messages_remote h;
    downgrade_msgs;
    verdict;
  }

let run spec =
  match Hashtbl.find_opt cache spec with
  | Some r -> r
  | None ->
    let r = execute spec in
    Hashtbl.replace cache spec r;
    r

let seconds cycles = float_of_int cycles /. 3.0e8

let speedup spec =
  let seq = run (sequential ~scale:spec.scale spec.app) in
  let par = run spec in
  float_of_int seq.parallel_cycles /. float_of_int par.parallel_cycles

let cache_size () = Hashtbl.length cache
