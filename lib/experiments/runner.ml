module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Stats = Shasta_core.Stats
module App = Shasta_apps.App

type spec = {
  app : string;
  vg : bool;
  scale : float;
  variant : Config.variant;
  nprocs : int;
  clustering : int;
  checks : bool;
  smp_sync : bool;
  share_directory : bool;
}

let base ?(vg = false) ?(scale = 1.0) app nprocs =
  {
    app;
    vg;
    scale;
    variant = Config.Base;
    nprocs;
    clustering = 1;
    checks = true;
    smp_sync = false;
    share_directory = false;
  }

let smp ?(vg = false) ?(scale = 1.0) app nprocs ~clustering =
  {
    app;
    vg;
    scale;
    variant = Config.Smp;
    nprocs;
    clustering;
    checks = true;
    smp_sync = false;
    share_directory = false;
  }

let sequential ?(scale = 1.0) app =
  {
    app;
    vg = false;
    scale;
    variant = Config.Base;
    nprocs = 1;
    clustering = 1;
    checks = false;
    smp_sync = false;
    share_directory = false;
  }

type result = {
  spec : spec;
  workload : string;
  parallel_cycles : int;
  stats : Stats.t;
  per_proc : Stats.t array;
  local_msgs : int;
  remote_msgs : int;
  downgrade_msgs : int;
  verdict : App.verdict;
}

(* The memo cache is read and filled from the coordinating domain and —
   during [run_batch] — observed while worker domains execute misses, so
   every access goes through [cache_mutex]. Results themselves are
   immutable once constructed. *)
let cache : (spec, result) Hashtbl.t = Hashtbl.create 64
let cache_mutex = Mutex.create ()
let with_cache f = Mutex.protect cache_mutex f

(* Cumulative parallel cycles over every run actually executed (cache
   misses only), so callers can attribute simulated work to a span of
   host time by differencing. Atomic: executions may happen on worker
   domains. *)
let executed_cycles = Atomic.make 0
let simulated_cycles () = Atomic.get executed_cycles

(* Cumulative inline-check counters over executed runs, mirroring
   [executed_cycles]: the bench JSON derives its fused-hit rate from a
   difference across a target's span. *)
let executed_checks = Atomic.make 0
let executed_fast_hits = Atomic.make 0
let fastpath_totals () =
  (Atomic.get executed_checks, Atomic.get executed_fast_hits)

(* Cumulative crash-fault counters over executed runs, same differencing
   discipline: the bench JSON reports how many node crashes a target's
   runs absorbed and the virtual cycles its recoveries charged. Both stay
   zero unless a run schedules crash events. *)
let executed_crashes = Atomic.make 0
let executed_recovery_cycles = Atomic.make 0
let crash_totals () =
  (Atomic.get executed_crashes, Atomic.get executed_recovery_cycles)

(* Global metrics aggregate over every traced run (SHASTA_TRACE=1).
   Filled under [metrics_mutex] as worker domains complete; merging is
   commutative, so the aggregate is independent of the jobs count and
   completion order. *)
let metrics_mutex = Mutex.create ()
let metrics_agg = Shasta_trace.Metrics.create ()
let metrics_runs = Atomic.make 0

let traced_runs () = Atomic.get metrics_runs

let metrics_snapshot () =
  Mutex.protect metrics_mutex (fun () ->
      let copy = Shasta_trace.Metrics.create () in
      Shasta_trace.Metrics.merge_into ~into:copy metrics_agg;
      copy)

(* Per-shard host-time aggregates over every run the sharded scheduler
   executed (SHASTA_SHARDS / bench --shards). Arrays grow to the largest
   shard count seen; walls accumulate host seconds, steps/spins the
   scheduler's resume/parked-iteration counters (their ratio is the
   occupancy the bench JSON reports). Guarded by a mutex: runs may
   complete on worker domains. *)
let shard_mutex = Mutex.create ()
let shard_runs = ref 0
let shard_walls : float array ref = ref [||]
let shard_steps : int array ref = ref [||]
let shard_spins : int array ref = ref [||]

let record_shards h =
  match Dsm.shard_stats h with
  | None -> ()
  | Some st ->
    let module E = Shasta_sim.Engine in
    Mutex.protect shard_mutex (fun () ->
        let n = Array.length st.E.shard_walls in
        let grow a zero =
          if Array.length !a < n then
            a := Array.append !a (Array.make (n - Array.length !a) zero)
        in
        grow shard_walls 0.0;
        grow shard_steps 0;
        grow shard_spins 0;
        incr shard_runs;
        for s = 0 to n - 1 do
          !shard_walls.(s) <- !shard_walls.(s) +. st.E.shard_walls.(s);
          !shard_steps.(s) <- !shard_steps.(s) + st.E.shard_steps.(s);
          !shard_spins.(s) <- !shard_spins.(s) + st.E.shard_spins.(s)
        done)

let shard_totals () =
  Mutex.protect shard_mutex (fun () ->
      ( !shard_runs,
        Array.copy !shard_walls,
        Array.copy !shard_steps,
        Array.copy !shard_spins ))

let execute spec =
  let maker = Shasta_apps.Registry.find spec.app in
  let inst = maker ~vg:spec.vg ~scale:spec.scale () in
  let heap = max (1 lsl 22) inst.App.heap_bytes in
  (* Round up to a page multiple. *)
  let heap = (heap + 4095) / 4096 * 4096 in
  let cfg =
    Config.create ~variant:spec.variant ~nprocs:spec.nprocs
      ~clustering:spec.clustering ~checks_enabled:spec.checks ~heap_bytes:heap
      ~smp_sync:spec.smp_sync ~share_directory:spec.share_directory ()
  in
  let h = Dsm.create cfg in
  (* SHASTA_SANITIZE=1 attaches the online invariant sanitizer (and =2
     additionally the happens-before race detector) to every experiment
     run; Config.create reads the variable when [?sanitize] is omitted.
     A violation or race fails the run like a verification failure. *)
  let san =
    if cfg.Config.sanitize > 0 then Some (Shasta_check.Sanitizer.attach (Dsm.machine h))
    else None
  in
  let rd =
    if cfg.Config.sanitize > 1 then Some (Shasta_check.Races.attach (Dsm.machine h))
    else None
  in
  (* SHASTA_TRACE=1 attaches the metrics observer; per-run instances
     merge into the global aggregate below. Cycle-neutral, like every
     observer. *)
  let mx =
    if cfg.Config.trace > 0 then
      Some (Shasta_trace.Metrics.attach (Dsm.machine h))
    else None
  in
  (* SHASTA_CKPT=N (virtual cycles, N > 0) attaches the checkpointing
     observer so experiment runs pay its logging overhead; with the knob
     off no observer is installed and simulated time is bit-identical. *)
  if cfg.Config.ckpt > 0 then
    ignore (Shasta_recover.Checkpoint.attach (Dsm.machine h)
              ~interval:cfg.Config.ckpt);
  let body, verify = inst.App.setup h in
  Dsm.run h body;
  record_shards h;
  (match mx with
  | Some mx ->
    Atomic.incr metrics_runs;
    Mutex.protect metrics_mutex (fun () ->
        Shasta_trace.Metrics.merge_into ~into:metrics_agg mx)
  | None -> ());
  (match san with
  | Some san when Shasta_check.Sanitizer.violation_count san > 0 ->
    failwith
      (Printf.sprintf "experiment run violated protocol invariants: %s (%s)"
         spec.app
         (String.concat "; "
            (List.map Shasta_core.Inspect.describe
               (Shasta_check.Sanitizer.violations san))))
  | _ -> ());
  (match rd with
  | Some rd when Shasta_check.Races.race_count rd > 0 ->
    failwith
      (Printf.sprintf "experiment run raced: %s (%s)" spec.app
         (String.concat "; "
            (List.map Shasta_check.Races.describe
               (Shasta_check.Races.races rd))))
  | _ -> ());
  let verdict = verify h in
  if not verdict.App.ok then
    failwith
      (Printf.sprintf "experiment run failed verification: %s (%s)" spec.app
         verdict.App.detail);
  let downgrade_msgs = Dsm.downgrade_messages h in
  ignore (Atomic.fetch_and_add executed_cycles (Dsm.parallel_cycles h));
  (let agg = Dsm.aggregate_stats h in
   ignore (Atomic.fetch_and_add executed_checks agg.Shasta_core.Stats.checks);
   ignore
     (Atomic.fetch_and_add executed_fast_hits
        agg.Shasta_core.Stats.fast_hits));
  (let m = Dsm.machine h in
   ignore (Atomic.fetch_and_add executed_crashes m.Shasta_core.Machine.crashes);
   ignore
     (Atomic.fetch_and_add executed_recovery_cycles
        m.Shasta_core.Machine.recovery_cycles));
  {
    spec;
    workload = inst.App.workload;
    parallel_cycles = Dsm.parallel_cycles h;
    stats = Dsm.aggregate_stats h;
    per_proc = Dsm.proc_stats h;
    local_msgs = Dsm.messages_local h - downgrade_msgs;
    remote_msgs = Dsm.messages_remote h;
    downgrade_msgs;
    verdict;
  }

let run spec =
  match with_cache (fun () -> Hashtbl.find_opt cache spec) with
  | Some r -> r
  | None ->
    let r = execute spec in
    with_cache (fun () -> Hashtbl.replace cache spec r);
    r

(* Batch execution: dedupe the request list against itself and the
   cache, execute the misses on a domain pool, publish under the mutex.
   Per-spec once-semantics holds because (a) duplicates within the batch
   are collapsed here, and (b) batches and [run] are issued sequentially
   by the coordinating domain, so a spec cached by an earlier batch is
   filtered out before any worker sees the later one. Each [execute] is
   self-contained (fresh machine, no cross-run state — DESIGN.md §3c),
   and its result is independent of which domain runs it, so the cache
   contents — and everything rendered from them — are identical to
   [jobs = 1] in-place execution. *)
let run_batch ?jobs specs =
  let jobs = match jobs with Some j -> j | None -> Shasta_util.Pool.default_jobs () in
  let misses =
    with_cache (fun () ->
        let seen = Hashtbl.create 64 in
        List.filter
          (fun spec ->
            if Hashtbl.mem cache spec || Hashtbl.mem seen spec then false
            else begin
              Hashtbl.add seen spec ();
              true
            end)
          specs)
  in
  if misses <> [] then
    Shasta_util.Pool.with_pool ~jobs (fun pool ->
        misses
        |> List.map (fun spec ->
               Shasta_util.Pool.submit pool (fun () ->
                   let r = execute spec in
                   with_cache (fun () -> Hashtbl.replace cache spec r)))
        |> List.iter Shasta_util.Pool.await)

let seconds cycles = float_of_int cycles /. 3.0e8

let speedup spec =
  let seq = run (sequential ~scale:spec.scale spec.app) in
  let par = run spec in
  float_of_int seq.parallel_cycles /. float_of_int par.parallel_cycles

let cache_size () = with_cache (fun () -> Hashtbl.length cache)

let fastpath_by_app () =
  let tbl = Hashtbl.create 16 in
  with_cache (fun () ->
      Hashtbl.iter
        (fun spec r ->
          let st = r.stats in
          let c, fh, a, pa =
            match Hashtbl.find_opt tbl spec.app with
            | Some t -> t
            | None -> (0, 0, 0, 0)
          in
          Hashtbl.replace tbl spec.app
            ( c + st.Shasta_core.Stats.checks,
              fh + st.Shasta_core.Stats.fast_hits,
              a + st.Shasta_core.Stats.accesses,
              pa + st.Shasta_core.Stats.prog_accesses ))
        cache);
  Hashtbl.fold (fun app t acc -> (app, t) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
