module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Stats = Shasta_core.Stats
module Table = Shasta_util.Text_table

let nblocks = 32

(* One 64-byte block per measurement so every read is a cold miss. *)
let alloc_blocks h ~home =
  List.init nblocks (fun _ -> Dsm.alloc h ~block_size:64 ~home 64)

let mean_read_latency_us h reader =
  Stats.mean_read_latency_us (Dsm.proc_stats h).(reader)

(* Latency of a read served directly by a (remote or colocated) home. *)
let two_hop ~same_node () =
  let cfg = Config.create ~variant:Config.Base ~nprocs:8 ~procs_per_node:4 () in
  let h = Dsm.create cfg in
  let home = if same_node then 1 else 4 in
  let blocks = alloc_blocks h ~home in
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      if Dsm.pid ctx = 0 then
        List.iter (fun a -> ignore (Dsm.load_float ctx a)) blocks;
      Dsm.barrier ctx b);
  mean_read_latency_us h 0

(* Three hops: the home (proc 4) forwards to the owner (proc 8, on a
   third physical node). *)
let three_hop () =
  let cfg = Config.create ~variant:Config.Base ~nprocs:12 ~procs_per_node:4 () in
  let h = Dsm.create cfg in
  let blocks = alloc_blocks h ~home:4 in
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      if Dsm.pid ctx = 8 then
        List.iter (fun a -> Dsm.store_float ctx a 1.0) blocks;
      Dsm.barrier ctx b;
      if Dsm.pid ctx = 0 then
        List.iter (fun a -> ignore (Dsm.load_float ctx a)) blocks;
      Dsm.barrier ctx b);
  mean_read_latency_us h 0

(* Read latency when the owner node must send 0-3 downgrade messages:
   [writers] processors of the owning node touch each block with a store
   (raising their private entries to exclusive) before a processor on
   another node reads it. *)
let with_downgrades ~writers () =
  assert (writers >= 1 && writers <= 4);
  let cfg =
    Config.create ~variant:Config.Smp ~nprocs:8 ~procs_per_node:4 ~clustering:4 ()
  in
  let h = Dsm.create cfg in
  let blocks = alloc_blocks h ~home:4 in
  let b = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      if p >= 4 && p < 4 + writers then
        List.iter (fun a -> Dsm.store_float ctx a (float_of_int p)) blocks;
      Dsm.barrier ctx b;
      if p = 0 then List.iter (fun a -> ignore (Dsm.load_float ctx a)) blocks;
      Dsm.barrier ctx b);
  mean_read_latency_us h 0

(* The microbenchmarks build bespoke machines directly (placement and
   access patterns a Runner.spec cannot express), so there is nothing to
   prefetch; they run inline during [render]. *)
let specs () : Runner.spec list = []

let render () =
  let us v = Printf.sprintf "%.1f us" v in
  let basics =
    [
      [ "64B read, 2-hop remote home"; us (two_hop ~same_node:false ()); "~20 us" ];
      [ "64B read, colocated home (same SMP)"; us (two_hop ~same_node:true ()); "~11 us" ];
      [ "64B read, 3-hop (home forwards to owner)"; us (three_hop ()); "-" ];
    ]
  in
  let dg =
    List.map
      (fun w ->
        [
          Printf.sprintf "64B read with %d downgrade msg(s)" (w - 1);
          us (with_downgrades ~writers:w ());
          (match w with
          | 1 -> "baseline"
          | 2 -> "+~10 us over baseline"
          | _ -> "+~5 us per additional");
        ])
      [ 1; 2; 3; 4 ]
  in
  Report.section "Microbenchmarks (4.1 / 4.4): miss latencies"
    (Table.render ~header:[ "operation"; "measured"; "paper" ] (basics @ dg))
