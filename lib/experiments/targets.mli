(** The paper's evaluation targets, one per table/figure, as data.

    Each target pairs its renderer with the enumeration of every
    {!Runner.spec} the renderer will consult (sequential speedup
    baselines included), so drivers can warm the memo cache through a
    domain pool with {!Runner.run_batch} and then render sequentially
    from cache — the rendered output is byte-identical to running
    everything in place, because each simulation is deterministic and
    self-contained.

    The Bechamel host-microbenchmark target lives in [bench/] (it needs
    the [bechamel] library) and is not listed here. *)

type t = {
  name : string;  (** e.g. ["fig3"] *)
  render : scale:float -> string;
  specs : scale:float -> Runner.spec list;
}

val all : t list
(** In the paper's presentation order: table1-3, fig3-8, micro, anl,
    ablation. *)

val names : string list

val find : string -> t option

val prefetch : ?jobs:int -> scale:float -> t list -> unit
(** Run the union of the targets' spec lists through
    {!Runner.run_batch}. *)
