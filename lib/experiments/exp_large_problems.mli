(** Table 3: larger problem sizes (2× the default scale).

    Sequential time, checking overheads and 16-processor speedups for
    Base-Shasta and SMP-Shasta (clustering 4) — demonstrating that both
    protocols improve with problem size and that SMP-Shasta's advantage
    persists (64-byte lines, no granularity hints). *)

val render : ?scale:float -> unit -> string

val specs : ?scale:float -> unit -> Runner.spec list
(** Every spec [render] will consult, including the sequential baselines
    — for prefetching through {!Runner.run_batch}. *)
