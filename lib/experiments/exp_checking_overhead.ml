module Table = Shasta_util.Text_table
module Registry = Shasta_apps.Registry

let specs ?(scale = 1.0) () =
  List.concat_map
    (fun app ->
      [
        Runner.sequential ~scale app;
        Runner.base ~scale app 1;
        Runner.smp ~scale app 1 ~clustering:1;
      ])
    Registry.splash2

let render ?(scale = 1.0) () =
  let rows =
    List.map
      (fun app ->
        let seq = Runner.run (Runner.sequential ~scale app) in
        let base = Runner.run (Runner.base ~scale app 1) in
        let smp =
          Runner.run (Runner.smp ~scale app 1 ~clustering:1)
        in
        let ov r =
          float_of_int (r.Runner.parallel_cycles - seq.Runner.parallel_cycles)
          /. float_of_int seq.Runner.parallel_cycles
        in
        [
          app;
          seq.Runner.workload;
          Report.seconds seq.Runner.parallel_cycles;
          Printf.sprintf "%s (+%s)"
            (Report.seconds base.Runner.parallel_cycles)
            (Report.pct (ov base));
          Printf.sprintf "%s (+%s)"
            (Report.seconds smp.Runner.parallel_cycles)
            (Report.pct (ov smp));
        ])
      Registry.splash2
  in
  let avg which =
    let total =
      List.fold_left
        (fun acc app ->
          let seq = Runner.run (Runner.sequential ~scale app) in
          let r = Runner.run (which app) in
          acc
          +. (float_of_int (r.Runner.parallel_cycles - seq.Runner.parallel_cycles)
             /. float_of_int seq.Runner.parallel_cycles))
        0.0 Registry.splash2
    in
    total /. float_of_int (List.length Registry.splash2)
  in
  let body =
    Table.render
      ~header:
        [ "app"; "problem"; "sequential"; "Base-Shasta checks"; "SMP-Shasta checks" ]
      rows
  in
  Report.section
    "Table 1: sequential times and checking overheads"
    (body
    ^ Printf.sprintf
        "\n\naverage overhead: Base-Shasta %s, SMP-Shasta %s (paper: 14.7%% / 24.0%%)"
        (Report.pct (avg (fun app -> Runner.base ~scale app 1)))
        (Report.pct (avg (fun app -> Runner.smp ~scale app 1 ~clustering:1))))
