type _ Effect.t += Yield : unit Effect.t

type status =
  | Fresh
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

(* Yield-effect counters for one [run]. Shared by the run's processors
   (a run is single-domain: its coroutines interleave, never overlap),
   never by two runs — which is what makes concurrent [run]s on
   separate domains race-free. *)
type counters = { mutable performed : int; mutable elided : int }

type proc = {
  p_id : int;
  p_nprocs : int;
  mutable p_now : int;
  mutable p_status : status;
  mutable p_horizon : int;
  mutable p_visible : int;
      (* The base of [p_horizon] before the tie-break adjustment: the
         earliest virtual time at which anything another processor did
         or will do (including a queued message's arrival) can become
         visible to [p]. Strictly below it, a poll probe is guaranteed
         empty and no shared state [p] can observe changes. *)
  p_max_cycles : int;
  p_counters : counters;
}

type outcome = {
  finish : int array;
  yields_performed : int;
  yields_elided : int;
}

exception Cycle_limit of int

let pid p = p.p_id
let nprocs p = p.p_nprocs
let now p = p.p_now

let advance_local p c =
  assert (c >= 0);
  p.p_now <- p.p_now + c;
  if p.p_now > p.p_max_cycles then raise (Cycle_limit p.p_id)

(* Run-ahead (conservative-PDES lookahead): between two scheduling
   points of processor [p], no other processor executes — their clocks
   and statuses are frozen. [p_horizon] is a virtual time strictly below
   which nothing any other processor does can become visible to [p]
   (see [run] for how it is computed), so scheduling points below the
   horizon elide the yield effect — the continuation switch, scheduler
   re-entry and re-pick — entirely and just keep running. Yielding
   MORE often than necessary is always safe (the scheduler observes an
   unchanged minimum and resumes the same processor), so any
   conservative under-estimate of the horizon preserves the simulation
   exactly; only an over-estimate could reorder visible events. *)

(* Process-wide aggregates over completed runs, updated once per [run]
   (atomically, because runs may execute on worker domains). *)
let total_performed = Atomic.make 0
let total_elided = Atomic.make 0
let yield_counts () = (Atomic.get total_performed, Atomic.get total_elided)

let () =
  at_exit (fun () ->
      if Sys.getenv_opt "SHASTA_SCHED_STATS" <> None then
        Printf.eprintf "[sched] yields performed=%d elided=%d\n%!"
          (Atomic.get total_performed) (Atomic.get total_elided))

let yield p =
  if p.p_now >= p.p_horizon then begin
    p.p_counters.performed <- p.p_counters.performed + 1;
    Effect.perform Yield
  end
  else p.p_counters.elided <- p.p_counters.elided + 1

let advance p c =
  advance_local p c;
  if p.p_now >= p.p_horizon then begin
    p.p_counters.performed <- p.p_counters.performed + 1;
    Effect.perform Yield
  end
  else p.p_counters.elided <- p.p_counters.elided + 1

(* Resume [p] under a deep handler that parks the continuation on Yield.
   The handler returns control to the scheduler loop after each effect. *)
let step body p =
  match p.p_status with
  | Finished | Running -> assert false
  | Suspended k ->
    p.p_status <- Running;
    Effect.Deep.continue k ()
  | Fresh ->
    p.p_status <- Running;
    Effect.Deep.match_with
      (fun () -> body p)
      ()
      {
        retc = (fun () -> p.p_status <- Finished);
        exnc = (fun e -> raise e);
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Yield ->
              Some
                (fun (k : (c, unit) Effect.Deep.continuation) ->
                  p.p_status <- Suspended k)
            | _ -> None);
      }

(* Runnable set as a binary min-heap on (p_now, p_id) — lexicographic,
   so equal clocks resume in processor-id order, exactly the tie-break
   of the original O(n) scan. A processor's clock only moves while it
   runs, and it is out of the heap while it runs, so heap order is never
   invalidated in place. Capacity is nprocs; no allocation after
   creation. *)
module Runq = struct
  type t = { heap : proc array; mutable size : int }

  let less a b = a.p_now < b.p_now || (a.p_now = b.p_now && a.p_id < b.p_id)

  let create capacity dummy = { heap = Array.make capacity dummy; size = 0 }

  let push q p =
    let heap = q.heap in
    let i = ref q.size in
    q.size <- q.size + 1;
    heap.(!i) <- p;
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      less heap.(!i) heap.(parent)
    do
      let parent = (!i - 1) / 2 in
      let t = heap.(!i) in
      heap.(!i) <- heap.(parent);
      heap.(parent) <- t;
      i := parent
    done

  let pop q =
    let heap = q.heap in
    let m = heap.(0) in
    q.size <- q.size - 1;
    heap.(0) <- heap.(q.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < q.size && less heap.(l) heap.(!smallest) then smallest := l;
      if r < q.size && less heap.(r) heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let t = heap.(!i) in
        heap.(!i) <- heap.(!smallest);
        heap.(!smallest) <- t;
        i := !smallest
      end
      else continue := false
    done;
    m
end

(* Cycles an idle spin loop may skip over in one step: a loop that
   re-checks state and polls every [quantum] cycles observes, at every
   lattice point strictly below [p_visible], exactly the state it sees
   now — frozen peers, an empty due-message probe — so those
   iterations can be collapsed into a single advance of the returned
   amount, landing on the first lattice point at or past [p_visible]
   (0 when that is the very next point). Virtual-time behavior is
   bit-identical to stepping; only the wasted re-checks go away. *)
let idle_skip p ~quantum =
  (* Compare before subtracting: under the always-yield scheduler
     [p_visible] stays at [min_int] and a subtraction would wrap. *)
  if p.p_visible = max_int || p.p_visible <= p.p_now then 0
  else begin
    let d = p.p_visible - p.p_now in
    if d <= quantum then 0
    else begin
      let steps = (d + quantum - 1) / quantum in
      quantum * (steps - 1)
    end
  end

let no_hint (_ : int) = max_int

let run ~nprocs ?(max_cycles = 2_000_000_000) ?(run_ahead = true)
    ?(arrival_hint = no_hint) ?(lookahead = [||]) body =
  assert (nprocs > 0);
  assert (
    Array.length lookahead = 0 || Array.length lookahead = nprocs * nprocs);
  let counters = { performed = 0; elided = 0 } in
  let tasks =
    Array.init nprocs (fun i ->
        {
          p_id = i;
          p_nprocs = nprocs;
          p_now = 0;
          p_status = Fresh;
          p_horizon = 0;
          p_visible = min_int;
          p_max_cycles = max_cycles;
          p_counters = counters;
        })
  in
  let lookahead =
    if Array.length lookahead > 0 then lookahead
    else Array.make (nprocs * nprocs) 0
  in
  (* The horizon of [p]: the first virtual time at which [p] must hand
     control back to the scheduler.  Its base is the earliest virtual
     time at which another processor's actions can become visible to
     [p], given that all other clocks are frozen while [p] runs:

     - A message already queued for [p] becomes visible at its arrival
       timestamp ([arrival_hint]).
     - A runnable processor [q]'s next action happens no earlier than
       its own clock, and becomes visible to [p] no earlier than
       [lookahead] cycles after that — the minimum virtual-time cost of
       any direct [q]-to-[p] interaction (0 when they share mutable
       state, the minimum message transfer time when the network is the
       only path between them).
     - Chains through an intermediary [r] need no extra terms: [r] only
       acts when scheduled, from its own clock, and [r]'s clock term
       already bounds everything [r] will do.

     With an all-zero matrix the base degenerates to the second-lowest
     runnable clock — the exact no-lookahead horizon.

     A yield AT the base time [h] performs real work only when the
     scheduler would pick somebody else, i.e. when some contributor [q]
     of the minimum would win the (clock, pid) tie-break against [p]
     standing at [h]: any [q] with a positive lookahead sits at a clock
     strictly below its bound, and a zero-lookahead [q] ties on clock
     and wins on a lower pid.  A minimum contributed only by queued
     messages or by higher-pid zero-lookahead peers means the scheduler
     would pop [p] right back — so [p] may keep running through [h] and
     the horizon is [h + 1]. *)
  let horizon_of p =
    let h = ref (arrival_hint p.p_id) in
    (* Does some contributor of the minimum run before [p] at time !h? *)
    let tie_lower = ref false in
    let row = p.p_id * nprocs in
    for i = 0 to nprocs - 1 do
      let q = tasks.(i) in
      if q != p && q.p_status <> Finished then begin
        let la = lookahead.(row + i) in
        let bound = q.p_now + la in
        if bound < !h then begin
          h := bound;
          tie_lower := la > 0 || q.p_id < p.p_id
        end
        else if bound = !h then
          tie_lower := !tie_lower || la > 0 || q.p_id < p.p_id
      end
    done;
    p.p_visible <- !h;
    if !tie_lower || !h = max_int then !h else !h + 1
  in
  let q = Runq.create nprocs tasks.(0) in
  Array.iter (fun p -> Runq.push q p) tasks;
  while q.Runq.size > 0 do
    let p = Runq.pop q in
    (* With [run_ahead] off, a past horizon forces the effect at every
       scheduling point and [p_visible] stays in the past so idle waits
       advance one quantum at a time, reproducing the always-yield
       scheduler switch-for-switch. *)
    if run_ahead then p.p_horizon <- horizon_of p
    else begin
      p.p_horizon <- min_int;
      p.p_visible <- min_int
    end;
    step body p;
    (* A Running status here means [step] returned without the task
       either finishing or suspending, which the handler construction
       rules out. *)
    match p.p_status with
    | Suspended _ -> Runq.push q p
    | Finished -> ()
    | Fresh | Running -> assert false
  done;
  ignore (Atomic.fetch_and_add total_performed counters.performed);
  ignore (Atomic.fetch_and_add total_elided counters.elided);
  {
    finish = Array.map (fun p -> p.p_now) tasks;
    yields_performed = counters.performed;
    yields_elided = counters.elided;
  }

(* Externally-scheduled variant for the litmus model checker: run-ahead
   is disabled (horizons pinned at [min_int], so every scheduling point
   performs and idle waits advance one quantum at a time), and instead
   of popping the (clock, pid) minimum the caller's [choose] picks any
   runnable processor. Index 0 of the candidate array is the (clock,
   pid) minimum, so [choose = fun _ -> cands.(0)] reproduces the
   [run_ahead:false] schedule exactly; any other choice models a valid
   timing (slower processors, longer latencies) because per-pair message
   FIFO order is preserved by the network layer regardless of schedule. *)
let run_controlled ~nprocs ?(max_cycles = 2_000_000_000) ~choose body =
  assert (nprocs > 0);
  let counters = { performed = 0; elided = 0 } in
  let tasks =
    Array.init nprocs (fun i ->
        {
          p_id = i;
          p_nprocs = nprocs;
          p_now = 0;
          p_status = Fresh;
          p_horizon = min_int;
          p_visible = min_int;
          p_max_cycles = max_cycles;
          p_counters = counters;
        })
  in
  let running = ref true in
  while !running do
    let live = ref [] in
    for i = nprocs - 1 downto 0 do
      if tasks.(i).p_status <> Finished then live := i :: !live
    done;
    match !live with
    | [] -> running := false
    | l ->
      let cands = Array.of_list l in
      Array.sort
        (fun a b ->
          let ca = tasks.(a).p_now and cb = tasks.(b).p_now in
          if ca <> cb then compare ca cb else compare a b)
        cands;
      let pick = choose cands in
      if
        pick < 0 || pick >= nprocs || tasks.(pick).p_status = Finished
      then invalid_arg "Engine.run_controlled: choose picked a non-runnable pid";
      step body tasks.(pick)
  done;
  ignore (Atomic.fetch_and_add total_performed counters.performed);
  ignore (Atomic.fetch_and_add total_elided counters.elided);
  {
    finish = Array.map (fun p -> p.p_now) tasks;
    yields_performed = counters.performed;
    yields_elided = counters.elided;
  }
