type _ Effect.t += Yield : unit Effect.t

type status =
  | Fresh
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

(* Yield-effect counters for one [run]. Shared by the run's processors
   (a run is single-domain: its coroutines interleave, never overlap),
   never by two runs — which is what makes concurrent [run]s on
   separate domains race-free. *)
type counters = { mutable performed : int; mutable elided : int }

type proc = {
  p_id : int;
  p_nprocs : int;
  mutable p_now : int;
  mutable p_status : status;
  mutable p_horizon : int;
  mutable p_resumed_at : int;
      (* Clock at which the run-ahead scheduler last resumed this
         processor ([min_int] under the always-yield schedulers, so the
         elision below never fires there). A yield requested while the
         clock still equals it is a guaranteed self-resume — see the
         comment on [yield]. *)
  mutable p_visible : int;
      (* The base of [p_horizon] before the tie-break adjustment: the
         earliest virtual time at which anything another processor did
         or will do (including a queued message's arrival) can become
         visible to [p]. Strictly below it, a poll probe is guaranteed
         empty and no shared state [p] can observe changes. *)
  p_max_cycles : int;
  p_counters : counters;
}

type outcome = {
  finish : int array;
  yields_performed : int;
  yields_elided : int;
}

exception Cycle_limit of int

let pid p = p.p_id
let nprocs p = p.p_nprocs
let now p = p.p_now

let advance_local p c =
  assert (c >= 0);
  p.p_now <- p.p_now + c;
  if p.p_now > p.p_max_cycles then raise (Cycle_limit p.p_id)

(* Run-ahead (conservative-PDES lookahead): between two scheduling
   points of processor [p], no other processor executes — their clocks
   and statuses are frozen. [p_horizon] is a virtual time strictly below
   which nothing any other processor does can become visible to [p]
   (see [run] for how it is computed), so scheduling points below the
   horizon elide the yield effect — the continuation switch, scheduler
   re-entry and re-pick — entirely and just keep running. Yielding
   MORE often than necessary is always safe (the scheduler observes an
   unchanged minimum and resumes the same processor), so any
   conservative under-estimate of the horizon preserves the simulation
   exactly; only an over-estimate could reorder visible events. *)

(* Process-wide aggregates over completed runs, updated once per [run]
   (atomically, because runs may execute on worker domains). *)
let total_performed = Atomic.make 0
let total_elided = Atomic.make 0
let yield_counts () = (Atomic.get total_performed, Atomic.get total_elided)

let () =
  at_exit (fun () ->
      if Sys.getenv_opt "SHASTA_SCHED_STATS" <> None then
        Printf.eprintf "[sched] yields performed=%d elided=%d\n%!"
          (Atomic.get total_performed) (Atomic.get total_elided))

(* Besides the horizon rule, a yield is elided when the clock has not
   advanced since the scheduler resumed this processor: popping [p] froze
   every peer's clock and status, a running processor never enqueues a
   message to itself ([Protocol.deliver] handles those inline), so
   re-performing would recompute the identical horizon and pop the
   unique (clock, pid) minimum — [p] itself — right back. Under the
   sharded scheduler the recomputed cross-shard bound can only have
   grown (published clocks are monotone), so keeping the staler, smaller
   horizon is conservative there. A protocol operation typically issues
   several scheduling points at one virtual time (the flush charge, the
   poll charge, the poll probe), and this collapses them into at most
   one continuation switch. *)
let yield p =
  if p.p_now >= p.p_horizon && p.p_now <> p.p_resumed_at then begin
    p.p_counters.performed <- p.p_counters.performed + 1;
    Effect.perform Yield
  end
  else p.p_counters.elided <- p.p_counters.elided + 1

let advance p c =
  advance_local p c;
  if p.p_now >= p.p_horizon && p.p_now <> p.p_resumed_at then begin
    p.p_counters.performed <- p.p_counters.performed + 1;
    Effect.perform Yield
  end
  else p.p_counters.elided <- p.p_counters.elided + 1

(* Resume [p] under a deep handler that parks the continuation on Yield.
   The handler returns control to the scheduler loop after each effect. *)
let step body p =
  match p.p_status with
  | Finished | Running -> assert false
  | Suspended k ->
    p.p_status <- Running;
    Effect.Deep.continue k ()
  | Fresh ->
    p.p_status <- Running;
    Effect.Deep.match_with
      (fun () -> body p)
      ()
      {
        retc = (fun () -> p.p_status <- Finished);
        exnc = (fun e -> raise e);
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Yield ->
              Some
                (fun (k : (c, unit) Effect.Deep.continuation) ->
                  p.p_status <- Suspended k)
            | _ -> None);
      }

(* Runnable set as a binary min-heap on (p_now, p_id) — lexicographic,
   so equal clocks resume in processor-id order, exactly the tie-break
   of the original O(n) scan. A processor's clock only moves while it
   runs, and it is out of the heap while it runs, so heap order is never
   invalidated in place. Capacity is nprocs; no allocation after
   creation. *)
module Runq = struct
  type t = { heap : proc array; mutable size : int }

  let less a b = a.p_now < b.p_now || (a.p_now = b.p_now && a.p_id < b.p_id)

  let create capacity dummy = { heap = Array.make capacity dummy; size = 0 }

  (* Hot: one push + one pop per scheduler pick. Every index below is
     bounded by [size <= capacity] (push asserts it), so the accesses
     skip the bounds checks. *)

  let push q p =
    assert (q.size < Array.length q.heap);
    let heap = q.heap in
    let i = ref q.size in
    q.size <- q.size + 1;
    Array.unsafe_set heap !i p;
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      less (Array.unsafe_get heap !i) (Array.unsafe_get heap parent)
    do
      let parent = (!i - 1) / 2 in
      let t = Array.unsafe_get heap !i in
      Array.unsafe_set heap !i (Array.unsafe_get heap parent);
      Array.unsafe_set heap parent t;
      i := parent
    done

  let pop q =
    assert (q.size > 0);
    let heap = q.heap in
    let m = Array.unsafe_get heap 0 in
    q.size <- q.size - 1;
    Array.unsafe_set heap 0 (Array.unsafe_get heap q.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < q.size && less (Array.unsafe_get heap l) (Array.unsafe_get heap !smallest)
      then smallest := l;
      if r < q.size && less (Array.unsafe_get heap r) (Array.unsafe_get heap !smallest)
      then smallest := r;
      if !smallest <> !i then begin
        let t = Array.unsafe_get heap !i in
        Array.unsafe_set heap !i (Array.unsafe_get heap !smallest);
        Array.unsafe_set heap !smallest t;
        i := !smallest
      end
      else continue := false
    done;
    m
end

(* Cycles an idle spin loop may skip over in one step: a loop that
   re-checks state and polls every [quantum] cycles observes, at every
   lattice point strictly below [p_visible], exactly the state it sees
   now — frozen peers, an empty due-message probe — so those
   iterations can be collapsed into a single advance of the returned
   amount, landing on the first lattice point at or past [p_visible]
   (0 when that is the very next point). Virtual-time behavior is
   bit-identical to stepping; only the wasted re-checks go away. *)
let idle_skip p ~quantum =
  (* Compare before subtracting: under the always-yield scheduler
     [p_visible] stays at [min_int] and a subtraction would wrap. *)
  if p.p_visible = max_int || p.p_visible <= p.p_now then 0
  else begin
    let d = p.p_visible - p.p_now in
    if d <= quantum then 0
    else begin
      let steps = (d + quantum - 1) / quantum in
      quantum * (steps - 1)
    end
  end

let no_hint (_ : int) = max_int

(* Shared tail of the horizon formula (see the long comment in [run]
   for the derivation of the base [h] / [tie_lower] accumulation, which
   each scheduler inlines over its own peer set). [bound] is the
   conservative cross-shard bound, [max_int] when the whole machine is
   in view. Returns (visible, horizon).

   The tie-break sharpening (+1) applies only strictly below [bound]: a
   cross-shard message may arrive at exactly [bound], so the processor
   must yield there no matter who would win the (clock, pid) race. *)
let horizon_finish ~h ~tie_lower ~bound =
  if bound <= h then (bound, bound)
  else
    let horizon = if tie_lower || h = max_int then h else h + 1 in
    (h, min horizon bound)

(* Crash-event support shared by [run] and [run_controlled]: a kill
   closure over the run's task array, and a due-event pump consulted
   before each resume.

   [kill] marks the processor [Finished] and DROPS its continuation
   without discontinuing. This is deliberate: discontinuing would unwind
   the fiber through any [Fun.protect] finalizers on its stack, and
   protocol finalizers (batch teardown) perform real protocol work —
   including [Yield] effects, which the still-installed handler would
   catch and re-park the processor, silently undoing the kill. A crash
   skips cleanup by definition; the orphaned fiber is reclaimed by the
   GC. *)
let make_kill tasks nprocs =
 fun pid ->
  if pid < 0 || pid >= nprocs then invalid_arg "Engine.kill: pid out of range";
  let t = tasks.(pid) in
  match t.p_status with
  | Running -> invalid_arg "Engine.kill: cannot kill the running processor"
  | Finished -> ()
  | Fresh | Suspended _ -> t.p_status <- Finished

let make_event_pump events kill =
  let pending =
    ref (List.stable_sort (fun (a, _) (b, _) -> compare a b) events)
  in
  fun p ->
    let rec go () =
      match !pending with
      | (at, f) :: rest when p.p_now >= at ->
        pending := rest;
        f ~kill ~now:p.p_now;
        go ()
      | _ -> ()
    in
    go ()

let run ~nprocs ?(max_cycles = 2_000_000_000) ?(run_ahead = true)
    ?(arrival_hint = no_hint) ?(lookahead = [||]) ?(events = []) body =
  assert (nprocs > 0);
  assert (
    Array.length lookahead = 0 || Array.length lookahead = nprocs * nprocs);
  let counters = { performed = 0; elided = 0 } in
  let tasks =
    Array.init nprocs (fun i ->
        {
          p_id = i;
          p_nprocs = nprocs;
          p_now = 0;
          p_status = Fresh;
          p_horizon = 0;
          p_resumed_at = min_int;
          p_visible = min_int;
          p_max_cycles = max_cycles;
          p_counters = counters;
        })
  in
  let has_events = events <> [] in
  let fire_due = make_event_pump events (make_kill tasks nprocs) in
  let lookahead =
    if Array.length lookahead > 0 then lookahead
    else Array.make (nprocs * nprocs) 0
  in
  (* The horizon of [p]: the first virtual time at which [p] must hand
     control back to the scheduler.  Its base is the earliest virtual
     time at which another processor's actions can become visible to
     [p], given that all other clocks are frozen while [p] runs:

     - A message already queued for [p] becomes visible at its arrival
       timestamp ([arrival_hint]).
     - A runnable processor [q]'s next action happens no earlier than
       its own clock, and becomes visible to [p] no earlier than
       [lookahead] cycles after that — the minimum virtual-time cost of
       any direct [q]-to-[p] interaction (0 when they share mutable
       state, the minimum message transfer time when the network is the
       only path between them).
     - Chains through an intermediary [r] need no extra terms: [r] only
       acts when scheduled, from its own clock, and [r]'s clock term
       already bounds everything [r] will do.

     With an all-zero matrix the base degenerates to the second-lowest
     runnable clock — the exact no-lookahead horizon.

     A yield AT the base time [h] performs real work only when the
     scheduler would pick somebody else, i.e. when some contributor [q]
     of the minimum would win the (clock, pid) tie-break against [p]
     standing at [h]: any [q] with a positive lookahead sits at a clock
     strictly below its bound, and a zero-lookahead [q] ties on clock
     and wins on a lower pid.  A minimum contributed only by queued
     messages or by higher-pid zero-lookahead peers means the scheduler
     would pop [p] right back — so [p] may keep running through [h] and
     the horizon is [h + 1]. *)
  (* Hot: one call per scheduler pick. The unsafe reads are in range by
     construction — [i < nprocs = Array.length tasks] and
     [row + i < nprocs * nprocs = Array.length lookahead]. *)
  let horizon_of p =
    assert (Array.length tasks = nprocs && Array.length lookahead = nprocs * nprocs);
    let h = ref (arrival_hint p.p_id) in
    (* Does some contributor of the minimum run before [p] at time !h? *)
    let tie_lower = ref false in
    let row = p.p_id * nprocs in
    for i = 0 to nprocs - 1 do
      let q = Array.unsafe_get tasks i in
      if q != p && q.p_status <> Finished then begin
        let la = Array.unsafe_get lookahead (row + i) in
        let bound = q.p_now + la in
        if bound < !h then begin
          h := bound;
          tie_lower := la > 0 || q.p_id < p.p_id
        end
        else if bound = !h then
          tie_lower := !tie_lower || la > 0 || q.p_id < p.p_id
      end
    done;
    let visible, horizon =
      horizon_finish ~h:!h ~tie_lower:!tie_lower ~bound:max_int
    in
    p.p_visible <- visible;
    horizon
  in
  let q = Runq.create nprocs tasks.(0) in
  Array.iter (fun p -> Runq.push q p) tasks;
  while q.Runq.size > 0 do
    let p = Runq.pop q in
    (* A popped processor may have been killed by an event while parked
       in the heap; skip it. *)
    let running = ref (p.p_status <> Finished) in
    while !running do
      (* Crash events fire at the clock of the processor about to be
         resumed — the global minimum, so an event at virtual time [at]
         fires before any processor executes at-or-past [at]. The
         callback may kill processors, including [p] itself. *)
      if has_events then fire_due p;
      if p.p_status = Finished then running := false
      else begin
        (* With [run_ahead] off, a past horizon forces the effect at every
           scheduling point and [p_visible] stays in the past so idle waits
           advance one quantum at a time, reproducing the always-yield
           scheduler switch-for-switch. *)
        if run_ahead then begin
          p.p_horizon <- horizon_of p;
          p.p_resumed_at <- p.p_now
        end
        else begin
          p.p_horizon <- min_int;
          p.p_visible <- min_int
        end;
        step body p;
        (* A Running status here means [step] returned without the task
           either finishing or suspending, which the handler construction
           rules out. *)
        match p.p_status with
        | Suspended _ ->
          (* Self-resume fast path: pushing [p] and popping again would
             return [p] itself whenever it is still the strict (clock,
             pid) minimum — [less] is total on live processors (unique
             pids), so the comparison against the heap top decides the
             pick exactly. Skip the heap churn and resume directly. *)
          if
            q.Runq.size > 0 && not (Runq.less p (Array.unsafe_get q.Runq.heap 0))
          then begin
            Runq.push q p;
            running := false
          end
        | Finished -> running := false
        | Fresh | Running -> assert false
      end
    done
  done;
  ignore (Atomic.fetch_and_add total_performed counters.performed);
  ignore (Atomic.fetch_and_add total_elided counters.elided);
  {
    finish = Array.map (fun p -> p.p_now) tasks;
    yields_performed = counters.performed;
    yields_elided = counters.elided;
  }

(* Externally-scheduled variant for the litmus model checker: run-ahead
   is disabled (horizons pinned at [min_int], so every scheduling point
   performs and idle waits advance one quantum at a time), and instead
   of popping the (clock, pid) minimum the caller's [choose] picks any
   runnable processor. Index 0 of the candidate array is the (clock,
   pid) minimum, so [choose = fun _ -> cands.(0)] reproduces the
   [run_ahead:false] schedule exactly; any other choice models a valid
   timing (slower processors, longer latencies) because per-pair message
   FIFO order is preserved by the network layer regardless of schedule. *)
(* ------------------------------------------------------------------ *)
(* Sharded conservative-PDES scheduler.

   Processors are partitioned into [shards]; each shard runs the
   ordinary min-clock run-ahead loop over its own processors on its own
   domain, concurrently with the others. Correctness rests on one
   invariant, the cross-shard conservative bound:

     bound(s) = min over s' <> s of  pub(s') + shard_lookahead(s, s')

   where pub(s') is shard s''s published clock — a lower bound on the
   virtual time of anything it will ever send from now on — and
   shard_lookahead is the minimum lookahead over cross-shard processor
   pairs. No processor of [s] is ever resumed at a clock at-or-past
   bound(s), and every resume's horizon AND visibility are capped at the
   bound, so by the run-ahead safety argument ("yielding more often is
   always safe") the merged event stream is bit-identical to the
   sequential scheduler: any message that could arrive at virtual time t
   is guaranteed to be sitting in the destination heap before any
   destination processor reaches t, because (a) the sender stamped and
   mailboxed it before publishing a clock that could raise the bound
   past t, and (b) the destination shard folds its mailboxes into the
   heaps at every loop iteration, before re-reading the bound.

   Deadlock-freedom: every cross-shard lookahead entry must be >= 1
   (checked at entry; the coherence-node partition guarantees it, since
   distinct nodes only interact through the network whose cheapest
   message costs a zero-byte transfer >= the link latency). If two
   shards both stalled at each other's bound b = pub + la > pub, each
   could still run its processors up to its own bound, a contradiction
   once clocks reach the minimum parked clock.

   Termination: once a shard's processors are all in the post-run drain
   and it has no local protocol work, it publishes a quiet word
   combining its drained-message count and a quiet bit in ONE atomic:

     word(s) = (drained(s) lsl 1) lor quiet(s)

   Shard 0 declares global quiescence after two scans observing every
   quiet bit set, cross_sent() equal to the sum of drained counts, and
   both unchanged between the scans. A message in a mailbox is counted
   in cross_sent but not yet in any drained count (the sender increments
   cross_sent before the push); a message drained into a heap bumped the
   drained count in the same word update that cleared the quiet bit, and
   drained counts are monotonic, so a transient drain between the scans
   cannot restore the earlier word. Hence at a successful double scan no
   message exists anywhere and every shard was protocol-quiet after its
   last drain — exactly [Machine.quiescent], decided without touching
   another shard's state. *)

type shard_stats = {
  shard_walls : float array;  (** per-shard host seconds inside the loop *)
  shard_steps : int array;  (** processor resumes executed by the shard *)
  shard_spins : int array;
      (** loop iterations parked at the cross-shard bound — the
          spin/step ratio is the occupancy complement *)
}

exception Shard_failure of exn

let no_clock () = 0.0

let default_park _ = Domain.cpu_relax ()

let run_sharded ~nprocs ~shards ~shard_of ?(max_cycles = 2_000_000_000)
    ?(arrival_hint = no_hint) ~lookahead ~drain ~cross_sent ~quiet
    ~on_quiesced ?(clock = no_clock) ?(park = default_park) body =
  assert (nprocs > 0 && shards > 1);
  assert (Array.length lookahead = nprocs * nprocs);
  let shard_members = Array.make shards [] in
  for i = nprocs - 1 downto 0 do
    let s = shard_of i in
    assert (s >= 0 && s < shards);
    shard_members.(s) <- i :: shard_members.(s)
  done;
  Array.iter (fun ms -> assert (ms <> [])) shard_members;
  (* Conservative per-shard-pair lookahead: min over cross pairs. *)
  let shard_la = Array.make (shards * shards) max_int in
  for p = 0 to nprocs - 1 do
    for q = 0 to nprocs - 1 do
      let sp = shard_of p and sq = shard_of q in
      if sp <> sq then begin
        let k = (sp * shards) + sq in
        shard_la.(k) <- min shard_la.(k) lookahead.((p * nprocs) + q)
      end
    done
  done;
  Array.iteri
    (fun k la ->
      if k / shards <> k mod shards && la < 1 then
        invalid_arg
          "Engine.run_sharded: cross-shard lookahead must be >= 1 (shard by \
           coherence node)")
    shard_la;
  let shard_counters =
    Array.init shards (fun _ -> { performed = 0; elided = 0 })
  in
  let tasks =
    Array.init nprocs (fun i ->
        {
          p_id = i;
          p_nprocs = nprocs;
          p_now = 0;
          p_status = Fresh;
          p_horizon = 0;
          p_resumed_at = min_int;
          p_visible = min_int;
          p_max_cycles = max_cycles;
          p_counters = shard_counters.(shard_of i);
        })
  in
  (* Published clocks: pub.(s) is a lower bound on every future send of
     shard s (the min clock of its runnable processors; clocks only
     grow, and a processor's sends are stamped at-or-after its clock).
     max_int once the shard has fully finished. *)
  let pub = Array.init shards (fun _ -> Atomic.make 0) in
  (* (drained lsl 1) lor quiet — see the termination note above. *)
  let words = Array.init shards (fun _ -> Atomic.make 0) in
  let quiesced = Atomic.make false in
  let failure = Atomic.make None in
  let walls = Array.make shards 0.0 in
  let steps = Array.make shards 0 in
  let spins = Array.make shards 0 in
  let bound_of s =
    let b = ref max_int in
    for s' = 0 to shards - 1 do
      if s' <> s then begin
        let p = Atomic.get pub.(s') in
        if p < max_int then begin
          let v = p + shard_la.((s * shards) + s') in
          if v < !b then b := v
        end
      end
    done;
    !b
  in
  let check_quiesce () =
    if not (Atomic.get quiesced) then begin
      let scan () =
        let ok = ref true in
        let drained = ref 0 in
        let ws = Array.map Atomic.get words in
        Array.iter
          (fun w ->
            if w land 1 = 0 then ok := false;
            drained := !drained + (w lsr 1))
          ws;
        let xs = cross_sent () in
        ((!ok && xs = !drained), xs, ws)
      in
      let ok1, xs1, ws1 = scan () in
      if ok1 then begin
        let ok2, xs2, ws2 = scan () in
        if ok2 && xs2 = xs1 && ws2 = ws1 then begin
          Atomic.set quiesced true;
          on_quiesced ()
        end
      end
    end
  in
  let shard_loop s =
    let t0 = clock () in
    let members = shard_members.(s) in
    let my_n = List.length members in
    let counters = shard_counters.(s) in
    let q = Runq.create my_n tasks.(List.hd members) in
    List.iter (fun i -> Runq.push q tasks.(i)) members;
    let drained = ref 0 in
    let member_ids = Array.of_list members in
    (* Local horizon over this shard's own processors; cross-shard peers
       are summarized by [bound] — the same accumulation as [run]'s
       [horizon_of], restricted to the shard, finished with the capped
       tail. *)
    let horizon_of p bound =
      let h = ref (arrival_hint p.p_id) in
      let tie_lower = ref false in
      let row = p.p_id * nprocs in
      for k = 0 to Array.length member_ids - 1 do
        let qq = tasks.(member_ids.(k)) in
        if qq != p && qq.p_status <> Finished then begin
          let la = lookahead.(row + qq.p_id) in
          let b = qq.p_now + la in
          if b < !h then begin
            h := b;
            tie_lower := la > 0 || qq.p_id < p.p_id
          end
          else if b = !h then tie_lower := !tie_lower || la > 0 || qq.p_id < p.p_id
        end
      done;
      let visible, horizon = horizon_finish ~h:!h ~tie_lower:!tie_lower ~bound in
      p.p_visible <- visible;
      horizon
    in
    (try
       let running = ref true in
       (* Consecutive iterations parked at the bound without resuming a
          processor — reset on any resume or cross-shard delivery. Fed
          to [park] so a host with fewer cores than shards can back off
          to the OS scheduler instead of burning the working shard's
          timeslice. *)
       let consec = ref 0 in
       while !running do
         if Atomic.get failure <> None then running := false
         else begin
           (* The bound MUST come from [pub] values read BEFORE the
              drain. A message admissible under [bound] — arrival <
              pub(s') + la — was necessarily mailboxed before s'
              published that clock (sends are stamped at-or-after the
              sender's pub, and transfer >= la), so a drain performed
              after the pub read is guaranteed to deliver it. Draining
              first and reading pubs second reopens a window: a message
              pushed between our drain and the sender's pub advance can
              be admissible under the fresher bound yet still sit in
              the mailbox, and the resumed processor polls straight
              past its arrival. Staleness the other way (an old, lower
              pub) only shrinks the bound, which is always safe. *)
           let bound = bound_of s in
           let moved = drain s in
           if moved > 0 then consec := 0;
           drained := !drained + moved;
           (* Publish the quiet word every iteration, and let shard 0
              scan every iteration too: the slowest shard never parks
              at its bound (everyone else is ahead of it), so deferring
              the scan to the parked branch could leave shard 0
              stepping drain spins forever while the others wait
              parked-and-quiet. *)
           Atomic.set words.(s)
             ((!drained lsl 1) lor (if quiet s then 1 else 0));
           if s = 0 then check_quiesce ();
           if q.Runq.size = 0 then begin
             Atomic.set pub.(s) max_int;
             Atomic.set words.(s) ((!drained lsl 1) lor 1);
             running := false
           end
           else begin
             let p = q.Runq.heap.(0) in
             Atomic.set pub.(s) p.p_now;
             if p.p_now >= bound then begin
               spins.(s) <- spins.(s) + 1;
               incr consec;
               park !consec
             end
             else begin
               consec := 0;
               let p = Runq.pop q in
               steps.(s) <- steps.(s) + 1;
               p.p_horizon <- horizon_of p bound;
               p.p_resumed_at <- p.p_now;
               step body p;
               match p.p_status with
               | Suspended _ -> Runq.push q p
               | Finished -> ()
               | Fresh | Running -> assert false
             end
           end
         end
       done
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       ignore (Atomic.compare_and_set failure None (Some (e, bt)));
       Atomic.set pub.(s) max_int);
    ignore (Atomic.fetch_and_add total_performed counters.performed);
    ignore (Atomic.fetch_and_add total_elided counters.elided);
    walls.(s) <- clock () -. t0
  in
  (* Shard 0 runs in place on the calling domain; shards 1..n-1 on the
     pool's worker domains. The pool is sized [shards] (not shards-1)
     because a 1-job pool runs submissions in place, which would block
     the caller before shard 0 ever started; one worker simply idles. *)
  Shasta_util.Pool.with_pool ~jobs:shards (fun pool ->
      let futures =
        List.init (shards - 1) (fun k ->
            Shasta_util.Pool.submit pool (fun () -> shard_loop (k + 1)))
      in
      shard_loop 0;
      List.iter Shasta_util.Pool.await futures);
  (match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace (Shard_failure e) bt
  | None -> ());
  let performed = ref 0 and elided = ref 0 in
  Array.iter
    (fun c ->
      performed := !performed + c.performed;
      elided := !elided + c.elided)
    shard_counters;
  ( {
      finish = Array.map (fun p -> p.p_now) tasks;
      yields_performed = !performed;
      yields_elided = !elided;
    },
    { shard_walls = walls; shard_steps = steps; shard_spins = spins } )

let run_controlled ~nprocs ?(max_cycles = 2_000_000_000) ?(events = []) ~choose
    body =
  assert (nprocs > 0);
  let counters = { performed = 0; elided = 0 } in
  let tasks =
    Array.init nprocs (fun i ->
        {
          p_id = i;
          p_nprocs = nprocs;
          p_now = 0;
          p_status = Fresh;
          p_horizon = min_int;
          p_resumed_at = min_int;
          p_visible = min_int;
          p_max_cycles = max_cycles;
          p_counters = counters;
        })
  in
  let has_events = events <> [] in
  let fire_due = make_event_pump events (make_kill tasks nprocs) in
  let running = ref true in
  while !running do
    let live = ref [] in
    for i = nprocs - 1 downto 0 do
      if tasks.(i).p_status <> Finished then live := i :: !live
    done;
    match !live with
    | [] -> running := false
    | l ->
      let cands = Array.of_list l in
      Array.sort
        (fun a b ->
          let ca = tasks.(a).p_now and cb = tasks.(b).p_now in
          if ca <> cb then compare ca cb else compare a b)
        cands;
      let pick = choose cands in
      if pick < 0 || pick >= nprocs then
        invalid_arg "Engine.run_controlled: choose picked a non-runnable pid";
      let p = tasks.(pick) in
      if p.p_status <> Finished then begin
        (* Crash events fire at the chosen processor's clock, before it
           steps; the callback may kill any processor including the
           pick, in which case this decision becomes a no-op and the
           next iteration recomputes the live set. *)
        if has_events then fire_due p;
        if p.p_status <> Finished then step body p
      end
  done;
  ignore (Atomic.fetch_and_add total_performed counters.performed);
  ignore (Atomic.fetch_and_add total_elided counters.elided);
  {
    finish = Array.map (fun p -> p.p_now) tasks;
    yields_performed = counters.performed;
    yields_elided = counters.elided;
  }
