(** Deterministic cooperative multiprocessor.

    Each simulated processor runs as an effect-handler coroutine with its
    own virtual cycle clock. The scheduler always resumes the runnable
    processor with the smallest clock (ties broken by processor id), so a
    run is a deterministic function of the program and its seeds.

    Run-ahead: when resuming a processor the scheduler hands it a
    {e horizon} — the earliest virtual time at which any other processor
    could affect it: the minimum over its in-flight message arrivals
    ([arrival_hint]) and, for every other runnable processor, that
    processor's clock plus the pair's [lookahead] slack (0 when the two
    share mutable state and may interact at any instant; the minimum
    message transfer time when the network is the only path between
    them). Scheduling points strictly below the horizon elide the yield
    effect entirely: nothing another processor does could have become
    visible there, so the elision is invisible in virtual time (see
    DESIGN.md §Simulator for the invariant argument). The runnable set
    is kept in a binary min-heap, so each real scheduling decision is
    O(log n).

    Causality note: a processor observes a message in its input queue only
    at a scheduling point at-or-after the message's arrival timestamp, which
    models polling-based reception (messages are never handled between an
    inline state check and its corresponding load/store, the key invariant
    of the Shasta protocol). *)

type proc
(** Handle to the currently executing simulated processor. *)

exception Cycle_limit of int
(** Raised (carrying the processor id) when a processor exceeds the run's
    cycle budget — the simulator's deadlock/livelock backstop. *)

type outcome = {
  finish : int array;  (** each processor's finish time in cycles *)
  yields_performed : int;
      (** scheduling points of this run that performed the yield effect *)
  yields_elided : int;
      (** scheduling points elided by run-ahead (below the horizon) *)
}
(** A run's result. The yield counters are per-run state — [run] keeps
    no cross-run mutable globals, so independent runs may execute
    concurrently on separate domains (the multicore experiment runner
    relies on this; see DESIGN.md §3c). *)

val run :
  nprocs:int ->
  ?max_cycles:int ->
  ?run_ahead:bool ->
  ?arrival_hint:(int -> int) ->
  ?lookahead:int array ->
  ?events:(int * (kill:(int -> unit) -> now:int -> unit)) list ->
  (proc -> unit) ->
  outcome
(** [run ~nprocs body] spawns [nprocs] processors executing [body] and
    schedules them to completion; [outcome.finish] is each processor's
    finish time in cycles. [max_cycles] defaults to [2_000_000_000].

    [events] is a list of [(at, callback)] pairs, fired in ascending
    [at] order. An event due at virtual time [at] fires just before the
    scheduler resumes the first processor whose clock is at-or-past
    [at] — since the scheduler always resumes the minimum clock, no
    processor has executed at-or-past [at] when the callback runs. The
    callback receives [kill], which marks a processor terminated
    {e without} unwinding its stack (crash semantics: no finalizers
    run; the orphaned fiber is reclaimed by the GC), and [now], the
    clock of the about-to-run processor. [kill] raises
    [Invalid_argument] on an out-of-range pid and is a no-op on an
    already-finished one. With no events (the default) the run is
    bit-identical to previous behaviour.

    [run_ahead] (default [true]): when false, every scheduling point
    performs the yield effect and re-enters the scheduler, as the
    original yield-per-advance scheduler did. The simulation outcome is
    identical either way; the flag exists for benchmarking and for
    cross-checking determinism. The equivalence is stronger than final
    counters: anything a processor observes or emits is a pure function
    of its own virtual clock, so an event stream attributed to the
    {e executing} processor at its cycle (as the core [Observer.t]
    hooks are) is identical event-for-event under both schedulers — the
    trace-golden test uses this as its oracle.

    [arrival_hint pid] may return the earliest arrival timestamp of an
    in-flight message destined to [pid], or [max_int] when none (the
    default). It is consulted once per resume and only ever {e tightens}
    the horizon, so a conservative hint is always safe.

    [lookahead] is a flat [nprocs * nprocs] matrix; entry
    [p * nprocs + q] is a lower bound on the virtual-time delay before
    any action of [q] can become visible to [p] — 0 when the pair
    shares mutable state directly, the minimum message transfer time
    when the network is the only path between them. Each other runnable
    processor contributes [clock + lookahead] to the resumed
    processor's horizon, which is where run-ahead earns its keep. The
    default (and an empty array) is all zeros: the horizon degenerates
    to the exact second-lowest runnable clock. Under-estimating an
    entry is always safe; over-estimating one can reorder visible
    events. *)

type shard_stats = {
  shard_walls : float array;
      (** per-shard host seconds spent inside the shard loop (as
          reported by the [clock] callback; all zero without one) *)
  shard_steps : int array;  (** processor resumes executed by each shard *)
  shard_spins : int array;
      (** loop iterations each shard spent parked at the cross-shard
          conservative bound; [steps / (steps + spins)] is a cheap
          occupancy proxy *)
}

exception Shard_failure of exn
(** A shard's body raised; the original exception is wrapped after every
    other shard has been stopped and joined. *)

val horizon_finish : h:int -> tie_lower:bool -> bound:int -> int * int
(** The shared tail of the horizon formula: given the accumulated
    minimum [h] over arrival hint and per-peer [clock + lookahead]
    contributions, whether some contributor would win the (clock, pid)
    tie-break ([tie_lower]), and the cross-shard conservative [bound]
    ([max_int] when the whole machine is in view), returns
    [(visible, horizon)]. The +1 sharpening applies only strictly below
    [bound] — a cross-shard message may arrive at exactly [bound].
    Exposed so tests can check the sharded scheduler's per-boundary
    horizon against the sequential formula. *)

val run_sharded :
  nprocs:int ->
  shards:int ->
  shard_of:(int -> int) ->
  ?max_cycles:int ->
  ?arrival_hint:(int -> int) ->
  lookahead:int array ->
  drain:(int -> int) ->
  cross_sent:(unit -> int) ->
  quiet:(int -> bool) ->
  on_quiesced:(unit -> unit) ->
  ?clock:(unit -> float) ->
  ?park:(int -> unit) ->
  (proc -> unit) ->
  outcome * shard_stats
(** Conservative-PDES variant of {!run}: processors are partitioned by
    [shard_of] into [shards] groups, each scheduled by its own min-clock
    run-ahead loop running concurrently on its own domain (shard 0 in
    place on the calling domain, the rest on a {!Shasta_util.Pool}).

    Each shard continuously publishes the minimum clock of its runnable
    processors; a shard resumes a processor only strictly below its
    {e conservative bound} — the minimum over other shards of published
    clock plus the pair's minimum cross-shard [lookahead] — and every
    resume's horizon and visibility are capped at the bound. Since
    yielding more often than necessary is always safe, and cross-shard
    messages (delivered by [drain], which the loop calls every
    iteration) are stamped with virtual arrival times at-or-past the
    sender's published clock plus lookahead, the merged event stream and
    all simulated-time results are bit-identical to {!run}. Every
    cross-shard [lookahead] entry must be >= 1 (shard by coherence node
    to guarantee it) or [Invalid_argument] is raised.

    [drain s] moves mailboxed cross-shard messages bound for shard [s]
    into its destination queues and returns the count moved; [quiet s]
    reports whether shard [s] is protocol-quiet (bodies finished, no
    local queued work); [cross_sent ()] is the monotonic global count of
    cross-shard sends, incremented by the sender {e before} the message
    becomes visible to [drain]. Global quiescence is declared by a
    double scan over per-shard (drained-count, quiet) words and
    [cross_sent] (see the termination note in the implementation), upon
    which [on_quiesced] is called exactly once — the post-run drain
    loops poll the flag it sets and wind down.

    [park n] is called on each loop iteration parked at the bound, with
    [n] the count of consecutive parked iterations since the last resume
    or cross-shard delivery; the default is [Domain.cpu_relax]. Callers
    on hosts with fewer cores than shards should back off to the OS
    scheduler (a short sleep) once [n] grows, so a parked shard stops
    burning the working shard's timeslice — purely a host-time policy,
    invisible in virtual time.

    The yield counters of the returned {!outcome} and the finish clocks
    of drained processors depend on shard count and host timing (the
    drain spins until quiescence is {e detected}); everything the
    simulation observes in virtual time does not. *)

val run_controlled :
  nprocs:int ->
  ?max_cycles:int ->
  ?events:(int * (kill:(int -> unit) -> now:int -> unit)) list ->
  choose:(int array -> int) ->
  (proc -> unit) ->
  outcome
(** [run ~run_ahead:false] under an external scheduler, for the litmus
    model checker. At every real scheduling decision the runnable
    processors are collected into an array sorted by (clock, pid) and
    passed to [choose], which must return one of them; that processor is
    resumed. [choose = fun cands -> cands.(0)] reproduces the default
    schedule exactly. Any other choice still models a valid execution —
    a timing in which the chosen processor's pending work simply
    completes earlier — because message FIFO order between each
    processor pair is independent of the schedule and the protocol makes
    no real-time assumptions. Raises [Invalid_argument] if [choose]
    returns a pid outside \[0, nprocs); a pid that finished (or was
    killed by an event) since the candidate array was built is skipped
    silently. [events] is as in {!run}, fired at the chosen processor's
    clock before it steps. *)

val pid : proc -> int
(** Identifier in \[0, nprocs). *)

val nprocs : proc -> int
(** Number of processors in this run. *)

val now : proc -> int
(** Current value of this processor's cycle clock. *)

val advance : proc -> int -> unit
(** [advance p c] charges [c] cycles; yields to the scheduler if the
    clock reached this run slice's horizon. *)

val advance_local : proc -> int -> unit
(** Charge cycles without a scheduling point — for short straight-line
    sequences where interleaving cannot matter. *)

val yield : proc -> unit
(** Scheduling point without a time charge (yields only at-or-past the
    horizon, where another processor may be due). *)

val idle_skip : proc -> quantum:int -> int
(** [idle_skip p ~quantum] is the number of cycles an idle spin loop —
    one that polls, re-checks state and advances [quantum] cycles per
    iteration — may add to its next advance so that it lands on the
    first lattice point at or past the visibility horizon (0 when that
    is the very next point anyway). Every skipped iteration is provably
    a no-op: strictly below the horizon the message probe is empty and
    no observable state can have changed, so the collapsed wait is
    bit-identical to stepping in virtual time. *)

val yield_counts : unit -> int * int
(** (performed, elided) yield-effect counters aggregated over every
    {e completed} run in this process, on any domain (maintained with
    [Atomic]) — observability for benchmarks and tests. Also printed at
    exit when [SHASTA_SCHED_STATS] is set. Per-run values are in
    {!outcome}. *)
