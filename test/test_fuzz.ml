(* Seeded schedule fuzzer: drive the litmus scenarios (and a small real
   workload) under [Dsm.run_controlled] with a PRNG-seeded scheduler
   that picks a uniformly random runnable processor at every decision
   point, with the online sanitizer and the happens-before race
   detector attached. The healthy protocol must survive every fuzzed
   schedule; with a fault injected, some fuzzed schedule must expose it.

   Every run is a pure function of (scenario, seed): a failure report
   prints exactly the pair to replay. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Inspect = Shasta_core.Inspect
module Machine = Shasta_core.Machine
module App = Shasta_apps.App
module Registry = Shasta_apps.Registry
module Sanitizer = Shasta_check.Sanitizer
module Races = Shasta_check.Races
module Litmus = Shasta_check.Litmus
module Prng = Shasta_util.Prng

let nseeds = 64

let random_choose seed =
  let prng = Prng.create (0x5eed + (seed * 2654435761)) in
  fun (cands : int array) -> cands.(Prng.int prng (Array.length cands))

(* One fuzzed run of a litmus scenario. Returns [None] on a clean pass,
   [Some what] naming the first problem otherwise. Everything the
   checkers can say is folded in: exceptions, sanitizer counts, the
   race detector, the scenario's own outcome predicate, and the
   post-run invariant sweep. *)
let fuzz_scenario ~fault sc seed =
  let inst = sc.Litmus.make ~fault in
  let m = Dsm.machine inst.Litmus.handle in
  let san = Sanitizer.attach m in
  let rd = Races.attach m in
  let outcome =
    try
      Dsm.run_controlled ~choose:(random_choose seed) inst.Litmus.handle
        inst.Litmus.body;
      None
    with
    | Inspect.Violation (v :: _) -> Some ("sanitizer: " ^ Inspect.describe v)
    | Inspect.Violation [] -> Some "sanitizer violation"
    | Shasta_core.Protocol.Protocol_violation { detail; _ } ->
      Some ("protocol: " ^ detail)
    | Shasta_sim.Engine.Cycle_limit p ->
      Some (Printf.sprintf "cycle limit (livelock) on proc %d" p)
  in
  match outcome with
  | Some _ as bad -> bad
  | None ->
    if Sanitizer.violation_count san > 0 then
      Some
        (Printf.sprintf "sanitizer recorded %d violation(s)"
           (Sanitizer.violation_count san))
    else if Races.race_count rd > 0 then
      Some (Races.describe (List.hd (Races.races rd)))
    else (
      match inst.Litmus.final () with
      | Some what -> Some ("outcome: " ^ what)
      | None -> (
        match Inspect.report m with
        | v :: _ -> Some ("post-run: " ^ Inspect.describe v)
        | [] ->
          if not (Machine.quiescent m) then Some "machine not quiescent"
          else None))

let test_scenarios_clean () =
  List.iter
    (fun sc ->
      for seed = 0 to nseeds - 1 do
        match fuzz_scenario ~fault:None sc seed with
        | None -> ()
        | Some what ->
          Alcotest.failf "scenario %s, seed %d: %s (replay: fuzz %s/%d)"
            sc.Litmus.name seed what sc.Litmus.name seed
      done)
    Litmus.scenarios

(* Same (scenario, seed) twice must reach the same simulated clock:
   the fuzzer is deterministic, so failures are replayable. *)
let test_fuzz_deterministic () =
  List.iter
    (fun sc ->
      let cycles seed =
        let inst = sc.Litmus.make ~fault:None in
        Dsm.run_controlled ~choose:(random_choose seed) inst.Litmus.handle
          inst.Litmus.body;
        Dsm.parallel_cycles inst.Litmus.handle
      in
      List.iter
        (fun seed ->
          Alcotest.(check int)
            (Printf.sprintf "%s seed %d replays to the same clock"
               sc.Litmus.name seed)
            (cycles seed) (cycles seed))
        [ 0; 17; 63 ])
    Litmus.scenarios

(* Distinct seeds must actually produce distinct schedules somewhere:
   otherwise the sweep above is 64 copies of one run. *)
let test_seeds_diversify () =
  let sc = List.hd Litmus.scenarios in
  let clocks =
    List.init 16 (fun seed ->
        let inst = sc.Litmus.make ~fault:None in
        Dsm.run_controlled ~choose:(random_choose seed) inst.Litmus.handle
          inst.Litmus.body;
        Dsm.parallel_cycles inst.Litmus.handle)
  in
  Alcotest.(check bool)
    "16 seeds reach more than one distinct simulated clock" true
    (List.length (List.sort_uniq compare clocks) > 1)

(* A real (tiny) workload under fuzzed scheduling: lu at minimal scale,
   sanitizer attached, result verified. *)
let test_lu_fuzzed () =
  let maker = Registry.find "lu" in
  List.iter
    (fun seed ->
      let inst = maker ~vg:false ~scale:0.1 () in
      let heap = max (1 lsl 22) inst.App.heap_bytes in
      let cfg =
        Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:2
          ~heap_bytes:heap ~sanitize:1 ()
      in
      let h = Dsm.create cfg in
      let san = Sanitizer.attach (Dsm.machine h) in
      let body, verify = inst.App.setup h in
      Dsm.run_controlled ~choose:(random_choose seed) h body;
      let verdict = verify h in
      if not verdict.App.ok then
        Alcotest.failf "lu seed %d: %s" seed verdict.App.detail;
      Alcotest.(check int)
        (Printf.sprintf "lu seed %d sanitizer clean" seed)
        0
        (Sanitizer.violation_count san);
      Inspect.assert_invariants (Dsm.machine h))
    [ 0; 1; 2; 3 ]

(* Fault injection: each of the two protocol faults must be exposed by
   at least one of the 64 fuzzed schedules of its known-sensitive
   scenario (the same pairings the sanitizer unit tests use). *)
let fuzz_catches scenario_name fault =
  let sc = List.find (fun s -> s.Litmus.name = scenario_name) Litmus.scenarios in
  let rec hunt seed =
    if seed >= nseeds then
      Alcotest.failf "%s: fault not caught by any of %d fuzzed schedules"
        scenario_name nseeds
    else
      match fuzz_scenario ~fault:(Some fault) sc seed with
      | Some _ -> seed
      | None -> hunt (seed + 1)
  in
  let seed = hunt 0 in
  Alcotest.(check bool)
    (Printf.sprintf "%s fault caught (first at seed %d)" scenario_name seed)
    true true

let test_catches_skip_private () =
  fuzz_catches "lock-counter" Config.Skip_private_downgrade

let test_catches_skip_flag () =
  fuzz_catches "store-steal" Config.Skip_flag_stamp

(* ------------------------------------------------------------------ *)
(* Randomized crash-point injection: each (scenario, seed) pair draws a
   node and a crash cycle from its own PRNG stream — the cycle from the
   scenario's default-schedule span, so placements land anywhere from
   the first miss to the final barrier — and must either recover with
   every checker clean or fail with the typed [Recovery_violation]
   (sharer-pull recovery may hit a genuine [Data_loss]). Runs are a
   pure function of (scenario, seed), so failures replay exactly. *)

let crash_prng seed = Prng.create (0xc4a5 + (seed * 2654435761))

(* Default-schedule run length per scenario, the crash-placement
   window; computed once. *)
let scenario_span =
  let tbl = Hashtbl.create 8 in
  fun sc ->
    match Hashtbl.find_opt tbl sc.Litmus.name with
    | Some s -> s
    | None ->
      let inst = sc.Litmus.make ~fault:None in
      Dsm.run_controlled
        ~choose:(fun (cs : int array) -> cs.(0))
        inst.Litmus.handle inst.Litmus.body;
      let s = Dsm.parallel_cycles inst.Litmus.handle in
      Hashtbl.add tbl sc.Litmus.name s;
      s

let fuzz_crash_scenario sc seed =
  let prng = crash_prng seed in
  let node = Prng.int prng 2 in
  let at = 1 + Prng.int prng (max 1 (scenario_span sc)) in
  let inst = sc.Litmus.make ~fault:None in
  let m = Dsm.machine inst.Litmus.handle in
  let san = Sanitizer.attach m in
  let events = [ Shasta_recover.Crash.kill inst.Litmus.handle ~node ~at ] in
  let outcome =
    try
      Dsm.run_controlled ~choose:(random_choose seed) ~events
        inst.Litmus.handle inst.Litmus.body;
      `Completed
    with
    | Shasta_recover.Recover.Recovery_violation _ ->
      (* typed: recovery declared honestly what it could not restore;
         the run is abandoned there, so no post-run checks apply *)
      `Typed
    | Inspect.Violation (v :: _) ->
      `Bad ("sanitizer: " ^ Inspect.describe v)
    | Shasta_core.Protocol.Protocol_violation { detail; _ } ->
      `Bad ("protocol: " ^ detail)
    | Shasta_sim.Engine.Cycle_limit p ->
      `Bad (Printf.sprintf "cycle limit (livelock) on proc %d" p)
  in
  match outcome with
  | `Bad what -> Some what
  | `Typed -> None
  | `Completed ->
    if Sanitizer.violation_count san > 0 then
      Some
        (Printf.sprintf "sanitizer recorded %d violation(s)"
           (Sanitizer.violation_count san))
    else (
      match Inspect.report m with
      | v :: _ -> Some ("post-run: " ^ Inspect.describe v)
      | [] ->
        if m.Machine.crashes > 0 then
          inst.Litmus.crash_final ~live:(fun p -> not m.Machine.dead.(p))
        else
          (* placement fell past the fuzzed run's end: a clean run *)
          inst.Litmus.final ())

let test_crash_points_clean () =
  List.iter
    (fun sc ->
      for seed = 0 to (nseeds / 2) - 1 do
        match fuzz_crash_scenario sc seed with
        | None -> ()
        | Some what ->
          Alcotest.failf
            "scenario %s, seed %d: %s (replay: crash-fuzz %s/%d)"
            sc.Litmus.name seed what sc.Litmus.name seed
      done)
    Litmus.scenarios

(* The crash fuzzer is as replayable as the schedule fuzzer: the same
   (scenario, seed) reaches the same clock and the same crash count. *)
let test_crash_points_deterministic () =
  List.iter
    (fun sc ->
      let observe seed =
        let prng = crash_prng seed in
        let node = Prng.int prng 2 in
        let at = 1 + Prng.int prng (max 1 (scenario_span sc)) in
        let inst = sc.Litmus.make ~fault:None in
        let m = Dsm.machine inst.Litmus.handle in
        (try
           Dsm.run_controlled ~choose:(random_choose seed)
             ~events:[ Shasta_recover.Crash.kill inst.Litmus.handle ~node ~at ]
             inst.Litmus.handle inst.Litmus.body
         with Shasta_recover.Recover.Recovery_violation _ -> ());
        (Dsm.parallel_cycles inst.Litmus.handle, m.Machine.crashes)
      in
      List.iter
        (fun seed ->
          let c1, n1 = observe seed and c2, n2 = observe seed in
          Alcotest.(check (pair int int))
            (Printf.sprintf "%s seed %d crash run replays identically"
               sc.Litmus.name seed)
            (c1, n1) (c2, n2))
        [ 0; 9; 31 ])
    Litmus.scenarios

let () =
  Alcotest.run "fuzz"
    [
      ( "schedules",
        [
          Alcotest.test_case "64 seeds x all scenarios clean" `Slow
            test_scenarios_clean;
          Alcotest.test_case "fuzzer deterministic per seed" `Quick
            test_fuzz_deterministic;
          Alcotest.test_case "seeds explore distinct schedules" `Quick
            test_seeds_diversify;
          Alcotest.test_case "lu verified under fuzzed schedules" `Slow
            test_lu_fuzzed;
        ] );
      ( "faults",
        [
          Alcotest.test_case "skip-private-downgrade exposed" `Quick
            test_catches_skip_private;
          Alcotest.test_case "skip-flag-stamp exposed" `Quick
            test_catches_skip_flag;
        ] );
      ( "crash-points",
        [
          Alcotest.test_case "randomized crash placements recover" `Slow
            test_crash_points_clean;
          Alcotest.test_case "crash fuzzer deterministic per seed" `Quick
            test_crash_points_deterministic;
        ] );
    ]
