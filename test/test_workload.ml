(* The KV store + YCSB harness: oracle-verified runs on both access
   paths, compiled/closure and shard-count invariance, per-seed
   determinism, a two-node single-bucket litmus, and a 64-seed fuzz of
   the bucket critical section with the sanitizer and race detector
   attached. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Inspect = Shasta_core.Inspect
module Kv = Shasta_apps.Kv
module Sampler = Shasta_workload.Sampler
module Ycsb = Shasta_workload.Ycsb
module Sanitizer = Shasta_check.Sanitizer
module Races = Shasta_check.Races
module Histogram = Shasta_util.Histogram
module Prng = Shasta_util.Prng

let small ?(mix = Ycsb.A) ?(progs = true) ?(shards = 1) ?(seed = 42) () =
  Ycsb.spec ~mix ~records:1_000 ~ops:4_000 ~theta:0.9 ~variant:Config.Smp
    ~nprocs:8 ~clustering:2 ~progs ~shards ~seed ()

(* Everything virtual-time about a result, for cross-run comparison:
   clock, message counts, and per-class (count, msgs, latency histogram
   as key/count pairs). *)
let digest (r : Ycsb.result) =
  ( r.Ycsb.parallel_cycles,
    (r.Ycsb.remote_msgs, r.Ycsb.local_msgs, r.Ycsb.downgrade_msgs),
    r.Ycsb.dropped_inserts,
    List.map
      (fun (c : Ycsb.class_stats) ->
        ( Ycsb.class_name c.Ycsb.cls,
          c.Ycsb.count,
          c.Ycsb.msgs,
          List.map
            (fun k -> (k, Histogram.count c.Ycsb.latency k))
            (Histogram.keys c.Ycsb.latency) ))
      r.Ycsb.classes )

let check_oracle name (r : Ycsb.result) =
  Alcotest.(check bool) (name ^ ": " ^ r.Ycsb.oracle) true r.Ycsb.oracle_ok

(* A basic run passes its oracle and accounts for every op. *)
let test_ycsb_oracle () =
  List.iter
    (fun mix ->
      let r = Ycsb.run (small ~mix ()) in
      check_oracle ("mix " ^ Ycsb.mix_to_string mix) r;
      let ops =
        List.fold_left
          (fun a (c : Ycsb.class_stats) ->
            if c.Ycsb.cls = Ycsb.Other then a else a + c.Ycsb.count)
          0 r.Ycsb.classes
      in
      Alcotest.(check int)
        (Ycsb.mix_to_string mix ^ ": every op measured")
        4_000 ops)
    [ Ycsb.A; Ycsb.B; Ycsb.C; Ycsb.F ]

(* The compiled access programs must be cycle-identical to the closure
   path: same clock, same messages, same per-class latency histograms. *)
let test_progs_closure_parity () =
  let fast = Ycsb.run (small ~progs:true ()) in
  let slow = Ycsb.run (small ~progs:false ()) in
  Alcotest.(check bool) "fast path compiled" true fast.Ycsb.compiled;
  Alcotest.(check bool) "slow path interpreted" false slow.Ycsb.compiled;
  check_oracle "progs" fast;
  check_oracle "closures" slow;
  Alcotest.(check bool) "identical virtual-time digests" true
    (digest fast = digest slow)

(* Sharding the engine must not change anything virtual-time. *)
let test_shard_invariance () =
  let one = Ycsb.run (small ~shards:1 ()) in
  let two = Ycsb.run (small ~shards:2 ()) in
  check_oracle "shards 1" one;
  check_oracle "shards 2" two;
  Alcotest.(check bool) "identical virtual-time digests" true
    (digest one = digest two)

(* Same seed: same run. Different seed: a different schedule (the
   clock is free to collide, the full digest is not). *)
let test_seed_determinism () =
  let a = Ycsb.run (small ~seed:7 ()) in
  let b = Ycsb.run (small ~seed:7 ()) in
  let c = Ycsb.run (small ~seed:8 ()) in
  Alcotest.(check bool) "seed 7 replays identically" true
    (digest a = digest b);
  Alcotest.(check bool) "seed 8 diverges from seed 7" false
    (digest a = digest c)

(* Insert-bearing mixes run the closure path and keep the oracle:
   dropped inserts (full buckets) are allowed but must be counted
   deterministically. *)
let test_insert_mixes () =
  List.iter
    (fun mix ->
      let r1 = Ycsb.run (small ~mix ()) in
      let r2 = Ycsb.run (small ~mix ()) in
      check_oracle ("mix " ^ Ycsb.mix_to_string mix) r1;
      Alcotest.(check bool)
        (Ycsb.mix_to_string mix ^ ": inserts ran the closure path")
        false r1.Ycsb.compiled;
      Alcotest.(check int)
        (Ycsb.mix_to_string mix ^ ": dropped inserts deterministic")
        r1.Ycsb.dropped_inserts r2.Ycsb.dropped_inserts)
    [ Ycsb.D; Ycsb.E ]

(* Two-node single-bucket litmus: four processors on two SMP nodes all
   hammer one bucket — every rmw goes through the same lock and the
   same cache line, so lost updates or stale reads surface here first.
   Final value must be the exact increment count; bystander keys must
   be untouched. *)
let litmus_records = 8

let run_litmus ?choose ~rounds ~sanitize () =
  let plan = Kv.plan ~nbuckets:1 ~records:litmus_records () in
  let cfg =
    Config.create ~variant:Config.Smp ~nprocs:4 ~clustering:2 ~sanitize
      ~heap_bytes:(max (1 lsl 22) (plan.Kv.bytes + 65536))
      ()
  in
  let h = Dsm.create cfg in
  let san = Sanitizer.attach (Dsm.machine h) in
  let rd = Races.attach (Dsm.machine h) in
  let t =
    Kv.create h ~nbuckets:1 ~records:litmus_records ~extra_keys:0
      ~value0:(fun k -> float_of_int (100 + k))
      ()
  in
  let nprocs = 4 in
  let body ctx =
    let p = Dsm.pid ctx in
    for i = 1 to rounds do
      (* rmw key 0 *)
      Kv.charge_hash t ctx;
      Kv.lock t ctx 0;
      (match Kv.probe_in t ctx 0 with
      | `Found s ->
        let v = Kv.read_slot t ctx ~bucket:0 ~slot:s in
        Kv.write_slot t ctx ~bucket:0 ~slot:s (v +. 1.0)
      | `Absent _ -> failwith "litmus: key 0 missing");
      Kv.unlock t ctx 0;
      (* read a bystander key under the same lock *)
      let k = 1 + ((p + i) mod (litmus_records - 1)) in
      Kv.charge_hash t ctx;
      Kv.lock t ctx 0;
      (match Kv.probe_in t ctx k with
      | `Found s ->
        let v = Kv.read_slot t ctx ~bucket:0 ~slot:s in
        if v <> float_of_int (100 + k) then
          failwith (Printf.sprintf "litmus: key %d read %g" k v)
      | `Absent _ -> failwith "litmus: bystander missing");
      Kv.unlock t ctx 0
    done
  in
  (match choose with
  | None -> Dsm.run h body
  | Some choose -> Dsm.run_controlled ~choose h body);
  Inspect.assert_invariants (Dsm.machine h);
  Alcotest.(check int) "sanitizer clean" 0 (Sanitizer.violation_count san);
  Alcotest.(check int) "race detector clean" 0 (Races.race_count rd);
  Alcotest.(check (float 0.0))
    "key 0 counted every rmw"
    (float_of_int (100 + (nprocs * rounds)))
    (Kv.peek_value t h 0);
  for k = 1 to litmus_records - 1 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "key %d untouched" k)
      (float_of_int (100 + k))
      (Kv.peek_value t h k)
  done;
  Alcotest.(check (float 0.0))
    "bucket count cell intact"
    (float_of_int litmus_records)
    (Kv.peek_count t h 0)

let test_litmus () = run_litmus ~rounds:20 ~sanitize:2 ()

(* The same litmus under 64 fuzzed schedules (uniformly random runnable
   processor at every decision point), sanitizer and race detector
   attached throughout. *)
let random_choose seed =
  let prng = Prng.create (0x5eed + (seed * 2654435761)) in
  fun (cands : int array) -> cands.(Prng.int prng (Array.length cands))

let test_litmus_fuzzed () =
  for seed = 0 to 63 do
    try run_litmus ~choose:(random_choose seed) ~rounds:6 ~sanitize:2 ()
    with e ->
      Alcotest.failf "kv litmus, fuzz seed %d: %s" seed (Printexc.to_string e)
  done

let () =
  Alcotest.run "workload"
    [
      ( "ycsb",
        [
          Alcotest.test_case "oracle holds on mixes A/B/C/F" `Slow
            test_ycsb_oracle;
          Alcotest.test_case "compiled = closure in virtual time" `Slow
            test_progs_closure_parity;
          Alcotest.test_case "shards 1 = shards 2" `Slow
            test_shard_invariance;
          Alcotest.test_case "deterministic per seed" `Slow
            test_seed_determinism;
          Alcotest.test_case "insert mixes D/E" `Slow test_insert_mixes;
        ] );
      ( "kv-litmus",
        [
          Alcotest.test_case "two-node single-bucket contention" `Quick
            test_litmus;
          Alcotest.test_case "64 fuzzed schedules clean" `Slow
            test_litmus_fuzzed;
        ] );
    ]
